(** warm_prof.exe: per-benchmark warm execution profiler.

    Prints one warm steady-state ns/pass line per suite benchmark — the
    per-benchmark breakdown behind bench/main.exe's per-suite phase-4
    totals, for finding which kernel a host-level regression lives in.
    Run with [NOMAP_PROF=1] to additionally get the per-helper call/ns
    profile (printed at exit by the runtime, see EXPERIMENTS.md).

    Usage: warm_prof.exe [--engine decoded|threaded] [--no-ic] [--only SUBSTR] *)

module Runner = Nomap_harness.Runner
module Registry = Nomap_workloads.Registry
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Engine = Nomap_machine.Engine

let now_s () = Unix.gettimeofday ()
let exec_measure = 30

let warm_exec_ns ~engine ~host_ic bench =
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine ~host_ic ~config:(Config.create Config.Base)
      ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  for _ = 1 to Runner.default_warmup do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  let t0 = now_s () in
  for _ = 1 to exec_measure do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  (now_s () -. t0) /. float_of_int exec_measure *. 1e9

let () =
  let engine = ref Engine.Threaded and host_ic = ref true and only = ref "" in
  let rec scan = function
    | "--only" :: sub :: rest ->
      only := sub;
      scan rest
    | "--engine" :: name :: rest ->
      (match Engine.of_string name with
      | Some e -> engine := e
      | None ->
        prerr_endline ("warm_prof: unknown engine " ^ name);
        exit 2);
      scan rest
    | "--no-ic" :: rest ->
      host_ic := false;
      scan rest
    | arg :: _ ->
      prerr_endline ("warm_prof: unknown argument " ^ arg);
      exit 2
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  Printf.printf "engine %s, host ICs %s\n%!" (Engine.name !engine)
    (if !host_ic then "on" else "off");
  List.iter
    (fun (name, suite) ->
      Printf.printf "%s:\n%!" name;
      List.iter
        (fun b ->
          if
            !only = ""
            || String.length b.Registry.name >= String.length !only
               &&
               let rec has i =
                 i + String.length !only <= String.length b.Registry.name
                 && (String.sub b.Registry.name i (String.length !only) = !only || has (i + 1))
               in
               has 0
          then begin
            let t = warm_exec_ns ~engine:!engine ~host_ic:!host_ic b in
            Printf.printf "  %-30s %12.0f ns/pass\n%!" b.Registry.name t
          end)
        (Registry.of_suite suite))
    [ ("sunspider", Registry.Sunspider); ("kraken", Registry.Kraken) ]
