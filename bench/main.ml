(** Benchmark harness: regenerates every table and figure of the paper, then
    wall-times each experiment driver with Bechamel (one [Test.make] per
    table/figure).

    Phase 1 runs every experiment cold and serially, printing the
    paper-style tables — this is the artifact-evaluation output recorded in
    EXPERIMENTS.md — and records per-experiment wall times plus the serial
    sweep total.  Phase 2 resets the scheduler store and re-runs the whole
    sweep through the domain-parallel scheduler ([-j N], default: the
    machine's recommended domain count), recording the parallel sweep wall
    time for comparison; with [-j 1] the re-sweep would time the identical
    serial execution, so it is skipped and the report carries [null].
    Phase 3 re-times each driver on the warm store — the timed quantity is
    table *regeneration* (what a user iterating on the data pays), which is
    why the report field is [warm_render_ns_per_run]; schema v2 called this
    [warm_ns_per_run], misleadingly suggesting execution time.  Phase 4
    measures genuine warm VM *execution* per engine and per host-helper
    setting: one steady-state call of every suite benchmark under the
    decoded and the threaded engine, each with the host fast paths (per-site
    inline caches, DESIGN.md §14) on and off, reported per suite with the
    threaded-over-decoded and helpers-on-over-off speedups.  The simulated
    counters are identical across all four cells — only wall-clock moves.

    All wall times use the monotonic clock (same stub Bechamel samples), so
    NTP adjustments can't skew the report.

    [--engine decoded|threaded] pins the engine used by phases 1-3 (the
    simulated metrics are engine-invariant; only wall-clock moves).
    [--json <path>] additionally writes the measurements to [path] as one
    machine-readable report (schema [nomap-bench-v6] — v6 adds the
    [contention_shared_agents] experiment and its [shared_agents] section:
    multi-agent conflict-abort rates per kernel and agent count, DESIGN.md
    §16; v5 added the [hybrid_fallback_cold] experiment and the
    NoMap_RTM_STM column to the architecture sweeps; see DESIGN.md §9), so
    wall-clock regressions of the simulator itself can be tracked across
    commits; the report records the host context (OCaml version, word size,
    recommended domain count) the numbers were taken on. *)

module E = Nomap_harness.Experiments
module Runner = Nomap_harness.Runner
module Scheduler = Nomap_harness.Scheduler
module Registry = Nomap_workloads.Registry
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Engine = Nomap_machine.Engine

(* Bound before the opens: Bechamel's [Toolkit] shadows [Monotonic_clock]
   with its measure witness, which has no [now]. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

open Bechamel
open Toolkit

let experiments : (string * (unit -> string)) list =
  [
    ("fig1_shootout_languages", E.fig1);
    ("table1_tier_speedups", E.table1);
    ("fig3a_checks_sunspider", fun () -> E.fig3 Registry.Sunspider);
    ("fig3b_checks_kraken", fun () -> E.fig3 Registry.Kraken);
    (* Default iterations (300), matching the experiments.exe catalogue, so
       the serial phase-1 sweep and the parallel phase-2 re-sweep execute
       the identical key universe. *)
    ("deopt_frequency", fun () -> E.deopt_freq ());
    ("fig8_instructions_sunspider", fun () -> E.fig8_9 Registry.Sunspider);
    ("fig9_instructions_kraken", fun () -> E.fig8_9 Registry.Kraken);
    ("fig10_time_sunspider", fun () -> E.fig10_11 Registry.Sunspider);
    ("fig11_time_kraken", fun () -> E.fig10_11 Registry.Kraken);
    ("table4_tx_footprints", E.table4);
    ("appendix_htm_validation", E.validate_htm);
    ("hybrid_fallback_cold", E.hybrid_fallback);
    ("contention_shared_agents", E.contention);
    ("ablation_passes", E.ablation);
    ("headline_reductions", E.headline);
  ]

(* Swallow stdout while running [f] (the drivers print their tables; during
   timing loops that would flood the terminal). *)
let quietly f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

(* ------------------------------------------------------------------ *)
(* JSON report (hand-rolled: the report is flat and we add no deps). *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type engine_exec_row = {
  ee_name : string;  (** experiment the suite backs (fig8/fig9) *)
  ee_decoded_ns : float;  (** one warm pass over the suite, decoded engine *)
  ee_threaded_ns : float;  (** same pass, threaded engine *)
  ee_decoded_noic_ns : float;  (** decoded pass with host inline caches off *)
  ee_threaded_noic_ns : float;  (** threaded pass with host inline caches off *)
}

let write_json path ~serial_wall_s ~parallel_wall_s ~jobs ~engine
    ~(rows : (string * float * float option) list) ~(engine_exec : engine_exec_row list) =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"nomap-bench-v6\",\n";
  Printf.fprintf oc "  \"engine\": \"%s\",\n" (Engine.name engine);
  Printf.fprintf oc
    "  \"host\": {\"ocaml_version\": \"%s\", \"word_size\": %d, \
     \"recommended_domains\": %d},\n"
    (json_escape Sys.ocaml_version) Sys.word_size
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"sweep_wall_s_serial\": %.6f,\n" serial_wall_s;
  (match parallel_wall_s with
  | Some w -> Printf.fprintf oc "  \"sweep_wall_s_parallel\": %.6f,\n" w
  | None -> output_string oc "  \"sweep_wall_s_parallel\": null,\n");
  Printf.fprintf oc "  \"parallel_jobs\": %d,\n" jobs;
  output_string oc "  \"experiments\": [\n";
  List.iteri
    (fun i (name, wall_s, warm_ns) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"wall_s\": %.6f, \"warm_render_ns_per_run\": %s}%s\n"
        (json_escape name) wall_s
        (match warm_ns with Some ns -> Printf.sprintf "%.1f" ns | None -> "null")
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "  ],\n";
  output_string oc "  \"engine_exec\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"engines\": [{\"engine\": \"decoded\", \
         \"warm_ns_per_run\": %.1f, \"warm_ns_per_run_helpers_off\": %.1f, \
         \"helper_speedup\": %.3f}, {\"engine\": \"threaded\", \"warm_ns_per_run\": \
         %.1f, \"warm_ns_per_run_helpers_off\": %.1f, \"helper_speedup\": %.3f}], \
         \"speedup_threaded_over_decoded\": %.3f}%s\n"
        (json_escape r.ee_name) r.ee_decoded_ns r.ee_decoded_noic_ns
        (r.ee_decoded_noic_ns /. r.ee_decoded_ns)
        r.ee_threaded_ns r.ee_threaded_noic_ns
        (r.ee_threaded_noic_ns /. r.ee_threaded_ns)
        (r.ee_decoded_ns /. r.ee_threaded_ns)
        (if i < List.length engine_exec - 1 then "," else ""))
    engine_exec;
  output_string oc "  ],\n";
  (* Multi-agent shared-segment contention (DESIGN.md §16) — simulated
     metrics, so they are wall-clock-free and comparable across hosts.
     The memoized rows were computed during the phase-1 sweep. *)
  output_string oc "  \"shared_agents\": [\n";
  let contention = E.contention_rows () in
  List.iteri
    (fun i (r : E.contention_row) ->
      Printf.fprintf oc
        "    {\"kernel\": \"%s\", \"agents\": %d, \"tx_commits\": %d, \
         \"conflict_aborts\": %d, \"abort_pct\": %.2f, \"adds_applied\": %d}%s\n"
        (json_escape r.E.ct_kernel) r.E.ct_agents r.E.ct_commits r.E.ct_conflicts
        r.E.ct_abort_pct r.E.ct_adds
        (if i < List.length contention - 1 then "," else ""))
    contention;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d experiments)\n" path (List.length rows)

(* ------------------------------------------------------------------ *)
(* Phase 4: genuine warm execution per engine.  One steady-state VM per
   (benchmark, engine) — run main, warm up past the FTL threshold, then
   time [exec_measure] calls of benchmark().  The per-suite number is one
   warm pass over the suite (sum of per-benchmark ns per call), comparable
   across engines because both run the identical call sequence.  The two
   engines are measured back-to-back per benchmark (not one full pass per
   engine) so slow machine drift hits both sides equally; the timed count
   is higher than the harness default because the per-call times are tens
   of microseconds and a 1-core container schedules noisily. *)

let exec_measure = 50

let warm_exec_ns ~engine ~host_ic bench =
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine ~host_ic ~config:(Config.create Config.Base)
      ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  for _ = 1 to Runner.default_warmup do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  let t0 = now_s () in
  for _ = 1 to exec_measure do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  (now_s () -. t0) /. float_of_int exec_measure *. 1e9

let measure_engine_exec name suite =
  let benches = Registry.of_suite suite in
  (* All four cells back-to-back per benchmark so machine drift hits every
     side equally. *)
  let d, t, dn, tn =
    List.fold_left
      (fun (d, t, dn, tn) b ->
        ( d +. warm_exec_ns ~engine:Engine.Decoded ~host_ic:true b,
          t +. warm_exec_ns ~engine:Engine.Threaded ~host_ic:true b,
          dn +. warm_exec_ns ~engine:Engine.Decoded ~host_ic:false b,
          tn +. warm_exec_ns ~engine:Engine.Threaded ~host_ic:false b ))
      (0.0, 0.0, 0.0, 0.0) benches
  in
  Printf.printf
    "  %-28s decoded %12.0f ns/pass (ic off %12.0f, %.2fx)\n  %-28s threaded %11.0f \
     ns/pass (ic off %12.0f, %.2fx)  threaded/decoded %.2fx\n%!"
    name d dn (dn /. d) "" t tn (tn /. t) (d /. t);
  {
    ee_name = name;
    ee_decoded_ns = d;
    ee_threaded_ns = t;
    ee_decoded_noic_ns = dn;
    ee_threaded_noic_ns = tn;
  }

let json_path, jobs, engine =
  let json = ref None
  and jobs = ref (Scheduler.default_jobs ())
  and engine = ref Engine.default in
  let rec scan = function
    | [ "--json" ] ->
      prerr_endline "error: --json requires a path";
      exit 2
    | [ "-j" ] | [ "--jobs" ] ->
      prerr_endline "error: -j requires a count";
      exit 2
    | [ "--engine" ] ->
      prerr_endline "error: --engine requires a name (decoded|threaded)";
      exit 2
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | "--engine" :: name :: rest ->
      (match Engine.of_string name with
      | Some e -> engine := e
      | None ->
        prerr_endline ("error: unknown engine " ^ name ^ " (decoded|threaded)");
        exit 2);
      scan rest
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ ->
        prerr_endline ("error: bad job count: " ^ n);
        exit 2);
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!json, !jobs, !engine)

let () =
  Runner.engine := engine;
  print_endline "==================================================================";
  Printf.printf " NoMap reproduction: full experiment sweep (engine: %s)\n"
    (Engine.name engine);
  print_endline "==================================================================\n";
  let t0 = now_s () in
  let wall_times =
    List.map
      (fun (name, f) ->
        let start = now_s () in
        ignore (f ());
        let dt = now_s () -. start in
        Printf.printf "[%s took %.1fs]\n\n" name dt;
        (name, dt))
      experiments
  in
  let serial_wall_s = now_s () -. t0 in
  Printf.printf "full sweep, serial: %.1fs\n\n" serial_wall_s;
  let parallel_wall_s =
    if jobs <= 1 then begin
      (* A -j 1 re-sweep times the identical serial execution; recording it
         as "parallel" would fake a comparison, so skip it. *)
      print_endline "==================================================================";
      print_endline " Parallel re-sweep skipped (-j 1: identical to the serial sweep)";
      print_endline "==================================================================\n";
      None
    end
    else begin
      print_endline "==================================================================";
      Printf.printf " Parallel re-sweep from cold (-j %d, scheduler fan-out)\n" jobs;
      print_endline "==================================================================";
      Scheduler.reset ();
      let t1 = now_s () in
      ignore (quietly (fun () -> E.run_all ~jobs ()));
      let w = now_s () -. t1 in
      Printf.printf "full sweep, -j %d: %.1fs (serial was %.1fs)\n\n" jobs w serial_wall_s;
      Some w
    end
  in
  print_endline "==================================================================";
  print_endline " Bechamel timings (warm regeneration of each table/figure)";
  print_endline "==================================================================";
  let tests =
    List.map
      (fun (name, f) ->
        Test.make ~name (Staged.stage (fun () -> quietly (fun () -> ignore (f ())))))
      experiments
  in
  let grouped = Test.make_grouped ~name:"nomap" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* Bechamel names tests "nomap <name>" (the ~fmt above). *)
  let warm_ns name =
    match Hashtbl.find_opt results ("nomap " ^ name) with
    | Some result -> (
      match Analyze.OLS.estimates result with Some [ est ] -> Some est | _ -> None)
    | None -> None
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results;
  print_endline "\n==================================================================";
  print_endline " Engine execution timings (warm pass over each suite, per engine)";
  print_endline "==================================================================";
  let engine_exec =
    [
      measure_engine_exec "fig8_instructions_sunspider" Registry.Sunspider;
      measure_engine_exec "fig9_instructions_kraken" Registry.Kraken;
    ]
  in
  (match json_path with
  | Some path ->
    write_json path ~serial_wall_s ~parallel_wall_s ~jobs ~engine ~engine_exec
      ~rows:(List.map (fun (name, wall_s) -> (name, wall_s, warm_ns name)) wall_times)
  | None -> ());
  print_endline "\ndone."
