(** Benchmark harness: regenerates every table and figure of the paper, then
    wall-times each experiment driver with Bechamel (one [Test.make] per
    table/figure).

    Phase 1 runs every experiment cold and serially, printing the
    paper-style tables — this is the artifact-evaluation output recorded in
    EXPERIMENTS.md — and records per-experiment wall times plus the serial
    sweep total.  Phase 2 resets the scheduler store and re-runs the whole
    sweep through the domain-parallel scheduler ([-j N], default: the
    machine's recommended domain count), recording the parallel sweep wall
    time for comparison.  Phase 3 re-times each driver on the warm store
    (the timed quantity is table regeneration, which is what a user
    iterating on the data pays).

    All wall times use the monotonic clock (same stub Bechamel samples), so
    NTP adjustments can't skew the report.

    [--json <path>] additionally writes the measurements to [path] as one
    machine-readable report (schema [nomap-bench-v2], see DESIGN.md §9), so
    wall-clock regressions of the simulator itself can be tracked across
    commits. *)

module E = Nomap_harness.Experiments
module Scheduler = Nomap_harness.Scheduler
module Registry = Nomap_workloads.Registry

(* Bound before the opens: Bechamel's [Toolkit] shadows [Monotonic_clock]
   with its measure witness, which has no [now]. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

open Bechamel
open Toolkit

let experiments : (string * (unit -> string)) list =
  [
    ("fig1_shootout_languages", E.fig1);
    ("table1_tier_speedups", E.table1);
    ("fig3a_checks_sunspider", fun () -> E.fig3 Registry.Sunspider);
    ("fig3b_checks_kraken", fun () -> E.fig3 Registry.Kraken);
    (* Default iterations (300), matching the experiments.exe catalogue, so
       the serial phase-1 sweep and the parallel phase-2 re-sweep execute
       the identical key universe. *)
    ("deopt_frequency", fun () -> E.deopt_freq ());
    ("fig8_instructions_sunspider", fun () -> E.fig8_9 Registry.Sunspider);
    ("fig9_instructions_kraken", fun () -> E.fig8_9 Registry.Kraken);
    ("fig10_time_sunspider", fun () -> E.fig10_11 Registry.Sunspider);
    ("fig11_time_kraken", fun () -> E.fig10_11 Registry.Kraken);
    ("table4_tx_footprints", E.table4);
    ("appendix_htm_validation", E.validate_htm);
    ("ablation_passes", E.ablation);
    ("headline_reductions", E.headline);
  ]

(* Swallow stdout while running [f] (the drivers print their tables; during
   timing loops that would flood the terminal). *)
let quietly f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

(* ------------------------------------------------------------------ *)
(* JSON report (hand-rolled: the report is flat and we add no deps). *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~serial_wall_s ~parallel_wall_s ~jobs
    ~(rows : (string * float * float option) list) =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"nomap-bench-v2\",\n";
  Printf.fprintf oc "  \"sweep_wall_s_serial\": %.6f,\n" serial_wall_s;
  Printf.fprintf oc "  \"sweep_wall_s_parallel\": %.6f,\n" parallel_wall_s;
  Printf.fprintf oc "  \"parallel_jobs\": %d,\n" jobs;
  output_string oc "  \"experiments\": [\n";
  List.iteri
    (fun i (name, wall_s, warm_ns) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"wall_s\": %.6f, \"warm_ns_per_run\": %s}%s\n"
        (json_escape name) wall_s
        (match warm_ns with Some ns -> Printf.sprintf "%.1f" ns | None -> "null")
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d experiments)\n" path (List.length rows)

let json_path, jobs =
  let json = ref None and jobs = ref (Scheduler.default_jobs ()) in
  let rec scan = function
    | [ "--json" ] ->
      prerr_endline "error: --json requires a path";
      exit 2
    | [ "-j" ] | [ "--jobs" ] ->
      prerr_endline "error: -j requires a count";
      exit 2
    | "--json" :: path :: rest ->
      json := Some path;
      scan rest
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ ->
        prerr_endline ("error: bad job count: " ^ n);
        exit 2);
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!json, !jobs)

let () =
  print_endline "==================================================================";
  print_endline " NoMap reproduction: full experiment sweep (paper tables/figures)";
  print_endline "==================================================================\n";
  let t0 = now_s () in
  let wall_times =
    List.map
      (fun (name, f) ->
        let start = now_s () in
        ignore (f ());
        let dt = now_s () -. start in
        Printf.printf "[%s took %.1fs]\n\n" name dt;
        (name, dt))
      experiments
  in
  let serial_wall_s = now_s () -. t0 in
  Printf.printf "full sweep, serial: %.1fs\n\n" serial_wall_s;
  print_endline "==================================================================";
  Printf.printf " Parallel re-sweep from cold (-j %d, scheduler fan-out)\n" jobs;
  print_endline "==================================================================";
  Scheduler.reset ();
  let t1 = now_s () in
  ignore (quietly (fun () -> E.run_all ~jobs ()));
  let parallel_wall_s = now_s () -. t1 in
  Printf.printf "full sweep, -j %d: %.1fs (serial was %.1fs)\n\n" jobs parallel_wall_s
    serial_wall_s;
  print_endline "==================================================================";
  print_endline " Bechamel timings (warm regeneration of each table/figure)";
  print_endline "==================================================================";
  let tests =
    List.map
      (fun (name, f) ->
        Test.make ~name (Staged.stage (fun () -> quietly (fun () -> ignore (f ())))))
      experiments
  in
  let grouped = Test.make_grouped ~name:"nomap" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* Bechamel names tests "nomap <name>" (the ~fmt above). *)
  let warm_ns name =
    match Hashtbl.find_opt results ("nomap " ^ name) with
    | Some result -> (
      match Analyze.OLS.estimates result with Some [ est ] -> Some est | _ -> None)
    | None -> None
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results;
  (match json_path with
  | Some path ->
    write_json path ~serial_wall_s ~parallel_wall_s ~jobs
      ~rows:(List.map (fun (name, wall_s) -> (name, wall_s, warm_ns name)) wall_times)
  | None -> ());
  print_endline "\ndone."
