(** End-to-end VM tests: every architecture must compute exactly what the
    plain interpreter computes, while actually exercising the FTL tier,
    transactions, deopts and aborts. *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Heap = Nomap_runtime.Heap
module Instance = Nomap_interp.Instance

let run_vm ?(arch = Config.Base) ?(cap = Vm.Cap_ftl) ?(fuel = 200_000_000) src =
  let prog = Helpers.compile src in
  let t =
    Vm.create ~fuel ~verify_lir:true ~config:(Config.create arch) ~tier_cap:cap prog
  in
  ignore (Vm.run_main t);
  t

let result_of t =
  match Vm.global t "result" with
  | Some v -> Value.to_js_string v
  | None -> Alcotest.fail "no result global"

(* Wrap a kernel in a hot-call harness so it reaches FTL. *)
let hot kernel = Printf.sprintf "%s var it; for (it = 0; it < 60; it++) { result = bench(); }" kernel

let all_archs = Config.all

let check_all_archs ?fuel name src =
  let expected = Helpers.run_result ~fuel:200_000_000 src in
  List.iter
    (fun arch ->
      let t = run_vm ?fuel ~arch src in
      Alcotest.(check string)
        (Printf.sprintf "%s under %s" name (Config.name arch))
        expected (result_of t);
      (* The hot harness must actually reach FTL. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: FTL ran under %s" name (Config.name arch))
        true
        ((Vm.counters t).Counters.ftl_calls > 0))
    all_archs

let test_sum_loop () =
  check_all_archs "sum loop"
    (hot
       "function bench() { var a = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]; var s = 0; for (var i = 0; \
        i < a.length; i++) { s += a[i]; } return s; }")

let test_accumulator_object () =
  (* The paper's Figure 4 shape: loop accumulating into obj.sum. *)
  check_all_archs "object accumulator"
    (hot
       "function bench() { var obj = { values: [1, 2, 3, 4, 5, 6, 7, 8], sum: 0 }; var len = \
        obj.values.length; for (var idx = 0; idx < len; idx++) { obj.sum += obj.values[idx]; } \
        return obj.sum; }")

let test_nested_loops () =
  check_all_archs "nested loops"
    (hot
       "function bench() { var m = 0; for (var i = 0; i < 10; i++) { for (var j = 0; j < 10; \
        j++) { m += i * j; } } return m; }")

let test_double_math () =
  check_all_archs "double math"
    (hot
       "function bench() { var s = 0.0; for (var i = 0; i < 50; i++) { s += Math.sqrt(i) * 1.5 \
        - s / 7.0; } return Math.floor(s * 1000); }")

let test_string_kernel () =
  check_all_archs "string kernel"
    (hot
       "function bench() { var s = 'the quick brown fox jumps over the lazy dog'; var h = 0; \
        for (var i = 0; i < s.length; i++) { h = (h * 31 + s.charCodeAt(i)) & 0xFFFFFF; } \
        return h; }")

let test_constructor_kernel () =
  check_all_archs "constructors and methods"
    (hot
       "function Vec(x, y) { this.x = x; this.y = y; } function norm2(v) { return v.x * v.x + \
        v.y * v.y; } function bench() { var s = 0; for (var i = 0; i < 20; i++) { var v = new \
        Vec(i, i + 1); s += norm2(v); } return s; }")

let test_early_exit_loop () =
  check_all_archs "break in loop"
    (hot
       "function bench() { var a = [5, 3, 9, 1, 7, 2, 8]; var found = -1; for (var i = 0; i < \
        a.length; i++) { if (a[i] == 1) { found = i; break; } } return found; }")

let test_calls_in_loop () =
  check_all_archs "calls inside hot loop"
    (hot
       "function f(x) { return x * 2 + 1; } function bench() { var s = 0; for (var i = 0; i < \
        30; i++) { s += f(i); } return s; }")

let test_array_writes () =
  check_all_archs "array writes in loop"
    (hot
       "function bench() { var a = new Array(64); for (var i = 0; i < 64; i++) { a[i] = i * i; \
        } var s = 0; for (var j = 0; j < 64; j++) { s += a[j]; } return s; }")

(* --- speculation failure paths ------------------------------------- *)

let test_type_deopt_after_warmup () =
  (* hot() sees ints for 50 calls, then a double: the int speculation must
     deopt and still compute correctly. *)
  let src =
    "function f(x) { return x + 1; } var s = 0; for (var i = 0; i < 50; i++) { s = f(i); } \
     result = f(2.5);"
  in
  let expected = Helpers.run_result src in
  List.iter
    (fun arch ->
      let t = run_vm ~arch src in
      Alcotest.(check string) (Config.name arch) expected (result_of t))
    all_archs

let test_overflow_late () =
  (* Arithmetic overflows only after the loop is FTL-compiled; Base deopts,
     NoMap (SOF) aborts the transaction — both must produce the double
     result. *)
  let src =
    "function bench(start) { var x = start; for (var i = 0; i < 40; i++) { x = x + 1000; } \
     return x; } var r = 0; for (var it = 0; it < 60; it++) { r = bench(it); } result = \
     bench(2147483000);"
  in
  let expected = Helpers.run_result src in
  List.iter
    (fun arch ->
      let t = run_vm ~arch src in
      Alcotest.(check string) (Config.name arch) expected (result_of t))
    all_archs

let test_bounds_deopt () =
  (* After warmup with in-bounds accesses, go out of bounds: returns
     undefined via the generic path. *)
  let src =
    "function get(a, i) { return a[i]; } var arr = [1, 2, 3, 4]; var s = 0; for (var it = 0; \
     it < 60; it++) { s += get(arr, it % 4); } var x = get(arr, 77); result = (x == undefined) \
     ? 'undef' : x;"
  in
  let expected = Helpers.run_result src in
  List.iter
    (fun arch ->
      let t = run_vm ~arch src in
      Alcotest.(check string) (Config.name arch) expected (result_of t))
    all_archs

let test_shape_change_deopt () =
  let src =
    "function getx(o) { return o.x; } var a = { x: 7 }; var s = 0; for (var it = 0; it < 60; \
     it++) { s += getx(a); } var b = { y: 1, x: 42 }; result = getx(b);"
  in
  let expected = Helpers.run_result src in
  List.iter
    (fun arch ->
      let t = run_vm ~arch src in
      Alcotest.(check string) (Config.name arch) expected (result_of t))
    all_archs

(* --- paper-mechanism observability ---------------------------------- *)

let sum_kernel =
  hot
    "function bench() { var a = new Array(256); for (var i = 0; i < 256; i++) { a[i] = i; } \
     var obj = { sum: 0 }; obj.sum = 0; for (var j = 0; j < 256; j++) { obj.sum += a[j]; } \
     return obj.sum; }"

let test_nomap_reduces_instructions () =
  let base = run_vm ~arch:Config.Base sum_kernel in
  let nomap = run_vm ~arch:Config.NoMap_full sum_kernel in
  let bi = Counters.total_instrs (Vm.counters base) in
  let ni = Counters.total_instrs (Vm.counters nomap) in
  Alcotest.(check string) "same result" (result_of base) (result_of nomap);
  Alcotest.(check bool)
    (Printf.sprintf "NoMap (%d) < Base (%d)" ni bi)
    true (ni < bi)

let test_base_has_ghost_regions () =
  let t = run_vm ~arch:Config.Base sum_kernel in
  Alcotest.(check bool) "Base classifies TMOpt instructions" true
    ((Vm.counters t).Counters.instrs.(Counters.category_index Counters.Tm_opt) > 0)

let test_transactions_commit () =
  let t = run_vm ~arch:Config.NoMap_full sum_kernel in
  Alcotest.(check bool) "transactions committed" true ((Vm.counters t).Counters.tx_commits > 0);
  Alcotest.(check bool) "write footprint recorded" true
    (Counters.tx_write_kb_sum (Vm.counters t) > 0.0)

let test_checks_counted () =
  let t = run_vm ~arch:Config.Base sum_kernel in
  Alcotest.(check bool) "bounds checks executed" true
    ((Vm.counters t).Counters.checks.(Counters.check_index Nomap_lir.Lir.Bounds) > 0);
  Alcotest.(check bool) "overflow checks executed" true
    ((Vm.counters t).Counters.checks.(Counters.check_index Nomap_lir.Lir.Overflow) > 0)

let test_nomap_removes_bounds_checks () =
  let base = run_vm ~arch:Config.Base sum_kernel in
  let nomap_b = run_vm ~arch:Config.NoMap_B sum_kernel in
  let b = (Vm.counters base).Counters.checks.(Counters.check_index Nomap_lir.Lir.Bounds) in
  let n = (Vm.counters nomap_b).Counters.checks.(Counters.check_index Nomap_lir.Lir.Bounds) in
  Alcotest.(check bool) (Printf.sprintf "NoMap_B bounds (%d) << Base (%d)" n b) true
    (n * 4 < b)

let test_nomap_removes_overflow_checks () =
  let nomap_b = run_vm ~arch:Config.NoMap_B sum_kernel in
  let nomap = run_vm ~arch:Config.NoMap_full sum_kernel in
  let b = (Vm.counters nomap_b).Counters.checks.(Counters.check_index Nomap_lir.Lir.Overflow) in
  let n = (Vm.counters nomap).Counters.checks.(Counters.check_index Nomap_lir.Lir.Overflow) in
  Alcotest.(check bool) (Printf.sprintf "NoMap overflow (%d) << NoMap_B (%d)" n b) true
    (n * 4 < b)

let test_tier_caps_ordering () =
  (* Lower tier caps must charge more instructions. *)
  let src =
    hot
      "function bench() { var s = 0; for (var i = 0; i < 100; i++) { s = (s + i) % 100000; } \
       return s; }"
  in
  let run cap =
    let t = run_vm ~cap src in
    Counters.cycles (Vm.counters t)
  in
  let interp = run Vm.Cap_interp in
  let baseline = run Vm.Cap_baseline in
  let dfg = run Vm.Cap_dfg in
  let ftl = run Vm.Cap_ftl in
  Alcotest.(check bool) (Printf.sprintf "interp %.0f > baseline %.0f" interp baseline) true
    (interp > baseline);
  Alcotest.(check bool) (Printf.sprintf "baseline %.0f > dfg %.0f" baseline dfg) true
    (baseline > dfg);
  Alcotest.(check bool) (Printf.sprintf "dfg %.0f > ftl %.0f" dfg ftl) true (dfg > ftl)

let test_rare_deopts_in_steady_state () =
  (* Paper §III-A2: in steady state checks practically never fail. *)
  let t = run_vm ~arch:Config.Base sum_kernel in
  Alcotest.(check int) "no deopts in a type-stable kernel" 0 (Vm.counters t).Counters.deopts

(* Satellite: symbol and shape ids are host-side bookkeeping, but they
   must be deterministic — two VMs over the same program build identical
   shape universes (same interned-symbol count, same shape count, same
   heap checksum), or host ICs keyed on shape ids would not be
   reproducible across runs. *)
let test_shape_universe_determinism () =
  let src =
    hot
      "function bench() { var o = { a: 1, b: 2 }; o.c = 3; o.d = 4; o.e = 5; var p = { b: 7, \
       a: 8 }; p.z = o.a + p.b; return o.c + p.z; }"
  in
  let t1 = run_vm src in
  let t2 = run_vm src in
  let u1 = (Vm.instance t1).Instance.heap.Heap.shapes in
  let u2 = (Vm.instance t2).Instance.heap.Heap.shapes in
  Alcotest.(check int) "same shape count" (Shape.universe_size u1) (Shape.universe_size u2);
  Alcotest.(check int) "same symbol count" (Shape.sym_count u1) (Shape.sym_count u2);
  Alcotest.(check bool) "universe is populated" true (Shape.universe_size u1 > 1);
  Alcotest.(check string) "same heap checksum"
    (Nomap_vm.Heap_checksum.checksum (Vm.instance t1))
    (Nomap_vm.Heap_checksum.checksum (Vm.instance t2))

(* Tentpole invariant: host inline caches are pure memoization — a VM with
   ICs disabled charges the bit-identical canonical counter table. *)
let test_host_ic_counters_identical () =
  let src =
    hot
      "function bench() { var o = { x: 0, y: 1 }; var s = \"abc\"; var a = [1, 2, 3]; for \
       (var i = 0; i < 50; i++) { o.x = o.x + o.y + a.length + s.charCodeAt(0); if (i % 2 \
       == 0) { o.k0 = i; } else { o.k1 = i; } a.push(i); } return o.x + o.k0 + o.k1; }"
  in
  let prog = Helpers.compile src in
  let run host_ic =
    let t =
      Vm.create ~fuel:200_000_000 ~verify_lir:true ~host_ic ~engine:Nomap_machine.Engine.Threaded
        ~config:(Config.create Config.NoMap_full) ~tier_cap:Vm.Cap_ftl prog
    in
    ignore (Vm.run_main t);
    (result_of t, Counters.to_canonical_string (Vm.counters t))
  in
  let r_on, c_on = run true in
  let r_off, c_off = run false in
  Alcotest.(check string) "same result" r_off r_on;
  Alcotest.(check string) "same counter table" c_off c_on

let tests =
  [
    Alcotest.test_case "sum loop, all archs" `Quick test_sum_loop;
    Alcotest.test_case "object accumulator, all archs" `Quick test_accumulator_object;
    Alcotest.test_case "nested loops, all archs" `Quick test_nested_loops;
    Alcotest.test_case "double math, all archs" `Quick test_double_math;
    Alcotest.test_case "string kernel, all archs" `Quick test_string_kernel;
    Alcotest.test_case "constructors, all archs" `Quick test_constructor_kernel;
    Alcotest.test_case "break in loop, all archs" `Quick test_early_exit_loop;
    Alcotest.test_case "calls in loop, all archs" `Quick test_calls_in_loop;
    Alcotest.test_case "array writes, all archs" `Quick test_array_writes;
    Alcotest.test_case "type deopt after warmup" `Quick test_type_deopt_after_warmup;
    Alcotest.test_case "late overflow" `Quick test_overflow_late;
    Alcotest.test_case "bounds deopt" `Quick test_bounds_deopt;
    Alcotest.test_case "shape change deopt" `Quick test_shape_change_deopt;
    Alcotest.test_case "NoMap reduces instructions" `Quick test_nomap_reduces_instructions;
    Alcotest.test_case "Base ghost regions" `Quick test_base_has_ghost_regions;
    Alcotest.test_case "transactions commit" `Quick test_transactions_commit;
    Alcotest.test_case "checks counted" `Quick test_checks_counted;
    Alcotest.test_case "NoMap_B removes bounds checks" `Quick test_nomap_removes_bounds_checks;
    Alcotest.test_case "NoMap removes overflow checks" `Quick test_nomap_removes_overflow_checks;
    Alcotest.test_case "tier cap ordering" `Quick test_tier_caps_ordering;
    Alcotest.test_case "rare deopts in steady state" `Quick test_rare_deopts_in_steady_state;
    Alcotest.test_case "shape universe determinism" `Quick test_shape_universe_determinism;
    Alcotest.test_case "host ICs move no counter" `Quick test_host_ic_counters_identical;
  ]
