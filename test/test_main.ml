(* The test binary accepts `-j N` / `--jobs N` ahead of the usual Alcotest
   arguments: it sets the domain count for the determinism sweep
   (test_determinism) and is stripped before Alcotest parses argv.
   NOMAP_JOBS in the environment works too (see test_determinism.ml). *)
let () =
  let rec strip acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> Test_determinism.jobs := n
      | _ ->
        prerr_endline ("test_main: bad job count: " ^ n);
        exit 2);
      strip acc rest
    | a :: rest -> strip (a :: acc) rest
  in
  let argv = Array.of_list (strip [] (Array.to_list Sys.argv)) in
  Alcotest.run ~argv "nomap"
    [
      ("util", Test_util.tests);
      ("lexer/parser", Test_lexer_parser.tests);
      ("runtime", Test_runtime.tests);
      ("bytecode", Test_bytecode.tests);
      ("interp", Test_interp.tests);
      ("lir", Test_lir.tests);
      ("vm", Test_vm.tests);
      ("opt", Test_opt.tests);
      ("cache/htm", Test_cache_htm.tests);
      ("workloads", Test_workloads.tests);
      ("machine", Test_machine.tests);
      ("engine", Test_engine.tests);
      ("determinism", Test_determinism.tests);
      ("scheduler", Test_scheduler.tests);
      ("measurement", Test_measurement.tests);
      ("server", Test_server.tests);
      ("shared", Test_shared.tests);
      ("litmus", Test_litmus.tests);
      ("fuzz", Test_fuzz.tests);
    ]
