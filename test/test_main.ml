let () =
  Alcotest.run "nomap"
    [
      ("util", Test_util.tests);
      ("lexer/parser", Test_lexer_parser.tests);
      ("runtime", Test_runtime.tests);
      ("bytecode", Test_bytecode.tests);
      ("interp", Test_interp.tests);
      ("lir", Test_lir.tests);
      ("vm", Test_vm.tests);
      ("opt", Test_opt.tests);
      ("cache/htm", Test_cache_htm.tests);
      ("workloads", Test_workloads.tests);
      ("machine", Test_machine.tests);
      ("determinism", Test_determinism.tests);
      ("measurement", Test_measurement.tests);
      ("fuzz", Test_fuzz.tests);
    ]
