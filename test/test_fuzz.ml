(** Differential fuzzing: generate random MiniJS programs with loops,
    arrays, objects and arithmetic; every architecture at full tier must
    compute exactly what the reference interpreter computes.

    This is the strongest correctness property in the suite: it exercises
    speculation, OSR exits, transactional rollback, bounds combining, SOF
    and the whole optimizer pipeline against randomly-shaped programs. *)

module Config = Nomap_nomap.Config
module Vm = Nomap_vm.Vm
module Value = Nomap_runtime.Value
module Gen = QCheck2.Gen

(* --- a tiny MiniJS program generator --------------------------------- *)

(* Expressions over: loop vars i/j, accumulator s, array a (length 10),
   object o with fields x/y, small constants. *)
let gen_leaf =
  Gen.oneof
    [
      Gen.map string_of_int (Gen.int_range (-20) 20);
      Gen.return "i";
      Gen.return "s";
      Gen.return "o.x";
      Gen.return "o.y";
      Gen.return "a[i % 10]";
      Gen.return "a[(i + 3) % 10]";
      Gen.return "1.5";
      Gen.return "0.25";
    ]

(* Depth is bounded explicitly: QCheck's default size ramps to ~100, and a
   100-node expression makes each whole-VM property call take seconds. *)
let gen_expr =
  Gen.bind (Gen.int_range 2 24)
    (Gen.fix (fun self n ->
         if n <= 0 then gen_leaf
         else
           Gen.oneof
             [
               gen_leaf;
               Gen.map2 (Printf.sprintf "(%s + %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s - %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s * %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s & %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s | %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s ^ %s)") (self (n / 2)) (self (n / 2));
               Gen.map (Printf.sprintf "Math.floor(%s)") (self (n - 1));
               Gen.map (Printf.sprintf "Math.abs(%s)") (self (n - 1));
               Gen.map2
                 (fun c e -> Printf.sprintf "((%s > 0) ? %s : (0 - %s))" c e e)
                 (self (n / 2)) (self (n / 2));
             ]))

(* Statements inside the hot loop. *)
let gen_stmt =
  Gen.oneof
    [
      Gen.map (Printf.sprintf "s = (s + %s) & 0xFFFFF;") gen_expr;
      Gen.map (Printf.sprintf "s += %s;") gen_expr;
      Gen.map (Printf.sprintf "a[i %% 10] = %s;") gen_expr;
      Gen.map (Printf.sprintf "o.x = %s;") gen_expr;
      Gen.map (Printf.sprintf "o.y = o.y + %s;") gen_expr;
      Gen.map (Printf.sprintf "if (s > 1000) { s = s - %s; }") gen_expr;
      Gen.map (Printf.sprintf "if ((i & 3) == 0) { continue; } s += %s;") gen_expr;
    ]

let gen_program_shrinkable =
  let open Gen in
  let* nstmts = int_range 1 4 in
  let* stmts = list_size (return nstmts) gen_stmt in
  let* trip = int_range 5 25 in
  let body = String.concat "\n    " stmts in
  return
    (Printf.sprintf
       {|
function bench() {
  var a = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
  var o = { x: 2, y: 7 };
  var s = 0;
  for (var i = 0; i < %d; i++) {
    %s
  }
  return s + o.x + o.y + a[0] + a[9];
}
var it;
var result = 0;
for (it = 0; it < 45; it++) { result = bench(); }
|}
       trip body)

(* Shrinking re-runs the (expensive, whole-VM) property thousands of times
   and the generated programs are small anyway: report failures as-is. *)
let gen_program = Gen.no_shrink gen_program_shrinkable

(* --- the differential property --------------------------------------- *)

let run_arch src arch =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:300_000_000 ~verify_lir:true ~config:(Config.create arch)
      ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "?"

let reference src = Helpers.run_result ~fuel:300_000_000 src

let agree_under archs =
  Gen.map (fun src -> (src, ())) gen_program |> ignore;
  QCheck2.Test.make ~count:50
    ~name:
      (Printf.sprintf "random programs agree: interpreter vs %s"
         (String.concat "," (List.map Config.name archs)))
    gen_program
    (fun src ->
      let expected = reference src in
      List.for_all
        (fun arch ->
          let got = run_arch src arch in
          if got <> expected then
            QCheck2.Test.fail_reportf "under %s:\n%s\nexpected %s, got %s" (Config.name arch)
              src expected got
          else true)
        archs)

(* --- the structured fuzzer (lib/fuzz) -------------------------------- *)

module FGen = Nomap_fuzz.Gen
module Oracle = Nomap_fuzz.Oracle
module Shrink = Nomap_fuzz.Shrink
module Fuzz = Nomap_fuzz.Fuzz

let test_gen_deterministic () =
  let a = FGen.to_source (FGen.program_of_seed ~seed:12345) in
  let b = FGen.to_source (FGen.program_of_seed ~seed:12345) in
  Alcotest.(check string) "same seed, same program" a b;
  let c = FGen.to_source (FGen.program_of_seed ~seed:54321) in
  Alcotest.(check bool) "different seed, different program" true (a <> c)

let test_gen_roundtrips () =
  (* Printed programs must survive the real lexer/parser: the corpus is
     stored as source and the oracle compiles from source.  One parse
     normalizes literals (a printed [-3] reparses as unary minus), so the
     property is idempotence from the first reparse onward. *)
  for seed = 0 to 19 do
    let src = FGen.to_source (FGen.program_of_seed ~seed) in
    let name = string_of_int seed in
    let src1 = FGen.to_source (Nomap_jsir.Parser.parse_program_exn ~name src) in
    let src2 = FGen.to_source (Nomap_jsir.Parser.parse_program_exn ~name src1) in
    Alcotest.(check string) (Printf.sprintf "seed %d round-trips" seed) src1 src2
  done

let test_fixed_seed_batch_agrees () =
  let s = Fuzz.run ~shrink:false ~seed:42 ~iters:8 () in
  List.iter (fun f -> Alcotest.fail (Fuzz.failure_to_string f)) s.Fuzz.failures;
  Alcotest.(check int) "all tested" 8 s.Fuzz.tested

(* `dune runtest` runs with cwd = the test directory; `dune exec` from the
   repo root does not. *)
let corpus_dir =
  if Sys.file_exists "fuzz_corpus" then "fuzz_corpus" else "test/fuzz_corpus"

let test_corpus_agrees () =
  let files = Sys.readdir corpus_dir in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".js" then begin
        let src = In_channel.with_open_text (Filename.concat corpus_dir file) In_channel.input_all in
        let prog = Nomap_jsir.Parser.parse_program_exn ~name:file src in
        (match Oracle.check prog with
        | Oracle.Agree -> ()
        | Oracle.Skip msg -> Alcotest.fail (file ^ ": reference failed: " ^ msg)
        | Oracle.Diverge ds ->
          Alcotest.fail
            (file ^ " diverged:\n" ^ String.concat "\n" (List.map Oracle.divergence_to_string ds)));
        incr checked
      end)
    files;
  Alcotest.(check bool) "corpus nonempty" true (!checked >= 8)

let test_sabotage_caught_and_shrunk () =
  (* The acceptance criterion: inject a miscompile (swapped subtraction
     operands in FTL code), prove the oracle catches it and the shrinker
     reduces it to a tiny kernel. *)
  (* 500 checks: the generator's shared/Atomics shapes made seed-42
     programs bigger, and 200 ran out mid-shrink (35 nodes); 400 reaches
     the 14-node fixpoint, 500 is the library default with headroom. *)
  let s =
    Fuzz.run ~ftl_mutate:Fuzz.sabotage_swap_sub ~shrink:true ~shrink_checks:500 ~seed:42
      ~iters:2 ()
  in
  match s.Fuzz.failures with
  | [] -> Alcotest.fail "sabotaged FTL was not caught by the differential oracle"
  | f :: _ -> (
    match f.Fuzz.shrunk with
    | None -> Alcotest.fail "divergence was not shrunk"
    | Some p ->
      Alcotest.(check bool)
        (Printf.sprintf "shrunk kernel small (%d nodes)" (Shrink.kernel_size p))
        true
        (Shrink.kernel_size p <= 20);
      (* The reproducer must still diverge under the sabotage. *)
      (match Oracle.check ~ftl_mutate:Fuzz.sabotage_swap_sub p with
      | Oracle.Diverge _ -> ()
      | _ -> Alcotest.fail "shrunk program no longer reproduces the divergence"))

let test_shrink_size () =
  let p = FGen.program_of_seed ~seed:7 in
  Alcotest.(check bool) "size positive" true (Shrink.size p > 0);
  Alcotest.(check bool) "kernel smaller than whole" true (Shrink.kernel_size p < Shrink.size p)

let tests =
  [
    QCheck_alcotest.to_alcotest (agree_under [ Config.Base ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_S; Config.NoMap_B ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_full; Config.NoMap_BC ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_RTM ]);
    Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generator round-trips" `Quick test_gen_roundtrips;
    Alcotest.test_case "fixed-seed batch agrees" `Quick test_fixed_seed_batch_agrees;
    Alcotest.test_case "pinned corpus agrees" `Quick test_corpus_agrees;
    Alcotest.test_case "sabotage caught and shrunk" `Quick test_sabotage_caught_and_shrunk;
    Alcotest.test_case "shrink sizes" `Quick test_shrink_size;
  ]
