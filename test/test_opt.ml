(** Optimizer behaviour tests: each pass's paper-relevant legality rule,
    checked on real compiled code — SMPs block motion, aborts don't. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg
module Config = Nomap_nomap.Config
module Specialize = Nomap_tiers.Specialize
module Transform = Nomap_nomap.Transform

(* Compile a hot function under Baseline profiling, apply the configured
   NoMap transform, run the FTL pipeline, return the LIR. *)
let ftl_code ?(arch = Config.Base) ?(fid = 0) src =
  let inst, _, profile = Helpers.run_program ~mode:Nomap_interp.Interp.Baseline_tier src in
  let profile = Option.get profile in
  let bc = inst.Nomap_interp.Instance.prog.Nomap_bytecode.Opcode.funcs.(fid) in
  let consts = inst.Nomap_interp.Instance.consts.(fid) in
  let fp = Nomap_profile.Feedback.func_profile profile fid in
  let c = Specialize.compile ~bc ~consts ~profile:fp in
  ignore
    (Transform.apply (Config.create arch) ~placement:Nomap_nomap.Txplace.Auto ~profile:fp c);
  ignore (Nomap_opt.Pipeline.ftl c.Specialize.lir);
  Nomap_lir.Verify.verify c.Specialize.lir;
  c.Specialize.lir

let count lir pred =
  let n = ref 0 in
  L.iter_instrs lir (fun _ i -> if pred i.L.kind then incr n);
  !n

let count_in_loops lir pred =
  let doms = Cfg.compute_doms lir in
  let loops = Cfg.natural_loops lir doms in
  let in_any_loop b = List.exists (fun l -> List.mem b l.Cfg.body) loops in
  let n = ref 0 in
  L.iter_instrs lir (fun blk i -> if in_any_loop blk.L.bid && pred i.L.kind then incr n);
  !n

let hot kernel =
  Printf.sprintf "%s var it; for (it = 0; it < 60; it++) { result = bench(); }" kernel

let sum_loop =
  hot
    "function bench() { var a = [1, 2, 3, 4, 5, 6, 7, 8]; var s = 0; for (var i = 0; i < \
     a.length; i++) { s += a[i]; } return s; }"

let obj_accum =
  hot
    "function bench() { var obj = { values: [1, 2, 3, 4, 5, 6, 7, 8], sum: 0 }; obj.sum = 0; \
     var len = obj.values.length; for (var idx = 0; idx < len; idx++) { obj.sum += \
     obj.values[idx]; } return obj.sum; }"

let test_gvn_dedupes_arithmetic () =
  let src =
    hot "function bench() { var s = 0; for (var i = 1; i < 40; i++) { s += i * i + i * i; } \
         return s; }"
  in
  let lir = ftl_code src in
  Alcotest.(check int) "one multiply after GVN" 1
    (count lir (function L.Imul _ -> true | _ -> false))

let test_gvn_dedupes_pure_checks () =
  (* Two int uses of the same value need only one Check_int. *)
  let src =
    hot "function bench() { var s = 0; for (var i = 0; i < 40; i++) { var x = i | 0; s = (s + \
         (x & 7) + (x & 3)) | 0; } return s; }"
  in
  let lir = ftl_code src in
  (* The same value must not be int-checked twice in the loop. *)
  Alcotest.(check bool) "at most one check_int" true
    (count lir (function L.Check_int _ -> true | _ -> false) <= 1)

let test_licm_blocked_by_smp_in_base () =
  (* a.length is loop-invariant but its load cannot leave a loop full of
     SMPs (paper III-A3). *)
  let lir = ftl_code ~arch:Config.Base sum_loop in
  Alcotest.(check bool) "length load stays in loop under Base" true
    (count_in_loops lir (function L.Load_length _ -> true | _ -> false) >= 1)

let test_licm_enabled_by_transactions () =
  let lir = ftl_code ~arch:Config.NoMap_S sum_loop in
  Alcotest.(check int) "length load hoisted out of loop under NoMap_S" 0
    (count_in_loops lir (function L.Load_length _ -> true | _ -> false))

let test_promote_blocked_by_smp () =
  let lir = ftl_code ~arch:Config.Base obj_accum in
  Alcotest.(check bool) "obj.sum store stays in loop under Base" true
    (count_in_loops lir (function L.Store_slot _ -> true | _ -> false) >= 1)

let test_promote_enabled_by_transactions () =
  let lir = ftl_code ~arch:Config.NoMap_S obj_accum in
  Alcotest.(check int) "obj.sum store sunk out of loop under NoMap_S" 0
    (count_in_loops lir (function L.Store_slot _ -> true | _ -> false));
  (* The store still happens once per region execution, at the exits. *)
  Alcotest.(check bool) "exit store exists" true
    (count lir (function L.Store_slot _ -> true | _ -> false) >= 1)

let test_bounds_combining () =
  let base = ftl_code ~arch:Config.NoMap_S sum_loop in
  let combined = ftl_code ~arch:Config.NoMap_B sum_loop in
  let in_loop_bounds lir = count_in_loops lir (function L.Check_bounds _ -> true | _ -> false) in
  Alcotest.(check bool) "NoMap_S keeps per-iteration bounds checks" true
    (in_loop_bounds base >= 1);
  Alcotest.(check int) "NoMap_B removes per-iteration bounds checks" 0
    (in_loop_bounds combined);
  (* Boundary checks exist outside the loop. *)
  Alcotest.(check bool) "boundary checks inserted" true
    (count combined (function L.Check_bounds _ -> true | _ -> false) >= 2)

let test_overflow_removal_with_sof () =
  let with_checks = ftl_code ~arch:Config.NoMap_B sum_loop in
  let without = ftl_code ~arch:Config.NoMap_full sum_loop in
  Alcotest.(check bool) "NoMap_B keeps overflow checks" true
    (count with_checks (function L.Check_overflow _ -> true | _ -> false) >= 1);
  Alcotest.(check int) "NoMap removes in-transaction overflow checks" 0
    (count_in_loops without (function L.Check_overflow _ -> true | _ -> false))

let test_rtm_keeps_overflow_checks () =
  (* x86 has no SOF: NoMap_RTM cannot remove overflow checks. *)
  let lir = ftl_code ~arch:Config.NoMap_RTM sum_loop in
  Alcotest.(check bool) "RTM keeps overflow checks" true
    (count lir (function L.Check_overflow _ -> true | _ -> false) >= 1)

let test_bc_removes_all_checks_in_tx () =
  (* BC is a limit study on check *cost*, not check *presence*: deleting
     the guards outright miscompiles any program where a check would
     actually fail (found by the differential fuzzer), so the transform
     marks them elided — still executed, zero machine cost. *)
  let lir = ftl_code ~arch:Config.NoMap_BC sum_loop in
  let aborts = ref 0 and aborts_elided = ref 0 and others_elided = ref 0 in
  L.iter_instrs lir (fun _ i ->
      match L.exit_of i.L.kind with
      | Some { L.ekind = L.Abort; _ } ->
        incr aborts;
        if i.L.elided then incr aborts_elided
      | _ -> if i.L.elided then incr others_elided);
  Alcotest.(check bool) "guards still present" true (!aborts >= 1);
  Alcotest.(check int) "every abort-exit check elided" !aborts !aborts_elided;
  Alcotest.(check int) "nothing else elided" 0 !others_elided

let test_elide_truncated_add () =
  (* (s + i) & mask needs no overflow check even in Base: wrap == ToInt32. *)
  let src =
    hot "function bench() { var s = 0; for (var i = 0; i < 40; i++) { s = (s + i) & 0xFFFF; } \
         return s; }"
  in
  let lir = ftl_code ~arch:Config.Base src in
  Alcotest.(check bool) "wrapping add emitted" true
    (count lir (function L.Iadd_wrap _ -> true | _ -> false) >= 1);
  (* Only the loop-counter increment keeps its check. *)
  Alcotest.(check bool) "at most one overflow check" true
    (count lir (function L.Check_overflow _ -> true | _ -> false) <= 1)

let test_elide_chain () =
  (* ((h << 5) - h + i) & 0xFFFF : the whole chain elides via fixpoint
     (operands stay comfortably inside int32, so the int path is taken). *)
  let src =
    hot "function bench() { var h = 7; for (var i = 0; i < 40; i++) { h = ((h << 5) - h + i) & \
         0xFFFF; } return h; }"
  in
  let lir = ftl_code ~arch:Config.Base src in
  Alcotest.(check bool) "chain uses wrapping ops" true
    (count lir (function L.Isub_wrap _ | L.Iadd_wrap _ -> true | _ -> false) >= 2)

let test_overflowing_chain_uses_doubles () =
  (* With overflow feedback the chain compiles to double math plus an
     inline truncating OR — no generic runtime call (JSC's ValueToInt32). *)
  let src =
    hot "function bench() { var h = 7; for (var i = 0; i < 40; i++) { h = ((h << 5) - h + i) | \
         0; } return h; }"
  in
  let lir = ftl_code ~arch:Config.Base src in
  Alcotest.(check int) "no generic binop runtime call" 0
    (count lir (function L.Call_runtime (L.Rt_binop _, _, _) -> true | _ -> false));
  Alcotest.(check bool) "double subtract used" true
    (count lir (function L.Fsub _ -> true | _ -> false) >= 1)

let test_elide_not_applied_to_mul () =
  (* (a * b) | 0 must keep its overflow check (double rounding != wrap). *)
  let src =
    hot "function bench() { var h = 3; for (var i = 1; i < 40; i++) { h = (h * 31) & 0xFFFF; } \
         return h; }"
  in
  let lir = ftl_code ~arch:Config.Base src in
  Alcotest.(check bool) "multiply keeps overflow check" true
    (count lir (function L.Check_overflow _ -> true | _ -> false) >= 1);
  Alcotest.(check int) "no wrap for multiply" 0
    (count lir (function L.Iadd_wrap _ | L.Isub_wrap _ -> true | _ -> false))

let test_dce_keeps_smp_live_values () =
  (* A value only observable through a deopt live map must survive DCE. *)
  let lir = ftl_code ~arch:Config.Base sum_loop in
  L.iter_instrs lir (fun _ i ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "live value defined" true ((L.instr lir v).L.block >= 0))
        (L.smp_uses i.L.kind))

let test_transform_stats () =
  let inst, _, profile =
    Helpers.run_program ~mode:Nomap_interp.Interp.Baseline_tier sum_loop
  in
  let profile = Option.get profile in
  let bc = inst.Nomap_interp.Instance.prog.Nomap_bytecode.Opcode.funcs.(0) in
  let consts = inst.Nomap_interp.Instance.consts.(0) in
  let fp = Nomap_profile.Feedback.func_profile profile 0 in
  let c = Specialize.compile ~bc ~consts ~profile:fp in
  let stats = Transform.empty_stats () in
  let regions =
    Transform.apply (Config.create Config.NoMap_full) ~placement:Nomap_nomap.Txplace.Auto
      ~profile:fp ~stats c
  in
  Alcotest.(check bool) "regions placed" true (List.length regions >= 1);
  Alcotest.(check bool) "bounds combined counted" true (stats.Transform.bounds_combined >= 1);
  Alcotest.(check bool) "overflow removed counted" true (stats.Transform.overflow_removed >= 1)

let tests =
  [
    Alcotest.test_case "gvn dedupes arithmetic" `Quick test_gvn_dedupes_arithmetic;
    Alcotest.test_case "gvn dedupes pure checks" `Quick test_gvn_dedupes_pure_checks;
    Alcotest.test_case "licm blocked by SMPs (Base)" `Quick test_licm_blocked_by_smp_in_base;
    Alcotest.test_case "licm enabled by tx (NoMap_S)" `Quick test_licm_enabled_by_transactions;
    Alcotest.test_case "promotion blocked by SMPs" `Quick test_promote_blocked_by_smp;
    Alcotest.test_case "promotion enabled by tx" `Quick test_promote_enabled_by_transactions;
    Alcotest.test_case "bounds combining (NoMap_B)" `Quick test_bounds_combining;
    Alcotest.test_case "overflow removal with SOF" `Quick test_overflow_removal_with_sof;
    Alcotest.test_case "RTM keeps overflow checks" `Quick test_rtm_keeps_overflow_checks;
    Alcotest.test_case "BC removes all tx checks" `Quick test_bc_removes_all_checks_in_tx;
    Alcotest.test_case "elide truncated add" `Quick test_elide_truncated_add;
    Alcotest.test_case "elide chain" `Quick test_elide_chain;
    Alcotest.test_case "overflowing chain uses doubles" `Quick test_overflowing_chain_uses_doubles;
    Alcotest.test_case "no elide for multiply" `Quick test_elide_not_applied_to_mul;
    Alcotest.test_case "dce keeps smp live values" `Quick test_dce_keeps_smp_live_values;
    Alcotest.test_case "transform stats" `Quick test_transform_stats;
  ]
