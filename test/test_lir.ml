(** LIR construction: SSA well-formedness, speculation decisions, CFG
    analyses. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg
module Verify = Nomap_lir.Verify

(* Compile [src] under the Baseline tier (collecting feedback), then run the
   speculative compiler on function [fid]. *)
let specialize ?(fid = 0) src =
  let inst, _, profile = Helpers.run_program ~mode:Nomap_interp.Interp.Baseline_tier src in
  let profile = Option.get profile in
  let bc = inst.Nomap_interp.Instance.prog.Nomap_bytecode.Opcode.funcs.(fid) in
  let consts = inst.Nomap_interp.Instance.consts.(fid) in
  let fp = Nomap_profile.Feedback.func_profile profile fid in
  (Nomap_tiers.Specialize.compile ~bc ~consts ~profile:fp, inst, profile)

let hot_loop_src =
  "function hot(a, n) { var s = 0; for (var i = 0; i < n; i++) { s += a[i]; } return s; } \
   var arr = [1, 2, 3, 4, 5, 6, 7, 8]; var r = 0; for (var k = 0; k < 30; k++) { r = hot(arr, \
   arr.length); } result = r;"

let count_kind lir pred =
  let n = ref 0 in
  L.iter_instrs lir (fun _ i -> if pred i.L.kind then incr n);
  !n

let test_verify_simple () =
  let c, _, _ = specialize "function f(a, b) { return a + b; } var r = f(1, 2); result = r;" in
  Verify.verify c.Nomap_tiers.Specialize.lir

let test_verify_loop () =
  let c, _, _ = specialize hot_loop_src in
  Verify.verify c.Nomap_tiers.Specialize.lir;
  Alcotest.(check bool) "has phis" true
    (count_kind c.Nomap_tiers.Specialize.lir (function L.Phi _ -> true | _ -> false) >= 2)

let test_speculation_int_loop () =
  let c, _, _ = specialize hot_loop_src in
  let lir = c.Nomap_tiers.Specialize.lir in
  (* The loop should speculate: bounds check, hole check, overflow check. *)
  Alcotest.(check bool) "bounds check" true
    (count_kind lir (function L.Check_bounds _ -> true | _ -> false) >= 1);
  Alcotest.(check bool) "overflow check" true
    (count_kind lir (function L.Check_overflow _ -> true | _ -> false) >= 1);
  Alcotest.(check bool) "element fast path" true
    (count_kind lir (function L.Load_elem _ -> true | _ -> false) >= 1);
  (* No generic runtime element access. *)
  Alcotest.(check int) "no generic get_elem" 0
    (count_kind lir (function
      | L.Call_runtime (L.Rt_get_elem, _, _) -> true
      | _ -> false))

let test_speculation_property () =
  let src =
    "function f(o) { return o.x + o.y; } var obj = { x: 1, y: 2 }; var r = 0; for (var k = 0; k \
     < 30; k++) { r = f(obj); } result = r;"
  in
  let c, _, _ = specialize src in
  let lir = c.Nomap_tiers.Specialize.lir in
  Verify.verify lir;
  Alcotest.(check bool) "shape check emitted" true
    (count_kind lir (function L.Check_shape _ -> true | _ -> false) >= 1);
  Alcotest.(check bool) "slot loads" true
    (count_kind lir (function L.Load_slot _ -> true | _ -> false) >= 2)

let test_speculation_double () =
  let src =
    "function f(x) { return x * 1.5 + 0.25; } var r = 0; for (var k = 0; k < 30; k++) { r = \
     f(k); } result = r;"
  in
  let c, _, _ = specialize src in
  let lir = c.Nomap_tiers.Specialize.lir in
  Verify.verify lir;
  Alcotest.(check bool) "double math" true
    (count_kind lir (function L.Fmul _ | L.Fadd _ -> true | _ -> false) >= 2);
  Alcotest.(check int) "no overflow checks on doubles" 0
    (count_kind lir (function L.Check_overflow _ -> true | _ -> false))

let test_cold_code_generic () =
  (* A function never called gets no useful feedback: generic runtime ops. *)
  let src = "function cold(o) { return o.x + 1; } var r = 1; result = r;" in
  let c, _, _ = specialize src in
  let lir = c.Nomap_tiers.Specialize.lir in
  Verify.verify lir;
  Alcotest.(check bool) "generic property access" true
    (count_kind lir (function L.Call_runtime (L.Rt_get_prop _, _, _) -> true | _ -> false) >= 1)

let test_smp_live_maps () =
  let c, _, _ = specialize hot_loop_src in
  let lir = c.Nomap_tiers.Specialize.lir in
  (* Every deopt check must carry a live map whose values are defined. *)
  let checked = ref 0 in
  L.iter_instrs lir (fun _ i ->
      match L.exit_of i.L.kind with
      | Some { L.ekind = L.Deopt; smp } ->
        incr checked;
        Alcotest.(check bool) "live map nonempty" true (List.length smp.L.live > 0)
      | _ -> ());
  Alcotest.(check bool) "has deopt checks" true (!checked > 0)

let test_loop_detection () =
  let c, _, _ = specialize hot_loop_src in
  let lir = c.Nomap_tiers.Specialize.lir in
  let doms = Cfg.compute_doms lir in
  let loops = Cfg.natural_loops lir doms in
  Alcotest.(check int) "one loop in hot" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "loop has exit" true (List.length l.Cfg.exits >= 1);
  Alcotest.(check int) "depth 1" 1 l.Cfg.depth

let test_nested_loop_depth () =
  let src =
    "function f(n) { var s = 0; for (var i = 0; i < n; i++) { for (var j = 0; j < n; j++) { s \
     += i * j; } } return s; } var r = 0; for (var k = 0; k < 30; k++) { r = f(5); } result = \
     r;"
  in
  let c, _, _ = specialize src in
  let lir = c.Nomap_tiers.Specialize.lir in
  Verify.verify lir;
  let doms = Cfg.compute_doms lir in
  let loops = Cfg.natural_loops lir doms in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let depths = List.sort compare (List.map (fun l -> l.Cfg.depth) loops) in
  Alcotest.(check (list int)) "nesting" [ 1; 2 ] depths

let test_entry_state_recorded () =
  let c, _, _ = specialize hot_loop_src in
  Alcotest.(check bool) "loop header entry state captured" true
    (Hashtbl.length c.Nomap_tiers.Specialize.entry_states >= 1)

let test_dominators_diamond () =
  let src =
    "function f(x) { var r = 0; if (x > 0) { r = 1; } else { r = 2; } return r + x; } var r = \
     0; for (var k = 0; k < 30; k++) { r = f(k - 15); } result = r;"
  in
  let c, _, _ = specialize src in
  let lir = c.Nomap_tiers.Specialize.lir in
  Verify.verify lir;
  let doms = Cfg.compute_doms lir in
  (* Entry dominates everything reachable. *)
  let reach = Cfg.reachable lir in
  L.iter_blocks lir (fun b ->
      if reach.(b.L.bid) then
        Alcotest.(check bool) "entry dominates" true (Cfg.dominates doms lir.L.entry b.L.bid))

let test_preheader_creation () =
  let c, _, _ = specialize hot_loop_src in
  let lir = c.Nomap_tiers.Specialize.lir in
  let doms = Cfg.compute_doms lir in
  match Cfg.natural_loops lir doms with
  | [ l ] ->
    let ph = Cfg.ensure_preheader lir l in
    Verify.verify lir;
    Alcotest.(check bool) "preheader jumps to header" true
      ((Nomap_lir.Lir.block lir ph).L.term = L.Jump l.Cfg.header)
  | _ -> Alcotest.fail "expected one loop"

(* --- verifier strengthening regressions ------------------------------ *)

(* Hand-built graphs shaped like real miscompiles the original verifier
   (definedness-only on SMP live maps, no terminator checks) accepted. *)

let add_instr f (b : L.block) kind =
  let i = L.new_instr f kind in
  i.L.block <- b.L.bid;
  b.L.instrs <- b.L.instrs @ [ i.L.id ];
  i.L.id

let expect_ill_formed what f =
  match Verify.verify f with
  | () -> Alcotest.fail (what ^ ": verifier accepted an ill-formed graph")
  | exception Verify.Ill_formed _ -> ()

let test_verify_rejects_undominated_smp_live () =
  (* The old LICM bug: a Deopt check hoisted above the loop while its live
     map still names a value defined inside the loop.  Here distilled to a
     check in b0 whose live map references a value defined in b1. *)
  let f = L.create_func ~fid:0 in
  let b0 = L.new_block f and b1 = L.new_block f in
  f.L.entry <- b0.L.bid;
  let c = add_instr f b0 (L.Const (Nomap_runtime.Value.Int 1)) in
  let vx = add_instr f b1 (L.Const (Nomap_runtime.Value.Int 7)) in
  let exit = { L.ekind = L.Deopt; smp = L.fresh_smp f ~resume_pc:0 ~live:[ (0, vx) ] } in
  ignore (add_instr f b0 (L.Check_int (c, exit)));
  b0.L.term <- L.Jump b1.L.bid;
  b1.L.term <- L.Ret None;
  expect_ill_formed "undominated smp live" f

let test_verify_rejects_undominated_branch_cond () =
  (* Branching in b0 on a value only defined in a successor. *)
  let f = L.create_func ~fid:0 in
  let b0 = L.new_block f and b1 = L.new_block f and b2 = L.new_block f in
  f.L.entry <- b0.L.bid;
  let vc = add_instr f b1 (L.Const (Nomap_runtime.Value.Bool true)) in
  b0.L.term <- L.Br (vc, b1.L.bid, b2.L.bid);
  b1.L.term <- L.Ret None;
  b2.L.term <- L.Ret None;
  expect_ill_formed "undominated branch condition" f

let test_verify_rejects_partial_ret () =
  (* Returning a value defined on only one side of a diamond. *)
  let f = L.create_func ~fid:0 in
  let b0 = L.new_block f
  and b1 = L.new_block f
  and b2 = L.new_block f
  and b3 = L.new_block f in
  f.L.entry <- b0.L.bid;
  let c = add_instr f b0 (L.Const (Nomap_runtime.Value.Bool true)) in
  let vr = add_instr f b1 (L.Const (Nomap_runtime.Value.Int 3)) in
  b0.L.term <- L.Br (c, b1.L.bid, b2.L.bid);
  b1.L.term <- L.Jump b3.L.bid;
  b2.L.term <- L.Jump b3.L.bid;
  b3.L.term <- L.Ret (Some vr);
  expect_ill_formed "partially-defined return value" f

let test_verify_rejects_undefined_ret () =
  let f = L.create_func ~fid:0 in
  let b0 = L.new_block f in
  f.L.entry <- b0.L.bid;
  b0.L.term <- L.Ret (Some 999);
  expect_ill_formed "undefined return value" f

let tests =
  [
    Alcotest.test_case "verify simple" `Quick test_verify_simple;
    Alcotest.test_case "verify rejects undominated smp live" `Quick
      test_verify_rejects_undominated_smp_live;
    Alcotest.test_case "verify rejects undominated branch cond" `Quick
      test_verify_rejects_undominated_branch_cond;
    Alcotest.test_case "verify rejects partial ret" `Quick test_verify_rejects_partial_ret;
    Alcotest.test_case "verify rejects undefined ret" `Quick test_verify_rejects_undefined_ret;
    Alcotest.test_case "verify loop" `Quick test_verify_loop;
    Alcotest.test_case "int loop speculation" `Quick test_speculation_int_loop;
    Alcotest.test_case "property speculation" `Quick test_speculation_property;
    Alcotest.test_case "double speculation" `Quick test_speculation_double;
    Alcotest.test_case "cold code generic" `Quick test_cold_code_generic;
    Alcotest.test_case "smp live maps" `Quick test_smp_live_maps;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "nested loop depth" `Quick test_nested_loop_depth;
    Alcotest.test_case "entry state recorded" `Quick test_entry_state_recorded;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "preheader creation" `Quick test_preheader_creation;
  ]
