open Nomap_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let p = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Prng.int p 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_float_bounds () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.float p 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_prng_seed_changes_stream () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_shuffle_permutation () =
  let p = Prng.create ~seed:9 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [])

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 5.0 (Stats.geomean [ 5.0 ])

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "known" 1.0 (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ])

let test_percent_reduction () =
  Alcotest.(check (float 1e-9)) "20%" 20.0 (Stats.percent_reduction ~base:100.0 80.0)

let test_percentile_interpolates () =
  (* Linear interpolation between closest ranks (numpy default): quartiles
     of [1;2;3;4] land between elements, not on them. *)
  let xs = [ 4.0; 2.0; 1.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p25" 1.75 (Stats.percentile xs 25.0);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p75" 3.25 (Stats.percentile xs 75.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "median of 2" 1.5 (Stats.percentile [ 1.0; 2.0 ] 50.0);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.percentile [ 7.0 ] 99.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.percentile [] 50.0)

let test_prng_int_unbiased () =
  (* Rejection sampling must make every residue equally likely even for a
     bound adversarial to "mod": with bound 3 over 40k draws each bucket
     expects ~13333; the old 2^62-mod-3 bias is tiny, but a buggy masked
     rejection (e.g. never rejecting) skews buckets grossly.  Bound the
     deviation loosely so the test is seed-robust. *)
  let p = Prng.create ~seed:11 in
  let buckets = Array.make 3 0 in
  let draws = 40_000 in
  for _ = 1 to draws do
    let x = Prng.int p 3 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iter
    (fun n ->
      let expected = draws / 3 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (n - expected) < expected / 20))
    buckets

let test_table_render () =
  let t = Table.create ~title:"T" ~header:[ "name"; "v" ] () in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| alpha |  1 |"))

let qcheck_geomean_le_mean =
  QCheck2.Test.make ~name:"geomean <= mean (positive inputs)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.001 1000.0))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let qcheck_prng_int_range =
  QCheck2.Test.make ~name:"prng int stays in range" ~count:200
    QCheck2.Gen.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let x = Prng.int p bound in
      x >= 0 && x < bound)

let tests =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seed_changes_stream;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percent reduction" `Quick test_percent_reduction;
    Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
    Alcotest.test_case "prng int unbiased" `Quick test_prng_int_unbiased;
    Alcotest.test_case "table render" `Quick test_table_render;
    QCheck_alcotest.to_alcotest qcheck_geomean_le_mean;
    QCheck_alcotest.to_alcotest qcheck_prng_int_range;
  ]
