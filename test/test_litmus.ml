(** Litmus tests for the multi-agent shared-memory model (DESIGN.md §16).

    The interleaving scheduler serializes shared-segment operations one
    turn at a time, so the model is sequentially consistent by
    construction.  These tests *prove* that for the classic litmus shapes:
    [Interleave.enumerate_schedules] enumerates every schedule the [Fixed]
    policy can produce for the given per-agent operation counts, each
    schedule is executed for real (N VMs on N domains over one segment),
    and the set of observed outcomes must equal the SC-allowed set exactly
    — weak-memory outcomes (SB's (0,0), LB's (1,1), MP's stale-data, CoRR
    reordering) must never appear, and every SC outcome must actually be
    producible, or the scheduler isn't really interleaving. *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Agents = Nomap_agents.Agents
module Interleave = Nomap_shared.Interleave

let config = Config.create Config.Base

let int_global vm name =
  match Vm.global vm name with
  | Some v -> Value.to_int32 v
  | None -> Alcotest.failf "litmus: no global %s" name

(** Run [srcs.(i)] on agent [i] under every schedule with [counts.(i)]
    shared-op turns for agent [i]; return the deduplicated, sorted list of
    [extract]ed outcomes.  Interp tier: one shared op = one turn, no
    transactions, so the enumeration is exhaustive. *)
let observe ~counts ~extract srcs =
  let progs = Array.map Helpers.compile srcs in
  let outcomes =
    List.map
      (fun sched ->
        let r =
          Agents.run
            ~policy:(Interleave.Fixed sched)
            ~segment_size:16 ~config ~tier_cap:Vm.Cap_interp progs
        in
        Array.iter
          (fun (o : Agents.outcome) ->
            match o.Agents.result with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "litmus agent failed: %s" msg)
          r.Agents.outcomes;
        extract r)
      (Interleave.enumerate_schedules counts)
  in
  List.sort_uniq compare outcomes

let vm_of (r : Agents.run_result) i =
  match r.Agents.outcomes.(i).Agents.vm with
  | Some vm -> vm
  | None -> Alcotest.fail "litmus: agent VM missing"

let check_set name expected observed =
  Alcotest.(check (list (list int))) name (List.sort_uniq compare expected) observed

(* r0/r1 observation: one register per agent. *)
let regs r = [ int_global (vm_of r 0) "r0"; int_global (vm_of r 1) "r1" ]

(** SB (store buffering / Dekker): each agent stores its flag then reads
    the other's.  TSO/weak memory allows (0,0); SC forbids it. *)
let test_store_buffering () =
  let observed =
    observe ~counts:[| 2; 2 |] ~extract:regs
      [|
        "Atomics.store(0, 1); var r0 = Atomics.load(1);";
        "Atomics.store(1, 1); var r1 = Atomics.load(0);";
      |]
  in
  check_set "SB: exactly the SC outcomes" [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] observed

(** MP (message passing): writer publishes data then a flag; reader reads
    flag then data.  Seeing the flag without the data is forbidden. *)
let test_message_passing () =
  let observed =
    observe ~counts:[| 2; 2 |]
      ~extract:(fun r ->
        [ int_global (vm_of r 1) "r0"; int_global (vm_of r 1) "r1" ])
      [|
        "Atomics.store(0, 42); Atomics.store(1, 1);";
        "var r0 = Atomics.load(1); var r1 = Atomics.load(0);";
      |]
  in
  check_set "MP: flag implies data" [ [ 0; 0 ]; [ 0; 42 ]; [ 1; 42 ] ] observed

(** LB (load buffering): each agent loads the other's slot then stores its
    own.  (1,1) requires loads to see future stores — forbidden. *)
let test_load_buffering () =
  let observed =
    observe ~counts:[| 2; 2 |] ~extract:regs
      [|
        "var r0 = Atomics.load(1); Atomics.store(0, 1);";
        "var r1 = Atomics.load(0); Atomics.store(1, 1);";
      |]
  in
  check_set "LB: no out-of-thin-air" [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ] observed

(** CoRR (coherence, read-read): two reads of one location may not observe
    a store and then un-observe it. *)
let test_corr () =
  let observed =
    observe ~counts:[| 1; 2 |]
      ~extract:(fun r ->
        [ int_global (vm_of r 1) "r0"; int_global (vm_of r 1) "r1" ])
      [|
        "Atomics.store(0, 1);";
        "var r0 = Atomics.load(0); var r1 = Atomics.load(0);";
      |]
  in
  check_set "CoRR: reads never go backwards" [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ] observed

(** Atomic RMW atomicity: two agents each add 1 twice; lost updates would
    leave the counter below 4.  Every schedule must total exactly 4. *)
let test_rmw_atomicity () =
  let observed =
    observe ~counts:[| 2; 2 |]
      ~extract:(fun r -> [ r.Agents.segment_data.(0) ])
      [| "Atomics.add(0, 1); Atomics.add(0, 1);"; "Atomics.add(0, 1); Atomics.add(0, 1);" |]
  in
  check_set "RMW: no lost updates" [ [ 4 ] ] observed

(** SC fences: SB with an [Atomics.fence] between the store and the load.
    The fence consumes a scheduler turn like any shared op (counts are 3)
    and the forbidden (0,0) outcome must stay forbidden. *)
let test_fence_sb () =
  let observed =
    observe ~counts:[| 3; 3 |] ~extract:regs
      [|
        "Atomics.store(0, 1); Atomics.fence(); var r0 = Atomics.load(1);";
        "Atomics.store(1, 1); Atomics.fence(); var r1 = Atomics.load(0);";
      |]
  in
  check_set "fenced SB: exactly the SC outcomes" [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] observed

(** Exchange linearization: both agents exchange into slot 0; exactly one
    of them must observe the initial 0, and the final value must be the
    other agent's — the two serialization orders and nothing else. *)
let test_exchange_order () =
  let observed =
    observe ~counts:[| 1; 1 |]
      ~extract:(fun r ->
        [
          int_global (vm_of r 0) "r0";
          int_global (vm_of r 1) "r1";
          r.Agents.segment_data.(0);
        ])
      [| "var r0 = Atomics.exchange(0, 1);"; "var r1 = Atomics.exchange(0, 2);" |]
  in
  check_set "exchange: linearized" [ [ 0; 1; 2 ]; [ 2; 0; 1 ] ] observed

let tests =
  [
    Alcotest.test_case "litmus: store buffering (SB)" `Quick test_store_buffering;
    Alcotest.test_case "litmus: message passing (MP)" `Quick test_message_passing;
    Alcotest.test_case "litmus: load buffering (LB)" `Quick test_load_buffering;
    Alcotest.test_case "litmus: coherence read-read (CoRR)" `Quick test_corr;
    Alcotest.test_case "litmus: RMW atomicity" `Quick test_rmw_atomicity;
    Alcotest.test_case "litmus: SC fence ordering" `Quick test_fence_sb;
    Alcotest.test_case "litmus: exchange linearization" `Quick test_exchange_order;
  ]
