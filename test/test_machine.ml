(** Machine-level behaviour: instruction-category accounting, chunked
    transactions, RTM timing, and the irrevocable deopt-inside-transaction
    path. *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Htm = Nomap_htm.Htm
module Value = Nomap_runtime.Value

let run ?(arch = Config.NoMap_full) ?(fuel = 500_000_000) src =
  let prog = Helpers.compile src in
  let t = Vm.create ~fuel ~verify_lir:true ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog in
  ignore (Vm.run_main t);
  t

let result_of t =
  match Vm.global t "result" with Some v -> Value.to_js_string v | None -> "?"

let cat t c = (Vm.counters t).Counters.instrs.(Counters.category_index c)

(* A leaf kernel: everything hot runs in the function that owns the tx. *)
let leaf_kernel =
  "function bench() { var a = [1, 2, 3, 4, 5, 6, 7, 8]; var s = 0; for (var i = 0; i < \
   a.length; i++) { s += a[i]; } return s; } var it; for (it = 0; it < 60; it++) { result = \
   bench(); }"

(* A kernel whose hot loop body is a call: the callee's own loop carries the
   transaction; the caller's loop is skipped by placement (call-dominated). *)
let call_kernel =
  "function inner(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } return s; \
   } function bench() { var a = [1, 2, 3, 4, 5, 6, 7, 8]; var t = 0; for (var k = 0; k < 10; \
   k++) { t += inner(a); } return t; } var it; for (it = 0; it < 60; it++) { result = bench(); \
   }"

let test_leaf_categories () =
  let t = run ~arch:Config.Base leaf_kernel in
  Alcotest.(check bool) "TMOpt dominates FTL instrs" true
    (cat t Counters.Tm_opt > cat t Counters.No_tm);
  Alcotest.(check bool) "some NoFTL (warmup tiers)" true (cat t Counters.No_ftl > 0)

let test_callee_owns_transaction () =
  (* With call-aware placement, inner()'s loop carries its own tx: its code
     is TMOpt, not TMUnopt. *)
  let t = run ~arch:Config.NoMap_full call_kernel in
  Alcotest.(check string) "correct" "360" (result_of t);
  Alcotest.(check bool) "TMOpt present" true (cat t Counters.Tm_opt > 0);
  Alcotest.(check bool) "commits happen in callee" true
    ((Vm.counters t).Counters.tx_commits > 100)

let test_chunked_transactions () =
  (* 4000 stores * 8B = 32KB per entry, above the scaled 16KB ROT budget:
     the loop gets chunked, so each call commits more than once. *)
  let src =
    "function bench() { var a = new Array(4000); for (var i = 0; i < 4000; i++) { a[i] = i; } \
     return a[3999]; } var it; for (it = 0; it < 40; it++) { result = bench(); }"
  in
  let t = run src in
  Alcotest.(check string) "correct" "3999" (result_of t);
  let ftl_calls_of_bench = (Vm.counters t).Counters.ftl_calls in
  Alcotest.(check bool)
    (Printf.sprintf "commits (%d) exceed FTL calls (%d): mid-loop commits happened"
       (Vm.counters t).Counters.tx_commits ftl_calls_of_bench)
    true
    ((Vm.counters t).Counters.tx_commits > ftl_calls_of_bench);
  Alcotest.(check int) "no capacity aborts (tiles fit)" 0 (Vm.counters t).Counters.tx_aborts

let test_rtm_reads_slower () =
  (* Read-heavy kernel: RTM charges a per-read penalty inside transactions
     and a costlier commit; the same instruction stream must cost strictly
     more cycles than ROT wherever transactions run (Timing.rtm_read_penalty
     actually being charged is what this guards). *)
  let t_rot = run ~arch:Config.NoMap_B leaf_kernel in
  let t_rtm = run ~arch:Config.NoMap_RTM leaf_kernel in
  Alcotest.(check string) "same result" (result_of t_rot) (result_of t_rtm);
  Alcotest.(check bool) "RTM committed transactions" true
    ((Vm.counters t_rtm).Counters.tx_commits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "RTM cycles (%.1f) > ROT cycles (%.1f)"
       (Counters.cycles (Vm.counters t_rtm)) (Counters.cycles (Vm.counters t_rot)))
    true
    (Counters.cycles (Vm.counters t_rtm) > Counters.cycles (Vm.counters t_rot))

let test_deopt_in_tx_aborts () =
  (* inner() is int-specialized during warmup; the final call feeds doubles
     while the caller's transaction is active (inner has no loop, so the
     caller's loop keeps the tx): the deopt is irrevocable inside a
     transaction and must abort it — and the result must still be right. *)
  let src =
    "function inner(x) { return x + 1; } function bench(a) { var s = 0; for (var i = 0; i < \
     a.length; i++) { s += inner(a[i]); } return s; } var data = [1, 2, 3, 4, 5, 6, 7, 8]; var \
     it; var result = 0; for (it = 0; it < 60; it++) { result = bench(data); } data[3] = 2.5; \
     result = bench(data);"
  in
  let expected = Helpers.run_result src in
  let t = run src in
  Alcotest.(check string) "correct after abort" expected (result_of t);
  let aborts =
    try Hashtbl.find (Vm.counters t).Counters.abort_reasons "deopt-in-tx" with Not_found -> 0
  in
  let check_aborts =
    Hashtbl.fold
      (fun k v acc -> if String.length k >= 5 && String.sub k 0 5 = "check" then acc + v else acc)
      (Vm.counters t).Counters.abort_reasons 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "an abort fired (deopt-in-tx=%d, check=%d)" aborts check_aborts)
    true
    (aborts + check_aborts >= 1)

let test_sof_only_at_commit () =
  (* Under SOF, an overflow mid-transaction lets the tile run to its end
     before aborting; the final value must still be exact (rollback +
     Baseline redo in doubles). *)
  let src =
    "function bench(start) { var x = start; for (var i = 0; i < 30; i++) { x = x + 7; } return \
     x; } var it; var result = 0; for (it = 0; it < 60; it++) { result = bench(it); } result = \
     bench(2147483640);"
  in
  let expected = Helpers.run_result src in
  let t = run src in
  Alcotest.(check string) "exact double result" expected (result_of t);
  Alcotest.(check bool) "sof abort recorded" true
    (Hashtbl.mem (Vm.counters t).Counters.abort_reasons "sof-overflow")

let test_print_in_tx_is_irrevocable () =
  (* A print reached inside a transaction must abort it first (paper V-A),
     then Baseline re-runs the region and performs the I/O exactly once.
     Executed with stdout captured so the test stays quiet. *)
  let src =
    "function bench(n) { var s = 0; for (var i = 0; i < 10; i++) { s += i; if (n == 77 && i == \
     5) { print('hello'); } } return s; } var it; var result = 0; for (it = 0; it < 60; it++) \
     { result = bench(it); } result = bench(77);"
  in
  let expected = Helpers.run_result src in
  let t = run src in
  Alcotest.(check string) "correct with io" expected (result_of t);
  Alcotest.(check bool) "irrevocable abort recorded" true
    (Hashtbl.mem (Vm.counters t).Counters.abort_reasons "irrevocable-io"
    || Hashtbl.length (Vm.counters t).Counters.abort_reasons > 0)

let test_math_random_rolls_back () =
  (* Math.random's PRNG state is journaled: a rollback replays the same
     sequence, so results stay deterministic across abort paths. *)
  let src =
    "function bench(n) { var s = 0.0; for (var i = 0; i < 8; i++) { s += Math.random(); if (n \
     == 77 && i == 5) { s += 2147483647 + n; } } return Math.floor(s * 1e6); } var it; var \
     result = 0; for (it = 0; it < 60; it++) { result = bench(it); } result = bench(77);"
  in
  let expected = Helpers.run_result src in
  let t = run src in
  Alcotest.(check string) "same PRNG stream despite aborts" expected (result_of t)

let test_ghost_regions_cost_nothing () =
  (* Base's region markers must not add instructions: disabling placement
     entirely (tier cap DFG never places) is not comparable, so instead
     check marker instructions are charged zero by comparing category sums
     against the total. *)
  let t = run ~arch:Config.Base leaf_kernel in
  let c = (Vm.counters t) in
  Alcotest.(check int) "no transactional state in Base" 0 c.Counters.tx_commits;
  Alcotest.(check bool) "cycles consistent" true (Counters.cycles c > 0.0)

let tests =
  [
    Alcotest.test_case "leaf kernel categories" `Quick test_leaf_categories;
    Alcotest.test_case "callee owns transaction" `Quick test_callee_owns_transaction;
    Alcotest.test_case "chunked transactions" `Quick test_chunked_transactions;
    Alcotest.test_case "RTM reads slower" `Quick test_rtm_reads_slower;
    Alcotest.test_case "deopt in tx aborts" `Quick test_deopt_in_tx_aborts;
    Alcotest.test_case "sof aborts at commit" `Quick test_sof_only_at_commit;
    Alcotest.test_case "print in tx is irrevocable" `Quick test_print_in_tx_is_irrevocable;
    Alcotest.test_case "Math.random rolls back" `Quick test_math_random_rolls_back;
    Alcotest.test_case "ghost regions cost nothing" `Quick test_ghost_regions_cost_nothing;
  ]
