(** Tests for the measurement plumbing: the per-reason abort breakdown
    surviving [Counters.diff], window-local write-set maxima, and the
    scheduler store (which replaced the runner's memo cache) distinguishing
    measurement protocols. *)

module Counters = Nomap_machine.Counters
module Htm = Nomap_htm.Htm
module Runner = Nomap_harness.Runner
module Scheduler = Nomap_harness.Scheduler
module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config

let test_diff_abort_reasons () =
  let c = Counters.create () in
  (* Warmup activity that must not leak into the window. *)
  Counters.record_abort c Htm.Capacity_write;
  Counters.record_abort c Htm.Capacity_write;
  Counters.record_abort c (Htm.Check_failed Nomap_lir.Lir.Type);
  let before = Counters.begin_window c in
  Counters.record_abort c Htm.Capacity_write;
  Counters.record_abort c Htm.Watchdog;
  let w = Counters.diff ~now:c ~before in
  Alcotest.(check int) "window aborts" 2 w.Counters.tx_aborts;
  let reason name = try Hashtbl.find w.Counters.abort_reasons name with Not_found -> 0 in
  Alcotest.(check int) "capacity-write in window" 1 (reason "capacity-write");
  Alcotest.(check int) "watchdog in window" 1 (reason "watchdog");
  Alcotest.(check int) "warmup-only reason absent" 0 (reason "check:Type")

let test_diff_window_maxima () =
  let c = Counters.create () in
  (* A huge warmup transaction (e.g. first iteration building tables). *)
  Counters.record_commit c ~write_kb:27.5 ~assoc:14;
  let before = Counters.begin_window c in
  Counters.record_commit c ~write_kb:2.0 ~assoc:3;
  Counters.record_commit c ~write_kb:4.5 ~assoc:5;
  let w = Counters.diff ~now:c ~before in
  Alcotest.(check int) "window samples" 2 w.Counters.tx_samples;
  Alcotest.(check (float 1e-9)) "max write-set is window max" 4.5 (Counters.tx_write_kb_max w);
  Alcotest.(check int) "max associativity is window max" 5 w.Counters.tx_assoc_max;
  Alcotest.(check (float 1e-9)) "sums still differenced" 6.5 (Counters.tx_write_kb_sum w)

(* A tiny private benchmark so the runner tests don't pay for a real
   workload.  The id must not collide with the registry ("T" prefix is
   reserved for tests); [Registry.compile] and the scheduler store both key
   on it. *)
let tiny_bench =
  {
    Registry.id = "T90";
    name = "tiny-loop";
    suite = Registry.Shootout;
    source =
      {js|
        function benchmark() {
          var s = 0;
          for (var i = 0; i < 500; i++) s = s + i;
          return s;
        }
        benchmark();
      |js};
    in_avg_s = false;
  }

let test_memo_distinguishes_protocols () =
  let arch = Config.Base in
  let m1 = Scheduler.run_arch ~warmup:2 ~measure:1 ~arch tiny_bench in
  let m2 = Scheduler.run_arch ~warmup:2 ~measure:3 ~arch tiny_bench in
  let m3 = Scheduler.run_arch ~warmup:4 ~measure:1 ~arch tiny_bench in
  (* Different measure window: triple the measured calls, so roughly triple
     the counted instructions — certainly not the same measurement. *)
  let i1 = Counters.total_instrs m1.Runner.counters in
  let i2 = Counters.total_instrs m2.Runner.counters in
  Alcotest.(check bool) "longer measure counts more" true (i2 > 2 * i1);
  (* Different warmup with same measure: same steady-state window. *)
  Alcotest.(check bool) "warmup kept out of the window" true
    (Counters.total_instrs m3.Runner.counters = i1);
  (* Identical protocol: memoized in the store, physically the same
     measurement. *)
  let m1' = Scheduler.run_arch ~warmup:2 ~measure:1 ~arch tiny_bench in
  Alcotest.(check bool) "identical protocol memoized" true (m1 == m1')

let tests =
  [
    Alcotest.test_case "diff keeps per-reason abort breakdown" `Quick test_diff_abort_reasons;
    Alcotest.test_case "diff reports window-local maxima" `Quick test_diff_window_maxima;
    Alcotest.test_case "runner memo key includes warmup/measure" `Quick
      test_memo_distinguishes_protocols;
  ]
