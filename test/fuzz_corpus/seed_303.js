var ga = [-2, -4, -8, -4, 2, -7, -4];

var go = {x: 0, y: 1};

function h0(x, y) {
  var r = (((r / 5) + 14) / 5);
  return r;
}

function h1(x, y) {
  var r = 0;
  for (var j = 0; (j < 3); j++) {
    r += h0(h0(r, (x + y)), ((2 * x) ^ (r >> 3)));
    y += h0((h0(j, y) * j), Math.floor(h0(j, x)));
    x += h0(((4 * j) | x), r);
    if ((x != (r | r))) {
      if (((r & 3) == 2)) {
        r = ((r + j) & 1048575);
      }
      y = ((y + (Math.max(r, 1130758) ^ x)) & 1048575);
    }
  }
  return r;
}

function bench() {
  var s = 0;
  var t = 1;
  var a = [5, 6, -9, 8, 0, 7];
  var o = {x: 6, y: 0};
  var q = {y: 6, x: 8};
  for (var i = 0; (i < a.length); i++) {
    t = ((t * 31) + h1((13 ^ a.length), 19));
  }
  for (var i = 0; (i < a.length); i++) {
    for (var j = 0; (j < 5); j++) {
      s = ((s * 31) + h1((a[(i % 6)] / 9), h0(ga[(i % 7)], o.y)));
    }
    ga[((i + 5) % 7)] = ((s < s) ? (i * q.y) : (o.x + 2));
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}