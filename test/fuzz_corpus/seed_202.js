var ga = [-4, -2, 5, 9, 1, 4];

var go = {x: 0, y: 7};

function bench() {
  var s = 0;
  var t = 1;
  var a = [6, 6, 4, 8, 2, 0, -8];
  var o = {x: 8, y: 3};
  var q = {y: 1, x: 6};
  for (var i = 0; (i < a.length); i++) {
    if (((i & 3) == 1)) {
      continue;
    }
  }
  for (var i = 0; (i < 18); i++) {
    if (((go.y & -19) != (go.y * i))) {
      q.y = (Math.floor(3.75) ^ (ga.length << 2));
    }
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}