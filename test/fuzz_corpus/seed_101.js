var ga = [-6, 3, 7, -1, 5, 9, 0, -8];

var go = {x: 0, y: 5};

function h0(x, y) {
  var r = y;
  return r;
}

function h1(x, y) {
  var r = 0;
  for (var j = 0; (j < 2); j++) {
    x = ((x * 31) + h0(h0(x, y), ((x <= y) ? y : x)));
    if (((j | y) < ((r == x) ? y : y))) {
      if (((y * 1841460) != (j / 3))) {
        continue;
      }
      if (((r & 3) == 3)) {
        x = ((x + ((-11 < x) ? (-2.5 + x) : (0.25 ^ 1230242))) & 1048575);
      }
    }
  }
  return r;
}

function bench() {
  var s = 0;
  var t = 1;
  var a = [7, 8, -2, 5, 6, 8, -1];
  var o = {x: 5, y: 3};
  var q = {y: 0, x: 4};
  for (var i = 0; (i < 8); i++) {
    if (((t & 3) == 2)) {
      for (var j = 0; (j < 4); j++) {
        s += h1((((j >= ga[((t + 5) % 8)]) ? s : o.x) ^ (5 + t)), (h1(-17, s) - (ga[(i % 8)] * a[(s % 7)])));
      }
    }
    s += (((o.x - t) < h1(q.y, t)) ? o : q).x;
  }
  for (var i = 0; (i < a.length); i++) {
    t += (((i & 3) == 1) ? q : go).x;
    s += h1((t + (s + i)), h0((((s & 3) == 2) ? ga.length : s), s));
    t += h0(((ga.length ^ a[((t + 4) % 7)]) + ga[((s + 1) % 8)]), (Math.max(o.y, i) + (i & o.x)));
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}