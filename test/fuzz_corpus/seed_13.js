var ga = [7, 1, 1, 0, -9, 8, 4, -1];

var go = {x: 3, y: 5};

function bench() {
  var s = 0;
  var t = 1;
  var a = [8, 0, -4, 5, 5, -5, -1, 9, -2];
  var o = {x: 3, y: 8};
  var q = {y: 3, x: 7};
  for (var i = 0; (i < 13); i++) {
    ga[((t + 1) % 8)] = (((ga[(t % 8)] != o.x) ? 1.5 : i) - (s | a[8]));
    a[t] = Math.floor(((10 < i) ? (((s & 3) == 1) ? 0 : s) : (i & ga[4])));
  }
  for (var i = 0; (i < a.length); i++) {
    t = (((s & 3) == 2) ? ((s >> 1) % 8) : ((((s & 3) == 0) ? s : t) - (i & t)));
    if ((a[(i % 9)] >= (i + i))) {
      go.y = ((i & i) & (s + 18));
    } else {
      a[(t % 9)] = Math.max(o.x, (s + s));
    }
    if (((t & 3) == 0)) {
      if (((i & 3) == 1)) {
        if (((t & 3) == 2)) {
          for (var j = 0; (j < 3); j++) {
            t = q.x;
            s += (((i & 3) == 2) ? (ga.length + -3) : (((s & 3) == 2) ? ga[(i % 8)] : q.y));
          }
        } else {
          o.z += ((18 | i) | go.y);
        }
      }
    }
    ga[(i % 8)] = ((go.y != t) ? (s - i) : (i + i));
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}