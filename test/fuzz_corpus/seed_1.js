var ga = [-4, -3, -5, -7, 8, 5];

var go = {x: 0, y: 3};

function bench() {
  var s = 0;
  var t = 1;
  var a = [-4, 7, -3, 0, 6, -2, -2, 0];
  var o = {x: 4, y: 2};
  var q = {y: 8, x: 1};
  for (var i = 0; (i < a.length); i++) {
    a[(s % 8)] = ((i > go.y) ? -20 : (7 - o.x));
    t += (((ga.length * 4) <= s) ? q : o).y;
    t = ((t + ((s & ga[0]) % 6)) & 1048575);
    s = ((s * 31) + ((-19 > ga[((i + 2) % 6)]) ? (-2.5 >>> 3) : (s | t)));
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}