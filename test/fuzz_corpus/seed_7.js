var ga = [-9, 2, -3, 9, -7, -5];

var go = {x: 7, y: 4};

function h0(x, y) {
  var r = Math.min(((x ^ x) % 5), (((-10 < x) ? y : y) % 9));
  return r;
}

function bench() {
  var s = 0;
  var t = 1;
  var a = [-9, 1, -2, 6, -2, 1, 8];
  var o = {x: 1, y: 0};
  var q = {y: 8, x: 3};
  for (var i = 0; (i < a.length); i++) {
    for (var j = 0; (j < 3); j++) {
      t = ga[(s % 6)];
    }
  }
  for (var i = 0; (i < a.length); i++) {
    s += ((-15 >= ((a[(s % 7)] <= q.x) ? ga[s] : 11)) ? o : go).y;
    for (var j = 0; (j < 2); j++) {
      if (((j & 3) == 1)) {
        t = ((t * 31) + (h0(12, -20) + (j - 1886924)));
        ga[((t + 3) % 6)] = ((j == j) ? (s >>> 2) : (s * 1.5));
      }
    }
    s += (((194684 - 717038) > Math.max(3, 2)) ? go : o).x;
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}