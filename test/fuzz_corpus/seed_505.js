var ga = [2, 7, -5, 7, 5, 1, 8, -8, -9];

var go = {x: 5, y: 0};

function h0(x, y) {
  var r = 0;
  for (var j = 0; (j < 4); j++) {
    r = (Math.floor(((y >= 11) ? r : y)) * ((r | 13) + (-15 * 15)));
    y += ((j + j) % 2);
    if (((14 - -18) != (x & 3.75))) {
      if (((((x & 3) == 3) ? y : 0) != (x + r))) {
        y = ((y + (-12 * (j >>> 1))) & 1048575);
      } else {
        if (((x & 3) == 3)) {
          y = ((j >>> 4) - ((j * j) / 2));
          x = Math.floor((((y & 3) == 2) ? (((x & 3) == 0) ? y : 1.5) : (y >>> 3)));
        }
      }
      y = ((y + r) & 1048575);
    }
    if (((j & 3) == 2)) {
      if (((7 / 7) < (6 - x))) {
        if (((r & 3) == 3)) {
          if ((((-7 == j) ? r : r) == (((x & 3) == 0) ? 18 : y))) {
            if (((-14 >>> 2) > (0 + 7))) {
              r += ((j + 9) * 13);
            } else {
              r = ((r + (j + ((r >= 17) ? -20 : y))) & 1048575);
            }
            if ((x < -1)) {
              if (((x - y) <= (j >> 1))) {
                continue;
              }
              if (((x & 3) == 1)) {
                y += ((j + r) >> 1);
              }
            }
          }
        } else {
          x = ((x * 31) + Math.abs((j + j)));
        }
      }
    } else {
      if (((y ^ r) > Math.abs(18))) {
        continue;
      }
    }
  }
  return r;
}

function h1(x, y) {
  var r = r;
  return r;
}

function bench() {
  var s = 0;
  var t = 1;
  var a = [-5, 7, 5, -2, 8, 0, 4, 8];
  var o = {x: 6, y: 7};
  var q = {y: 5, x: 6};
  for (var i = 0; (i < 10); i++) {
    if (((q.x * 5) < (ga.length & -11))) {
      continue;
    }
    q.x = a[((t + 1) % 8)];
    q.y = (h1(i, a[(i % 8)]) & ga[((i + 2) % 9)]);
    s += h0((i * (-3 & -20)), ((384304 <= -8) ? ((1.5 == t) ? q.x : 13) : h1(s, ga[(s % 9)])));
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}