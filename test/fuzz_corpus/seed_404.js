var ga = [6, 0, -3, 0, 9, -7, 5, 7, 3, 0];

var go = {x: 8, y: 8};

function h0(x, y) {
  var r = 0.25;
  return r;
}

function h1(x, y) {
  var r = 0;
  for (var j = 0; (j < 5); j++) {
    y += ((3 + r) + (j + -6));
  }
  return r;
}

function bench() {
  var s = 0;
  var t = 1;
  var a = [5, 3, -9, -5, 1, -6];
  var o = {x: 1, y: 1};
  var q = {y: 1, x: 3};
  for (var i = 0; (i < a.length); i++) {
    a[(t % 6)] = Math.abs(t);
    t = (((2 * i) - (s >>> 4)) + (3.75 & h0(198520, 2)));
    t += (((i & 3) == 2) ? go : q).y;
    t = (((a[4] - t) + (1329561 + i)) % 6);
  }
  for (var i = 0; (i < a.length); i++) {
    t = ((t * 31) + ((ga.length | i) ^ (go.x << 2)));
    t += (((t & 3) == 0) ? o : q).x;
    ga[(s % 10)] = ((ga.length >> 3) + 1917312);
  }
  return (((((s + t) + o.x) + q.y) + a[0]) + a[(a.length - 1)]);
}

var result = 0;

var it;

for (it = 0; (it < 32); it++) {
  result = bench();
}