open Nomap_runtime

let heap () = Heap.create ()

let test_number_canonicalization () =
  Alcotest.(check bool) "integral double becomes Int" true
    (Value.number 42.0 = Value.Int 42);
  Alcotest.(check bool) "fraction stays Num" true
    (match Value.number 1.5 with Value.Num f -> f = 1.5 | _ -> false);
  Alcotest.(check bool) "-0.0 stays Num" true
    (match Value.number (-0.0) with Value.Num _ -> true | _ -> false);
  Alcotest.(check bool) "2^31 stays Num" true
    (match Value.number 2147483648.0 with Value.Num _ -> true | _ -> false)

let test_to_int32_wrap () =
  Alcotest.(check int) "wraps" (-2147483648) (Value.to_int32 (Value.Num 2147483648.0));
  Alcotest.(check int) "nan is 0" 0 (Value.to_int32 (Value.Num Float.nan));
  Alcotest.(check int) "negative" (-1) (Value.to_int32 (Value.Num (-1.0)))

let test_truthiness () =
  let h = heap () in
  Alcotest.(check bool) "0 falsy" false (Value.truthy (Value.Int 0));
  Alcotest.(check bool) "NaN falsy" false (Value.truthy (Value.Num Float.nan));
  Alcotest.(check bool) "empty string falsy" false (Value.truthy (Heap.str h ""));
  Alcotest.(check bool) "string truthy" true (Value.truthy (Heap.str h "x"));
  Alcotest.(check bool) "undefined falsy" false (Value.truthy Value.Undef);
  Alcotest.(check bool) "object truthy" true
    (Value.truthy (Value.Obj (Heap.alloc_object h)))

let test_js_add_semantics () =
  let h = heap () in
  Alcotest.(check string) "int add" "7"
    (Value.to_js_string (Ops.js_add h (Value.Int 3) (Value.Int 4)));
  Alcotest.(check string) "string concat" "a4"
    (Value.to_js_string (Ops.js_add h (Heap.str h "a") (Value.Int 4)));
  Alcotest.(check string) "int overflow promotes" "4294967294"
    (Value.to_js_string (Ops.js_add h (Value.Int 2147483647) (Value.Int 2147483647)))

let test_js_div_mod () =
  let h = heap () in
  Alcotest.(check string) "div exact" "3"
    (Value.to_js_string (Ops.apply_binop h Nomap_jsir.Ast.Div (Value.Int 6) (Value.Int 2)));
  Alcotest.(check string) "div inexact" "2.5"
    (Value.to_js_string (Ops.apply_binop h Nomap_jsir.Ast.Div (Value.Int 5) (Value.Int 2)));
  Alcotest.(check string) "div by zero" "Infinity"
    (Value.to_js_string (Ops.apply_binop h Nomap_jsir.Ast.Div (Value.Int 5) (Value.Int 0)));
  Alcotest.(check string) "mod" "1"
    (Value.to_js_string (Ops.apply_binop h Nomap_jsir.Ast.Mod (Value.Int 7) (Value.Int 3)))

let test_bitwise () =
  let h = heap () in
  let b op a c = Value.to_js_string (Ops.apply_binop h op (Value.Int a) (Value.Int c)) in
  Alcotest.(check string) "and" "4" (b Nomap_jsir.Ast.Band 6 12);
  Alcotest.(check string) "shl wraps" "-2147483648" (b Nomap_jsir.Ast.Shl 1 31);
  Alcotest.(check string) "ushr of negative" "2147483648"
    (Value.to_js_string (Ops.js_ushr (Value.Int (-2147483648)) (Value.Int 0)));
  Alcotest.(check string) "shr sign extends" "-1" (b Nomap_jsir.Ast.Shr (-2) 1)

let test_string_compare () =
  let h = heap () in
  Alcotest.(check bool) "lexicographic" true (Ops.js_lt (Heap.str h "abc") (Heap.str h "abd"));
  Alcotest.(check bool) "nan compare false" false (Ops.js_lt (Value.Num Float.nan) (Value.Int 1))

let test_shapes_share () =
  let h = heap () in
  let o1 = Heap.alloc_object h and o2 = Heap.alloc_object h in
  Heap.set_prop h o1 "x" (Value.Int 1);
  Heap.set_prop h o1 "y" (Value.Int 2);
  Heap.set_prop h o2 "x" (Value.Int 3);
  Heap.set_prop h o2 "y" (Value.Int 4);
  Alcotest.(check int) "same shape" o1.Value.shape.Shape.id o2.Value.shape.Shape.id;
  let o3 = Heap.alloc_object h in
  Heap.set_prop h o3 "y" (Value.Int 1);
  Heap.set_prop h o3 "x" (Value.Int 2);
  Alcotest.(check bool) "different insertion order, different shape" true
    (o3.Value.shape.Shape.id <> o1.Value.shape.Shape.id)

let test_prop_read_write () =
  let h = heap () in
  let o = Heap.alloc_object h in
  Alcotest.(check string) "missing is undefined" "undefined"
    (Value.to_js_string (Heap.get_prop h o "nope"));
  Heap.set_prop h o "a" (Value.Int 10);
  Heap.set_prop h o "a" (Value.Int 20);
  Alcotest.(check string) "overwrite" "20" (Value.to_js_string (Heap.get_prop h o "a"));
  (* More properties than the initial slot capacity. *)
  for i = 0 to 9 do
    Heap.set_prop h o (Printf.sprintf "p%d" i) (Value.Int i)
  done;
  for i = 0 to 9 do
    Alcotest.(check string) "growth preserved" (string_of_int i)
      (Value.to_js_string (Heap.get_prop h o (Printf.sprintf "p%d" i)))
  done

let test_array_holes_and_growth () =
  let h = heap () in
  let a = Heap.alloc_array h 0 in
  Heap.set_elem h a 5 (Value.Int 99);
  Alcotest.(check int) "length elongated" 6 a.Value.alen;
  Alcotest.(check string) "hole reads undefined" "undefined"
    (Value.to_js_string (Heap.get_elem h a 2));
  Alcotest.(check string) "stored value" "99" (Value.to_js_string (Heap.get_elem h a 5));
  Alcotest.(check string) "out of bounds undefined" "undefined"
    (Value.to_js_string (Heap.get_elem h a 100));
  Alcotest.(check string) "negative undefined" "undefined"
    (Value.to_js_string (Heap.get_elem h a (-1)))

let test_array_push_pop () =
  let h = heap () in
  let a = Heap.alloc_array h 0 in
  ignore (Heap.array_push h a (Value.Int 1));
  ignore (Heap.array_push h a (Value.Int 2));
  Alcotest.(check int) "len" 2 a.Value.alen;
  Alcotest.(check string) "pop" "2" (Value.to_js_string (Heap.array_pop h a));
  Alcotest.(check int) "len after pop" 1 a.Value.alen;
  Alcotest.(check string) "pop" "1" (Value.to_js_string (Heap.array_pop h a));
  Alcotest.(check string) "pop empty" "undefined" (Value.to_js_string (Heap.array_pop h a))

let test_store_hook_undo () =
  let h = heap () in
  let a = Heap.alloc_array h 3 in
  Heap.set_elem h a 0 (Value.Int 1);
  (* Install a journaling hook, mutate, then undo: state must be restored. *)
  let undos = ref [] in
  h.Heap.hooks.store <- (fun _ _ undo -> undos := undo :: !undos);
  h.Heap.hooks.active <- true;
  Heap.set_elem h a 0 (Value.Int 42);
  Heap.set_elem h a 10 (Value.Int 7);
  let o = Heap.alloc_object h in
  Heap.set_prop h o "x" (Value.Int 5);
  h.Heap.hooks.active <- false;
  h.Heap.hooks.store <- (fun _ _ _ -> ());
  Alcotest.(check string) "mutated" "42" (Value.to_js_string (Heap.get_elem h a 0));
  List.iter (fun undo -> undo ()) !undos;
  Alcotest.(check string) "elem restored" "1" (Value.to_js_string (Heap.get_elem h a 0));
  Alcotest.(check int) "length restored" 3 a.Value.alen;
  Alcotest.(check string) "prop restored" "undefined"
    (Value.to_js_string (Heap.get_prop h o "x"));
  Alcotest.(check int) "shape restored" 0 o.Value.shape.Shape.id

let test_intrinsics_math () =
  let h = heap () in
  let ev i args = Intrinsics.eval h i Value.Undef args in
  Alcotest.(check string) "floor" "2" (Value.to_js_string (ev Intrinsics.Math_floor [ Value.Num 2.9 ]));
  Alcotest.(check string) "pow" "8"
    (Value.to_js_string (ev Intrinsics.Math_pow [ Value.Int 2; Value.Int 3 ]));
  Alcotest.(check string) "min" "1"
    (Value.to_js_string (ev Intrinsics.Math_min [ Value.Int 3; Value.Int 1; Value.Int 2 ]));
  Alcotest.(check string) "abs" "3" (Value.to_js_string (ev Intrinsics.Math_abs [ Value.Num (-3.0) ]))

let test_intrinsics_string () =
  let h = heap () in
  let s = Heap.str h "hello" in
  let ev i recv args = Value.to_js_string (Intrinsics.eval h i recv args) in
  Alcotest.(check string) "charCodeAt" "101" (ev Intrinsics.Str_char_code_at s [ Value.Int 1 ]);
  Alcotest.(check string) "charCodeAt oob" "NaN" (ev Intrinsics.Str_char_code_at s [ Value.Int 9 ]);
  Alcotest.(check string) "charAt" "h" (ev Intrinsics.Str_char_at s [ Value.Int 0 ]);
  Alcotest.(check string) "substring" "ell" (ev Intrinsics.Str_substring s [ Value.Int 1; Value.Int 4 ]);
  Alcotest.(check string) "substring swaps" "ell"
    (ev Intrinsics.Str_substring s [ Value.Int 4; Value.Int 1 ]);
  Alcotest.(check string) "indexOf" "2" (ev Intrinsics.Str_index_of s [ Heap.str h "ll" ]);
  Alcotest.(check string) "indexOf missing" "-1" (ev Intrinsics.Str_index_of s [ Heap.str h "z" ]);
  Alcotest.(check string) "fromCharCode" "AB"
    (ev Intrinsics.Str_from_char_code Value.Undef [ Value.Int 65; Value.Int 66 ]);
  (* JS: "hello".split("l") = ["he", "", "o"]. *)
  Alcotest.(check string) "split" "he,,o" (ev Intrinsics.Str_split s [ Heap.str h "l" ])

let test_intrinsics_parse () =
  let h = heap () in
  let ev i args = Value.to_js_string (Intrinsics.eval h i Value.Undef args) in
  Alcotest.(check string) "parseInt" "42" (ev Intrinsics.Global_parse_int [ Heap.str h "42px" ]);
  Alcotest.(check string) "parseInt hex" "255"
    (ev Intrinsics.Global_parse_int [ Heap.str h "0xff"; Value.Int 16 ]);
  Alcotest.(check string) "parseInt negative" "-7" (ev Intrinsics.Global_parse_int [ Heap.str h "-7" ]);
  Alcotest.(check string) "parseFloat" "2.5" (ev Intrinsics.Global_parse_float [ Heap.str h "2.5" ])

let test_addresses_distinct () =
  let h = heap () in
  let o1 = Heap.alloc_object h and o2 = Heap.alloc_object h in
  let a = Heap.alloc_array h 16 in
  Alcotest.(check bool) "object addrs distinct" true (o1.Value.oaddr <> o2.Value.oaddr);
  Alcotest.(check bool) "slots regions distinct" true (o1.Value.slots_addr <> o2.Value.slots_addr);
  let before = a.Value.elems_addr in
  Heap.set_elem h a 100 (Value.Int 1);
  Alcotest.(check bool) "growth moves storage" true (a.Value.elems_addr <> before)

let qcheck_to_int32_idempotent =
  QCheck2.Test.make ~name:"to_int32 is idempotent" ~count:500
    QCheck2.Gen.(float_range (-1e12) 1e12)
    (fun f ->
      let i = Value.to_int32 (Value.Num f) in
      Value.to_int32 (Value.Int i) = i && i >= Value.int32_min && i <= Value.int32_max)

let qcheck_add_commutes_numeric =
  QCheck2.Test.make ~name:"numeric + commutes" ~count:500
    QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let h = heap () in
      Value.equals
        (Ops.js_add h (Value.Int a) (Value.Int b))
        (Ops.js_add h (Value.Int b) (Value.Int a)))

let qcheck_shape_lookup_after_set =
  QCheck2.Test.make ~name:"set_prop then get_prop returns the value" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) int))
    (fun pairs ->
      let h = heap () in
      let o = Heap.alloc_object h in
      List.iter (fun (k, v) -> Heap.set_prop h o k (Value.of_int v)) pairs;
      (* Last write per key wins. *)
      List.for_all
        (fun (k, _) ->
          let expected =
            List.fold_left (fun acc (k', v) -> if k' = k then Some v else acc) None pairs
          in
          match expected with
          | Some v -> Value.equals (Heap.get_prop h o k) (Value.of_int v)
          | None -> true)
        pairs)

let tests =
  [
    Alcotest.test_case "number canonicalization" `Quick test_number_canonicalization;
    Alcotest.test_case "to_int32 wrap" `Quick test_to_int32_wrap;
    Alcotest.test_case "truthiness" `Quick test_truthiness;
    Alcotest.test_case "js add" `Quick test_js_add_semantics;
    Alcotest.test_case "js div/mod" `Quick test_js_div_mod;
    Alcotest.test_case "bitwise" `Quick test_bitwise;
    Alcotest.test_case "string compare" `Quick test_string_compare;
    Alcotest.test_case "shapes shared" `Quick test_shapes_share;
    Alcotest.test_case "prop read/write" `Quick test_prop_read_write;
    Alcotest.test_case "array holes/growth" `Quick test_array_holes_and_growth;
    Alcotest.test_case "array push/pop" `Quick test_array_push_pop;
    Alcotest.test_case "store hook undo" `Quick test_store_hook_undo;
    Alcotest.test_case "math intrinsics" `Quick test_intrinsics_math;
    Alcotest.test_case "string intrinsics" `Quick test_intrinsics_string;
    Alcotest.test_case "parse intrinsics" `Quick test_intrinsics_parse;
    Alcotest.test_case "addresses distinct" `Quick test_addresses_distinct;
    QCheck_alcotest.to_alcotest qcheck_to_int32_idempotent;
    QCheck_alcotest.to_alcotest qcheck_add_commutes_numeric;
    QCheck_alcotest.to_alcotest qcheck_shape_lookup_after_set;
  ]
