(** Counter-determinism harness guarding the machine hot-loop rewrite.

    For every registered workload × every architecture, a fixed execution
    protocol (lowered tier-up thresholds so all tiers engage, then a fixed
    number of benchmark calls) must reproduce the committed golden counter
    table bit-for-bit: instruction categories, executed checks, cycles
    (hex-float, so exact), commits/aborts with reason breakdown, and the
    Table IV write-set statistics.  Any change to simulated metrics — an
    optimization of the simulator that is supposed to be
    observation-preserving, or an accidental cost-model change — shows up
    here as a one-line diff naming the workload and architecture.

    Regenerate after an *intentional* metric change with:
      NOMAP_UPDATE_GOLDEN=$PWD/test/determinism.expected dune exec \
        test/test_main.exe -- test determinism *)

module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Vm = Nomap_vm.Vm
module Scheduler = Nomap_harness.Scheduler

(* Domains used for the sweep.  Settable with `-j N` on the test binary
   (test_main strips the flag before Alcotest sees argv) or the NOMAP_JOBS
   environment variable; the golden comparison must hold at any value. *)
let jobs =
  ref
    (match Sys.getenv_opt "NOMAP_JOBS" with
    | Some n -> (match int_of_string_opt n with Some n when n >= 1 -> n | _ -> 1)
    | None -> Scheduler.default_jobs ())

(* Low thresholds so Interpreter → Baseline → DFG → FTL all engage within
   few calls; 8 calls also exercise recompilation/demotion adaptations. *)
let thresholds = { Vm.baseline_at = 1; dfg_at = 2; ftl_at = 4 }
let calls = 8

(* `dune runtest` runs in the test directory (the file is a declared dep);
   `dune exec test/test_main.exe` runs from the project root. *)
let golden_file () =
  List.find_opt Sys.file_exists
    [ "determinism.expected"; Filename.concat "test" "determinism.expected" ]

let canonical = Counters.to_canonical_string

let run_one bench arch =
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:2_000_000_000 ~thresholds ~config:(Config.create arch)
      ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  for _ = 1 to calls do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  Printf.sprintf "%s/%s %s" bench.Registry.id (Config.name arch) (canonical (Vm.counters vm))

(* Each (bench, arch) run is an independent single-domain VM, so the sweep
   fans out across domains; order is preserved by [parallel_map]. *)
let compute_table ?(jobs = 1) () =
  Scheduler.parallel_map ~jobs
    (fun (bench, arch) -> run_one bench arch)
    (List.concat_map
       (fun bench -> List.map (fun arch -> (bench, arch)) Config.all)
       Registry.all)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let golden_lines () = Option.map read_lines (golden_file ())

let check_against_golden table =
  match golden_lines () with
  | None -> Alcotest.fail "missing golden table determinism.expected"
  | Some golden ->
    Alcotest.(check int) "runs covered" (List.length golden) (List.length table);
    List.iter2
      (fun expected got ->
        let name = String.sub got 0 (String.index got ' ') in
        Alcotest.(check string) name expected got)
      golden table

let test_counter_determinism () =
  let table = compute_table ~jobs:!jobs () in
  match Sys.getenv_opt "NOMAP_UPDATE_GOLDEN" with
  | Some path ->
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) table;
    close_out oc;
    Printf.printf "wrote %d golden lines to %s\n" (List.length table) path
  | None -> check_against_golden table

let tests =
  [ Alcotest.test_case "counters bit-identical across workloads x archs" `Slow
      test_counter_determinism ]
