(** The shared-segment runtime (DESIGN.md §16): solo-agent Shared/Atomics
    tier invariance, counter canonicalization, and real multi-agent runs
    with conflict aborts flowing through the abort ladder. *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Value = Nomap_runtime.Value
module Agents = Nomap_agents.Agents
module Interleave = Nomap_shared.Interleave
module Agent = Nomap_shared.Agent
module Segment = Nomap_shared.Segment

let run_vm ?(arch = Config.Base) ?(cap = Vm.Cap_ftl) src =
  let prog = Helpers.compile src in
  let t =
    Vm.create ~fuel:200_000_000 ~verify_lir:true ~config:(Config.create arch)
      ~tier_cap:cap prog
  in
  ignore (Vm.run_main t);
  t

let result_of t =
  match Vm.global t "result" with
  | Some v -> Value.to_js_string v
  | None -> Alcotest.fail "no result global"

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A hot kernel exercising every Shared/Atomics intrinsic, against the
   VM's private solo segment.  The driver loops past the FTL threshold so
   under NoMap architectures the segment operations run inside
   transactions (redo-buffered, flushed at commit). *)
let atomics_kernel =
  "function bench() { var i; var s = 0; for (i = 0; i < 50; i++) { Atomics.add(0, 1); \
   Atomics.sub(0, 2); Atomics.store(1, (Atomics.load(0) * 2) & 0xFFFF); s = (s + \
   Atomics.exchange(2, s + 1)) & 0xFFFF; } if (Atomics.compareExchange(3, 0, 7) == 0) { s \
   = s + Atomics.load(3); } Atomics.fence(); return (s + Shared.read(1) + Shared.size()) & \
   0xFFFFF; } var it; var result = 0; for (it = 0; it < 40; it++) { result = bench(); }"

(** Every tier and architecture must compute exactly what the interpreter
    computes for segment operations — through transactions, redo buffers
    and STM fallback included. *)
let test_solo_tier_invariance () =
  let reference = result_of (run_vm ~cap:Vm.Cap_interp atomics_kernel) in
  List.iter
    (fun cap ->
      Alcotest.(check string)
        (Printf.sprintf "atomics under %s" (Vm.cap_name cap))
        reference
        (result_of (run_vm ~cap atomics_kernel)))
    [ Vm.Cap_baseline; Vm.Cap_dfg ];
  List.iter
    (fun arch ->
      let t = run_vm ~arch atomics_kernel in
      Alcotest.(check string)
        (Printf.sprintf "atomics under FTL/%s" (Config.name arch))
        reference (result_of t);
      Alcotest.(check bool)
        (Printf.sprintf "FTL ran under %s" (Config.name arch))
        true
        ((Vm.counters t).Counters.ftl_calls > 0))
    Config.all

(** Segment operations are counted, and the canonical counter table only
    grows a [shared={...}] block when they actually ran — segment-free
    programs keep their golden rows byte-identical (test_determinism pins
    the actual golden file; this pins the mechanism). *)
let test_canonical_counter_gating () =
  let plain =
    run_vm "function bench() { var i; var s = 0; for (i = 0; i < 40; i++) { s += i; } \
            return s; } var it; var result = 0; for (it = 0; it < 30; it++) { result = \
            bench(); }"
  in
  let canonical = Counters.to_canonical_string (Vm.counters plain) in
  Alcotest.(check bool)
    "no shared block without segment ops" false
    (contains_sub canonical " shared={");
  let shared = run_vm atomics_kernel in
  let c = Vm.counters shared in
  Alcotest.(check bool)
    "shared block present" true
    (contains_sub (Counters.to_canonical_string c) " shared={");
  Alcotest.(check bool) "loads counted" true (c.Counters.shared_loads > 0);
  Alcotest.(check bool) "stores counted" true (c.Counters.shared_stores > 0);
  Alcotest.(check bool) "rmws counted" true (c.Counters.shared_rmws > 0);
  Alcotest.(check bool) "fences counted" true (c.Counters.shared_fences > 0)

(** Typed-array index semantics: out-of-range and negative indices wrap
    into the segment instead of trapping. *)
let test_index_wrap () =
  let t =
    run_vm ~cap:Vm.Cap_interp
      "Atomics.store(0 - 1, 5); var result = Shared.read(63) + Atomics.load(64) * 100;"
  in
  (* -1 wraps to 63 (solo segments have 64 slots); 64 wraps to 0. *)
  Alcotest.(check string) "wrapped write landed" "5" (result_of t)

(** Two interpreter-tier agents hammer one counter: no transactions, every
    RMW is direct, so the total is exact and no conflict aborts occur. *)
let test_two_agents_interp () =
  let src = "var i; for (i = 0; i < 200; i++) { Atomics.add(0, 1); }" in
  let r =
    Agents.run
      ~policy:(Interleave.Seeded 0)
      ~config:(Config.create Config.Base) ~tier_cap:Vm.Cap_interp
      (Array.map Helpers.compile [| src; src |])
  in
  Array.iter
    (fun (o : Agents.outcome) ->
      match o.Agents.result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "agent failed: %s" msg)
    r.Agents.outcomes;
  Alcotest.(check int) "exact count" 400 r.Agents.segment_data.(0);
  Alcotest.(check int) "no conflicts below FTL" 0 r.Agents.conflicts

(* Two FTL agents contending on one cache line under real transactions. *)
let contended_run ?(arch = Config.NoMap_RTM) ~seed () =
  let src =
    "function bench() { var i; for (i = 0; i < 60; i++) { Atomics.add(0, 1); } return \
     Atomics.load(0); } var it; var result = 0; for (it = 0; it < 30; it++) { result = \
     bench(); }"
  in
  Agents.run
    ~policy:(Interleave.Seeded seed)
    ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl
    (Array.map Helpers.compile [| src; src |])

(** Transactional atomicity under contention: aborted transactions drop
    their redo-buffered increments and the retry re-applies them exactly
    once, so the final count is exact no matter how many conflict aborts
    fired — and under RTM with both agents on one line, some must fire. *)
let test_two_agents_ftl_conflicts () =
  let r = contended_run ~seed:7 () in
  Array.iter
    (fun (o : Agents.outcome) ->
      match o.Agents.result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "agent failed: %s" msg)
    r.Agents.outcomes;
  Alcotest.(check int) "exact count through aborts" (2 * 30 * 60) r.Agents.segment_data.(0);
  Alcotest.(check bool) "conflict aborts fired" true (r.Agents.conflicts > 0);
  (* The aborts landed in the counters as [conflict] aborts. *)
  let aborts_of i =
    match r.Agents.outcomes.(i).Agents.vm with
    | Some vm ->
      (try Hashtbl.find (Vm.counters vm).Counters.abort_reasons "conflict"
       with Not_found -> 0)
    | None -> 0
  in
  Alcotest.(check bool)
    "per-VM abort breakdown records conflicts" true
    (aborts_of 0 + aborts_of 1 > 0)

(** Deterministic replay: the same (programs, seed, policy) triple is
    bit-identical — results, segment image, checksum and conflict count. *)
let test_seeded_replay_deterministic () =
  let a = contended_run ~seed:3 () in
  let b = contended_run ~seed:3 () in
  let render (r : Agents.run_result) =
    Printf.sprintf "%s | seg=%s | cksum=%Lx | conflicts=%d"
      (String.concat ","
         (Array.to_list
            (Array.map
               (fun (o : Agents.outcome) ->
                 match o.Agents.result with
                 | Ok v -> Value.to_js_string v
                 | Error e -> "error:" ^ e)
               r.Agents.outcomes)))
      (String.concat "," (Array.to_list (Array.map string_of_int r.Agents.segment_data)))
      r.Agents.segment_checksum r.Agents.conflicts
  in
  Alcotest.(check string) "replay is bit-identical" (render a) (render b)

let tests =
  [
    Alcotest.test_case "shared: solo tier invariance" `Quick test_solo_tier_invariance;
    Alcotest.test_case "shared: canonical counter gating" `Quick test_canonical_counter_gating;
    Alcotest.test_case "shared: index wrap" `Quick test_index_wrap;
    Alcotest.test_case "shared: two interp agents, exact count" `Quick test_two_agents_interp;
    Alcotest.test_case "shared: FTL contention, conflict aborts" `Quick
      test_two_agents_ftl_conflicts;
    Alcotest.test_case "shared: seeded replay determinism" `Quick
      test_seeded_replay_deterministic;
  ]
