(** Engine equivalence: the closure-threaded engine must be observationally
    identical to the decoded reference engine — same results, same heap,
    and a bit-identical counter table — at every tier and architecture.

    Three layers:
    - the pinned fuzz corpus through both engines across the optimizing
      tier × architecture matrix (plus the sub-DFG tiers, where the engine
      choice must be inert);
    - hand-built edge-case kernels hitting the paths where the threaded
      engine's deferred accounting must reconcile exactly: phi-heavy loops,
      mid-segment deopts, SOF overflow aborts, chunked transactions;
    - a hand-built LIR function whose body is one elided run, proving the
      fused superinstruction charges exactly zero simulated cost (the
      terminator's single instruction is all that may appear). *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Engine = Nomap_machine.Engine
module Counters = Nomap_machine.Counters
module Machine = Nomap_machine.Machine
module Timing = Nomap_machine.Timing
module Specialize = Nomap_tiers.Specialize
module L = Nomap_lir.Lir
module Htm = Nomap_htm.Htm
module Value = Nomap_runtime.Value
module Instance = Nomap_interp.Instance

(* Low thresholds so every tier engages within the corpus programs' own
   main loops (same protocol as the determinism sweep). *)
let thresholds = { Vm.baseline_at = 1; dfg_at = 2; ftl_at = 4 }

type obs = { result : string; heap : string; counters : string }

let observe ~engine ~tier ~arch src =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:500_000_000 ~thresholds ~verify_lir:true ~engine
      ~config:(Config.create arch) ~tier_cap:tier prog
  in
  ignore (Vm.run_main vm);
  (match Nomap_bytecode.Opcode.func_by_name prog "benchmark" with
  | Some _ ->
    for _ = 1 to 8 do
      ignore (Vm.call_function vm "benchmark" [])
    done
  | None -> ());
  {
    result =
      (match Vm.global vm "result" with
      | Some v -> Value.to_js_string v
      | None -> "<no result>");
    heap = Nomap_vm.Heap_checksum.checksum (Vm.instance vm);
    counters = Counters.to_canonical_string (Vm.counters vm);
  }

let check_equiv ~name ~tier ~arch src =
  let label =
    Printf.sprintf "%s @ %s/%s" name (Vm.cap_name tier) (Config.name arch)
  in
  let d = observe ~engine:Engine.Decoded ~tier ~arch src in
  let t = observe ~engine:Engine.Threaded ~tier ~arch src in
  Alcotest.(check string) (label ^ ": result") d.result t.result;
  Alcotest.(check string) (label ^ ": heap") d.heap t.heap;
  Alcotest.(check string) (label ^ ": counters") d.counters t.counters

(* The optimizing tiers, where the engine actually executes code, across
   every architecture; one sub-DFG tier each as an inertness check. *)
let matrix =
  (Vm.Cap_interp, [ Config.Base ])
  :: (Vm.Cap_baseline, [ Config.Base ])
  :: (Vm.Cap_dfg, Config.all)
  :: [ (Vm.Cap_ftl, Config.all) ]

let check_matrix ~name src =
  List.iter
    (fun (tier, archs) -> List.iter (fun arch -> check_equiv ~name ~tier ~arch src) archs)
    matrix

(* ------------------------------------------------------------------ *)
(* Corpus programs *)

let corpus_dir = if Sys.file_exists "fuzz_corpus" then "fuzz_corpus" else "test/fuzz_corpus"

let test_corpus_equivalence () =
  let files = Sys.readdir corpus_dir in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".js" then begin
        let src =
          In_channel.with_open_text (Filename.concat corpus_dir file) In_channel.input_all
        in
        check_matrix ~name:file src;
        incr checked
      end)
    files;
  Alcotest.(check bool) "corpus nonempty" true (!checked >= 8)

(* ------------------------------------------------------------------ *)
(* Hand-built edge cases *)

(* Phi-heavy: two accumulators swapped every iteration, so the loop header
   carries a phi group whose parallel-copy order matters. *)
let phi_kernel =
  "function benchmark() { var a = 1; var b = 2; var s = 0; for (var i = 0; i < 50; i++) { \
   var t = a; a = b + i; b = t; s = (s + a - b) & 0xFFFFF; } return s; } var it; var result \
   = 0; for (it = 0; it < 20; it++) { result = benchmark(); }"

(* Mid-segment deopt: inner() is int-specialized, then fed a double — the
   Check_int sits inside a straight-line run, so the threaded engine must
   reconcile the exact charged prefix when it fires. *)
let deopt_kernel =
  "function inner(x) { return x * 3 + 1; } function bench(d) { var s = 0; for (var i = 0; \
   i < 8; i++) { s += inner(d[i]); } return s; } var data = [1, 2, 3, 4, 5, 6, 7, 8]; var \
   it; var result = 0; for (it = 0; it < 30; it++) { result = bench(data); } data[3] = \
   2.5; result = bench(data);"

(* SOF overflow: the overflow is detected at commit, aborting the whole
   tile after the deferred segment charges were applied. *)
let sof_kernel =
  "function bench(start) { var x = start; for (var i = 0; i < 30; i++) { x = x + 7; } \
   return x; } var it; var result = 0; for (it = 0; it < 40; it++) { result = bench(it); \
   } result = bench(2147483640);"

(* Chunked transactions: write set above the ROT budget, so tiles commit
   mid-loop and segments straddle transaction boundaries across calls. *)
let chunked_kernel =
  "function benchmark() { var a = new Array(4000); for (var i = 0; i < 4000; i++) { a[i] = \
   i; } return a[3999]; } var it; var result = 0; for (it = 0; it < 20; it++) { result = \
   benchmark(); }"

let test_phi_loop () = check_matrix ~name:"phi loop" phi_kernel

let edge_archs =
  [ Config.Base; Config.NoMap_full; Config.NoMap_BC; Config.NoMap_RTM; Config.NoMap_RTM_STM ]

let check_ftl_archs ~name src =
  List.iter (fun arch -> check_equiv ~name ~tier:Vm.Cap_ftl ~arch src) edge_archs

let test_deopt_mid_segment () = check_ftl_archs ~name:"deopt mid-segment" deopt_kernel
let test_sof_abort () = check_ftl_archs ~name:"sof abort" sof_kernel
let test_chunked_tx () = check_ftl_archs ~name:"chunked tx" chunked_kernel

(* ------------------------------------------------------------------ *)
(* Hybrid RTM+STM capacity fallback *)

(* Twelve writes at a 512-element (4 KB) stride all map to the same set of
   the scaled 8-set L1D, so the write set needs 12 ways where the HTM has 8
   — an associativity overflow the byte-count estimator cannot see (96
   bytes, far under budget, so placement wraps the whole loop).  Under
   NoMap_RTM that means a capacity abort, a deopt, a Baseline re-execution
   of the rest of the call (including the check-heavy tail loop), and a
   placement demotion — three cold calls in a row until Max_chunk 4 tiles
   fit.  Under NoMap_RTM_STM the same overflow upgrades the transaction to
   the modeled software redo log in place: the check-elided body commits
   and the tail stays in FTL on every call. *)
let spray_kernel =
  "function benchmark() { var a = new Array(8192); for (var i = 0; i < 12; i++) { a[i * \
   512] = i; } var s = 0; for (var j = 0; j < 2000; j++) { s = (s + j * 7) & 0xFFFFF; } \
   return s + a[512]; } var it; var result = 0; for (it = 0; it < 10; it++) { result = \
   benchmark(); }"

(* 64 elements sit comfortably inside the scaled capacity: the fallback is
   never exercised, so the hybrid architecture must be indistinguishable
   from pure RTM down to the last counter bit. *)
let fit_kernel =
  "function benchmark() { var a = new Array(64); for (var i = 0; i < 64; i++) { a[i] = i * \
   3; } return a[63]; } var it; var result = 0; for (it = 0; it < 10; it++) { result = \
   benchmark(); }"

let run_cold ~arch src =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:500_000_000 ~thresholds ~verify_lir:true ~engine:Engine.Decoded
      ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  let result =
    match Vm.global vm "result" with
    | Some v -> Value.to_js_string v
    | None -> "<no result>"
  in
  (result, Nomap_vm.Heap_checksum.checksum (Vm.instance vm), Vm.counters vm, Vm.tx_demotions vm)

let test_hybrid_overflow () =
  (* Both engines agree on the overflowing kernel under both RTM archs. *)
  List.iter
    (fun arch -> check_equiv ~name:"spray" ~tier:Vm.Cap_ftl ~arch spray_kernel)
    [ Config.NoMap_RTM; Config.NoMap_RTM_STM ];
  let base_r, base_h, _, _ = run_cold ~arch:Config.Base spray_kernel in
  let rtm_r, rtm_h, rtm_c, rtm_dem = run_cold ~arch:Config.NoMap_RTM spray_kernel in
  let stm_r, stm_h, stm_c, stm_dem = run_cold ~arch:Config.NoMap_RTM_STM spray_kernel in
  Alcotest.(check string) "rtm result matches Base" base_r rtm_r;
  Alcotest.(check string) "hybrid result matches Base" base_r stm_r;
  Alcotest.(check string) "rtm heap matches Base" base_h rtm_h;
  Alcotest.(check string) "hybrid heap matches Base" base_h stm_h;
  Alcotest.(check bool) "rtm capacity-aborts" true (rtm_c.Counters.tx_aborts > 0);
  Alcotest.(check bool) "rtm demotes placement" true (rtm_dem > 0);
  Alcotest.(check bool) "hybrid commits in software" true (stm_c.Counters.stm_commits > 0);
  Alcotest.(check int) "hybrid never demotes" 0 stm_dem;
  Alcotest.(check int) "hybrid suffers no software rollbacks here" 0 stm_c.Counters.stm_aborts;
  (* The ladder must be monotone on a cold VM: avoiding the
     abort -> deopt -> recompile -> Baseline-re-execute transient beats
     paying the per-access software overhead on every call. *)
  Alcotest.(check bool) "hybrid beats pure RTM cold" true
    (Counters.cycles stm_c < Counters.cycles rtm_c)

let test_hybrid_fit_identical () =
  let _, _, rtm_c, _ = run_cold ~arch:Config.NoMap_RTM fit_kernel in
  let _, _, stm_c, _ = run_cold ~arch:Config.NoMap_RTM_STM fit_kernel in
  Alcotest.(check int) "no software commits when the footprint fits" 0
    stm_c.Counters.stm_commits;
  Alcotest.(check string) "bit-identical counters when no overflow"
    (Counters.to_canonical_string rtm_c)
    (Counters.to_canonical_string stm_c)

(* ------------------------------------------------------------------ *)
(* Fused elided run charges exactly zero *)

(* Hand-build an FTL LIR function whose whole body is an elided Iadd chain:
   b0: v0 = Const 7; v1 = v0+v0; ... v5 = v4+v4; Ret v5, every body
   instruction marked elided.  Both engines must execute it for exactly
   one simulated instruction (the terminator), one terminator's worth of
   cycles, and zero checks — the threaded engine runs the body as a single
   fused zero-cost superinstruction. *)
let build_elided_chain () =
  let f = L.create_func ~fid:0 in
  let b = L.new_block f in
  f.L.entry <- b.L.bid;
  let add kind =
    let i = L.new_instr f kind in
    i.L.block <- b.L.bid;
    i.L.elided <- true;
    b.L.instrs <- b.L.instrs @ [ i.L.id ];
    i.L.id
  in
  let v0 = add (L.Const (Value.Int 7)) in
  let rec chain v k = if k = 0 then v else chain (add (L.Iadd (v, v))) (k - 1) in
  let last = chain v0 5 in
  b.L.term <- L.Ret (Some last);
  {
    Specialize.lir = f;
    block_pc = Hashtbl.create 1;
    header_blocks = [];
    entry_states = Hashtbl.create 1;
    decoded = None;
    engine_code = None;
  }

let exec_raw ~engine compiled =
  let prog = Nomap_bytecode.Compile.compile_source "var result = 0;" in
  let instance = Instance.create ~fuel:1_000_000 prog in
  let counters = Counters.create () in
  let env =
    Machine.create_env ~instance ~counters ~htm_mode:Htm.Ghost ~sof_enabled:false
      ~call:(fun ~fid:_ ~this:_ ~args:_ -> Value.Undef)
      ~deopt_resume:(fun ~fid:_ ~resume_pc:_ ~values:_ -> Value.Undef)
      ()
  in
  let result =
    match engine with
    | Engine.Decoded ->
      Nomap_machine.Decoded.exec_func env compiled ~tier:Machine.Ftl ~this:Value.Undef
        ~args:[]
    | Engine.Threaded ->
      Nomap_machine.Threaded.exec_func env compiled ~tier:Machine.Ftl ~this:Value.Undef
        ~args:[]
  in
  (result, counters)

let test_elided_run_is_free () =
  List.iter
    (fun engine ->
      let name s = Engine.name engine ^ ": " ^ s in
      (* Fresh compiled record per engine so each compiles from scratch. *)
      let r, c = exec_raw ~engine (build_elided_chain ()) in
      Alcotest.(check string) (name "result") "224" (Value.to_js_string r);
      Alcotest.(check int) (name "only the terminator charged") 1 (Counters.total_instrs c);
      Alcotest.(check (float 0.0))
        (name "exactly one FTL instruction's cycles")
        Timing.cpi_ftl (Counters.cycles c);
      Alcotest.(check int) (name "zero checks") 0 (Counters.total_checks c))
    Engine.all;
  (* And the two engines' full canonical tables match bit-for-bit. *)
  let _, cd = exec_raw ~engine:Engine.Decoded (build_elided_chain ()) in
  let _, ct = exec_raw ~engine:Engine.Threaded (build_elided_chain ()) in
  Alcotest.(check string) "canonical tables identical"
    (Counters.to_canonical_string cd)
    (Counters.to_canonical_string ct)

let tests =
  [
    Alcotest.test_case "corpus equivalence (both engines)" `Quick test_corpus_equivalence;
    Alcotest.test_case "phi loop equivalence" `Quick test_phi_loop;
    Alcotest.test_case "deopt mid-segment equivalence" `Quick test_deopt_mid_segment;
    Alcotest.test_case "sof abort equivalence" `Quick test_sof_abort;
    Alcotest.test_case "chunked tx equivalence" `Quick test_chunked_tx;
    Alcotest.test_case "hybrid overflow falls back and wins" `Quick test_hybrid_overflow;
    Alcotest.test_case "hybrid matches rtm when footprint fits" `Quick
      test_hybrid_fit_identical;
    Alcotest.test_case "fused elided run is free" `Quick test_elided_run_is_free;
  ]
