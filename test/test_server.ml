(* The nomapd serving layer: wire protocol totality, artifact-cache LRU
   semantics (including a cross-domain hammer), and a live daemon on a temp
   socket exercised by concurrent clients against the fuzz corpus, checked
   bit-for-bit against direct Vm execution. *)

module Protocol = Nomap_server.Protocol
module Artifact_cache = Nomap_server.Artifact_cache
module Session = Nomap_server.Session
module Server = Nomap_server.Server
module Client = Nomap_server.Client
module Vm = Nomap_vm.Vm
module Heap_checksum = Nomap_vm.Heap_checksum
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value

(* ------------------------------------------------------------------ *)
(* Protocol *)

let sample_run =
  {
    Protocol.tier = Vm.Cap_ftl;
    arch = Config.NoMap_full;
    iters = 3;
    fuel = 1_000_000;
    deadline_ms = 250;
    src = "var result = 1 + 2;";
  }

let roundtrip_request req =
  match Protocol.decode_request (Protocol.encode_request req) with
  | Ok req' -> req'
  | Result.Error msg -> Alcotest.failf "request did not roundtrip: %s" msg

let roundtrip_response resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok resp' -> resp'
  | Result.Error msg -> Alcotest.failf "response did not roundtrip: %s" msg

let test_request_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool) "request roundtrips" true (roundtrip_request req = req))
    [
      Protocol.Run sample_run;
      Protocol.Run { sample_run with tier = Vm.Cap_interp; arch = Config.Base; src = "" };
      Protocol.Run_shared { run = sample_run; session = "room-1" };
      Protocol.Run_shared { run = sample_run; session = "" };
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Shutdown;
    ]

let test_response_roundtrip () =
  let counters =
    {
      Protocol.instrs = 12345;
      checks = 678;
      cycles = 90123.5;
      tx_commits = 4;
      tx_aborts = 1;
      deopts = 2;
      ftl_calls = 7;
    }
  in
  List.iter
    (fun resp ->
      Alcotest.(check bool) "response roundtrips" true (roundtrip_response resp = resp))
    [
      Protocol.Run_ok { cache_hit = true; result = "42"; heap = "deadbeefdeadbeef"; counters };
      Protocol.Stats_ok "queue depth=0\ncache size=1";
      Protocol.Pong;
      Protocol.Shutting_down;
      Protocol.Error { err = Protocol.Eoverloaded; msg = "queue full" };
      Protocol.Error { err = Protocol.Etimeout; msg = "" };
      Protocol.Error { err = Protocol.Efuel_limit; msg = "requested fuel 1 exceeds limit 0" };
    ]

let expect_bad what payload =
  match Protocol.decode_request payload with
  | Ok _ -> Alcotest.failf "%s: decoder accepted malformed input" what
  | Result.Error _ -> ()

let test_malformed_rejected () =
  let good = Protocol.encode_request (Protocol.Run sample_run) in
  expect_bad "empty" "";
  expect_bad "bad version" ("\x07" ^ String.sub good 1 (String.length good - 1));
  expect_bad "unknown verb" "\x01\x63";
  expect_bad "truncated run" (String.sub good 0 (String.length good - 3));
  expect_bad "trailing garbage" (good ^ "xx");
  (* Announced string length far past the payload. *)
  expect_bad "lying length"
    "\x01\x01\x03\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff";
  match Protocol.decode_response "\x01\x63" with
  | Ok _ -> Alcotest.fail "unknown status accepted"
  | Result.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Artifact cache *)

let test_lru_eviction_order () =
  let c = Artifact_cache.create ~capacity:2 () in
  let add k = ignore (Artifact_cache.find_or_add c k (fun () -> String.uppercase_ascii k)) in
  add "a";
  add "b";
  (* Refresh "a": now "b" is the least recently used. *)
  let hit, v = Artifact_cache.find_or_add c "a" (fun () -> assert false) in
  Alcotest.(check bool) "refresh was a hit" true hit;
  Alcotest.(check string) "cached value" "A" v;
  add "c";
  Alcotest.(check bool) "a survives (recently used)" true (Artifact_cache.mem c "a");
  Alcotest.(check bool) "b evicted (LRU)" false (Artifact_cache.mem c "b");
  Alcotest.(check bool) "c present" true (Artifact_cache.mem c "c");
  let s = Artifact_cache.stats c in
  Alcotest.(check int) "hits" 1 s.Artifact_cache.hits;
  Alcotest.(check int) "misses" 3 s.Artifact_cache.misses;
  Alcotest.(check int) "evictions" 1 s.Artifact_cache.evictions;
  Alcotest.(check int) "size" 2 s.Artifact_cache.size;
  (* Re-adding the victim recomputes: a genuine miss. *)
  add "b";
  let s = Artifact_cache.stats c in
  Alcotest.(check int) "miss after eviction" 4 s.Artifact_cache.misses

let test_cache_compute_failure_not_inserted () =
  let c = Artifact_cache.create ~capacity:4 () in
  (try ignore (Artifact_cache.find_or_add c "k" (fun () -> failwith "compile error"))
   with Failure _ -> ());
  Alcotest.(check bool) "failed compute not cached" false (Artifact_cache.mem c "k");
  let _, v = Artifact_cache.find_or_add c "k" (fun () -> 7) in
  Alcotest.(check int) "recomputed after failure" 7 v

let test_cache_domain_hammer () =
  let capacity = 8 and keyspace = 16 and domains = 4 and iters = 2000 in
  let c = Artifact_cache.create ~capacity () in
  let computes = Array.init keyspace (fun _ -> Atomic.make 0) in
  let worker d () =
    for i = 0 to iters - 1 do
      let k = ((d * 7919) + (i * 104729) + (i * i * 31)) mod keyspace in
      let _, v =
        Artifact_cache.find_or_add c k (fun () ->
            Atomic.incr computes.(k);
            k * 2)
      in
      if v <> k * 2 then Alcotest.failf "domain %d saw wrong value %d for key %d" d v k
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let s = Artifact_cache.stats c in
  let total_computes = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 computes in
  Alcotest.(check int) "every lookup accounted" (domains * iters)
    (s.Artifact_cache.hits + s.Artifact_cache.misses);
  Alcotest.(check int) "misses = computes" total_computes s.Artifact_cache.misses;
  Alcotest.(check int) "evictions = computes - live entries"
    (total_computes - s.Artifact_cache.size)
    s.Artifact_cache.evictions;
  Alcotest.(check bool) "bounded" true (s.Artifact_cache.size <= capacity)

(* Regression for the hash-collision bug: the session used to key the
   artifact cache on hash(src) x tier x arch alone, so two sources
   colliding on the 64-bit fingerprint served each other's compiled
   program.  The fix keeps the source in the key; structural key equality
   then verifies it on every hit.  A real FNV-1a-64 collision is
   impractical to construct, so we force one the same way the bug would
   manifest: a deliberately truncated (1-bit) hash makes every source
   collide, and the cache must still keep the artifacts apart. *)
let test_cache_truncated_hash_collision () =
  let truncated src = Int64.logand (Nomap_util.Fnv.hash64 src) 1L in
  let key src =
    { Session.hash = truncated src; src; tier = Vm.Cap_ftl; arch = Config.NoMap_full }
  in
  let srcs =
    (* More sources than hash values: the pigeonhole guarantees collisions
       whichever way the truncated bits fall. *)
    List.init 4 (fun i -> Printf.sprintf "var result = %d;" i)
  in
  let cache : (Session.key, string) Artifact_cache.t = Artifact_cache.create ~capacity:16 () in
  List.iter
    (fun src ->
      let hit, artifact = Artifact_cache.find_or_add cache (key src) (fun () -> src) in
      Alcotest.(check bool) ("first sight of " ^ src ^ " is a miss") false hit;
      Alcotest.(check string) "fresh artifact" src artifact)
    srcs;
  (* Every re-lookup must hit AND return its own artifact, never a
     hash-colliding neighbour's. *)
  List.iter
    (fun src ->
      let hit, artifact =
        Artifact_cache.find_or_add cache (key src) (fun () ->
            Alcotest.fail "re-lookup recomputed")
      in
      Alcotest.(check bool) ("re-lookup of " ^ src ^ " hits") true hit;
      Alcotest.(check string) "own artifact, not a collision victim's" src artifact)
    srcs

(* ------------------------------------------------------------------ *)
(* Live daemon integration *)

let corpus_dir = if Sys.file_exists "fuzz_corpus" then "fuzz_corpus" else "test/fuzz_corpus"

let corpus () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".js")
  |> List.sort compare
  |> List.map (fun f ->
         let ic = open_in (Filename.concat corpus_dir f) in
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         close_in ic;
         (f, s))

let temp_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nomapd-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(domains = 2) ?(queue = 64) ?(max_fuel = Session.default_fuel) cfg_f =
  let path = temp_socket () in
  let t =
    Server.start
      {
        Server.socket_path = path;
        domains;
        queue_capacity = queue;
        cache_capacity = 32;
        max_connections = 128;
        max_fuel;
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> cfg_f path t)

(* Exactly Session.run's execution recipe, in-process: the contract the
   daemon must match byte for byte. *)
let direct ~tier ~arch src =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm = Vm.create ~fuel:Session.default_fuel ~config:(Config.create arch) ~tier_cap:tier prog in
  ignore (Vm.run_main vm);
  let result =
    match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>"
  in
  (result, Heap_checksum.checksum (Vm.instance vm))

let run_req ?(tier = Vm.Cap_ftl) ?(arch = Config.NoMap_full) ?(iters = 0) ?(fuel = 0)
    ?(deadline_ms = 0) src =
  Protocol.Run { tier; arch; iters; fuel; deadline_ms; src }

let test_corpus_concurrent_clients () =
  let programs = corpus () in
  Alcotest.(check bool) "corpus nonempty" true (programs <> []);
  let expected =
    List.map (fun (f, src) -> (f, src, direct ~tier:Vm.Cap_ftl ~arch:Config.NoMap_full src))
      programs
  in
  with_server (fun path _t ->
      let clients = 4 in
      let failures = Atomic.make 0 in
      let client () =
        (* One persistent connection per client: more clients than worker
           domains would starve with keepalive, so connect per program. *)
        List.iter
          (fun (f, src, (exp_result, exp_heap)) ->
            let conn = Client.connect ~retry_for_s:5.0 path in
            Fun.protect
              ~finally:(fun () -> Client.close conn)
              (fun () ->
                match Client.rpc conn (run_req src) with
                | Protocol.Run_ok { result; heap; _ } ->
                  if result <> exp_result || heap <> exp_heap then begin
                    Printf.eprintf "%s: daemon (%s,%s) <> direct (%s,%s)\n%!" f result heap
                      exp_result exp_heap;
                    Atomic.incr failures
                  end
                | resp ->
                  Printf.eprintf "%s: unexpected response %s\n%!" f
                    (Protocol.encode_response resp);
                  Atomic.incr failures))
          expected
      in
      let ds = List.init clients (fun _ -> Domain.spawn client) in
      List.iter Domain.join ds;
      Alcotest.(check int) "all concurrent responses bit-identical to direct Vm" 0
        (Atomic.get failures))

(* [g] starts Undef (falsy) in a fresh VM; if any globals/heap leaked
   between requests, the second run would observe g = 1 and flip to 1. *)
let isolation_probe = "var n = (g ? 1 : 0);\ng = 1;\nvar result = n;"

let test_session_isolation () =
  with_server (fun path _t ->
      let conn = Client.connect ~retry_for_s:5.0 path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          for i = 1 to 3 do
            match Client.rpc conn (run_req isolation_probe) with
            | Protocol.Run_ok { result; _ } ->
              Alcotest.(check string)
                (Printf.sprintf "request %d sees a fresh VM" i)
                "0" result
            | _ -> Alcotest.fail "isolation probe did not run"
          done))

let test_error_paths () =
  with_server (fun path _t ->
      (* Ping. *)
      let conn = Client.connect ~retry_for_s:5.0 path in
      (match Client.rpc conn Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "no pong");
      (* Crash: program that doesn't parse. *)
      (match Client.rpc conn (run_req "var = ) {") with
      | Protocol.Error { err = Protocol.Ecrash; _ } -> ()
      | _ -> Alcotest.fail "parse error should be a crash response");
      (* Timeout: fuel exhaustion. *)
      (match
         Client.rpc conn
           (run_req ~fuel:1000 "var s = 0; for (var i = 0; i < 1000000; i++) { s = s + i; } var result = s;")
       with
      | Protocol.Error { err = Protocol.Etimeout; _ } -> ()
      | _ -> Alcotest.fail "fuel exhaustion should be a timeout response");
      (* The connection survives run-level errors and still serves. *)
      (match Client.rpc conn (run_req "var result = 6 * 7;") with
      | Protocol.Run_ok { result; _ } -> Alcotest.(check string) "recovers" "42" result
      | _ -> Alcotest.fail "connection did not recover");
      (* STATS over the wire. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      (match Client.rpc conn Protocol.Stats with
      | Protocol.Stats_ok text ->
        Alcotest.(check bool) "stats mentions the cache" true (contains text "cache")
      | _ -> Alcotest.fail "no stats");
      Client.close conn;
      (* Malformed frame: garbage payload gets a MALFORMED reply, then the
         daemon hangs up. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Protocol.write_frame fd "this is not a request";
      (match Protocol.read_frame fd with
      | Protocol.Frame payload -> (
        match Protocol.decode_response payload with
        | Ok (Protocol.Error { err = Protocol.Emalformed; _ }) -> ()
        | _ -> Alcotest.fail "garbage should be answered MALFORMED")
      | _ -> Alcotest.fail "no reply to garbage");
      (match Protocol.read_frame fd with
      | Protocol.Eof -> ()
      | _ -> Alcotest.fail "daemon should hang up after a malformed frame");
      Unix.close fd)

(* Cache-hit flag over the wire: first sight of a source is a miss, every
   identical resend is a hit (same key: hash x tier x arch); a different
   tier is a different artifact. *)
let test_cache_hit_flag () =
  with_server (fun path _t ->
      let conn = Client.connect ~retry_for_s:5.0 path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let src = "var result = 1 + 1;" in
          let hit_of = function
            | Protocol.Run_ok { cache_hit; _ } -> cache_hit
            | _ -> Alcotest.fail "run failed"
          in
          Alcotest.(check bool) "first run misses" false
            (hit_of (Client.rpc conn (run_req src)));
          Alcotest.(check bool) "second run hits" true
            (hit_of (Client.rpc conn (run_req src)));
          Alcotest.(check bool) "other tier misses" false
            (hit_of (Client.rpc conn (run_req ~tier:Vm.Cap_interp src)))))

(* Server-side fuel cap (--max-fuel): an over-limit request is refused with
   the typed FUEL_LIMIT error before any work; an unset request fuel is
   clamped to the cap instead of getting the unbounded built-in default;
   in-limit requests are honored untouched. *)
let test_fuel_cap () =
  let heavy =
    "var s = 0; for (var i = 0; i < 1000000; i++) { s = s + i; } var result = s;"
  in
  with_server ~max_fuel:50_000 (fun path _t ->
      let conn = Client.connect ~retry_for_s:5.0 path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* Over the cap: typed error, nothing executed. *)
          (match Client.rpc conn (run_req ~fuel:1_000_000 "var result = 1;") with
          | Protocol.Error { err = Protocol.Efuel_limit; msg } ->
            Alcotest.(check bool) "refusal names the limit" true
              (let contains hay needle =
                 let nh = String.length hay and nn = String.length needle in
                 let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
                 go 0
               in
               contains msg "50000")
          | resp ->
            Alcotest.failf "over-limit fuel should be refused, got %s"
              (Protocol.err_name
                 (match resp with Protocol.Error { err; _ } -> err | _ -> Protocol.Ecrash)))
          ;
          (* Unset fuel: clamped to the 50k cap, so the heavy loop times out
             instead of running on the ~100M built-in default. *)
          (match Client.rpc conn (run_req heavy) with
          | Protocol.Error { err = Protocol.Etimeout; _ } -> ()
          | Protocol.Run_ok _ ->
            Alcotest.fail "unset fuel escaped the server cap (ran to completion)"
          | _ -> Alcotest.fail "unset-fuel probe: unexpected response");
          (* In-limit explicit fuel still runs, and the connection survived
             both refusals. *)
          match Client.rpc conn (run_req ~fuel:40_000 "var result = 6 * 7;") with
          | Protocol.Run_ok { result; _ } -> Alcotest.(check string) "in-limit runs" "42" result
          | _ -> Alcotest.fail "in-limit request should run"))

let slow_src =
  "var s = 0; for (var i = 0; i < 5000000; i++) { s = (s + i) & 1048575; } var result = s;"

(* Raw framed socket, for tests that need to send without blocking on the
   reply (Client.rpc is strictly send-then-wait). *)
let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let raw_send fd req = Protocol.write_frame fd (Protocol.encode_request req)

let raw_recv what fd =
  match Protocol.read_frame fd with
  | Protocol.Frame payload -> (
    match Protocol.decode_response payload with
    | Ok resp -> resp
    | Result.Error msg -> Alcotest.failf "%s: bad response: %s" what msg)
  | _ -> Alcotest.failf "%s: no response frame" what

(* Backpressure and queue deadlines, deterministically: a 1-domain daemon
   with a frame queue of 1.  A slow request occupies the only worker; the
   next request fills the queue; the one after that must be answered
   OVERLOADED (the connection survives — backpressure sheds work, not
   clients).  When the worker finally frees up, the queued request —
   stamped with a 1 ms deadline at *frame arrival* on the monotonic
   clock — has been waiting far longer and must be answered TIMEOUT
   without executing. *)
let test_overload_and_deadline () =
  with_server ~domains:1 ~queue:1 (fun path _t ->
      let slow = Client.connect ~retry_for_s:5.0 path in
      let slow_result = ref None in
      (* Occupy the worker from another domain. *)
      let runner =
        Domain.spawn (fun () ->
            slow_result := Some (Client.rpc slow (run_req ~tier:Vm.Cap_interp slow_src));
            Client.close slow)
      in
      Unix.sleepf 0.3;
      (* Worker busy; this request takes the only queue slot.  Sent raw so
         we don't block on its reply. *)
      let queued = raw_connect path in
      raw_send queued (run_req ~deadline_ms:1 "var result = 1;");
      Unix.sleepf 0.3;
      (* Queue full: a third request must be shed at the admission queue,
         and its connection must survive the rejection. *)
      let shed = raw_connect path in
      raw_send shed (run_req "var result = 2;");
      (match raw_recv "shed request" shed with
      | Protocol.Error { err = Protocol.Eoverloaded; _ } -> ()
      | _ -> Alcotest.fail "third request should be answered overloaded");
      (* A 1 ms queue deadline: the worker picks the queued frame up only
         after the slow run finishes, so its wait dwarfs the deadline. *)
      (match raw_recv "queued request" queued with
      | Protocol.Error { err = Protocol.Etimeout; _ } -> ()
      | _ -> Alcotest.fail "stale queued request should time out");
      Domain.join runner;
      (match !slow_result with
      | Some (Protocol.Run_ok _) -> ()
      | _ -> Alcotest.fail "slow request should still succeed");
      (* The shed connection was kept: once load drains it serves again. *)
      raw_send shed (run_req "var result = 3;");
      (match raw_recv "shed connection after drain" shed with
      | Protocol.Run_ok { result; _ } ->
        Alcotest.(check string) "shed connection recovers" "3" result
      | _ -> Alcotest.fail "shed connection should serve after drain");
      Unix.close shed;
      Unix.close queued)

(* Regression (the stale pipelined queue-wait bug): the daemon used to
   measure queue wait once per *connection* at dequeue time and reuse it
   for every later request on that connection — so after any queued start,
   every pipelined request with a deadline was compared against a wait
   that had nothing to do with it.  Here the connection's first request
   genuinely waits ~a second for the busy worker (no deadline, so it
   runs); the second request arrives when the daemon is idle and carries a
   deadline far larger than its own (near-zero) wait.  Pre-fix it was
   spuriously timed out against the first request's wait. *)
let test_pipelined_deadline_fresh_wait () =
  with_server ~domains:1 (fun path _t ->
      let slow = Client.connect ~retry_for_s:5.0 path in
      let runner =
        Domain.spawn (fun () ->
            ignore (Client.rpc slow (run_req ~tier:Vm.Cap_interp slow_src));
            Client.close slow)
      in
      Unix.sleepf 0.2;
      let conn = Client.connect ~retry_for_s:5.0 path in
      (* First request: queued behind the slow run for ~seconds. *)
      (match Client.rpc conn (run_req "var result = 10;") with
      | Protocol.Run_ok { result; _ } -> Alcotest.(check string) "first run ok" "10" result
      | Protocol.Error { err; msg } ->
        Alcotest.failf "first run failed: %s %s" (Protocol.err_name err) msg
      | _ -> Alcotest.fail "first run: unexpected response");
      Domain.join runner;
      (* Second request on the same connection: the daemon is idle now, so
         its own queue wait is microseconds — a 250 ms deadline must hold. *)
      (match Client.rpc conn (run_req ~deadline_ms:250 "var result = 11;") with
      | Protocol.Run_ok { result; _ } ->
        Alcotest.(check string) "second run not spuriously timed out" "11" result
      | Protocol.Error { err = Protocol.Etimeout; msg } ->
        Alcotest.failf "second run judged by a stale queue wait: %s" msg
      | _ -> Alcotest.fail "second run: unexpected response");
      Client.close conn)

(* Frame-level scheduling: pipelined requests sent back-to-back on one
   connection, before reading anything, come back in order. *)
let test_pipelined_requests_in_order () =
  with_server (fun path _t ->
      let fd = raw_connect path in
      raw_send fd (run_req "var result = 1;");
      raw_send fd (run_req "var result = 2;");
      raw_send fd (run_req "var result = 3;");
      List.iter
        (fun expect ->
          match raw_recv "pipelined" fd with
          | Protocol.Run_ok { result; _ } ->
            Alcotest.(check string) "pipelined response order" expect result
          | _ -> Alcotest.fail "pipelined request did not run")
        [ "1"; "2"; "3" ];
      Unix.close fd)

(* A slow compute for key A must not block a warm hit for key B — the
   compute runs outside every cache lock (capacity 8 means a single
   shard, so this exercises the in-flight slot, not shard luck). *)
let test_cache_contention_compute_doesnt_block () =
  let c = Artifact_cache.create ~capacity:8 () in
  ignore (Artifact_cache.find_or_add c "B" (fun () -> "warm"));
  let a_started = Atomic.make false in
  let slow =
    Domain.spawn (fun () ->
        Artifact_cache.find_or_add c "A" (fun () ->
            Atomic.set a_started true;
            Unix.sleepf 0.8;
            "slow"))
  in
  while not (Atomic.get a_started) do
    Domain.cpu_relax ()
  done;
  (* A's compute is in flight and holds no lock: warm hits stay fast. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 20 do
    let hit, v = Artifact_cache.find_or_add c "B" (fun () -> Alcotest.fail "B recomputed") in
    Alcotest.(check bool) "warm hit" true hit;
    Alcotest.(check string) "warm value" "warm" v
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "20 warm hits under in-flight compute took %.3fs (must be << 0.8s)" elapsed)
    true (elapsed < 0.4);
  let hit_a, v_a = Domain.join slow in
  Alcotest.(check bool) "A was computed, not hit" false hit_a;
  Alcotest.(check string) "A's value" "slow" v_a;
  let s = Artifact_cache.stats c in
  Alcotest.(check int) "exactly two computes" 2 s.Artifact_cache.misses

(* Idle keepalive connections must not pin workers: as many idle clients
   as worker domains, plus one fresh client whose request must still be
   served.  Pre-fix, each worker was welded to one connection for its
   lifetime, so two idle clients starved a 2-domain daemon forever. *)
let test_idle_keepalive_no_starvation () =
  with_server ~domains:2 (fun path _t ->
      let idle =
        List.init 2 (fun _ ->
            let c = Client.connect ~retry_for_s:5.0 path in
            (match Client.rpc c Protocol.Ping with
            | Protocol.Pong -> ()
            | _ -> Alcotest.fail "idle client got no pong");
            c)
      in
      (* Both idle connections are live and silent; a fresh client's run
         must complete (SO_RCVTIMEO turns a starved daemon into a clean
         failure instead of a hung test). *)
      let fd = raw_connect path in
      raw_send fd (run_req "var result = 7;");
      (match raw_recv "fresh client vs idle keepalives" fd with
      | Protocol.Run_ok { result; _ } ->
        Alcotest.(check string) "fresh client served" "7" result
      | _ -> Alcotest.fail "fresh client's run failed");
      Unix.close fd;
      List.iter Client.close idle)

(* Shared sessions: two clients naming one session observe each other's
   atomic increments through the communal segment; a third client in a
   different session starts from a fresh segment; STATS reports the shared
   section. *)
let test_shared_sessions () =
  let probe = "Atomics.add(0, 1); var result = Atomics.load(0);" in
  let shared_req ~session src =
    Protocol.Run_shared
      {
        run =
          { Protocol.tier = Vm.Cap_interp; arch = Config.Base; iters = 0; fuel = 0;
            deadline_ms = 0; src };
        session;
      }
  in
  let expect_result name conn req expected =
    match Client.rpc conn req with
    | Protocol.Run_ok { result; _ } -> Alcotest.(check string) name expected result
    | resp -> Alcotest.failf "%s: unexpected response %s" name (Protocol.encode_response resp)
  in
  with_server (fun path _t ->
      let a = Client.connect ~retry_for_s:5.0 path in
      let b = Client.connect ~retry_for_s:5.0 path in
      Fun.protect
        ~finally:(fun () ->
          Client.close a;
          Client.close b)
        (fun () ->
          (* Same session: B sees A's increment, A sees B's in turn. *)
          expect_result "A increments fresh segment" a (shared_req ~session:"room" probe) "1";
          expect_result "B observes A's increment" b (shared_req ~session:"room" probe) "2";
          expect_result "A observes B's increment" a (shared_req ~session:"room" probe) "3";
          (* A different session starts from its own zeroed segment. *)
          expect_result "other session isolated" b (shared_req ~session:"annex" probe) "1";
          (* Plain RUN stays fully private: a solo segment per request. *)
          expect_result "plain RUN never shares" a
            (run_req ~tier:Vm.Cap_interp ~arch:Config.Base probe)
            "1";
          (* STATS carries the shared-session section. *)
          match Client.rpc a Protocol.Stats with
          | Protocol.Stats_ok text ->
            let has sub =
              let n = String.length text and m = String.length sub in
              let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "stats: session count" true (has "shared sessions=2");
            Alcotest.(check bool) "stats: served count" true (has "run_shared=4");
            Alcotest.(check bool) "stats: conflict aborts" true (has "conflict_aborts=0");
            Alcotest.(check bool) "stats: segment bytes" true
              (has
                 (Printf.sprintf "segment_bytes=%d"
                    (2 * 8 * Session.shared_session_words)))
          | _ -> Alcotest.fail "no stats"))

let tests =
  [
    Alcotest.test_case "protocol: request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol: response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "protocol: malformed inputs rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "cache: LRU eviction order and counters" `Quick test_lru_eviction_order;
    Alcotest.test_case "cache: failed compute not inserted" `Quick
      test_cache_compute_failure_not_inserted;
    Alcotest.test_case "cache: concurrent domain hammer" `Quick test_cache_domain_hammer;
    Alcotest.test_case "cache: truncated-hash collision serves the right artifact" `Quick
      test_cache_truncated_hash_collision;
    Alcotest.test_case "cache: in-flight compute doesn't block other keys" `Quick
      test_cache_contention_compute_doesnt_block;
    Alcotest.test_case "daemon: corpus x concurrent clients == direct Vm" `Slow
      test_corpus_concurrent_clients;
    Alcotest.test_case "daemon: sessions are isolated" `Quick test_session_isolation;
    Alcotest.test_case "daemon: shared sessions communicate, others isolated" `Quick
      test_shared_sessions;
    Alcotest.test_case "daemon: error paths (crash/timeout/malformed/stats)" `Quick
      test_error_paths;
    Alcotest.test_case "daemon: cache-hit flag keyed by source x tier" `Quick
      test_cache_hit_flag;
    Alcotest.test_case "daemon: --max-fuel refuses, clamps, and honors" `Quick test_fuel_cap;
    Alcotest.test_case "daemon: backpressure rejects, queue deadline times out" `Slow
      test_overload_and_deadline;
    Alcotest.test_case "daemon: pipelined request gets its own queue wait" `Slow
      test_pipelined_deadline_fresh_wait;
    Alcotest.test_case "daemon: pipelined requests answered in order" `Quick
      test_pipelined_requests_in_order;
    Alcotest.test_case "daemon: idle keepalive connections don't starve workers" `Quick
      test_idle_keepalive_no_starvation;
  ]
