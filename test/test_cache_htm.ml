(** Cache-model and HTM unit tests. *)

module Footprint = Nomap_cache.Footprint
module Cache = Nomap_cache.Cache
module Htm = Nomap_htm.Htm
module Heap = Nomap_runtime.Heap
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape

let test_footprint_counts_lines () =
  let fp = Footprint.create ~sets:64 ~ways:8 ~line_bytes:64 in
  Alcotest.(check bool) "fits" true (Footprint.touch fp ~addr:0 ~bytes:8);
  Alcotest.(check bool) "same line" true (Footprint.touch fp ~addr:32 ~bytes:8);
  Alcotest.(check int) "one line" 64 (Footprint.bytes fp);
  ignore (Footprint.touch fp ~addr:64 ~bytes:8);
  Alcotest.(check int) "two lines" 128 (Footprint.bytes fp);
  (* Bytes 60..189 straddle three 64B lines. *)
  let fp2 = Footprint.create ~sets:64 ~ways:8 ~line_bytes:64 in
  ignore (Footprint.touch fp2 ~addr:60 ~bytes:130);
  Alcotest.(check int) "straddle" 3 (Footprint.bytes fp2 / 64)

let test_footprint_associativity_overflow () =
  let fp = Footprint.create ~sets:4 ~ways:2 ~line_bytes:64 in
  (* Lines mapping to set 0: line numbers 0, 4, 8 -> third one overflows. *)
  Alcotest.(check bool) "1st fits" true (Footprint.touch fp ~addr:0 ~bytes:8);
  Alcotest.(check bool) "2nd fits" true (Footprint.touch fp ~addr:(4 * 64) ~bytes:8);
  Alcotest.(check bool) "3rd overflows" false (Footprint.touch fp ~addr:(8 * 64) ~bytes:8);
  Alcotest.(check bool) "sticky" false (Footprint.fits fp);
  Alcotest.(check int) "max ways" 3 (Footprint.max_ways fp)

let test_footprint_scaled_geometry () =
  let full = Footprint.l1d () in
  let scaled = Footprint.l1d ~scale:8 () in
  Alcotest.(check int) "full sets" 64 full.Footprint.sets;
  Alcotest.(check int) "scaled sets" 8 scaled.Footprint.sets

let test_cache_lru () =
  let c = Cache.create ~size_bytes:(2 * 64 * 2) ~ways:2 ~line_bytes:64 in
  (* 2 sets, 2 ways. Lines 0, 2, 4 all map to set 0. *)
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  ignore (Cache.access c (2 * 64));
  (* line 2 *)
  ignore (Cache.access c (4 * 64));
  (* line 4 evicts line 0 (LRU) *)
  Alcotest.(check bool) "line 0 evicted" false (Cache.access c 0);
  Alcotest.(check bool) "line 4 still present" true (Cache.access c (4 * 64))

let test_cache_miss_rate () =
  let c = Cache.l1d () in
  Cache.reset c;
  for i = 0 to 99 do
    ignore (Cache.access c (i * 64))
  done;
  Alcotest.(check (float 1e-9)) "all cold misses" 1.0 (Cache.miss_rate c);
  for i = 0 to 99 do
    ignore (Cache.access c (i * 64))
  done;
  Alcotest.(check (float 1e-9)) "half hits now" 0.5 (Cache.miss_rate c)

let test_htm_commit_keeps_writes () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 4 in
  Heap.set_elem heap arr 0 (Value.Int 1);
  let tx =
    Htm.begin_tx heap ~mode:Htm.Rot ~snapshot:[] ~resume_pc:0 ~owner_frame:0
  in
  Heap.set_elem heap arr 0 (Value.Int 42);
  Htm.commit tx;
  Alcotest.(check string) "write survives commit" "42"
    (Value.to_js_string (Heap.get_elem heap arr 0))

let test_htm_rollback_restores () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 4 in
  let obj = Heap.alloc_object heap in
  Heap.set_elem heap arr 0 (Value.Int 1);
  Heap.set_prop heap obj "x" (Value.Int 5);
  let tx = Htm.begin_tx heap ~mode:Htm.Rot ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
  Heap.set_elem heap arr 0 (Value.Int 42);
  Heap.set_elem heap arr 9 (Value.Int 7);
  Heap.set_prop heap obj "x" (Value.Int 99);
  Heap.set_prop heap obj "y" (Value.Int 1);
  Htm.rollback tx;
  Alcotest.(check string) "element restored" "1" (Value.to_js_string (Heap.get_elem heap arr 0));
  Alcotest.(check int) "length restored" 4 arr.Value.alen;
  Alcotest.(check string) "prop restored" "5" (Value.to_js_string (Heap.get_prop heap obj "x"));
  Alcotest.(check string) "added prop gone" "undefined"
    (Value.to_js_string (Heap.get_prop heap obj "y"))

let test_htm_write_footprint_tracked () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 64 in
  let tx = Htm.begin_tx heap ~mode:Htm.Rot ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
  for i = 0 to 63 do
    Heap.set_elem heap arr i (Value.Int i)
  done;
  (* 64 elements * 8B = 512B = 8 lines. *)
  Alcotest.(check bool) "footprint ~8 lines" true
    (Footprint.bytes tx.Htm.write_fp >= 8 * 64 && Footprint.bytes tx.Htm.write_fp <= 10 * 64);
  Htm.commit tx

let test_htm_rtm_read_tracking () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 64 in
  for i = 0 to 63 do
    Heap.set_elem heap arr i (Value.Int i)
  done;
  let tx = Htm.begin_tx heap ~mode:Htm.Rtm ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
  for i = 0 to 63 do
    ignore (Heap.get_elem heap arr i)
  done;
  (match tx.Htm.read_fp with
  | Some fp -> Alcotest.(check bool) "reads tracked" true (Footprint.bytes fp > 0)
  | None -> Alcotest.fail "RTM must track reads");
  Alcotest.(check bool) "ROT does not track reads" true
    ((Htm.begin_tx heap ~mode:Htm.Rot ~snapshot:[] ~resume_pc:0 ~owner_frame:0).Htm.read_fp
    = None);
  Heap.(heap.hooks.load <- (fun _ _ -> ()));
  Heap.(heap.hooks.store <- (fun _ _ _ -> ()));
  Heap.(heap.hooks.active <- false)

let test_htm_capacity_abort () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 5000 in
  (* A tiny scaled RTM write set overflows quickly. *)
  let tx =
    Htm.begin_tx ~capacity_scale:64 heap ~mode:Htm.Rtm ~snapshot:[] ~resume_pc:0
      ~owner_frame:0
  in
  let aborted = ref false in
  (try
     for i = 0 to 4999 do
       Heap.set_elem heap arr i (Value.Int i)
     done
   with Htm.Abort Htm.Capacity_write -> aborted := true);
  Htm.rollback tx;
  Alcotest.(check bool) "capacity abort raised" true !aborted

(* Hybrid fallback: the same overflowing write sequence that capacity-aborts
   above must, with [stm_fallback], upgrade the transaction to Stm in place,
   keep executing, and commit with every write intact.  The fallback
   callback fires exactly once with the averted reason, and the prefix
   marks record how much work the doomed hardware attempt had done. *)
let test_htm_stm_fallback_commits () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 5000 in
  let averted = ref [] in
  let tx =
    Htm.begin_tx ~capacity_scale:64 ~stm_fallback:(fun r -> averted := r :: !averted) heap
      ~mode:Htm.Rtm ~snapshot:[] ~resume_pc:0 ~owner_frame:0
  in
  for i = 0 to 4999 do
    Heap.set_elem heap arr i (Value.Int i)
  done;
  Alcotest.(check bool) "upgraded to Stm" true (tx.Htm.mode = Htm.Stm);
  (match !averted with
  | [ Htm.Capacity_write ] -> ()
  | _ -> Alcotest.failf "expected exactly one averted Capacity_write, got %d" (List.length !averted));
  Alcotest.(check bool) "prefix marks set" true
    (tx.Htm.stm_prefix_writes > 0 && tx.Htm.stm_prefix_writes < tx.Htm.writes);
  Alcotest.(check int) "all writes counted" 5000 tx.Htm.writes;
  (* The write footprint keeps accumulating past the overflow (Table IV). *)
  Alcotest.(check bool) "footprint covers the whole write set" true
    (Footprint.bytes tx.Htm.write_fp >= 5000 * 8);
  Htm.commit tx;
  Alcotest.(check string) "first write survives" "0"
    (Value.to_js_string (Heap.get_elem heap arr 0));
  Alcotest.(check string) "last write survives" "4999"
    (Value.to_js_string (Heap.get_elem heap arr 4999))

(* A fallen-back transaction can still abort (a failed in-tx check raises
   through the machine): the undo log spans the hardware prefix AND the
   software suffix, so rollback must restore the pre-transaction heap
   exactly. *)
let test_htm_stm_rollback_restores () =
  let heap = Heap.create () in
  let arr = Heap.alloc_array heap 5000 in
  Heap.set_elem heap arr 0 (Value.Int 7);
  let tx =
    Htm.begin_tx ~capacity_scale:64 ~stm_fallback:(fun _ -> ()) heap ~mode:Htm.Rtm
      ~snapshot:[] ~resume_pc:0 ~owner_frame:0
  in
  for i = 0 to 4999 do
    Heap.set_elem heap arr i (Value.Int (i + 1))
  done;
  Alcotest.(check bool) "fell back" true (tx.Htm.mode = Htm.Stm);
  Htm.rollback tx;
  Alcotest.(check string) "pre-tx write restored" "7"
    (Value.to_js_string (Heap.get_elem heap arr 0));
  Alcotest.(check string) "speculative suffix write gone" "undefined"
    (Value.to_js_string (Heap.get_elem heap arr 4999))

let qcheck_footprint_line_count =
  QCheck2.Test.make ~name:"footprint counts distinct lines" ~count:200
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 100_000))
    (fun addrs ->
      let fp = Footprint.create ~sets:1024 ~ways:1024 ~line_bytes:64 in
      List.iter (fun a -> ignore (Footprint.touch fp ~addr:a ~bytes:1)) addrs;
      let distinct = List.sort_uniq compare (List.map (fun a -> a / 64) addrs) in
      Footprint.bytes fp = 64 * List.length distinct)

let qcheck_rollback_is_identity =
  QCheck2.Test.make ~name:"tx rollback restores arbitrary write sequences" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 19) (int_range (-100) 100)))
    (fun writes ->
      let heap = Heap.create () in
      let arr = Heap.alloc_array heap 10 in
      for i = 0 to 9 do
        Heap.set_elem heap arr i (Value.Int (i * 100))
      done;
      let before = List.init 10 (fun i -> Value.to_js_string (Heap.get_elem heap arr i)) in
      let tx = Htm.begin_tx heap ~mode:Htm.Rot ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
      List.iter (fun (i, v) -> Heap.set_elem heap arr i (Value.Int v)) writes;
      Htm.rollback tx;
      let after = List.init 10 (fun i -> Value.to_js_string (Heap.get_elem heap arr i)) in
      before = after && arr.Value.alen = 10)

(* Regression: the slot table ("butterfly") reallocating while a
   transaction journals must roll back completely — shape, slot-table
   address and every speculative write — and leave pre-tx slot addresses
   untouched.  An object crosses [initial_slot_capacity] (4) inside the
   transaction, interleaved with transitions on a second object so the
   journal mixes both objects' undo closures. *)
let test_slot_growth_under_tx () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap in
  let b = Heap.alloc_object heap in
  Heap.set_prop heap a "p0" (Value.Int 0);
  Heap.set_prop heap a "p1" (Value.Int 1);
  let pre_shape = a.Value.shape.Shape.id in
  let pre_slots_addr = a.Value.slots_addr in
  let tx = Htm.begin_tx heap ~mode:Htm.Rtm ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
  for i = 2 to 7 do
    Heap.set_prop heap a (Printf.sprintf "p%d" i) (Value.Int i);
    Heap.set_prop heap b (Printf.sprintf "q%d" i) (Value.Int (i * 10))
  done;
  Alcotest.(check bool) "slot table reallocated in tx" true
    (a.Value.slots_addr <> pre_slots_addr);
  Alcotest.(check string) "p7 visible in tx" "7"
    (Value.to_js_string (Heap.get_prop heap a "p7"));
  Htm.rollback tx;
  Alcotest.(check int) "shape restored" pre_shape a.Value.shape.Shape.id;
  Alcotest.(check int) "slot-table address restored" pre_slots_addr a.Value.slots_addr;
  Alcotest.(check string) "pre-tx p0 kept" "0" (Value.to_js_string (Heap.get_prop heap a "p0"));
  Alcotest.(check string) "pre-tx p1 kept" "1" (Value.to_js_string (Heap.get_prop heap a "p1"));
  Alcotest.(check string) "speculative p5 gone" "undefined"
    (Value.to_js_string (Heap.get_prop heap a "p5"));
  Alcotest.(check int) "b rolled back to root" 0 b.Value.shape.Shape.prop_count;
  (* Same writes again, committed this time: growth must stick. *)
  let tx2 = Htm.begin_tx heap ~mode:Htm.Rtm ~snapshot:[] ~resume_pc:0 ~owner_frame:0 in
  for i = 2 to 7 do
    Heap.set_prop heap a (Printf.sprintf "p%d" i) (Value.Int i)
  done;
  let grown_addr = a.Value.slots_addr in
  Htm.commit tx2;
  Alcotest.(check int) "grown slot table survives commit" grown_addr a.Value.slots_addr;
  Alcotest.(check string) "committed p7 kept" "7"
    (Value.to_js_string (Heap.get_prop heap a "p7"));
  Alcotest.(check int) "eight props" 8 a.Value.shape.Shape.prop_count

let tests =
  [
    Alcotest.test_case "footprint counts lines" `Quick test_footprint_counts_lines;
    Alcotest.test_case "footprint associativity overflow" `Quick
      test_footprint_associativity_overflow;
    Alcotest.test_case "footprint scaled geometry" `Quick test_footprint_scaled_geometry;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "cache miss rate" `Quick test_cache_miss_rate;
    Alcotest.test_case "htm commit keeps writes" `Quick test_htm_commit_keeps_writes;
    Alcotest.test_case "htm rollback restores" `Quick test_htm_rollback_restores;
    Alcotest.test_case "htm write footprint" `Quick test_htm_write_footprint_tracked;
    Alcotest.test_case "htm rtm read tracking" `Quick test_htm_rtm_read_tracking;
    Alcotest.test_case "htm capacity abort" `Quick test_htm_capacity_abort;
    Alcotest.test_case "htm stm fallback commits" `Quick test_htm_stm_fallback_commits;
    Alcotest.test_case "htm stm rollback restores" `Quick test_htm_stm_rollback_restores;
    Alcotest.test_case "slot growth under tx" `Quick test_slot_growth_under_tx;
    QCheck_alcotest.to_alcotest qcheck_footprint_line_count;
    QCheck_alcotest.to_alcotest qcheck_rollback_is_identity;
  ]
