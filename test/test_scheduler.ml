(** Scheduler tests: key dedup across experiment plans, golden-counter
    equality of the parallel sweep against the committed serial table, and
    worker-exception propagation (a [Checksum_mismatch] in a domain must
    fail the caller, not hang or vanish). *)

module Scheduler = Nomap_harness.Scheduler
module Runner = Nomap_harness.Runner
module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config

(* A tiny private benchmark so these tests don't pay for a real workload.
   The id must be unique process-wide ("T" prefix is reserved for tests;
   T90 is taken by test_measurement). *)
let tiny_bench =
  {
    Registry.id = "T91";
    name = "tiny-loop-sched";
    suite = Registry.Shootout;
    source =
      {js|
        function benchmark() {
          var s = 0;
          for (var i = 0; i < 400; i++) s = s + i;
          return s;
        }
        benchmark();
      |js};
    in_avg_s = false;
  }

let key () = Scheduler.Key.arch ~warmup:2 ~measure:1 ~arch:Config.Base tiny_bench

(* N experiments requesting the same key must execute it once: the plan
   union carries three copies, prefetch dedups to one execution, and later
   prefetches and memoized reads hit the store. *)
let test_prefetch_dedup () =
  let c0 = Scheduler.executed () in
  let ran = Scheduler.prefetch ~jobs:2 [ key (); key (); key () ] in
  Alcotest.(check int) "three requests, one execution" 1 ran;
  Alcotest.(check int) "exec count advanced once" (c0 + 1) (Scheduler.executed ());
  Alcotest.(check int) "second prefetch is a no-op" 0 (Scheduler.prefetch ~jobs:2 [ key () ]);
  let m = Scheduler.run_arch ~warmup:2 ~measure:1 ~arch:Config.Base tiny_bench in
  Alcotest.(check int) "memoized read does not re-execute" (c0 + 1) (Scheduler.executed ());
  let m' = Scheduler.run_arch ~warmup:2 ~measure:1 ~arch:Config.Base tiny_bench in
  Alcotest.(check bool) "identical requests share the measurement" true (m == m')

(* The golden table in test/determinism.expected was produced serially; the
   domain-parallel sweep must reproduce it bit-for-bit (hex-float cycles
   included).  Together with test_determinism (which runs at the session's
   default -j), this pins -j 1 ≡ -j 4. *)
let test_parallel_matches_golden () =
  match Test_determinism.golden_lines () with
  | None -> Alcotest.fail "missing golden table determinism.expected"
  | Some _ ->
    Test_determinism.check_against_golden (Test_determinism.compute_table ~jobs:4 ())

(* A worker raising must surface in the calling domain as the original
   exception, with the remaining work abandoned — not a hang. *)
let test_worker_exception_propagates () =
  let exn = Runner.Checksum_mismatch ("T91/Base", "79800", "bogus") in
  Alcotest.check_raises "checksum mismatch propagates" exn (fun () ->
      ignore
        (Scheduler.parallel_map ~jobs:4
           (fun i -> if i = 5 then raise exn else i)
           [ 1; 2; 3; 4; 5; 6; 7; 8 ]))

let test_parallel_map_order () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "order preserved across domains" (List.map (fun x -> x * 3) xs)
    (Scheduler.parallel_map ~jobs:4 (fun x -> x * 3) xs)

let tests =
  [
    Alcotest.test_case "prefetch dedups shared keys" `Quick test_prefetch_dedup;
    Alcotest.test_case "parallel_map preserves order" `Quick test_parallel_map_order;
    Alcotest.test_case "worker exception propagates, no hang" `Quick
      test_worker_exception_propagates;
    Alcotest.test_case "-j 4 sweep matches serial golden table" `Slow
      test_parallel_matches_golden;
  ]
