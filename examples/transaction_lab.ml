(** Transaction lab: watch HTM transactions commit, abort, and roll back.

    Three experiments:
    1. steady state — the hot loop runs inside transactions that always
       commit; compare all six architectures;
    2. a late overflow — under NoMap the Sticky Overflow Flag aborts the
       transaction, the heap rolls back, and Baseline recomputes with
       doubles; the final value must be identical to Base's deopt path;
    3. a capacity blow-up — the trip count explodes after warmup, the
       transaction overflows the (scaled) cache budget, and the VM demotes
       the function's transactions to smaller tiles.

    Run with: dune exec examples/transaction_lab.exe *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Value = Nomap_runtime.Value

let steady =
  {js|
function bench(a) {
  var s = 0;
  for (var i = 0; i < a.length; i++) { s += a[i] * 3 - 1; }
  return s;
}
var data = [];
for (var i = 0; i < 100; i++) { data.push(i); }
var result = 0;
for (var it = 0; it < 60; it++) { result = bench(data); }
|js}

let overflowing =
  {js|
function accumulate(start) {
  var x = start;
  for (var i = 0; i < 50; i++) { x = x + 1000000; }
  return x;
}
var result = 0;
for (var it = 0; it < 60; it++) { result = accumulate(it); }
// Steady state established with small ints; now overflow int32:
result = accumulate(2147000000);
|js}

let capacity =
  {js|
function fill(n) {
  var a = new Array(n);
  for (var i = 0; i < n; i++) { a[i] = i; }
  var s = 0;
  for (var j = 0; j < n; j++) { s += a[j]; }
  return s;
}
var result = 0;
// Warm up with a small n so placement picks a whole-loop transaction...
for (var it = 0; it < 60; it++) { result = fill(64); }
// ...then explode the footprint.
result = fill(30000);
|js}

let run arch src =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:2_000_000_000 ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  vm

let show label (vm : Vm.t) =
  let c = Vm.counters vm in
  let aborts =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%s %s=%d" acc k v) c.Counters.abort_reasons ""
  in
  Printf.printf "  %-10s result=%-12s commits=%-6d aborts=%-3d deopts=%-3d demotions=%d%s\n"
    label
    (match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "?")
    c.Counters.tx_commits c.Counters.tx_aborts c.Counters.deopts (Vm.tx_demotions vm)
    (if aborts = "" then "" else "  [" ^ String.trim aborts ^ " ]")

let () =
  print_endline "== experiment 1: steady state across all architectures ==";
  List.iter (fun arch -> show (Config.name arch) (run arch steady)) Config.all;
  print_endline "\n== experiment 2: late int32 overflow (SOF abort vs deopt) ==";
  List.iter
    (fun arch -> show (Config.name arch) (run arch overflowing))
    [ Config.Base; Config.NoMap_full ];
  print_endline "  (identical results: the SOF abort rolled back and Baseline redid the math)";
  print_endline "\n== experiment 3: capacity blow-up and transaction demotion ==";
  List.iter
    (fun arch -> show (Config.name arch) (run arch capacity))
    [ Config.Base; Config.NoMap_full; Config.NoMap_RTM ]
