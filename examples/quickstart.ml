(** Quickstart: compile and run a MiniJS program on the full VM.

    Demonstrates the minimal public API path:
    source → [Compile.compile_source] → [Vm.create] → [Vm.run_main],
    then reading results and execution metrics back out.

    Run with: dune exec examples/quickstart.exe *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Value = Nomap_runtime.Value

let source =
  {js|
// A checksum over typed arrays, accumulated into an object property --
// exactly the kind of check-dense hot loop the NoMap paper targets.
function benchmark() {
  var xs = new Array(128);
  var ys = new Array(128);
  for (var i = 0; i < 128; i++) { xs[i] = i * 3; ys[i] = i ^ 21; }
  var acc = { sum: 0 };
  for (var j = 0; j < xs.length; j++) {
    acc.sum += xs[j] * ys[j] + (xs[j] & 7);
  }
  return acc.sum;
}

var result = 0;
for (var warm = 0; warm < 40; warm++) { result = benchmark(); }
print('checksum:', result);
|js}

let () =
  print_endline "== quickstart: running MiniJS under the NoMap VM ==\n";
  let prog = Nomap_bytecode.Compile.compile_source ~name:"quickstart" source in
  let run arch =
    let vm = Vm.create ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog in
    ignore (Vm.run_main vm);
    vm
  in
  let base = run Config.Base in
  let nomap = run Config.NoMap_full in
  let report label (vm : Vm.t) =
    let c = Vm.counters vm in
    Printf.printf
      "%-10s instructions=%9d  cycles=%10.0f  ftl-calls=%4d  deopts=%d  tx-commits=%d\n" label
      (Counters.total_instrs c) (Counters.cycles c) c.Counters.ftl_calls c.Counters.deopts
      c.Counters.tx_commits
  in
  report "Base" base;
  report "NoMap" nomap;
  let bi = float_of_int (Counters.total_instrs (Vm.counters base)) in
  let ni = float_of_int (Counters.total_instrs (Vm.counters nomap)) in
  Printf.printf "\nNoMap executed %.1f%% fewer instructions than Base.\n"
    ((1.0 -. (ni /. bi)) *. 100.0);
  match Vm.global nomap "result" with
  | Some v -> Printf.printf "final result: %s\n" (Value.to_js_string v)
  | None -> ()
