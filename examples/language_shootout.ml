(** Language shootout: one kernel, five implementations (paper Figure 1).

    Runs the `sieve` Shootout kernel under the five language stand-ins —
    ideal native ("C"), our full JIT ("JavaScript"), the bytecode
    interpreter ("Python"), and the two AST-walking interpreters ("PHP",
    "Ruby") — and prints simulated time normalized to C.

    Run with: dune exec examples/language_shootout.exe *)

module Runner = Nomap_harness.Runner
module Scheduler = Nomap_harness.Scheduler
module Registry = Nomap_workloads.Registry

let () =
  let bench = Option.get (Registry.by_name "sieve") in
  print_endline "== sieve of Eratosthenes, five language implementations ==\n";
  let c = Scheduler.run_language ~lang:Runner.Lang_c bench in
  List.iter
    (fun lang ->
      let m = Scheduler.run_language ~lang bench in
      Printf.printf "  %-11s %10.0f cycles   %6.2fx C   (checksum %s)\n"
        (Runner.language_name lang) m.Runner.cycles
        (m.Runner.cycles /. c.Runner.cycles)
        m.Runner.checksum)
    [ Runner.Lang_c; Runner.Lang_js; Runner.Lang_python; Runner.Lang_php; Runner.Lang_ruby ];
  print_endline
    "\nSame ordering as the paper's Figure 1: the JIT sits a small factor from C;\n\
     the interpreters sit an order of magnitude (or more) away."
