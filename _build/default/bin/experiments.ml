(** CLI for regenerating the paper's tables and figures.

    Usage: experiments.exe [EXPERIMENT] — where EXPERIMENT is one of fig1,
    table1, fig3, deopt_freq, fig8, fig9, fig10, fig11, table4,
    validate_htm, headline, all (default: all). *)

module E = Nomap_harness.Experiments
module Registry = Nomap_workloads.Registry

open Cmdliner

let run_experiment name =
  match name with
  | "fig1" -> ignore (E.fig1 ())
  | "table1" -> ignore (E.table1 ())
  | "fig3" ->
    ignore (E.fig3 Registry.Sunspider);
    ignore (E.fig3 Registry.Kraken)
  | "deopt_freq" -> ignore (E.deopt_freq ())
  | "fig8" -> ignore (E.fig8_9 Registry.Sunspider)
  | "fig9" -> ignore (E.fig8_9 Registry.Kraken)
  | "fig10" -> ignore (E.fig10_11 Registry.Sunspider)
  | "fig11" -> ignore (E.fig10_11 Registry.Kraken)
  | "table4" -> ignore (E.table4 ())
  | "validate_htm" -> ignore (E.validate_htm ())
  | "ablation" -> ignore (E.ablation ())
  | "headline" -> ignore (E.headline ())
  | "all" -> ignore (E.run_all ())
  | other ->
    prerr_endline ("unknown experiment: " ^ other);
    exit 1

let experiment =
  let doc =
    "Experiment to run: fig1, table1, fig3, deopt_freq, fig8, fig9, fig10, fig11, table4, \
     validate_htm, ablation, headline, or all."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "Regenerate the NoMap paper's tables and figures from the simulator" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run_experiment $ experiment)

let () = exit (Cmd.eval cmd)
