(** Tiering tour: watch one function move through the JIT tiers.

    Shows the bytecode the frontend produces, then the LIR the speculative
    compiler generates from Baseline type feedback — including every
    SMP-guarded check — and finally what the NoMap transformation plus the
    optimizer do to that code (checks gone, loads hoisted, store sunk).

    Run with: dune exec examples/tiering_tour.exe *)

module Config = Nomap_nomap.Config
module Specialize = Nomap_tiers.Specialize
module Feedback = Nomap_profile.Feedback
module Interp = Nomap_interp.Interp
module Instance = Nomap_interp.Instance
module Value = Nomap_runtime.Value

(* The paper's Figure 4 motivating example. *)
let source =
  {js|
function sumInto(obj) {
  var len = obj.values.length;
  for (var idx = 0; idx < len; idx++) {
    obj.sum += obj.values[idx];
  }
  return obj.sum;
}
var o = { values: [1, 2, 3, 4, 5, 6, 7, 8], sum: 0 };
var result = 0;
for (var it = 0; it < 50; it++) { o.sum = 0; result = sumInto(o); }
|js}

let () =
  let prog = Nomap_bytecode.Compile.compile_source ~name:"tour" source in
  print_endline "== 1. Bytecode (what every tier starts from) ==\n";
  print_endline (Nomap_bytecode.Disasm.func_to_string prog.Nomap_bytecode.Opcode.funcs.(0));
  (* Warm up under Baseline to collect type feedback. *)
  let inst = Instance.create prog in
  let profile = Feedback.create prog in
  let rec env =
    {
      Interp.instance = inst;
      mode = Interp.Baseline_tier;
      profile = Some profile;
      charge = (fun _ -> ());
      call = (fun ~fid ~this ~args -> Interp.call_function env ~fid ~this ~args);
    }
  in
  ignore
    (Interp.call_function env ~fid:prog.Nomap_bytecode.Opcode.main_fid ~this:Value.Undef
       ~args:[]);
  let fp = Feedback.func_profile profile 0 in
  let bc = prog.Nomap_bytecode.Opcode.funcs.(0) in
  let consts = inst.Instance.consts.(0) in
  print_endline "== 2. FTL LIR under Base (note the deopt checks = SMPs) ==\n";
  let c_base = Specialize.compile ~bc ~consts ~profile:fp in
  ignore
    (Nomap_nomap.Transform.apply (Config.create Config.Base)
       ~placement:Nomap_nomap.Txplace.Auto ~profile:fp c_base);
  ignore (Nomap_opt.Pipeline.ftl c_base.Specialize.lir);
  print_endline (Nomap_lir.Printer.func_to_string c_base.Specialize.lir);
  print_endline "== 3. FTL LIR under NoMap (tx wraps the loop; checks combined/gone) ==\n";
  let c_nomap = Specialize.compile ~bc ~consts ~profile:fp in
  ignore
    (Nomap_nomap.Transform.apply (Config.create Config.NoMap_full)
       ~placement:Nomap_nomap.Txplace.Auto ~profile:fp c_nomap);
  ignore (Nomap_opt.Pipeline.ftl c_nomap.Specialize.lir);
  print_endline (Nomap_lir.Printer.func_to_string c_nomap.Specialize.lir);
  let count_in_loops lir pred =
    let doms = Nomap_lir.Cfg.compute_doms lir in
    let loops = Nomap_lir.Cfg.natural_loops lir doms in
    let n = ref 0 in
    Nomap_lir.Lir.iter_instrs lir (fun blk i ->
        if
          List.exists (fun l -> List.mem blk.Nomap_lir.Lir.bid l.Nomap_lir.Cfg.body) loops
          && pred i.Nomap_lir.Lir.kind
        then incr n);
    !n
  in
  let checks lir = count_in_loops lir Nomap_lir.Lir.is_check in
  Printf.printf "per-iteration checks: Base=%d  NoMap=%d\n" (checks c_base.Specialize.lir)
    (checks c_nomap.Specialize.lir);
  Printf.printf
    "per-iteration stores: Base=%d  NoMap=%d (the obj.sum accumulator got promoted)\n"
    (count_in_loops c_base.Specialize.lir
       (function Nomap_lir.Lir.Store_slot _ -> true | _ -> false))
    (count_in_loops c_nomap.Specialize.lir
       (function Nomap_lir.Lir.Store_slot _ -> true | _ -> false))
