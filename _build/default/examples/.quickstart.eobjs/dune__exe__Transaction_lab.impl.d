examples/transaction_lab.ml: Hashtbl List Nomap_bytecode Nomap_machine Nomap_nomap Nomap_runtime Nomap_vm Printf String
