examples/tiering_tour.ml: Array List Nomap_bytecode Nomap_interp Nomap_lir Nomap_nomap Nomap_opt Nomap_profile Nomap_runtime Nomap_tiers Printf
