examples/tiering_tour.mli:
