examples/quickstart.ml: Nomap_bytecode Nomap_machine Nomap_nomap Nomap_runtime Nomap_vm Printf
