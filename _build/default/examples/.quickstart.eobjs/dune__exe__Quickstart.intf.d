examples/quickstart.mli:
