examples/transaction_lab.mli:
