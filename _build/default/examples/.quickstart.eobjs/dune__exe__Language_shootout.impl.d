examples/language_shootout.ml: List Nomap_harness Nomap_workloads Option Printf
