examples/language_shootout.mli:
