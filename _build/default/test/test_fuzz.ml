(** Differential fuzzing: generate random MiniJS programs with loops,
    arrays, objects and arithmetic; every architecture at full tier must
    compute exactly what the reference interpreter computes.

    This is the strongest correctness property in the suite: it exercises
    speculation, OSR exits, transactional rollback, bounds combining, SOF
    and the whole optimizer pipeline against randomly-shaped programs. *)

module Config = Nomap_nomap.Config
module Vm = Nomap_vm.Vm
module Value = Nomap_runtime.Value
module Gen = QCheck2.Gen

(* --- a tiny MiniJS program generator --------------------------------- *)

(* Expressions over: loop vars i/j, accumulator s, array a (length 10),
   object o with fields x/y, small constants. *)
let gen_leaf =
  Gen.oneof
    [
      Gen.map string_of_int (Gen.int_range (-20) 20);
      Gen.return "i";
      Gen.return "s";
      Gen.return "o.x";
      Gen.return "o.y";
      Gen.return "a[i % 10]";
      Gen.return "a[(i + 3) % 10]";
      Gen.return "1.5";
      Gen.return "0.25";
    ]

(* Depth is bounded explicitly: QCheck's default size ramps to ~100, and a
   100-node expression makes each whole-VM property call take seconds. *)
let gen_expr =
  Gen.bind (Gen.int_range 2 24)
    (Gen.fix (fun self n ->
         if n <= 0 then gen_leaf
         else
           Gen.oneof
             [
               gen_leaf;
               Gen.map2 (Printf.sprintf "(%s + %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s - %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s * %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s & %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s | %s)") (self (n / 2)) (self (n / 2));
               Gen.map2 (Printf.sprintf "(%s ^ %s)") (self (n / 2)) (self (n / 2));
               Gen.map (Printf.sprintf "Math.floor(%s)") (self (n - 1));
               Gen.map (Printf.sprintf "Math.abs(%s)") (self (n - 1));
               Gen.map2
                 (fun c e -> Printf.sprintf "((%s > 0) ? %s : (0 - %s))" c e e)
                 (self (n / 2)) (self (n / 2));
             ]))

(* Statements inside the hot loop. *)
let gen_stmt =
  Gen.oneof
    [
      Gen.map (Printf.sprintf "s = (s + %s) & 0xFFFFF;") gen_expr;
      Gen.map (Printf.sprintf "s += %s;") gen_expr;
      Gen.map (Printf.sprintf "a[i %% 10] = %s;") gen_expr;
      Gen.map (Printf.sprintf "o.x = %s;") gen_expr;
      Gen.map (Printf.sprintf "o.y = o.y + %s;") gen_expr;
      Gen.map (Printf.sprintf "if (s > 1000) { s = s - %s; }") gen_expr;
      Gen.map (Printf.sprintf "if ((i & 3) == 0) { continue; } s += %s;") gen_expr;
    ]

let gen_program_shrinkable =
  let open Gen in
  let* nstmts = int_range 1 4 in
  let* stmts = list_size (return nstmts) gen_stmt in
  let* trip = int_range 5 25 in
  let body = String.concat "\n    " stmts in
  return
    (Printf.sprintf
       {|
function bench() {
  var a = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
  var o = { x: 2, y: 7 };
  var s = 0;
  for (var i = 0; i < %d; i++) {
    %s
  }
  return s + o.x + o.y + a[0] + a[9];
}
var it;
var result = 0;
for (it = 0; it < 45; it++) { result = bench(); }
|}
       trip body)

(* Shrinking re-runs the (expensive, whole-VM) property thousands of times
   and the generated programs are small anyway: report failures as-is. *)
let gen_program = Gen.no_shrink gen_program_shrinkable

(* --- the differential property --------------------------------------- *)

let run_arch src arch =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:300_000_000 ~verify_lir:true ~config:(Config.create arch)
      ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "?"

let reference src = Helpers.run_result ~fuel:300_000_000 src

let agree_under archs =
  Gen.map (fun src -> (src, ())) gen_program |> ignore;
  QCheck2.Test.make ~count:50
    ~name:
      (Printf.sprintf "random programs agree: interpreter vs %s"
         (String.concat "," (List.map Config.name archs)))
    gen_program
    (fun src ->
      let expected = reference src in
      List.for_all
        (fun arch ->
          let got = run_arch src arch in
          if got <> expected then
            QCheck2.Test.fail_reportf "under %s:\n%s\nexpected %s, got %s" (Config.name arch)
              src expected got
          else true)
        archs)

let tests =
  [
    QCheck_alcotest.to_alcotest (agree_under [ Config.Base ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_S; Config.NoMap_B ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_full; Config.NoMap_BC ]);
    QCheck_alcotest.to_alcotest (agree_under [ Config.NoMap_RTM ]);
  ]
