test/helpers.ml: Alcotest Array Instance Interp Nomap_bytecode Nomap_interp Nomap_profile Nomap_runtime
