test/test_workloads.ml: Alcotest List Nomap_interp Nomap_jsir Nomap_nomap Nomap_runtime Nomap_vm Nomap_workloads Option Printf String
