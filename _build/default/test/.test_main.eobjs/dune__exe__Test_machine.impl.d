test/test_machine.ml: Alcotest Array Hashtbl Helpers Nomap_htm Nomap_machine Nomap_nomap Nomap_runtime Nomap_vm Printf String
