test/test_runtime.ml: Alcotest Float Heap Intrinsics List Nomap_jsir Nomap_runtime Ops Printf QCheck2 QCheck_alcotest Shape Value
