test/test_interp.ml: Alcotest Array Helpers Nomap_bytecode Nomap_interp Nomap_profile Printf QCheck2 QCheck_alcotest
