test/test_fuzz.ml: Helpers List Nomap_bytecode Nomap_nomap Nomap_runtime Nomap_vm Printf QCheck2 QCheck_alcotest String
