test/test_lexer_parser.ml: Alcotest Ast Lexer List Nomap_jsir Parser Printer Printf QCheck2 QCheck_alcotest
