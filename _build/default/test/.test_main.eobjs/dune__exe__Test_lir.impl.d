test/test_lir.ml: Alcotest Array Hashtbl Helpers List Nomap_bytecode Nomap_interp Nomap_lir Nomap_profile Nomap_tiers Option
