test/test_opt.ml: Alcotest Array Helpers List Nomap_bytecode Nomap_interp Nomap_lir Nomap_nomap Nomap_opt Nomap_profile Nomap_tiers Option Printf
