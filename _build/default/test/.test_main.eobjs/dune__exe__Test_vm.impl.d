test/test_vm.ml: Alcotest Array Helpers List Nomap_lir Nomap_machine Nomap_nomap Nomap_runtime Nomap_vm Printf
