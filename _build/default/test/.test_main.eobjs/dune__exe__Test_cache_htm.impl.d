test/test_cache_htm.ml: Alcotest List Nomap_cache Nomap_htm Nomap_runtime QCheck2 QCheck_alcotest
