test/test_bytecode.ml: Alcotest Array Float List Nomap_bytecode Printf QCheck2 QCheck_alcotest String
