test/test_util.ml: Alcotest Array Fun List Nomap_util Prng QCheck2 QCheck_alcotest Stats String Table
