(** Semantics tests for the bytecode engine, run in both Interpreter and
    Baseline modes (they must agree — only cost/profiling differ). *)

let check_result ?(name = "result") src expected =
  ignore name;
  Alcotest.(check string) "interp" expected (Helpers.run_result ~mode:Nomap_interp.Interp.Interp_tier src);
  Alcotest.(check string) "baseline" expected
    (Helpers.run_result ~mode:Nomap_interp.Interp.Baseline_tier src)

let test_arithmetic () =
  check_result "result = 1 + 2 * 3 - 4 / 8;" "6.5";
  check_result "result = (1 + 2) * 3;" "9";
  check_result "result = 7 % 3;" "1";
  check_result "result = -5 + +3;" "-2"

let test_string_ops () =
  check_result "result = 'a' + 'b' + 1;" "ab1";
  check_result "result = 1 + 2 + 'x';" "3x";
  check_result "result = 'abc'.length;" "3";
  check_result "result = 'abc'.charCodeAt(1);" "98";
  check_result "var s = 'hello world'; result = s.indexOf('world');" "6"

let test_comparisons_and_logic () =
  check_result "result = 1 < 2 && 2 < 3;" "true";
  check_result "result = 1 > 2 || 3 > 2;" "true";
  check_result "result = 'b' > 'a';" "true";
  check_result "result = (0 || 'x');" "x";
  check_result "result = (5 && 7);" "7";
  check_result "result = !0;" "true"

let test_control_flow () =
  check_result "var s = 0; for (var i = 0; i < 10; i++) { s += i; } result = s;" "45";
  check_result "var s = 0; var i = 0; while (i < 5) { s += 2; i++; } result = s;" "10";
  check_result "var s = 0; var i = 0; do { s++; i++; } while (i < 3); result = s;" "3";
  check_result
    "var s = 0; for (var i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } if (i > 6) { break; \
     } s += i; } result = s;"
    "9";
  check_result "result = 3 > 2 ? 'yes' : 'no';" "yes"

let test_functions () =
  check_result "function add(a, b) { return a + b; } result = add(2, 3);" "5";
  check_result
    "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } result = \
     fib(12);"
    "144";
  check_result "function f() { return; } result = f();" "undefined";
  check_result "function f(a, b) { return a; } result = f(9);" "9"

let test_objects () =
  check_result "var o = { x: 1, y: 2 }; result = o.x + o.y;" "3";
  check_result "var o = {}; o.a = 10; o.a = 20; result = o.a;" "20";
  check_result "var o = {}; result = o.missing;" "undefined";
  check_result
    "function Point(x, y) { this.x = x; this.y = y; } var p = new Point(3, 4); result = \
     Math.sqrt(p.x * p.x + p.y * p.y);"
    "5"

let test_methods_on_objects () =
  check_result
    "function dbl(x) { return x * 2; } var o = { f: dbl }; result = o.f(21);" "42"

let test_arrays () =
  check_result "var a = [1, 2, 3]; result = a[0] + a[1] + a[2];" "6";
  check_result "var a = []; a[4] = 9; result = a.length;" "5";
  check_result "var a = [1]; result = a[7];" "undefined";
  check_result "var a = new Array(3); a[0] = 5; result = a.length;" "3";
  check_result "var a = []; a.push(1); a.push(2); result = a.pop() + a.length;" "3";
  check_result "var a = ['x', 'y']; result = a.join('-');" "x-y"

let test_int_overflow_semantics () =
  check_result "result = 2147483647 + 1;" "2147483648";
  check_result "var x = 2147483647; x += 2; result = x;" "2147483649";
  check_result "result = (2147483647 + 1) | 0;" "-2147483648"

let test_bitops () =
  check_result "result = (0xF0 & 0xFF) >>> 4;" "15";
  check_result "result = 1 << 31;" "-2147483648";
  check_result "result = -8 >> 1;" "-4";
  check_result "result = -8 >>> 28;" "15";
  check_result "result = ~0;" "-1"

let test_incr_decr () =
  check_result "var i = 5; result = i++ + i;" "11";
  check_result "var i = 5; result = ++i + i;" "12";
  check_result "var a = [3]; a[0]++; result = a[0];" "4";
  check_result "var o = { n: 1 }; o.n += 4; result = o.n;" "5"

let test_globals_shared_across_functions () =
  check_result
    "var total = 0; function bump(x) { total += x; return total; } bump(1); bump(2); result = \
     total;"
    "3"

let test_math_intrinsics () =
  check_result "result = Math.max(1, 9, 4);" "9";
  check_result "result = Math.floor(2.7) + Math.ceil(2.1);" "5";
  check_result "result = Math.abs(-4.5);" "4.5";
  check_result "result = Math.pow(3, 4);" "81";
  check_result "result = Math.round(2.5);" "3"

let test_nan_propagation () =
  check_result "result = 0 / 0;" "NaN";
  check_result "result = isNaN(0 / 0);" "true";
  check_result "var x = 0 / 0; result = x == x;" "false"

let test_baseline_profile_collected () =
  let src =
    "function hot(a) { var s = 0; for (var i = 0; i < a.length; i++) { s += a[i]; } return s; } \
     var arr = [1, 2, 3, 4]; var r = 0; for (var k = 0; k < 20; k++) { r = hot(arr); } result = \
     r;"
  in
  let _, _, profile = Helpers.run_program ~mode:Nomap_interp.Interp.Baseline_tier src in
  match profile with
  | None -> Alcotest.fail "baseline must profile"
  | Some p ->
    let fp = Nomap_profile.Feedback.func_profile p 0 in
    Alcotest.(check int) "hot called 20x" 20 fp.Nomap_profile.Feedback.call_count;
    (* The loop in `hot` should have recorded ~4 iterations per entry. *)
    let prog = Helpers.compile src in
    let f = prog.Nomap_bytecode.Opcode.funcs.(0) in
    (match f.Nomap_bytecode.Opcode.loop_headers with
    | [ header ] ->
      let avg = Nomap_profile.Feedback.avg_trip_count fp header in
      Alcotest.(check bool) "avg trip count near 4" true (avg > 3.0 && avg < 5.1)
    | _ -> Alcotest.fail "expected one loop")

let test_interp_cheaper_than_baseline_is_false () =
  (* Baseline should charge fewer instructions than the interpreter. *)
  let src = "var s = 0; for (var i = 0; i < 1000; i++) { s += i; } result = s;" in
  let _, interp_cost, _ = Helpers.run_program ~mode:Nomap_interp.Interp.Interp_tier src in
  let _, baseline_cost, _ = Helpers.run_program ~mode:Nomap_interp.Interp.Baseline_tier src in
  Alcotest.(check bool)
    (Printf.sprintf "baseline (%d) < interp (%d)" baseline_cost interp_cost)
    true
    (baseline_cost < interp_cost)

let test_fuel_guard () =
  Alcotest.(check bool) "runaway loop trips fuel" true
    (try
       ignore (Helpers.run_result ~fuel:10_000 "while (true) { }");
       false
     with Nomap_interp.Instance.Out_of_fuel -> true)

let test_runtime_error () =
  Alcotest.(check bool) "calling a number fails" true
    (try
       ignore (Helpers.run_result "var o = { f: 3 }; o.f(1);");
       false
     with Nomap_interp.Interp.Runtime_error _ -> true)

(* Differential property test: random arithmetic expressions evaluate the
   same under interpreter and baseline. *)
let gen_expr =
  let open QCheck2.Gen in
  sized
    (fix (fun self n ->
         if n <= 0 then map string_of_int (int_range (-100) 100)
         else
           oneof
             [
               map string_of_int (int_range (-100) 100);
               map2 (Printf.sprintf "(%s + %s)") (self (n / 2)) (self (n / 2));
               map2 (Printf.sprintf "(%s - %s)") (self (n / 2)) (self (n / 2));
               map2 (Printf.sprintf "(%s * %s)") (self (n / 2)) (self (n / 2));
               map2 (Printf.sprintf "(%s | %s)") (self (n / 2)) (self (n / 2));
               map2 (Printf.sprintf "(%s & %s)") (self (n / 2)) (self (n / 2));
               map2 (Printf.sprintf "(%s ^ %s)") (self (n / 2)) (self (n / 2));
             ]))

let qcheck_interp_baseline_agree =
  QCheck2.Test.make ~name:"interp and baseline agree on expressions" ~count:200 gen_expr
    (fun e ->
      let src = Printf.sprintf "result = %s;" e in
      Helpers.run_result ~mode:Nomap_interp.Interp.Interp_tier src
      = Helpers.run_result ~mode:Nomap_interp.Interp.Baseline_tier src)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "string ops" `Quick test_string_ops;
    Alcotest.test_case "comparisons and logic" `Quick test_comparisons_and_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "objects" `Quick test_objects;
    Alcotest.test_case "object methods" `Quick test_methods_on_objects;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "int overflow semantics" `Quick test_int_overflow_semantics;
    Alcotest.test_case "bitops" `Quick test_bitops;
    Alcotest.test_case "incr/decr" `Quick test_incr_decr;
    Alcotest.test_case "globals shared" `Quick test_globals_shared_across_functions;
    Alcotest.test_case "math intrinsics" `Quick test_math_intrinsics;
    Alcotest.test_case "NaN propagation" `Quick test_nan_propagation;
    Alcotest.test_case "baseline profiles" `Quick test_baseline_profile_collected;
    Alcotest.test_case "baseline cheaper than interp" `Quick test_interp_cheaper_than_baseline_is_false;
    Alcotest.test_case "fuel guard" `Quick test_fuel_guard;
    Alcotest.test_case "runtime error" `Quick test_runtime_error;
    QCheck_alcotest.to_alcotest qcheck_interp_baseline_agree;
  ]
