(** Workload-suite tests: every benchmark parses, runs, and computes the
    same checksum under every architecture at full tier.

    Quick mode covers a representative subset; the `Slow ones sweep all 52
    benchmarks × all 6 architectures (run with ALCOTEST_QUICK_TESTS unset /
    `dune runtest` includes them). *)

module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config
module Vm = Nomap_vm.Vm
module Value = Nomap_runtime.Value

let test_registry_complete () =
  Alcotest.(check int) "26 SunSpider" 26 (List.length Registry.sunspider);
  Alcotest.(check int) "14 Kraken" 14 (List.length Registry.kraken);
  Alcotest.(check int) "12 Shootout" 12 (List.length Registry.shootout);
  (* Table III membership. *)
  Alcotest.(check int) "16 SunSpider AvgS members" 16
    (List.length (List.filter (fun b -> b.Registry.in_avg_s) Registry.sunspider));
  Alcotest.(check int) "9 Kraken AvgS members" 9
    (List.length (List.filter (fun b -> b.Registry.in_avg_s) Registry.kraken))

let test_ids_unique () =
  let ids = List.map (fun b -> b.Registry.id) Registry.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_all_reference_results () =
  List.iter
    (fun b ->
      let r = Registry.reference_result b in
      Alcotest.(check bool) (b.Registry.id ^ " nonempty result") true (String.length r > 0);
      (* Deterministic. *)
      Alcotest.(check string) (b.Registry.id ^ " deterministic") r (Registry.reference_result b))
    Registry.all

let run_and_check b arch =
  let prog = Registry.compile b in
  let vm =
    Vm.create ~fuel:2_000_000_000 ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  let result = ref Value.Undef in
  for _ = 1 to 28 do
    result := Vm.call_function vm "benchmark" []
  done;
  Alcotest.(check string)
    (Printf.sprintf "%s under %s" b.Registry.id (Config.name arch))
    (Registry.reference_result b)
    (Value.to_js_string !result)

let representative =
  [ "S01"; "S07"; "S10"; "S13"; "S18"; "S22"; "K01"; "K08"; "K14"; "SH07" ]

let test_representative_all_archs () =
  List.iter
    (fun id ->
      let b = Option.get (Registry.by_id id) in
      List.iter (fun arch -> run_and_check b arch) Config.all)
    representative

let slow_suite_test arch () =
  List.iter (fun b -> run_and_check b arch) Registry.all

let test_ast_interp_agrees () =
  (* The AST interpreter must compute the same checksums (a different
     engine entirely — catches semantic drift). *)
  List.iter
    (fun id ->
      let b = Option.get (Registry.by_id id) in
      let ast = Nomap_jsir.Parser.parse_program_exn b.Registry.source in
      let env =
        Nomap_interp.Ast_interp.create ~fuel:500_000_000
          ~flavour:Nomap_interp.Ast_interp.Php_like
          ~charge:(fun _ -> ())
          ast
      in
      Nomap_interp.Ast_interp.run_program env ast;
      let r = Nomap_interp.Ast_interp.call env "benchmark" [] in
      Alcotest.(check string) (id ^ " ast==bytecode") (Registry.reference_result b)
        (Value.to_js_string r))
    representative

let tests =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "ids unique" `Quick test_ids_unique;
    Alcotest.test_case "all reference results" `Quick test_all_reference_results;
    Alcotest.test_case "representative x all archs" `Quick test_representative_all_archs;
    Alcotest.test_case "ast interp agrees" `Quick test_ast_interp_agrees;
    Alcotest.test_case "full sweep: Base" `Slow (slow_suite_test Config.Base);
    Alcotest.test_case "full sweep: NoMap" `Slow (slow_suite_test Config.NoMap_full);
    Alcotest.test_case "full sweep: NoMap_BC" `Slow (slow_suite_test Config.NoMap_BC);
    Alcotest.test_case "full sweep: NoMap_RTM" `Slow (slow_suite_test Config.NoMap_RTM);
  ]
