(** Shared helpers for the test suite: compile and run MiniJS snippets under
    the interpreter or baseline engines, and fetch globals by name. *)

open Nomap_interp

let compile src = Nomap_bytecode.Compile.compile_source src

let global_value inst name =
  let prog = inst.Instance.prog in
  let idx = ref (-1) in
  Array.iteri (fun i n -> if n = name then idx := i) prog.Nomap_bytecode.Opcode.globals;
  if !idx < 0 then Alcotest.failf "no global %s" name;
  inst.Instance.globals.(!idx)

(** Run [src] to completion in the given tier; returns (instance, charged
    instruction count, profile). *)
let run_program ?(mode = Interp.Interp_tier) ?(fuel = 50_000_000) ?(seed = 42) src =
  let prog = compile src in
  let inst = Instance.create ~seed ~fuel prog in
  let count = ref 0 in
  let profile =
    match mode with
    | Interp.Baseline_tier -> Some (Nomap_profile.Feedback.create prog)
    | Interp.Interp_tier | Interp.Native_tier -> None
  in
  let rec env =
    {
      Interp.instance = inst;
      mode;
      profile;
      charge = (fun n -> count := !count + n);
      call = (fun ~fid ~this ~args -> Interp.call_function env ~fid ~this ~args);
    }
  in
  let (_ : Nomap_runtime.Value.t) =
    Interp.call_function env ~fid:prog.Nomap_bytecode.Opcode.main_fid ~this:Nomap_runtime.Value.Undef
      ~args:[]
  in
  (inst, !count, profile)

(** Run [src] and return the JS string rendering of global [result]. *)
let run_result ?mode ?fuel ?seed src =
  let inst, _, _ = run_program ?mode ?fuel ?seed src in
  Nomap_runtime.Value.to_js_string (global_value inst "result")
