module Opcode = Nomap_bytecode.Opcode
module Compile = Nomap_bytecode.Compile
module Liveness = Nomap_bytecode.Liveness

let compile src = Compile.compile_source src

let main_func (p : Opcode.program) = p.funcs.(p.main_fid)

let test_compile_simple () =
  let p = compile "var x = 1 + 2;" in
  let f = main_func p in
  Alcotest.(check bool) "has code" true (Array.length f.code > 0);
  Alcotest.(check int) "one function (main)" 1 (Array.length p.funcs)

let test_register_layout () =
  let p = compile "function f(a, b) { var c = a + b; return c; } var r = f(1, 2);" in
  let f = p.funcs.(0) in
  Alcotest.(check int) "params" 2 f.nparams;
  (* this + a + b + c *)
  Alcotest.(check int) "locals" 4 f.nlocals

let test_loop_headers () =
  let p = compile "var s = 0; for (var i = 0; i < 10; i++) { s += i; } while (s > 0) { s--; }" in
  let f = main_func p in
  Alcotest.(check int) "two loops" 2 (List.length f.loop_headers)

let test_jump_targets_valid () =
  let p =
    compile
      "var s = 0; for (var i = 0; i < 3; i++) { if (i == 1) { continue; } if (i == 2) { break; } \
       s += i; } var t = s > 0 ? 1 : 2;"
  in
  let f = main_func p in
  Array.iteri
    (fun pc op ->
      List.iter
        (fun t ->
          if t > Array.length f.code then
            Alcotest.failf "op %d jumps out of range to %d" pc t)
        (Opcode.successors op pc))
    f.code;
  (* No unpatched placeholder jumps may remain. *)
  Array.iter
    (fun op ->
      match op with
      | Opcode.Jump (-1) | Opcode.Jump_if_false (_, -1) | Opcode.Jump_if_true (_, -1) ->
        Alcotest.fail "unpatched jump"
      | _ -> ())
    f.code

let test_const_pool_dedup () =
  let p = compile "var a = 5; var b = 5; var c = 5;" in
  let f = main_func p in
  let fives =
    Array.to_list f.consts
    |> List.filter (function Opcode.Cnum 5.0 -> true | _ -> false)
  in
  Alcotest.(check int) "one shared constant" 1 (List.length fives)

let test_globals_created_on_demand () =
  let p = compile "result = counter + 1;" in
  Alcotest.(check bool) "globals registered" true
    (Array.exists (( = ) "result") p.globals && Array.exists (( = ) "counter") p.globals)

let test_undefined_function_rejected () =
  Alcotest.(check bool) "undefined call rejected" true
    (try
       ignore (compile "nosuch(1);");
       false
     with Compile.Error _ -> true)

let test_math_resolved_statically () =
  let p = compile "var x = Math.floor(1.5); var pi = Math.PI;" in
  let f = main_func p in
  let has_intrinsic =
    Array.exists (function Opcode.Call_intrinsic _ -> true | _ -> false) f.code
  in
  Alcotest.(check bool) "Math.floor is intrinsic" true has_intrinsic;
  let has_pi_const =
    Array.exists
      (function Opcode.Cnum x -> Float.abs (x -. Float.pi) < 1e-12 | _ -> false)
      f.consts
  in
  Alcotest.(check bool) "Math.PI folded to constant" true has_pi_const

let test_liveness_straightline () =
  let p = compile "function f(a) { var b = a + 1; return b; } var r = f(1);" in
  let f = p.funcs.(0) in
  let live = Liveness.compute f in
  (* At entry, the parameter register must be live. *)
  let live0 = Liveness.live_at live 0 in
  Alcotest.(check bool) "param live at entry" true (List.mem 1 live0)

let test_liveness_loop () =
  let p =
    compile
      "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = s + i; } return s; } var r \
       = f(5);"
  in
  let f = p.funcs.(0) in
  let live = Liveness.compute f in
  (* At the loop header every op should keep n, s, i live. *)
  match f.loop_headers with
  | [ header ] ->
    let lv = Liveness.live_at live header in
    Alcotest.(check bool) "n live" true (List.mem 1 lv);
    Alcotest.(check bool) "s and i live" true (List.length lv >= 3)
  | _ -> Alcotest.fail "expected one loop"

let test_disasm_smoke () =
  let p = compile "function g(x) { return x * 2; } var r = g(21);" in
  let s = Nomap_bytecode.Disasm.program_to_string p in
  Alcotest.(check bool) "mentions function" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "function g (fid=0 params=1 locals=2 regs=4)"
                          || String.length l > 0 && String.sub l 0 (min 10 (String.length l)) = "function g") lines)

let qcheck_liveness_defs_not_spuriously_live =
  (* A register that is written before any read in straight-line code must
     not be live at entry. *)
  QCheck2.Test.make ~name:"dead-at-entry temp registers" ~count:100
    QCheck2.Gen.(int_range 1 50)
    (fun n ->
      let src = Printf.sprintf "var x = %d; var y = x + 1; result = y;" n in
      let p = compile src in
      let f = main_func p in
      let live = Liveness.compute f in
      (* Nothing can be live at entry of main: it has no params. *)
      Liveness.live_at live 0 = [])

let tests =
  [
    Alcotest.test_case "compile simple" `Quick test_compile_simple;
    Alcotest.test_case "register layout" `Quick test_register_layout;
    Alcotest.test_case "loop headers" `Quick test_loop_headers;
    Alcotest.test_case "jump targets valid" `Quick test_jump_targets_valid;
    Alcotest.test_case "const pool dedup" `Quick test_const_pool_dedup;
    Alcotest.test_case "globals on demand" `Quick test_globals_created_on_demand;
    Alcotest.test_case "undefined function rejected" `Quick test_undefined_function_rejected;
    Alcotest.test_case "Math resolved statically" `Quick test_math_resolved_statically;
    Alcotest.test_case "liveness straightline" `Quick test_liveness_straightline;
    Alcotest.test_case "liveness loop" `Quick test_liveness_loop;
    Alcotest.test_case "disasm smoke" `Quick test_disasm_smoke;
    QCheck_alcotest.to_alcotest qcheck_liveness_defs_not_spuriously_live;
  ]
