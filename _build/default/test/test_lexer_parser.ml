open Nomap_jsir

let toks src =
  List.map (fun (t, _) -> Lexer.token_to_string t) (Lexer.tokenize src)

let test_lex_numbers () =
  Alcotest.(check (list string)) "ints and floats"
    [ "NUMBER(1)"; "NUMBER(2.5)"; "NUMBER(0.125)"; "NUMBER(1000)"; "NUMBER(255)"; "EOF" ]
    (toks "1 2.5 0.125 1e3 0xFF")

let test_lex_strings () =
  Alcotest.(check (list string)) "escapes"
    [ "STRING(\"a\\nb\")"; "STRING(\"q'\")"; "EOF" ]
    (toks "\"a\\nb\" 'q\\''")

let test_lex_punct_longest_match () =
  Alcotest.(check (list string)) "3-char ops win"
    [ "IDENT(a)"; "PUNCT(>>>)"; "IDENT(b)"; "PUNCT(>>)"; "IDENT(c)"; "EOF" ]
    (toks "a >>> b >> c")

let test_lex_comments () =
  Alcotest.(check (list string)) "comments skipped"
    [ "IDENT(x)"; "IDENT(y)"; "EOF" ]
    (toks "x // line\n/* block\nmore */ y")

let test_lex_keywords () =
  Alcotest.(check (list string)) "keywords"
    [ "KEYWORD(var)"; "IDENT(variable)"; "KEYWORD(new)"; "EOF" ]
    (toks "var variable new")

let test_lex_error () =
  Alcotest.check_raises "bad char"
    (Lexer.Error ("unexpected character '#'", { Ast.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "#"))

let parse src = Parser.parse_program_exn src

let test_parse_precedence () =
  match parse "x = 1 + 2 * 3;" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (Ast.Lvar "x", e))) ] ->
    Alcotest.(check string) "mul binds tighter" "(1 + (2 * 3))" (Printer.expr_to_string e)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_assoc () =
  match parse "x = 1 - 2 - 3;" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, e))) ] ->
    Alcotest.(check string) "left assoc" "((1 - 2) - 3)" (Printer.expr_to_string e)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_ternary_nested () =
  match parse "x = a ? b : c ? d : e;" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.Cond (_, _, Ast.Cond _)))) ] -> ()
  | _ -> Alcotest.fail "ternary should nest right"

let test_parse_for () =
  match parse "for (var i = 0; i < 10; i++) { s += i; }" with
  | [ Ast.Stmt (Ast.For (Some (Ast.Var_decl [ ("i", Some _) ]), Some _, Some _, [ _ ])) ] -> ()
  | _ -> Alcotest.fail "for structure"

let test_parse_function () =
  match parse "function add(a, b) { return a + b; }" with
  | [ Ast.Func { fname = "add"; params = [ "a"; "b" ]; body = [ Ast.Return (Some _) ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "function structure"

let test_parse_method_chain () =
  match parse "x = s.substring(1, 2).toUpperCase();" with
  | [ Ast.Stmt
        (Ast.Expr (Ast.Assign (_, Ast.Method_call (Ast.Method_call (_, "substring", _), "toUpperCase", []))))
    ] -> ()
  | _ -> Alcotest.fail "method chain"

let test_parse_new () =
  match parse "p = new Point(1, 2); a = new Array(8);" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.New ("Point", [ _; _ ]))));
      Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.New_array _)))
    ] -> ()
  | _ -> Alcotest.fail "new forms"

let test_parse_object_array_literals () =
  match parse "o = { a: 1, b: [2, 3] };" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.Object_lit [ ("a", _); ("b", Ast.Array_lit [ _; _ ]) ]))) ]
    -> ()
  | _ -> Alcotest.fail "literals"

let test_parse_logical_value () =
  match parse "x = a || b && c;" with
  | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.Or (_, Ast.And (_, _))))) ] -> ()
  | _ -> Alcotest.fail "&& binds tighter than ||"

let test_parse_incr_forms () =
  match parse "i++; ++i; i--; --i;" with
  | [ Ast.Stmt (Ast.Expr (Ast.Incr (_, 1, `Post)));
      Ast.Stmt (Ast.Expr (Ast.Incr (_, 1, `Pre)));
      Ast.Stmt (Ast.Expr (Ast.Incr (_, -1, `Post)));
      Ast.Stmt (Ast.Expr (Ast.Incr (_, -1, `Pre)))
    ] -> ()
  | _ -> Alcotest.fail "incr forms"

let test_parse_nested_function_rejected () =
  Alcotest.(check bool) "nested function rejected" true
    (try
       ignore (parse "function f() { function g() {} }");
       false
     with Failure _ -> true)

let test_roundtrip_print_parse () =
  (* Printing then reparsing should preserve structure. *)
  let src =
    "function f(a) { var x = 0; for (var i = 0; i < a; i++) { x += i * 2; } return x; } \
     var r = f(10);"
  in
  let p1 = parse src in
  let printed = Printer.program_to_string p1 in
  let p2 = parse printed in
  Alcotest.(check string) "fixpoint" printed (Printer.program_to_string p2)

let qcheck_number_roundtrip =
  QCheck2.Test.make ~name:"number literal roundtrip" ~count:300
    QCheck2.Gen.(float_range 0.0 1e9)
    (fun f ->
      let src = Printf.sprintf "x = %.17g;" f in
      match parse src with
      | [ Ast.Stmt (Ast.Expr (Ast.Assign (_, Ast.Number g))) ] -> g = f
      | _ -> false)

let tests =
  [
    Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex strings" `Quick test_lex_strings;
    Alcotest.test_case "lex longest match" `Quick test_lex_punct_longest_match;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex keywords" `Quick test_lex_keywords;
    Alcotest.test_case "lex error position" `Quick test_lex_error;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse associativity" `Quick test_parse_assoc;
    Alcotest.test_case "parse nested ternary" `Quick test_parse_ternary_nested;
    Alcotest.test_case "parse for" `Quick test_parse_for;
    Alcotest.test_case "parse function" `Quick test_parse_function;
    Alcotest.test_case "parse method chain" `Quick test_parse_method_chain;
    Alcotest.test_case "parse new forms" `Quick test_parse_new;
    Alcotest.test_case "parse literals" `Quick test_parse_object_array_literals;
    Alcotest.test_case "parse logical precedence" `Quick test_parse_logical_value;
    Alcotest.test_case "parse incr forms" `Quick test_parse_incr_forms;
    Alcotest.test_case "nested function rejected" `Quick test_parse_nested_function_rejected;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_print_parse;
    QCheck_alcotest.to_alcotest qcheck_number_roundtrip;
  ]
