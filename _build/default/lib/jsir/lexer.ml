(** Hand-rolled lexer for MiniJS. *)

type token =
  | NUMBER of float
  | STRING of string
  | IDENT of string
  | KEYWORD of string
  | PUNCT of string
  | EOF

exception Error of string * Ast.pos

let keywords =
  [ "var"; "function"; "if"; "else"; "while"; "do"; "for"; "return"; "break";
    "continue"; "true"; "false"; "null"; "undefined"; "new"; "this" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }

let current_pos t : Ast.pos = { line = t.line; col = t.pos - t.bol + 1 }

let error t msg = raise (Error (msg, current_pos t))

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let peek_char2 t =
  if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek_char t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.bol <- t.pos + 1
  | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_trivia t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_trivia t
  | Some '/' when peek_char2 t = Some '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      advance t
    done;
    skip_trivia t
  | Some '/' when peek_char2 t = Some '*' ->
    advance t;
    advance t;
    let rec loop () =
      match (peek_char t, peek_char2 t) with
      | Some '*', Some '/' ->
        advance t;
        advance t
      | Some _, _ ->
        advance t;
        loop ()
      | None, _ -> error t "unterminated block comment"
    in
    loop ();
    skip_trivia t
  | _ -> ()

let lex_number t =
  let start = t.pos in
  if
    peek_char t = Some '0'
    && (peek_char2 t = Some 'x' || peek_char2 t = Some 'X')
  then begin
    advance t;
    advance t;
    let hstart = t.pos in
    while (match peek_char t with Some c -> is_hex_digit c | None -> false) do
      advance t
    done;
    if t.pos = hstart then error t "bad hex literal";
    let digits = String.sub t.src hstart (t.pos - hstart) in
    NUMBER (float_of_string ("0x" ^ digits))
  end
  else begin
    while (match peek_char t with Some c -> is_digit c | None -> false) do
      advance t
    done;
    (* Fraction: only when the dot is followed by a digit (so `1.foo` lexes
       as NUMBER DOT IDENT, which MiniJS does not need but keeps errors sane). *)
    (match (peek_char t, peek_char2 t) with
    | Some '.', Some c when is_digit c ->
      advance t;
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done
    | _ -> ());
    (match peek_char t with
    | Some ('e' | 'E') ->
      advance t;
      (match peek_char t with Some ('+' | '-') -> advance t | _ -> ());
      let estart = t.pos in
      while (match peek_char t with Some c -> is_digit c | None -> false) do
        advance t
      done;
      if t.pos = estart then error t "bad exponent"
    | _ -> ());
    NUMBER (float_of_string (String.sub t.src start (t.pos - start)))
  end

let lex_string t quote =
  advance t;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char t with
    | None -> error t "unterminated string literal"
    | Some c when c = quote -> advance t
    | Some '\\' -> (
      advance t;
      match peek_char t with
      | None -> error t "unterminated escape"
      | Some c ->
        advance t;
        let decoded =
          match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | '\\' -> '\\'
          | '\'' -> '\''
          | '"' -> '"'
          | c -> c
        in
        Buffer.add_char buf decoded;
        loop ())
    | Some c ->
      advance t;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  STRING (Buffer.contents buf)

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  let s = String.sub t.src start (t.pos - start) in
  if List.mem s keywords then KEYWORD s else IDENT s

(* Longest-match punctuation. Order within a length class does not matter. *)
let puncts3 = [ "==="; "!=="; ">>>"; "<<="; ">>=" ]
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "++"; "--"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^=" ]
let puncts1 =
  [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "~"; "&"; "|"; "^"; "?"; ":";
    ";"; ","; "."; "("; ")"; "["; "]"; "{"; "}" ]

let try_punct t =
  let try_at n candidates =
    if t.pos + n <= String.length t.src then begin
      let s = String.sub t.src t.pos n in
      if List.mem s candidates then Some s else None
    end
    else None
  in
  (* >>>= would be 4 chars; MiniJS does not support it. *)
  match try_at 3 puncts3 with
  | Some s -> Some s
  | None -> (
    match try_at 2 puncts2 with
    | Some s -> Some s
    | None -> try_at 1 puncts1)

let next t : token * Ast.pos =
  skip_trivia t;
  let pos = current_pos t in
  match peek_char t with
  | None -> (EOF, pos)
  | Some c when is_digit c -> (lex_number t, pos)
  | Some (('"' | '\'') as q) -> (lex_string t q, pos)
  | Some c when is_ident_start c -> (lex_ident t, pos)
  | Some c -> (
    match try_punct t with
    | Some s ->
      for _ = 1 to String.length s do
        advance t
      done;
      (PUNCT s, pos)
    | None -> error t (Printf.sprintf "unexpected character %C" c))

(** Lex an entire source string to a token list (with positions). *)
let tokenize src =
  let t = create src in
  let rec loop acc =
    match next t with
    | (EOF, _) as tok -> List.rev (tok :: acc)
    | tok -> loop (tok :: acc)
  in
  loop []

let token_to_string = function
  | NUMBER f -> Printf.sprintf "NUMBER(%g)" f
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | KEYWORD s -> Printf.sprintf "KEYWORD(%s)" s
  | PUNCT s -> Printf.sprintf "PUNCT(%s)" s
  | EOF -> "EOF"
