(** Recursive-descent parser for MiniJS.

    Notes on the accepted grammar:
    - [===]/[!==] are parsed as [==]/[!=]; MiniJS values have no coercing
      equality so the two coincide.
    - Functions are top-level only; a nested [function] is a parse error.
    - [f(args)] requires [f] to be a global function name; [o.m(args)] is a
      method (or builtin) call; computed callees are rejected. *)

exception Error of string * Ast.pos

type t = { mutable toks : (Lexer.token * Ast.pos) list }

let create src =
  match Lexer.tokenize src with
  | toks -> { toks }
  | exception Lexer.Error (msg, pos) -> raise (Error ("lex error: " ^ msg, pos))

let peek p = match p.toks with [] -> (Lexer.EOF, { Ast.line = 0; col = 0 }) | tok :: _ -> tok

let peek2 p =
  match p.toks with
  | _ :: tok :: _ -> tok
  | _ -> (Lexer.EOF, { Ast.line = 0; col = 0 })

let pos_of p = snd (peek p)

let error p msg = raise (Error (msg, pos_of p))

let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let eat_punct p s =
  match peek p with
  | Lexer.PUNCT q, _ when q = s -> advance p
  | tok, _ ->
    error p (Printf.sprintf "expected %S, found %s" s (Lexer.token_to_string tok))

let eat_keyword p s =
  match peek p with
  | Lexer.KEYWORD q, _ when q = s -> advance p
  | tok, _ ->
    error p (Printf.sprintf "expected keyword %S, found %s" s (Lexer.token_to_string tok))

let at_punct p s = match peek p with Lexer.PUNCT q, _ -> q = s | _ -> false
let at_keyword p s = match peek p with Lexer.KEYWORD q, _ -> q = s | _ -> false

let eat_ident p =
  match peek p with
  | Lexer.IDENT s, _ ->
    advance p;
    s
  | tok, _ -> error p (Printf.sprintf "expected identifier, found %s" (Lexer.token_to_string tok))

(* Property names in literals and member access may be identifiers or keywords
   (e.g. [o.length] where the name collides with nothing reserved here). *)
let eat_prop_name p =
  match peek p with
  | Lexer.IDENT s, _ | Lexer.KEYWORD s, _ ->
    advance p;
    s
  | Lexer.STRING s, _ ->
    advance p;
    s
  | tok, _ -> error p (Printf.sprintf "expected property name, found %s" (Lexer.token_to_string tok))

let lvalue_of_expr p (e : Ast.expr) : Ast.lvalue =
  match e with
  | Ast.Var x -> Ast.Lvar x
  | Ast.Index (a, i) -> Ast.Lindex (a, i)
  | Ast.Prop (o, f) -> Ast.Lprop (o, f)
  | _ -> error p "invalid assignment target"

let binop_of_compound = function
  | "+=" -> Ast.Add
  | "-=" -> Ast.Sub
  | "*=" -> Ast.Mul
  | "/=" -> Ast.Div
  | "%=" -> Ast.Mod
  | "&=" -> Ast.Band
  | "|=" -> Ast.Bor
  | "^=" -> Ast.Bxor
  | "<<=" -> Ast.Shl
  | ">>=" -> Ast.Shr
  | s -> invalid_arg ("binop_of_compound: " ^ s)

let rec parse_expr p : Ast.expr = parse_assign p

and parse_assign p =
  let lhs = parse_cond p in
  match peek p with
  | Lexer.PUNCT "=", _ ->
    advance p;
    let rhs = parse_assign p in
    Ast.Assign (lvalue_of_expr p lhs, rhs)
  | Lexer.PUNCT (("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=") as op), _ ->
    advance p;
    let rhs = parse_assign p in
    Ast.Op_assign (binop_of_compound op, lvalue_of_expr p lhs, rhs)
  | _ -> lhs

and parse_cond p =
  let c = parse_or p in
  if at_punct p "?" then begin
    advance p;
    let a = parse_assign p in
    eat_punct p ":";
    let b = parse_assign p in
    Ast.Cond (c, a, b)
  end
  else c

and parse_or p =
  let rec loop acc =
    if at_punct p "||" then begin
      advance p;
      loop (Ast.Or (acc, parse_and p))
    end
    else acc
  in
  loop (parse_and p)

and parse_and p =
  let rec loop acc =
    if at_punct p "&&" then begin
      advance p;
      loop (Ast.And (acc, parse_bitor p))
    end
    else acc
  in
  loop (parse_bitor p)

and parse_bitor p =
  let rec loop acc =
    if at_punct p "|" then begin
      advance p;
      loop (Ast.Binop (Ast.Bor, acc, parse_bitxor p))
    end
    else acc
  in
  loop (parse_bitxor p)

and parse_bitxor p =
  let rec loop acc =
    if at_punct p "^" then begin
      advance p;
      loop (Ast.Binop (Ast.Bxor, acc, parse_bitand p))
    end
    else acc
  in
  loop (parse_bitand p)

and parse_bitand p =
  let rec loop acc =
    if at_punct p "&" then begin
      advance p;
      loop (Ast.Binop (Ast.Band, acc, parse_equality p))
    end
    else acc
  in
  loop (parse_equality p)

and parse_equality p =
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT ("==" | "==="), _ ->
      advance p;
      loop (Ast.Binop (Ast.Eq, acc, parse_relational p))
    | Lexer.PUNCT ("!=" | "!=="), _ ->
      advance p;
      loop (Ast.Binop (Ast.Ne, acc, parse_relational p))
    | _ -> acc
  in
  loop (parse_relational p)

and parse_relational p =
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT "<", _ ->
      advance p;
      loop (Ast.Binop (Ast.Lt, acc, parse_shift p))
    | Lexer.PUNCT "<=", _ ->
      advance p;
      loop (Ast.Binop (Ast.Le, acc, parse_shift p))
    | Lexer.PUNCT ">", _ ->
      advance p;
      loop (Ast.Binop (Ast.Gt, acc, parse_shift p))
    | Lexer.PUNCT ">=", _ ->
      advance p;
      loop (Ast.Binop (Ast.Ge, acc, parse_shift p))
    | _ -> acc
  in
  loop (parse_shift p)

and parse_shift p =
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT "<<", _ ->
      advance p;
      loop (Ast.Binop (Ast.Shl, acc, parse_additive p))
    | Lexer.PUNCT ">>", _ ->
      advance p;
      loop (Ast.Binop (Ast.Shr, acc, parse_additive p))
    | Lexer.PUNCT ">>>", _ ->
      advance p;
      loop (Ast.Binop (Ast.Ushr, acc, parse_additive p))
    | _ -> acc
  in
  loop (parse_additive p)

and parse_additive p =
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT "+", _ ->
      advance p;
      loop (Ast.Binop (Ast.Add, acc, parse_multiplicative p))
    | Lexer.PUNCT "-", _ ->
      advance p;
      loop (Ast.Binop (Ast.Sub, acc, parse_multiplicative p))
    | _ -> acc
  in
  loop (parse_multiplicative p)

and parse_multiplicative p =
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT "*", _ ->
      advance p;
      loop (Ast.Binop (Ast.Mul, acc, parse_unary p))
    | Lexer.PUNCT "/", _ ->
      advance p;
      loop (Ast.Binop (Ast.Div, acc, parse_unary p))
    | Lexer.PUNCT "%", _ ->
      advance p;
      loop (Ast.Binop (Ast.Mod, acc, parse_unary p))
    | _ -> acc
  in
  loop (parse_unary p)

and parse_unary p =
  match peek p with
  | Lexer.PUNCT "-", _ ->
    advance p;
    Ast.Unop (Ast.Neg, parse_unary p)
  | Lexer.PUNCT "+", _ ->
    advance p;
    Ast.Unop (Ast.Plus, parse_unary p)
  | Lexer.PUNCT "!", _ ->
    advance p;
    Ast.Unop (Ast.Not, parse_unary p)
  | Lexer.PUNCT "~", _ ->
    advance p;
    Ast.Unop (Ast.Bitnot, parse_unary p)
  | Lexer.PUNCT "++", _ ->
    advance p;
    let e = parse_unary p in
    Ast.Incr (lvalue_of_expr p e, 1, `Pre)
  | Lexer.PUNCT "--", _ ->
    advance p;
    let e = parse_unary p in
    Ast.Incr (lvalue_of_expr p e, -1, `Pre)
  | _ -> parse_postfix p

and parse_postfix p =
  let e = parse_call_member p in
  match peek p with
  | Lexer.PUNCT "++", _ ->
    advance p;
    Ast.Incr (lvalue_of_expr p e, 1, `Post)
  | Lexer.PUNCT "--", _ ->
    advance p;
    Ast.Incr (lvalue_of_expr p e, -1, `Post)
  | _ -> e

and parse_call_member p =
  let base =
    match peek p with
    | Lexer.IDENT name, _ when (match peek2 p with Lexer.PUNCT "(", _ -> true | _ -> false) ->
      advance p;
      advance p;
      let args = parse_args p in
      Ast.Call (name, args)
    | _ -> parse_primary p
  in
  let rec loop acc =
    match peek p with
    | Lexer.PUNCT ".", _ ->
      advance p;
      let name = eat_prop_name p in
      if at_punct p "(" then begin
        advance p;
        let args = parse_args p in
        loop (Ast.Method_call (acc, name, args))
      end
      else loop (Ast.Prop (acc, name))
    | Lexer.PUNCT "[", _ ->
      advance p;
      let i = parse_expr p in
      eat_punct p "]";
      loop (Ast.Index (acc, i))
    | _ -> acc
  in
  loop base

and parse_args p =
  (* Opening paren already consumed. *)
  if at_punct p ")" then begin
    advance p;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_assign p in
      if at_punct p "," then begin
        advance p;
        loop (e :: acc)
      end
      else begin
        eat_punct p ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_primary p =
  match peek p with
  | Lexer.NUMBER f, _ ->
    advance p;
    Ast.Number f
  | Lexer.STRING s, _ ->
    advance p;
    Ast.Str s
  | Lexer.KEYWORD "true", _ ->
    advance p;
    Ast.Bool true
  | Lexer.KEYWORD "false", _ ->
    advance p;
    Ast.Bool false
  | Lexer.KEYWORD "null", _ ->
    advance p;
    Ast.Null
  | Lexer.KEYWORD "undefined", _ ->
    advance p;
    Ast.Undefined
  | Lexer.KEYWORD "this", _ ->
    advance p;
    Ast.This
  | Lexer.KEYWORD "new", _ ->
    advance p;
    let name = eat_ident p in
    eat_punct p "(";
    let args = parse_args p in
    if name = "Array" then begin
      match args with
      | [ n ] -> Ast.New_array n
      | [] -> Ast.Array_lit []
      | _ -> error p "new Array expects zero or one argument"
    end
    else Ast.New (name, args)
  | Lexer.IDENT name, _ ->
    advance p;
    Ast.Var name
  | Lexer.PUNCT "(", _ ->
    advance p;
    let e = parse_expr p in
    eat_punct p ")";
    e
  | Lexer.PUNCT "[", _ ->
    advance p;
    let rec loop acc =
      if at_punct p "]" then begin
        advance p;
        List.rev acc
      end
      else begin
        let e = parse_assign p in
        if at_punct p "," then begin
          advance p;
          loop (e :: acc)
        end
        else begin
          eat_punct p "]";
          List.rev (e :: acc)
        end
      end
    in
    Ast.Array_lit (loop [])
  | Lexer.PUNCT "{", _ ->
    advance p;
    let rec loop acc =
      if at_punct p "}" then begin
        advance p;
        List.rev acc
      end
      else begin
        let name = eat_prop_name p in
        eat_punct p ":";
        let e = parse_assign p in
        if at_punct p "," then begin
          advance p;
          loop ((name, e) :: acc)
        end
        else begin
          eat_punct p "}";
          List.rev ((name, e) :: acc)
        end
      end
    in
    Ast.Object_lit (loop [])
  | tok, _ -> error p (Printf.sprintf "unexpected token %s" (Lexer.token_to_string tok))

let rec parse_stmt p : Ast.stmt =
  match peek p with
  | Lexer.KEYWORD "var", _ ->
    advance p;
    let rec decls acc =
      let name = eat_ident p in
      let init =
        if at_punct p "=" then begin
          advance p;
          Some (parse_assign p)
        end
        else None
      in
      if at_punct p "," then begin
        advance p;
        decls ((name, init) :: acc)
      end
      else List.rev ((name, init) :: acc)
    in
    let ds = decls [] in
    semi p;
    Ast.Var_decl ds
  | Lexer.KEYWORD "if", _ ->
    advance p;
    eat_punct p "(";
    let c = parse_expr p in
    eat_punct p ")";
    let then_ = parse_block_or_stmt p in
    let else_ =
      if at_keyword p "else" then begin
        advance p;
        parse_block_or_stmt p
      end
      else []
    in
    Ast.If (c, then_, else_)
  | Lexer.KEYWORD "while", _ ->
    advance p;
    eat_punct p "(";
    let c = parse_expr p in
    eat_punct p ")";
    Ast.While (c, parse_block_or_stmt p)
  | Lexer.KEYWORD "do", _ ->
    advance p;
    let body = parse_block_or_stmt p in
    eat_keyword p "while";
    eat_punct p "(";
    let c = parse_expr p in
    eat_punct p ")";
    semi p;
    Ast.Do_while (body, c)
  | Lexer.KEYWORD "for", _ ->
    advance p;
    eat_punct p "(";
    let init =
      if at_punct p ";" then None
      else if at_keyword p "var" then Some (parse_for_var p)
      else Some (Ast.Expr (parse_expr p))
    in
    eat_punct p ";";
    let cond = if at_punct p ";" then None else Some (parse_expr p) in
    eat_punct p ";";
    let step = if at_punct p ")" then None else Some (parse_expr p) in
    eat_punct p ")";
    Ast.For (init, cond, step, parse_block_or_stmt p)
  | Lexer.KEYWORD "return", _ ->
    advance p;
    let e =
      if at_punct p ";" || at_punct p "}" then None else Some (parse_expr p)
    in
    semi p;
    Ast.Return e
  | Lexer.KEYWORD "break", _ ->
    advance p;
    semi p;
    Ast.Break
  | Lexer.KEYWORD "continue", _ ->
    advance p;
    semi p;
    Ast.Continue
  | Lexer.KEYWORD "function", _ -> error p "nested functions are not supported in MiniJS"
  | Lexer.PUNCT "{", _ -> Ast.Block (parse_block p)
  | _ ->
    let e = parse_expr p in
    semi p;
    Ast.Expr e

(* A `var` clause inside for(...) — no trailing semicolon. *)
and parse_for_var p =
  eat_keyword p "var";
  let rec decls acc =
    let name = eat_ident p in
    let init =
      if at_punct p "=" then begin
        advance p;
        Some (parse_assign p)
      end
      else None
    in
    if at_punct p "," then begin
      advance p;
      decls ((name, init) :: acc)
    end
    else List.rev ((name, init) :: acc)
  in
  Ast.Var_decl (decls [])

and semi p = if at_punct p ";" then advance p else ()

and parse_block p : Ast.block =
  eat_punct p "{";
  let rec loop acc =
    if at_punct p "}" then begin
      advance p;
      List.rev acc
    end
    else loop (parse_stmt p :: acc)
  in
  loop []

and parse_block_or_stmt p : Ast.block =
  if at_punct p "{" then parse_block p else [ parse_stmt p ]

let parse_func p : Ast.func =
  let fpos = pos_of p in
  eat_keyword p "function";
  let fname = eat_ident p in
  eat_punct p "(";
  let params =
    if at_punct p ")" then begin
      advance p;
      []
    end
    else begin
      let rec loop acc =
        let x = eat_ident p in
        if at_punct p "," then begin
          advance p;
          loop (x :: acc)
        end
        else begin
          eat_punct p ")";
          List.rev (x :: acc)
        end
      in
      loop []
    end
  in
  let body = parse_block p in
  { Ast.fname; params; body; fpos }

let parse_program src : Ast.program =
  let p = create src in
  let rec loop acc =
    match peek p with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.KEYWORD "function", _ -> loop (Ast.Func (parse_func p) :: acc)
    | _ -> loop (Ast.Stmt (parse_stmt p) :: acc)
  in
  loop []

(** Parse, raising [Failure] with a human-readable message on error. *)
let parse_program_exn ?(name = "<prog>") src =
  try parse_program src with
  | Error (msg, pos) ->
    failwith (Printf.sprintf "%s:%d:%d: %s" name pos.Ast.line pos.Ast.col msg)
  | Lexer.Error (msg, pos) ->
    failwith (Printf.sprintf "%s:%d:%d: lex error: %s" name pos.Ast.line pos.Ast.col msg)
