lib/jsir/ast.ml: Format List
