lib/jsir/parser.ml: Ast Lexer List Printf
