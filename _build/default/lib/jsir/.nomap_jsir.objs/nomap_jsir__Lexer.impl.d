lib/jsir/lexer.ml: Ast Buffer List Printf String
