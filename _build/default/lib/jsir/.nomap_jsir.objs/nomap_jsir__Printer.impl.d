lib/jsir/printer.ml: Ast Float Format String
