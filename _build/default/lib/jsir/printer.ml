(** Pretty-printer for MiniJS ASTs, mainly used by tests (parse/print
    round-trips) and by the examples to show what was parsed. *)

open Ast

let rec pp_expr fmt = function
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf fmt "%.0f" f
    else Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.fprintf fmt "%b" b
  | Null -> Format.fprintf fmt "null"
  | Undefined -> Format.fprintf fmt "undefined"
  | Var x -> Format.fprintf fmt "%s" x
  | This -> Format.fprintf fmt "this"
  | Array_lit es ->
    Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:comma pp_expr) es
  | Object_lit fields ->
    let pp_field fmt (name, e) = Format.fprintf fmt "%s: %a" name pp_expr e in
    Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:comma pp_field) fields
  | Index (a, i) -> Format.fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Prop (o, f) -> Format.fprintf fmt "%a.%s" pp_expr o f
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f (Format.pp_print_list ~pp_sep:comma pp_expr) args
  | Method_call (o, m, args) ->
    Format.fprintf fmt "%a.%s(%a)" pp_expr o m
      (Format.pp_print_list ~pp_sep:comma pp_expr)
      args
  | New (f, args) ->
    Format.fprintf fmt "new %s(%a)" f (Format.pp_print_list ~pp_sep:comma pp_expr) args
  | New_array n -> Format.fprintf fmt "new Array(%a)" pp_expr n
  | Unop (op, e) -> Format.fprintf fmt "(%s%a)" (unop_to_string op) pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_expr a pp_expr b
  | Cond (c, a, b) -> Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Assign (lv, e) -> Format.fprintf fmt "%a = %a" pp_lvalue lv pp_expr e
  | Op_assign (op, lv, e) ->
    Format.fprintf fmt "%a %s= %a" pp_lvalue lv (binop_to_string op) pp_expr e
  | Incr (lv, 1, `Pre) -> Format.fprintf fmt "++%a" pp_lvalue lv
  | Incr (lv, -1, `Pre) -> Format.fprintf fmt "--%a" pp_lvalue lv
  | Incr (lv, 1, `Post) -> Format.fprintf fmt "%a++" pp_lvalue lv
  | Incr (lv, _, `Post) -> Format.fprintf fmt "%a--" pp_lvalue lv
  | Incr (lv, _, `Pre) -> Format.fprintf fmt "--%a" pp_lvalue lv

and pp_lvalue fmt = function
  | Lvar x -> Format.fprintf fmt "%s" x
  | Lindex (a, i) -> Format.fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Lprop (o, f) -> Format.fprintf fmt "%a.%s" pp_expr o f

and comma fmt () = Format.fprintf fmt ", "

let rec pp_stmt fmt = function
  | Expr e -> Format.fprintf fmt "@[%a;@]" pp_expr e
  | Var_decl ds ->
    let pp_d fmt (x, init) =
      match init with
      | None -> Format.fprintf fmt "%s" x
      | Some e -> Format.fprintf fmt "%s = %a" x pp_expr e
    in
    Format.fprintf fmt "@[var %a;@]" (Format.pp_print_list ~pp_sep:comma pp_d) ds
  | If (c, then_, []) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block then_
  | If (c, then_, else_) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
      pp_block then_ pp_block else_
  | While (c, body) ->
    Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block body
  | Do_while (body, c) ->
    Format.fprintf fmt "@[<v 2>do {@,%a@]@,} while (%a);" pp_block body pp_expr c
  | For (init, cond, step, body) ->
    let pp_opt_stmt fmt = function
      | None -> ()
      | Some (Expr e) -> pp_expr fmt e
      | Some (Var_decl _ as s) ->
        (* Reuse the statement printer, trimming the trailing semicolon. *)
        let s' = Format.asprintf "%a" pp_stmt s in
        Format.fprintf fmt "%s" (String.sub s' 0 (String.length s' - 1))
      | Some s -> pp_stmt fmt s
    in
    let pp_opt_expr fmt = function None -> () | Some e -> pp_expr fmt e in
    Format.fprintf fmt "@[<v 2>for (%a; %a; %a) {@,%a@]@,}" pp_opt_stmt init
      pp_opt_expr cond pp_opt_expr step pp_block body
  | Return None -> Format.fprintf fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "@[return %a;@]" pp_expr e
  | Break -> Format.fprintf fmt "break;"
  | Continue -> Format.fprintf fmt "continue;"
  | Block b -> Format.fprintf fmt "@[<v 2>{@,%a@]@,}" pp_block b

and pp_block fmt stmts =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,") pp_stmt fmt stmts

let pp_func fmt { fname; params; body; _ } =
  Format.fprintf fmt "@[<v 2>function %s(%s) {@,%a@]@,}" fname
    (String.concat ", " params) pp_block body

let pp_program fmt prog =
  let pp_item fmt = function
    | Func f -> pp_func fmt f
    | Stmt s -> pp_stmt fmt s
  in
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,@,") pp_item)
    prog

let program_to_string prog = Format.asprintf "%a" pp_program prog
let expr_to_string e = Format.asprintf "%a" pp_expr e
