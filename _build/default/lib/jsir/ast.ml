(** Abstract syntax for MiniJS, the JavaScript subset the workloads are
    written in.

    MiniJS keeps the parts of JavaScript that matter for the paper's
    evaluation — dynamically-typed numbers (doubles speculated as int32),
    objects with dynamic properties, elongating arrays with holes, strings —
    and drops what the benchmark kernels do not need (closures, prototypes,
    exceptions, regexps, `with`, getters).  Functions are top-level only and
    may reference globals; `new F(...)` supports constructor-style objects. *)

type pos = { line : int; col : int }

let pp_pos fmt { line; col } = Format.fprintf fmt "%d:%d" line col

type unop =
  | Neg  (** -x *)
  | Plus  (** +x : ToNumber *)
  | Not  (** !x *)
  | Bitnot  (** ~x *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr  (** >> (arithmetic) *)
  | Ushr  (** >>> (logical) *)

type expr =
  | Number of float
  | Str of string
  | Bool of bool
  | Null
  | Undefined
  | Var of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Index of expr * expr  (** a[i] *)
  | Prop of expr * string  (** o.p — also strings' [.length] etc. *)
  | Call of string * expr list  (** call of a global function by name *)
  | Method_call of expr * string * expr list  (** o.m(args) or builtin method *)
  | New of string * expr list  (** new F(args) with F a global function *)
  | New_array of expr  (** new Array(n) *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | And of expr * expr  (** short-circuit && *)
  | Or of expr * expr  (** short-circuit || *)
  | Cond of expr * expr * expr  (** c ? a : b *)
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (** x += e and friends *)
  | Incr of lvalue * int * [ `Pre | `Post ]  (** ++/-- ; int is +1 or -1 *)

and lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Lprop of expr * string

type stmt =
  | Expr of expr
  | Var_decl of (string * expr option) list
  | If of expr * block * block
  | While of expr * block
  | Do_while of block * expr
  | For of stmt option * expr option * expr option * block
  | Return of expr option
  | Break
  | Continue
  | Block of block

and block = stmt list

type func = { fname : string; params : string list; body : block; fpos : pos }

type item = Func of func | Stmt of stmt

type program = item list

(** All functions of a program, in declaration order. *)
let functions prog =
  List.filter_map (function Func f -> Some f | Stmt _ -> None) prog

(** Top-level statements of a program, in order. *)
let toplevel prog =
  List.filter_map (function Stmt s -> Some s | Func _ -> None) prog

let unop_to_string = function Neg -> "-" | Plus -> "+" | Not -> "!" | Bitnot -> "~"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"
