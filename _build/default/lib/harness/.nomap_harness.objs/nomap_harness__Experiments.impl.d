lib/harness/experiments.ml: Float Hashtbl List Nomap_lir Nomap_machine Nomap_nomap Nomap_opt Nomap_runtime Nomap_util Nomap_vm Nomap_workloads Printf Runner String
