lib/harness/runner.ml: Hashtbl Nomap_bytecode Nomap_interp Nomap_jsir Nomap_machine Nomap_nomap Nomap_runtime Nomap_vm Nomap_workloads
