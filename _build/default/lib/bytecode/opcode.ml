(** Register-based bytecode, the common representation all tiers start from.

    Register file layout per function frame:
    - register 0 holds [this] ([undefined] except in constructor calls);
    - registers [1 .. nparams] hold the parameters;
    - registers up to [nlocals-1] hold the declared [var]s;
    - registers [nlocals .. nregs-1] are expression temporaries.

    Constants are descriptors (not runtime values) so that a compiled
    program can be instantiated against any heap. *)

type reg = int

type const =
  | Cnum of float
  | Cstr of string
  | Cbool of bool
  | Cnull
  | Cundef
  | Cfun of int  (** reference to a declared function *)

type op =
  | Load_const of reg * int  (** dst <- consts[i] *)
  | Move of reg * reg  (** dst <- src *)
  | Load_global of reg * int
  | Store_global of int * reg
  | Binop of Nomap_jsir.Ast.binop * reg * reg * reg  (** op dst a b *)
  | Unop of Nomap_jsir.Ast.unop * reg * reg
  | Get_prop of reg * reg * string  (** dst <- obj.name ; profiled site *)
  | Set_prop of reg * string * reg  (** obj.name <- v ; profiled site *)
  | Get_elem of reg * reg * reg  (** dst <- arr[idx] ; profiled site *)
  | Set_elem of reg * reg * reg  (** arr[idx] <- v ; profiled site *)
  | Get_length of reg * reg  (** dst <- x.length *)
  | New_object of reg
  | New_array of reg * reg  (** dst <- new Array(len) *)
  | Call of reg * int * reg list  (** dst <- funcs[fid](args) *)
  | Call_method of reg * reg * string * reg list  (** dynamic method dispatch *)
  | Call_intrinsic of reg * Nomap_runtime.Intrinsics.t * reg list
  | New_call of reg * int * reg list  (** dst <- new funcs[fid](args) *)
  | Jump of int
  | Jump_if_false of reg * int
  | Jump_if_true of reg * int
  | Return of reg option

type func = {
  fid : int;
  name : string;
  nparams : int;
  nlocals : int;
  nregs : int;
  code : op array;
  consts : const array;
  (* Bytecode indices that are loop-back-edge targets, used by the tiers to
     find loops and by profiling to count iterations. *)
  loop_headers : int list;
}

type program = {
  funcs : func array;
  globals : string array;
  main_fid : int;
}

let func_by_name prog name =
  let found = ref None in
  Array.iter (fun f -> if f.name = name then found := Some f) prog.funcs;
  !found

(** Registers read by an op. *)
let uses = function
  | Load_const _ | Load_global _ | New_object _ | Jump _ -> []
  | Move (_, s) -> [ s ]
  | Store_global (_, s) -> [ s ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Unop (_, _, a) -> [ a ]
  | Get_prop (_, o, _) -> [ o ]
  | Set_prop (o, _, v) -> [ o; v ]
  | Get_elem (_, a, i) -> [ a; i ]
  | Set_elem (a, i, v) -> [ a; i; v ]
  | Get_length (_, x) -> [ x ]
  | New_array (_, n) -> [ n ]
  | Call (_, _, args) -> args
  | Call_method (_, recv, _, args) -> recv :: args
  | Call_intrinsic (_, _, args) -> args
  | New_call (_, _, args) -> args
  | Jump_if_false (c, _) | Jump_if_true (c, _) -> [ c ]
  | Return None -> []
  | Return (Some r) -> [ r ]

(** Register written by an op, if any. *)
let def = function
  | Load_const (d, _)
  | Move (d, _)
  | Load_global (d, _)
  | Binop (_, d, _, _)
  | Unop (_, d, _)
  | Get_prop (d, _, _)
  | Get_elem (d, _, _)
  | Get_length (d, _)
  | New_object d
  | New_array (d, _)
  | Call (d, _, _)
  | Call_method (d, _, _, _)
  | Call_intrinsic (d, _, _)
  | New_call (d, _, _) -> Some d
  | Store_global _ | Set_prop _ | Set_elem _ | Jump _ | Jump_if_false _ | Jump_if_true _
  | Return _ -> None

(** Successor pcs of the op at [pc]. *)
let successors op pc =
  match op with
  | Jump t -> [ t ]
  | Jump_if_false (_, t) | Jump_if_true (_, t) -> [ pc + 1; t ]
  | Return _ -> []
  | _ -> [ pc + 1 ]
