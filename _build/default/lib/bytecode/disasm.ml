(** Bytecode disassembler (for tests, docs and debugging). *)

let const_to_string = function
  | Opcode.Cnum f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Opcode.Cstr s -> Printf.sprintf "%S" s
  | Opcode.Cbool b -> string_of_bool b
  | Opcode.Cnull -> "null"
  | Opcode.Cundef -> "undefined"
  | Opcode.Cfun fid -> Printf.sprintf "<fun %d>" fid

let regs rs = String.concat ", " (List.map (Printf.sprintf "r%d") rs)

let op_to_string (f : Opcode.func) = function
  | Opcode.Load_const (d, i) ->
    Printf.sprintf "r%d <- const %s" d (const_to_string f.consts.(i))
  | Opcode.Move (d, s) -> Printf.sprintf "r%d <- r%d" d s
  | Opcode.Load_global (d, g) -> Printf.sprintf "r%d <- global[%d]" d g
  | Opcode.Store_global (g, s) -> Printf.sprintf "global[%d] <- r%d" g s
  | Opcode.Binop (op, d, a, b) ->
    Printf.sprintf "r%d <- r%d %s r%d" d a (Nomap_jsir.Ast.binop_to_string op) b
  | Opcode.Unop (op, d, a) ->
    Printf.sprintf "r%d <- %s r%d" d (Nomap_jsir.Ast.unop_to_string op) a
  | Opcode.Get_prop (d, o, p) -> Printf.sprintf "r%d <- r%d.%s" d o p
  | Opcode.Set_prop (o, p, v) -> Printf.sprintf "r%d.%s <- r%d" o p v
  | Opcode.Get_elem (d, a, i) -> Printf.sprintf "r%d <- r%d[r%d]" d a i
  | Opcode.Set_elem (a, i, v) -> Printf.sprintf "r%d[r%d] <- r%d" a i v
  | Opcode.Get_length (d, x) -> Printf.sprintf "r%d <- r%d.length" d x
  | Opcode.New_object d -> Printf.sprintf "r%d <- {}" d
  | Opcode.New_array (d, n) -> Printf.sprintf "r%d <- new Array(r%d)" d n
  | Opcode.Call (d, fid, args) -> Printf.sprintf "r%d <- call f%d(%s)" d fid (regs args)
  | Opcode.Call_method (d, r, m, args) ->
    Printf.sprintf "r%d <- r%d.%s(%s)" d r m (regs args)
  | Opcode.Call_intrinsic (d, intr, args) ->
    Printf.sprintf "r%d <- %s(%s)" d (Nomap_runtime.Intrinsics.name intr) (regs args)
  | Opcode.New_call (d, fid, args) ->
    Printf.sprintf "r%d <- new f%d(%s)" d fid (regs args)
  | Opcode.Jump t -> Printf.sprintf "jump %d" t
  | Opcode.Jump_if_false (c, t) -> Printf.sprintf "if !r%d jump %d" c t
  | Opcode.Jump_if_true (c, t) -> Printf.sprintf "if r%d jump %d" c t
  | Opcode.Return None -> "return"
  | Opcode.Return (Some r) -> Printf.sprintf "return r%d" r

let func_to_string (f : Opcode.func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "function %s (fid=%d params=%d locals=%d regs=%d)\n" f.name f.fid
       f.nparams f.nlocals f.nregs);
  Array.iteri
    (fun pc op ->
      let marker = if List.mem pc f.loop_headers then "L" else " " in
      Buffer.add_string buf (Printf.sprintf "  %s%4d: %s\n" marker pc (op_to_string f op)))
    f.code;
  Buffer.contents buf

let program_to_string (p : Opcode.program) =
  String.concat "\n" (Array.to_list (Array.map func_to_string p.funcs))
