lib/bytecode/disasm.ml: Array Buffer Float List Nomap_jsir Nomap_runtime Opcode Printf String
