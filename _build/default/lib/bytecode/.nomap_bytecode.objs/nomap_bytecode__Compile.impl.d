lib/bytecode/compile.ml: Array Ast Hashtbl List Nomap_jsir Nomap_runtime Opcode Parser Printf
