lib/bytecode/liveness.ml: Array Int List Opcode Set
