lib/bytecode/opcode.ml: Array Nomap_jsir Nomap_runtime
