(** Backward liveness analysis over bytecode.

    The optimizing tiers need, for every potential deoptimization point, the
    set of bytecode registers the Baseline tier will read when execution
    resumes there — that set is exactly what a Stack Map Entry must describe
    (paper §II-B).  We compute classic live-in sets per bytecode index with
    an iterate-to-fixpoint dataflow. *)

module Iset = Set.Make (Int)

type t = Iset.t array  (** live-in registers at each pc *)

let compute (f : Opcode.func) : t =
  let n = Array.length f.code in
  let live_in = Array.make n Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = n - 1 downto 0 do
      let op = f.code.(pc) in
      let out =
        List.fold_left
          (fun acc succ -> if succ < n then Iset.union acc live_in.(succ) else acc)
          Iset.empty
          (Opcode.successors op pc)
      in
      let after_def = match Opcode.def op with Some d -> Iset.remove d out | None -> out in
      let in_ = List.fold_left (fun acc u -> Iset.add u acc) after_def (Opcode.uses op) in
      if not (Iset.equal in_ live_in.(pc)) then begin
        live_in.(pc) <- in_;
        changed := true
      end
    done
  done;
  live_in

(** Live registers at [pc], as a sorted list. *)
let live_at (t : t) pc = Iset.elements t.(pc)
