lib/tiers/specialize.ml: Array Hashtbl List Nomap_bytecode Nomap_jsir Nomap_lir Nomap_profile Nomap_runtime Nomap_util Option
