lib/interp/interp.ml: Array Heap Instance Intrinsics List Nomap_bytecode Nomap_jsir Nomap_profile Nomap_runtime Ops Printf Shape String Value
