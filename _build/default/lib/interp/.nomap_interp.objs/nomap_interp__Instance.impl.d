lib/interp/instance.ml: Array Heap Nomap_bytecode Nomap_runtime Value
