lib/interp/ast_interp.ml: Hashtbl Heap Instance Intrinsics List Nomap_jsir Nomap_runtime Ops Option Printf String Value
