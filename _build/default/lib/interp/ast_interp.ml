(** AST-walking interpreter over MiniJS — the stand-in for the slower
    scripting-language implementations in the paper's Figure 1.

    Where the bytecode engine models CPython-style bytecode dispatch, this
    engine models PHP/Ruby-style tree walking: variables live in hash
    tables, every node evaluation pays a dispatch cost, and (in the Ruby
    flavour) every operator is a dynamically-dispatched method send.  The
    semantics are identical — it reuses the same runtime (values, heap,
    operators, intrinsics) — so Figure 1 compares cost structure, not
    behaviour. *)

open Nomap_runtime
module Ast = Nomap_jsir.Ast

exception Runtime_error of string
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

type flavour = Php_like | Ruby_like

type env = {
  heap : Heap.t;
  flavour : flavour;
  charge : int -> unit;
  globals : (string, Value.t) Hashtbl.t;
  functions : (string, Ast.func) Hashtbl.t;
  mutable fuel : int;
}

let create ?(seed = 42) ?(fuel = max_int) ~flavour ~charge (prog : Ast.program) =
  let functions = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace functions f.Ast.fname f) (Ast.functions prog);
  { heap = Heap.create ~seed (); flavour; charge; globals = Hashtbl.create 32; functions; fuel }

(* Cost model: every node pays tree-dispatch; Ruby additionally models
   operators as method sends.  Values informally calibrated so the Figure-1
   ordering (PHP ~3x, Ruby ~4.5x the bytecode interpreter) emerges. *)
let node_cost env base = env.charge (match env.flavour with Php_like -> base | Ruby_like -> base * 3 / 2)

let dispatch_cost env =
  node_cost env (match env.flavour with Php_like -> 12 | Ruby_like -> 18)

let send_cost env =
  (* Operator as method send (Ruby) vs switch on op (PHP). *)
  node_cost env (match env.flavour with Php_like -> 30 | Ruby_like -> 60)

let var_cost env = node_cost env 16  (* hash lookup *)

let burn env =
  env.fuel <- env.fuel - 1;
  if env.fuel < 0 then raise Instance.Out_of_fuel

type frame = { locals : (string, Value.t) Hashtbl.t; this : Value.t }

let lookup_var env frame x =
  var_cost env;
  match Hashtbl.find_opt frame.locals x with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt env.globals x with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt env.functions x with
      | Some _ -> Value.Fun 0 (* resolved by name at call sites *)
      | None -> Value.Undef))

let assign_var env frame x v =
  var_cost env;
  if Hashtbl.mem frame.locals x then Hashtbl.replace frame.locals x v
  else Hashtbl.replace env.globals x v

(* Function-scoped `var` declarations become locals of the frame. *)
let rec declare_vars frame block =
  let rec stmt (s : Ast.stmt) =
    match s with
    | Ast.Var_decl ds ->
      List.iter (fun (x, _) -> if not (Hashtbl.mem frame.locals x) then Hashtbl.replace frame.locals x Value.Undef) ds
    | Ast.If (_, a, b) ->
      declare_vars frame a;
      declare_vars frame b
    | Ast.While (_, b) | Ast.Do_while (b, _) -> declare_vars frame b
    | Ast.For (init, _, _, b) ->
      (match init with Some s -> stmt s | None -> ());
      declare_vars frame b
    | Ast.Block b -> declare_vars frame b
    | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue -> ()
  in
  List.iter stmt block

let rec eval env frame (e : Ast.expr) : Value.t =
  burn env;
  dispatch_cost env;
  match e with
  | Ast.Number f -> Value.number f
  | Ast.Str s -> Heap.str env.heap s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Undefined -> Value.Undef
  | Ast.This -> frame.this
  | Ast.Var x -> lookup_var env frame x
  | Ast.Array_lit es ->
    let a = Heap.alloc_array env.heap 0 in
    List.iteri (fun i e -> Heap.set_elem env.heap a i (eval env frame e)) es;
    Value.Arr a
  | Ast.Object_lit fields ->
    let o = Heap.alloc_object env.heap in
    List.iter (fun (name, e) -> Heap.set_prop env.heap o name (eval env frame e)) fields;
    Value.Obj o
  | Ast.Index (a, i) -> (
    let va = eval env frame a and vi = eval env frame i in
    send_cost env;
    match va with
    | Value.Arr arr -> Heap.get_elem env.heap arr (Value.to_int32 vi)
    | Value.Str s ->
      let idx = Value.to_int32 vi in
      if idx >= 0 && idx < String.length s.Value.sdata then
        Heap.str env.heap (String.make 1 s.Value.sdata.[idx])
      else Value.Undef
    | v -> raise (Runtime_error ("cannot index " ^ Value.type_name v)))
  | Ast.Prop (Ast.Var base, prop) when Intrinsics.static_constant base prop <> None ->
    Option.get (Intrinsics.static_constant base prop)
  | Ast.Prop (o, "length") -> (
    let vo = eval env frame o in
    send_cost env;
    match Ops.js_length vo with
    | Some v -> v
    | None -> (
      match vo with
      | Value.Obj obj -> Heap.get_prop env.heap obj "length"
      | v -> raise (Runtime_error ("no length on " ^ Value.type_name v))))
  | Ast.Prop (o, p) -> (
    let vo = eval env frame o in
    send_cost env;
    match vo with
    | Value.Obj obj -> Heap.get_prop env.heap obj p
    | _ -> Value.Undef)
  | Ast.Call (name, args) ->
    let vargs = List.map (eval env frame) args in
    call_named env name Value.Undef vargs
  | Ast.Method_call (Ast.Var base, meth, args)
    when Intrinsics.static_lookup base meth <> None ->
    let intr = Option.get (Intrinsics.static_lookup base meth) in
    let vargs = List.map (eval env frame) args in
    send_cost env;
    env.charge (Intrinsics.cost intr);
    (try Intrinsics.eval env.heap intr Value.Undef vargs
     with Intrinsics.Type_error m -> raise (Runtime_error m))
  | Ast.Method_call (recv, meth, args) -> (
    let vrecv = eval env frame recv in
    let vargs = List.map (eval env frame) args in
    send_cost env;
    match Intrinsics.method_lookup vrecv meth with
    | Some intr ->
      env.charge (Intrinsics.cost intr + Intrinsics.dynamic_cost intr vrecv vargs);
      (try Intrinsics.eval env.heap intr vrecv vargs
       with Intrinsics.Type_error m -> raise (Runtime_error m))
    | None -> (
      match vrecv with
      | Value.Obj obj -> (
        match Heap.get_prop env.heap obj meth with
        | Value.Fun _ ->
          (* Function values are stored by name at definition sites in this
             engine; re-dispatch through the property's original name. *)
          raise (Runtime_error "ast interpreter does not support function-valued properties")
        | Value.Str s -> call_named env s.Value.sdata vrecv vargs
        | _ -> raise (Runtime_error ("no method " ^ meth)))
      | v -> raise (Runtime_error (Printf.sprintf "no method %s on %s" meth (Value.type_name v)))))
  | Ast.New (name, args) -> (
    let vargs = List.map (eval env frame) args in
    let o = Value.Obj (Heap.alloc_object env.heap) in
    match call_named env name o vargs with
    | Value.Undef -> o
    | v -> v)
  | Ast.New_array n ->
    let len = Value.to_int32 (eval env frame n) in
    if len < 0 then raise (Runtime_error "negative array length");
    Value.Arr (Heap.alloc_array env.heap len)
  | Ast.Unop (op, e) ->
    let v = eval env frame e in
    send_cost env;
    Ops.apply_unop op v
  | Ast.Binop (op, a, b) ->
    let va = eval env frame a in
    let vb = eval env frame b in
    send_cost env;
    Ops.apply_binop env.heap op va vb
  | Ast.And (a, b) ->
    let va = eval env frame a in
    if Value.truthy va then eval env frame b else va
  | Ast.Or (a, b) ->
    let va = eval env frame a in
    if Value.truthy va then va else eval env frame b
  | Ast.Cond (c, a, b) ->
    if Value.truthy (eval env frame c) then eval env frame a else eval env frame b
  | Ast.Assign (lv, e) ->
    let v = eval env frame e in
    assign env frame lv v;
    v
  | Ast.Op_assign (op, lv, e) ->
    let cur = read_lvalue env frame lv in
    let v = eval env frame e in
    send_cost env;
    let nv = Ops.apply_binop env.heap op cur v in
    assign env frame lv nv;
    nv
  | Ast.Incr (lv, delta, kind) ->
    let cur = read_lvalue env frame lv in
    send_cost env;
    let nv = Ops.js_add env.heap cur (Value.Int delta) in
    assign env frame lv nv;
    (match kind with `Pre -> nv | `Post -> cur)

and read_lvalue env frame = function
  | Ast.Lvar x -> lookup_var env frame x
  | Ast.Lindex (a, i) -> eval env frame (Ast.Index (a, i))
  | Ast.Lprop (o, p) -> eval env frame (Ast.Prop (o, p))

and assign env frame lv v =
  match lv with
  | Ast.Lvar x -> assign_var env frame x v
  | Ast.Lindex (a, i) -> (
    let va = eval env frame a and vi = eval env frame i in
    send_cost env;
    match va with
    | Value.Arr arr -> Heap.set_elem env.heap arr (Value.to_int32 vi) v
    | v' -> raise (Runtime_error ("cannot index-assign " ^ Value.type_name v')))
  | Ast.Lprop (o, p) -> (
    let vo = eval env frame o in
    send_cost env;
    match vo with
    | Value.Obj obj -> Heap.set_prop env.heap obj p v
    | v' -> raise (Runtime_error ("cannot set property on " ^ Value.type_name v')))

and call_named env name this args =
  match Hashtbl.find_opt env.functions name with
  | None -> (
    match Intrinsics.global_lookup name with
    | Some intr ->
      env.charge (Intrinsics.cost intr);
      (try Intrinsics.eval env.heap intr Value.Undef args
       with Intrinsics.Type_error m -> raise (Runtime_error m))
    | None -> raise (Runtime_error ("undefined function " ^ name)))
  | Some f ->
    (* Frame setup: Ruby pays more for argument binding / method lookup. *)
    env.charge (match env.flavour with Php_like -> 40 | Ruby_like -> 80);
    let frame = { locals = Hashtbl.create 8; this } in
    List.iteri
      (fun i p ->
        Hashtbl.replace frame.locals p
          (match List.nth_opt args i with Some v -> v | None -> Value.Undef))
      f.Ast.params;
    declare_vars frame f.Ast.body;
    (try
       exec_block env frame f.Ast.body;
       Value.Undef
     with Return_exc v -> v)

and exec_stmt env frame (s : Ast.stmt) =
  burn env;
  dispatch_cost env;
  match s with
  | Ast.Expr e -> ignore (eval env frame e)
  | Ast.Var_decl ds ->
    List.iter
      (fun (x, init) ->
        match init with
        | None -> ()
        | Some e ->
          let v = eval env frame e in
          if Hashtbl.mem frame.locals x then Hashtbl.replace frame.locals x v
          else Hashtbl.replace env.globals x v)
      ds
  | Ast.If (c, a, b) ->
    if Value.truthy (eval env frame c) then exec_block env frame a
    else exec_block env frame b
  | Ast.While (c, body) -> (
    try
      while Value.truthy (eval env frame c) do
        try exec_block env frame body with Continue_exc -> ()
      done
    with Break_exc -> ())
  | Ast.Do_while (body, c) -> (
    try
      let continue_loop = ref true in
      while !continue_loop do
        (try exec_block env frame body with Continue_exc -> ());
        continue_loop := Value.truthy (eval env frame c)
      done
    with Break_exc -> ())
  | Ast.For (init, cond, step, body) -> (
    (match init with Some s -> exec_stmt env frame s | None -> ());
    let check () =
      match cond with Some c -> Value.truthy (eval env frame c) | None -> true
    in
    try
      while check () do
        (try exec_block env frame body with Continue_exc -> ());
        match step with Some e -> ignore (eval env frame e) | None -> ()
      done
    with Break_exc -> ())
  | Ast.Return None -> raise (Return_exc Value.Undef)
  | Ast.Return (Some e) -> raise (Return_exc (eval env frame e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Block b -> exec_block env frame b

and exec_block env frame block = List.iter (exec_stmt env frame) block

(** Run a program's top level (globals scope). *)
let run_program env (prog : Ast.program) =
  let frame = { locals = Hashtbl.create 1; this = Value.Undef } in
  try exec_block env frame (Ast.toplevel prog) with Return_exc _ -> ()

(** Call a named function from the top. *)
let call env name args = call_named env name Value.Undef args
