(** Bounds-check combining (paper §IV-C1, Figure 6).

    Within a whole-loop transaction, a bounds check on a monotonic affine
    induction variable is removed from the loop and replaced by boundary
    checks: the first accessed index is checked in the preheader and the
    last accessed index at each loop exit (paper sinks increasing /
    hoists decreasing; checking both endpoints covers the contiguous
    [0, length) validity region for any constant step).

    This is sound only because the checks are abort-exits inside a
    transaction: a late failure rolls everything back and Baseline re-runs
    the region with full per-access checking — the paper's point that
    "when the failure is detected does not matter, only that the
    transaction is eventually rolled back".

    Requirements: the array is loop-invariant, the loop has no clobbering
    call (elongating stores are runtime calls, so the length is stable),
    and the index strips to an induction phi [i = phi(init, i + step)]
    with a constant nonzero step. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg

(* Strip value-refining checks to the underlying value. *)
let rec strip f v =
  match L.kind_of f v with
  | L.Check_int (a, _) | L.Check_number (a, _) | L.Check_overflow (a, _)
  | L.Check_cond (a, _, _) | L.Check_array (a, _) | L.Check_string (a, _)
  | L.Check_shape (a, _, _) -> strip f a
  | L.Check_bounds (_, i, _) | L.Check_not_hole (_, i, _) -> strip f i
  | _ -> v

(* Is [p] an induction phi of [loop]?  Returns (init value, step). *)
let induction f loop p =
  match L.kind_of f p with
  | L.Phi ins when (L.instr f p).L.block = loop.Cfg.header -> (
    let preds = (L.block f loop.Cfg.header).L.preds in
    let outside = List.filter (fun b -> not (List.mem b loop.Cfg.body)) preds in
    let inside = List.filter (fun b -> List.mem b loop.Cfg.body) preds in
    match (outside, inside) with
    | [ pre ], [ latch ] -> (
      match (List.assoc_opt pre ins, List.assoc_opt latch ins) with
      | Some init, Some next -> (
        match L.kind_of f (strip f next) with
        | L.Iadd (a, b) -> (
          let sa = strip f a and sb = strip f b in
          let const v =
            match L.kind_of f v with
            | L.Const (Nomap_runtime.Value.Int s) -> Some s
            | _ -> None
          in
          if sa = p then
            match const sb with Some s when s <> 0 -> Some (init, s) | _ -> None
          else if sb = p then
            match const sa with Some s when s <> 0 -> Some (init, s) | _ -> None
          else None)
        | L.Isub (a, b) -> (
          let sa = strip f a in
          match L.kind_of f (strip f b) with
          | L.Const (Nomap_runtime.Value.Int s) when sa = p && s <> 0 -> Some (init, -s)
          | _ -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

let abort_exit f ~resume_pc : L.exit =
  { L.ekind = L.Abort; smp = L.fresh_smp f ~resume_pc ~live:[] }

(** Combine bounds checks in every loop wholly contained in a whole-loop
    transaction region.  Returns the number of per-iteration checks
    removed. *)
let run (c : Nomap_tiers.Specialize.compiled) (regions : Txplace.region list) =
  let f = c.Nomap_tiers.Specialize.lir in
  let combined = ref 0 in
  let whole_regions = List.filter (fun r -> r.Txplace.level = Txplace.Whole) regions in
  if whole_regions = [] then 0
  else begin
    let doms = Cfg.compute_doms f in
    let loops = Cfg.natural_loops f doms in
    let in_region loop =
      List.exists
        (fun r ->
          List.for_all (fun b -> List.mem b r.Txplace.loop.Cfg.body) loop.Cfg.body)
        whole_regions
    in
    let candidates =
      List.filter
        (fun loop ->
          in_region loop
          &&
          let _, clobber, _ = Nomap_opt.Passes.loop_clobbers f loop in
          not clobber)
        loops
    in
    List.iter
      (fun loop ->
        let resume_pc = Txplace.header_pc c loop.Cfg.header in
        (* Gather removable checks grouped by (array, induction phi). *)
        let groups : (L.v * L.v, int * L.v list ref) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun bid ->
            List.iter
              (fun v ->
                match L.kind_of f v with
                | L.Check_bounds (arr, idx, { L.ekind = L.Abort; _ }) -> (
                  (* The array operand is usually an in-loop refining check
                     of an invariant base; the boundary checks use the
                     stripped base, which must be defined outside. *)
                  let base = strip f arr in
                  let arr_invariant =
                    let b = (L.instr f base).L.block in
                    not (b >= 0 && List.mem b loop.Cfg.body)
                  in
                  let p = strip f idx in
                  match (arr_invariant, induction f loop p) with
                  | true, Some (_, step) -> (
                    match Hashtbl.find_opt groups (base, p) with
                    | Some (_, lst) -> lst := v :: !lst
                    | None -> Hashtbl.add groups (base, p) (step, ref [ v ]))
                  | _ -> ())
                | _ -> ())
              (L.block f bid).L.instrs)
          loop.Cfg.body;
        if Hashtbl.length groups > 0 then begin
          match Cfg.preheader f loop with
          | None -> ()
          | Some ph ->
            (* Split each exit edge once; all groups share the blocks. *)
            let exit_blocks =
              List.map
                (fun (src, dst) -> (src, Cfg.split_edge f ~from:src ~to_:dst))
                loop.Cfg.exits
            in
            Hashtbl.iter
              (fun (arr, p) (step, checks) ->
                (* Remove the per-iteration checks. *)
                List.iter
                  (fun v ->
                    let idx =
                      match L.kind_of f v with
                      | L.Check_bounds (_, i, _) -> i
                      | _ -> assert false
                    in
                    Nomap_opt.Passes.delete_and_replace f v ~replacement:idx;
                    incr combined)
                  !checks;
                (* Boundary check on the first index, in the preheader
                   (paper: hoisted for decreasing; we always check init —
                   it is the first accessed index for any step). *)
                let init =
                  match induction f loop p with
                  | Some (init, _) -> init
                  | None -> assert false
                in
                let pre_check =
                  L.new_instr f (L.Check_bounds (arr, init, abort_exit f ~resume_pc))
                in
                Nomap_opt.Passes.append_to_block f pre_check.L.id ph;
                (* Boundary check on the last accessed index at each exit:
                   exiting from the header means the body did not run this
                   iteration, so the last access used [p - step]; a body
                   (break) exit accessed [p] itself. *)
                List.iter
                  (fun (src, eb) ->
                    let last =
                      if src = loop.Cfg.header then begin
                        let cstep =
                          L.new_instr f (L.Const (Nomap_runtime.Value.Int step))
                        in
                        Nomap_opt.Passes.append_to_block f cstep.L.id eb;
                        let sub = L.new_instr f (L.Isub (p, cstep.L.id)) in
                        Nomap_opt.Passes.append_to_block f sub.L.id eb;
                        sub.L.id
                      end
                      else p
                    in
                    let ck =
                      L.new_instr f (L.Check_bounds (arr, last, abort_exit f ~resume_pc))
                    in
                    Nomap_opt.Passes.append_to_block f ck.L.id eb)
                  exit_blocks;
                Cfg.compute_preds f)
              groups
        end)
      candidates;
    !combined
  end
