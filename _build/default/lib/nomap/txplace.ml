(** Transaction placement (paper §V-C).

    By default a transaction wraps a whole loop nest containing SMPs.  If
    the estimated write footprint (store count per entry × profiled trip
    counts) exceeds the HTM's budget, placement descends into inner loops;
    an innermost loop that still does not fit gets a per-iteration
    transaction (the limit case of the paper's tiling).  A loop that makes
    calls and does not fit gets no transaction at all (the paper assumes
    the callee caused the overflow and removes the transaction).

    Within a placed region, every deopt-exit check is converted to an
    abort-exit check (SMP → abort, paper §IV-B).  The Tx_begin carries the
    SMP that restarts the region in Baseline after an abort. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg
module Specialize = Nomap_tiers.Specialize
module Feedback = Nomap_profile.Feedback

type level =
  | Whole  (** one transaction around the entire loop *)
  | Chunked of int  (** commit + restart every N iterations (the tile) *)

type region = {
  loop : Cfg.loop;
  level : level;
  begin_blocks : int list;
  end_blocks : int list;
}

(** Per-function placement preference, adapted by the VM after capacity
    aborts: [Auto] estimates; [Max_chunk n] caps the tile size after a
    runtime capacity abort; [Disabled] when even small tiles overflowed. *)
type placement = Auto | Max_chunk of int | Disabled

let with_exit kind (e : L.exit) =
  match kind with
  | L.Check_int (a, _) -> L.Check_int (a, e)
  | L.Check_number (a, _) -> L.Check_number (a, e)
  | L.Check_string (a, _) -> L.Check_string (a, e)
  | L.Check_array (a, _) -> L.Check_array (a, e)
  | L.Check_shape (a, s, _) -> L.Check_shape (a, s, e)
  | L.Check_fun_eq (a, fid, _) -> L.Check_fun_eq (a, fid, e)
  | L.Check_bounds (a, i, _) -> L.Check_bounds (a, i, e)
  | L.Check_str_bounds (a, i, _) -> L.Check_str_bounds (a, i, e)
  | L.Check_not_hole (a, i, _) -> L.Check_not_hole (a, i, e)
  | L.Check_overflow (a, _) -> L.Check_overflow (a, e)
  | L.Check_cond (a, d, _) -> L.Check_cond (a, d, e)
  | k -> k

(* ------------------------------------------------------------------ *)
(* Footprint estimation *)

let header_pc (c : Specialize.compiled) header_block =
  match Hashtbl.find_opt c.Specialize.block_pc header_block with
  | Some pc -> pc
  | None -> 0

let trip_count c profile loop =
  let pc = header_pc c loop.Cfg.header in
  Float.max 1.0 (Feedback.avg_trip_count profile pc)

(* Direct (non-nested) store / load / call counts of a loop. *)
let direct_counts f loops loop =
  let children = List.filter (fun l -> l.Cfg.parent <> None && List.mem l.Cfg.header loop.Cfg.body && l.Cfg.header <> loop.Cfg.header) loops in
  let in_child b = List.exists (fun ch -> List.mem b ch.Cfg.body) children in
  let stores = ref 0 and loads = ref 0 and calls = ref 0 in
  List.iter
    (fun bid ->
      if not (in_child bid) then
        List.iter
          (fun v ->
            match L.kind_of f v with
            | L.Call_func _ | L.Call_method _ | L.Ctor_call _
            | L.Call_runtime (L.Rt_method _, _, _) -> incr calls
            | k -> (
              match L.memory_effect k with
              | L.Eff_store _ -> incr stores
              | L.Eff_clobber -> incr stores  (* e.g. push: counts as a write *)
              | L.Eff_load _ -> incr loads
              | L.Eff_none | L.Eff_alloc -> ()))
          (L.block f bid).L.instrs)
    loop.Cfg.body;
  (!stores, !loads, !calls)

(* Estimated (write bytes, read bytes, has calls) per entry of [loop]. *)
let rec estimate f c profile loops loop =
  let trip = trip_count c profile loop in
  let stores, loads, calls = direct_counts f loops loop in
  let children =
    List.filter
      (fun l ->
        (match l.Cfg.parent with Some _ -> true | None -> false)
        && List.mem l.Cfg.header loop.Cfg.body
        && l.Cfg.header <> loop.Cfg.header
        && (* direct children only: their parent loop's header is ours *)
        true)
      loops
  in
  (* Approximate: treat every nested loop as a direct child (nesting deeper
     than two levels double-counts trips, which only makes the estimate more
     conservative). *)
  let child_w, child_r, child_calls =
    List.fold_left
      (fun (w, r, cc) ch ->
        let cw, cr, c' = estimate f c profile loops ch in
        (w +. cw, r +. cr, cc || c'))
      (0.0, 0.0, false) children
  in
  ( trip *. ((float_of_int stores *. 8.0) +. child_w),
    trip *. ((float_of_int loads *. 8.0) +. child_r),
    calls > 0 || child_calls )

(* ------------------------------------------------------------------ *)
(* Region wiring *)

let loop_has_deopt_check f loop =
  List.exists
    (fun bid ->
      List.exists
        (fun v ->
          match L.exit_of (L.kind_of f v) with
          | Some { L.ekind = L.Deopt; _ } -> true
          | _ -> false)
        (L.block f bid).L.instrs)
    loop.Cfg.body

(* Live map for a Tx_begin placed on the edge [pred -> header]: resolve the
   header's entry state along that edge (phi inputs from [pred]). *)
let edge_live f (c : Specialize.compiled) header pred =
  match Hashtbl.find_opt c.Specialize.entry_states header with
  | None -> []
  | Some state ->
    List.map
      (fun (reg, v) ->
        let v' =
          match L.kind_of f v with
          | L.Phi ins when (L.instr f v).L.block = header -> (
            match List.assoc_opt pred ins with Some x -> x | None -> v)
          | _ -> v
        in
        (reg, v'))
      state

(* Entry state as seen from inside the loop (phis themselves). *)
let header_live (c : Specialize.compiled) header =
  match Hashtbl.find_opt c.Specialize.entry_states header with
  | None -> []
  | Some state -> state

let convert_checks f blocks =
  let converted = ref 0 in
  List.iter
    (fun bid ->
      List.iter
        (fun v ->
          let i = L.instr f v in
          match L.exit_of i.L.kind with
          | Some ({ L.ekind = L.Deopt; _ } as e) ->
            i.L.kind <- with_exit i.L.kind { e with L.ekind = L.Abort };
            incr converted
          | _ -> ())
        (L.block f bid).L.instrs)
    blocks;
  !converted

(** Wrap the whole [loop] in one transaction. *)
let wrap_whole f c ~ghost loop =
  let ph = Cfg.ensure_preheader f loop in
  let pc = header_pc c loop.Cfg.header in
  let live = edge_live f c loop.Cfg.header ph in
  let smp = L.fresh_smp f ~resume_pc:pc ~live in
  let tb = L.new_instr f (L.Tx_begin smp) in
  Nomap_opt.Passes.append_to_block f tb.L.id ph;
  let end_blocks =
    List.map
      (fun (src, dst) ->
        let eb = Cfg.split_edge f ~from:src ~to_:dst in
        let te = L.new_instr f L.Tx_end in
        Nomap_opt.Passes.append_to_block f te.L.id eb;
        eb)
      loop.Cfg.exits
  in
  if not ghost then ignore (convert_checks f loop.Cfg.body);
  { loop; level = Whole; begin_blocks = [ ph ]; end_blocks }

(** Chunked (tiled) transaction: like [wrap_whole], plus a commit + restart
    on the latch every [chunk] iterations (paper §V-C's tiling, expressed as
    strip-mined commits).  An iteration counter phi is threaded through the
    header; each latch tests [(c+1) & (chunk-1)] and, on zero, commits and
    immediately begins a fresh transaction whose SMP resumes at the loop
    header with the values flowing along that back edge. *)
let wrap_chunked f c ~ghost loop ~chunk =
  let region = wrap_whole f c ~ghost loop in
  let ph = List.hd region.begin_blocks in
  let pc = header_pc c loop.Cfg.header in
  (* Constants live in the preheader (it dominates the loop). *)
  let zero = L.new_instr f (L.Const (Nomap_runtime.Value.Int 0)) in
  let mask = L.new_instr f (L.Const (Nomap_runtime.Value.Int (chunk - 1))) in
  Nomap_opt.Passes.append_to_block f zero.L.id ph;
  Nomap_opt.Passes.append_to_block f mask.L.id ph;
  let counter = L.new_instr f (L.Phi []) in
  Nomap_opt.Passes.prepend_to_block f counter.L.id loop.Cfg.header;
  let latches = List.filter (fun l -> l <> loop.Cfg.header) loop.Cfg.latches in
  let per_latch =
    List.map
      (fun latch ->
        (* Split the back edge; K tests the counter. *)
        let k = Cfg.split_edge f ~from:latch ~to_:loop.Cfg.header in
        (* Values flowing to the header along this edge, for the fresh
           transaction's restart SMP. *)
        let live = edge_live f c loop.Cfg.header k in
        let one = L.new_instr f (L.Const (Nomap_runtime.Value.Int 1)) in
        Nomap_opt.Passes.append_to_block f one.L.id ph;
        let c2 = L.new_instr f (L.Iadd_wrap (counter.L.id, one.L.id)) in
        Nomap_opt.Passes.append_to_block f c2.L.id k;
        let band = L.new_instr f (L.Band (c2.L.id, mask.L.id)) in
        Nomap_opt.Passes.append_to_block f band.L.id k;
        let is_zero = L.new_instr f (L.Cmp (L.Ceq, band.L.id, zero.L.id)) in
        Nomap_opt.Passes.append_to_block f is_zero.L.id k;
        (* Commit block: TxEnd; TxBegin; jump to header. *)
        let kc = L.new_block f in
        let te = L.new_instr f L.Tx_end in
        Nomap_opt.Passes.append_to_block f te.L.id kc.L.bid;
        let smp = L.fresh_smp f ~resume_pc:pc ~live in
        let tb = L.new_instr f (L.Tx_begin smp) in
        Nomap_opt.Passes.append_to_block f tb.L.id kc.L.bid;
        kc.L.term <- L.Jump loop.Cfg.header;
        (L.block f k).L.term <- L.Br (is_zero.L.id, kc.L.bid, loop.Cfg.header);
        (* Header phis gain an input from kc mirroring the one from k. *)
        List.iter
          (fun v ->
            let i = L.instr f v in
            match i.L.kind with
            | L.Phi ins when i.L.block = loop.Cfg.header && v <> counter.L.id -> (
              match List.assoc_opt k ins with
              | Some x -> i.L.kind <- L.Phi ((kc.L.bid, x) :: ins)
              | None -> ())
            | _ -> ())
          (L.block f loop.Cfg.header).L.instrs;
        (k, kc.L.bid, c2.L.id))
      latches
  in
  (* Counter phi inputs: 0 from outside and from each commit block (the
     count restarts per chunk), c2 from each plain back edge. *)
  Cfg.compute_preds f;
  let inputs =
    List.map
      (fun p ->
        match List.find_opt (fun (k, _, _) -> p = k) per_latch with
        | Some (_, _, c2) -> (p, c2)
        | None -> (p, zero.L.id))
      (L.block f loop.Cfg.header).L.preds
  in
  (L.instr f counter.L.id).L.kind <- L.Phi inputs;
  {
    region with
    level = Chunked chunk;
    end_blocks = region.end_blocks @ List.map (fun (_, kc, _) -> kc) per_latch;
  }

(** Place transactions in [c] per [config]; returns the regions created.
    With [ghost:true] (the Base configuration) the markers are placed
    identically but no SMP is converted — the machine uses them purely for
    instruction-category accounting. *)
let run (config : Config.t) ~(placement : placement) ~(profile : Feedback.func_profile)
    (c : Specialize.compiled) : region list =
  let f = c.Specialize.lir in
  let ghost = not (Config.convert_smps config) in
  if placement = Disabled then []
  else begin
    let doms = Cfg.compute_doms f in
    let loops = Cfg.natural_loops f doms in
    let write_budget = float_of_int (Config.write_budget config) in
    let read_budget =
      match Config.read_budget config with
      | Some b -> float_of_int b
      | None -> Float.infinity
    in
    let regions = ref [] in
    (* Returns true if a region was placed covering [loop]. *)
    let rec place loop =
      if not (loop_has_deopt_check f loop) then false
      else begin
        let w, r, has_calls = estimate f c profile loops loop in
        let fits = w <= write_budget && r <= read_budget in
        let children =
          List.filter
            (fun l ->
              l.Cfg.header <> loop.Cfg.header
              && List.mem l.Cfg.header loop.Cfg.body
              && l.Cfg.depth = loop.Cfg.depth + 1)
            loops
        in
        (* A loop whose own (non-nested) code makes calls gains little from
           a transaction — the callees execute unaware of it (TMUnopt) and
           their own transactions would be flattened away.  Prefer wrapping
           the child loops so the callees' transactions stay effective. *)
        let _, _, direct_calls = direct_counts f loops loop in
        if fits && placement = Auto && (direct_calls = 0 || children = []) then begin
          regions := wrap_whole f c ~ghost loop :: !regions;
          true
        end
        else begin
          (* Descend into direct children. *)
          let placed_child = List.exists Fun.id (List.map place children) in
          if placed_child then true
          else if has_calls then false  (* paper: overflow blamed on the callee *)
          else begin
            (* Per-iteration needs a real body: a header with an in-loop
               successor distinct from itself, and no self-latch. *)
            let header_succs = L.successors (L.block f loop.Cfg.header).L.term in
            let has_body =
              List.exists
                (fun s -> List.mem s loop.Cfg.body && s <> loop.Cfg.header)
                header_succs
              && List.for_all (fun l -> l <> loop.Cfg.header) loop.Cfg.latches
            in
            (* Tile: chunk size sized so a tile's writes fit the budget. *)
            let trip = trip_count c profile loop in
            let bytes_per_iter = Float.max 1.0 (w /. trip) in
            let rec pow2_below x acc = if acc * 2 > x then acc else pow2_below x (acc * 2) in
            let chunk = pow2_below (int_of_float (write_budget /. bytes_per_iter)) 1 in
            let chunk =
              match placement with Max_chunk m -> min chunk m | _ -> chunk
            in
            if has_body && chunk >= 2 then begin
              regions := wrap_chunked f c ~ghost loop ~chunk :: !regions;
              true
            end
            else false
          end
        end
      end
    in
    List.iter (fun l -> if l.Cfg.depth = 1 then ignore (place l)) loops;
    f.L.tx_aware <- not ghost;
    !regions
  end
