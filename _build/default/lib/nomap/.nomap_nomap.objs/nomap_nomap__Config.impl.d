lib/nomap/config.ml: Nomap_htm
