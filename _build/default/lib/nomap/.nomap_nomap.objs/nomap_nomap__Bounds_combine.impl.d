lib/nomap/bounds_combine.ml: Hashtbl List Nomap_lir Nomap_opt Nomap_runtime Nomap_tiers Txplace
