lib/nomap/transform.ml: Bounds_combine Config List Nomap_lir Nomap_opt Nomap_profile Nomap_tiers Txplace
