lib/nomap/txplace.ml: Config Float Fun Hashtbl List Nomap_lir Nomap_opt Nomap_profile Nomap_runtime Nomap_tiers
