(** The six evaluated architectures (paper Table II). *)

type arch =
  | Base  (** unmodified JavaScriptCore; no transactions *)
  | NoMap_S  (** transactions inserted, SMPs become aborts, optimizations run across them *)
  | NoMap_B  (** NoMap_S + hoisting/sinking bounds checks *)
  | NoMap_full  (** NoMap_B + SOF overflow-check removal — the proposed design *)
  | NoMap_BC  (** unrealistic best case: all checks within transactions removed *)
  | NoMap_RTM  (** NoMap_B running on Intel RTM (no SOF on x86) *)

let all = [ Base; NoMap_S; NoMap_B; NoMap_full; NoMap_BC; NoMap_RTM ]

let name = function
  | Base -> "Base"
  | NoMap_S -> "NoMap_S"
  | NoMap_B -> "NoMap_B"
  | NoMap_full -> "NoMap"
  | NoMap_BC -> "NoMap_BC"
  | NoMap_RTM -> "NoMap_RTM"

type t = { arch : arch }

let create arch = { arch }

let htm_mode t : Nomap_htm.Htm.mode =
  match t.arch with
  | Base -> Nomap_htm.Htm.Ghost
  | NoMap_RTM -> Nomap_htm.Htm.Rtm
  | NoMap_S | NoMap_B | NoMap_full | NoMap_BC -> Nomap_htm.Htm.Rot

(** Convert in-transaction SMPs to aborts (everything but Base). *)
let convert_smps t = t.arch <> Base

let combine_bounds t =
  match t.arch with
  | NoMap_B | NoMap_full | NoMap_BC | NoMap_RTM -> true
  | Base | NoMap_S -> false

(** Remove in-transaction overflow checks, relying on the Sticky Overflow
    Flag.  x86 RTM has no SOF (paper §VI-B), so NoMap_RTM keeps them. *)
let remove_overflow t =
  match t.arch with NoMap_full | NoMap_BC -> true | _ -> false

let remove_all_checks t = t.arch = NoMap_BC

(** The machine models SOF hardware whenever overflow checks were removed:
    integer overflow inside a transaction sets the sticky flag and the
    outermost Tx_end aborts on it (paper §V-B). *)
let sof_enabled = remove_overflow

(** The workloads are scaled down ~16-30x from the paper's; the modeled HTM
    capacities are scaled by the same factor so the footprint/capacity
    ratios (and hence which transactions fit which HTM) stay in the paper's
    regime.  Documented in DESIGN.md §6. *)
let capacity_scale = 8

(** Write-footprint budget (bytes) for whole-loop transaction placement:
    conservative halves of the capacity the mode can buffer. *)
let write_budget t =
  (match htm_mode t with
  | Nomap_htm.Htm.Rtm -> 16 * 1024  (* L1D is 32KB *)
  | _ -> 128 * 1024 (* ROT buffers in the 256KB L2 *))
  / capacity_scale

let read_budget t =
  match htm_mode t with
  | Nomap_htm.Htm.Rtm -> Some (128 * 1024 / capacity_scale)  (* L2 is 256KB *)
  | _ -> None
