lib/machine/timing.ml:
