lib/machine/counters.ml: Array Float Hashtbl Nomap_htm Nomap_lir
