lib/machine/machine.ml: Array Counters Float List Nomap_cache Nomap_htm Nomap_interp Nomap_lir Nomap_runtime Nomap_tiers Nomap_util Printf String Timing
