lib/machine/counters.mli: Hashtbl Nomap_htm Nomap_lir
