(** The abstract machine that executes LIR — our stand-in for the x86-64
    core running DFG/FTL-generated code.

    It interprets LIR against the simulated heap while:
    - counting dynamic instructions, classified NoFTL / NoTM / TMUnopt /
      TMOpt exactly as the paper's Figures 8/9 do (TMOpt = transaction-aware
      code inside its own transaction; TMUnopt = a callee executing inside
      someone else's transaction);
    - counting executed checks by kind (Figure 3);
    - charging the cycle model (Figures 10/11);
    - executing transactional semantics: Tx_begin checkpoints the live
      registers (like XBegin), speculative writes are journaled via the heap
      hooks, and an abort rolls the heap back and resumes the Baseline tier
      at the region entry — the control flow of paper Figure 5(b);
    - performing OSR exits: a failing Deopt check materializes its stack map
      into a Baseline frame and the rest of the function runs there. *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module Htm = Nomap_htm.Htm
module Footprint = Nomap_cache.Footprint
module Specialize = Nomap_tiers.Specialize

type tier = Dfg | Ftl

exception Deopt_exit of int * (int * Value.t) list  (** resume pc, register values *)

type env = {
  instance : Instance.t;
  counters : Counters.t;
  htm_mode : Htm.mode;  (** hardware a Tx_begin targets *)
  sof_enabled : bool;  (** Sticky Overflow Flag hardware present *)
  capacity_scale : int;  (** HTM capacity scaling (matches workload scaling) *)
  tx_watchdog : int;  (** max LIR instrs per transaction before forced abort *)
  call : fid:int -> this:Value.t -> args:Value.t list -> Value.t;
  deopt_resume : fid:int -> resume_pc:int -> values:(int * Value.t) list -> Value.t;
  mutable tx : Htm.tx option;
  mutable ghost_depth : int;  (** Base config: zero-cost region markers *)
  mutable ghost_owner : int;
  mutable next_frame : int;
  mutable on_abort : fid:int -> Htm.abort_reason -> unit;
      (** VM adaptation hook: capacity aborts shrink/remove transactions *)
}

let create_env ~instance ~counters ~htm_mode ~sof_enabled ?(capacity_scale = 1)
    ?(tx_watchdog = 30_000_000) ~call ~deopt_resume () =
  {
    instance;
    counters;
    htm_mode;
    sof_enabled;
    capacity_scale;
    tx_watchdog;
    call;
    deopt_resume;
    tx = None;
    ghost_depth = 0;
    ghost_owner = -1;
    next_frame = 0;
    on_abort = (fun ~fid:_ _ -> ());
  }

let in_region env = env.tx <> None || env.ghost_depth > 0

let category env frame =
  match env.tx with
  | Some tx ->
    if frame = tx.Htm.owner_frame then Counters.Tm_opt else Counters.Tm_unopt
  | None ->
    if env.ghost_depth > 0 then
      if frame = env.ghost_owner then Counters.Tm_opt else Counters.Tm_unopt
    else Counters.No_tm

let charge_ftl env ~frame ~tier n =
  if n > 0 then begin
    Counters.add_instrs env.counters (category env frame) n;
    let cpi = match tier with Dfg -> Timing.cpi_dfg | Ftl -> Timing.cpi_ftl in
    Counters.add_cycles env.counters ~in_tx:(in_region env) (float_of_int n *. cpi)
  end

let charge_runtime env n =
  if n > 0 then begin
    Counters.add_instrs env.counters Counters.No_ftl n;
    Counters.add_cycles env.counters ~in_tx:(in_region env)
      (float_of_int n *. Timing.cpi_runtime)
  end

(* ------------------------------------------------------------------ *)
(* Cost tables (simulated machine instructions per LIR instruction). *)

let base_cost = function
  | L.Nop | L.Phi _ | L.Param _ | L.Const _ -> 0
  | L.Iadd _ | L.Isub _ | L.Imul _ | L.Ineg _ | L.Iadd_wrap _ | L.Isub_wrap _ -> 1
  | L.Fadd _ | L.Fsub _ | L.Fmul _ | L.Fneg _ -> 1
  | L.Fdiv _ -> 4
  | L.Fmod _ -> 8
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ | L.Ushr _ -> 1
  | L.Cmp _ | L.Not _ -> 1
  | L.Load_slot _ | L.Load_elem _ | L.Load_char_code _ -> 3
  | L.Store_slot _ | L.Store_elem _ -> 3
  | L.Store_transition _ -> 5  (* slot store + shape-word update *)
  | L.Load_length _ | L.Str_length _ -> 2
  | L.Load_global _ | L.Store_global _ -> 2
  | L.Check_shape _ | L.Check_bounds _ | L.Check_str_bounds _ | L.Check_not_hole _ -> 3
  | L.Check_int _ | L.Check_number _ | L.Check_string _ | L.Check_array _
  | L.Check_fun_eq _ | L.Check_overflow _ | L.Check_cond _ -> 2
  | L.Call_func _ | L.Call_method _ -> 6
  | L.Ctor_call _ -> 22
  | L.Alloc_object | L.Alloc_array _ -> 15
  | L.Intrinsic _ -> 0 (* charged separately *)
  | L.Call_runtime _ -> 2 (* the call itself; body charged as runtime *)
  | L.Tx_begin _ | L.Tx_end -> 1

(** (FTL instructions, NoFTL runtime instructions) for a math intrinsic:
    cheap ones are inlined by the backend; transcendentals call libm. *)
let intrinsic_cost = function
  | Intrinsics.Math_sqrt -> (3, 0)
  | Intrinsics.Math_abs | Intrinsics.Math_floor | Intrinsics.Math_ceil
  | Intrinsics.Math_round | Intrinsics.Math_min | Intrinsics.Math_max -> (2, 0)
  | Intrinsics.Global_is_nan -> (2, 0)
  | Intrinsics.Math_random -> (1, 12)
  | _ -> (1, 40)

let runtime_cost rt (recv : Value.t) (args : Value.t list) =
  match rt with
  | L.Rt_binop _ -> 30
  | L.Rt_unop _ -> 16
  | L.Rt_get_prop _ -> 35
  | L.Rt_set_prop _ -> 40
  | L.Rt_get_elem -> 30
  | L.Rt_set_elem -> 34
  | L.Rt_get_length -> 16
  | L.Rt_method _ -> 44
  | L.Rt_intrinsic i -> 6 + Intrinsics.cost i + Intrinsics.dynamic_cost i recv args

(* ------------------------------------------------------------------ *)

let wrap_int32 = Ops.wrap_int32

let as_int = function Value.Int i -> i | v -> Value.to_int32 v
let as_num = Value.to_number

(* Robust coercions: after NoMap removes checks inside a doomed transaction,
   garbage values may flow; hardware would compute garbage and abort later,
   so we coerce benignly instead of crashing the simulator. *)
let as_arr = function Value.Arr a -> Some a | _ -> None
let as_obj = function Value.Obj o -> Some o | _ -> None

let exec_func env (c : Specialize.compiled) ~tier ~this ~args : Value.t =
  let lir = c.Specialize.lir in
  let inst = env.instance in
  let heap = inst.Instance.heap in
  (match tier with
  | Ftl -> env.counters.Counters.ftl_calls <- env.counters.Counters.ftl_calls + 1
  | Dfg -> env.counters.Counters.dfg_calls <- env.counters.Counters.dfg_calls + 1);
  let frame = env.next_frame in
  env.next_frame <- env.next_frame + 1;
  let n = Nomap_util.Vec.length lir.L.instrs in
  let values = Array.make n Value.Undef in
  let overflowed = Array.make n false in
  let charge n = charge_ftl env ~frame ~tier n in
  let materialize live = List.map (fun (r, v) -> (r, values.(v))) live in
  (* A failing check: Deopt outside any real transaction OSR-exits; inside a
     transaction any failure is an abort (Deopt there is irrevocable). *)
  let check_fail (e : L.exit) kind =
    match env.tx with
    | Some _ -> raise (Htm.Abort (Htm.Check_failed kind))
    | None -> (
      match e.L.ekind with
      | L.Deopt -> raise (Deopt_exit (e.L.smp.L.resume_pc, materialize e.L.smp.L.live))
      | L.Abort ->
        (* Abort exit with no live transaction: only possible if a pass
           mis-converted; treat as a plain deopt to stay safe. *)
        raise (Deopt_exit (e.L.smp.L.resume_pc, materialize e.L.smp.L.live)))
  in
  let pass_check kind v =
    Counters.add_check env.counters kind;
    v
  in
  let int_result id raw =
    if Value.fits_int32 raw then Value.Int raw
    else begin
      overflowed.(id) <- true;
      (match env.tx with Some tx when env.sof_enabled -> tx.Htm.sof <- true | _ -> ());
      Value.Int (wrap_int32 raw)
    end
  in
  let tx_tick () =
    match env.tx with
    | Some tx ->
      tx.Htm.instr_count <- tx.Htm.instr_count + 1;
      if tx.Htm.instr_count > env.tx_watchdog then raise (Htm.Abort Htm.Watchdog)
    | None -> ()
  in
  let exec_runtime rt recv args =
    charge_runtime env (runtime_cost rt recv args);
    match rt with
    | L.Rt_binop op -> Ops.apply_binop heap op (List.nth args 0) (List.nth args 1)
    | L.Rt_unop op -> Ops.apply_unop op (List.nth args 0)
    | L.Rt_get_prop name -> (
      match as_obj recv with
      | Some o -> Heap.get_prop heap o name
      | None -> Value.Undef)
    | L.Rt_set_prop name -> (
      match as_obj recv with
      | Some o ->
        Heap.set_prop heap o name (List.nth args 0);
        Value.Undef
      | None -> raise (Nomap_interp.Interp.Runtime_error "set property on non-object"))
    | L.Rt_get_elem -> (
      let vi = List.nth args 0 in
      match (recv, vi) with
      | Value.Arr arr, Value.Int idx -> Heap.get_elem heap arr idx
      | Value.Arr arr, _ ->
        let idx = Value.to_int32 vi in
        if float_of_int idx = Value.to_number vi then Heap.get_elem heap arr idx
        else Value.Undef
      | Value.Str s, Value.Int idx ->
        let data = s.Value.sdata in
        if idx >= 0 && idx < String.length data then Heap.str heap (String.make 1 data.[idx])
        else Value.Undef
      | v, _ ->
        raise (Nomap_interp.Interp.Runtime_error ("cannot index " ^ Value.type_name v)))
    | L.Rt_set_elem -> (
      let vi = List.nth args 0 and vx = List.nth args 1 in
      match recv with
      | Value.Arr arr ->
        let idx = as_int vi in
        if float_of_int idx = Value.to_number vi then Heap.set_elem heap arr idx vx;
        Value.Undef
      | v -> raise (Nomap_interp.Interp.Runtime_error ("cannot index-assign " ^ Value.type_name v)))
    | L.Rt_get_length -> (
      match Ops.js_length recv with
      | Some v -> v
      | None -> (
        match as_obj recv with
        | Some o -> Heap.get_prop heap o "length"
        | None ->
          raise (Nomap_interp.Interp.Runtime_error ("no length on " ^ Value.type_name recv))))
    | L.Rt_method name -> (
      match Intrinsics.method_lookup recv name with
      | Some intr -> (
        try Intrinsics.eval heap intr recv args
        with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
      | None -> (
        match as_obj recv with
        | Some o -> (
          match Shape.lookup o.Value.shape name with
          | Some slot -> (
            match Heap.load_slot heap o slot with
            | Value.Fun fid -> env.call ~fid ~this:recv ~args
            | v ->
              raise
                (Nomap_interp.Interp.Runtime_error
                   (Printf.sprintf "%s is not a function (%s)" name (Value.type_name v))))
          | None -> raise (Nomap_interp.Interp.Runtime_error ("no method " ^ name)))
        | None ->
          raise
            (Nomap_interp.Interp.Runtime_error
               (Printf.sprintf "no method %s on %s" name (Value.type_name recv)))))
    | L.Rt_intrinsic intr -> (
      try Intrinsics.eval heap intr recv args
      with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
  in
  let run () =
    let prev_block = ref (-1) in
    let cur_block = ref lir.L.entry in
    let result = ref None in
    while !result = None do
      let b = L.block lir !cur_block in
      (* Phis: read all inputs against the incoming edge, then assign in
         parallel, then run the block body. *)
      let rec exec_phis = function
        | v :: rest -> (
          let i = L.instr lir v in
          match i.L.kind with
          | L.Phi ins ->
            let copies = ref [] in
            let rec gather = function
              | w :: more -> (
                let j = L.instr lir w in
                match j.L.kind with
                | L.Phi ins' ->
                  (match List.assoc_opt !prev_block ins' with
                  | Some src -> copies := (w, values.(src)) :: !copies
                  | None -> ());
                  gather more
                | L.Nop -> gather more
                | _ -> w :: more)
              | [] -> []
            in
            ignore ins;
            let body = gather (v :: rest) in
            List.iter (fun (w, value) -> values.(w) <- value) !copies;
            exec_instrs body
          | L.Nop -> exec_phis rest
          | _ -> exec_instrs (v :: rest))
        | [] -> ()
      and exec_instrs instrs =
        List.iter
          (fun v ->
            let i = L.instr lir v in
            let k = i.L.kind in
            (match k with
            | L.Phi _ | L.Nop -> ()
            | (L.Tx_begin _ | L.Tx_end) when env.htm_mode = Htm.Ghost ->
              (* Base config: region markers only, no machine cost. *)
              Instance.burn inst 1
            | _ ->
              Instance.burn inst 1;
              tx_tick ();
              charge (base_cost k));
            match k with
            | L.Nop | L.Phi _ -> ()
            | L.Param r ->
              values.(v) <-
                (if r = 0 then this
                 else match List.nth_opt args (r - 1) with Some x -> x | None -> Value.Undef)
            | L.Const c -> values.(v) <- c
            | L.Iadd (a, b) -> values.(v) <- int_result v (as_int values.(a) + as_int values.(b))
            | L.Isub (a, b) -> values.(v) <- int_result v (as_int values.(a) - as_int values.(b))
            | L.Iadd_wrap (a, b) ->
              values.(v) <- Value.Int (wrap_int32 (as_int values.(a) + as_int values.(b)))
            | L.Isub_wrap (a, b) ->
              values.(v) <- Value.Int (wrap_int32 (as_int values.(a) - as_int values.(b)))
            | L.Imul (a, b) -> values.(v) <- int_result v (as_int values.(a) * as_int values.(b))
            | L.Ineg a ->
              let x = as_int values.(a) in
              (* -0 and -int32_min are not int32-representable results. *)
              if x = 0 || x = Value.int32_min then begin
                overflowed.(v) <- true;
                (match env.tx with
                | Some tx when env.sof_enabled -> tx.Htm.sof <- true
                | _ -> ());
                values.(v) <- Value.Int (wrap_int32 (-x))
              end
              else values.(v) <- Value.Int (-x)
            | L.Fadd (a, b) -> values.(v) <- Value.number (as_num values.(a) +. as_num values.(b))
            | L.Fsub (a, b) -> values.(v) <- Value.number (as_num values.(a) -. as_num values.(b))
            | L.Fmul (a, b) -> values.(v) <- Value.number (as_num values.(a) *. as_num values.(b))
            | L.Fdiv (a, b) -> values.(v) <- Value.number (as_num values.(a) /. as_num values.(b))
            | L.Fmod (a, b) ->
              values.(v) <- Value.number (Float.rem (as_num values.(a)) (as_num values.(b)))
            | L.Fneg a -> values.(v) <- Value.number (-.as_num values.(a))
            | L.Band (a, b) -> values.(v) <- Value.Int (wrap_int32 (as_int values.(a) land as_int values.(b)))
            | L.Bor (a, b) -> values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lor as_int values.(b)))
            | L.Bxor (a, b) -> values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lxor as_int values.(b)))
            | L.Bnot a -> values.(v) <- Value.Int (wrap_int32 (lnot (as_int values.(a))))
            | L.Shl (a, b) ->
              values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lsl (as_int values.(b) land 31)))
            | L.Shr (a, b) -> values.(v) <- Value.Int (as_int values.(a) asr (as_int values.(b) land 31))
            | L.Ushr (a, b) -> values.(v) <- Ops.js_ushr values.(a) values.(b)
            | L.Cmp (c, a, b) ->
              let x = as_num values.(a) and y = as_num values.(b) in
              let r =
                match c with
                | L.Ceq -> x = y
                | L.Cne -> x <> y (* JS: NaN != anything is true *)
                | L.Clt -> x < y
                | L.Cle -> x <= y
                | L.Cgt -> x > y
                | L.Cge -> x >= y
              in
              values.(v) <- Value.Bool r
            | L.Not a -> values.(v) <- Value.Bool (not (Value.truthy values.(a)))
            | L.Load_slot (o, slot) -> (
              match as_obj values.(o) with
              | Some obj when slot < Array.length obj.Value.slots ->
                values.(v) <- Heap.load_slot heap obj slot
              | _ -> values.(v) <- Value.Undef)
            | L.Store_slot (o, slot, x) -> (
              match as_obj values.(o) with
              | Some obj when slot < Array.length obj.Value.slots ->
                Heap.store_slot heap obj slot values.(x)
              | _ -> ())
            | L.Store_transition (o, name, slot, x) -> (
              match as_obj values.(o) with
              | Some obj ->
                (* The guarding shape check ran just before; resolve the
                   (memoized) transition and install shape + value. *)
                let new_shape =
                  Shape.transition heap.Heap.shapes obj.Value.shape name
                in
                if new_shape.Shape.prop_count - 1 = slot then
                  Heap.transition_store heap obj new_shape slot values.(x)
                else
                  (* Shape drifted (possible only in a doomed transaction). *)
                  Heap.set_prop heap obj name values.(x)
              | None -> ())
            | L.Load_elem (a, i') -> (
              match as_arr values.(a) with
              | Some arr -> values.(v) <- Heap.load_elem heap arr (as_int values.(i'))
              | None -> values.(v) <- Value.Undef)
            | L.Store_elem (a, i', x) -> (
              match as_arr values.(a) with
              | Some arr -> Heap.store_elem heap arr (as_int values.(i')) values.(x)
              | None -> ())
            | L.Load_length a -> (
              match as_arr values.(a) with
              | Some arr ->
                heap.Heap.hooks.load arr.Value.aaddr 8;
                values.(v) <- Value.Int arr.Value.alen
              | None -> values.(v) <- Value.Int 0)
            | L.Str_length a -> (
              match values.(a) with
              | Value.Str s -> values.(v) <- Value.Int (String.length s.Value.sdata)
              | _ -> values.(v) <- Value.Int 0)
            | L.Load_char_code (s, i') -> (
              match values.(s) with
              | Value.Str str ->
                values.(v) <- Value.Int (Ops.string_char_code heap str (as_int values.(i')))
              | _ -> values.(v) <- Value.Int 0)
            | L.Load_global g -> values.(v) <- inst.Instance.globals.(g)
            | L.Store_global (g, x) -> inst.Instance.globals.(g) <- values.(x)
            | L.Check_int (a, e) -> (
              match values.(a) with
              | Value.Int _ -> values.(v) <- pass_check L.Type values.(a)
              | _ -> check_fail e L.Type)
            | L.Check_number (a, e) -> (
              match values.(a) with
              | Value.Int _ | Value.Num _ -> values.(v) <- pass_check L.Type values.(a)
              | _ -> check_fail e L.Type)
            | L.Check_string (a, e) -> (
              match values.(a) with
              | Value.Str _ -> values.(v) <- pass_check L.Type values.(a)
              | _ -> check_fail e L.Type)
            | L.Check_array (a, e) -> (
              match values.(a) with
              | Value.Arr _ -> values.(v) <- pass_check L.Type values.(a)
              | _ -> check_fail e L.Type)
            | L.Check_shape (a, shape_id, e) -> (
              match values.(a) with
              | Value.Obj o when o.Value.shape.Shape.id = shape_id ->
                heap.Heap.hooks.load o.Value.oaddr 8;
                values.(v) <- pass_check L.Property values.(a)
              | _ -> check_fail e L.Property)
            | L.Check_fun_eq (a, fid, e) -> (
              match values.(a) with
              | Value.Fun f when f = fid -> values.(v) <- pass_check L.Path values.(a)
              | _ -> check_fail e L.Path)
            | L.Check_bounds (a, i', e) -> (
              let idx = as_int values.(i') in
              match as_arr values.(a) with
              | Some arr when idx >= 0 && idx < arr.Value.alen ->
                heap.Heap.hooks.load arr.Value.aaddr 8;
                values.(v) <- pass_check L.Bounds (Value.Int idx)
              | _ -> check_fail e L.Bounds)
            | L.Check_str_bounds (s, i', e) -> (
              let idx = as_int values.(i') in
              match values.(s) with
              | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
                values.(v) <- pass_check L.Bounds (Value.Int idx)
              | _ -> check_fail e L.Bounds)
            | L.Check_not_hole (a, i', e) -> (
              let idx = as_int values.(i') in
              match as_arr values.(a) with
              | Some arr
                when idx >= 0
                     && idx < Array.length arr.Value.elems
                     && Heap.load_elem heap arr idx <> Value.Hole ->
                values.(v) <- pass_check L.Hole (Value.Int idx)
              | _ -> check_fail e L.Hole)
            | L.Check_overflow (a, e) ->
              if overflowed.(a) then check_fail e L.Overflow
              else values.(v) <- pass_check L.Overflow values.(a)
            | L.Check_cond (a, expected, e) ->
              if Value.truthy values.(a) = expected then
                values.(v) <- pass_check L.Path values.(a)
              else check_fail e L.Path
            | L.Call_func (fid, cargs) ->
              values.(v) <- env.call ~fid ~this:Value.Undef ~args:(List.map (fun a -> values.(a)) cargs)
            | L.Call_method (fid, thisv, cargs) ->
              values.(v) <-
                env.call ~fid ~this:values.(thisv) ~args:(List.map (fun a -> values.(a)) cargs)
            | L.Ctor_call (fid, cargs) ->
              let obj = Value.Obj (Heap.alloc_object heap) in
              let r = env.call ~fid ~this:obj ~args:(List.map (fun a -> values.(a)) cargs) in
              values.(v) <- (match r with Value.Undef -> obj | x -> x)
            | L.Call_runtime (rt, recv, cargs) ->
              values.(v) <- exec_runtime rt values.(recv) (List.map (fun a -> values.(a)) cargs)
            | L.Intrinsic (intr, cargs) ->
              let ftl_c, rt_c = intrinsic_cost intr in
              charge ftl_c;
              charge_runtime env rt_c;
              values.(v) <-
                (try Intrinsics.eval heap intr Value.Undef (List.map (fun a -> values.(a)) cargs)
                 with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
            | L.Alloc_object -> values.(v) <- Value.Obj (Heap.alloc_object heap)
            | L.Alloc_array len ->
              let n = as_int values.(len) in
              if n < 0 || n > 1 lsl 24 then begin
                if env.tx <> None then raise (Htm.Abort Htm.Watchdog)
                else raise (Nomap_interp.Interp.Runtime_error "bad array length")
              end;
              values.(v) <- Value.Arr (Heap.alloc_array heap n)
            | L.Tx_begin smp -> (
              match env.htm_mode with
              | Htm.Ghost ->
                if env.ghost_depth = 0 then env.ghost_owner <- frame;
                env.ghost_depth <- env.ghost_depth + 1
              | (Htm.Rot | Htm.Rtm) as mode -> (
                match env.tx with
                | Some tx -> tx.Htm.nesting <- tx.Htm.nesting + 1
                | None ->
                  let snapshot = materialize smp.L.live in
                  env.tx <-
                    Some
                      (Htm.begin_tx ~capacity_scale:env.capacity_scale heap ~mode ~snapshot
                         ~resume_pc:smp.L.resume_pc ~owner_frame:frame);
                  (* Transaction lengths scale with the workloads; scale the
                     fixed begin/end costs equally so the overhead-to-work
                     ratio stays in the paper's regime (DESIGN.md §6). *)
                  Counters.add_cycles env.counters ~in_tx:true
                    (Timing.xbegin_cycles /. float_of_int env.capacity_scale)))
            | L.Tx_end -> (
              match env.htm_mode with
              | Htm.Ghost ->
                env.ghost_depth <- max 0 (env.ghost_depth - 1);
                if env.ghost_depth = 0 then env.ghost_owner <- -1
              | Htm.Rot | Htm.Rtm -> (
                match env.tx with
                | None -> ()  (* abort already tore the transaction down *)
                | Some tx ->
                  tx.Htm.nesting <- tx.Htm.nesting - 1;
                  if tx.Htm.nesting = 0 then begin
                    if env.sof_enabled && tx.Htm.sof then raise (Htm.Abort Htm.Sof_overflow);
                    Counters.add_cycles env.counters ~in_tx:true
                      ((match tx.Htm.mode with
                       | Htm.Rtm -> Timing.xend_rtm_cycles
                       | _ -> Timing.xend_rot_cycles)
                      /. float_of_int env.capacity_scale);
                    Counters.record_commit env.counters
                      ~write_kb:(Footprint.kb tx.Htm.write_fp)
                      ~assoc:(Footprint.max_ways tx.Htm.write_fp);
                    Htm.commit tx;
                    env.tx <- None
                  end)))
          instrs
      in
      exec_phis b.L.instrs;
      charge 1;
      (* terminator *)
      match b.L.term with
      | L.Jump t ->
        prev_block := !cur_block;
        cur_block := t
      | L.Br (cv, bt, bf) ->
        prev_block := !cur_block;
        cur_block := (if Value.truthy values.(cv) then bt else bf)
      | L.Ret r -> result := Some (match r with Some rv -> values.(rv) | None -> Value.Undef)
      | L.Unreachable -> raise (Nomap_interp.Interp.Runtime_error "reached unreachable block")
    done;
    match !result with Some r -> r | None -> assert false
  in
  let handle_abort reason tx =
    Htm.rollback tx;
    env.tx <- None;
    Counters.record_abort env.counters reason;
    Counters.add_cycles env.counters ~in_tx:false Timing.abort_cycles;
    env.on_abort ~fid:lir.L.fid reason;
    env.deopt_resume ~fid:lir.L.fid ~resume_pc:tx.Htm.resume_pc ~values:tx.Htm.snapshot
  in
  try run () with
  | Deopt_exit (resume_pc, vals) ->
    env.counters.Counters.deopts <- env.counters.Counters.deopts + 1;
    Counters.add_cycles env.counters ~in_tx:(in_region env) Timing.deopt_cycles;
    env.deopt_resume ~fid:lir.L.fid ~resume_pc ~values:vals
  | Htm.Abort reason -> (
    match env.tx with
    | Some tx when tx.Htm.owner_frame = frame -> handle_abort reason tx
    | _ -> raise (Htm.Abort reason))
