lib/vm/vm.ml: Array List Nomap_bytecode Nomap_htm Nomap_interp Nomap_lir Nomap_machine Nomap_nomap Nomap_opt Nomap_profile Nomap_runtime Nomap_tiers Option
