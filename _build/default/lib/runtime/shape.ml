(** Hidden classes ("shapes"/"structures" in JavaScriptCore terminology).

    Every object points at a shape describing its property layout.  Adding a
    property transitions the object to a child shape; objects built by the
    same code path in the same order share shapes, which is what makes the
    FTL tier's property checks (compare one shape pointer) meaningful.

    A [universe] owns the shape tree so that independent program runs do not
    share state and ids stay deterministic. *)

type t = {
  id : int;
  prop_count : int;
  (* Most-recently-added property first; slot indices are stable. *)
  props : (string * int) list;
  transitions : (string, t) Hashtbl.t;
}

type universe = { mutable next_id : int; root : t }

let create_universe () =
  let root = { id = 0; prop_count = 0; props = []; transitions = Hashtbl.create 8 } in
  { next_id = 1; root }

let root u = u.root

(** Slot index of property [name], if present. *)
let lookup shape name =
  List.assoc_opt name shape.props

let has_property shape name = lookup shape name <> None

(** The shape reached by adding [name]; creates (and caches) the transition.
    The new property gets the next slot index. *)
let transition u shape name =
  match Hashtbl.find_opt shape.transitions name with
  | Some child -> child
  | None ->
    let child =
      {
        id = u.next_id;
        prop_count = shape.prop_count + 1;
        props = (name, shape.prop_count) :: shape.props;
        transitions = Hashtbl.create 4;
      }
    in
    u.next_id <- u.next_id + 1;
    Hashtbl.add shape.transitions name child;
    child

(** Property names in slot order, for printing. *)
let property_names shape =
  List.rev_map fst shape.props

let pp fmt shape =
  Format.fprintf fmt "shape#%d{%s}" shape.id (String.concat "," (property_names shape))
