(** Hidden classes ("shapes"/"structures" in JavaScriptCore terminology).

    Every object points at a shape describing its property layout; adding a
    property transitions to a child shape.  Objects built by the same code
    path share shapes, which is what makes the FTL tier's property checks
    (compare one shape pointer) meaningful. *)

type t = {
  id : int;
  prop_count : int;
  props : (string * int) list;  (** most-recently-added first; slot indices stable *)
  transitions : (string, t) Hashtbl.t;
}

(** A universe owns a shape tree: independent program runs do not share
    state and ids stay deterministic. *)
type universe

val create_universe : unit -> universe

(** The empty root shape. *)
val root : universe -> t

(** Slot index of a property, if present. *)
val lookup : t -> string -> int option

val has_property : t -> string -> bool

(** The shape reached by adding a property; creates (and caches) the
    transition.  The new property gets the next slot index. *)
val transition : universe -> t -> string -> t

(** Property names in slot order. *)
val property_names : t -> string list

val pp : Format.formatter -> t -> unit
