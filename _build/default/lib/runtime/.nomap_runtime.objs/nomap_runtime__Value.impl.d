lib/runtime/value.ml: Array Float Format List Printf Shape String
