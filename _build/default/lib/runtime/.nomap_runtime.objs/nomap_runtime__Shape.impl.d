lib/runtime/shape.ml: Format Hashtbl List String
