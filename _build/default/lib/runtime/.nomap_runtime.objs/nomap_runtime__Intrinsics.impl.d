lib/runtime/intrinsics.ml: Char Float Heap List Printf String Value
