lib/runtime/heap.ml: Array Nomap_util Shape String Value
