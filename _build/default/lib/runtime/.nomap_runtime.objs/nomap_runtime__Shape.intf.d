lib/runtime/shape.mli: Format Hashtbl
