lib/runtime/ops.ml: Char Float Heap Nomap_jsir String Value
