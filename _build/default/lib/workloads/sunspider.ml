(** SunSpider kernels (S01–S26), written in MiniJS with the computational
    shape of the originals: the same dominant operation mix (FP matrix math,
    int array traversal, bit twiddling, crypto rounds, string building), so
    the check-density and category profiles the paper reports emerge from
    the code rather than being asserted.

    Every program defines [function benchmark()] returning a checksum; the
    harness calls it repeatedly.  Sizes are scaled down (the simulator costs
    ~100x a real CPU) but loop structures match. *)

(* S01 3d-cube: 3D matrix rotations over unit-cube vertices. *)
let s01_3d_cube =
  {js|
var cube_q = [];
function makeCube() {
  var v = [];
  v.push([1, 1, 1]); v.push([1, 1, -1]); v.push([1, -1, 1]); v.push([1, -1, -1]);
  v.push([-1, 1, 1]); v.push([-1, 1, -1]); v.push([-1, -1, 1]); v.push([-1, -1, -1]);
  return v;
}
function rotateX(p, a) {
  var c = Math.cos(a); var s = Math.sin(a);
  var y = p[1] * c - p[2] * s;
  var z = p[1] * s + p[2] * c;
  p[1] = y; p[2] = z;
}
function rotateY(p, a) {
  var c = Math.cos(a); var s = Math.sin(a);
  var x = p[0] * c + p[2] * s;
  var z = -p[0] * s + p[2] * c;
  p[0] = x; p[2] = z;
}
function rotateZ(p, a) {
  var c = Math.cos(a); var s = Math.sin(a);
  var x = p[0] * c - p[1] * s;
  var y = p[0] * s + p[1] * c;
  p[0] = x; p[1] = y;
}
function benchmark() {
  var cube = makeCube();
  var total = 0.0;
  for (var frame = 0; frame < 45; frame++) {
    var a = frame * 0.1;
    for (var i = 0; i < cube.length; i++) {
      rotateX(cube[i], a);
      rotateY(cube[i], a * 0.5);
      rotateZ(cube[i], a * 0.25);
    }
    for (var j = 0; j < cube.length; j++) {
      total += cube[j][0] * (j + 1) + cube[j][1] * (j + 2) + cube[j][2] * (j + 3);
    }
  }
  return Math.floor(total * 1000);
}
|js}

(* S02 3d-morph: sine-wave morphing of a mesh; the paper notes its kernel is
   optimized away as dead code once SMPs become aborts (nothing observes the
   mesh), which we reproduce by never reading the result. *)
let s02_3d_morph =
  {js|
var morph_mesh = new Array(120);
function benchmark() {
  var loops = 12;
  for (var l = 0; l < loops; l++) {
    for (var i = 0; i < 120; i++) {
      morph_mesh[i] = Math.sin((i + l) * 0.05) * 0.5 + 0.5;
    }
  }
  return 1;
}
|js}

(* S03 3d-raytrace: sphere intersection tests with vector objects. *)
let s03_3d_raytrace =
  {js|
function Vector(x, y, z) { this.x = x; this.y = y; this.z = z; }
function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function sub(a, b) { return new Vector(a.x - b.x, a.y - b.y, a.z - b.z); }
function intersectSphere(orig, dir, center, radius) {
  var oc = sub(center, orig);
  var tca = dot(oc, dir);
  if (tca < 0) { return -1.0; }
  var d2 = dot(oc, oc) - tca * tca;
  var r2 = radius * radius;
  if (d2 > r2) { return -1.0; }
  return tca - Math.sqrt(r2 - d2);
}
function benchmark() {
  var orig = new Vector(0, 0, 0);
  var hits = 0;
  var depth = 0.0;
  for (var py = 0; py < 12; py++) {
    for (var px = 0; px < 12; px++) {
      var dx = (px - 6) / 6.0;
      var dy = (py - 6) / 6.0;
      var norm = Math.sqrt(dx * dx + dy * dy + 1.0);
      var dir = new Vector(dx / norm, dy / norm, 1.0 / norm);
      var t = intersectSphere(orig, dir, new Vector(0, 0, 10), 3.0);
      if (t > 0) { hits++; depth += t; }
    }
  }
  return hits * 1000 + Math.floor(depth);
}
|js}

(* S04 access-binary-trees: allocate and walk binary trees (GC pressure). *)
let s04_access_binary_trees =
  {js|
function TreeNode(left, right, item) {
  this.left = left; this.right = right; this.item = item;
}
function bottomUpTree(item, depth) {
  if (depth > 0) {
    return new TreeNode(bottomUpTree(2 * item - 1, depth - 1),
                        bottomUpTree(2 * item, depth - 1), item);
  }
  return new TreeNode(null, null, item);
}
function itemCheck(node) {
  if (node.left == null) { return node.item; }
  return node.item + itemCheck(node.left) - itemCheck(node.right);
}
function benchmark() {
  var check = 0;
  for (var depth = 2; depth <= 5; depth++) {
    var iterations = 1 << (7 - depth);
    for (var i = 1; i <= iterations; i++) {
      check += itemCheck(bottomUpTree(i, depth));
      check += itemCheck(bottomUpTree(-i, depth));
    }
  }
  return check;
}
|js}

(* S05 access-fannkuch: pancake-flip permutations over int arrays. *)
let s05_access_fannkuch =
  {js|
function fannkuch(n) {
  var perm = new Array(n);
  var perm1 = new Array(n);
  var count = new Array(n);
  var maxFlips = 0;
  var r = n;
  for (var i = 0; i < n; i++) { perm1[i] = i; }
  var iter = 0;
  while (iter < 300) {
    iter++;
    while (r != 1) { count[r - 1] = r; r--; }
    for (var j = 0; j < n; j++) { perm[j] = perm1[j]; }
    var flips = 0;
    var k = perm[0];
    while (k != 0) {
      var half = (k + 1) >> 1;
      for (var m = 0; m < half; m++) {
        var t = perm[m]; perm[m] = perm[k - m]; perm[k - m] = t;
      }
      flips++;
      k = perm[0];
    }
    if (flips > maxFlips) { maxFlips = flips; }
    var done = false;
    while (!done) {
      if (r == n) { return maxFlips; }
      var p0 = perm1[0];
      for (var q = 0; q < r; q++) { perm1[q] = perm1[q + 1]; }
      perm1[r] = p0;
      count[r] = count[r] - 1;
      if (count[r] > 0) { done = true; } else { r++; }
    }
  }
  return maxFlips;
}
function benchmark() { return fannkuch(6); }
|js}

(* S06 access-nbody: planetary n-body FP simulation. *)
let s06_access_nbody =
  {js|
var bx = [];
var by = [];
var bvx = [];
var bvy = [];
var bmass = [39.47, 0.0377, 0.0113, 0.0017, 0.0002];
function resetBodies() {
  bx = [0.0, 4.84, 8.34, 12.89, 15.37];
  by = [0.0, -1.16, 4.12, -15.11, -25.91];
  bvx = [0.0, 0.00166, -0.00276, 0.00296, 0.00268];
  bvy = [0.0, 0.00769, 0.00499, 0.00237, 0.00162];
}
function advance(dt) {
  var n = 5;
  for (var i = 0; i < n; i++) {
    for (var j = i + 1; j < n; j++) {
      var dx = bx[i] - bx[j];
      var dy = by[i] - by[j];
      var d2 = dx * dx + dy * dy;
      var mag = dt / (d2 * Math.sqrt(d2));
      bvx[i] -= dx * bmass[j] * mag;
      bvy[i] -= dy * bmass[j] * mag;
      bvx[j] += dx * bmass[i] * mag;
      bvy[j] += dy * bmass[i] * mag;
    }
  }
  for (var k = 0; k < n; k++) {
    bx[k] += dt * bvx[k];
    by[k] += dt * bvy[k];
  }
}
function energy() {
  var e = 0.0;
  for (var i = 0; i < 5; i++) {
    e += 0.5 * bmass[i] * (bvx[i] * bvx[i] + bvy[i] * bvy[i]);
  }
  return e;
}
function benchmark() {
  resetBodies();
  for (var s = 0; s < 60; s++) { advance(0.01); }
  return Math.floor(energy() * 1e9);
}
|js}

(* S07 access-nsieve: sieve of Eratosthenes over a boolean array. *)
let s07_access_nsieve =
  {js|
function nsieve(m, flags) {
  var count = 0;
  for (var i = 2; i < m; i++) { flags[i] = true; }
  for (var j = 2; j < m; j++) {
    if (flags[j]) {
      for (var k = j + j; k < m; k += j) { flags[k] = false; }
      count++;
    }
  }
  return count;
}
function benchmark() {
  var sum = 0;
  for (var p = 0; p < 3; p++) {
    var m = (1 << p) * 500;
    var flags = new Array(m + 1);
    sum += nsieve(m, flags);
  }
  return sum;
}
|js}

(* S08 bitops-3bit-bits-in-byte: paper notes this collapses to dead code. *)
let s08_bitops_3bit_bits_in_byte =
  {js|
function fast3bitlookup(b) {
  var c = 0xE994;
  var bi3b = (c >> ((b & 7) << 1)) & 3;
  bi3b += (c >> (((b >> 3) & 7) << 1)) & 3;
  bi3b += (c >> (((b >> 6) & 3) << 1)) & 3;
  return bi3b;
}
function benchmark() {
  for (var i = 0; i < 500; i++) { fast3bitlookup(i & 0xFF); }
  return 1;
}
|js}

(* S09 bitops-bits-in-byte: likewise dead once unobserved. *)
let s09_bitops_bits_in_byte =
  {js|
function bitsinbyte(b) {
  var m = 1; var c = 0;
  while (m < 0x100) {
    if (b & m) { c++; }
    m <<= 1;
  }
  return c;
}
function benchmark() {
  for (var j = 0; j < 500; j++) { bitsinbyte(j & 0xFF); }
  return 1;
}
|js}

(* S10 bitops-bitwise-and: tight int loop; the paper highlights its SOF win. *)
let s10_bitops_bitwise_and =
  {js|
var bitwiseAndValue = 4294967296;
function benchmark() {
  bitwiseAndValue = 4294967296;
  for (var i = 0; i < 2000; i++) {
    bitwiseAndValue = (bitwiseAndValue & i) + 1;
  }
  return bitwiseAndValue;
}
|js}

(* S11 bitops-nsieve-bits: sieve packed into int32 bit vectors. *)
let s11_bitops_nsieve_bits =
  {js|
function primes(isPrime, n) {
  var count = 0;
  var m = 10000 << n;
  var size = (m + 31) >> 5;
  for (var i = 0; i < size; i++) { isPrime[i] = 0xffffffff | 0; }
  for (var j = 2; j < m; j++) {
    if (isPrime[j >> 5] & (1 << (j & 31))) {
      for (var k = j + j; k < m; k += j) {
        isPrime[k >> 5] &= ~(1 << (k & 31));
      }
      count++;
    }
  }
  return count;
}
function benchmark() {
  var s = 0;
  var flags = new Array((10000 + 31) >> 5);
  s += primes(flags, 0);
  return s;
}
|js}

(* S12 controlflow-recursive: ackermann/fib/tak recursion. *)
let s12_controlflow_recursive =
  {js|
function ack(m, n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
function cfib(n) {
  if (n < 2) { return n; }
  return cfib(n - 2) + cfib(n - 1);
}
function tak(x, y, z) {
  if (y >= x) { return z; }
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
function benchmark() {
  var r = 0;
  for (var i = 1; i <= 2; i++) {
    r += ack(2, i);
    r += cfib(3 + i * 2);
    r += tak(i * 2, i, i - 1);
  }
  return r;
}
|js}

(* S13 crypto-aes: byte-substitution + mix-columns style rounds over int
   arrays; the paper reports 72 bounds checks sunk from 29 loops here. *)
let s13_crypto_aes =
  {js|
var aes_sbox = new Array(256);
var aes_init_done = 0;
function aesInit() {
  for (var i = 0; i < 256; i++) {
    aes_sbox[i] = ((i * 7) ^ (i >> 4) ^ 0x63) & 0xFF;
  }
  aes_init_done = 1;
}
function subBytes(state) {
  for (var i = 0; i < state.length; i++) {
    state[i] = aes_sbox[state[i] & 0xFF];
  }
}
function shiftRows(state) {
  for (var r = 1; r < 4; r++) {
    for (var s = 0; s < r; s++) {
      var t = state[r * 4];
      for (var c = 0; c < 3; c++) { state[r * 4 + c] = state[r * 4 + c + 1]; }
      state[r * 4 + 3] = t;
    }
  }
}
function mixColumns(state) {
  for (var c = 0; c < 4; c++) {
    var a0 = state[c]; var a1 = state[c + 4];
    var a2 = state[c + 8]; var a3 = state[c + 12];
    state[c] = (a0 ^ a1 ^ a2) & 0xFF;
    state[c + 4] = (a1 ^ a2 ^ a3) & 0xFF;
    state[c + 8] = (a2 ^ a3 ^ a0) & 0xFF;
    state[c + 12] = (a3 ^ a0 ^ a1) & 0xFF;
  }
}
function benchmark() {
  if (!aes_init_done) { aesInit(); }
  var state = new Array(16);
  for (var i = 0; i < 16; i++) { state[i] = i * 11; }
  for (var round = 0; round < 40; round++) {
    subBytes(state);
    shiftRows(state);
    mixColumns(state);
  }
  var h = 0;
  for (var j = 0; j < 16; j++) { h = (h * 31 + state[j]) & 0xFFFFFF; }
  return h;
}
|js}

(* S14 crypto-md5: 32-bit rounds with rotations over a message block. *)
let s14_crypto_md5 =
  {js|
function rotl(x, n) { return (x << n) | (x >>> (32 - n)); }
function md5round(a, b, x, s) {
  return (rotl((a + ((b & 0x5A82) | (~b & 0x7999)) + x) | 0, s) + b) | 0;
}
function benchmark() {
  var block = new Array(16);
  for (var i = 0; i < 16; i++) { block[i] = i * 0x01010101; }
  var a = 0x67452301 | 0; var b = 0xefcdab89 | 0;
  for (var round = 0; round < 60; round++) {
    for (var w = 0; w < 16; w++) {
      a = md5round(a, b, block[w], (w & 3) + 4);
      var t = a; a = b; b = t;
    }
  }
  return (a ^ b) & 0xFFFFFFF;
}
|js}

(* S15 crypto-sha1: expansion + rounds over 80-word schedule. *)
let s15_crypto_sha1 =
  {js|
function rol(num, cnt) { return (num << cnt) | (num >>> (32 - cnt)); }
function benchmark() {
  var w = new Array(80);
  for (var i = 0; i < 16; i++) { w[i] = i * 0x11111111; }
  var h0 = 0x67452301 | 0; var h1 = 0xEFCDAB89 | 0; var h2 = 0x98BADCFE | 0;
  for (var block = 0; block < 12; block++) {
    for (var t = 16; t < 80; t++) {
      w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    var a = h0; var b = h1; var c = h2;
    for (var r = 0; r < 80; r++) {
      var f = (b & c) | (~b & 0x5A827999);
      var tmp = (rol(a, 5) + f + w[r]) | 0;
      a = b; b = c; c = tmp;
    }
    h0 = (h0 + a) | 0; h1 = (h1 + b) | 0; h2 = (h2 + c) | 0;
  }
  return (h0 ^ h1 ^ h2) & 0xFFFFFFF;
}
|js}

(* S16 date-format-tofte: calendar arithmetic + string assembly. *)
let s16_date_format_tofte =
  {js|
var month_names = ['Jan', 'Feb', 'Mar', 'Apr', 'May', 'Jun', 'Jul', 'Aug', 'Sep', 'Oct', 'Nov', 'Dec'];
function pad2(n) { return n < 10 ? '0' + n : '' + n; }
function formatDate(day_num) {
  var year = 1970 + Math.floor(day_num / 365);
  var day_of_year = day_num % 365;
  var month = Math.floor(day_of_year / 31);
  if (month > 11) { month = 11; }
  var day = (day_of_year % 31) + 1;
  var hour = (day_num * 7) % 24;
  var minute = (day_num * 13) % 60;
  return month_names[month] + ' ' + pad2(day) + ' ' + year + ' ' +
         pad2(hour) + ':' + pad2(minute);
}
function benchmark() {
  var h = 0;
  for (var d = 0; d < 120; d++) {
    var s = formatDate(d * 37);
    h = (h * 31 + s.length + s.charCodeAt(0) + s.charCodeAt(s.length - 1)) & 0xFFFFFF;
  }
  return h;
}
|js}

(* S17 date-format-xparb: mostly string/dispatch work (95% non-FTL). *)
let s17_date_format_xparb =
  {js|
var xparb_tokens = ['Y', 'm', 'd', 'H', 'i', 's'];
function fieldFor(token, seed) {
  if (token == 'Y') { return '' + (1970 + (seed % 60)); }
  if (token == 'm') { return '' + (1 + (seed % 12)); }
  if (token == 'd') { return '' + (1 + (seed % 28)); }
  if (token == 'H') { return '' + (seed % 24); }
  if (token == 'i') { return '' + (seed % 60); }
  return '' + (seed % 60);
}
function benchmark() {
  var out = '';
  for (var i = 0; i < 60; i++) {
    var s = '';
    for (var t = 0; t < xparb_tokens.length; t++) {
      s = s + fieldFor(xparb_tokens[t], i * 7 + t) + '-';
    }
    out = s;
  }
  var h = 0;
  for (var j = 0; j < out.length; j++) { h = (h + out.charCodeAt(j)) & 0xFFFF; }
  return h;
}
|js}

(* S18 math-cordic: CORDIC sin/cos — the paper's redundant-load showcase. *)
let s18_math_cordic =
  {js|
var cordic_angles = [];
var cordic_state = { x: 0, y: 0, targ: 0 };
function cordicInit() {
  var k = 1.0;
  for (var i = 0; i < 25; i++) {
    cordic_angles.push(Math.atan(k) * 65536.0);
    k = k / 2.0;
  }
}
function cordicsincos(target) {
  cordic_state.x = 1073741824 / 65536;
  cordic_state.y = 0;
  cordic_state.targ = target * 65536.0;
  var angle = 0.0;
  for (var step = 0; step < 25; step++) {
    var nx = cordic_state.x;
    if (cordic_state.targ > angle) {
      cordic_state.x = nx - (cordic_state.y >> step);
      cordic_state.y = (nx >> step) + cordic_state.y;
      angle += cordic_angles[step];
    } else {
      cordic_state.x = nx + (cordic_state.y >> step);
      cordic_state.y = cordic_state.y - (nx >> step);
      angle -= cordic_angles[step];
    }
  }
  return cordic_state.x + cordic_state.y;
}
function benchmark() {
  if (cordic_angles.length == 0) { cordicInit(); }
  var total = 0;
  for (var i = 0; i < 60; i++) {
    total = (total + cordicsincos(0.5 + i * 0.01)) & 0xFFFFFFF;
  }
  return total;
}
|js}

(* S19 math-partial-sums: series accumulation in doubles. *)
let s19_math_partial_sums =
  {js|
function partial(n) {
  var a1 = 0.0; var a2 = 0.0; var a3 = 0.0; var a4 = 0.0; var a5 = 0.0;
  var twothirds = 2.0 / 3.0;
  var alt = -1.0;
  for (var k = 1; k <= n; k++) {
    var k2 = k * k;
    var k3 = k2 * k;
    var sk = Math.sin(k);
    var ck = Math.cos(k);
    alt = -alt;
    a1 += Math.pow(twothirds, k - 1);
    a2 += 1.0 / (k3 * sk * sk);
    a3 += 1.0 / (k3 * ck * ck);
    a4 += 1.0 / k;
    a5 += alt / k;
  }
  return a1 + a2 + a3 + a4 + a5;
}
function benchmark() {
  var s = 0.0;
  for (var n = 64; n <= 256; n *= 2) { s += partial(n); }
  return Math.floor(s * 1e6);
}
|js}

(* S20 math-spectral-norm: matrix-free power iteration. *)
let s20_math_spectral_norm =
  {js|
function Ael(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1); }
function Au(u, v) {
  var n = u.length;
  for (var i = 0; i < n; i++) {
    var t = 0.0;
    for (var j = 0; j < n; j++) { t += Ael(i, j) * u[j]; }
    v[i] = t;
  }
}
function Atu(u, v) {
  var n = u.length;
  for (var i = 0; i < n; i++) {
    var t = 0.0;
    for (var j = 0; j < n; j++) { t += Ael(j, i) * u[j]; }
    v[i] = t;
  }
}
function AtAu(u, v, w) { Au(u, w); Atu(w, v); }
function benchmark() {
  var n = 16;
  var u = new Array(n); var v = new Array(n); var w = new Array(n);
  for (var i = 0; i < n; i++) { u[i] = 1.0; v[i] = 0.0; w[i] = 0.0; }
  for (var it = 0; it < 6; it++) { AtAu(u, v, w); AtAu(v, u, w); }
  var vBv = 0.0; var vv = 0.0;
  for (var k = 0; k < n; k++) { vBv += u[k] * v[k]; vv += v[k] * v[k]; }
  return Math.floor(Math.sqrt(vBv / vv) * 1e9);
}
|js}

(* S21 regexp-dna: pattern scanning over a DNA string (string-runtime heavy). *)
let s21_regexp_dna =
  {js|
var dna_seq = '';
function dnaInit() {
  var bases = 'acgt';
  var s = '';
  for (var i = 0; i < 600; i++) {
    s = s + bases.charAt((i * 7 + (i >> 3)) % 4);
  }
  dna_seq = s;
}
function countPattern(seq, pat) {
  var count = 0;
  var from = 0;
  while (true) {
    var idx = seq.substring(from, seq.length).indexOf(pat);
    if (idx < 0) { break; }
    count++;
    from = from + idx + 1;
  }
  return count;
}
function benchmark() {
  if (dna_seq.length == 0) { dnaInit(); }
  var total = 0;
  total += countPattern(dna_seq, 'at');
  total += countPattern(dna_seq, 'tg');
  total += countPattern(dna_seq, 'gc');
  total += countPattern(dna_seq, 'catg');
  return total;
}
|js}

(* S22 string-base64: table-driven encoding building a string. *)
let s22_string_base64 =
  {js|
var b64_chars = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/';
function toBase64(data) {
  var out = '';
  var i = 0;
  while (i + 2 < data.length) {
    var n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out = out + b64_chars.charAt((n >>> 18) & 63) + b64_chars.charAt((n >>> 12) & 63)
              + b64_chars.charAt((n >>> 6) & 63) + b64_chars.charAt(n & 63);
    i += 3;
  }
  return out;
}
function benchmark() {
  var data = new Array(120);
  for (var i = 0; i < 120; i++) { data[i] = (i * 37) & 0xFF; }
  var s = toBase64(data);
  var h = 0;
  for (var j = 0; j < s.length; j++) { h = (h * 31 + s.charCodeAt(j)) & 0xFFFFFF; }
  return h;
}
|js}

(* S23 string-fasta: weighted random sequence generation via string concat. *)
let s23_string_fasta =
  {js|
var fasta_last = 42;
function fastaRand(max) {
  fasta_last = (fasta_last * 3877 + 29573) % 139968;
  return max * fasta_last / 139968;
}
function benchmark() {
  fasta_last = 42;
  var codes = 'acgtBDHKMNRSVWY';
  var out = '';
  for (var i = 0; i < 240; i++) {
    var r = fastaRand(codes.length);
    out = out + codes.charAt(Math.floor(r));
  }
  var h = 0;
  for (var j = 0; j < out.length; j++) { h = (h + out.charCodeAt(j)) & 0xFFFF; }
  return h;
}
|js}

(* S24 string-tagcloud: parse-ish workload over delimited records. *)
let s24_string_tagcloud =
  {js|
var tagcloud_data = '';
function tagcloudInit() {
  var s = '';
  for (var i = 0; i < 60; i++) {
    s = s + 'tag' + i + ':' + ((i * 17) % 100) + ';';
  }
  tagcloud_data = s;
}
function benchmark() {
  if (tagcloud_data.length == 0) { tagcloudInit(); }
  var entries = tagcloud_data.split(';');
  var total = 0;
  for (var i = 0; i < entries.length; i++) {
    var e = entries[i];
    if (e.length == 0) { continue; }
    var colon = e.indexOf(':');
    var weight = parseInt(e.substring(colon + 1, e.length));
    total += weight;
  }
  return total;
}
|js}

(* S25 string-unpack-code: substring/indexOf-driven decompression-ish loop. *)
let s25_string_unpack_code =
  {js|
var packed_words = '';
function unpackInit() {
  var s = '';
  for (var i = 0; i < 80; i++) { s = s + 'w' + i + '|'; }
  packed_words = s;
}
function benchmark() {
  if (packed_words.length == 0) { unpackInit(); }
  var out = '';
  var from = 0;
  var count = 0;
  while (true) {
    var rest = packed_words.substring(from, packed_words.length);
    var bar = rest.indexOf('|');
    if (bar < 0) { break; }
    var word = rest.substring(0, bar);
    out = out + word.toUpperCase() + ' ';
    from += bar + 1;
    count++;
  }
  return count * 1000 + (out.length & 0xFF);
}
|js}

(* S26 string-validate-input: character-class validation of synthetic input. *)
let s26_string_validate_input =
  {js|
function isDigit(c) { return c >= 48 && c <= 57; }
function isAlpha(c) { return (c >= 97 && c <= 122) || (c >= 65 && c <= 90); }
function validateEmail(s) {
  var at = s.indexOf('@');
  if (at <= 0) { return false; }
  var dot = s.substring(at, s.length).indexOf('.');
  if (dot < 0) { return false; }
  for (var i = 0; i < at; i++) {
    var c = s.charCodeAt(i);
    if (!isAlpha(c) && !isDigit(c)) { return false; }
  }
  return true;
}
function benchmark() {
  var ok = 0;
  for (var i = 0; i < 60; i++) {
    var name = 'user' + i;
    var addr = name + '@example.com';
    if (validateEmail(addr)) { ok++; }
    if (validateEmail(name)) { ok += 100; }
  }
  return ok;
}
|js}

let all =
  [
    ("3d-cube", s01_3d_cube);
    ("3d-morph", s02_3d_morph);
    ("3d-raytrace", s03_3d_raytrace);
    ("access-binary-trees", s04_access_binary_trees);
    ("access-fannkuch", s05_access_fannkuch);
    ("access-nbody", s06_access_nbody);
    ("access-nsieve", s07_access_nsieve);
    ("bitops-3bit-bits-in-byte", s08_bitops_3bit_bits_in_byte);
    ("bitops-bits-in-byte", s09_bitops_bits_in_byte);
    ("bitops-bitwise-and", s10_bitops_bitwise_and);
    ("bitops-nsieve-bits", s11_bitops_nsieve_bits);
    ("controlflow-recursive", s12_controlflow_recursive);
    ("crypto-aes", s13_crypto_aes);
    ("crypto-md5", s14_crypto_md5);
    ("crypto-sha1", s15_crypto_sha1);
    ("date-format-tofte", s16_date_format_tofte);
    ("date-format-xparb", s17_date_format_xparb);
    ("math-cordic", s18_math_cordic);
    ("math-partial-sums", s19_math_partial_sums);
    ("math-spectral-norm", s20_math_spectral_norm);
    ("regexp-dna", s21_regexp_dna);
    ("string-base64", s22_string_base64);
    ("string-fasta", s23_string_fasta);
    ("string-tagcloud", s24_string_tagcloud);
    ("string-unpack-code", s25_string_unpack_code);
    ("string-validate-input", s26_string_validate_input);
  ]

(** Paper Table III: SunSpider benchmarks included in AvgS. *)
let avg_s_members = [ 1; 3; 4; 5; 6; 7; 10; 11; 12; 13; 14; 15; 16; 18; 19; 20 ]
