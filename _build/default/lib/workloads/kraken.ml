(** Kraken kernels (K01–K14): heavier, array-centric workloads (audio DSP,
    image filters, crypto, JSON) scaled down for the simulator. *)

(* K01 ai-astar: grid path search with open-list scanning. *)
let k01_ai_astar =
  {js|
var astar_w = 16;
var astar_h = 16;
function nodeCost(x, y, gx, gy) {
  var dx = x - gx; var dy = y - gy;
  return Math.sqrt(dx * dx + dy * dy);
}
function benchmark() {
  var w = astar_w; var h = astar_h;
  var gScore = new Array(w * h);
  var closed = new Array(w * h);
  for (var i = 0; i < w * h; i++) { gScore[i] = 1e9; closed[i] = false; }
  gScore[0] = 0;
  var expanded = 0;
  for (var step = 0; step < w * h; step++) {
    var best = -1; var bestF = 1e9;
    for (var n = 0; n < w * h; n++) {
      if (!closed[n] && gScore[n] < 1e9) {
        var f = gScore[n] + nodeCost(n % w, Math.floor(n / w), w - 1, h - 1);
        if (f < bestF) { bestF = f; best = n; }
      }
    }
    if (best < 0) { break; }
    closed[best] = true;
    expanded++;
    if (best == w * h - 1) { break; }
    var bx = best % w; var by = Math.floor(best / w);
    if (bx + 1 < w && gScore[best] + 1 < gScore[best + 1]) { gScore[best + 1] = gScore[best] + 1; }
    if (bx > 0 && gScore[best] + 1 < gScore[best - 1]) { gScore[best - 1] = gScore[best] + 1; }
    if (by + 1 < h && gScore[best] + 1 < gScore[best + w]) { gScore[best + w] = gScore[best] + 1; }
    if (by > 0 && gScore[best] + 1 < gScore[best - w]) { gScore[best - w] = gScore[best] + 1; }
  }
  return expanded;
}
|js}

(* K02 audio-beat-detection: mostly runtime-call heavy envelope work
   (one of the 95%-non-FTL Kraken members). *)
let k02_audio_beat_detection =
  {js|
function benchmark() {
  var hist = [];
  for (var i = 0; i < 80; i++) {
    hist.push(Math.abs(Math.sin(i * 0.3)) * 100);
  }
  var peaks = 0;
  for (var j = 1; j + 1 < hist.length; j++) {
    if (hist[j] > hist[j - 1] && hist[j] > hist[j + 1]) { peaks++; }
  }
  var label = 'peaks=' + peaks;
  return label.length * 100 + peaks;
}
|js}

(* K03 audio-dft: direct O(n^2) transform (non-FTL dominated variant). *)
let k03_audio_dft =
  {js|
function benchmark() {
  var n = 24;
  var re = new Array(n); var im = new Array(n);
  var sig = new Array(n);
  for (var i = 0; i < n; i++) { sig[i] = Math.sin(i * 0.7) + Math.sin(i * 1.3); }
  for (var k = 0; k < n; k++) {
    var sr = 0.0; var si = 0.0;
    for (var t = 0; t < n; t++) {
      var ang = 6.283185307179586 * k * t / n;
      sr += sig[t] * Math.cos(ang);
      si -= sig[t] * Math.sin(ang);
    }
    re[k] = sr; im[k] = si;
  }
  var power = 0.0;
  for (var m = 0; m < n; m++) { power += re[m] * re[m] + im[m] * im[m]; }
  return Math.floor(power * 1000);
}
|js}

(* K04 audio-fft: recursive radix-2 FFT (call-heavy: non-FTL dominated). *)
let k04_audio_fft =
  {js|
function fftPass(re, im, n, start, stride) {
  if (n == 1) { return; }
  var half = n >> 1;
  fftPass(re, im, half, start, stride * 2);
  fftPass(re, im, half, start + stride, stride * 2);
  for (var k = 0; k < half; k++) {
    var ang = -6.283185307179586 * k / n;
    var wr = Math.cos(ang); var wi = Math.sin(ang);
    var i0 = start + k * stride * 2;
    var i1 = i0 + stride;
    var tr = wr * re[i1] - wi * im[i1];
    var ti = wr * im[i1] + wi * re[i1];
    re[i1] = re[i0] - tr; im[i1] = im[i0] - ti;
    re[i0] = re[i0] + tr; im[i0] = im[i0] + ti;
  }
}
function benchmark() {
  var n = 32;
  var re = new Array(n); var im = new Array(n);
  for (var i = 0; i < n; i++) { re[i] = Math.cos(i * 0.31); im[i] = 0.0; }
  fftPass(re, im, n, 0, 1);
  var p = 0.0;
  for (var j = 0; j < n; j++) { p += re[j] * re[j] + im[j] * im[j]; }
  return Math.floor(p * 1000);
}
|js}

(* K05 audio-oscillator: waveform synthesis into sample buffers. *)
let k05_audio_oscillator =
  {js|
var osc_buffer = new Array(512);
function generate(freq, phase) {
  var sum = 0.0;
  for (var i = 0; i < 512; i++) {
    var v = Math.sin(phase + i * freq) * 0.7 + Math.sin(phase + i * freq * 2.0) * 0.3;
    osc_buffer[i] = v;
    sum += v * v;
  }
  return sum;
}
function benchmark() {
  var acc = 0.0;
  for (var f = 1; f <= 4; f++) {
    acc += generate(0.01 * f, f * 0.5);
  }
  return Math.floor(acc * 1000);
}
|js}

(* K06 imaging-darkroom: per-pixel brightness/contrast over an int image. *)
let k06_imaging_darkroom =
  {js|
var dark_pixels = new Array(1024);
var dark_init = 0;
function darkroomInit() {
  for (var i = 0; i < 1024; i++) { dark_pixels[i] = (i * 7919) & 0xFF; }
  dark_init = 1;
}
function benchmark() {
  if (!dark_init) { darkroomInit(); }
  var brightness = 12.0;
  var contrast = 1.25;
  var checksum = 0;
  for (var pass = 0; pass < 4; pass++) {
    for (var i = 0; i < 1024; i++) {
      var p = dark_pixels[i] + brightness;
      if (p > 255.0) { p = 255.0; }
      p = (p - 128.0) * contrast + 128.0;
      if (p > 255.0) { p = 255.0; }
      if (p < 0.0) { p = 0.0; }
      checksum = (checksum + Math.floor(p)) & 0xFFFFFF;
    }
  }
  return checksum;
}
|js}

(* K07 imaging-desaturate: RGB→gray conversion loop. *)
let k07_imaging_desaturate =
  {js|
var desat_rgb = new Array(768);
var desat_init = 0;
function desatInit() {
  for (var i = 0; i < 768; i++) { desat_rgb[i] = (i * 2654435761) & 0xFF; }
  desat_init = 1;
}
function benchmark() {
  if (!desat_init) { desatInit(); }
  var sum = 0;
  for (var pass = 0; pass < 4; pass++) {
    for (var p = 0; p < 256; p++) {
      var r = desat_rgb[p * 3];
      var g = desat_rgb[p * 3 + 1];
      var b = desat_rgb[p * 3 + 2];
      var gray = (r * 77 + g * 151 + b * 28) >> 8;
      sum = (sum + gray) & 0xFFFFFF;
    }
  }
  return sum;
}
|js}

(* K08 imaging-gaussian-blur: 2D convolution with a 3x3 kernel. *)
let k08_imaging_gaussian_blur =
  {js|
var blur_w = 24;
var blur_h = 24;
var blur_src = new Array(576);
var blur_dst = new Array(576);
var blur_init = 0;
function blurInit() {
  for (var i = 0; i < blur_w * blur_h; i++) { blur_src[i] = (i * 31) & 0xFF; }
  blur_init = 1;
}
function benchmark() {
  if (!blur_init) { blurInit(); }
  var w = blur_w; var h = blur_h;
  for (var y = 1; y < h - 1; y++) {
    for (var x = 1; x < w - 1; x++) {
      var acc = blur_src[(y - 1) * w + x - 1] + 2 * blur_src[(y - 1) * w + x] + blur_src[(y - 1) * w + x + 1]
              + 2 * blur_src[y * w + x - 1] + 4 * blur_src[y * w + x] + 2 * blur_src[y * w + x + 1]
              + blur_src[(y + 1) * w + x - 1] + 2 * blur_src[(y + 1) * w + x] + blur_src[(y + 1) * w + x + 1];
      blur_dst[y * w + x] = acc >> 4;
    }
  }
  var checksum = 0;
  for (var i = 0; i < w * h; i++) {
    var v = blur_dst[i];
    if (v == undefined) { v = 0; }
    checksum = (checksum + v) & 0xFFFFFF;
  }
  return checksum;
}
|js}

(* K09 json-parse-financial: tokenizer/parser over a JSON-ish string —
   dominated by string runtime (non-FTL). *)
let k09_json_parse_financial =
  {js|
var json_data = '';
function jsonInit() {
  var s = '';
  for (var i = 0; i < 40; i++) {
    s = s + 'id' + i + '=' + (i * 13 % 997) + '.' + (i % 100) + ',';
  }
  json_data = s;
}
function benchmark() {
  if (json_data.length == 0) { jsonInit(); }
  var fields = json_data.split(',');
  var total = 0.0;
  for (var i = 0; i < fields.length; i++) {
    var f = fields[i];
    if (f.length == 0) { continue; }
    var eq = f.indexOf('=');
    var v = parseFloat(f.substring(eq + 1, f.length));
    total += v;
  }
  return Math.floor(total * 100);
}
|js}

(* K10 json-stringify-tinderbox: object → string serialization (non-FTL). *)
let k10_json_stringify_tinderbox =
  {js|
function stringifyRecord(r) {
  return '{' + 'name:' + r.name + ',ok:' + r.ok + ',time:' + r.time + '}';
}
function benchmark() {
  var out = '';
  for (var i = 0; i < 40; i++) {
    var rec = { name: 'build' + i, ok: (i % 3) == 0, time: i * 17 };
    out = stringifyRecord(rec);
  }
  var h = 0;
  for (var j = 0; j < out.length; j++) { h = (h * 31 + out.charCodeAt(j)) & 0xFFFFFF; }
  return h;
}
|js}

(* K11 crypto-aes: larger state than S13, multiple blocks. *)
let k11_crypto_aes =
  {js|
var kaes_sbox = new Array(256);
var kaes_init = 0;
function kaesInit() {
  for (var i = 0; i < 256; i++) { kaes_sbox[i] = ((i * 13) ^ (i >> 3) ^ 0x3A) & 0xFF; }
  kaes_init = 1;
}
function encryptBlock(block, rounds) {
  for (var r = 0; r < rounds; r++) {
    for (var i = 0; i < block.length; i++) {
      block[i] = kaes_sbox[(block[i] ^ r) & 0xFF];
    }
    for (var c = 0; c + 3 < block.length; c += 4) {
      var a0 = block[c]; var a1 = block[c + 1]; var a2 = block[c + 2]; var a3 = block[c + 3];
      block[c] = (a0 ^ ((a1 << 1) | (a1 >> 7)) ^ c) & 0xFF;
      block[c + 1] = (a1 ^ ((a2 << 1) | (a2 >> 7)) ^ r) & 0xFF;
      block[c + 2] = (a2 ^ ((a3 << 1) | (a3 >> 7)) ^ 0x1B) & 0xFF;
      block[c + 3] = (a3 ^ ((a0 << 1) | (a0 >> 7))) & 0xFF;
    }
  }
}
function benchmark() {
  if (!kaes_init) { kaesInit(); }
  var h = 0;
  for (var b = 0; b < 6; b++) {
    var block = new Array(16);
    for (var i = 0; i < 16; i++) { block[i] = (b * 16 + i) * 3 & 0xFF; }
    encryptBlock(block, 10);
    for (var j = 0; j < 16; j++) { h = (h * 31 + block[j]) & 0xFFFFFF; }
  }
  return h;
}
|js}

(* K12 crypto-ccm: CBC-MAC + counter-mode combination. *)
let k12_crypto_ccm =
  {js|
function ccmMix(x, k) { return ((x ^ k) * 2654435761 >> 8) & 0xFF; }
function benchmark() {
  var msg = new Array(128);
  for (var i = 0; i < 128; i++) { msg[i] = (i * 101) & 0xFF; }
  var mac = 0;
  for (var j = 0; j < 128; j++) { mac = ccmMix(mac ^ msg[j], j & 0xFF); }
  var out = 0;
  for (var ctr = 0; ctr < 128; ctr++) {
    var key = ccmMix(ctr, 0x5A);
    out = (out + (msg[ctr] ^ key)) & 0xFFFFFF;
  }
  return out * 256 + mac;
}
|js}

(* K13 crypto-pbkdf2: iterated HMAC-ish key stretching. *)
let k13_crypto_pbkdf2 =
  {js|
function prf(state, salt) {
  var h = state | 0;
  for (var i = 0; i < 8; i++) {
    h = ((h << 5) - h + salt + i) | 0;
    h = h ^ (h >>> 13);
  }
  return h;
}
function benchmark() {
  var key = 0x1234;
  for (var iter = 0; iter < 400; iter++) {
    key = prf(key, iter & 0xFF);
  }
  return key & 0xFFFFFF;
}
|js}

(* K14 crypto-sha256-iterative: message-schedule expansion + rounds. *)
let k14_crypto_sha256_iterative =
  {js|
function rotr(x, n) { return (x >>> n) | (x << (32 - n)); }
function benchmark() {
  var w = new Array(64);
  for (var i = 0; i < 16; i++) { w[i] = (i * 0x9E3779B9) | 0; }
  var h0 = 0x6a09e667 | 0; var h1 = 0xbb67ae85 | 0;
  for (var block = 0; block < 8; block++) {
    for (var t = 16; t < 64; t++) {
      var s0 = rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >>> 3);
      var s1 = rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >>> 10);
      w[t] = (w[t - 16] + s0 + w[t - 7] + s1) | 0;
    }
    var a = h0; var b = h1;
    for (var r = 0; r < 64; r++) {
      var tmp = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) | 0;
      tmp = (tmp + w[r] + (a & b)) | 0;
      b = a; a = tmp;
    }
    h0 = (h0 + a) | 0; h1 = (h1 + b) | 0;
  }
  return (h0 ^ h1) & 0xFFFFFFF;
}
|js}

let all =
  [
    ("ai-astar", k01_ai_astar);
    ("audio-beat-detection", k02_audio_beat_detection);
    ("audio-dft", k03_audio_dft);
    ("audio-fft", k04_audio_fft);
    ("audio-oscillator", k05_audio_oscillator);
    ("imaging-darkroom", k06_imaging_darkroom);
    ("imaging-desaturate", k07_imaging_desaturate);
    ("imaging-gaussian-blur", k08_imaging_gaussian_blur);
    ("json-parse-financial", k09_json_parse_financial);
    ("json-stringify-tinderbox", k10_json_stringify_tinderbox);
    ("crypto-aes", k11_crypto_aes);
    ("crypto-ccm", k12_crypto_ccm);
    ("crypto-pbkdf2", k13_crypto_pbkdf2);
    ("crypto-sha256-iterative", k14_crypto_sha256_iterative);
  ]

(** Paper Table III: Kraken benchmarks included in AvgS. *)
let avg_s_members = [ 1; 5; 6; 7; 8; 11; 12; 13; 14 ]
