lib/workloads/registry.ml: Hashtbl Kraken List Nomap_bytecode Nomap_interp Nomap_runtime Printf Shootout Sunspider
