lib/workloads/sunspider.ml:
