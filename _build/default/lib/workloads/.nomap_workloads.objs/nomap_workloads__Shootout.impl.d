lib/workloads/shootout.ml:
