lib/workloads/kraken.ml:
