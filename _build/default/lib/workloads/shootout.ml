(** Shootout benchmarks (paper Figure 1): the classic language-comparison
    kernels, used to position MiniJS-under-our-JIT against the interpreter
    stand-ins for Python/PHP/Ruby and the ideal-native "C" bound. *)

let ary =
  {js|
function benchmark() {
  var n = 300;
  var x = new Array(n);
  var y = new Array(n);
  for (var i = 0; i < n; i++) { x[i] = i + 1; y[i] = 0; }
  for (var k = 0; k < 4; k++) {
    for (var j = n - 1; j >= 0; j--) { y[j] += x[j]; }
  }
  return y[0] + y[n - 1];
}
|js}

let binarytrees =
  {js|
function BTNode(l, r) { this.l = l; this.r = r; }
function makeTree(depth) {
  if (depth <= 0) { return new BTNode(null, null); }
  return new BTNode(makeTree(depth - 1), makeTree(depth - 1));
}
function checkTree(t) {
  if (t.l == null) { return 1; }
  return 1 + checkTree(t.l) + checkTree(t.r);
}
function benchmark() {
  var check = 0;
  for (var d = 2; d <= 5; d++) { check += checkTree(makeTree(d)); }
  return check;
}
|js}

let fannkuchredux =
  {js|
function benchmark() {
  var n = 6;
  var p = new Array(n); var q = new Array(n); var s = new Array(n);
  for (var i = 0; i < n; i++) { p[i] = i; q[i] = i; s[i] = i; }
  var sum = 0; var maxflips = 0;
  var sign = 1;
  var iterations = 0;
  while (iterations < 250) {
    iterations++;
    var q0 = p[0];
    if (q0 != 0) {
      for (var i2 = 1; i2 < n; i2++) { q[i2] = p[i2]; }
      var flips = 1;
      while (true) {
        var qq = q[q0];
        if (qq == 0) { break; }
        q[q0] = q0;
        if (q0 >= 3) {
          var lo = 1; var hi = q0 - 1;
          while (lo < hi) {
            var t = q[lo]; q[lo] = q[hi]; q[hi] = t;
            lo++; hi--;
          }
        }
        q0 = qq;
        flips++;
      }
      sum += sign * flips;
      if (flips > maxflips) { maxflips = flips; }
    }
    if (sign == 1) {
      var t1 = p[1]; p[1] = p[0]; p[0] = t1;
      sign = -1;
    } else {
      var t2 = p[1]; p[1] = p[2]; p[2] = t2;
      sign = 1;
      var broke = false;
      for (var i3 = 2; i3 < n - 1; i3++) {
        var sx = s[i3];
        if (sx != 0) { s[i3] = sx - 1; broke = true; break; }
        if (i3 == n - 2) { return sum * 1000 + maxflips; }
        s[i3] = i3;
        var t0 = p[0];
        for (var j = 0; j <= i3; j++) { p[j] = p[j + 1]; }
        p[i3 + 1] = t0;
      }
      if (!broke) { }
    }
  }
  return sum * 1000 + maxflips;
}
|js}

let fibo =
  {js|
function fib(n) {
  if (n < 2) { return 1; }
  return fib(n - 2) + fib(n - 1);
}
function benchmark() { return fib(13); }
|js}

let harmonic =
  {js|
function benchmark() {
  var partial = 0.0;
  for (var d = 1; d <= 4000; d++) {
    partial += 1.0 / d;
  }
  return Math.floor(partial * 1e9);
}
|js}

let hash_bench =
  {js|
function benchmark() {
  var o = {};
  o.c0 = 0; o.c1 = 0; o.c2 = 0; o.c3 = 0; o.c4 = 0;
  o.c5 = 0; o.c6 = 0; o.c7 = 0; o.c8 = 0; o.c9 = 0;
  var keys = ['c0', 'c1', 'c2', 'c3', 'c4', 'c5', 'c6', 'c7', 'c8', 'c9'];
  var total = 0;
  for (var i = 0; i < 200; i++) {
    var k = keys[i % 10];
    if (k == 'c3') { total++; }
  }
  for (var j = 0; j < 200; j++) {
    o.c3 = o.c3 + 1;
    total += o.c3 & 1;
  }
  return total;
}
|js}

let heapsort =
  {js|
var heap_rand_state = 42;
function heapRandom() {
  heap_rand_state = (heap_rand_state * 3877 + 29573) % 139968;
  return heap_rand_state / 139968.0;
}
function heapsortKernel(n, ra) {
  var l = (n >> 1) + 1;
  var ir = n;
  var rra = 0.0;
  while (true) {
    if (l > 1) {
      l = l - 1;
      rra = ra[l];
    } else {
      rra = ra[ir];
      ra[ir] = ra[1];
      ir = ir - 1;
      if (ir == 1) { ra[1] = rra; return; }
    }
    var i = l;
    var j = l * 2;
    while (j <= ir) {
      if (j < ir && ra[j] < ra[j + 1]) { j++; }
      if (rra < ra[j]) {
        ra[i] = ra[j];
        i = j;
        j = j + i;
      } else {
        j = ir + 1;
      }
    }
    ra[i] = rra;
  }
}
function benchmark() {
  heap_rand_state = 42;
  var n = 250;
  var ra = new Array(n + 1);
  ra[0] = 0.0;
  for (var i = 1; i <= n; i++) { ra[i] = heapRandom(); }
  heapsortKernel(n, ra);
  return Math.floor(ra[n] * 1e9);
}
|js}

let matrix =
  {js|
function mkmatrix(rows, cols) {
  var m = new Array(rows);
  var count = 1;
  for (var i = 0; i < rows; i++) {
    m[i] = new Array(cols);
    for (var j = 0; j < cols; j++) { m[i][j] = count; count++; }
  }
  return m;
}
function mmult(rows, cols, m1, m2, m3) {
  for (var i = 0; i < rows; i++) {
    for (var j = 0; j < cols; j++) {
      var val = 0;
      for (var k = 0; k < cols; k++) { val += m1[i][k] * m2[k][j]; }
      m3[i][j] = val;
    }
  }
}
function benchmark() {
  var size = 8;
  var m1 = mkmatrix(size, size);
  var m2 = mkmatrix(size, size);
  var m3 = mkmatrix(size, size);
  for (var it = 0; it < 4; it++) { mmult(size, size, m1, m2, m3); }
  return m3[0][0] + m3[2][3] + m3[size - 1][size - 1];
}
|js}

let nbody =
  {js|
var sx = [];
var sy = [];
var svx = [];
var svy = [];
var smass = [39.478417604357432, 0.0377236791740387, 0.01128632612525443];
function resetSystem() {
  sx = [0.0, 4.84143144246472090, 8.34336671824457987];
  sy = [0.0, -1.16032004402742839, 4.12479856412430479];
  svx = [0.0, 0.00166007664274403694, -0.00276742510726862411];
  svy = [0.0, 0.00769901118419740425, 0.00499852801234917238];
}
function nbodyAdvance(dt) {
  for (var i = 0; i < 3; i++) {
    for (var j = i + 1; j < 3; j++) {
      var dx = sx[i] - sx[j];
      var dy = sy[i] - sy[j];
      var dist = Math.sqrt(dx * dx + dy * dy);
      var mag = dt / (dist * dist * dist);
      svx[i] -= dx * smass[j] * mag;
      svy[i] -= dy * smass[j] * mag;
      svx[j] += dx * smass[i] * mag;
      svy[j] += dy * smass[i] * mag;
    }
  }
  for (var k = 0; k < 3; k++) { sx[k] += dt * svx[k]; sy[k] += dt * svy[k]; }
}
function benchmark() {
  resetSystem();
  for (var step = 0; step < 80; step++) { nbodyAdvance(0.01); }
  var e = 0.0;
  for (var i = 0; i < 3; i++) { e += 0.5 * smass[i] * (svx[i] * svx[i] + svy[i] * svy[i]); }
  return Math.floor(e * 1e9);
}
|js}

let random_bench =
  {js|
var rand_last = 42;
function genRandom(max) {
  rand_last = (rand_last * 3877 + 29573) % 139968;
  return max * rand_last / 139968;
}
function benchmark() {
  rand_last = 42;
  var r = 0.0;
  for (var i = 0; i < 3000; i++) { r = genRandom(100.0); }
  return Math.floor(r * 1e9);
}
|js}

let sieve =
  {js|
function benchmark() {
  var flags = new Array(1001);
  var count = 0;
  for (var pass = 0; pass < 3; pass++) {
    count = 0;
    for (var i = 2; i <= 1000; i++) { flags[i] = true; }
    for (var p = 2; p <= 1000; p++) {
      if (flags[p]) {
        count++;
        for (var m = p + p; m <= 1000; m += p) { flags[m] = false; }
      }
    }
  }
  return count;
}
|js}

let takfp =
  {js|
function takfp(x, y, z) {
  if (y >= x) { return z; }
  return takfp(takfp(x - 1.0, y, z), takfp(y - 1.0, z, x), takfp(z - 1.0, x, y));
}
function benchmark() {
  return Math.floor(takfp(8.0, 4.0, 0.0) * 1000);
}
|js}

let all =
  [
    ("ary", ary);
    ("binarytrees", binarytrees);
    ("fannkuchredux", fannkuchredux);
    ("fibo", fibo);
    ("harmonic", harmonic);
    ("hash", hash_bench);
    ("heapsort", heapsort);
    ("matrix", matrix);
    ("nbody", nbody);
    ("random", random_bench);
    ("sieve", sieve);
    ("takfp", takfp);
  ]
