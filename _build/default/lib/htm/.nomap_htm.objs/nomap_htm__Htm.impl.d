lib/htm/htm.ml: List Nomap_cache Nomap_lir Nomap_runtime
