lib/htm/htm.mli: Nomap_cache Nomap_lir Nomap_runtime
