(** Classic set-associative LRU cache simulator.

    Used by the HTM validation experiment and available for memory-timing
    studies; the transactional capacity logic itself uses {!Footprint},
    which tracks distinct lines without needing replacement decisions. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  (* For each set, lines in LRU order (most recent first). *)
  data : int list array;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~ways ~line_bytes =
  let sets = size_bytes / line_bytes / ways in
  { sets; ways; line_bytes; data = Array.make sets []; hits = 0; misses = 0 }

let l1d () = create ~size_bytes:(32 * 1024) ~ways:8 ~line_bytes:64
let l2 () = create ~size_bytes:(256 * 1024) ~ways:8 ~line_bytes:64

let reset t =
  Array.fill t.data 0 (Array.length t.data) [];
  t.hits <- 0;
  t.misses <- 0

(** Access the line containing [addr]; returns [true] on hit.  The line is
    installed/promoted to MRU either way. *)
let access t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let entries = t.data.(set) in
  let hit = List.mem line entries in
  let without = List.filter (fun l -> l <> line) entries in
  let trimmed =
    if List.length without >= t.ways then
      List.filteri (fun i _ -> i < t.ways - 1) without
    else without
  in
  t.data.(set) <- line :: trimmed;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  hit

(** Access a [bytes]-sized object; true iff all its lines hit. *)
let access_range t ~addr ~bytes =
  let first = addr / t.line_bytes in
  let last = (addr + max 1 bytes - 1) / t.line_bytes in
  let all_hit = ref true in
  for line = first to last do
    if not (access t (line * t.line_bytes)) then all_hit := false
  done;
  !all_hit

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
