(** Transactional footprint tracking against a set-associative cache
    geometry.

    Hardware transactional memory keeps a transaction's speculative lines in
    the cache; the transaction aborts when a set would need more ways than
    the cache has.  This structure records the distinct cache lines touched,
    bucketed by set index, and answers the two questions the paper's Table
    IV and the RTM capacity model need: total footprint (KB) and the maximum
    associativity any set requires. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  per_set : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (** set -> tags *)
  mutable lines : int;
  mutable overflowed : bool;
}

let create ~sets ~ways ~line_bytes =
  { sets; ways; line_bytes; per_set = Hashtbl.create 64; lines = 0; overflowed = false }

(** Geometry helpers for the paper's machine (64B lines).  [scale] divides
    the set count: the workloads are scaled down from the originals, so the
    experiments scale the modeled HTM capacity equally to keep the paper's
    footprint/capacity ratios (see DESIGN.md). *)
let l1d ?(scale = 1) () = create ~sets:(max 1 (32 * 1024 / 64 / 8 / scale)) ~ways:8 ~line_bytes:64
let l2 ?(scale = 1) () = create ~sets:(max 1 (256 * 1024 / 64 / 8 / scale)) ~ways:8 ~line_bytes:64

let clear t =
  Hashtbl.reset t.per_set;
  t.lines <- 0;
  t.overflowed <- false

(** Record an access of [bytes] bytes at [addr]; returns [true] if the
    footprint still fits (every touched set needs <= ways lines). *)
let touch t ~addr ~bytes =
  let first = addr / t.line_bytes in
  let last = (addr + max 1 bytes - 1) / t.line_bytes in
  for line = first to last do
    let set = line mod t.sets in
    let tags =
      match Hashtbl.find_opt t.per_set set with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.per_set set tbl;
        tbl
    in
    if not (Hashtbl.mem tags line) then begin
      Hashtbl.replace tags line ();
      t.lines <- t.lines + 1;
      if Hashtbl.length tags > t.ways then t.overflowed <- true
    end
  done;
  not t.overflowed

let bytes t = t.lines * t.line_bytes
let kb t = float_of_int (bytes t) /. 1024.0

(** Maximum number of ways any set needs for this footprint. *)
let max_ways t = Hashtbl.fold (fun _ tags acc -> max acc (Hashtbl.length tags)) t.per_set 0

let fits t = not t.overflowed
