lib/cache/footprint.mli: Hashtbl
