lib/cache/cache.ml: Array List
