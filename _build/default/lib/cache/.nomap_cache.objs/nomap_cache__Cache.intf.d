lib/cache/cache.mli:
