lib/cache/footprint.ml: Hashtbl
