(** Set-associative LRU cache simulator (used by validation experiments;
    the transactional capacity logic uses {!Footprint}). *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  data : int list array;
  mutable hits : int;
  mutable misses : int;
}

val create : size_bytes:int -> ways:int -> line_bytes:int -> t

(** Skylake L1D: 32KB, 8-way, 64B lines. *)
val l1d : unit -> t

(** Skylake L2: 256KB, 8-way, 64B lines. *)
val l2 : unit -> t

val reset : t -> unit

(** Access the line containing [addr]; [true] on hit.  Installs/promotes to
    MRU either way. *)
val access : t -> int -> bool

(** Access a [bytes]-sized object; [true] iff all its lines hit. *)
val access_range : t -> addr:int -> bytes:int -> bool

val miss_rate : t -> float
