(** Transactional footprint tracking against a set-associative cache
    geometry.

    HTM keeps a transaction's speculative lines in the cache; the
    transaction aborts when any set would need more ways than the cache
    has.  This records the distinct lines touched, bucketed by set, and
    answers the two questions Table IV and the RTM capacity model need:
    total footprint and the maximum associativity any set requires. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  per_set : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable lines : int;
  mutable overflowed : bool;
}

val create : sets:int -> ways:int -> line_bytes:int -> t

(** Skylake L1D (32KB, 8-way, 64B lines); [scale] divides the set count to
    match scaled-down workloads (DESIGN.md §6). *)
val l1d : ?scale:int -> unit -> t

(** Skylake L2 (256KB, 8-way, 64B lines). *)
val l2 : ?scale:int -> unit -> t

val clear : t -> unit

(** Record an access; [false] once any set exceeds its ways (sticky). *)
val touch : t -> addr:int -> bytes:int -> bool

(** Distinct bytes touched (whole lines). *)
val bytes : t -> int

val kb : t -> float

(** Maximum ways any one set needs for this footprint. *)
val max_ways : t -> int

val fits : t -> bool
