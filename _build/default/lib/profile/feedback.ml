(** Type feedback collected by the Baseline tier.

    JavaScriptCore's Baseline JIT embeds value-profiling and inline caches;
    the DFG/FTL tiers read that feedback to decide what to speculate on and
    which checks to emit.  We model the same flow: the Baseline executor
    calls [record_*] at profiled sites (one site per bytecode index), and
    the optimizing tiers query the accumulated [site] data. *)

type value_class =
  | Cls_int
  | Cls_num  (** non-int32 double *)
  | Cls_str
  | Cls_bool
  | Cls_obj
  | Cls_arr
  | Cls_fun
  | Cls_other

let class_of_value (v : Nomap_runtime.Value.t) =
  match v with
  | Int _ -> Cls_int
  | Num _ -> Cls_num
  | Str _ -> Cls_str
  | Bool _ -> Cls_bool
  | Obj _ -> Cls_obj
  | Arr _ -> Cls_arr
  | Fun _ -> Cls_fun
  | Undef | Null | Hole -> Cls_other

type prop_action =
  | Load_slot of int
  | Store_slot of int
  | Transition of int * int  (** resulting shape id, slot written *)

(** Feedback for one bytecode site.  Lists are capped; overflow marks the
    site megamorphic / polymorphic beyond what the tiers specialize for. *)
type site = {
  mutable classes : value_class list;  (** operand/receiver classes seen *)
  mutable result_classes : value_class list;
  mutable shapes : (int * prop_action) list;  (** shape id -> cached action *)
  mutable megamorphic : bool;
  mutable overflowed : bool;  (** int32 arithmetic overflowed here *)
  mutable saw_hole : bool;
  mutable saw_oob : bool;
  mutable saw_elongation : bool;  (** element store grew the array *)
  mutable callees : int list;  (** function ids called from this site *)
  mutable count : int;
}

let max_poly = 4

let fresh_site () =
  {
    classes = [];
    result_classes = [];
    shapes = [];
    megamorphic = false;
    overflowed = false;
    saw_hole = false;
    saw_oob = false;
    saw_elongation = false;
    callees = [];
    count = 0;
  }

type func_profile = {
  sites : site array;
  mutable call_count : int;
  mutable ftl_call_count : int;  (** calls executed in optimized code *)
  (* loop header pc -> (times entered, total iterations) *)
  loop_stats : (int, int ref * int ref) Hashtbl.t;
}

let create_func_profile (f : Nomap_bytecode.Opcode.func) =
  {
    sites = Array.init (Array.length f.code) (fun _ -> fresh_site ());
    call_count = 0;
    ftl_call_count = 0;
    loop_stats = Hashtbl.create 4;
  }

type t = { profiles : func_profile array }

let create (prog : Nomap_bytecode.Opcode.program) =
  { profiles = Array.map create_func_profile prog.funcs }

let func_profile t fid = t.profiles.(fid)
let site t fid pc = t.profiles.(fid).sites.(pc)

let add_capped lst x ~cap =
  if List.mem x lst then lst
  else if List.length lst >= cap then lst
  else x :: lst

let record_class site v =
  site.count <- site.count + 1;
  let c = class_of_value v in
  if not (List.mem c site.classes) then
    site.classes <- add_capped site.classes c ~cap:max_poly

let record_result site v =
  let c = class_of_value v in
  if not (List.mem c site.result_classes) then
    site.result_classes <- add_capped site.result_classes c ~cap:max_poly

let record_shape site shape_id action =
  site.count <- site.count + 1;
  if not (List.mem_assoc shape_id site.shapes) then begin
    if List.length site.shapes >= max_poly then site.megamorphic <- true
    else site.shapes <- (shape_id, action) :: site.shapes
  end

let record_callee site fid =
  if not (List.mem fid site.callees) then
    site.callees <- add_capped site.callees fid ~cap:max_poly

let record_overflow site = site.overflowed <- true
let record_hole site = site.saw_hole <- true
let record_oob site = site.saw_oob <- true
let record_elongation site = site.saw_elongation <- true

let record_loop_iteration fp header =
  match Hashtbl.find_opt fp.loop_stats header with
  | Some (_, iters) -> incr iters
  | None -> Hashtbl.add fp.loop_stats header (ref 0, ref 1)

let record_loop_entry fp header =
  match Hashtbl.find_opt fp.loop_stats header with
  | Some (entries, _) -> incr entries
  | None -> Hashtbl.add fp.loop_stats header (ref 1, ref 0)

(** Average iterations per entry for the loop headed at [header]; the NoMap
    transaction-placement pass uses this for footprint estimation. *)
let avg_trip_count fp header =
  match Hashtbl.find_opt fp.loop_stats header with
  | Some (entries, iters) when !entries > 0 -> float_of_int !iters /. float_of_int !entries
  | Some (_, iters) -> float_of_int !iters
  | None -> 0.0

(** Did this site only ever see int32 values (and never overflow)? *)
let int_only site = site.classes = [ Cls_int ] && not site.overflowed

let number_only site =
  site.classes <> [] && List.for_all (fun c -> c = Cls_int || c = Cls_num) site.classes

(** The unique shape observed at a monomorphic property site. *)
let monomorphic_shape site =
  match site.shapes with
  | [ (shape_id, action) ] when not site.megamorphic -> Some (shape_id, action)
  | _ -> None

(** The unique callee observed at a monomorphic call site. *)
let monomorphic_callee site =
  match site.callees with [ fid ] -> Some fid | _ -> None
