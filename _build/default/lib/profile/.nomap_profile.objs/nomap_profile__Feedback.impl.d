lib/profile/feedback.ml: Array Hashtbl List Nomap_bytecode Nomap_runtime
