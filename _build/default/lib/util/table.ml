(** Plain-text table renderer for paper-style tables and figures.

    All experiment drivers print through this module so that the output in
    EXPERIMENTS.md is uniform.  Columns are sized to their widest cell. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* stored reversed *)
  aligns : align list;
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  { title; header; rows = []; aligns }

let add_row t row = t.rows <- row :: t.rows

let add_rowf t fmt = Fmt.kstr (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let cell_width rows col =
  List.fold_left
    (fun acc row -> match List.nth_opt row col with Some c -> max acc (String.length c) | None -> acc)
    0 rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = List.init ncols (fun c -> cell_width all c) in
  let aligns =
    List.init ncols (fun c -> match List.nth_opt t.aligns c with Some a -> a | None -> Right)
  in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let s = match List.nth_opt row c with Some s -> s | None -> "" in
          pad (List.nth aligns c) w s)
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)

(** Render a histogram-style figure: one labelled row per benchmark with
    stacked segment values, as textual stand-in for the paper's bar charts. *)
let figure ~title ~header rows =
  let t = create ~title ~header () in
  List.iter (fun r -> add_row t r) rows;
  render t

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let fmt_pct ?(digits = 1) v = Printf.sprintf "%.*f%%" digits v
let fmt_x ?(digits = 2) v = Printf.sprintf "%.*fx" digits v
