(** Growable array (OCaml 5.1 has no Dynarray yet). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * Array.length t.data) t.dummy in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0
