(** Growable array (OCaml 5.1 has no Dynarray yet). *)

type 'a t

(** [create ~dummy] makes an empty vector; [dummy] pads unused capacity. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int

(** Raise [Invalid_argument] when out of range. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Append; returns the new element's index. *)
val push : 'a t -> 'a -> int

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
