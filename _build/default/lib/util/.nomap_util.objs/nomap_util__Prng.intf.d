lib/util/prng.mli:
