lib/util/stats.mli:
