lib/util/vec.mli:
