lib/util/table.ml: Buffer Fmt List Printf String
