(** CFG analyses over LIR: predecessors, reverse postorder, dominators
    (Cooper–Harvey–Kennedy), and the natural-loop forest used by LICM,
    bounds-check combining and NoMap transaction placement. *)

let nblocks f = Nomap_util.Vec.length f.Lir.blocks

(** Recompute every block's [preds] from terminators. *)
let compute_preds f =
  Lir.iter_blocks f (fun b -> b.Lir.preds <- []);
  Lir.iter_blocks f (fun b ->
      List.iter
        (fun s ->
          let sb = Lir.block f s in
          if not (List.mem b.Lir.bid sb.Lir.preds) then
            sb.Lir.preds <- b.Lir.bid :: sb.Lir.preds)
        (Lir.successors b.Lir.term))

(** Reverse postorder of reachable blocks, entry first. *)
let rpo f =
  let n = nblocks f in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Lir.successors (Lir.block f b).Lir.term);
      order := b :: !order
    end
  in
  dfs f.Lir.entry;
  !order

let reachable f =
  let n = nblocks f in
  let r = Array.make n false in
  List.iter (fun b -> r.(b) <- true) (rpo f);
  r

type doms = {
  idom : int array;  (** immediate dominator; entry maps to itself; -1 unreachable *)
  order : int list;  (** reverse postorder *)
  rpo_index : int array;
}

let compute_doms f =
  compute_preds f;
  let n = nblocks f in
  let order = rpo f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) order;
  let idom = Array.make n (-1) in
  idom.(f.Lir.entry) <- f.Lir.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> f.Lir.entry then begin
          let preds =
            List.filter (fun p -> idom.(p) <> -1) (Lir.block f b).Lir.preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      order
  done;
  { idom; order; rpo_index }

(** Does block [a] dominate block [b]? *)
let dominates doms a b =
  let rec go b = if b = a then true else if doms.idom.(b) = b || doms.idom.(b) = -1 then false else go doms.idom.(b) in
  go b

(* ------------------------------------------------------------------ *)
(* Natural loops *)

type loop = {
  header : int;
  body : int list;  (** blocks in the loop, header included *)
  latches : int list;  (** sources of back edges *)
  exits : (int * int) list;  (** (block in loop, successor outside) *)
  depth : int;  (** nesting depth, 1 = outermost *)
  parent : int option;  (** index into the loop list *)
}

let in_loop loop b = List.mem b loop.body

(** All natural loops, with nesting computed.  Loops sharing a header are
    merged (standard practice). *)
let natural_loops f doms =
  let reach = reachable f in
  (* Find back edges: b -> h where h dominates b. *)
  let back_edges = ref [] in
  Lir.iter_blocks f (fun b ->
      if reach.(b.Lir.bid) then
        List.iter
          (fun s -> if dominates doms s b.Lir.bid then back_edges := (b.Lir.bid, s) :: !back_edges)
          (Lir.successors b.Lir.term));
  (* Group by header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (b, h) ->
      let cur = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h (b :: cur))
    !back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        (* Body = header + all blocks reaching a latch without going through
           the header. *)
        let body = Hashtbl.create 8 in
        Hashtbl.replace body header ();
        let rec add b =
          if not (Hashtbl.mem body b) then begin
            Hashtbl.replace body b ();
            List.iter add (Lir.block f b).Lir.preds
          end
        in
        List.iter add latches;
        let body_list = Hashtbl.fold (fun b () acc -> b :: acc) body [] in
        let exits =
          List.concat_map
            (fun b ->
              List.filter_map
                (fun s -> if Hashtbl.mem body s then None else Some (b, s))
                (Lir.successors (Lir.block f b).Lir.term))
            body_list
        in
        { header; body = List.sort compare body_list; latches; exits; depth = 0; parent = None }
        :: acc)
      by_header []
  in
  (* Sort by body size so parents (larger) come after children when scanning;
     compute nesting: parent = smallest strictly-enclosing loop. *)
  let arr = Array.of_list (List.sort (fun a b -> compare (List.length a.body) (List.length b.body)) loops) in
  let n = Array.length arr in
  let result = Array.copy arr in
  for i = 0 to n - 1 do
    let parent = ref None in
    for j = i + 1 to n - 1 do
      if !parent = None && arr.(j).header <> arr.(i).header && in_loop arr.(j) arr.(i).header
      then parent := Some j
    done;
    result.(i) <- { arr.(i) with parent = !parent }
  done;
  (* Depth by following parents. *)
  let rec depth_of i =
    match result.(i).parent with None -> 1 | Some j -> 1 + depth_of j
  in
  Array.to_list (Array.mapi (fun i l -> { l with depth = depth_of i }) result)

(** Outermost loops (depth 1). *)
let outermost loops = List.filter (fun l -> l.depth = 1) loops

(** The preheader of [loop]: the unique out-of-loop predecessor of the
    header, if there is exactly one and it has a single successor. *)
let preheader f loop =
  let outside =
    List.filter (fun p -> not (in_loop loop p)) (Lir.block f loop.header).Lir.preds
  in
  match outside with
  | [ p ] when Lir.successors (Lir.block f p).Lir.term = [ loop.header ] -> Some p
  | _ -> None

(** Split the edge [from] -> [to_]: insert a fresh block on it and retarget
    the phi inputs of [to_].  Returns the new block's id. *)
let split_edge f ~from ~to_ =
  let nb = Lir.new_block f in
  nb.Lir.term <- Lir.Jump to_;
  let fb = Lir.block f from in
  let redirect t = if t = to_ then nb.Lir.bid else t in
  (* A conditional branch may reach [to_] on both edges; we split the edge as
     a unit (both arms retargeted would merge them — reject that case). *)
  (match fb.Lir.term with
  | Lir.Jump t when t = to_ -> fb.Lir.term <- Lir.Jump (redirect t)
  | Lir.Br (c, t, e) when t = to_ || e = to_ ->
    if t = to_ && e = to_ then invalid_arg "split_edge: duplicate edge";
    fb.Lir.term <- Lir.Br (c, redirect t, redirect e)
  | Lir.Jump _ | Lir.Br _ | Lir.Ret _ | Lir.Unreachable ->
    (* A silent no-op here once hid a pass operating on stale edges. *)
    invalid_arg "split_edge: no such edge");
  List.iter
    (fun v ->
      let i = Lir.instr f v in
      match i.Lir.kind with
      | Lir.Phi ins ->
        i.Lir.kind <-
          Lir.Phi (List.map (fun (p, x) -> if p = from then (nb.Lir.bid, x) else (p, x)) ins)
      | _ -> ())
    (Lir.block f to_).Lir.instrs;
  compute_preds f;
  nb.Lir.bid

(** Create (or find) a preheader block for [loop]: a dedicated block that
    all out-of-loop predecessors jump through.  Returns its id. *)
let ensure_preheader f loop =
  match preheader f loop with
  | Some p -> p
  | None ->
    let ph = Lir.new_block f in
    ph.Lir.term <- Lir.Jump loop.header;
    let header_block = Lir.block f loop.header in
    let outside = List.filter (fun p -> not (in_loop loop p)) header_block.Lir.preds in
    (* Redirect out-of-loop predecessors to the preheader. *)
    List.iter
      (fun p ->
        let pb = Lir.block f p in
        let redirect t = if t = loop.header then ph.Lir.bid else t in
        pb.Lir.term <-
          (match pb.Lir.term with
          | Lir.Jump t -> Lir.Jump (redirect t)
          | Lir.Br (c, t, e) -> Lir.Br (c, redirect t, redirect e)
          | t -> t))
      outside;
    (* Retarget phi inputs from outside preds to the preheader. *)
    List.iter
      (fun v ->
        let i = Lir.instr f v in
        match i.Lir.kind with
        | Lir.Phi ins ->
          i.Lir.kind <-
            Lir.Phi
              (List.map (fun (p, x) -> if List.mem p outside then (ph.Lir.bid, x) else (p, x)) ins)
        | _ -> ())
      header_block.Lir.instrs;
    compute_preds f;
    ph.Lir.bid
