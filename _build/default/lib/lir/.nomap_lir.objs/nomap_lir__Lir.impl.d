lib/lir/lir.ml: List Nomap_jsir Nomap_runtime Nomap_util
