lib/lir/verify.ml: Array Cfg Hashtbl Lir List Nomap_util Printer Printf String
