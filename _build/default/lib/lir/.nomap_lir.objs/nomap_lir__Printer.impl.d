lib/lir/printer.ml: Buffer Lir List Nomap_jsir Nomap_runtime Printf String
