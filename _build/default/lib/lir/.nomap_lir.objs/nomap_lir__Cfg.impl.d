lib/lir/cfg.ml: Array Hashtbl Lir List Nomap_util
