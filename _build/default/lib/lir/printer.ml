(** Textual dump of LIR functions, for tests and debugging. *)

let cmp_to_string = function
  | Lir.Ceq -> "=="
  | Lir.Cne -> "!="
  | Lir.Clt -> "<"
  | Lir.Cle -> "<="
  | Lir.Cgt -> ">"
  | Lir.Cge -> ">="

let exit_to_string (e : Lir.exit) =
  Printf.sprintf "%s(smp%d@%d)"
    (match e.ekind with Lir.Deopt -> "deopt" | Lir.Abort -> "abort")
    e.smp.Lir.smp_id e.smp.Lir.resume_pc

let rt_to_string = function
  | Lir.Rt_binop op -> "binop" ^ Nomap_jsir.Ast.binop_to_string op
  | Lir.Rt_unop op -> "unop" ^ Nomap_jsir.Ast.unop_to_string op
  | Lir.Rt_get_prop p -> "get_prop:" ^ p
  | Lir.Rt_set_prop p -> "set_prop:" ^ p
  | Lir.Rt_get_elem -> "get_elem"
  | Lir.Rt_set_elem -> "set_elem"
  | Lir.Rt_get_length -> "get_length"
  | Lir.Rt_method m -> "method:" ^ m
  | Lir.Rt_intrinsic i -> Nomap_runtime.Intrinsics.name i

let vs l = String.concat ", " (List.map (Printf.sprintf "v%d") l)

let kind_to_string = function
  | Lir.Nop -> "nop"
  | Lir.Param r -> Printf.sprintf "param r%d" r
  | Lir.Const c -> Printf.sprintf "const %s" (Nomap_runtime.Value.to_js_string c)
  | Lir.Phi ins ->
    "phi "
    ^ String.concat ", " (List.map (fun (b, v) -> Printf.sprintf "[b%d: v%d]" b v) ins)
  | Lir.Iadd (a, b) -> Printf.sprintf "iadd v%d, v%d" a b
  | Lir.Isub (a, b) -> Printf.sprintf "isub v%d, v%d" a b
  | Lir.Imul (a, b) -> Printf.sprintf "imul v%d, v%d" a b
  | Lir.Ineg a -> Printf.sprintf "ineg v%d" a
  | Lir.Iadd_wrap (a, b) -> Printf.sprintf "iadd.wrap v%d, v%d" a b
  | Lir.Isub_wrap (a, b) -> Printf.sprintf "isub.wrap v%d, v%d" a b
  | Lir.Fadd (a, b) -> Printf.sprintf "fadd v%d, v%d" a b
  | Lir.Fsub (a, b) -> Printf.sprintf "fsub v%d, v%d" a b
  | Lir.Fmul (a, b) -> Printf.sprintf "fmul v%d, v%d" a b
  | Lir.Fdiv (a, b) -> Printf.sprintf "fdiv v%d, v%d" a b
  | Lir.Fmod (a, b) -> Printf.sprintf "fmod v%d, v%d" a b
  | Lir.Fneg a -> Printf.sprintf "fneg v%d" a
  | Lir.Band (a, b) -> Printf.sprintf "and v%d, v%d" a b
  | Lir.Bor (a, b) -> Printf.sprintf "or v%d, v%d" a b
  | Lir.Bxor (a, b) -> Printf.sprintf "xor v%d, v%d" a b
  | Lir.Bnot a -> Printf.sprintf "not32 v%d" a
  | Lir.Shl (a, b) -> Printf.sprintf "shl v%d, v%d" a b
  | Lir.Shr (a, b) -> Printf.sprintf "shr v%d, v%d" a b
  | Lir.Ushr (a, b) -> Printf.sprintf "ushr v%d, v%d" a b
  | Lir.Cmp (c, a, b) -> Printf.sprintf "cmp%s v%d, v%d" (cmp_to_string c) a b
  | Lir.Not a -> Printf.sprintf "not v%d" a
  | Lir.Load_slot (o, s) -> Printf.sprintf "load_slot v%d[%d]" o s
  | Lir.Store_slot (o, s, x) -> Printf.sprintf "store_slot v%d[%d] <- v%d" o s x
  | Lir.Store_transition (o, name, s, x) ->
    Printf.sprintf "store_transition v%d +%s [%d] <- v%d" o name s x
  | Lir.Load_elem (a, i) -> Printf.sprintf "load_elem v%d[v%d]" a i
  | Lir.Store_elem (a, i, x) -> Printf.sprintf "store_elem v%d[v%d] <- v%d" a i x
  | Lir.Load_length a -> Printf.sprintf "load_length v%d" a
  | Lir.Str_length a -> Printf.sprintf "str_length v%d" a
  | Lir.Load_char_code (s, i) -> Printf.sprintf "load_char v%d[v%d]" s i
  | Lir.Load_global g -> Printf.sprintf "load_global %d" g
  | Lir.Store_global (g, x) -> Printf.sprintf "store_global %d <- v%d" g x
  | Lir.Check_int (a, e) -> Printf.sprintf "check_int v%d %s" a (exit_to_string e)
  | Lir.Check_number (a, e) -> Printf.sprintf "check_number v%d %s" a (exit_to_string e)
  | Lir.Check_string (a, e) -> Printf.sprintf "check_string v%d %s" a (exit_to_string e)
  | Lir.Check_array (a, e) -> Printf.sprintf "check_array v%d %s" a (exit_to_string e)
  | Lir.Check_shape (a, s, e) -> Printf.sprintf "check_shape v%d #%d %s" a s (exit_to_string e)
  | Lir.Check_fun_eq (a, fid, e) ->
    Printf.sprintf "check_fun v%d = f%d %s" a fid (exit_to_string e)
  | Lir.Check_bounds (a, i, e) ->
    Printf.sprintf "check_bounds v%d[v%d] %s" a i (exit_to_string e)
  | Lir.Check_str_bounds (a, i, e) ->
    Printf.sprintf "check_str_bounds v%d[v%d] %s" a i (exit_to_string e)
  | Lir.Check_not_hole (a, i, e) ->
    Printf.sprintf "check_not_hole v%d[v%d] %s" a i (exit_to_string e)
  | Lir.Check_overflow (a, e) -> Printf.sprintf "check_overflow v%d %s" a (exit_to_string e)
  | Lir.Check_cond (a, d, e) -> Printf.sprintf "check_cond v%d=%b %s" a d (exit_to_string e)
  | Lir.Call_func (fid, args) -> Printf.sprintf "call f%d(%s)" fid (vs args)
  | Lir.Ctor_call (fid, args) -> Printf.sprintf "ctor f%d(%s)" fid (vs args)
  | Lir.Call_method (fid, this, args) ->
    Printf.sprintf "call_method f%d this=v%d (%s)" fid this (vs args)
  | Lir.Call_runtime (rt, recv, args) ->
    Printf.sprintf "runtime %s recv=v%d (%s)" (rt_to_string rt) recv (vs args)
  | Lir.Intrinsic (i, args) ->
    Printf.sprintf "intrinsic %s(%s)" (Nomap_runtime.Intrinsics.name i) (vs args)
  | Lir.Alloc_object -> "alloc_object"
  | Lir.Alloc_array n -> Printf.sprintf "alloc_array v%d" n
  | Lir.Tx_begin smp -> Printf.sprintf "tx_begin (smp%d@%d)" smp.Lir.smp_id smp.Lir.resume_pc
  | Lir.Tx_end -> "tx_end"

let term_to_string = function
  | Lir.Jump b -> Printf.sprintf "jump b%d" b
  | Lir.Br (c, t, e) -> Printf.sprintf "br v%d ? b%d : b%d" c t e
  | Lir.Ret None -> "ret"
  | Lir.Ret (Some v) -> Printf.sprintf "ret v%d" v
  | Lir.Unreachable -> "unreachable"

let func_to_string (f : Lir.func) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lir function (bytecode fid=%d, tx_aware=%b, entry=b%d)\n" f.Lir.fid
       f.Lir.tx_aware f.Lir.entry);
  Lir.iter_blocks f (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "b%d:  ; preds: %s\n" b.Lir.bid
           (String.concat "," (List.map (Printf.sprintf "b%d") b.Lir.preds)));
      List.iter
        (fun v ->
          let i = Lir.instr f v in
          if i.Lir.kind <> Lir.Nop then
            Buffer.add_string buf
              (Printf.sprintf "  v%d = %s\n" i.Lir.id (kind_to_string i.Lir.kind)))
        b.Lir.instrs;
      Buffer.add_string buf (Printf.sprintf "  %s\n" (term_to_string b.Lir.term)));
  Buffer.contents buf
