(** Overflow-check elision for truncated arithmetic — JavaScriptCore's
    handling of the ubiquitous [(a + b) | 0] crypto/bitops idiom.

    If the result of a speculated int32 add/sub feeds *only* bitwise
    operations (which ToInt32-truncate their operands anyway), then a
    wrapped int32 result is indistinguishable from the correct double
    result: the overflow check can be dropped and the operation compiled as
    a flag-free wrapping instruction.  (Not legal for multiply: a wrapped
    product differs from the double product's ToInt32 once the exact product
    exceeds 2^53.)

    The wrapping form also matters for the Sticky Overflow Flag hardware: a
    flag-setting add here would raise SOF spuriously and abort every
    transaction, so the compiler must emit the non-flagging variant (on
    POWER: [add] instead of [addo]). *)

module L = Nomap_lir.Lir

(* Truncating consumers: bitwise ops ToInt32 their operands, and wrapping
   int ops (produced by earlier elision rounds) are modular too — running
   to a fixpoint propagates truncation backwards through (a+b-c)|0 chains,
   like JSC's backwards UseKind propagation. *)
let is_truncating = function
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ | L.Ushr _
  | L.Iadd_wrap _ | L.Isub_wrap _ -> true
  | _ -> false

(** One elision round; returns the number of overflow checks removed. *)
let run_once f =
  (* users.(v) = kinds of the instructions using v; smp_used.(v) = appears in
     a deopt live map (the Baseline tier could observe the value: keep). *)
  let n = Nomap_util.Vec.length f.L.instrs in
  let users = Array.make n [] in
  let smp_used = Array.make n false in
  let term_used = Array.make n false in
  L.iter_instrs f (fun _ i ->
      List.iter (fun u -> users.(u) <- i.L.kind :: users.(u)) (L.uses i.L.kind);
      List.iter (fun u -> smp_used.(u) <- true) (L.smp_uses i.L.kind));
  L.iter_blocks f (fun b ->
      match b.L.term with
      | L.Br (c, _, _) -> term_used.(c) <- true
      | L.Ret (Some r) -> term_used.(r) <- true
      | _ -> ());
  let victims = ref [] in
  L.iter_instrs f (fun _ i ->
      match i.L.kind with
      | L.Check_overflow (raw, _) -> (
        let raw_i = L.instr f raw in
        let wrap_kind =
          match raw_i.L.kind with
          | L.Iadd (a, b) -> Some (L.Iadd_wrap (a, b))
          | L.Isub (a, b) -> Some (L.Isub_wrap (a, b))
          | _ -> None
        in
        match wrap_kind with
        | Some wk
          when (not smp_used.(i.L.id))
               && (not term_used.(i.L.id))
               && users.(i.L.id) <> []
               && List.for_all is_truncating users.(i.L.id)
               (* The raw op must have no other observer. *)
               && List.length users.(raw) = 1 ->
          victims := (i.L.id, raw, wk) :: !victims
        | _ -> ())
      | _ -> ());
  List.iter (fun (_, raw, wk) -> (L.instr f raw).L.kind <- wk) !victims;
  Passes.delete_and_replace_all f
    (List.map (fun (check, raw, _) -> (check, raw)) !victims);
  List.length !victims


(** Run to a fixpoint (each round can expose further truncation chains). *)
let run f =
  let total = ref 0 in
  let rec go () =
    let n = run_once f in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  !total
