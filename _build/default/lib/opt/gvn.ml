(** Global value numbering.

    - Pure computations (arithmetic, comparisons, constants) and pure
      value-predicate checks (int/number/string/array/fun-eq/overflow) are
      numbered over the dominator tree: a dominated duplicate is deleted and
      its uses rewired to the dominating instance.  Deduplicating a check
      this way is *check elimination*, which JavaScriptCore performs too —
      it requires no code motion, so SMPs do not block it.
    - Memory reads (loads, and the checks that read object/array metadata:
      shape, bounds, holes) are numbered only within a basic block, and the
      table is invalidated by aliasing stores, by clobbering calls and — the
      paper's key restriction — by deopt-exit checks (Stack Map Points act
      as full memory barriers).  Inside NoMap transactions checks are
      abort-exit and do not invalidate, which is how the redundant-load
      elimination the paper reports for S18 becomes possible. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg

let find leader v =
  let rec go v = if leader.(v) = v then v else go leader.(v) in
  go v

(* Key for globally-numberable (pure) expressions. *)
let pure_key leader kind =
  let l v = string_of_int (find leader v) in
  let comm tag a b =
    let a = find leader a and b = find leader b in
    let lo = min a b and hi = max a b in
    Some (Printf.sprintf "%s:%d,%d" tag lo hi)
  in
  match kind with
  | L.Const c -> (
    match c with
    | Nomap_runtime.Value.Int i -> Some (Printf.sprintf "ci:%d" i)
    | Nomap_runtime.Value.Num fl -> Some (Printf.sprintf "cf:%h" fl)
    | Nomap_runtime.Value.Bool b -> Some (Printf.sprintf "cb:%b" b)
    | Nomap_runtime.Value.Str s -> Some (Printf.sprintf "cs:%s" s.Nomap_runtime.Value.sdata)
    | Nomap_runtime.Value.Undef -> Some "cu"
    | Nomap_runtime.Value.Null -> Some "cn"
    | Nomap_runtime.Value.Fun fid -> Some (Printf.sprintf "cfun:%d" fid)
    | _ -> None)
  | L.Iadd (a, b) -> comm "iadd" a b
  | L.Isub (a, b) -> Some ("isub:" ^ l a ^ "," ^ l b)
  | L.Iadd_wrap (a, b) -> comm "iaddw" a b
  | L.Isub_wrap (a, b) -> Some ("isubw:" ^ l a ^ "," ^ l b)
  | L.Imul (a, b) -> comm "imul" a b
  | L.Ineg a -> Some ("ineg:" ^ l a)
  | L.Fadd (a, b) -> comm "fadd" a b
  | L.Fsub (a, b) -> Some ("fsub:" ^ l a ^ "," ^ l b)
  | L.Fmul (a, b) -> comm "fmul" a b
  | L.Fdiv (a, b) -> Some ("fdiv:" ^ l a ^ "," ^ l b)
  | L.Fmod (a, b) -> Some ("fmod:" ^ l a ^ "," ^ l b)
  | L.Fneg a -> Some ("fneg:" ^ l a)
  | L.Band (a, b) -> comm "band" a b
  | L.Bor (a, b) -> comm "bor" a b
  | L.Bxor (a, b) -> comm "bxor" a b
  | L.Bnot a -> Some ("bnot:" ^ l a)
  | L.Shl (a, b) -> Some ("shl:" ^ l a ^ "," ^ l b)
  | L.Shr (a, b) -> Some ("shr:" ^ l a ^ "," ^ l b)
  | L.Ushr (a, b) -> Some ("ushr:" ^ l a ^ "," ^ l b)
  | L.Cmp (c, a, b) ->
    let tag =
      match c with
      | L.Ceq -> "ceq"
      | L.Cne -> "cne"
      | L.Clt -> "clt"
      | L.Cle -> "cle"
      | L.Cgt -> "cgt"
      | L.Cge -> "cge"
    in
    Some (tag ^ ":" ^ l a ^ "," ^ l b)
  | L.Not a -> Some ("not:" ^ l a)
  (* Pure value-predicate checks (no memory read). *)
  | L.Check_int (a, _) -> Some ("cki:" ^ l a)
  | L.Check_number (a, _) -> Some ("ckn:" ^ l a)
  | L.Check_string (a, _) -> Some ("cks:" ^ l a)
  | L.Check_array (a, _) -> Some ("cka:" ^ l a)
  | L.Check_fun_eq (a, fid, _) -> Some (Printf.sprintf "ckf:%s=%d" (l a) fid)
  | L.Check_overflow (a, _) -> Some ("cko:" ^ l a)
  | _ -> None

(* Key + alias class for block-locally-numberable memory reads. *)
let load_key leader kind =
  let l v = string_of_int (find leader v) in
  match kind with
  | L.Load_slot (o, s) -> Some (Printf.sprintf "ls:%s.%d" (l o) s, L.A_slot s)
  | L.Load_elem (a, i) -> Some (Printf.sprintf "le:%s[%s]" (l a) (l i), L.A_elem)
  | L.Load_length a -> Some ("ll:" ^ l a, L.A_array_header)
  | L.Str_length a -> Some ("sl:" ^ l a, L.A_string)
  | L.Load_char_code (s, i) -> Some (Printf.sprintf "lc:%s[%s]" (l s) (l i), L.A_string)
  | L.Load_global g -> Some (Printf.sprintf "lg:%d" g, L.A_global g)
  | L.Check_shape (o, sid, _) -> Some (Printf.sprintf "cksh:%s#%d" (l o) sid, L.A_shape)
  | L.Check_bounds (a, i, _) -> Some (Printf.sprintf "ckb:%s[%s]" (l a) (l i), L.A_array_header)
  | L.Check_str_bounds (a, i, _) -> Some (Printf.sprintf "cksb:%s[%s]" (l a) (l i), L.A_string)
  | L.Check_not_hole (a, i, _) -> Some (Printf.sprintf "ckh:%s[%s]" (l a) (l i), L.A_elem)
  | _ -> None

(** Run GVN; returns the number of instructions removed. *)
let run f =
  let doms = Cfg.compute_doms f in
  let n = Nomap_util.Vec.length f.L.instrs in
  let leader = Array.init n Fun.id in
  let table : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let victims = ref [] in
  let children = Array.make (Cfg.nblocks f) [] in
  Array.iteri
    (fun b idom -> if idom >= 0 && idom <> b then children.(idom) <- b :: children.(idom))
    doms.Cfg.idom;
  let rec visit blk =
    let pushed = ref [] in
    let loads : (string, int * L.alias_class) Hashtbl.t = Hashtbl.create 16 in
    let invalidate_loads cls_opt =
      match cls_opt with
      | None -> Hashtbl.reset loads
      | Some cls ->
        let keep =
          Hashtbl.fold
            (fun key (w, lcls) acc ->
              if L.may_alias cls lcls then acc else (key, (w, lcls)) :: acc)
            loads []
        in
        Hashtbl.reset loads;
        List.iter (fun (key, e) -> Hashtbl.replace loads key e) keep
    in
    List.iter
      (fun v ->
        let i = L.instr f v in
        let kind = i.L.kind in
        (match pure_key leader kind with
        | Some key -> (
          match Hashtbl.find_opt table key with
          | Some w ->
            leader.(v) <- w;
            victims := v :: !victims
          | None ->
            Hashtbl.add table key v;
            pushed := key :: !pushed)
        | None -> (
          match load_key leader kind with
          | Some (key, cls) -> (
            match Hashtbl.find_opt loads key with
            | Some (w, _) ->
              leader.(v) <- w;
              victims := v :: !victims
            | None -> Hashtbl.replace loads key (v, cls))
          | None -> ()));
        (* Apply this instruction's clobbering effect to the local table. *)
        if L.is_smp_barrier kind then invalidate_loads None
        else
          match L.memory_effect kind with
          | L.Eff_store cls -> invalidate_loads (Some cls)
          | L.Eff_clobber -> invalidate_loads None
          | L.Eff_none | L.Eff_load _ | L.Eff_alloc -> ())
      (L.block f blk).L.instrs;
    List.iter visit children.(blk);
    List.iter (Hashtbl.remove table) !pushed
  in
  visit f.L.entry;
  let removed = List.length !victims in
  (* The leader chains may point through other victims; resolve fully and
     apply the whole substitution in one pass over the function. *)
  Passes.delete_and_replace_all f (List.map (fun v -> (v, find leader v)) !victims);
  removed
