(** Shared pass utilities: deletion, insertion, use counting. *)

module L = Nomap_lir.Lir

(** Delete instruction [v], rewiring every use to [replacement]. *)
let delete_and_replace f v ~replacement =
  let i = L.instr f v in
  if i.L.block >= 0 then begin
    let b = L.block f i.L.block in
    b.L.instrs <- List.filter (fun x -> x <> v) b.L.instrs
  end;
  i.L.kind <- L.Nop;
  i.L.block <- -1;
  L.replace_uses f ~old_v:v ~new_v:replacement

(** Delete all [victims], rewiring uses through the mapping in one pass. *)
let delete_and_replace_all f (victims : (L.v * L.v) list) =
  if victims <> [] then begin
    let map = Hashtbl.create (List.length victims) in
    List.iter (fun (v, r) -> Hashtbl.replace map v r) victims;
    (* Resolve chains (a victim replaced by another victim). *)
    let rec resolve v =
      match Hashtbl.find_opt map v with Some w when w <> v -> resolve w | _ -> v
    in
    List.iter
      (fun (v, _) ->
        let i = L.instr f v in
        if i.L.block >= 0 then begin
          let b = L.block f i.L.block in
          b.L.instrs <- List.filter (fun x -> x <> v) b.L.instrs
        end;
        i.L.kind <- L.Nop;
        i.L.block <- -1)
      victims;
    L.apply_substitution f resolve
  end

(** Delete instruction [v] outright (no uses may remain). *)
let delete f v =
  let i = L.instr f v in
  if i.L.block >= 0 then begin
    let b = L.block f i.L.block in
    b.L.instrs <- List.filter (fun x -> x <> v) b.L.instrs
  end;
  i.L.kind <- L.Nop;
  i.L.block <- -1

(** Append instruction [v] at the end of block [blk] (before terminator). *)
let append_to_block f v blk =
  let i = L.instr f v in
  i.L.block <- blk;
  let b = L.block f blk in
  b.L.instrs <- b.L.instrs @ [ v ]

(** Insert instruction [v] at the head of block [blk], after any phis. *)
let prepend_to_block f v blk =
  let i = L.instr f v in
  i.L.block <- blk;
  let b = L.block f blk in
  let rec insert = function
    | x :: rest when (match (L.instr f x).L.kind with L.Phi _ -> true | _ -> false) ->
      x :: insert rest
    | rest -> v :: rest
  in
  b.L.instrs <- insert b.L.instrs

(** Insert [v] immediately before [anchor] in its block. *)
let insert_before f v ~anchor =
  let ai = L.instr f anchor in
  let i = L.instr f v in
  i.L.block <- ai.L.block;
  let b = L.block f ai.L.block in
  let rec ins = function
    | [] -> [ v ]
    | x :: rest when x = anchor -> v :: x :: rest
    | x :: rest -> x :: ins rest
  in
  b.L.instrs <- ins b.L.instrs

(** Number of uses of each value (including SMP live maps and terminators). *)
let use_counts f =
  let n = Nomap_util.Vec.length f.L.instrs in
  let counts = Array.make n 0 in
  let bump v = counts.(v) <- counts.(v) + 1 in
  L.iter_instrs f (fun _ i ->
      List.iter bump (L.uses i.L.kind);
      List.iter bump (L.smp_uses i.L.kind));
  L.iter_blocks f (fun b ->
      match b.L.term with
      | L.Br (c, _, _) -> bump c
      | L.Ret (Some r) -> bump r
      | _ -> ());
  counts

(** Does the loop contain a deopt-exit check (a Stack Map Point)?  This is
    the paper's optimization blocker: when true, memory motion in/out of the
    loop is illegal because the Baseline tier may resume mid-loop and must
    observe memory exactly as its own execution would have left it. *)
let loop_has_smp f (loop : Nomap_lir.Cfg.loop) =
  List.exists
    (fun bid ->
      List.exists
        (fun v -> L.is_smp_barrier (L.kind_of f v))
        (L.block f bid).L.instrs)
    loop.Nomap_lir.Cfg.body

(** Memory behaviour of the loop: (any store/clobber, clobber-only). *)
let loop_clobbers f (loop : Nomap_lir.Cfg.loop) =
  let stores = ref [] in
  let clobber = ref false in
  let alloc = ref false in
  List.iter
    (fun bid ->
      List.iter
        (fun v ->
          match L.memory_effect (L.kind_of f v) with
          | L.Eff_store cls -> stores := cls :: !stores
          | L.Eff_clobber -> clobber := true
          | L.Eff_alloc -> alloc := true
          | L.Eff_none | L.Eff_load _ -> ())
        (L.block f bid).L.instrs)
    loop.Nomap_lir.Cfg.body;
  (!stores, !clobber, !alloc)
