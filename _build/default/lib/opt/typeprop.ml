(** Forward type inference over SSA values (a small sparse conditional type
    propagation) followed by redundant-check elimination: a check whose
    input provably satisfies its predicate is deleted and its uses rewired
    to the input.

    This models the check-elimination JavaScriptCore already performs
    (TypeCheckHoistingPhase and friends); crucially it is *dataflow*, not
    code motion, so it is equally legal with or without SMPs — the checks it
    cannot prove away are exactly the residual checks the paper measures. *)

module L = Nomap_lir.Lir

type ty = Bot | Tint | Tnum | Tbool | Tstr | Tarr | Tobj of int option | Tfun | Tany

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Tint, Tint -> Tint
  | (Tint | Tnum), (Tint | Tnum) -> Tnum
  | Tbool, Tbool -> Tbool
  | Tstr, Tstr -> Tstr
  | Tarr, Tarr -> Tarr
  | Tobj a, Tobj b -> if a = b then Tobj a else Tobj None
  | Tfun, Tfun -> Tfun
  | _ -> Tany

let of_const (c : Nomap_runtime.Value.t) =
  match c with
  | Int _ -> Tint
  | Num _ -> Tnum
  | Str _ -> Tstr
  | Bool _ -> Tbool
  | Arr _ -> Tarr
  | Obj o -> Tobj (Some o.Nomap_runtime.Value.shape.Nomap_runtime.Shape.id)
  | Fun _ -> Tfun
  | Undef | Null | Hole -> Tany

let transfer types = function
  | L.Const c -> of_const c
  | L.Phi ins -> List.fold_left (fun acc (_, v) -> join acc types.(v)) Bot ins
  | L.Iadd _ | L.Isub _ | L.Imul _ | L.Ineg _ | L.Iadd_wrap _ | L.Isub_wrap _
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ -> Tint
  | L.Ushr _ -> Tnum
  | L.Fadd _ | L.Fsub _ | L.Fmul _ | L.Fdiv _ | L.Fmod _ | L.Fneg _ -> Tnum
  | L.Cmp _ | L.Not _ -> Tbool
  | L.Load_length _ | L.Str_length _ | L.Load_char_code _ -> Tint
  | L.Check_int (v, _) -> join Bot (match types.(v) with Tint -> Tint | _ -> Tint)
  | L.Check_number (v, _) -> (match types.(v) with Tint -> Tint | _ -> Tnum)
  | L.Check_string _ -> Tstr
  | L.Check_array _ -> Tarr
  | L.Check_shape (_, s, _) -> Tobj (Some s)
  | L.Check_fun_eq _ -> Tfun
  | L.Check_bounds _ | L.Check_str_bounds _ | L.Check_not_hole _ -> Tint
  | L.Check_overflow (v, _) -> (match types.(v) with Bot -> Bot | _ -> Tint)
  | L.Check_cond (v, _, _) -> types.(v)
  | L.Alloc_object -> Tobj None
  | L.Alloc_array _ -> Tarr
  | L.Ctor_call _ -> Tobj None
  | L.Intrinsic (Nomap_runtime.Intrinsics.Global_is_nan, _) -> Tbool
  | L.Intrinsic _ -> Tnum
  | _ -> Tany

(** Infer a type for every SSA value (fixpoint over phis). *)
let infer f =
  let n = Nomap_util.Vec.length f.L.instrs in
  let types = Array.make n Bot in
  let changed = ref true in
  while !changed do
    changed := false;
    L.iter_instrs f (fun _ i ->
        let t = transfer types i.L.kind in
        let t' = join types.(i.L.id) t in
        if t' <> types.(i.L.id) then begin
          types.(i.L.id) <- t';
          changed := true
        end)
  done;
  types

let satisfies types kind =
  match kind with
  | L.Check_int (v, _) -> types.(v) = Tint
  | L.Check_number (v, _) -> ( match types.(v) with Tint | Tnum -> true | _ -> false)
  | L.Check_string (v, _) -> types.(v) = Tstr
  | L.Check_array (v, _) -> types.(v) = Tarr
  | L.Check_shape (v, s, _) -> types.(v) = Tobj (Some s)
  | _ -> false

(** Remove checks whose predicate the type analysis discharges.  Returns the
    number of checks removed. *)
let run f =
  let types = infer f in
  let removed = ref 0 in
  let victims = ref [] in
  L.iter_instrs f (fun _ i ->
      if satisfies types i.L.kind then
        match L.checked_value i.L.kind with
        | Some operand -> victims := (i.L.id, operand) :: !victims
        | None -> ());
  removed := List.length !victims;
  Passes.delete_and_replace_all f !victims;
  !removed
