(** Pass pipelines per tier.

    DFG runs a light pipeline (type propagation, value numbering, DCE); FTL
    runs the full set including code motion and promotion — our analogue of
    LLVM -O2 versus the DFG's own optimizer (paper §II-A). *)

type stats = {
  mutable checks_removed : int;
  mutable overflow_elided : int;
  mutable gvn_removed : int;
  mutable licm_hoisted : int;
  mutable promoted : int;
  mutable dce_removed : int;
}

let empty_stats () =
  {
    checks_removed = 0;
    overflow_elided = 0;
    gvn_removed = 0;
    licm_hoisted = 0;
    promoted = 0;
    dce_removed = 0;
  }

(** Pass toggles, for ablation studies: every knob defaults to on. *)
type knobs = {
  typeprop : bool;
  elide : bool;
  gvn : bool;
  licm : bool;
  promote : bool;
  dce : bool;
}

let all_on = { typeprop = true; elide = true; gvn = true; licm = true; promote = true; dce = true }

(* Type propagation runs first: the redundant type checks it removes hold
   stack maps whose live sets would otherwise pin intermediates and block
   overflow-check elision. *)
let dfg ?(stats = empty_stats ()) ?(knobs = all_on) f =
  if knobs.typeprop then stats.checks_removed <- stats.checks_removed + Typeprop.run f;
  if knobs.elide then stats.overflow_elided <- stats.overflow_elided + Elide.run f;
  if knobs.gvn then stats.gvn_removed <- stats.gvn_removed + Gvn.run f;
  if knobs.dce then stats.dce_removed <- stats.dce_removed + Dce.run f;
  stats

let ftl ?(stats = empty_stats ()) ?(knobs = all_on) f =
  if knobs.typeprop then stats.checks_removed <- stats.checks_removed + Typeprop.run f;
  if knobs.elide then stats.overflow_elided <- stats.overflow_elided + Elide.run f;
  if knobs.gvn then stats.gvn_removed <- stats.gvn_removed + Gvn.run f;
  if knobs.licm then stats.licm_hoisted <- stats.licm_hoisted + Licm.run f;
  if knobs.promote then stats.promoted <- stats.promoted + Promote.run f;
  (* Motion exposes new redundancies; clean up. *)
  if knobs.gvn then stats.gvn_removed <- stats.gvn_removed + Gvn.run f;
  if knobs.dce then stats.dce_removed <- stats.dce_removed + Dce.run f;
  stats
