(** Dead code elimination.

    An instruction is live if it has a side effect (stores, calls, checks,
    transaction markers), is used by a live instruction, appears in a Deopt
    stack map (an SMP keeps its live map alive — the register-pressure cost
    the paper describes; Abort exits keep nothing), or feeds a terminator.
    Everything else is deleted. *)

module L = Nomap_lir.Lir

let run f =
  let n = Nomap_util.Vec.length f.L.instrs in
  let live = Array.make n false in
  let worklist = ref [] in
  let mark v =
    if not live.(v) then begin
      live.(v) <- true;
      worklist := v :: !worklist
    end
  in
  (* Roots: side-effecting instructions and terminator operands. *)
  L.iter_instrs f (fun _ i ->
      if i.L.kind <> L.Nop && not (L.removable_if_unused i.L.kind) then mark i.L.id);
  L.iter_blocks f (fun b ->
      match b.L.term with
      | L.Br (c, _, _) -> mark c
      | L.Ret (Some r) -> mark r
      | _ -> ());
  (* Propagate through uses and SMP live maps. *)
  while !worklist <> [] do
    match !worklist with
    | [] -> ()
    | v :: rest ->
      worklist := rest;
      let k = L.kind_of f v in
      List.iter mark (L.uses k);
      List.iter mark (L.smp_uses k)
  done;
  (* Sweep. *)
  let removed = ref 0 in
  L.iter_blocks f (fun b ->
      let keep, drop = List.partition (fun v -> live.(v)) b.L.instrs in
      List.iter
        (fun v ->
          let i = L.instr f v in
          if i.L.kind <> L.Nop then incr removed;
          i.L.kind <- L.Nop;
          i.L.block <- -1)
        drop;
      b.L.instrs <- keep);
  !removed
