(** Scalar promotion (store sinking) — the paper's motivating example
    (Figure 4): a loop accumulating into [obj.sum] keeps the accumulator in
    a register and stores once at the exits, instead of storing every
    iteration.

    Legality: the promoted location must not be observable mid-loop.  A
    Stack Map Point inside the loop makes it observable (the Baseline tier
    could resume and read the stale slot), so the pass requires a loop with
    no deopt-exit checks — in practice, a NoMap transaction region, where a
    rollback discards the speculative state anyway.  Calls and clobbering
    runtime helpers also block it.

    Pattern handled (the common accumulator shape):
    - exactly one [Store_slot (o, slot, x)] in the loop, with [o] invariant,
      in a block that dominates every latch;
    - no other store that may alias the slot, no clobber, no SMP;
    - loads of [(o, slot)] in the store's block before the store are
      rewritten to the running value.

    Transform: preheader loads the initial value; a phi at the header
    carries the running value; the in-loop store is deleted; each exit edge
    gets a store of the value current on that path.  All candidates of a
    loop are analyzed before any mutation, and the loop's exit edges are
    split exactly once and shared — splitting per candidate would operate on
    stale edges. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg

type candidate = {
  store : L.v;
  store_block : int;
  base : L.v;
  slot : int;
  value : L.v;
  reads : L.v list;  (** in-loop loads to rewrite to the running value *)
}

let analyze f doms loop =
  if Passes.loop_has_smp f loop then []
  else begin
    let stores, clobber, _ = Passes.loop_clobbers f loop in
    if clobber then []
    else begin
      let slot_stores = ref [] in
      List.iter
        (fun bid ->
          List.iter
            (fun v ->
              match L.kind_of f v with
              | L.Store_slot (o, slot, x) -> slot_stores := (v, bid, o, slot, x) :: !slot_stores
              | _ -> ())
            (L.block f bid).L.instrs)
        loop.Cfg.body;
      let in_loop_def v =
        let b = (L.instr f v).L.block in
        b >= 0 && List.mem b loop.Cfg.body
      in
      List.filter_map
        (fun (sv, sbid, o, slot, x) ->
          let unique =
            List.length (List.filter (fun c -> L.may_alias c (L.A_slot slot)) stores) = 1
          in
          let o_invariant = not (in_loop_def o) in
          let dominates_latches =
            List.for_all (fun l -> Cfg.dominates doms sbid l) loop.Cfg.latches
          in
          (* All in-loop reads of the slot must precede the store in its own
             block (those are rewritten to the running value). *)
          let reads_ok = ref true in
          let reads = ref [] in
          List.iter
            (fun bid ->
              let before_store = ref true in
              List.iter
                (fun v ->
                  if v = sv then before_store := false
                  else
                    match L.kind_of f v with
                    | L.Load_slot (o', slot') when slot' = slot ->
                      if o' = o && bid = sbid && !before_store then reads := v :: !reads
                      else reads_ok := false
                    | L.Check_not_hole _ -> ()
                    | k -> (
                      match L.memory_effect k with
                      | L.Eff_load (L.A_slot s) when s = slot || s = -1 -> reads_ok := false
                      | _ -> ()))
                (L.block f bid).L.instrs)
            loop.Cfg.body;
          if unique && o_invariant && dominates_latches && !reads_ok then
            Some { store = sv; store_block = sbid; base = o; slot; value = x; reads = !reads }
          else None)
        !slot_stores
    end
  end

let run f =
  let doms = Cfg.compute_doms f in
  let loops = Cfg.natural_loops f doms in
  let loops = List.sort (fun a b -> compare b.Cfg.depth a.Cfg.depth) loops in
  let promoted = ref 0 in
  List.iter
    (fun loop ->
      match analyze f doms loop with
      | [] -> ()
      | candidates -> (
        match Cfg.preheader f loop with
        | None -> ()
        | Some ph ->
          (* Split every exit edge once; all candidates share the blocks. *)
          let exit_blocks =
            List.map
              (fun (src, dst) -> (src, Cfg.split_edge f ~from:src ~to_:dst))
              loop.Cfg.exits
          in
          List.iter
            (fun cand ->
              let init = L.new_instr f (L.Load_slot (cand.base, cand.slot)) in
              Passes.append_to_block f init.L.id ph;
              (* Running phi at the header: from the preheader the initial
                 load; from each latch the stored value. *)
              let phi_ins =
                List.map
                  (fun p -> if p = ph then (p, init.L.id) else (p, cand.value))
                  (L.block f loop.Cfg.header).L.preds
              in
              let phi = L.new_instr f (L.Phi phi_ins) in
              Passes.prepend_to_block f phi.L.id loop.Cfg.header;
              List.iter
                (fun rv -> Passes.delete_and_replace f rv ~replacement:phi.L.id)
                cand.reads;
              Passes.delete f cand.store;
              (* Store the running value at every exit: [value] on paths the
                 store dominates, the phi otherwise. *)
              List.iter
                (fun (src, eb) ->
                  let v =
                    if Cfg.dominates doms cand.store_block src then cand.value else phi.L.id
                  in
                  let st = L.new_instr f (L.Store_slot (cand.base, cand.slot, v)) in
                  Passes.prepend_to_block f st.L.id eb)
                exit_blocks;
              incr promoted)
            candidates;
          Cfg.compute_preds f))
    loops;
  !promoted
