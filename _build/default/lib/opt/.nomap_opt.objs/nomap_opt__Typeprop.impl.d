lib/opt/typeprop.ml: Array List Nomap_lir Nomap_runtime Nomap_util Passes
