lib/opt/dce.ml: Array List Nomap_lir Nomap_util
