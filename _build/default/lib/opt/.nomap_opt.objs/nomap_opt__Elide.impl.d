lib/opt/elide.ml: Array List Nomap_lir Nomap_util Passes
