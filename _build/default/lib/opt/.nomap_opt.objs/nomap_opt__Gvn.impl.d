lib/opt/gvn.ml: Array Fun Hashtbl List Nomap_lir Nomap_runtime Nomap_util Passes Printf
