lib/opt/promote.ml: List Nomap_lir Passes
