lib/opt/passes.ml: Array Hashtbl List Nomap_lir Nomap_util
