lib/opt/licm.ml: List Nomap_lir Passes
