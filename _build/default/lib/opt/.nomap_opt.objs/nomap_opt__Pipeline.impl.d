lib/opt/pipeline.ml: Dce Elide Gvn Licm Promote Typeprop
