(** Benchmark harness: regenerates every table and figure of the paper, then
    wall-times each experiment driver with Bechamel (one [Test.make] per
    table/figure).

    Phase 1 runs every experiment cold and prints the paper-style tables —
    this is the artifact-evaluation output recorded in EXPERIMENTS.md.
    Phase 2 re-times each driver on the warm measurement cache (the
    simulation results are memoized; the timed quantity is table
    regeneration, which is what a user iterating on the data pays). *)

module E = Nomap_harness.Experiments
module Registry = Nomap_workloads.Registry

open Bechamel
open Toolkit

let experiments : (string * (unit -> string)) list =
  [
    ("fig1_shootout_languages", E.fig1);
    ("table1_tier_speedups", E.table1);
    ("fig3a_checks_sunspider", fun () -> E.fig3 Registry.Sunspider);
    ("fig3b_checks_kraken", fun () -> E.fig3 Registry.Kraken);
    ("deopt_frequency", fun () -> E.deopt_freq ~iterations:100 ());
    ("fig8_instructions_sunspider", fun () -> E.fig8_9 Registry.Sunspider);
    ("fig9_instructions_kraken", fun () -> E.fig8_9 Registry.Kraken);
    ("fig10_time_sunspider", fun () -> E.fig10_11 Registry.Sunspider);
    ("fig11_time_kraken", fun () -> E.fig10_11 Registry.Kraken);
    ("table4_tx_footprints", E.table4);
    ("appendix_htm_validation", E.validate_htm);
    ("ablation_passes", E.ablation);
    ("headline_reductions", E.headline);
  ]

(* Swallow stdout while running [f] (the drivers print their tables; during
   timing loops that would flood the terminal). *)
let quietly f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let () =
  print_endline "==================================================================";
  print_endline " NoMap reproduction: full experiment sweep (paper tables/figures)";
  print_endline "==================================================================\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let start = Unix.gettimeofday () in
      ignore (f ());
      Printf.printf "[%s took %.1fs]\n\n" name (Unix.gettimeofday () -. start))
    experiments;
  Printf.printf "full sweep: %.1fs\n\n" (Unix.gettimeofday () -. t0);
  print_endline "==================================================================";
  print_endline " Bechamel timings (warm regeneration of each table/figure)";
  print_endline "==================================================================";
  let tests =
    List.map
      (fun (name, f) ->
        Test.make ~name (Staged.stage (fun () -> quietly (fun () -> ignore (f ())))))
      experiments
  in
  let grouped = Test.make_grouped ~name:"nomap" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-45s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    results;
  print_endline "\ndone."
