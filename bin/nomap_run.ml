(** nomap-run: execute a MiniJS file on the simulated VM.

    The downstream-user tool: run any .js file under any of the paper's six
    architectures and any tier cap, and get execution statistics, bytecode
    disassembly, or optimized-LIR dumps.

    Examples:
      nomap_run prog.js
      nomap_run --arch NoMap --stats prog.js
      nomap_run --arch Base --dump-lir hot_function prog.js
      nomap_run --tier Baseline --disasm prog.js *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Engine = Nomap_machine.Engine
module Value = Nomap_runtime.Value

open Cmdliner

let arch_of_string s =
  List.find_opt (fun a -> String.lowercase_ascii (Config.name a) = String.lowercase_ascii s)
    Config.all

let tier_of_string = function
  | "interpreter" | "interp" -> Some Vm.Cap_interp
  | "baseline" -> Some Vm.Cap_baseline
  | "dfg" -> Some Vm.Cap_dfg
  | "ftl" -> Some Vm.Cap_ftl
  | _ -> None

let run file arch_name tier_name engine_name show_stats disasm dump_lir iterations =
  let arch =
    match arch_of_string arch_name with
    | Some a -> a
    | None ->
      Printf.eprintf "unknown architecture %S (expected one of: %s)\n" arch_name
        (String.concat ", " (List.map Config.name Config.all));
      exit 2
  in
  let tier =
    match tier_of_string (String.lowercase_ascii tier_name) with
    | Some t -> t
    | None ->
      Printf.eprintf "unknown tier %S (interpreter|baseline|dfg|ftl)\n" tier_name;
      exit 2
  in
  let engine =
    match Engine.of_string (String.lowercase_ascii engine_name) with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown engine %S (decoded|threaded)\n" engine_name;
      exit 2
  in
  let source =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let prog =
    try Nomap_bytecode.Compile.compile_source ~name:file source with
    | Failure msg | Nomap_bytecode.Compile.Error msg ->
      prerr_endline msg;
      exit 1
  in
  if disasm then print_endline (Nomap_bytecode.Disasm.program_to_string prog);
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine ~config:(Config.create arch) ~tier_cap:tier prog
  in
  (try
     ignore (Vm.run_main vm);
     (* If the program defines benchmark(), drive it like the harness does. *)
     (match Nomap_bytecode.Opcode.func_by_name prog "benchmark" with
     | Some _ ->
       let result = ref Value.Undef in
       for _ = 1 to iterations do
         result := Vm.call_function vm "benchmark" []
       done;
       Printf.printf "benchmark() = %s\n" (Value.to_js_string !result)
     | None -> ());
     match Vm.global vm "result" with
     | Some v when v <> Value.Undef -> Printf.printf "result = %s\n" (Value.to_js_string v)
     | _ -> ()
   with
  | Nomap_interp.Interp.Runtime_error msg ->
    Printf.eprintf "runtime error: %s\n" msg;
    exit 1
  | Nomap_interp.Instance.Out_of_fuel ->
    prerr_endline "execution exceeded the simulation budget";
    exit 1);
  (match dump_lir with
  | Some name -> (
    match Nomap_bytecode.Opcode.func_by_name prog name with
    | None -> Printf.eprintf "no function %s\n" name
    | Some f -> (
      match Vm.ftl_code vm f.Nomap_bytecode.Opcode.fid with
      | Some c ->
        print_endline (Nomap_lir.Printer.func_to_string c.Nomap_tiers.Specialize.lir)
      | None ->
        Printf.eprintf "%s never reached the FTL tier (call it more, or raise --iterations)\n"
          name))
  | None -> ());
  if show_stats then begin
    let c = Vm.counters vm in
    Printf.printf "--- simulated execution statistics (%s, tier cap %s) ---\n" (Config.name arch)
      (Vm.cap_name tier);
    Printf.printf "instructions: %d\n" (Counters.total_instrs c);
    List.iter
      (fun cat ->
        Printf.printf "  %-8s %12d\n" (Counters.category_name cat)
          c.Counters.instrs.(Counters.category_index cat))
      Counters.categories;
    Printf.printf "cycles: %.0f (in transactions: %.0f)\n" (Counters.cycles c) (Counters.tx_cycles c);
    Printf.printf "checks executed: %d" (Counters.total_checks c);
    List.iter
      (fun k ->
        Printf.printf "  %s=%d" (Nomap_lir.Lir.check_kind_name k)
          c.Counters.checks.(Counters.check_index k))
      Counters.check_kinds;
    print_newline ();
    Printf.printf "ftl calls: %d   dfg calls: %d   deopts: %d\n" c.Counters.ftl_calls
      c.Counters.dfg_calls c.Counters.deopts;
    Printf.printf "tx commits: %d   tx aborts: %d   demotions: %d\n" c.Counters.tx_commits
      c.Counters.tx_aborts (Vm.tx_demotions vm);
    if c.Counters.tx_samples > 0 then
      Printf.printf "tx write footprint: avg %.2f KB, max %.2f KB, max set ways %d\n"
        (Counters.tx_write_kb_sum c /. float_of_int c.Counters.tx_samples)
        (Counters.tx_write_kb_max c) c.Counters.tx_assoc_max
  end

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.js")

let arch =
  Arg.(value & opt string "Base" & info [ "arch"; "a" ] ~docv:"ARCH"
    ~doc:"Architecture: Base, NoMap_S, NoMap_B, NoMap, NoMap_BC, NoMap_RTM.")

let tier =
  Arg.(value & opt string "ftl" & info [ "tier"; "t" ] ~docv:"TIER"
    ~doc:"Highest tier: interpreter, baseline, dfg, ftl.")

let engine =
  Arg.(value & opt string (Engine.name Engine.default) & info [ "engine"; "e" ] ~docv:"ENGINE"
    ~doc:"Execution engine for optimized tiers: decoded (reference) or threaded \
      (closure-threaded, default).  Simulated metrics are identical; only host wall-clock \
      differs.")

let stats = Arg.(value & flag & info [ "stats"; "s" ] ~doc:"Print execution statistics.")
let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Print bytecode disassembly.")

let dump_lir =
  Arg.(value & opt (some string) None & info [ "dump-lir" ] ~docv:"FUNC"
    ~doc:"Dump the optimized FTL LIR of a function after the run.")

let iterations =
  Arg.(value & opt int 40 & info [ "iterations"; "n" ] ~docv:"N"
    ~doc:"How many times to call benchmark(), if the program defines one.")

let cmd =
  let doc = "Run a MiniJS program on the NoMap simulated JavaScript VM" in
  Cmd.v (Cmd.info "nomap_run" ~doc)
    Term.(const run $ file $ arch $ tier $ engine $ stats $ disasm $ dump_lir $ iterations)

let () = exit (Cmd.eval cmd)
