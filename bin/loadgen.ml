(** loadgen.exe: closed-loop load generator for the nomapd daemon.

    [--clients N] client domains each run a fetch-execute loop over a
    shared request counter: take the next request number, send the
    corresponding workload-registry program to the daemon, block for the
    response, record the latency, repeat — closed-loop, so offered load
    adapts to service rate instead of overrunning it.  Requests cycle
    round-robin through the selected workloads, which makes the run mostly
    warm: each program compiles once (a cache miss) and every revisit is a
    hit, the serving-side analogue of the paper's hot-code amortization.

    Reports throughput and p50/p95/p99 latency ([Stats.percentile]), split
    into cold (artifact-cache miss) and warm (hit) populations, and writes
    the same as BENCH_server.json (schema nomap-server-v1).  Exit code 0
    iff every request succeeded (and, under --check, matched direct [Vm]
    execution bit-for-bit). *)

module Client = Nomap_server.Client
module Protocol = Nomap_server.Protocol
module Registry = Nomap_workloads.Registry
module Stats = Nomap_util.Stats
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Heap_checksum = Nomap_vm.Heap_checksum

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

open Cmdliner

let socket =
  Arg.(
    value
    & opt string "nomapd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket path.")

let requests =
  Arg.(value & opt int 200 & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total requests to issue.")

let clients =
  Arg.(value & opt int 4 & info [ "clients"; "c" ] ~docv:"N" ~doc:"Concurrent client domains.")

let suite =
  Arg.(
    value
    & opt string "shootout"
    & info [ "suite" ] ~docv:"NAME"
        ~doc:"Workload suite: sunspider, kraken, shootout, or all.")

let benchs =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"IDS" ~doc:"Comma-separated benchmark ids (overrides --suite).")

let tier =
  Arg.(value & opt string "ftl" & info [ "tier" ] ~docv:"T" ~doc:"interp|baseline|dfg|ftl.")

let arch =
  Arg.(
    value
    & opt string "NoMap"
    & info [ "arch" ] ~docv:"A" ~doc:"Architecture name (paper Table II), e.g. Base, NoMap.")

let iters =
  Arg.(
    value
    & opt int 0
    & info [ "iters" ] ~docv:"N" ~doc:"benchmark() calls per request after the top level.")

let fuel = Arg.(value & opt int 0 & info [ "fuel" ] ~docv:"N" ~doc:"Per-request fuel (0 = server default).")

let deadline =
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request queue deadline (0 = none).")

let json =
  Arg.(
    value
    & opt string "BENCH_server.json"
    & info [ "json" ] ~docv:"PATH" ~doc:"Machine-readable report path.")

let keepalive =
  Arg.(
    value & flag
    & info [ "keepalive" ]
        ~doc:
          "One persistent connection per client (clients must be <= server domains, or the \
           extra clients starve).  Default: one connection per request.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify every response (result + heap checksum) against direct in-process Vm \
           execution; mismatches fail the run.")

let shutdown =
  Arg.(value & flag & info [ "shutdown" ] ~doc:"Send SHUTDOWN to the daemon after the run.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only the summary line.")

let parse_tier = function
  | "interp" -> Vm.Cap_interp
  | "baseline" -> Vm.Cap_baseline
  | "dfg" -> Vm.Cap_dfg
  | "ftl" -> Vm.Cap_ftl
  | t -> invalid_arg ("unknown tier " ^ t ^ " (interp|baseline|dfg|ftl)")

let parse_arch s =
  match
    List.find_opt
      (fun a -> String.lowercase_ascii (Config.name a) = String.lowercase_ascii s)
      Config.all
  with
  | Some a -> a
  | None ->
    invalid_arg
      ("unknown arch " ^ s ^ " (one of " ^ String.concat ", " (List.map Config.name Config.all)
     ^ ")")

let select_benchmarks suite benchs =
  match benchs with
  | Some ids ->
    List.map
      (fun id ->
        match Registry.by_id (String.trim id) with
        | Some b -> b
        | None -> invalid_arg ("unknown benchmark id " ^ id))
      (String.split_on_char ',' ids)
  | None -> (
    match String.lowercase_ascii suite with
    | "sunspider" -> Registry.of_suite Registry.Sunspider
    | "kraken" -> Registry.of_suite Registry.Kraken
    | "shootout" -> Registry.of_suite Registry.Shootout
    | "all" -> Registry.all
    | s -> invalid_arg ("unknown suite " ^ s))

(* One slot per request, so client domains record without contention. *)
type outcome = Ok_hit | Ok_miss | Timed_out | Overloaded | Failed of string

type record = { latency_s : float; outcome : outcome }

(* Direct in-process execution, for --check: must match the daemon's
   observation byte for byte (same VM entry points as Session.run). *)
let expected_observation ~tier ~arch ~iters ~fuel (b : Registry.benchmark) =
  let prog = Nomap_bytecode.Compile.compile_source ~name:b.Registry.name b.Registry.source in
  let fuel = if fuel <= 0 then Nomap_server.Session.default_fuel else fuel in
  let vm = Vm.create ~fuel ~config:(Config.create arch) ~tier_cap:tier prog in
  ignore (Vm.run_main vm);
  let last = ref None in
  for _ = 1 to iters do
    last := Some (Vm.call_function vm "benchmark" [])
  done;
  let result =
    match !last with
    | Some v -> Value.to_js_string v
    | None -> (
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>")
  in
  (result, Heap_checksum.checksum (Vm.instance vm))

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let main socket requests clients suite benchs tier_s arch_s iters fuel deadline json keepalive
    check shutdown quiet =
  let tier = parse_tier tier_s and arch = parse_arch arch_s in
  let benchmarks = Array.of_list (select_benchmarks suite benchs) in
  if Array.length benchmarks = 0 then invalid_arg "no benchmarks selected";
  let requests = max 1 requests and clients = max 1 clients in
  (* Expected observations computed once per workload, on demand, shared
     across client domains. *)
  let expected = Array.make (Array.length benchmarks) None in
  let expected_lock = Mutex.create () in
  let expect i =
    Mutex.protect expected_lock (fun () ->
        match expected.(i) with
        | Some o -> o
        | None ->
          let o = expected_observation ~tier ~arch ~iters ~fuel benchmarks.(i) in
          expected.(i) <- Some o;
          o)
  in
  let records = Array.make requests None in
  let next = Atomic.make 0 in
  let request_of i =
    let b = benchmarks.(i mod Array.length benchmarks) in
    ( i mod Array.length benchmarks,
      Protocol.Run
        { tier; arch; iters; fuel; deadline_ms = deadline; src = b.Registry.source } )
  in
  let run_one conn i =
    let bidx, req = request_of i in
    let t0 = now_s () in
    let resp = Client.rpc conn req in
    let latency_s = now_s () -. t0 in
    let outcome =
      match resp with
      | Protocol.Run_ok { cache_hit; result; heap; _ } ->
        if check then begin
          let exp_result, exp_heap = expect bidx in
          if result <> exp_result || heap <> exp_heap then
            Failed
              (Printf.sprintf "%s: daemon said result=%s heap=%s, direct Vm says result=%s heap=%s"
                 benchmarks.(bidx).Registry.id result heap exp_result exp_heap)
          else if cache_hit then Ok_hit
          else Ok_miss
        end
        else if cache_hit then Ok_hit
        else Ok_miss
      | Protocol.Error { err = Protocol.Etimeout; msg } ->
        ignore msg;
        Timed_out
      | Protocol.Error { err = Protocol.Eoverloaded; _ } -> Overloaded
      | Protocol.Error { err; msg } ->
        Failed (Printf.sprintf "%s: %s" (Protocol.err_name err) msg)
      | Protocol.Stats_ok _ | Protocol.Pong | Protocol.Shutting_down ->
        Failed "unexpected response kind"
    in
    records.(i) <- Some { latency_s; outcome }
  in
  let client_loop () =
    if keepalive then begin
      let conn = Client.connect ~retry_for_s:5.0 socket in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < requests then begin
          run_one conn i;
          go ()
        end
      in
      Fun.protect ~finally:(fun () -> Client.close conn) go
    end
    else
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < requests then begin
          let conn = Client.connect ~retry_for_s:5.0 socket in
          Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> run_one conn i);
          go ()
        end
      in
      go ()
  in
  let wall0 = now_s () in
  let domains = List.init clients (fun _ -> Domain.spawn client_loop) in
  List.iter Domain.join domains;
  let wall_s = now_s () -. wall0 in
  let recs =
    Array.to_list records
    |> List.filter_map (fun r -> r)
  in
  let by p = List.filter (fun r -> p r.outcome) recs in
  let oks = by (function Ok_hit | Ok_miss -> true | _ -> false) in
  let warm = by (function Ok_hit -> true | _ -> false) in
  let cold = by (function Ok_miss -> true | _ -> false) in
  let timeouts = by (function Timed_out -> true | _ -> false) in
  let overloaded = by (function Overloaded -> true | _ -> false) in
  let failures =
    List.filter_map (function { outcome = Failed m; _ } -> Some m | _ -> None) recs
  in
  if not quiet then
    List.iteri
      (fun i m -> if i < 10 then Printf.eprintf "loadgen: FAILURE %s\n%!" m)
      failures;
  let ms l = List.map (fun r -> r.latency_s *. 1000.0) l in
  let pct l p = if l = [] then 0.0 else Stats.percentile (ms l) p in
  let throughput = if wall_s > 0.0 then float_of_int (List.length oks) /. wall_s else 0.0 in
  let hit_rate =
    let h = List.length warm and m = List.length cold in
    if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
  in
  let cold_p50 = pct cold 50.0 and warm_p50 = pct warm 50.0 in
  let stats_txt =
    let conn = Client.connect ~retry_for_s:5.0 socket in
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        let stats =
          match Client.rpc conn Protocol.Stats with
          | Protocol.Stats_ok s -> s
          | _ -> "<stats unavailable>"
        in
        if shutdown then ignore (Client.rpc conn Protocol.Shutdown);
        stats)
  in
  if not quiet then begin
    Printf.printf "--- nomapd load test: %d requests, %d clients, %d workloads (%s/%s, iters %d) ---\n"
      requests clients (Array.length benchmarks) (Vm.cap_name tier) (Config.name arch) iters;
    Printf.printf "wall %.2fs  throughput %.0f req/s\n" wall_s throughput;
    Printf.printf "latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n" (pct oks 50.0) (pct oks 95.0)
      (pct oks 99.0);
    Printf.printf "cold (cache miss): %4d requests, p50 %.3f ms\n" (List.length cold) cold_p50;
    Printf.printf "warm (cache hit):  %4d requests, p50 %.3f ms  (%.1fx faster, hit rate %.1f%%)\n"
      (List.length warm) warm_p50
      (if warm_p50 > 0.0 then cold_p50 /. warm_p50 else 0.0)
      (100.0 *. hit_rate);
    Printf.printf "errors %d  timeouts %d  overloaded %d%s\n" (List.length failures)
      (List.length timeouts) (List.length overloaded)
      (if check then "  (responses verified against direct Vm execution)" else "");
    print_endline "--- server stats ---";
    print_endline stats_txt
  end;
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "schema": "nomap-server-v1",
  "socket": "%s",
  "requests": %d,
  "clients": %d,
  "workloads": %d,
  "tier": "%s",
  "arch": "%s",
  "iters": %d,
  "keepalive": %b,
  "checked": %b,
  "wall_s": %.6f,
  "throughput_rps": %.3f,
  "ok": %d,
  "errors": %d,
  "timeouts": %d,
  "overloaded": %d,
  "latency_ms": { "p50": %.6f, "p95": %.6f, "p99": %.6f },
  "cold": { "count": %d, "p50_ms": %.6f },
  "warm": { "count": %d, "p50_ms": %.6f },
  "cold_over_warm_p50": %.3f,
  "cache_hit_rate": %.4f
}
|}
    (json_escape socket) requests clients (Array.length benchmarks)
    (json_escape (Vm.cap_name tier))
    (json_escape (Config.name arch))
    iters keepalive check wall_s throughput (List.length oks) (List.length failures)
    (List.length timeouts) (List.length overloaded) (pct oks 50.0) (pct oks 95.0) (pct oks 99.0)
    (List.length cold) cold_p50 (List.length warm) warm_p50
    (if warm_p50 > 0.0 then cold_p50 /. warm_p50 else 0.0)
    hit_rate;
  close_out oc;
  Printf.printf "%d/%d ok (%.0f req/s, p50 %.3f ms warm / %.3f ms cold) -> %s\n"
    (List.length oks) requests throughput warm_p50 cold_p50 json;
  if failures = [] && timeouts = [] && overloaded = [] then 0 else 1

let cmd =
  let doc = "Closed-loop load generator for the nomapd execution daemon" in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const main $ socket $ requests $ clients $ suite $ benchs $ tier $ arch $ iters $ fuel
      $ deadline $ json $ keepalive $ check $ shutdown $ quiet)

let () = exit (Cmd.eval' cmd)
