(** loadgen.exe: load generator for the nomapd daemon, closed- or
    open-loop.

    {b Closed loop} (default): [--clients N] client domains each run a
    fetch-execute loop over a shared request counter: take the next
    request number, send the corresponding workload-registry program to
    the daemon, block for the response, record the latency, repeat —
    offered load adapts to service rate instead of overrunning it.

    {b Open loop} ([--rps R1,R2,... --duration S]): requests fire on a
    fixed or Poisson ([--poisson]) schedule over [--conns] persistent
    connections, one sweep step per listed rate.  Latency is measured
    from each request's {e scheduled} fire time, not from when a sender
    got around to it, so sender-side queueing when the daemon falls
    behind is charged to the daemon (no coordinated omission).  A step is
    sustainable when nothing failed, nothing was shed (no
    timeouts/overloads), p99 stays under [--p99-limit-ms], and achieved
    throughput reaches 90% of target; the highest sustainable rate is the
    [max_sustainable_rps] headline, and every step lands in the
    latency-under-load curve.

    Requests cycle round-robin through the selected workloads, which
    makes the run mostly warm: each program compiles once (a cache miss)
    and every revisit is a hit, the serving-side analogue of the paper's
    hot-code amortization.

    Both modes report p50/p95/p99 ([Stats.percentile]), split into cold
    (artifact-cache miss) and warm (hit) populations, and write
    BENCH_server.json (schema nomap-server-v2).  Exit code 0 iff no
    response failed (and, under --check, every one matched direct [Vm]
    execution bit-for-bit); open-loop timeouts/overloads beyond the knee
    are measurements, not failures. *)

module Client = Nomap_server.Client
module Protocol = Nomap_server.Protocol
module Registry = Nomap_workloads.Registry
module Stats = Nomap_util.Stats
module Prng = Nomap_util.Prng
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Heap_checksum = Nomap_vm.Heap_checksum

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

open Cmdliner

let socket =
  Arg.(
    value
    & opt string "nomapd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket path.")

let requests =
  Arg.(
    value & opt int 200
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Closed loop: total requests to issue.")

let clients =
  Arg.(
    value & opt int 4
    & info [ "clients"; "c" ] ~docv:"N" ~doc:"Closed loop: concurrent client domains.")

let rps =
  Arg.(
    value
    & opt (some string) None
    & info [ "rps" ] ~docv:"R1,R2,..."
        ~doc:
          "Open loop: comma-separated target request rates; each runs for $(b,--duration) \
           seconds and becomes one point of the latency-under-load curve.")

let duration =
  Arg.(
    value & opt float 5.0
    & info [ "duration" ] ~docv:"S" ~doc:"Open loop: seconds per swept rate.")

let conns =
  Arg.(
    value & opt int 8
    & info [ "conns" ] ~docv:"N"
        ~doc:"Open loop: persistent connections firing the schedule.")

let poisson =
  Arg.(
    value & flag
    & info [ "poisson" ]
        ~doc:"Open loop: Poisson arrivals (seeded, reproducible) instead of fixed spacing.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Open loop: Poisson schedule seed.")

let p99_limit =
  Arg.(
    value & opt float 50.0
    & info [ "p99-limit-ms" ] ~docv:"MS"
        ~doc:"Open loop: a swept rate is sustainable only if p99 stays under this.")

let suite =
  Arg.(
    value
    & opt string "shootout"
    & info [ "suite" ] ~docv:"NAME"
        ~doc:"Workload suite: sunspider, kraken, shootout, or all.")

let benchs =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"IDS" ~doc:"Comma-separated benchmark ids (overrides --suite).")

let tier =
  Arg.(value & opt string "ftl" & info [ "tier" ] ~docv:"T" ~doc:"interp|baseline|dfg|ftl.")

let arch =
  Arg.(
    value
    & opt string "NoMap"
    & info [ "arch" ] ~docv:"A" ~doc:"Architecture name (paper Table II), e.g. Base, NoMap.")

let iters =
  Arg.(
    value
    & opt int 0
    & info [ "iters" ] ~docv:"N" ~doc:"benchmark() calls per request after the top level.")

let fuel = Arg.(value & opt int 0 & info [ "fuel" ] ~docv:"N" ~doc:"Per-request fuel (0 = server default).")

let deadline =
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request queue deadline (0 = none).")

let json =
  Arg.(
    value
    & opt string "BENCH_server.json"
    & info [ "json" ] ~docv:"PATH" ~doc:"Machine-readable report path.")

let keepalive =
  Arg.(
    value & flag
    & info [ "keepalive" ]
        ~doc:
          "Closed loop: one persistent connection per client.  The daemon schedules frames, \
           not connections, so keepalive clients beyond the worker count are fine.  \
           Default: one connection per request.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify every response (result + heap checksum) against direct in-process Vm \
           execution; mismatches fail the run.")

let shutdown =
  Arg.(value & flag & info [ "shutdown" ] ~doc:"Send SHUTDOWN to the daemon after the run.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only the summary line.")

let parse_tier = function
  | "interp" -> Vm.Cap_interp
  | "baseline" -> Vm.Cap_baseline
  | "dfg" -> Vm.Cap_dfg
  | "ftl" -> Vm.Cap_ftl
  | t -> invalid_arg ("unknown tier " ^ t ^ " (interp|baseline|dfg|ftl)")

let parse_arch s =
  match
    List.find_opt
      (fun a -> String.lowercase_ascii (Config.name a) = String.lowercase_ascii s)
      Config.all
  with
  | Some a -> a
  | None ->
    invalid_arg
      ("unknown arch " ^ s ^ " (one of " ^ String.concat ", " (List.map Config.name Config.all)
     ^ ")")

let select_benchmarks suite benchs =
  match benchs with
  | Some ids ->
    List.map
      (fun id ->
        match Registry.by_id (String.trim id) with
        | Some b -> b
        | None -> invalid_arg ("unknown benchmark id " ^ id))
      (String.split_on_char ',' ids)
  | None -> (
    match String.lowercase_ascii suite with
    | "sunspider" -> Registry.of_suite Registry.Sunspider
    | "kraken" -> Registry.of_suite Registry.Kraken
    | "shootout" -> Registry.of_suite Registry.Shootout
    | "all" -> Registry.all
    | s -> invalid_arg ("unknown suite " ^ s))

(* One slot per request, so client domains record without contention. *)
type outcome = Ok_hit | Ok_miss | Timed_out | Overloaded | Failed of string

type record = { latency_s : float; outcome : outcome }

(* Direct in-process execution, for --check: must match the daemon's
   observation byte for byte (same VM entry points as Session.run). *)
let expected_observation ~tier ~arch ~iters ~fuel (b : Registry.benchmark) =
  let prog = Nomap_bytecode.Compile.compile_source ~name:b.Registry.name b.Registry.source in
  let fuel = if fuel <= 0 then Nomap_server.Session.default_fuel else fuel in
  let vm = Vm.create ~fuel ~config:(Config.create arch) ~tier_cap:tier prog in
  ignore (Vm.run_main vm);
  let last = ref None in
  for _ = 1 to iters do
    last := Some (Vm.call_function vm "benchmark" [])
  done;
  let result =
    match !last with
    | Some v -> Value.to_js_string v
    | None -> (
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>")
  in
  (result, Heap_checksum.checksum (Vm.instance vm))

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Shared per-run context: workload selection, expected observations,
   response classification.  Both loop modes use the same machinery so
   their latency populations are comparable. *)

type run_ctx = {
  benchmarks : Registry.benchmark array;
  mk_request : int -> int * Protocol.request;  (** request number -> (workload idx, RUN) *)
  classify : int -> Protocol.response -> outcome;
}

let make_run_ctx ~tier ~arch ~iters ~fuel ~deadline ~check benchmarks =
  (* Expected observations computed once per workload, on demand, shared
     across client domains. *)
  let expected = Array.make (Array.length benchmarks) None in
  let expected_lock = Mutex.create () in
  let expect i =
    Mutex.protect expected_lock (fun () ->
        match expected.(i) with
        | Some o -> o
        | None ->
          let o = expected_observation ~tier ~arch ~iters ~fuel benchmarks.(i) in
          expected.(i) <- Some o;
          o)
  in
  let mk_request i =
    let bidx = i mod Array.length benchmarks in
    let b = benchmarks.(bidx) in
    ( bidx,
      Protocol.Run
        { tier; arch; iters; fuel; deadline_ms = deadline; src = b.Registry.source } )
  in
  let classify bidx = function
    | Protocol.Run_ok { cache_hit; result; heap; _ } ->
      if check then begin
        let exp_result, exp_heap = expect bidx in
        if result <> exp_result || heap <> exp_heap then
          Failed
            (Printf.sprintf "%s: daemon said result=%s heap=%s, direct Vm says result=%s heap=%s"
               benchmarks.(bidx).Registry.id result heap exp_result exp_heap)
        else if cache_hit then Ok_hit
        else Ok_miss
      end
      else if cache_hit then Ok_hit
      else Ok_miss
    | Protocol.Error { err = Protocol.Etimeout; _ } -> Timed_out
    | Protocol.Error { err = Protocol.Eoverloaded; _ } -> Overloaded
    | Protocol.Error { err; msg } ->
      Failed (Printf.sprintf "%s: %s" (Protocol.err_name err) msg)
    | Protocol.Stats_ok _ | Protocol.Pong | Protocol.Shutting_down ->
      Failed "unexpected response kind"
  in
  { benchmarks; mk_request; classify }

type tally = {
  oks : record list;
  warm : record list;
  cold : record list;
  timeouts : record list;
  overloaded : record list;
  failures : string list;
}

let tally records =
  let recs = Array.to_list records |> List.filter_map (fun r -> r) in
  let by p = List.filter (fun r -> p r.outcome) recs in
  {
    oks = by (function Ok_hit | Ok_miss -> true | _ -> false);
    warm = by (function Ok_hit -> true | _ -> false);
    cold = by (function Ok_miss -> true | _ -> false);
    timeouts = by (function Timed_out -> true | _ -> false);
    overloaded = by (function Overloaded -> true | _ -> false);
    failures = List.filter_map (function { outcome = Failed m; _ } -> Some m | _ -> None) recs;
  }

let ms l = List.map (fun r -> r.latency_s *. 1000.0) l

let pct l p = if l = [] then 0.0 else Stats.percentile (ms l) p

let fetch_stats_and_maybe_shutdown ~socket ~shutdown =
  let conn = Client.connect ~retry_for_s:5.0 socket in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      let stats =
        match Client.rpc conn Protocol.Stats with
        | Protocol.Stats_ok s -> s
        | _ -> "<stats unavailable>"
      in
      if shutdown then ignore (Client.rpc conn Protocol.Shutdown);
      stats)

(* ------------------------------------------------------------------ *)
(* Open loop *)

type step = {
  target_rps : float;
  offered : int;
  wall_s : float;
  achieved_rps : float;
  t : tally;
  p50 : float;
  p95 : float;
  p99 : float;
  sustainable : bool;
}

let run_open_step ~socket ~rctx ~conns ~poisson ~seed ~duration ~p99_limit rate =
  let n = max 1 (int_of_float (rate *. duration)) in
  (* The whole schedule is precomputed so every sender agrees on fire
     times and a rerun with the same seed offers the identical load. *)
  let arrivals = Array.make n 0.0 in
  if poisson then begin
    let prng = Prng.create ~seed in
    let at = ref 0.0 in
    for i = 0 to n - 1 do
      let u = max 1e-12 (Prng.float prng 1.0) in
      at := !at +. (-.log u /. rate);
      arrivals.(i) <- !at
    done
  end
  else
    for i = 0 to n - 1 do
      arrivals.(i) <- float_of_int i /. rate
    done;
  let records = Array.make n None in
  let next = Atomic.make 0 in
  let start = now_s () +. 0.05 in
  let sender () =
    let conn = Client.connect ~retry_for_s:5.0 socket in
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let fire = start +. arrivals.(i) in
            let d = fire -. now_s () in
            if d > 0.0 then Unix.sleepf d;
            let bidx, req = rctx.mk_request i in
            let resp = Client.rpc conn req in
            (* Latency from the scheduled fire time: a sender that fell
               behind (every connection busy) is queueing delay the load
               really experienced. *)
            let latency_s = now_s () -. fire in
            records.(i) <- Some { latency_s; outcome = rctx.classify bidx resp };
            go ()
          end
        in
        go ())
  in
  let senders = List.init conns (fun _ -> Domain.spawn sender) in
  List.iter Domain.join senders;
  let wall_s = Float.max (now_s () -. start) duration in
  let t = tally records in
  let p50 = pct t.oks 50.0 and p95 = pct t.oks 95.0 and p99 = pct t.oks 99.0 in
  let achieved_rps = float_of_int (List.length t.oks) /. wall_s in
  let sustainable =
    t.failures = [] && t.timeouts = [] && t.overloaded = []
    && List.length t.oks > 0
    && p99 <= p99_limit
    && achieved_rps >= 0.9 *. rate
  in
  { target_rps = rate; offered = n; wall_s; achieved_rps; t; p50; p95; p99; sustainable }

let parse_rates s =
  String.split_on_char ',' s
  |> List.map (fun r ->
         match float_of_string_opt (String.trim r) with
         | Some f when f > 0.0 -> f
         | _ -> invalid_arg ("bad --rps value " ^ r))

let open_loop ~socket ~rctx ~conns ~poisson ~seed ~duration ~p99_limit ~check ~shutdown ~quiet
    ~json ~tier_s ~arch_s ~iters rates =
  (* Warm the artifact cache first: the sweep measures steady-state
     latency under load, and a one-time compile landing inside the first
     (lowest-rate, fewest-samples) step would dominate its p99. *)
  (let conn = Client.connect ~retry_for_s:5.0 socket in
   Fun.protect
     ~finally:(fun () -> Client.close conn)
     (fun () ->
       Array.iteri
         (fun i _ ->
           let bidx, req = rctx.mk_request i in
           ignore bidx;
           ignore (Client.rpc conn req))
         rctx.benchmarks));
  let steps =
    List.map
      (fun rate ->
        let s = run_open_step ~socket ~rctx ~conns ~poisson ~seed ~duration ~p99_limit rate in
        if not quiet then begin
          List.iteri
            (fun i m -> if i < 5 then Printf.eprintf "loadgen: FAILURE %s\n%!" m)
            s.t.failures;
          Printf.printf
            "rps %7.1f: offered %5d, ok %5d, p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms, \
             achieved %7.1f rps, timeout %d overloaded %d failed %d%s\n%!"
            s.target_rps s.offered (List.length s.t.oks) s.p50 s.p95 s.p99 s.achieved_rps
            (List.length s.t.timeouts)
            (List.length s.t.overloaded)
            (List.length s.t.failures)
            (if s.sustainable then "" else "  [over the knee]")
        end;
        (* Let queued work drain so one step's backlog doesn't pollute the
           next step's latency population. *)
        Unix.sleepf 0.2;
        s)
      rates
  in
  let max_sustainable_rps =
    List.fold_left (fun acc s -> if s.sustainable then Float.max acc s.target_rps else acc) 0.0
      steps
  in
  let stats_txt = fetch_stats_and_maybe_shutdown ~socket ~shutdown in
  if not quiet then begin
    print_endline "--- server stats ---";
    print_endline stats_txt
  end;
  let oc = open_out json in
  let step_json s =
    Printf.sprintf
      {|    { "target_rps": %.3f, "offered": %d, "ok": %d, "achieved_rps": %.3f,
      "p50_ms": %.6f, "p95_ms": %.6f, "p99_ms": %.6f,
      "warm": %d, "cold": %d, "timeouts": %d, "overloaded": %d, "errors": %d,
      "sustainable": %b }|}
      s.target_rps s.offered (List.length s.t.oks) s.achieved_rps s.p50 s.p95 s.p99
      (List.length s.t.warm) (List.length s.t.cold)
      (List.length s.t.timeouts)
      (List.length s.t.overloaded)
      (List.length s.t.failures) s.sustainable
  in
  Printf.fprintf oc
    {|{
  "schema": "nomap-server-v2",
  "mode": "open-loop",
  "host": { "ocaml_version": "%s", "word_size": %d, "recommended_domains": %d },
  "socket": "%s",
  "workloads": %d,
  "tier": "%s",
  "arch": "%s",
  "iters": %d,
  "conns": %d,
  "duration_s": %.3f,
  "poisson": %b,
  "checked": %b,
  "p99_limit_ms": %.3f,
  "max_sustainable_rps": %.3f,
  "curve": [
%s
  ]
}
|}
    (json_escape Sys.ocaml_version) Sys.word_size
    (Domain.recommended_domain_count ())
    (json_escape socket)
    (Array.length rctx.benchmarks)
    (json_escape tier_s) (json_escape arch_s) iters conns duration poisson check p99_limit
    max_sustainable_rps
    (String.concat ",\n" (List.map step_json steps));
  close_out oc;
  let total_failures = List.concat_map (fun s -> s.t.failures) steps in
  Printf.printf
    "max sustainable rps %.1f (p99 <= %.1f ms) over %d rates x %.1fs -> %s\n"
    max_sustainable_rps p99_limit (List.length steps) duration json;
  if total_failures = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Closed loop *)

let closed_loop ~socket ~rctx ~requests ~clients ~keepalive ~check ~shutdown ~quiet ~json
    ~tier ~arch ~iters () =
  let records = Array.make requests None in
  let next = Atomic.make 0 in
  let run_one conn i =
    let bidx, req = rctx.mk_request i in
    let t0 = now_s () in
    let resp = Client.rpc conn req in
    let latency_s = now_s () -. t0 in
    records.(i) <- Some { latency_s; outcome = rctx.classify bidx resp }
  in
  let client_loop () =
    if keepalive then begin
      let conn = Client.connect ~retry_for_s:5.0 socket in
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < requests then begin
          run_one conn i;
          go ()
        end
      in
      Fun.protect ~finally:(fun () -> Client.close conn) go
    end
    else
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < requests then begin
          let conn = Client.connect ~retry_for_s:5.0 socket in
          Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> run_one conn i);
          go ()
        end
      in
      go ()
  in
  let wall0 = now_s () in
  let domains = List.init clients (fun _ -> Domain.spawn client_loop) in
  List.iter Domain.join domains;
  let wall_s = now_s () -. wall0 in
  let t = tally records in
  if not quiet then
    List.iteri
      (fun i m -> if i < 10 then Printf.eprintf "loadgen: FAILURE %s\n%!" m)
      t.failures;
  let throughput = if wall_s > 0.0 then float_of_int (List.length t.oks) /. wall_s else 0.0 in
  let hit_rate =
    let h = List.length t.warm and m = List.length t.cold in
    if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
  in
  let cold_p50 = pct t.cold 50.0 and warm_p50 = pct t.warm 50.0 in
  let stats_txt = fetch_stats_and_maybe_shutdown ~socket ~shutdown in
  if not quiet then begin
    Printf.printf "--- nomapd load test: %d requests, %d clients, %d workloads (%s/%s, iters %d) ---\n"
      requests clients
      (Array.length rctx.benchmarks)
      (Vm.cap_name tier) (Config.name arch) iters;
    Printf.printf "wall %.2fs  throughput %.0f req/s\n" wall_s throughput;
    Printf.printf "latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n" (pct t.oks 50.0)
      (pct t.oks 95.0) (pct t.oks 99.0);
    Printf.printf "cold (cache miss): %4d requests, p50 %.3f ms\n" (List.length t.cold) cold_p50;
    Printf.printf "warm (cache hit):  %4d requests, p50 %.3f ms  (%.1fx faster, hit rate %.1f%%)\n"
      (List.length t.warm) warm_p50
      (if warm_p50 > 0.0 then cold_p50 /. warm_p50 else 0.0)
      (100.0 *. hit_rate);
    Printf.printf "errors %d  timeouts %d  overloaded %d%s\n" (List.length t.failures)
      (List.length t.timeouts) (List.length t.overloaded)
      (if check then "  (responses verified against direct Vm execution)" else "");
    print_endline "--- server stats ---";
    print_endline stats_txt
  end;
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "schema": "nomap-server-v2",
  "mode": "closed-loop",
  "host": { "ocaml_version": "%s", "word_size": %d, "recommended_domains": %d },
  "socket": "%s",
  "requests": %d,
  "clients": %d,
  "workloads": %d,
  "tier": "%s",
  "arch": "%s",
  "iters": %d,
  "keepalive": %b,
  "checked": %b,
  "wall_s": %.6f,
  "throughput_rps": %.3f,
  "ok": %d,
  "errors": %d,
  "timeouts": %d,
  "overloaded": %d,
  "latency_ms": { "p50": %.6f, "p95": %.6f, "p99": %.6f },
  "cold": { "count": %d, "p50_ms": %.6f },
  "warm": { "count": %d, "p50_ms": %.6f },
  "cold_over_warm_p50": %.3f,
  "cache_hit_rate": %.4f
}
|}
    (json_escape Sys.ocaml_version) Sys.word_size
    (Domain.recommended_domain_count ())
    (json_escape socket) requests clients
    (Array.length rctx.benchmarks)
    (json_escape (Vm.cap_name tier))
    (json_escape (Config.name arch))
    iters keepalive check wall_s throughput (List.length t.oks) (List.length t.failures)
    (List.length t.timeouts)
    (List.length t.overloaded)
    (pct t.oks 50.0) (pct t.oks 95.0) (pct t.oks 99.0) (List.length t.cold) cold_p50
    (List.length t.warm) warm_p50
    (if warm_p50 > 0.0 then cold_p50 /. warm_p50 else 0.0)
    hit_rate;
  close_out oc;
  Printf.printf "%d/%d ok (%.0f req/s, p50 %.3f ms warm / %.3f ms cold) -> %s\n"
    (List.length t.oks) requests throughput warm_p50 cold_p50 json;
  if t.failures = [] && t.timeouts = [] && t.overloaded = [] then 0 else 1

let main socket requests clients rps duration conns poisson seed p99_limit suite benchs tier_s
    arch_s iters fuel deadline json keepalive check shutdown quiet =
  let tier = parse_tier tier_s and arch = parse_arch arch_s in
  let benchmarks = Array.of_list (select_benchmarks suite benchs) in
  if Array.length benchmarks = 0 then invalid_arg "no benchmarks selected";
  let rctx = make_run_ctx ~tier ~arch ~iters ~fuel ~deadline ~check benchmarks in
  match rps with
  | Some rates ->
    let rates = parse_rates rates in
    let conns = max 1 conns and duration = Float.max 0.1 duration in
    open_loop ~socket ~rctx ~conns ~poisson ~seed ~duration ~p99_limit ~check ~shutdown ~quiet
      ~json ~tier_s:(Vm.cap_name tier) ~arch_s:(Config.name arch) ~iters rates
  | None ->
    let requests = max 1 requests and clients = max 1 clients in
    closed_loop ~socket ~rctx ~requests ~clients ~keepalive ~check ~shutdown ~quiet ~json ~tier
      ~arch ~iters ()

let cmd =
  let doc = "Closed- and open-loop load generator for the nomapd execution daemon" in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const main $ socket $ requests $ clients $ rps $ duration $ conns $ poisson $ seed
      $ p99_limit $ suite $ benchs $ tier $ arch $ iters $ fuel $ deadline $ json $ keepalive
      $ check $ shutdown $ quiet)

let () = exit (Cmd.eval' cmd)
