(** nomap-repl: an interactive MiniJS Read-Eval-Print Loop.

    Each input line (or block — continue lines with a trailing backslash) is
    appended to the session program and the whole program re-runs on a fresh
    VM, which keeps the implementation honest with the compiler pipeline (no
    separate eval path) at the cost of re-execution — fine interactively.

    Commands:
      :arch NAME     switch architecture (Base, NoMap, ...)
      :stats         toggle per-input execution statistics
      :list          show the session program
      :reset         clear the session
      :quit          exit *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Value = Nomap_runtime.Value

type session = {
  mutable items : string list;  (** accepted inputs, oldest first *)
  mutable arch : Config.arch;
  mutable stats : bool;
}

let run_session s ~probe =
  (* [probe] is the freshly-entered text; if it parses as an expression we
     wrap it so its value prints. *)
  let body = String.concat "\n" (List.rev s.items) in
  let program = body ^ "\n" ^ probe in
  let prog = Nomap_bytecode.Compile.compile_source ~name:"<repl>" program in
  let vm =
    Vm.create ~fuel:500_000_000 ~config:(Config.create s.arch) ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  vm

let try_eval s input =
  (* Try as expression first: `__ = (input);` prints its value. *)
  let as_expr = Printf.sprintf "__repl_value = (%s);" (String.trim input) in
  let attempt probe =
    match run_session s ~probe with
    | vm -> Some vm
    | exception _ -> None
  in
  match attempt as_expr with
  | Some vm ->
    (match Vm.global vm "__repl_value" with
    | Some v -> Printf.printf "= %s\n" (Value.to_js_string v)
    | None -> ());
    s.items <- as_expr :: s.items;
    Some vm
  | None -> (
    match attempt input with
    | Some vm ->
      s.items <- input :: s.items;
      Some vm
    | None -> None)

let print_stats (vm : Vm.t) =
  let c = Vm.counters vm in
  Printf.printf "  [%d instrs, %.0f cycles, %d ftl calls, %d tx commits, %d deopts]\n"
    (Counters.total_instrs c) (Counters.cycles c) c.Counters.ftl_calls c.Counters.tx_commits
    c.Counters.deopts

let read_input () =
  (* Lines ending in '\' continue onto the next line. *)
  let buf = Buffer.create 64 in
  let rec go prompt =
    print_string prompt;
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | line ->
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\\' then begin
        Buffer.add_string buf (String.sub line 0 (n - 1));
        Buffer.add_char buf '\n';
        go "... "
      end
      else begin
        Buffer.add_string buf line;
        Some (Buffer.contents buf)
      end
  in
  go "js> "

let () =
  print_endline "MiniJS REPL on the NoMap VM — :quit to exit, :arch NAME, :stats, :list, :reset";
  let s = { items = []; arch = Config.NoMap_full; stats = false } in
  let rec loop () =
    match read_input () with
    | None -> print_newline ()
    | Some "" -> loop ()
    | Some ":quit" | Some ":q" -> ()
    | Some ":reset" ->
      s.items <- [];
      print_endline "session cleared";
      loop ()
    | Some ":list" ->
      List.iter print_endline (List.rev s.items);
      loop ()
    | Some ":stats" ->
      s.stats <- not s.stats;
      Printf.printf "stats %s\n" (if s.stats then "on" else "off");
      loop ()
    | Some input when String.length input > 6 && String.sub input 0 6 = ":arch " -> (
      let name = String.trim (String.sub input 6 (String.length input - 6)) in
      match
        List.find_opt
          (fun a -> String.lowercase_ascii (Config.name a) = String.lowercase_ascii name)
          Config.all
      with
      | Some a ->
        s.arch <- a;
        Printf.printf "architecture: %s\n" (Config.name a);
        loop ()
      | None ->
        Printf.printf "unknown architecture; one of: %s\n"
          (String.concat ", " (List.map Config.name Config.all));
        loop ())
    | Some input ->
      (match try_eval s input with
      | Some vm -> if s.stats then print_stats vm
      | None -> (
        (* Re-run to surface the error message. *)
        try ignore (run_session s ~probe:input)
        with
        | Failure msg | Nomap_bytecode.Compile.Error msg -> Printf.printf "error: %s\n" msg
        | Nomap_interp.Interp.Runtime_error msg -> Printf.printf "runtime error: %s\n" msg
        | Nomap_interp.Instance.Out_of_fuel -> print_endline "error: execution budget exceeded"
        | e -> Printf.printf "error: %s\n" (Printexc.to_string e)));
      loop ()
  in
  loop ()
