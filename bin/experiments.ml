(** CLI for regenerating the paper's tables and figures.

    Usage: experiments.exe [EXPERIMENT] [-j N] — where EXPERIMENT is one of
    fig1, table1, fig3, deopt_freq, fig8, fig9, fig10, fig11, table4,
    validate_htm, ablation, headline, all (default: all).  Measurements are
    planned up front, deduplicated, and executed on N domains (default: the
    machine's recommended domain count); tables render afterwards, in
    order, and are bit-identical at any N. *)

module E = Nomap_harness.Experiments
module Scheduler = Nomap_harness.Scheduler

open Cmdliner

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let run_experiment name jobs =
  let names =
    match name with
    | "fig3" -> [ "fig3a"; "fig3b" ]
    | "all" -> E.all_names
    | n -> [ n ]
  in
  match List.filter (fun n -> Option.is_none (E.find n)) names with
  | missing :: _ ->
    prerr_endline ("unknown experiment: " ^ missing);
    exit 1
  | [] ->
    let t0 = now_s () in
    ignore (E.run ~jobs names);
    Printf.eprintf "[%s: %.1fs wall, -j %d]\n" name (now_s () -. t0) jobs

let experiment =
  let doc =
    "Experiment to run: fig1, table1, fig3, deopt_freq, fig8, fig9, fig10, fig11, table4, \
     validate_htm, ablation, headline, or all."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let jobs =
  let doc = "Number of domains to execute measurements on." in
  Arg.(
    value
    & opt int (Scheduler.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Regenerate the NoMap paper's tables and figures from the simulator" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run_experiment $ experiment $ jobs)

let () = exit (Cmd.eval cmd)
