(** serve.exe: the nomapd execution daemon.

    Accepts MiniJS programs over a length-prefixed Unix-domain-socket
    protocol and executes each on a fresh, isolated VM, amortizing
    compilation through a shared LRU artifact cache (see DESIGN.md §12).

    Usage:
      serve.exe --socket /tmp/nomapd.sock --domains 2
      loadgen.exe --socket /tmp/nomapd.sock --requests 200 --clients 4

    Stop it with SIGINT/SIGTERM or a SHUTDOWN request
    (loadgen.exe --shutdown). *)

module Server = Nomap_server.Server

open Cmdliner

let socket =
  Arg.(
    value
    & opt string "nomapd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")

let domains =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:"Worker domains executing requests (default: the host's recommended domain count).")

let queue =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission-queue bound (in frames); requests beyond it are answered \
              $(b,overloaded).")

let max_conns =
  Arg.(
    value
    & opt int 512
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Open-connection bound; connections beyond it are rejected at the door.")

let cache =
  Arg.(
    value
    & opt int 128
    & info [ "cache" ] ~docv:"N" ~doc:"Compiled-artifact cache capacity (LRU entries).")

let max_fuel =
  Arg.(
    value
    & opt int Nomap_server.Session.default_fuel
    & info [ "max-fuel" ] ~docv:"N"
        ~doc:
          "Cap on client-requested RUN fuel; requests asking for more are refused with a \
           $(b,fuel-limit) error instead of pinning a worker.  Non-positive means the \
           built-in default.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No startup/shutdown chatter.")

let main socket domains queue cache max_conns max_fuel quiet =
  let t =
    Server.start
      {
        Server.socket_path = socket;
        domains;
        queue_capacity = queue;
        cache_capacity = cache;
        max_connections = max_conns;
        max_fuel;
      }
  in
  if not quiet then
    Printf.printf "nomapd: listening on %s (%d domains, queue %d, cache %d, max conns %d)\n%!"
      socket domains queue cache max_conns;
  let on_signal _ = Server.request_stop t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  (match Server.wait t with
  | () -> ()
  | exception e ->
    Printf.eprintf "nomapd: worker died: %s\n%!" (Printexc.to_string e);
    exit 1);
  if not quiet then print_endline "nomapd: stopped";
  0

let cmd =
  let doc = "Long-running MiniJS execution daemon with a shared compiled-artifact cache" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const main $ socket $ domains $ queue $ cache $ max_conns $ max_fuel $ quiet)

let () = exit (Cmd.eval' cmd)
