(** fuzz.exe: cross-tier differential fuzzing CLI.

    Generates seeded random MiniJS programs and runs each through every
    tier/architecture configuration, requiring the same observable result
    and heap checksum as the reference interpreter.  Divergences are
    shrunk to minimal reproducers and printed; the exit code is the number
    of diverging cases (capped at 125), so CI can gate on it.  Fuel-skipped
    seeds are retried once with boosted fuel and reported in the summary;
    with --max-skips N, more than N remaining skips exits 123.

    Besides the tier matrix, each case (unless --agents 0/1) replays the
    program on N agents over one shared segment twice under the same
    seeded schedule: the two runs must be bit-identical (results, heap
    checksums, segment image, conflict count) — the multi-agent
    determinism axis.

    Usage:
      fuzz.exe --seed 42 --iters 500                # the acceptance run
      fuzz.exe --seed 42 --iters 200 --sabotage     # self-test: must fail
      fuzz.exe --tier-pair ftl:NoMap-RTM --iters 50 # narrow the matrix
      fuzz.exe --tier-pair ftl:Base:threaded --iters 50  # one engine only
      fuzz.exe --agents 4 --iters 100               # wider agents axis
      fuzz.exe --emit seed.js --seed 7 --iters 1    # dump a program *)

module Fuzz = Nomap_fuzz.Fuzz
module Gen = Nomap_fuzz.Gen
module Oracle = Nomap_fuzz.Oracle
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Engine = Nomap_machine.Engine

open Cmdliner

let parse_tier = function
  | "interp" -> Ok Vm.Cap_interp
  | "baseline" -> Ok Vm.Cap_baseline
  | "dfg" -> Ok Vm.Cap_dfg
  | "ftl" -> Ok Vm.Cap_ftl
  | t -> Error ("unknown tier " ^ t ^ " (interp|baseline|dfg|ftl)")

(* Architecture names are matched case-insensitively with '-' and '_'
   interchangeable, so the spelled form "NoMap-RTM" resolves to NoMap_RTM. *)
let parse_arch s =
  let norm s = String.lowercase_ascii (String.map (function '-' -> '_' | c -> c) s) in
  match List.find_opt (fun a -> norm (Config.name a) = norm s) Config.all with
  | Some a -> Ok a
  | None ->
    Error
      ("unknown arch " ^ s ^ " (one of "
      ^ String.concat ", " (List.map Config.name Config.all)
      ^ ")")

let parse_engine = function
  | "decoded" -> Ok Engine.Decoded
  | "threaded" -> Ok Engine.Threaded
  | e -> Error ("unknown engine " ^ e ^ " (decoded|threaded)")

let parse_ic = function
  | "ic" -> Ok true
  | "noic" -> Ok false
  | e -> Error ("unknown ic flag " ^ e ^ " (ic|noic)")

(* "ftl:NoMap-RTM" or "dfg:Base,ftl:Base:decoded,ftl:NoMap:threaded:noic".
   Each token is TIER:ARCH[:ENGINE[:IC]]; without an engine the optimizing
   tiers expand to both engines so the cross-engine counter comparison
   applies; a noic config is closed over its ic-on partner so the host-IC
   comparison applies. *)
let parse_cfgs s =
  let parse_one tok =
    match String.split_on_char ':' tok with
    | [ tier; arch ] -> (
      match (parse_tier (String.lowercase_ascii tier), parse_arch arch) with
      | Ok t, Ok a ->
        Ok
          (Oracle.with_engine_partners
             [ { Oracle.tier = t; arch = a; engine = Engine.Decoded; host_ic = true } ])
      | (Error e, _ | _, Error e) -> Error e)
    | [ tier; arch; engine ] -> (
      match
        ( parse_tier (String.lowercase_ascii tier),
          parse_arch arch,
          parse_engine (String.lowercase_ascii engine) )
      with
      | Ok t, Ok a, Ok g ->
        Ok [ { Oracle.tier = t; arch = a; engine = g; host_ic = true } ]
      | (Error e, _, _ | _, Error e, _ | _, _, Error e) -> Error e)
    | [ tier; arch; engine; ic ] -> (
      match
        ( parse_tier (String.lowercase_ascii tier),
          parse_arch arch,
          parse_engine (String.lowercase_ascii engine),
          parse_ic (String.lowercase_ascii ic) )
      with
      | Ok t, Ok a, Ok g, Ok i ->
        Ok
          (Oracle.with_ic_partners
             [ { Oracle.tier = t; arch = a; engine = g; host_ic = i } ])
      | (Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e) ->
        Error e)
    | _ -> Error ("bad config " ^ tok ^ " (expected TIER:ARCH[:ENGINE[:IC]])")
  in
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest -> ( match parse_one tok with Ok c -> go (acc @ c) rest | Error e -> Error e)
  in
  Result.map (List.sort_uniq compare) (go [] (String.split_on_char ',' s))

let cfg_conv =
  let parse s = match parse_cfgs s with Ok c -> `Ok c | Error e -> `Error e in
  let print fmt cs =
    Format.pp_print_string fmt (String.concat "," (List.map Oracle.cfg_name cs))
  in
  (parse, print)

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")

let iters =
  Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"Number of programs to generate.")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Domains to run cases on (default 1).")

let shrink =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~docv:"BOOL" ~doc:"Shrink diverging programs to minimal reproducers.")

let tier_pair =
  Arg.(
    value
    & opt (some cfg_conv) None
    & info [ "tier-pair"; "cfgs" ] ~docv:"TIER:ARCH[:ENGINE][,...]"
        ~doc:
          "Restrict the matrix to these configurations (each checked against the reference \
           interpreter).  Tiers: interp, baseline, dfg, ftl.  Archs: Base, NoMap_S, NoMap_B, \
           NoMap, NoMap_BC, NoMap_RTM, NoMap_RTM_STM ('-' and '_' interchangeable).  Engines: decoded, \
           threaded; omitting the engine runs dfg/ftl configurations under $(b,both) engines \
           and additionally requires their full counter tables to match bit-for-bit.  Unknown \
           tier, arch or engine names are rejected with the valid alternatives listed.")

let sabotage =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:
          "Self-test: swap subtraction operands in FTL-compiled code.  The run $(b,must) report \
           divergences; use it to prove the oracle catches injected miscompiles.")

let emit =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"FILE"
        ~doc:"Write the first generated program's source to FILE and exit (corpus pinning).")

let agents =
  Arg.(
    value
    & opt int 2
    & info [ "agents" ] ~docv:"N"
        ~doc:
          "Multi-agent determinism axis: run each program on N agents over a shared segment \
           twice under the same seeded schedule and require bit-identical observations.  0 \
           or 1 disables the axis.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the final summary.")

let max_skips =
  Arg.(
    value
    & opt int max_int
    & info [ "max-skips" ] ~docv:"N"
        ~doc:
          "Fail (exit 123) when more than N seeds remain skipped after the boosted-fuel \
           retry.  Skips shrink oracle coverage, so CI pins this; the default tolerates \
           any number.")

let main seed iters jobs shrink cfgs sabotage emit quiet max_skips agents =
  match emit with
  | Some file ->
    let prog = Gen.program_of_seed ~seed:(Fuzz.case_seed ~seed 0) in
    let oc = open_out file in
    output_string oc (Gen.to_source prog);
    close_out oc;
    Printf.printf "wrote %s (%d nodes)\n" file (Nomap_fuzz.Shrink.size prog);
    0
  | None ->
    let ftl_mutate = if sabotage then Some Fuzz.sabotage_swap_sub else None in
    let t0 = Unix.gettimeofday () in
    let on_case i outcome =
      if not quiet then
        match outcome with
        | `Agree -> ()
        | `Skip (seed, msg) -> Printf.printf "case %d (seed %d): skipped: %s\n%!" i seed msg
        | `Diverge f -> Printf.printf "case %d: %s\n%!" i (Fuzz.failure_to_string f)
    in
    let s = Fuzz.run ?cfgs ?ftl_mutate ~agents ~jobs ~shrink ~on_case ~seed ~iters () in
    Printf.printf "%s [%.1fs]\n" (Fuzz.summary_to_string s) (Unix.gettimeofday () -. t0);
    let failures = List.length s.Fuzz.failures in
    if failures > 0 then min 125 failures
    else if s.Fuzz.skipped > max_skips then begin
      Printf.printf "FAIL: %d seeds still skipped after retry (max-skips %d)\n" s.Fuzz.skipped
        max_skips;
      123
    end
    else 0

let cmd =
  let doc = "Differential fuzzer: random MiniJS programs through every tier and architecture" in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const main $ seed $ iters $ jobs $ shrink $ tier_pair $ sabotage $ emit $ quiet
      $ max_skips $ agents)

let () = exit (Cmd.eval' cmd)
