(** The NoMap transformation pipeline applied to freshly-built FTL LIR,
    before the conventional optimization passes run (paper §IV-B: "We
    perform this transformation before LLVM runs its optimization passes").

    Base gets ghost markers only (for instruction-category accounting);
    the NoMap variants additionally convert SMPs to aborts and, per
    configuration, combine bounds checks, drop overflow checks (SOF), or
    drop every in-transaction check (the NoMap_BC limit study). *)

module L = Nomap_lir.Lir

type stats = {
  mutable regions_whole : int;
  mutable regions_per_iter : int;
  mutable bounds_combined : int;
  mutable overflow_removed : int;
  mutable checks_removed_bc : int;
}

let empty_stats () =
  {
    regions_whole = 0;
    regions_per_iter = 0;
    bounds_combined = 0;
    overflow_removed = 0;
    checks_removed_bc = 0;
  }

(* Delete every abort-exit check matching [select], rewiring uses to the
   checked value.  Only sound when something else subsumes the guard — SOF
   hardware replaces the overflow checks this removes. *)
let remove_abort_checks f select =
  let victims = ref [] in
  L.iter_instrs f (fun _ i ->
      match L.exit_of i.L.kind with
      | Some { L.ekind = L.Abort; _ } when select i.L.kind -> (
        match L.checked_value i.L.kind with
        | Some operand -> victims := (i.L.id, operand) :: !victims
        | None -> ())
      | _ -> ());
  Nomap_opt.Passes.delete_and_replace_all f !victims;
  List.length !victims

(* The BC limit study models checks whose *cost* the hardware removed, not
   absent guards: deleting an abort-exit check outright changes observable
   behavior whenever the check would actually have failed at runtime (the
   transaction must abort and re-execute unoptimized).  So mark the checks
   elided — they still execute and guard, but cost nothing.  Decode
   additionally zero-costs pure feeders that deletion-plus-DCE would have
   erased, keeping the instruction accounting of the limit study intact. *)
let elide_abort_checks f =
  let n = ref 0 in
  L.iter_instrs f (fun _ i ->
      match L.exit_of i.L.kind with
      | Some { L.ekind = L.Abort; _ } when not i.L.elided ->
        i.L.elided <- true;
        incr n
      | _ -> ());
  !n

let apply (config : Config.t) ~placement ~(profile : Nomap_profile.Feedback.func_profile)
    ?(stats = empty_stats ()) (c : Nomap_tiers.Specialize.compiled) =
  let f = c.Nomap_tiers.Specialize.lir in
  let regions = Txplace.run config ~placement ~profile c in
  List.iter
    (fun r ->
      match r.Txplace.level with
      | Txplace.Whole -> stats.regions_whole <- stats.regions_whole + 1
      | Txplace.Chunked _ -> stats.regions_per_iter <- stats.regions_per_iter + 1)
    regions;
  if Config.convert_smps config then begin
    if Config.combine_bounds config then
      stats.bounds_combined <- stats.bounds_combined + Bounds_combine.run c regions;
    if Config.remove_overflow config then
      stats.overflow_removed <-
        stats.overflow_removed
        + remove_abort_checks f (function L.Check_overflow _ -> true | _ -> false);
    if Config.remove_all_checks config then
      stats.checks_removed_bc <- stats.checks_removed_bc + elide_abort_checks f
  end;
  regions
