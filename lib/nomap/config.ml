(** The evaluated architectures: the paper's six (Table II) plus the hybrid
    RTM+STM capacity-fallback column (DESIGN.md §15). *)

type arch =
  | Base  (** unmodified JavaScriptCore; no transactions *)
  | NoMap_S  (** transactions inserted, SMPs become aborts, optimizations run across them *)
  | NoMap_B  (** NoMap_S + hoisting/sinking bounds checks *)
  | NoMap_full  (** NoMap_B + SOF overflow-check removal — the proposed design *)
  | NoMap_BC  (** unrealistic best case: all checks within transactions removed *)
  | NoMap_RTM  (** NoMap_B running on Intel RTM (no SOF on x86) *)
  | NoMap_RTM_STM
      (** NoMap_RTM whose capacity aborts fall back to a modeled software
          transaction instead of deoptimizing — the region keeps running
          its check-elided code and pays a per-access STM overhead
          ([stm_factor]) instead of a Baseline re-execution *)

(* Append-only: the list order is the nomapd wire format for arch codes and
   the row order of test/determinism.expected. *)
let all = [ Base; NoMap_S; NoMap_B; NoMap_full; NoMap_BC; NoMap_RTM; NoMap_RTM_STM ]

let name = function
  | Base -> "Base"
  | NoMap_S -> "NoMap_S"
  | NoMap_B -> "NoMap_B"
  | NoMap_full -> "NoMap"
  | NoMap_BC -> "NoMap_BC"
  | NoMap_RTM -> "NoMap_RTM"
  | NoMap_RTM_STM -> "NoMap_RTM_STM"

type t = {
  arch : arch;
  stm_factor : float;
      (** single-thread slowdown of an STM-instrumented transactional
          access relative to a plain one (only meaningful for
          [NoMap_RTM_STM]); clamped to the 3-10x range the STM literature
          reports for single-thread overhead *)
}

let default_stm_factor = 4.0
let min_stm_factor = 3.0
let max_stm_factor = 10.0

let create ?(stm_factor = default_stm_factor) arch =
  { arch; stm_factor = Float.min max_stm_factor (Float.max min_stm_factor stm_factor) }

let htm_mode t : Nomap_htm.Htm.mode =
  match t.arch with
  | Base -> Nomap_htm.Htm.Ghost
  | NoMap_RTM | NoMap_RTM_STM -> Nomap_htm.Htm.Rtm
  | NoMap_S | NoMap_B | NoMap_full | NoMap_BC -> Nomap_htm.Htm.Rot

(** Capacity overflow upgrades the transaction to a software transaction
    instead of aborting (DESIGN.md §15). *)
let stm_fallback t = t.arch = NoMap_RTM_STM

(** Convert in-transaction SMPs to aborts (everything but Base). *)
let convert_smps t = t.arch <> Base

let combine_bounds t =
  match t.arch with
  | NoMap_B | NoMap_full | NoMap_BC | NoMap_RTM | NoMap_RTM_STM -> true
  | Base | NoMap_S -> false

(** Remove in-transaction overflow checks, relying on the Sticky Overflow
    Flag.  x86 RTM has no SOF (paper §VI-B), so the RTM-based archs keep
    them. *)
let remove_overflow t =
  match t.arch with NoMap_full | NoMap_BC -> true | _ -> false

let remove_all_checks t = t.arch = NoMap_BC

(** The machine models SOF hardware whenever overflow checks were removed:
    integer overflow inside a transaction sets the sticky flag and the
    outermost Tx_end aborts on it (paper §V-B). *)
let sof_enabled = remove_overflow

(** The workloads are scaled down ~16-30x from the paper's; the modeled HTM
    capacities are scaled by the same factor so the footprint/capacity
    ratios (and hence which transactions fit which HTM) stay in the paper's
    regime.  Documented in DESIGN.md §6. *)
let capacity_scale = 8

(** Write-footprint budget (bytes) for whole-loop transaction placement:
    conservative halves of the capacity the mode can buffer.  NoMap_RTM_STM
    uses the same budgets as NoMap_RTM on purpose — the compiler places
    transactions identically, so any measured difference between the two
    archs is the runtime fallback policy alone. *)
let write_budget t =
  (match htm_mode t with
  | Nomap_htm.Htm.Rtm -> 16 * 1024  (* L1D is 32KB *)
  | _ -> 128 * 1024 (* ROT buffers in the 256KB L2 *))
  / capacity_scale

let read_budget t =
  match htm_mode t with
  | Nomap_htm.Htm.Rtm -> Some (128 * 1024 / capacity_scale)  (* L2 is 256KB *)
  | _ -> None
