(** Fuzzing campaign driver.

    Generates [iters] programs from per-case seeds derived from the campaign
    seed, runs each through the differential {!Oracle}, and shrinks any
    divergence to a minimal reproducer.  Cases are independent, so batches
    run on OCaml 5 domains via the harness scheduler. *)

module Ast = Nomap_jsir.Ast
module Scheduler = Nomap_harness.Scheduler

type failure = {
  seed : int;  (** per-case seed: replay with [--seed N --iters 1] *)
  program : Ast.program;
  divergences : Oracle.divergence list;
  agents : (string * string) option;
      (** multi-agent replay mismatch: the two observations that should
          have been bit-identical (empty [divergences] is possible — a
          determinism leak needn't miscompute anything solo) *)
  shrunk : Ast.program option;
}

type summary = {
  tested : int;
  agreed : int;
  skipped : int;
      (** reference itself crashed or ran out of fuel, on BOTH the normal
          and the boosted-fuel attempt *)
  retried : int;  (** seeds that skipped once and were retried with boosted fuel *)
  recovered : int;  (** retried seeds that reached a verdict on the retry *)
  skip_seeds : (int * string) list;  (** seed × reason for every final skip *)
  failures : failure list;
}

(** Per-case seed: decorrelate neighbouring indices (golden-ratio stride)
    while keeping the mapping stable, so a failure's seed alone reproduces
    it regardless of [iters] or job count. *)
let case_seed ~seed index = seed + ((index + 1) * 0x9E3779B9)

let shrink_failure ?ftl_mutate ~max_checks ~cfgs program =
  (* Re-check only against the configurations that actually diverged:
     shrinking probes the property hundreds of times and the full matrix
     would multiply that by ~9 VM runs. *)
  let keep p =
    match Oracle.check ~cfgs ?ftl_mutate p with Oracle.Diverge _ -> true | _ -> false
  in
  Shrink.shrink ~max_checks ~keep program

let run_case ?cfgs ?(fuel_boost = 1) ?ftl_mutate ?(agents = 0) ~shrink ~shrink_checks seed
    =
  let program = Gen.program_of_seed ~seed in
  (* The agents axis uses the case seed as the schedule seed, so replaying
     a failure by seed replays its schedule too.  Sabotaged runs are
     excluded: injected miscompiles are deterministic, so they would pass
     replay while wasting four FTL runs per case. *)
  let agents_div =
    if agents >= 2 && ftl_mutate = None then
      Oracle.check_agents ~agents ~schedule_seed:seed program
    else None
  in
  match (Oracle.check ?cfgs ~fuel_boost ?ftl_mutate program, agents_div) with
  | Oracle.Agree, None -> `Agree
  | Oracle.Skip msg, None -> `Skip (seed, msg)
  | verdict, agents_div ->
    let divergences = match verdict with Oracle.Diverge ds -> ds | _ -> [] in
    let shrunk =
      if (not shrink) || divergences = [] then None
      else
        (* Close the narrowed matrix under the engine axis: a counters-only
           engine divergence is invisible without the partner engine's run
           to compare against. *)
        let diverging =
          Oracle.with_ic_partners
            (Oracle.with_engine_partners (List.map (fun d -> d.Oracle.cfg) divergences))
        in
        Some (shrink_failure ?ftl_mutate ~max_checks:shrink_checks ~cfgs:diverging program)
    in
    `Diverge { seed; program; divergences; agents = agents_div; shrunk }

(** Run a campaign.  [on_case] (if given) is called after each case with
    (index, outcome) for progress reporting; with [jobs > 1] calls arrive
    in batch order, not real time.

    A seed whose reference run skipped (out of fuel / crash) is not
    dropped: it is retried once with [Oracle.skip_retry_boost]× fuel — a
    heavy-but-terminating program then reaches a real verdict, and the
    retry's outcome (including a fresh divergence) replaces the skip.
    [on_case] sees the retry as a second call at the same index. *)
let run ?cfgs ?ftl_mutate ?agents ?(jobs = 1) ?(shrink = true) ?(shrink_checks = 300)
    ?on_case ~seed ~iters () =
  let outcomes =
    Scheduler.parallel_map ~jobs
      (fun index ->
        (index, run_case ?cfgs ?ftl_mutate ?agents ~shrink ~shrink_checks (case_seed ~seed index)))
      (List.init iters Fun.id)
  in
  (match on_case with Some f -> List.iter (fun (i, o) -> f i o) outcomes | None -> ());
  let first_skips =
    List.filter_map
      (fun (i, o) -> match o with `Skip (s, _) -> Some (i, s) | _ -> None)
      outcomes
  in
  let retries =
    Scheduler.parallel_map ~jobs
      (fun (index, case) ->
        ( index,
          run_case ?cfgs ~fuel_boost:Oracle.skip_retry_boost ?ftl_mutate ?agents ~shrink
            ~shrink_checks case ))
      first_skips
  in
  (match on_case with Some f -> List.iter (fun (i, o) -> f i o) retries | None -> ());
  let final = List.filter (fun (_, o) -> match o with `Skip _ -> false | _ -> true) outcomes @ retries in
  let count p l = List.length (List.filter p l) in
  let agreed = count (fun (_, o) -> o = `Agree) final in
  let skip_seeds =
    List.filter_map (fun (_, o) -> match o with `Skip (s, m) -> Some (s, m) | _ -> None) retries
  in
  let failures =
    List.filter_map (fun (_, o) -> match o with `Diverge f -> Some f | _ -> None) final
  in
  let retried = List.length first_skips in
  {
    tested = iters;
    agreed;
    skipped = List.length skip_seeds;
    retried;
    recovered = retried - List.length skip_seeds;
    skip_seeds;
    failures;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let failure_to_string f =
  let b = Buffer.create 256 in
  Printf.bprintf b "seed %d diverged:\n" f.seed;
  List.iter (fun d -> Printf.bprintf b "%s\n" (Oracle.divergence_to_string d)) f.divergences;
  (match f.agents with
  | Some (first, second) ->
    Printf.bprintf b
      "  multi-agent replay not deterministic:\n  first    %s\n  second   %s\n" first second
  | None -> ());
  (match f.shrunk with
  | Some p ->
    Printf.bprintf b "shrunk reproducer (%d nodes, kernel %d):\n%s" (Shrink.size p)
      (Shrink.kernel_size p) (Gen.to_source p)
  | None -> Printf.bprintf b "original program:\n%s" (Gen.to_source f.program));
  Buffer.contents b

let summary_to_string s =
  let retry =
    if s.retried = 0 then ""
    else Printf.sprintf " (%d retried with %dx fuel, %d recovered)" s.retried
        Oracle.skip_retry_boost s.recovered
  in
  let skip_detail =
    if s.skip_seeds = [] then ""
    else
      "\nskipped seeds:"
      ^ String.concat ""
          (List.map (fun (seed, msg) -> Printf.sprintf "\n  seed %d: %s" seed msg)
             s.skip_seeds)
  in
  Printf.sprintf "%d tested: %d agreed, %d skipped%s, %d diverged%s" s.tested s.agreed
    s.skipped retry (List.length s.failures) skip_detail

(* ------------------------------------------------------------------ *)
(* Deliberate miscompile, for self-test (--sabotage and the acceptance
   criterion "an injected bug is caught and shrunk"). *)

(** Swap the operands of every subtraction in FTL-compiled LIR: [a - b]
    becomes [b - a].  Semantics-preserving for [a = b] only, so generated
    programs catch it quickly; the graph stays verifier-well-formed, which
    is the point — only *differential* checking can see it. *)
let sabotage_swap_sub (f : Nomap_lir.Lir.func) =
  let module L = Nomap_lir.Lir in
  L.iter_instrs f (fun _ i ->
      match i.L.kind with
      | L.Isub (a, b) -> i.L.kind <- L.Isub (b, a)
      | L.Isub_wrap (a, b) -> i.L.kind <- L.Isub_wrap (b, a)
      | L.Fsub (a, b) -> i.L.kind <- L.Fsub (b, a)
      | _ -> ())
