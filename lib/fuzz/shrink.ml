(** Greedy test-case minimization.

    Given a program with some property (for the fuzzer: "still diverges
    between two tiers"), repeatedly apply the smallest structural reductions
    that preserve the property, until none applies:

    1. delete a statement;
    2. unwrap a compound statement (if/loop/block) into its body;
    3. replace an expression by one of its subexpressions, or by [1];
    4. halve an integer literal (trip counts, masks, constants).

    The property check is a full differential run, so the total number of
    candidate evaluations is capped; each accepted candidate strictly
    decreases the (size, literal-mass) measure, so this terminates. *)

module Ast = Nomap_jsir.Ast

(* ------------------------------------------------------------------ *)
(* Size *)

let rec size_expr (e : Ast.expr) =
  1
  +
  match e with
  | Ast.Number _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Undefined | Ast.Var _ | Ast.This -> 0
  | Ast.Array_lit es -> List.fold_left (fun a e -> a + size_expr e) 0 es
  | Ast.Object_lit fs -> List.fold_left (fun a (_, e) -> a + size_expr e) 0 fs
  | Ast.Index (a, i) -> size_expr a + size_expr i
  | Ast.Prop (o, _) -> size_expr o
  | Ast.Call (_, args) | Ast.New (_, args) -> List.fold_left (fun a e -> a + size_expr e) 0 args
  | Ast.Method_call (o, _, args) ->
    List.fold_left (fun a e -> a + size_expr e) (size_expr o) args
  | Ast.New_array n -> size_expr n
  | Ast.Unop (_, e) -> size_expr e
  | Ast.Binop (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) -> size_expr a + size_expr b
  | Ast.Cond (c, a, b) -> size_expr c + size_expr a + size_expr b
  | Ast.Assign (lv, e) | Ast.Op_assign (_, lv, e) -> size_lvalue lv + size_expr e
  | Ast.Incr (lv, _, _) -> size_lvalue lv

and size_lvalue = function
  | Ast.Lvar _ -> 1
  | Ast.Lindex (a, i) -> 1 + size_expr a + size_expr i
  | Ast.Lprop (o, _) -> 1 + size_expr o

let rec size_stmt (s : Ast.stmt) =
  1
  +
  match s with
  | Ast.Expr e -> size_expr e
  | Ast.Var_decl ds ->
    List.fold_left (fun a (_, e) -> a + match e with Some e -> size_expr e | None -> 0) 0 ds
  | Ast.If (c, t, e) -> size_expr c + size_block t + size_block e
  | Ast.While (c, b) -> size_expr c + size_block b
  | Ast.Do_while (b, c) -> size_block b + size_expr c
  | Ast.For (init, c, step, b) ->
    (match init with Some s -> size_stmt s | None -> 0)
    + (match c with Some e -> size_expr e | None -> 0)
    + (match step with Some e -> size_expr e | None -> 0)
    + size_block b
  | Ast.Return (Some e) -> size_expr e
  | Ast.Return None | Ast.Break | Ast.Continue -> 0
  | Ast.Block b -> size_block b

and size_block b = List.fold_left (fun a s -> a + size_stmt s) 0 b

let size_item = function
  | Ast.Func f -> 1 + size_block f.Ast.body
  | Ast.Stmt s -> size_stmt s

(** Total AST node count. *)
let size prog = List.fold_left (fun a i -> a + size_item i) 0 prog

(** Node count of function bodies only — the part the fuzzer varies; the
    fixed driver scaffold (globals + call loop) is excluded. *)
let kernel_size prog =
  List.fold_left
    (fun a -> function Ast.Func f -> a + size_block f.Ast.body | Ast.Stmt _ -> a)
    0 prog

(* ------------------------------------------------------------------ *)
(* Indexed rewriting.  Statements and expressions are numbered in traversal
   order; [edit_stmt]/[edit_expr] rewrite exactly the [n]th one.  The
   mutable counter threads through an otherwise pure rewrite. *)

type 'a editor = { mutable remaining : int; f : 'a }

let rec map_stmt (ed : (Ast.stmt -> Ast.stmt list) editor) (s : Ast.stmt) : Ast.stmt list =
  if ed.remaining = 0 then begin
    ed.remaining <- -1;
    ed.f s
  end
  else begin
    if ed.remaining > 0 then ed.remaining <- ed.remaining - 1;
    match s with
    | Ast.If (c, t, e) -> [ Ast.If (c, map_block ed t, map_block ed e) ]
    | Ast.While (c, b) -> [ Ast.While (c, map_block ed b) ]
    | Ast.Do_while (b, c) -> [ Ast.Do_while (map_block ed b, c) ]
    | Ast.For (init, c, step, b) -> [ Ast.For (init, c, step, map_block ed b) ]
    | Ast.Block b -> [ Ast.Block (map_block ed b) ]
    | s -> [ s ]
  end

and map_block ed b = List.concat_map (map_stmt ed) b

let rec count_stmts_block b = List.fold_left (fun a s -> a + count_stmts_stmt s) 0 b

and count_stmts_stmt s =
  1
  +
  match s with
  | Ast.If (_, t, e) -> count_stmts_block t + count_stmts_block e
  | Ast.While (_, b) | Ast.For (_, _, _, b) -> count_stmts_block b
  | Ast.Do_while (b, _) -> count_stmts_block b
  | Ast.Block b -> count_stmts_block b
  | _ -> 0

let count_stmts prog =
  List.fold_left
    (fun a -> function
      | Ast.Func f -> a + count_stmts_block f.Ast.body
      | Ast.Stmt s -> a + count_stmts_stmt s)
    0 prog

let edit_stmt prog n f =
  let ed = { remaining = n; f } in
  List.concat_map
    (function
      | Ast.Func fn -> [ Ast.Func { fn with Ast.body = map_block ed fn.Ast.body } ]
      | Ast.Stmt s -> List.map (fun s -> Ast.Stmt s) (map_stmt ed s))
    prog

(* Expression rewriting mirrors the statement walk; [For] headers are
   included so trip counts shrink too. *)

let rec map_expr (ed : (Ast.expr -> Ast.expr) editor) (e : Ast.expr) : Ast.expr =
  if ed.remaining = 0 then begin
    ed.remaining <- -1;
    ed.f e
  end
  else begin
    if ed.remaining > 0 then ed.remaining <- ed.remaining - 1;
    let r = map_expr ed in
    match e with
    | Ast.Number _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Undefined | Ast.Var _ | Ast.This ->
      e
    | Ast.Array_lit es -> Ast.Array_lit (List.map r es)
    | Ast.Object_lit fs -> Ast.Object_lit (List.map (fun (n, e) -> (n, r e)) fs)
    | Ast.Index (a, i) -> Ast.Index (r a, r i)
    | Ast.Prop (o, p) -> Ast.Prop (r o, p)
    | Ast.Call (f, args) -> Ast.Call (f, List.map r args)
    | Ast.Method_call (o, m, args) ->
      let o = r o in
      Ast.Method_call (o, m, List.map r args)
    | Ast.New (f, args) -> Ast.New (f, List.map r args)
    | Ast.New_array n -> Ast.New_array (r n)
    | Ast.Unop (op, e) -> Ast.Unop (op, r e)
    | Ast.Binop (op, a, b) ->
      let a = r a in
      Ast.Binop (op, a, r b)
    | Ast.And (a, b) ->
      let a = r a in
      Ast.And (a, r b)
    | Ast.Or (a, b) ->
      let a = r a in
      Ast.Or (a, r b)
    | Ast.Cond (c, a, b) ->
      let c = r c in
      let a = r a in
      Ast.Cond (c, a, r b)
    | Ast.Assign (lv, e) ->
      let lv = map_lvalue ed lv in
      Ast.Assign (lv, r e)
    | Ast.Op_assign (op, lv, e) ->
      let lv = map_lvalue ed lv in
      Ast.Op_assign (op, lv, r e)
    | Ast.Incr (lv, d, k) -> Ast.Incr (map_lvalue ed lv, d, k)
  end

and map_lvalue ed = function
  | Ast.Lvar x -> Ast.Lvar x
  | Ast.Lindex (a, i) ->
    let a = map_expr ed a in
    Ast.Lindex (a, map_expr ed i)
  | Ast.Lprop (o, p) -> Ast.Lprop (map_expr ed o, p)

let rec map_expr_stmt ed (s : Ast.stmt) : Ast.stmt =
  let re = map_expr ed in
  match s with
  | Ast.Expr e -> Ast.Expr (re e)
  | Ast.Var_decl ds -> Ast.Var_decl (List.map (fun (x, e) -> (x, Option.map re e)) ds)
  | Ast.If (c, t, e) ->
    let c = re c in
    let t = map_expr_block ed t in
    Ast.If (c, t, map_expr_block ed e)
  | Ast.While (c, b) ->
    let c = re c in
    Ast.While (c, map_expr_block ed b)
  | Ast.Do_while (b, c) ->
    let b = map_expr_block ed b in
    Ast.Do_while (b, re c)
  | Ast.For (init, c, step, b) ->
    let init = Option.map (map_expr_stmt ed) init in
    let c = Option.map re c in
    let step = Option.map re step in
    Ast.For (init, c, step, map_expr_block ed b)
  | Ast.Return e -> Ast.Return (Option.map re e)
  | (Ast.Break | Ast.Continue) as s -> s
  | Ast.Block b -> Ast.Block (map_expr_block ed b)

and map_expr_block ed b = List.map (map_expr_stmt ed) b

(* Expression numbering must match the walk above, which visits lvalue
   *subexpressions* but not lvalues themselves — so this counts the same
   positions [map_expr] assigns, not [size_expr]'s node count. *)
let count_exprs_expr (e : Ast.expr) =
  let n = ref 1 in
  let rec go e =
    match (e : Ast.expr) with
    | Ast.Number _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Undefined | Ast.Var _ | Ast.This ->
      ()
    | Ast.Array_lit es -> List.iter visit es
    | Ast.Object_lit fs -> List.iter (fun (_, e) -> visit e) fs
    | Ast.Index (a, i) ->
      visit a;
      visit i
    | Ast.Prop (o, _) -> visit o
    | Ast.Call (_, args) | Ast.New (_, args) -> List.iter visit args
    | Ast.Method_call (o, _, args) ->
      visit o;
      List.iter visit args
    | Ast.New_array n -> visit n
    | Ast.Unop (_, e) -> visit e
    | Ast.Binop (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      visit a;
      visit b
    | Ast.Cond (c, a, b) ->
      visit c;
      visit a;
      visit b
    | Ast.Assign (lv, e) | Ast.Op_assign (_, lv, e) ->
      go_lvalue lv;
      visit e
    | Ast.Incr (lv, _, _) -> go_lvalue lv
  and visit e =
    incr n;
    go e
  and go_lvalue = function
    | Ast.Lvar _ -> ()
    | Ast.Lindex (a, i) ->
      visit a;
      visit i
    | Ast.Lprop (o, _) -> visit o
  in
  go e;
  !n

let count_exprs_stmt s =
  let rec go s =
    match (s : Ast.stmt) with
    | Ast.Expr e -> count_exprs_expr e
    | Ast.Var_decl ds ->
      List.fold_left
        (fun a (_, e) -> a + match e with Some e -> count_exprs_expr e | None -> 0)
        0 ds
    | Ast.If (c, t, e) -> count_exprs_expr c + go_block t + go_block e
    | Ast.While (c, b) -> count_exprs_expr c + go_block b
    | Ast.Do_while (b, c) -> go_block b + count_exprs_expr c
    | Ast.For (init, c, step, b) ->
      (match init with Some s -> go s | None -> 0)
      + (match c with Some e -> count_exprs_expr e | None -> 0)
      + (match step with Some e -> count_exprs_expr e | None -> 0)
      + go_block b
    | Ast.Return (Some e) -> count_exprs_expr e
    | Ast.Return None | Ast.Break | Ast.Continue -> 0
    | Ast.Block b -> go_block b
  and go_block b = List.fold_left (fun a s -> a + go s) 0 b in
  go s

let count_exprs prog =
  List.fold_left
    (fun a -> function
      | Ast.Func f -> a + List.fold_left (fun a s -> a + count_exprs_stmt s) 0 f.Ast.body
      | Ast.Stmt s -> a + count_exprs_stmt s)
    0 prog

let edit_expr prog n f =
  let ed = { remaining = n; f } in
  List.map
    (function
      | Ast.Func fn -> Ast.Func { fn with Ast.body = map_expr_block ed fn.Ast.body }
      | Ast.Stmt s -> Ast.Stmt (map_expr_stmt ed s))
    prog

(* ------------------------------------------------------------------ *)
(* Candidate reductions *)

let subexprs = function
  | Ast.Unop (_, e) | Ast.Prop (e, _) | Ast.New_array e -> [ e ]
  | Ast.Index (a, i) -> [ a; i ]
  | Ast.Binop (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) -> [ a; b ]
  | Ast.Cond (c, a, b) -> [ c; a; b ]
  | Ast.Call (_, args) | Ast.New (_, args) -> args
  | Ast.Method_call (o, _, args) -> o :: args
  | Ast.Array_lit es -> es
  | Ast.Object_lit fs -> List.map snd fs
  | _ -> []

let unwrap_stmt = function
  | Ast.If (_, t, e) -> Some (t @ e)
  | Ast.While (_, b) | Ast.For (_, _, _, b) | Ast.Do_while (b, _) -> Some b
  | Ast.Block b -> Some b
  | _ -> None

(** All one-step reductions, cheapest-to-check-and-biggest-win first.
    Produced lazily: the caller stops at the first candidate that keeps the
    property, so most candidates are never materialized. *)
let candidates prog : Ast.program Seq.t =
  let nstmts = count_stmts prog in
  let deletions =
    Seq.map (fun n -> edit_stmt prog n (fun _ -> [])) (Seq.init nstmts Fun.id)
  in
  let unwraps =
    Seq.filter_map
      (fun n ->
        let changed = ref false in
        let p =
          edit_stmt prog n (fun s ->
              match unwrap_stmt s with
              | Some body ->
                changed := true;
                body
              | None -> [ s ])
        in
        if !changed then Some p else None)
      (Seq.init nstmts Fun.id)
  in
  let nexprs = count_exprs prog in
  let simplifications =
    Seq.concat_map
      (fun n ->
        (* One candidate per subexpression, then the constant 1. *)
        let subs = ref [] in
        ignore (edit_expr prog n (fun e -> subs := subexprs e; e));
        let replacements =
          List.map (fun sub -> fun _ -> sub) !subs
          @ [ (function Ast.Number _ -> Ast.Number 1.0 | e -> e) ]
        in
        List.to_seq
          (List.filter_map
             (fun repl ->
               let p = edit_expr prog n repl in
               if p = prog then None else Some p)
             replacements))
      (Seq.init nexprs Fun.id)
  in
  let halvings =
    Seq.filter_map
      (fun n ->
        let p =
          edit_expr prog n (function
            | Ast.Number f when Float.is_integer f && Float.abs f >= 4.0 ->
              Ast.Number (Float.of_int (int_of_float f / 2))
            | e -> e)
        in
        if p = prog then None else Some p)
      (Seq.init nexprs Fun.id)
  in
  Seq.concat (List.to_seq [ deletions; unwraps; simplifications; halvings ])

(* ------------------------------------------------------------------ *)

(** [shrink ~keep prog] greedily minimizes [prog] while [keep] holds.
    [keep prog] is assumed true on entry.  At most [max_checks] property
    evaluations are spent (a check is a full differential run). *)
let shrink ?(max_checks = 500) ~keep prog =
  let checks = ref 0 in
  let rec improve prog =
    if !checks >= max_checks then prog
    else begin
      let next =
        Seq.find_map
          (fun cand ->
            if !checks >= max_checks then None
            else begin
              incr checks;
              if keep cand then Some cand else None
            end)
          (candidates prog)
      in
      match next with None -> prog | Some better -> improve better
    end
  in
  improve prog
