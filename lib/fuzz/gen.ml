(** Seeded random MiniJS program generator.

    Programs are generated as ASTs (not strings) so the shrinker can edit
    them structurally, and every draw flows through a caller-supplied
    {!Nomap_util.Prng.t}: the same seed always yields the same program, on
    any machine, which is what lets CI replay a divergence from its seed.

    The distribution is deliberately biased toward the paper's trigger
    shapes rather than uniform over the grammar:

    - hot counted loops indexing arrays (bounds + hole checks, LICM bait);
    - unmasked accumulator arithmetic ([t = t * 31 + e]) that overflows
      int32 mid-run (overflow checks, SOF, speculation failure);
    - two object literals with the same fields added in different orders,
      read through one conditional access site (shape polymorphism);
    - helper functions called from inside hot loops, some with their own
      loops, so callees tier up mid-caller and deopt/OSR paths fire;
    - persistent global arrays/objects mutated across benchmark calls, so
      the heap checksum observes state the return value cannot;
    - [Shared]/[Atomics] segment operations on a handful of low indices
      (so multi-agent runs actually collide on cache lines): tier-invariant
      solo, and the raw material for the multi-agent determinism axis.
      The segment checksum observes state neither the return value nor the
      heap checksum can. *)

module Ast = Nomap_jsir.Ast
module Prng = Nomap_util.Prng

let pos = { Ast.line = 0; col = 0 }

let pick p xs = List.nth xs (Prng.int p (List.length xs))

(** Pick from [(weight, thunk)] choices; thunks keep recursion lazy. *)
let pick_w p choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let r = Prng.int p total in
  let rec go acc = function
    | (w, v) :: rest -> if r < acc + w then v else go (acc + w) rest
    | [] -> assert false
  in
  (go 0 choices) ()

type ctx = {
  p : Prng.t;
  scalars : string list;  (** readable numeric variables in scope *)
  assignable : string list;
      (** scalars statements may write; loop counters are readable but not
          writable, else most programs are accidental infinite loops *)
  arrays : (string * int) list;  (** array name, literal (minimum) length *)
  objects : string list;  (** object variables; all carry fields x and y *)
  helpers : string list;  (** callable arity-2 helper functions *)
}

let num f = Ast.Number f
let int_lit i = num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let array_index ctx (_name, len) =
  let i =
    match ctx.scalars with
    | [] -> int_lit (Prng.int ctx.p len)
    | vars -> Ast.Var (pick ctx.p vars)
  in
  pick_w ctx.p
    [
      (3, fun () -> Ast.Binop (Ast.Mod, i, int_lit len));
      (2, fun () -> Ast.Binop (Ast.Mod, Ast.Binop (Ast.Add, i, int_lit (1 + Prng.int ctx.p 5)), int_lit len));
      (* In-bounds only when the driving var is the loop counter of a loop
         bounded by [len]; otherwise exercises the generic OOB path. *)
      (1, fun () -> i);
      (1, fun () -> int_lit (Prng.int ctx.p len));
    ]

(** Write index: [array_index] with the raw-scalar variant masked.  A raw
    write elongates the array to the scalar's value, and an accumulator
    that doubled every trip ([t += t]) reaches ~2^19 — a later loop
    bounded by [a.length] then needs more ops than any fuel budget
    (same hazard class as the guarded [push] below).  Masking to 8x the
    literal length keeps elongation and holes while bounding every
    length-driven loop. *)
let array_write_index ctx ((_, len) as a) =
  match array_index ctx a with
  | Ast.Var _ as i -> Ast.Binop (Ast.Mod, i, int_lit (8 * len))
  | e -> e

(** Segment index: a low literal, or a scalar folded into the same range —
    a handful of hot slots (two cache lines), so concurrent agents running
    the same generated program genuinely conflict.  Negative scalars are
    fine: segment indices wrap, JS-typed-array style. *)
let shared_index ctx =
  match ctx.scalars with
  | vars when vars <> [] && Prng.bool ctx.p ->
    Ast.Binop (Ast.Mod, Ast.Var (pick ctx.p vars), int_lit 12)
  | _ -> int_lit (Prng.int ctx.p 12)

let leaf ctx =
  let scalar = match ctx.scalars with [] -> None | vs -> Some (fun () -> Ast.Var (pick ctx.p vs)) in
  let array =
    match ctx.arrays with
    | [] -> None
    | arrs ->
      Some
        (fun () ->
          let a = pick ctx.p arrs in
          pick_w ctx.p
            [
              (4, fun () -> Ast.Index (Ast.Var (fst a), array_index ctx a));
              (1, fun () -> Ast.Prop (Ast.Var (fst a), "length"));
            ])
  in
  let obj =
    match ctx.objects with
    | [] -> None
    | os -> Some (fun () -> Ast.Prop (Ast.Var (pick ctx.p os), pick ctx.p [ "x"; "y" ]))
  in
  let consts () =
    pick_w ctx.p
      [
        (5, fun () -> int_lit (Prng.int ctx.p 41 - 20));
        (* Overflow fodder: products of these cross 2^31 quickly. *)
        (1, fun () -> int_lit (100_000 + Prng.int ctx.p 2_000_000));
        (1, fun () -> num (pick ctx.p [ 1.5; 0.25; 3.75; -2.5 ]));
      ]
  in
  let shared () =
    pick_w ctx.p
      [
        (3, fun () -> Ast.Method_call (Ast.Var "Atomics", "load", [ shared_index ctx ]));
        (2, fun () -> Ast.Method_call (Ast.Var "Shared", "read", [ shared_index ctx ]));
        (1, fun () -> Ast.Method_call (Ast.Var "Shared", "size", []));
      ]
  in
  let choices =
    List.filter_map Fun.id
      [
        Option.map (fun f -> (5, f)) scalar;
        Option.map (fun f -> (3, f)) array;
        Option.map (fun f -> (2, f)) obj;
        Some (3, consts);
        Some (1, shared);
      ]
  in
  pick_w ctx.p choices

let rec expr ctx n =
  if n <= 0 then leaf ctx
  else
    pick_w ctx.p
      [
        (3, fun () -> leaf ctx);
        ( 6,
          fun () ->
            let op = pick ctx.p Ast.[ Add; Add; Sub; Mul; Band; Bor; Bxor ] in
            Ast.Binop (op, expr ctx (n / 2), expr ctx (n / 2)) );
        ( 1,
          fun () ->
            (* Divisor is a nonzero literal: Div/Mod by zero is legal MiniJS
               (NaN) but floods everything downstream with NaN, which hides
               more interesting divergences. *)
            let op = pick ctx.p Ast.[ Div; Mod ] in
            Ast.Binop (op, expr ctx (n / 2), int_lit (1 + Prng.int ctx.p 9)) );
        ( 1,
          fun () ->
            let op = pick ctx.p Ast.[ Shl; Shr; Ushr ] in
            Ast.Binop (op, expr ctx (n / 2), int_lit (1 + Prng.int ctx.p 4)) );
        ( 1,
          fun () ->
            let f = pick ctx.p [ "floor"; "abs"; "min"; "max" ] in
            let args =
              if f = "min" || f = "max" then [ expr ctx (n / 2); expr ctx (n / 2) ]
              else [ expr ctx (n - 1) ]
            in
            Ast.Method_call (Ast.Var "Math", f, args) );
        (1, fun () -> Ast.Cond (cond ctx (n / 2), expr ctx (n / 2), expr ctx (n / 2)));
        ( (if ctx.helpers = [] then 0 else 2),
          fun () ->
            Ast.Call (pick ctx.p ctx.helpers, [ expr ctx (n / 2); expr ctx (n / 2) ]) );
      ]

and cond ctx n =
  pick_w ctx.p
    [
      ( 3,
        fun () ->
          let c = pick ctx.p Ast.[ Lt; Le; Gt; Ge; Eq; Ne ] in
          Ast.Binop (c, expr ctx (n / 2), expr ctx (n / 2)) );
      ( 2,
        fun () ->
          match ctx.scalars with
          | [] -> Ast.Bool true
          | vs ->
            Ast.Binop
              ( Ast.Eq,
                Ast.Binop (Ast.Band, Ast.Var (pick ctx.p vs), int_lit 3),
                int_lit (Prng.int ctx.p 4) ) );
    ]

(* ------------------------------------------------------------------ *)
(* Statements *)

(** Loop variables by nesting depth; generated loops never shadow. *)
let loop_var_names = [| "i"; "j"; "k" |]

let rec stmt ctx ~depth : Ast.stmt =
  let e n = expr ctx n in
  let assign_scalar () =
    match ctx.assignable with
    | [] -> Ast.Expr (e 2)
    | vs ->
      let v = pick ctx.p vs in
      pick_w ctx.p
        [
          (2, fun () -> Ast.Expr (Ast.Assign (Ast.Lvar v, e 4)));
          (2, fun () -> Ast.Expr (Ast.Op_assign (Ast.Add, Ast.Lvar v, e 3)));
          (* Masked wrap: the (x op y) & m shape Elide targets. *)
          ( 2,
            fun () ->
              Ast.Expr
                (Ast.Assign
                   (Ast.Lvar v, Ast.Binop (Ast.Band, Ast.Binop (Ast.Add, Ast.Var v, e 3), int_lit 0xFFFFF)))
          );
          (* Unmasked multiply-accumulate: overflows int32 mid-run. *)
          ( 2,
            fun () ->
              Ast.Expr
                (Ast.Assign
                   (Ast.Lvar v, Ast.Binop (Ast.Add, Ast.Binop (Ast.Mul, Ast.Var v, int_lit 31), e 2)))
          );
        ]
  in
  let choices =
    [
      (5, assign_scalar);
      ( (if ctx.arrays = [] then 0 else 3),
        fun () ->
          let a = pick ctx.p ctx.arrays in
          Ast.Expr (Ast.Assign (Ast.Lindex (Ast.Var (fst a), array_write_index ctx a), e 3)) );
      ( (if ctx.objects = [] then 0 else 3),
        fun () ->
          let o = pick ctx.p ctx.objects in
          let f = pick ctx.p [ "x"; "y"; "z" ] in
          (* Writing z transitions the shape the first time. *)
          pick_w ctx.p
            [
              (2, fun () -> Ast.Expr (Ast.Assign (Ast.Lprop (Ast.Var o, f), e 3)));
              (1, fun () -> Ast.Expr (Ast.Op_assign (Ast.Add, Ast.Lprop (Ast.Var o, f), e 2)));
            ] );
      ( (if List.length ctx.objects < 2 || ctx.assignable = [] then 0 else 2),
        fun () ->
          (* The shape-polymorphic access site: one Prop read fed by two
             object literals whose shapes differ. *)
          let o1 = pick ctx.p ctx.objects in
          let o2 = pick ctx.p (List.filter (fun o -> o <> o1) ctx.objects) in
          let s = pick ctx.p ctx.assignable in
          Ast.Expr
            (Ast.Op_assign
               ( Ast.Add,
                 Ast.Lvar s,
                 Ast.Prop (Ast.Cond (cond ctx 2, Ast.Var o1, Ast.Var o2), pick ctx.p [ "x"; "y" ])
               )) );
      ( (if ctx.helpers = [] || ctx.assignable = [] then 0 else 3),
        fun () ->
          let s = pick ctx.p ctx.assignable in
          Ast.Expr
            (Ast.Op_assign
               (Ast.Add, Ast.Lvar s, Ast.Call (pick ctx.p ctx.helpers, [ e 2; e 2 ]))) );
      (2, fun () -> Ast.If (cond ctx 3, block ctx ~depth ~n:(1 + Prng.int ctx.p 2), []));
      ( 1,
        fun () ->
          Ast.If
            (cond ctx 3, block ctx ~depth ~n:1, block ctx ~depth ~n:1) );
      ((if depth >= 2 then 0 else 2), fun () -> counted_loop ctx ~depth);
      ((if depth = 0 then 0 else 1), fun () -> Ast.If (cond ctx 2, [ Ast.Continue ], []));
      ( (if ctx.arrays = [] then 0 else 1),
        fun () ->
          let a = pick ctx.p ctx.arrays in
          (* Guarded: an unbounded push inside a loop bounded by the same
             array's length never terminates. *)
          Ast.If
            ( Ast.Binop (Ast.Lt, Ast.Prop (Ast.Var (fst a), "length"), int_lit 64),
              [ Ast.Expr (Ast.Method_call (Ast.Var (fst a), "push", [ e 2 ])) ],
              [] ) );
      (* Segment mutations: RMWs dominate (the interesting transactional
         shape), with plain stores, fences and a CAS in the tail. *)
      ( 2,
        fun () ->
          let call m args = Ast.Expr (Ast.Method_call (Ast.Var "Atomics", m, args)) in
          pick_w ctx.p
            [
              (3, fun () -> call "add" [ shared_index ctx; e 2 ]);
              (2, fun () -> call "store" [ shared_index ctx; e 3 ]);
              (1, fun () -> call "sub" [ shared_index ctx; e 2 ]);
              ( 1,
                fun () ->
                  Ast.Expr
                    (Ast.Method_call (Ast.Var "Shared", "write", [ shared_index ctx; e 2 ]))
              );
              (1, fun () -> call "fence" []);
            ] );
      ( (if ctx.assignable = [] then 0 else 1),
        fun () ->
          (* RMW results feed back into private state, so a stale old-value
             is visible to the result global, not just the segment. *)
          let s = pick ctx.p ctx.assignable in
          pick_w ctx.p
            [
              ( 2,
                fun () ->
                  Ast.Expr
                    (Ast.Op_assign
                       ( Ast.Add,
                         Ast.Lvar s,
                         Ast.Method_call
                           (Ast.Var "Atomics", "exchange", [ shared_index ctx; e 2 ]) )) );
              ( 1,
                fun () ->
                  Ast.Expr
                    (Ast.Assign
                       ( Ast.Lvar s,
                         Ast.Method_call
                           ( Ast.Var "Atomics",
                             "compareExchange",
                             [ shared_index ctx; e 2; e 2 ] ) )) );
            ] );
    ]
  in
  pick_w ctx.p choices

and block ctx ~depth ~n = List.init n (fun _ -> stmt ctx ~depth)

(** [for (var v = 0; v < trip; v++) { ... }] with a fresh loop variable. *)
and counted_loop ctx ~depth =
  let v = loop_var_names.(min depth (Array.length loop_var_names - 1)) in
  (* Trip counts are deliberately modest: per-case cost is the product of
     driver iterations × outer × inner × helper loops across ten
     configurations, so generous bounds here turn a campaign from seconds
     into hours. *)
  let trip =
    if depth = 0 then 8 + Prng.int ctx.p 17 (* hot outer loop *)
    else 2 + Prng.int ctx.p 4 (* small inner loop *)
  in
  let bound =
    (* Half the loops are bounded by an array length: the classic
       bounds-check-dominated shape the paper profiles. *)
    match ctx.arrays with
    | (a, _) :: _ when depth = 0 && Prng.bool ctx.p -> Ast.Prop (Ast.Var a, "length")
    | _ -> int_lit trip
  in
  let inner = { ctx with scalars = v :: ctx.scalars } in
  Ast.For
    ( Some (Ast.Var_decl [ (v, Some (int_lit 0)) ]),
      Some (Ast.Binop (Ast.Lt, Ast.Var v, bound)),
      Some (Ast.Incr (Ast.Lvar v, 1, `Post)),
      block inner ~depth:(depth + 1) ~n:(1 + Prng.int ctx.p 4) )

(* ------------------------------------------------------------------ *)
(* Whole programs *)

let helper_fun ctx name =
  let inner = { ctx with scalars = [ "x"; "y"; "r" ]; assignable = [ "x"; "y"; "r" ] } in
  let body =
    pick_w ctx.p
      [
        (* Straight-line arithmetic. *)
        (2, fun () -> [ Ast.Var_decl [ ("r", Some (expr inner 4)) ] ]);
        ( 2,
          fun () ->
            (* A loop of its own: the callee tiers up (and OSRs) while its
               caller is hot. *)
            [
              Ast.Var_decl [ ("r", Some (int_lit 0)) ];
              counted_loop { inner with arrays = [] } ~depth:1;
            ] );
      ]
  in
  { Ast.fname = name; params = [ "x"; "y" ]; body = body @ [ Ast.Return (Some (Ast.Var "r")) ]; fpos = pos }

let int_array_lit p len = Ast.Array_lit (List.init len (fun _ -> int_lit (Prng.int p 19 - 9)))

let obj_lit p fields = Ast.Object_lit (List.map (fun f -> (f, int_lit (Prng.int p 9))) fields)

(** Generate one program from [p].  Structure: optional helpers, a [bench]
    function over locals and persistent globals, and a fixed driver that
    calls [bench] 32 times (past the FTL tier-up threshold of 20, so the
    last dozen calls execute FTL-compiled code) into [result]. *)
let program p : Ast.program =
  let base = { p; scalars = []; assignable = []; arrays = []; objects = []; helpers = [] } in
  let n_helpers = Prng.int p 3 in
  let helper_names = List.init n_helpers (fun i -> Printf.sprintf "h%d" i) in
  (* Each helper may call the ones declared before it. *)
  let helpers, _ =
    List.fold_left
      (fun (acc, prior) name ->
        (helper_fun { base with helpers = prior } name :: acc, name :: prior))
      ([], []) helper_names
  in
  let helpers = List.rev helpers in
  let ga_len = 6 + Prng.int p 5 in
  let la_len = 6 + Prng.int p 5 in
  let ctx =
    {
      p;
      scalars = [ "s"; "t" ];
      assignable = [ "s"; "t" ];
      arrays = [ ("a", la_len); ("ga", ga_len) ];
      objects = [ "o"; "q"; "go" ];
      helpers = helper_names;
    }
  in
  let decls =
    [
      Ast.Var_decl [ ("s", Some (int_lit 0)) ];
      Ast.Var_decl [ ("t", Some (int_lit 1)) ];
      Ast.Var_decl [ ("a", Some (int_array_lit p la_len)) ];
      (* Same fields, opposite insertion order: distinct shapes. *)
      Ast.Var_decl [ ("o", Some (obj_lit p [ "x"; "y" ])) ];
      Ast.Var_decl [ ("q", Some (obj_lit p [ "y"; "x" ])) ];
    ]
  in
  let loops =
    counted_loop ctx ~depth:0
    :: (if Prng.bool p then [ counted_loop ctx ~depth:0 ] else [])
  in
  let ret =
    let parts =
      [
        Ast.Var "s";
        Ast.Var "t";
        Ast.Prop (Ast.Var "o", "x");
        Ast.Prop (Ast.Var "q", "y");
        Ast.Index (Ast.Var "a", int_lit 0);
        Ast.Index (Ast.Var "a", Ast.Binop (Ast.Sub, Ast.Prop (Ast.Var "a", "length"), int_lit 1));
      ]
    in
    Ast.Return (Some (List.fold_left (fun acc e -> Ast.Binop (Ast.Add, acc, e)) (List.hd parts) (List.tl parts)))
  in
  let bench = { Ast.fname = "bench"; params = []; body = decls @ loops @ [ ret ]; fpos = pos } in
  let globals =
    [
      Ast.Stmt (Ast.Var_decl [ ("ga", Some (int_array_lit p ga_len)) ]);
      Ast.Stmt (Ast.Var_decl [ ("go", Some (obj_lit p [ "x"; "y" ])) ]);
    ]
  in
  let driver =
    [
      Ast.Stmt (Ast.Var_decl [ ("result", Some (int_lit 0)) ]);
      Ast.Stmt (Ast.Var_decl [ ("it", None) ]);
      Ast.Stmt
        (Ast.For
           ( Some (Ast.Expr (Ast.Assign (Ast.Lvar "it", int_lit 0))),
             Some (Ast.Binop (Ast.Lt, Ast.Var "it", int_lit 32)),
             Some (Ast.Incr (Ast.Lvar "it", 1, `Post)),
             [ Ast.Expr (Ast.Assign (Ast.Lvar "result", Ast.Call ("bench", []))) ] ));
    ]
  in
  globals @ List.map (fun f -> Ast.Func f) helpers @ [ Ast.Func bench ] @ driver

let program_of_seed ~seed = program (Prng.create ~seed)

let to_source prog = Nomap_jsir.Printer.program_to_string prog
