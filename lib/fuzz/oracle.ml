(** The differential oracle.

    One generated program is executed through every (tier cap, architecture)
    configuration; all of them must observe exactly what the reference
    interpreter observes — the same [result] global and the same heap
    checksum — or the optimizing tiers miscompiled it.  Only performance
    counters may differ between configurations (DESIGN.md §4); anything
    observable must not.

    Every VM here runs with [verify_lir] and [paranoid] on, so an
    ill-formed graph is reported at the optimization pass that produced it
    rather than as a downstream wrong answer. *)

module Ast = Nomap_jsir.Ast
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Instance = Nomap_interp.Instance

type cfg = { tier : Vm.tier_cap; arch : Config.arch }

let cfg_name c = Vm.cap_name c.tier ^ "/" ^ Config.name c.arch

(** The reference configuration: the plain bytecode interpreter. *)
let reference = { tier = Vm.Cap_interp; arch = Config.Base }

(** Full differential matrix: each tier below FTL once (architecture only
    changes FTL-compiled code), then FTL under every architecture the paper
    evaluates — Base, the NoMap/ROT ladder, and RTM. *)
let default_cfgs =
  [
    { tier = Vm.Cap_baseline; arch = Config.Base };
    { tier = Vm.Cap_dfg; arch = Config.Base };
  ]
  @ List.map (fun arch -> { tier = Vm.Cap_ftl; arch }) Config.all

(* ------------------------------------------------------------------ *)
(* Heap checksum — one shared implementation with the execution daemon's
   response checksum (Nomap_vm.Heap_checksum), so they cannot drift. *)

let heap_checksum = Nomap_vm.Heap_checksum.checksum

(* ------------------------------------------------------------------ *)
(* Execution *)

type observation =
  | Outcome of { result : string; heap : string }
  | Crash of string  (** exception escaping the VM, including Ill_formed *)

let observation_to_string = function
  | Outcome { result; heap } -> Printf.sprintf "result=%s heap=%s" result heap
  | Crash msg -> "crash: " ^ msg

(* The reference interpreter charges one fuel per bytecode op; optimized
   tiers charge per LIR instruction and re-execute rolled-back regions, so
   they get 4x headroom.  A program over reference fuel is skipped, not
   failed.  The caps are sized ~4x above the heaviest program the generator
   can emit: raising them does not find more bugs, it only makes runaway
   cases (and shrink probes that create them) proportionally slower across
   all ten configurations. *)
let reference_fuel = 2_000_000
let tiered_fuel = 4 * reference_fuel

let run_cfg ?ftl_mutate ~src (c : cfg) : observation =
  match
    let prog = Nomap_bytecode.Compile.compile_source src in
    let fuel = if c = reference then reference_fuel else tiered_fuel in
    let vm =
      match ftl_mutate with
      | None ->
        Vm.create ~fuel ~verify_lir:true ~paranoid:true ~config:(Config.create c.arch)
          ~tier_cap:c.tier prog
      | Some ftl_mutate ->
        Vm.create_with_ftl_mutator ~ftl_mutate ~fuel ~verify_lir:true ~paranoid:true
          ~config:(Config.create c.arch) ~tier_cap:c.tier prog
    in
    ignore (Vm.run_main vm);
    let result =
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>"
    in
    Outcome { result; heap = heap_checksum (Vm.instance vm) }
  with
  | o -> o
  | exception e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The differential property *)

type divergence = { cfg : cfg; expected : observation; got : observation }

type verdict =
  | Agree  (** every configuration matched the reference *)
  | Skip of string  (** the reference itself failed (e.g. out of fuel) *)
  | Diverge of divergence list

let check ?(cfgs = default_cfgs) ?ftl_mutate (prog : Ast.program) : verdict =
  let src = Gen.to_source prog in
  match run_cfg ~src reference with
  | Crash msg -> Skip msg
  | Outcome _ as expected ->
    let divs =
      List.filter_map
        (fun c ->
          let got = run_cfg ?ftl_mutate ~src c in
          if got = expected then None else Some { cfg = c; expected; got })
        cfgs
    in
    if divs = [] then Agree else Diverge divs

let divergence_to_string d =
  Printf.sprintf "  %-18s expected %s\n  %-18s got      %s" (cfg_name d.cfg)
    (observation_to_string d.expected) "" (observation_to_string d.got)
