(** The differential oracle.

    One generated program is executed through every (tier cap, architecture,
    engine) configuration; all of them must observe exactly what the
    reference interpreter observes — the same [result] global and the same
    heap checksum — or the optimizing tiers miscompiled it.  Performance
    counters may differ between (tier, arch) configurations (DESIGN.md §4):
    different code runs.  They may NOT differ between the decoded and
    threaded engines at the same (tier, arch) — the engines execute the
    same compiled code and are required to charge bit-identical metrics —
    so the engine axis additionally compares the full canonical counter
    table across engine pairs.

    Every VM here runs with [verify_lir] and [paranoid] on, so an
    ill-formed graph is reported at the optimization pass that produced it
    rather than as a downstream wrong answer. *)

module Ast = Nomap_jsir.Ast
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Instance = Nomap_interp.Instance
module Engine = Nomap_machine.Engine
module Counters = Nomap_machine.Counters

type cfg = {
  tier : Vm.tier_cap;
  arch : Config.arch;
  engine : Engine.kind;
  host_ic : bool;
      (** run with per-site host inline caches (the default).  The ic axis
          compares an ic-off configuration against its ic-on partner at the
          same (tier, arch, engine) on the FULL observation, counters
          included: host ICs are pure memoization and must be invisible to
          every modeled metric (DESIGN.md §14). *)
}

(* The engine only runs DFG/FTL-compiled code; below that it is
   meaningless, so names (and the configuration matrix) only carry it for
   the optimizing tiers. *)
let engine_matters c = match c.tier with Vm.Cap_dfg | Vm.Cap_ftl -> true | _ -> false

let cfg_name c =
  let base =
    if engine_matters c then
      Printf.sprintf "%s/%s/%s" (Vm.cap_name c.tier) (Config.name c.arch)
        (Engine.name c.engine)
    else Vm.cap_name c.tier ^ "/" ^ Config.name c.arch
  in
  if c.host_ic then base else base ^ "/ic-off"

(** The reference configuration: the plain bytecode interpreter. *)
let reference =
  { tier = Vm.Cap_interp; arch = Config.Base; engine = Engine.Decoded; host_ic = true }

(** Full differential matrix: each tier below DFG once (the engine and
    architecture only change compiled code), then the optimizing tiers
    under both engines — DFG on Base, FTL under every architecture the
    paper evaluates (Base, the NoMap/ROT ladder, RTM). *)
let default_cfgs =
  { tier = Vm.Cap_baseline; arch = Config.Base; engine = Engine.Decoded; host_ic = true }
  :: List.concat_map
       (fun engine ->
         { tier = Vm.Cap_dfg; arch = Config.Base; engine; host_ic = true }
         :: List.map
              (fun arch -> { tier = Vm.Cap_ftl; arch; engine; host_ic = true })
              Config.all
         @ List.map
             (fun arch -> { tier = Vm.Cap_ftl; arch; engine; host_ic = false })
             [ Config.Base; Config.NoMap_full; Config.NoMap_RTM;
               Config.NoMap_RTM_STM ])
       Engine.all

(** Close a configuration list under the engine axis: every optimizing-tier
    cfg gains its partner under the other engine, so counter comparison
    across engines stays possible on a narrowed matrix (e.g. during
    shrinking, where re-checks run only the cfgs that diverged). *)
let with_engine_partners cfgs =
  List.sort_uniq compare
    (List.concat_map
       (fun c ->
         if engine_matters c then List.map (fun engine -> { c with engine }) Engine.all
         else [ c ])
       cfgs)

(** Close a configuration list under the host-IC axis: every ic-off cfg
    gains its ic-on partner, so the full-observation ic comparison stays
    possible on a narrowed matrix. *)
let with_ic_partners cfgs =
  List.sort_uniq compare
    (List.concat_map
       (fun c -> if c.host_ic then [ c ] else [ c; { c with host_ic = true } ])
       cfgs)

(* ------------------------------------------------------------------ *)
(* Heap checksum — one shared implementation with the execution daemon's
   response checksum (Nomap_vm.Heap_checksum), so they cannot drift. *)

let heap_checksum = Nomap_vm.Heap_checksum.checksum

(* ------------------------------------------------------------------ *)
(* Execution *)

type observation =
  | Outcome of { result : string; heap : string; shared : string; counters : string }
      (** [shared] is the segment checksum: the VM's solo shared segment is
          outside the heap, so segment mutations are invisible to [heap] —
          this is the only witness for Shared/Atomics miscompiles that
          never read their own writes back.  [counters] is the canonical
          full counter table — compared only across engine pairs at the
          same (tier, arch) *)
  | Crash of string  (** exception escaping the VM, including Ill_formed *)

let observation_to_string = function
  | Outcome { result; heap; shared; counters = _ } ->
    Printf.sprintf "result=%s heap=%s shared=%s" result heap shared
  | Crash msg -> "crash: " ^ msg

(* The reference interpreter charges one fuel per bytecode op; optimized
   tiers charge per LIR instruction and re-execute rolled-back regions, so
   they get 4x headroom.  A program over reference fuel is skipped, not
   failed.  The caps are sized ~4x above the heaviest program the generator
   can emit: raising them does not find more bugs, it only makes runaway
   cases (and shrink probes that create them) proportionally slower across
   all configurations. *)
let reference_fuel = 2_000_000
let tiered_fuel = 4 * reference_fuel

(** Fuel multiplier for retrying a fuel-skipped seed (see [Fuzz.run]): big
    enough to admit the tail of heavy-but-terminating programs, small
    enough that a genuinely divergent runaway still skips instead of
    hanging the batch. *)
let skip_retry_boost = 8

let run_cfg ?(fuel_boost = 1) ?ftl_mutate ~src (c : cfg) : observation =
  match
    let prog = Nomap_bytecode.Compile.compile_source src in
    let fuel =
      fuel_boost * (if c = reference then reference_fuel else tiered_fuel)
    in
    let vm =
      match ftl_mutate with
      | None ->
        Vm.create ~fuel ~verify_lir:true ~paranoid:true ~engine:c.engine
          ~host_ic:c.host_ic ~config:(Config.create c.arch) ~tier_cap:c.tier prog
      | Some ftl_mutate ->
        Vm.create_with_ftl_mutator ~ftl_mutate ~fuel ~verify_lir:true ~paranoid:true
          ~engine:c.engine ~host_ic:c.host_ic ~config:(Config.create c.arch)
          ~tier_cap:c.tier prog
    in
    ignore (Vm.run_main vm);
    let result =
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>"
    in
    Outcome
      {
        result;
        heap = heap_checksum (Vm.instance vm);
        shared = Nomap_util.Fnv.to_hex (Vm.shared_checksum vm);
        counters = Counters.to_canonical_string (Vm.counters vm);
      }
  with
  | o -> o
  | exception e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The differential property *)

type divergence = { cfg : cfg; expected : observation; got : observation }

type verdict =
  | Agree  (** every configuration matched the reference *)
  | Skip of string  (** the reference itself failed (e.g. out of fuel) *)
  | Diverge of divergence list

(* Against the reference only result + heap + segment matter: counters
   legitimately differ across tiers and architectures. *)
let agrees_with_reference ~expected ~got =
  match (expected, got) with
  | Outcome e, Outcome g ->
    e.result = g.result && e.heap = g.heap && e.shared = g.shared
  | Crash a, Crash b -> a = b
  | _ -> false

let check ?(cfgs = default_cfgs) ?(fuel_boost = 1) ?ftl_mutate
    (prog : Ast.program) : verdict =
  let src = Gen.to_source prog in
  match run_cfg ~fuel_boost ~src reference with
  | Crash msg -> Skip msg
  | Outcome _ as expected ->
    let obs = List.map (fun c -> (c, run_cfg ~fuel_boost ?ftl_mutate ~src c)) cfgs in
    let ref_divs =
      List.filter_map
        (fun (c, got) ->
          if agrees_with_reference ~expected ~got then None
          else Some { cfg = c; expected; got })
        obs
    in
    (* Engine axis: the same (tier, arch) under both engines must agree on
       result, heap AND the full counter table (structural equality on the
       whole observation, canonical counters string included). *)
    let engine_divs =
      List.filter_map
        (fun (c, got) ->
          if c.engine = Engine.Decoded || not (engine_matters c) then None
          else
            match
              List.find_opt
                (fun (c', _) ->
                  c'.engine = Engine.Decoded && c'.tier = c.tier && c'.arch = c.arch
                  && c'.host_ic = c.host_ic)
                obs
            with
            | Some (_, (Outcome _ as expected')) when got <> expected' ->
              Some { cfg = c; expected = expected'; got }
            | _ -> None)
        obs
    in
    (* IC axis: an ic-off configuration must match its ic-on partner at the
       same (tier, arch, engine) on the full observation — host inline
       caches are invisible to every counter. *)
    let ic_divs =
      List.filter_map
        (fun (c, got) ->
          if c.host_ic then None
          else
            match
              List.find_opt
                (fun (c', _) ->
                  c'.host_ic && c'.tier = c.tier && c'.arch = c.arch
                  && c'.engine = c.engine)
                obs
            with
            | Some (_, (Outcome _ as expected')) when got <> expected' ->
              Some { cfg = c; expected = expected'; got }
            | _ -> None)
        obs
    in
    let dedup extra divs =
      divs @ List.filter (fun d -> not (List.exists (fun r -> r.cfg = d.cfg) divs)) extra
    in
    let divs = dedup ic_divs (dedup engine_divs ref_divs) in
    if divs = [] then Agree else Diverge divs

(* ------------------------------------------------------------------ *)
(* The multi-agent axis: determinism, not tier equivalence.

   Scheduler turns are consumed by shared ops at every tier but also by
   transaction commits in FTL, so the interleaving — and therefore the
   legitimate outcome — differs across tiers: cross-tier comparison is
   meaningless for multi-agent runs.  What must hold instead is the replay
   guarantee (DESIGN.md §16): the same (program, agent count, schedule
   seed) is bit-identical, per-agent results, per-agent heap checksums,
   segment image and conflict count included.  Any wall-clock leak into
   the schedule (a shared mutation outside a scheduler turn, a
   termination race) shows up here as a run that doesn't replay. *)

let agents_observation ?(agents = 2) ?(tier = Vm.Cap_ftl) ?(arch = Config.NoMap_RTM)
    ~schedule_seed (src : string) : string =
  match
    let prog = Nomap_bytecode.Compile.compile_source src in
    Nomap_agents.Agents.run
      ~policy:(Nomap_shared.Interleave.Seeded schedule_seed)
      ~fuel:tiered_fuel ~config:(Config.create arch) ~tier_cap:tier
      (Array.make agents prog)
  with
  | r ->
    let per_agent =
      Array.to_list
        (Array.map
           (fun (o : Nomap_agents.Agents.outcome) ->
             let result =
               match o.Nomap_agents.Agents.result with
               | Ok v -> Value.to_js_string v
               | Error e -> "error:" ^ e
             in
             let heap =
               match o.Nomap_agents.Agents.vm with
               | Some vm -> heap_checksum (Vm.instance vm)
               | None -> "<no vm>"
             in
             Printf.sprintf "result=%s heap=%s" result heap)
           r.Nomap_agents.Agents.outcomes)
    in
    Printf.sprintf "%s | segment=%s conflicts=%d"
      (String.concat " ; " per_agent)
      (Nomap_util.Fnv.to_hex r.Nomap_agents.Agents.segment_checksum)
      r.Nomap_agents.Agents.conflicts
  | exception e -> "crash: " ^ Printexc.to_string e

(** Run the program twice on [agents] agents under the same seeded
    schedule; [Some (first, second)] if the replays disagree. *)
let check_agents ?agents ?tier ?arch ~schedule_seed (prog : Ast.program) :
    (string * string) option =
  let src = Gen.to_source prog in
  let a = agents_observation ?agents ?tier ?arch ~schedule_seed src in
  let b = agents_observation ?agents ?tier ?arch ~schedule_seed src in
  if a = b then None else Some (a, b)

let divergence_to_string d =
  let base =
    Printf.sprintf "  %-24s expected %s\n  %-24s got      %s" (cfg_name d.cfg)
      (observation_to_string d.expected) "" (observation_to_string d.got)
  in
  (* A counters-only engine divergence prints identically above; show the
     differing canonical tables so the drift is actually visible. *)
  match (d.expected, d.got) with
  | Outcome e, Outcome g
    when e.result = g.result && e.heap = g.heap && e.counters <> g.counters ->
    Printf.sprintf "%s\n  %-24s counters expected %s\n  %-24s counters got      %s" base ""
      e.counters "" g.counters
  | _ -> base
