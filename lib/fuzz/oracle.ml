(** The differential oracle.

    One generated program is executed through every (tier cap, architecture,
    engine) configuration; all of them must observe exactly what the
    reference interpreter observes — the same [result] global and the same
    heap checksum — or the optimizing tiers miscompiled it.  Performance
    counters may differ between (tier, arch) configurations (DESIGN.md §4):
    different code runs.  They may NOT differ between the decoded and
    threaded engines at the same (tier, arch) — the engines execute the
    same compiled code and are required to charge bit-identical metrics —
    so the engine axis additionally compares the full canonical counter
    table across engine pairs.

    Every VM here runs with [verify_lir] and [paranoid] on, so an
    ill-formed graph is reported at the optimization pass that produced it
    rather than as a downstream wrong answer. *)

module Ast = Nomap_jsir.Ast
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Instance = Nomap_interp.Instance
module Engine = Nomap_machine.Engine
module Counters = Nomap_machine.Counters

type cfg = {
  tier : Vm.tier_cap;
  arch : Config.arch;
  engine : Engine.kind;
  host_ic : bool;
      (** run with per-site host inline caches (the default).  The ic axis
          compares an ic-off configuration against its ic-on partner at the
          same (tier, arch, engine) on the FULL observation, counters
          included: host ICs are pure memoization and must be invisible to
          every modeled metric (DESIGN.md §14). *)
}

(* The engine only runs DFG/FTL-compiled code; below that it is
   meaningless, so names (and the configuration matrix) only carry it for
   the optimizing tiers. *)
let engine_matters c = match c.tier with Vm.Cap_dfg | Vm.Cap_ftl -> true | _ -> false

let cfg_name c =
  let base =
    if engine_matters c then
      Printf.sprintf "%s/%s/%s" (Vm.cap_name c.tier) (Config.name c.arch)
        (Engine.name c.engine)
    else Vm.cap_name c.tier ^ "/" ^ Config.name c.arch
  in
  if c.host_ic then base else base ^ "/ic-off"

(** The reference configuration: the plain bytecode interpreter. *)
let reference =
  { tier = Vm.Cap_interp; arch = Config.Base; engine = Engine.Decoded; host_ic = true }

(** Full differential matrix: each tier below DFG once (the engine and
    architecture only change compiled code), then the optimizing tiers
    under both engines — DFG on Base, FTL under every architecture the
    paper evaluates (Base, the NoMap/ROT ladder, RTM). *)
let default_cfgs =
  { tier = Vm.Cap_baseline; arch = Config.Base; engine = Engine.Decoded; host_ic = true }
  :: List.concat_map
       (fun engine ->
         { tier = Vm.Cap_dfg; arch = Config.Base; engine; host_ic = true }
         :: List.map
              (fun arch -> { tier = Vm.Cap_ftl; arch; engine; host_ic = true })
              Config.all
         @ List.map
             (fun arch -> { tier = Vm.Cap_ftl; arch; engine; host_ic = false })
             [ Config.Base; Config.NoMap_full; Config.NoMap_RTM;
               Config.NoMap_RTM_STM ])
       Engine.all

(** Close a configuration list under the engine axis: every optimizing-tier
    cfg gains its partner under the other engine, so counter comparison
    across engines stays possible on a narrowed matrix (e.g. during
    shrinking, where re-checks run only the cfgs that diverged). *)
let with_engine_partners cfgs =
  List.sort_uniq compare
    (List.concat_map
       (fun c ->
         if engine_matters c then List.map (fun engine -> { c with engine }) Engine.all
         else [ c ])
       cfgs)

(** Close a configuration list under the host-IC axis: every ic-off cfg
    gains its ic-on partner, so the full-observation ic comparison stays
    possible on a narrowed matrix. *)
let with_ic_partners cfgs =
  List.sort_uniq compare
    (List.concat_map
       (fun c -> if c.host_ic then [ c ] else [ c; { c with host_ic = true } ])
       cfgs)

(* ------------------------------------------------------------------ *)
(* Heap checksum — one shared implementation with the execution daemon's
   response checksum (Nomap_vm.Heap_checksum), so they cannot drift. *)

let heap_checksum = Nomap_vm.Heap_checksum.checksum

(* ------------------------------------------------------------------ *)
(* Execution *)

type observation =
  | Outcome of { result : string; heap : string; counters : string }
      (** [counters] is the canonical full counter table — compared only
          across engine pairs at the same (tier, arch) *)
  | Crash of string  (** exception escaping the VM, including Ill_formed *)

let observation_to_string = function
  | Outcome { result; heap; counters = _ } -> Printf.sprintf "result=%s heap=%s" result heap
  | Crash msg -> "crash: " ^ msg

(* The reference interpreter charges one fuel per bytecode op; optimized
   tiers charge per LIR instruction and re-execute rolled-back regions, so
   they get 4x headroom.  A program over reference fuel is skipped, not
   failed.  The caps are sized ~4x above the heaviest program the generator
   can emit: raising them does not find more bugs, it only makes runaway
   cases (and shrink probes that create them) proportionally slower across
   all configurations. *)
let reference_fuel = 2_000_000
let tiered_fuel = 4 * reference_fuel

(** Fuel multiplier for retrying a fuel-skipped seed (see [Fuzz.run]): big
    enough to admit the tail of heavy-but-terminating programs, small
    enough that a genuinely divergent runaway still skips instead of
    hanging the batch. *)
let skip_retry_boost = 8

let run_cfg ?(fuel_boost = 1) ?ftl_mutate ~src (c : cfg) : observation =
  match
    let prog = Nomap_bytecode.Compile.compile_source src in
    let fuel =
      fuel_boost * (if c = reference then reference_fuel else tiered_fuel)
    in
    let vm =
      match ftl_mutate with
      | None ->
        Vm.create ~fuel ~verify_lir:true ~paranoid:true ~engine:c.engine
          ~host_ic:c.host_ic ~config:(Config.create c.arch) ~tier_cap:c.tier prog
      | Some ftl_mutate ->
        Vm.create_with_ftl_mutator ~ftl_mutate ~fuel ~verify_lir:true ~paranoid:true
          ~engine:c.engine ~host_ic:c.host_ic ~config:(Config.create c.arch)
          ~tier_cap:c.tier prog
    in
    ignore (Vm.run_main vm);
    let result =
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>"
    in
    Outcome
      {
        result;
        heap = heap_checksum (Vm.instance vm);
        counters = Counters.to_canonical_string (Vm.counters vm);
      }
  with
  | o -> o
  | exception e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The differential property *)

type divergence = { cfg : cfg; expected : observation; got : observation }

type verdict =
  | Agree  (** every configuration matched the reference *)
  | Skip of string  (** the reference itself failed (e.g. out of fuel) *)
  | Diverge of divergence list

(* Against the reference only result + heap matter: counters legitimately
   differ across tiers and architectures. *)
let agrees_with_reference ~expected ~got =
  match (expected, got) with
  | Outcome e, Outcome g -> e.result = g.result && e.heap = g.heap
  | Crash a, Crash b -> a = b
  | _ -> false

let check ?(cfgs = default_cfgs) ?(fuel_boost = 1) ?ftl_mutate
    (prog : Ast.program) : verdict =
  let src = Gen.to_source prog in
  match run_cfg ~fuel_boost ~src reference with
  | Crash msg -> Skip msg
  | Outcome _ as expected ->
    let obs = List.map (fun c -> (c, run_cfg ~fuel_boost ?ftl_mutate ~src c)) cfgs in
    let ref_divs =
      List.filter_map
        (fun (c, got) ->
          if agrees_with_reference ~expected ~got then None
          else Some { cfg = c; expected; got })
        obs
    in
    (* Engine axis: the same (tier, arch) under both engines must agree on
       result, heap AND the full counter table (structural equality on the
       whole observation, canonical counters string included). *)
    let engine_divs =
      List.filter_map
        (fun (c, got) ->
          if c.engine = Engine.Decoded || not (engine_matters c) then None
          else
            match
              List.find_opt
                (fun (c', _) ->
                  c'.engine = Engine.Decoded && c'.tier = c.tier && c'.arch = c.arch
                  && c'.host_ic = c.host_ic)
                obs
            with
            | Some (_, (Outcome _ as expected')) when got <> expected' ->
              Some { cfg = c; expected = expected'; got }
            | _ -> None)
        obs
    in
    (* IC axis: an ic-off configuration must match its ic-on partner at the
       same (tier, arch, engine) on the full observation — host inline
       caches are invisible to every counter. *)
    let ic_divs =
      List.filter_map
        (fun (c, got) ->
          if c.host_ic then None
          else
            match
              List.find_opt
                (fun (c', _) ->
                  c'.host_ic && c'.tier = c.tier && c'.arch = c.arch
                  && c'.engine = c.engine)
                obs
            with
            | Some (_, (Outcome _ as expected')) when got <> expected' ->
              Some { cfg = c; expected = expected'; got }
            | _ -> None)
        obs
    in
    let dedup extra divs =
      divs @ List.filter (fun d -> not (List.exists (fun r -> r.cfg = d.cfg) divs)) extra
    in
    let divs = dedup ic_divs (dedup engine_divs ref_divs) in
    if divs = [] then Agree else Diverge divs

let divergence_to_string d =
  let base =
    Printf.sprintf "  %-24s expected %s\n  %-24s got      %s" (cfg_name d.cfg)
      (observation_to_string d.expected) "" (observation_to_string d.got)
  in
  (* A counters-only engine divergence prints identically above; show the
     differing canonical tables so the drift is actually visible. *)
  match (d.expected, d.got) with
  | Outcome e, Outcome g
    when e.result = g.result && e.heap = g.heap && e.counters <> g.counters ->
    Printf.sprintf "%s\n  %-24s counters expected %s\n  %-24s counters got      %s" base ""
      e.counters "" g.counters
  | _ -> base
