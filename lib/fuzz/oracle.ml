(** The differential oracle.

    One generated program is executed through every (tier cap, architecture)
    configuration; all of them must observe exactly what the reference
    interpreter observes — the same [result] global and the same heap
    checksum — or the optimizing tiers miscompiled it.  Only performance
    counters may differ between configurations (DESIGN.md §4); anything
    observable must not.

    Every VM here runs with [verify_lir] and [paranoid] on, so an
    ill-formed graph is reported at the optimization pass that produced it
    rather than as a downstream wrong answer. *)

module Ast = Nomap_jsir.Ast
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Instance = Nomap_interp.Instance

type cfg = { tier : Vm.tier_cap; arch : Config.arch }

let cfg_name c = Vm.cap_name c.tier ^ "/" ^ Config.name c.arch

(** The reference configuration: the plain bytecode interpreter. *)
let reference = { tier = Vm.Cap_interp; arch = Config.Base }

(** Full differential matrix: each tier below FTL once (architecture only
    changes FTL-compiled code), then FTL under every architecture the paper
    evaluates — Base, the NoMap/ROT ladder, and RTM. *)
let default_cfgs =
  [
    { tier = Vm.Cap_baseline; arch = Config.Base };
    { tier = Vm.Cap_dfg; arch = Config.Base };
  ]
  @ List.map (fun arch -> { tier = Vm.Cap_ftl; arch }) Config.all

(* ------------------------------------------------------------------ *)
(* Heap checksum *)

(* FNV-1a, 64-bit. *)
let fnv_prime = 0x100000001B3L
let fnv_basis = 0xCBF29CE484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  (* Terminator byte so "ab","c" and "a","bc" hash differently. *)
  fnv_byte !h 0xFF

(** Checksum of everything reachable from the program's globals.  Purely
    structural: simulated addresses, object ids and slot capacities are
    excluded, because allocation order legitimately differs across tiers
    (aborted transactions roll back stores but not allocations).  Cycles are
    cut by tagging back-references. *)
let heap_checksum (inst : Instance.t) =
  let seen_obj = Hashtbl.create 16 and seen_arr = Hashtbl.create 16 in
  let h = ref fnv_basis in
  let tag s = h := fnv_string !h s in
  let rec walk (v : Value.t) =
    match v with
    | Value.Int i -> tag ("i" ^ string_of_int i)
    | Value.Num f ->
      (* NaNs canonicalized; -0.0 vs 0.0 distinguished, as JS can observe
         the difference (1/x). *)
      if Float.is_nan f then tag "nan"
      else tag ("n" ^ Int64.to_string (Int64.bits_of_float f))
    | Value.Str s -> tag ("s" ^ s.Value.sdata)
    | Value.Bool b -> tag (if b then "T" else "F")
    | Value.Undef -> tag "u"
    | Value.Null -> tag "0"
    | Value.Fun fid -> tag ("f" ^ string_of_int fid)
    | Value.Hole -> tag "h"
    | Value.Obj o ->
      if Hashtbl.mem seen_obj o.Value.oid then tag "cyc"
      else begin
        Hashtbl.replace seen_obj o.Value.oid ();
        tag "{";
        List.iteri
          (fun slot name ->
            tag name;
            walk o.Value.slots.(slot))
          (Shape.property_names o.Value.shape);
        tag "}"
      end
    | Value.Arr a ->
      if Hashtbl.mem seen_arr a.Value.aid then tag "cyc"
      else begin
        Hashtbl.replace seen_arr a.Value.aid ();
        tag ("[" ^ string_of_int a.Value.alen);
        for i = 0 to a.Value.alen - 1 do
          walk a.Value.elems.(i)
        done;
        tag "]"
      end
  in
  Array.iteri
    (fun idx name ->
      tag name;
      walk inst.Instance.globals.(idx))
    inst.Instance.prog.Nomap_bytecode.Opcode.globals;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Execution *)

type observation =
  | Outcome of { result : string; heap : string }
  | Crash of string  (** exception escaping the VM, including Ill_formed *)

let observation_to_string = function
  | Outcome { result; heap } -> Printf.sprintf "result=%s heap=%s" result heap
  | Crash msg -> "crash: " ^ msg

(* The reference interpreter charges one fuel per bytecode op; optimized
   tiers charge per LIR instruction and re-execute rolled-back regions, so
   they get 4x headroom.  A program over reference fuel is skipped, not
   failed.  The caps are sized ~4x above the heaviest program the generator
   can emit: raising them does not find more bugs, it only makes runaway
   cases (and shrink probes that create them) proportionally slower across
   all ten configurations. *)
let reference_fuel = 2_000_000
let tiered_fuel = 4 * reference_fuel

let run_cfg ?ftl_mutate ~src (c : cfg) : observation =
  match
    let prog = Nomap_bytecode.Compile.compile_source src in
    let fuel = if c = reference then reference_fuel else tiered_fuel in
    let vm =
      Vm.create ~fuel ~verify_lir:true ~paranoid:true ?ftl_mutate
        ~config:(Config.create c.arch) ~tier_cap:c.tier prog
    in
    ignore (Vm.run_main vm);
    let result =
      match Vm.global vm "result" with Some v -> Value.to_js_string v | None -> "<no result>"
    in
    Outcome { result; heap = heap_checksum vm.Vm.instance }
  with
  | o -> o
  | exception e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The differential property *)

type divergence = { cfg : cfg; expected : observation; got : observation }

type verdict =
  | Agree  (** every configuration matched the reference *)
  | Skip of string  (** the reference itself failed (e.g. out of fuel) *)
  | Diverge of divergence list

let check ?(cfgs = default_cfgs) ?ftl_mutate (prog : Ast.program) : verdict =
  let src = Gen.to_source prog in
  match run_cfg ~src reference with
  | Crash msg -> Skip msg
  | Outcome _ as expected ->
    let divs =
      List.filter_map
        (fun c ->
          let got = run_cfg ?ftl_mutate ~src c in
          if got = expected then None else Some { cfg = c; expected; got })
        cfgs
    in
    if divs = [] then Agree else Diverge divs

let divergence_to_string d =
  Printf.sprintf "  %-18s expected %s\n  %-18s got      %s" (cfg_name d.cfg)
    (observation_to_string d.expected) "" (observation_to_string d.got)
