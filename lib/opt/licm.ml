(** Loop-invariant code motion.

    Hoisting rules (the paper's mechanism, made explicit):
    - pure computations with invariant operands always hoist;
    - abort-exit checks with invariant operands hoist: a transactional abort
      may fire anywhere in the region, so moving it is legal (paper §IV-C);
      deopt-exit checks are Stack Map Points and never move.  An abort
      check is kept inside its transaction: if the loop body contains the
      Tx_begin (the region starts strictly inside the loop), nothing
      transactional may leave it;
    - memory loads with invariant operands hoist only when the loop contains
      no aliasing store, no clobbering call, and no Stack Map Point — the
      last condition is what cripples Base and what NoMap's SMP→abort
      conversion lifts.

    All preheaders are materialized before any motion so that loop bodies
    (including inner preheaders) are computed once, consistently; loops are
    then processed innermost-first so invariants bubble outward. *)

module L = Nomap_lir.Lir
module Cfg = Nomap_lir.Cfg

let hoistable ~has_smp ~has_tx_begin ~stores ~clobber kind =
  let abort_check =
    match L.exit_of kind with
    | Some { L.ekind = L.Abort; _ } -> true
    | Some { L.ekind = L.Deopt; _ } -> false
    | None -> false
  in
  let check_ok = if L.is_check kind then abort_check && not has_tx_begin else true in
  match kind with
  | L.Phi _ | L.Param _ | L.Tx_begin _ | L.Tx_end | L.Nop -> false
  | _ -> (
    match L.memory_effect kind with
    | L.Eff_none -> check_ok
    | L.Eff_load cls ->
      (not has_smp) && (not clobber)
      && (not (List.exists (fun s -> L.may_alias s cls) stores))
      && check_ok
    | L.Eff_store _ | L.Eff_clobber | L.Eff_alloc -> false)

(** Run LICM; returns the number of instructions hoisted. *)
let run f =
  (* Materialize every preheader first so loop bodies are stable. *)
  let loops0 = Cfg.natural_loops f (Cfg.compute_doms f) in
  List.iter (fun l -> ignore (Cfg.ensure_preheader f l)) loops0;
  let doms = Cfg.compute_doms f in
  let loops = Cfg.natural_loops f doms in
  let loops = List.sort (fun a b -> compare b.Cfg.depth a.Cfg.depth) loops in
  let hoisted_total = ref 0 in
  List.iter
    (fun loop ->
      match Cfg.preheader f loop with
      | None -> ()  (* irreducible edge pattern; skip conservatively *)
      | Some ph ->
        let in_loop v =
          let b = (L.instr f v).L.block in
          b >= 0 && List.mem b loop.Cfg.body
        in
        let has_smp = Passes.loop_has_smp f loop in
        let has_tx_begin =
          List.exists
            (fun bid ->
              List.exists
                (fun v -> match L.kind_of f v with L.Tx_begin _ -> true | _ -> false)
                (L.block f bid).L.instrs)
            loop.Cfg.body
        in
        let stores, clobber, _alloc = Passes.loop_clobbers f loop in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun bid ->
              let blk = L.block f bid in
              let to_hoist =
                List.filter
                  (fun v ->
                    let kind = (L.instr f v).L.kind in
                    (not (List.exists in_loop (L.uses kind)))
                    (* SMP-live operands are uses too: an exit check whose
                       live map names loop-defined values must not be lifted
                       above their definitions. *)
                    && (not (List.exists in_loop (L.smp_uses kind)))
                    && hoistable ~has_smp ~has_tx_begin ~stores ~clobber kind)
                  blk.L.instrs
              in
              List.iter
                (fun v ->
                  blk.L.instrs <- List.filter (fun x -> x <> v) blk.L.instrs;
                  Passes.append_to_block f v ph;
                  incr hoisted_total;
                  changed := true)
                to_hoist)
            loop.Cfg.body
        done)
    loops;
  !hoisted_total
