(** Pass pipelines per tier.

    DFG runs a light pipeline (type propagation, value numbering, DCE); FTL
    runs the full set including code motion and promotion — our analogue of
    LLVM -O2 versus the DFG's own optimizer (paper §II-A).

    Both pipelines are plain pass lists: adding a pass is one list entry
    naming its knob, its run function, and the [stats] field it feeds. *)

type stats = {
  mutable checks_removed : int;
  mutable overflow_elided : int;
  mutable gvn_removed : int;
  mutable licm_hoisted : int;
  mutable promoted : int;
  mutable dce_removed : int;
}

let empty_stats () =
  {
    checks_removed = 0;
    overflow_elided = 0;
    gvn_removed = 0;
    licm_hoisted = 0;
    promoted = 0;
    dce_removed = 0;
  }

(** Pass toggles, for ablation studies: every knob defaults to on. *)
type knobs = {
  typeprop : bool;
  elide : bool;
  gvn : bool;
  licm : bool;
  promote : bool;
  dce : bool;
}

let all_on = { typeprop = true; elide = true; gvn = true; licm = true; promote = true; dce = true }

type pass = {
  name : string;
  enabled : knobs -> bool;
  run : Nomap_lir.Lir.func -> int;
  record : stats -> int -> unit;
}

let p_typeprop =
  {
    name = "typeprop";
    enabled = (fun k -> k.typeprop);
    run = Typeprop.run;
    record = (fun s n -> s.checks_removed <- s.checks_removed + n);
  }

let p_elide =
  {
    name = "elide";
    enabled = (fun k -> k.elide);
    run = Elide.run;
    record = (fun s n -> s.overflow_elided <- s.overflow_elided + n);
  }

let p_gvn =
  {
    name = "gvn";
    enabled = (fun k -> k.gvn);
    run = Gvn.run;
    record = (fun s n -> s.gvn_removed <- s.gvn_removed + n);
  }

let p_licm =
  {
    name = "licm";
    enabled = (fun k -> k.licm);
    run = Licm.run;
    record = (fun s n -> s.licm_hoisted <- s.licm_hoisted + n);
  }

let p_promote =
  {
    name = "promote";
    enabled = (fun k -> k.promote);
    run = Promote.run;
    record = (fun s n -> s.promoted <- s.promoted + n);
  }

let p_dce =
  {
    name = "dce";
    enabled = (fun k -> k.dce);
    run = Dce.run;
    record = (fun s n -> s.dce_removed <- s.dce_removed + n);
  }

(* Type propagation runs first: the redundant type checks it removes hold
   stack maps whose live sets would otherwise pin intermediates and block
   overflow-check elision. *)
let dfg_passes = [ p_typeprop; p_elide; p_gvn; p_dce ]

(* Motion (licm/promote) exposes new redundancies, hence the second gvn. *)
let ftl_passes = [ p_typeprop; p_elide; p_gvn; p_licm; p_promote; p_gvn; p_dce ]

(** [paranoid] re-verifies SSA well-formedness after every pass, so an
    ill-formed graph is caught at the pass that produced it instead of
    surfacing later as a miscompile.  Too slow for measurement runs; the
    differential fuzzer always turns it on. *)
let run_passes passes ?(stats = empty_stats ()) ?(knobs = all_on) ?(paranoid = false) f =
  List.iter
    (fun p ->
      if p.enabled knobs then begin
        p.record stats (p.run f);
        if paranoid then
          try Nomap_lir.Verify.verify f
          with Nomap_lir.Verify.Ill_formed msg ->
            raise (Nomap_lir.Verify.Ill_formed (Printf.sprintf "after %s: %s" p.name msg))
      end)
    passes;
  stats

let dfg ?stats ?knobs ?paranoid f = run_passes dfg_passes ?stats ?knobs ?paranoid f
let ftl ?stats ?knobs ?paranoid f = run_passes ftl_passes ?stats ?knobs ?paranoid f
