(** The virtual machine: the tier controller wiring everything together.

    Per function, calls are dispatched by hotness (paper Figure 2):
    Interpreter first, then the Baseline engine (which profiles), then
    DFG-compiled LIR, then FTL-compiled LIR with the configured NoMap
    transformation and the full pass pipeline.

    It also implements the runtime adaptation loop: repeated deopts
    invalidate optimized code (recompile against fresher feedback);
    capacity aborts shrink the function's transactions (whole loop →
    per-iteration → none), the paper's reaction to transactional-state
    overflow (§V-C / §VI-B). *)

module Value = Nomap_runtime.Value
module Opcode = Nomap_bytecode.Opcode
module Feedback = Nomap_profile.Feedback
module Instance = Nomap_interp.Instance
module Interp = Nomap_interp.Interp
module Specialize = Nomap_tiers.Specialize
module Machine = Nomap_machine.Machine
module Engine = Nomap_machine.Engine
module Decoded = Nomap_machine.Decoded
module Threaded = Nomap_machine.Threaded
module Counters = Nomap_machine.Counters
module Timing = Nomap_machine.Timing
module Config = Nomap_nomap.Config
module Transform = Nomap_nomap.Transform
module Txplace = Nomap_nomap.Txplace
module Htm = Nomap_htm.Htm
module Agent = Nomap_shared.Agent
module Segment = Nomap_shared.Segment

type tier_cap = Cap_interp | Cap_baseline | Cap_dfg | Cap_ftl

let cap_name = function
  | Cap_interp -> "Interpreter"
  | Cap_baseline -> "Baseline"
  | Cap_dfg -> "DFG"
  | Cap_ftl -> "FTL"

type version = {
  mutable dfg : Specialize.compiled option;
  mutable ftl : Specialize.compiled option;
  mutable deopt_count : int;
  mutable placement : Txplace.placement;
  mutable dirty : bool;
}

type thresholds = { baseline_at : int; dfg_at : int; ftl_at : int }

let default_thresholds = { baseline_at = 2; dfg_at = 8; ftl_at = 20 }

type t = {
  instance : Instance.t;
  profile : Feedback.t;
  counters : Counters.t;
  config : Config.t;
  tier_cap : tier_cap;
  engine : Engine.kind;  (** which execution engine runs DFG/FTL code *)
  thresholds : thresholds;
  versions : version array;
  verify_lir : bool;
  paranoid : bool;  (** re-verify LIR after every optimization pass *)
  ftl_mutate : (Nomap_lir.Lir.func -> unit) option;
      (** post-pipeline hook; the differential fuzzer injects deliberate
          miscompiles here to prove it can catch and shrink them *)
  opt_knobs : Nomap_opt.Pipeline.knobs;
  opt_stats : Nomap_opt.Pipeline.stats;
  nomap_stats : Transform.stats;
  mutable env : Machine.env option;
  interp_env : Interp.env;
  baseline_env : Interp.env;
  agent : Agent.t;  (** this VM's view of its shared segment (solo default) *)
  mutable deopt_invalidations : int;
  mutable tx_demotions : int;
}

let machine_env t = Option.get t.env

let fresh_version () =
  { dfg = None; ftl = None; deopt_count = 0; placement = Txplace.Auto; dirty = false }

let rec create_gen ?(seed = 42) ?(fuel = max_int) ?(thresholds = default_thresholds)
    ?(verify_lir = false) ?(paranoid = false) ?ftl_mutate
    ?(opt_knobs = Nomap_opt.Pipeline.all_on) ?(engine = Engine.default)
    ?(host_ic = true) ?shared ~config ~tier_cap (prog : Opcode.program) =
  let instance = Instance.create ~seed ~fuel prog in
  let profile = Feedback.create prog in
  let counters = Counters.create () in
  (* Every VM has an agent: a private solo one by default, so the
     [Shared]/[Atomics] surface works — tier-invariantly — in single-agent
     runs with zero coordination; a multi-agent runtime passes in an agent
     bound to a communal registry instead. *)
  let agent = match shared with Some ag -> ag | None -> Agent.solo () in
  Agent.install agent instance.Instance.heap;
  Agent.set_note agent (fun k ->
      match k with
      | Agent.Op_load ->
        counters.Counters.shared_loads <- counters.Counters.shared_loads + 1
      | Agent.Op_store ->
        counters.Counters.shared_stores <- counters.Counters.shared_stores + 1
      | Agent.Op_rmw ->
        counters.Counters.shared_rmws <- counters.Counters.shared_rmws + 1
      | Agent.Op_fence ->
        counters.Counters.shared_fences <- counters.Counters.shared_fences + 1);
  let t_ref = ref None in
  let get_t () = Option.get !t_ref in
  let charge_runtime n =
    let t = get_t () in
    Counters.add_instrs counters Counters.No_ftl n;
    let in_tx = match t.env with Some e -> Machine.in_region e | None -> false in
    Counters.add_cycles counters ~in_tx (float_of_int n *. Timing.cpi_runtime)
  in
  let call ~fid ~this ~args = dispatch (get_t ()) ~fid ~this ~args in
  let deopt_resume ~fid ~resume_pc ~values =
    let t = get_t () in
    let v = t.versions.(fid) in
    v.deopt_count <- v.deopt_count + 1;
    if v.deopt_count mod 25 = 0 then begin
      (* Too many deopts: throw the optimized code away and recompile with
         the feedback Baseline is about to collect. *)
      v.ftl <- None;
      v.dfg <- None;
      v.dirty <- true;
      t.deopt_invalidations <- t.deopt_invalidations + 1
    end;
    let f = prog.Opcode.funcs.(fid) in
    let regs = Array.make (max 1 f.Opcode.nregs) Value.Undef in
    List.iter (fun (r, value) -> if r < Array.length regs then regs.(r) <- value) values;
    Interp.run_from t.baseline_env ~fid ~entry_pc:resume_pc ~regs
  in
  let interp_env =
    { Interp.instance; mode = Interp.Interp_tier; profile = None; charge = charge_runtime; call }
  in
  let baseline_env =
    {
      Interp.instance;
      mode = Interp.Baseline_tier;
      profile = Some profile;
      charge = charge_runtime;
      call;
    }
  in
  let t =
    {
      instance;
      profile;
      counters;
      config;
      tier_cap;
      engine;
      thresholds;
      versions = Array.init (Array.length prog.Opcode.funcs) (fun _ -> fresh_version ());
      verify_lir;
      paranoid;
      ftl_mutate;
      opt_knobs;
      opt_stats = Nomap_opt.Pipeline.empty_stats ();
      nomap_stats = Transform.empty_stats ();
      env = None;
      interp_env;
      baseline_env;
      agent;
      deopt_invalidations = 0;
      tx_demotions = 0;
    }
  in
  t_ref := Some t;
  let env =
    Machine.create_env ~instance ~counters ~htm_mode:(Config.htm_mode config)
      ~sof_enabled:(Config.sof_enabled config) ~capacity_scale:Config.capacity_scale
      ~host_ic ~stm_fallback:(Config.stm_fallback config)
      ~stm_factor:config.Config.stm_factor ~call ~deopt_resume ()
  in
  env.Machine.on_abort <-
    (fun ~fid reason ->
      match reason with
      | Htm.Capacity_write | Htm.Capacity_read | Htm.Watchdog ->
        let v = t.versions.(fid) in
        (v.placement <-
           (match v.placement with
           | Txplace.Auto -> Txplace.Max_chunk 64
           | Txplace.Max_chunk m when m > 2 -> Txplace.Max_chunk (m / 4)
           | Txplace.Max_chunk _ | Txplace.Disabled -> Txplace.Disabled));
        v.ftl <- None;
        v.dirty <- true;
        t.tx_demotions <- t.tx_demotions + 1
      | Htm.Check_failed _ | Htm.Deopt_in_tx | Htm.Sof_overflow | Htm.Irrevocable
      | Htm.Conflict ->
        (* A cross-agent conflict says nothing about this function's
           footprint: retry at the same placement (the paper's conflict
           aborts are transient, not capacity-driven). *)
        ());
  env.Machine.shared_agent <- Some agent;
  t.env <- Some env;
  t

and ensure_dfg t fid =
  let v = t.versions.(fid) in
  match v.dfg with
  | Some c -> c
  | None ->
    let bc = t.instance.Instance.prog.Opcode.funcs.(fid) in
    let consts = t.instance.Instance.consts.(fid) in
    let fp = Feedback.func_profile t.profile fid in
    let c = Specialize.compile ~bc ~consts ~profile:fp in
    ignore
      (Nomap_opt.Pipeline.dfg ~stats:t.opt_stats ~knobs:t.opt_knobs ~paranoid:t.paranoid
         c.Specialize.lir);
    if t.verify_lir then Nomap_lir.Verify.verify c.Specialize.lir;
    v.dfg <- Some c;
    c

and ensure_ftl t fid =
  let v = t.versions.(fid) in
  match v.ftl with
  | Some c -> c
  | None ->
    let bc = t.instance.Instance.prog.Opcode.funcs.(fid) in
    let consts = t.instance.Instance.consts.(fid) in
    let fp = Feedback.func_profile t.profile fid in
    let c = Specialize.compile ~bc ~consts ~profile:fp in
    ignore (Transform.apply t.config ~placement:v.placement ~profile:fp ~stats:t.nomap_stats c);
    if t.paranoid then begin
      try Nomap_lir.Verify.verify c.Specialize.lir
      with Nomap_lir.Verify.Ill_formed msg ->
        raise (Nomap_lir.Verify.Ill_formed ("after transform: " ^ msg))
    end;
    ignore
      (Nomap_opt.Pipeline.ftl ~stats:t.opt_stats ~knobs:t.opt_knobs ~paranoid:t.paranoid
         c.Specialize.lir);
    (match t.ftl_mutate with Some m -> m c.Specialize.lir | None -> ());
    if t.verify_lir then Nomap_lir.Verify.verify c.Specialize.lir;
    v.ftl <- Some c;
    v.dirty <- false;
    c

and exec t c ~tier ~this ~args =
  match t.engine with
  | Engine.Decoded -> Decoded.exec_func (machine_env t) c ~tier ~this ~args
  | Engine.Threaded -> Threaded.exec_func (machine_env t) c ~tier ~this ~args

and dispatch t ~fid ~this ~args =
  let fp = Feedback.func_profile t.profile fid in
  fp.Feedback.call_count <- fp.Feedback.call_count + 1;
  let n = fp.Feedback.call_count in
  let th = t.thresholds in
  match t.tier_cap with
  | Cap_ftl when n > th.ftl_at ->
    let c = ensure_ftl t fid in
    exec t c ~tier:Machine.Ftl ~this ~args
  | (Cap_ftl | Cap_dfg) when n > th.dfg_at ->
    let c = ensure_dfg t fid in
    exec t c ~tier:Machine.Dfg ~this ~args
  | (Cap_ftl | Cap_dfg | Cap_baseline) when n > th.baseline_at ->
    let regs = Interp.make_frame t.instance ~fid ~this ~args in
    Interp.run_from t.baseline_env ~fid ~entry_pc:0 ~regs
  | _ ->
    let regs = Interp.make_frame t.instance ~fid ~this ~args in
    Interp.run_from t.interp_env ~fid ~entry_pc:0 ~regs

let create ?seed ?fuel ?thresholds ?verify_lir ?paranoid ?opt_knobs ?engine ?host_ic
    ?shared ~config ~tier_cap prog =
  create_gen ?seed ?fuel ?thresholds ?verify_lir ?paranoid ?opt_knobs ?engine ?host_ic
    ?shared ~config ~tier_cap prog

let create_with_ftl_mutator ~ftl_mutate ?seed ?fuel ?thresholds ?verify_lir ?paranoid
    ?opt_knobs ?engine ?host_ic ?shared ~config ~tier_cap prog =
  create_gen ?seed ?fuel ?thresholds ?verify_lir ?paranoid ~ftl_mutate ?opt_knobs ?engine
    ?host_ic ?shared ~config ~tier_cap prog

(** Run the program's top level. *)
let run_main t =
  dispatch t ~fid:t.instance.Instance.prog.Opcode.main_fid ~this:Value.Undef ~args:[]

(** Call a named global function (the benchmark entry point). *)
let call_function t name args =
  match Opcode.func_by_name t.instance.Instance.prog name with
  | Some f -> dispatch t ~fid:f.Opcode.fid ~this:Value.Undef ~args
  | None -> invalid_arg ("no function " ^ name)

let global t name =
  let prog = t.instance.Instance.prog in
  let idx = ref (-1) in
  Array.iteri (fun i n -> if n = name then idx := i) prog.Opcode.globals;
  if !idx < 0 then None else Some t.instance.Instance.globals.(!idx)

(* Accessors: [t] is abstract in the interface (vm.mli), so external
   observers — harness, oracle, daemon, tests — read through these and the
   mutable internals (versions, ftl_mutate, machine env) stay private. *)

let instance t = t.instance
let counters t = t.counters
let engine t = t.engine
let agent t = t.agent

(** Checksum of the VM's shared segment (the fuzz oracle's third
    observation alongside result and heap checksum). *)
let shared_checksum t = Segment.checksum (Agent.segment (Agent.registry t.agent))
let tx_demotions t = t.tx_demotions
let deopt_invalidations t = t.deopt_invalidations
let ftl_code t fid = t.versions.(fid).ftl

(** Snapshot of the current counters (for steady-state diffs). *)
let snapshot t = Counters.copy t.counters

(** Snapshot that also opens a measurement window: running maxima
    (write-set KB, associativity) restart here, so a later [Counters.diff]
    reports window maxima rather than whole-run maxima. *)
let begin_measurement t = Counters.begin_window t.counters
