(** Structural checksum of everything reachable from a program instance's
    globals.  The single implementation behind both the differential fuzz
    oracle ([Nomap_fuzz.Oracle]) and the execution daemon's response
    checksum ([Nomap_server.Session]): two observers of "what did this
    program do to the heap" that must never drift apart.

    Purely structural: simulated addresses, object ids and slot capacities
    are excluded, because allocation order legitimately differs across
    tiers (aborted transactions roll back stores but not allocations).
    Cycles are cut by tagging back-references. *)

val checksum : Nomap_interp.Instance.t -> string
(** 16-hex-digit FNV-1a (64-bit) digest. *)
