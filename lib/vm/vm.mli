(** The virtual machine: the tier controller wiring everything together
    (see vm.ml for the tiering/adaptation story).

    This interface is the VM's public surface — it is what the execution
    daemon ([Nomap_server]) exposes to untrusted concurrent clients, so it
    deliberately hides the machinery that must not be reachable from a
    request: the miscompile-injection hook ([create_with_ftl_mutator] is a
    separate, fuzzer-only constructor; plain [create] cannot inject
    mutations), the per-function version table, and the machine
    environment.  A [t] owns its instance (heap, globals, fuel), profile,
    and counters outright: two VMs never share mutable state, which is the
    isolation argument for running concurrent sessions on parallel domains
    against [Opcode.program] values shared read-only. *)

type tier_cap = Cap_interp | Cap_baseline | Cap_dfg | Cap_ftl

val cap_name : tier_cap -> string

type thresholds = { baseline_at : int; dfg_at : int; ftl_at : int }

val default_thresholds : thresholds

type t

val create :
  ?seed:int ->
  ?fuel:int ->
  ?thresholds:thresholds ->
  ?verify_lir:bool ->
  ?paranoid:bool ->
  ?opt_knobs:Nomap_opt.Pipeline.knobs ->
  ?engine:Nomap_machine.Engine.kind ->
  ?host_ic:bool ->
  ?shared:Nomap_shared.Agent.t ->
  config:Nomap_nomap.Config.t ->
  tier_cap:tier_cap ->
  Nomap_bytecode.Opcode.program ->
  t
(** Build a VM over a compiled program.  [fuel] bounds total interpreter
    ops / LIR instructions executed ([Instance.Out_of_fuel] past it) —
    the daemon's defence against runaway requests.  [engine] selects which
    execution engine runs DFG/FTL-compiled code (default
    [Engine.Threaded]); both engines are metric-identical, so the choice
    only affects wall-clock speed.  [shared] binds the VM to an agent on a
    communal shared segment (multi-agent runtime, DESIGN.md §16); by
    default the VM gets a private solo agent so [Shared]/[Atomics] still
    work, tier-invariantly, in single-agent runs. *)

val create_with_ftl_mutator :
  ftl_mutate:(Nomap_lir.Lir.func -> unit) ->
  ?seed:int ->
  ?fuel:int ->
  ?thresholds:thresholds ->
  ?verify_lir:bool ->
  ?paranoid:bool ->
  ?opt_knobs:Nomap_opt.Pipeline.knobs ->
  ?engine:Nomap_machine.Engine.kind ->
  ?host_ic:bool ->
  ?shared:Nomap_shared.Agent.t ->
  config:Nomap_nomap.Config.t ->
  tier_cap:tier_cap ->
  Nomap_bytecode.Opcode.program ->
  t
(** [create] plus a post-pipeline hook run on every FTL compile.  The
    differential fuzzer injects deliberate miscompiles here to prove its
    oracle catches and shrinks them.  Testing-only: nothing in the serving
    path calls this, so daemon requests cannot reach the hook. *)

val run_main : t -> Nomap_runtime.Value.t
(** Run the program's top level. *)

val call_function : t -> string -> Nomap_runtime.Value.t list -> Nomap_runtime.Value.t
(** Call a named global function (the benchmark entry point).
    @raise Invalid_argument if no function has that name. *)

val global : t -> string -> Nomap_runtime.Value.t option

val instance : t -> Nomap_interp.Instance.t
val counters : t -> Nomap_machine.Counters.t

val engine : t -> Nomap_machine.Engine.kind
(** The execution engine this VM was created with. *)

val agent : t -> Nomap_shared.Agent.t
(** The VM's shared-segment agent (solo unless [create ~shared] bound it
    to a communal registry). *)

val shared_checksum : t -> int64
(** Checksum of the VM's shared segment (fuzz-oracle observation). *)

val tx_demotions : t -> int
(** Capacity-abort-driven transaction-placement demotions so far. *)

val deopt_invalidations : t -> int
(** Optimized-code invalidations forced by repeated deopts. *)

val ftl_code : t -> int -> Nomap_tiers.Specialize.compiled option
(** FTL-compiled code for function [fid], if it tiered up ([--dump-ftl]). *)

val snapshot : t -> Nomap_machine.Counters.t
(** Snapshot of the current counters (for steady-state diffs). *)

val begin_measurement : t -> Nomap_machine.Counters.t
(** Snapshot that also opens a measurement window: running maxima
    (write-set KB, associativity) restart here, so a later [Counters.diff]
    reports window maxima rather than whole-run maxima. *)
