module Fnv = Nomap_util.Fnv
module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Instance = Nomap_interp.Instance

let checksum (inst : Instance.t) =
  let seen_obj = Hashtbl.create 16 and seen_arr = Hashtbl.create 16 in
  let h = ref Fnv.basis in
  (* Terminator byte so "ab","c" and "a","bc" hash differently. *)
  let tag s = h := Fnv.byte (Fnv.string !h s) 0xFF in
  let rec walk (v : Value.t) =
    match v with
    | Value.Int i -> tag ("i" ^ string_of_int i)
    | Value.Num f ->
      (* NaNs canonicalized; -0.0 vs 0.0 distinguished, as JS can observe
         the difference (1/x). *)
      if Float.is_nan f then tag "nan"
      else tag ("n" ^ Int64.to_string (Int64.bits_of_float f))
    | Value.Str s -> tag ("s" ^ s.Value.sdata)
    | Value.Bool b -> tag (if b then "T" else "F")
    | Value.Undef -> tag "u"
    | Value.Null -> tag "0"
    | Value.Fun fid -> tag ("f" ^ string_of_int fid)
    | Value.Hole -> tag "h"
    | Value.Obj o ->
      if Hashtbl.mem seen_obj o.Value.oid then tag "cyc"
      else begin
        Hashtbl.replace seen_obj o.Value.oid ();
        tag "{";
        List.iteri
          (fun slot name ->
            tag name;
            walk o.Value.slots.(slot))
          (Shape.property_names o.Value.shape);
        tag "}"
      end
    | Value.Arr a ->
      if Hashtbl.mem seen_arr a.Value.aid then tag "cyc"
      else begin
        Hashtbl.replace seen_arr a.Value.aid ();
        tag ("[" ^ string_of_int a.Value.alen);
        for i = 0 to a.Value.alen - 1 do
          walk a.Value.elems.(i)
        done;
        tag "]"
      end
  in
  Array.iteri
    (fun idx name ->
      tag name;
      walk inst.Instance.globals.(idx))
    inst.Instance.prog.Nomap_bytecode.Opcode.globals;
  Fnv.to_hex !h
