(** Transactional memory model (paper §V-A, §VI-A/B; DESIGN.md §15).

    - [Rot]: IBM POWER8 Rollback-Only Transaction mode — only the write
      footprint is buffered (L2 geometry); no read-set tracking
      (single-threaded JavaScript needs no conflict detection).
    - [Rtm]: Intel Restricted Transactional Memory — writes must fit L1D,
      reads must fit L2, and there is no Sticky Overflow Flag.
    - [Stm]: modeled redo-log software transaction — unbounded footprint,
      no capacity aborts; per-access overhead is charged by the timing
      model.  Reached by upgrading a hybrid RTM transaction on capacity
      overflow (see [begin_tx]'s [stm_fallback]).
    - [Ghost]: no transactional semantics; used by the Base configuration
      purely for instruction-category accounting.

    Rollback is an undo log captured through the heap's store hook: the
    real hardware buffers speculative lines in the cache; restoring mutated
    locations is observationally identical for a single-threaded run. *)

module Footprint = Nomap_cache.Footprint

type mode = Rot | Rtm | Stm | Ghost

type abort_reason =
  | Check_failed of Nomap_lir.Lir.check_kind
  | Deopt_in_tx  (** irrevocable: a lower-tier deopt fired inside a tx *)
  | Capacity_write
  | Capacity_read
  | Sof_overflow
  | Irrevocable  (** I/O attempted inside a transaction (paper V-A) *)
  | Watchdog  (** runaway transaction cut off by the simulator *)
  | Conflict
      (** cross-agent conflict on a shared segment (hardware footprint
          overlap, or failed NOrec value validation in the STM fallback) *)

val abort_reason_name : abort_reason -> string

(** Raised by the capacity hooks and by the machine's check failures inside
    transactions; unwinds to the frame that began the transaction. *)
exception Abort of abort_reason

type tx = {
  mutable mode : mode;
      (** mutable for exactly one transition: hybrid RTM upgrading to [Stm]
          on capacity overflow *)
  heap : Nomap_runtime.Heap.t;
  saved_active : bool;  (** hooks.active before this tx installed its own *)
  saved_load : int -> int -> unit;
  saved_store : int -> int -> (unit -> unit) -> unit;
  saved_io : unit -> unit;
  mutable undo : (unit -> unit) list;  (** newest first *)
  write_fp : Footprint.t;
  read_fp : Footprint.t option;  (** RTM only *)
  mutable sof : bool;  (** sticky overflow flag *)
  mutable nesting : int;  (** flattened nesting depth *)
  snapshot : (int * Nomap_runtime.Value.t) list;
      (** baseline register state checkpointed at XBegin *)
  resume_pc : int;  (** where Baseline restarts the region after an abort *)
  owner_frame : int;  (** machine frame that executed Tx_begin *)
  mutable reads : int;
  mutable writes : int;
  mutable instr_count : int;
  mutable stm_prefix_reads : int;
      (** [reads] at the HTM→STM upgrade point (work wasted under
          hardware); 0 unless the transaction fell back *)
  mutable stm_prefix_writes : int;  (** [writes] at the upgrade point *)
}

(** Begin a transaction: installs journaling/footprint hooks on the heap.
    [capacity_scale] shrinks the modeled cache geometry (DESIGN.md §6).
    [stm_fallback], when given, turns a capacity overflow into an in-place
    upgrade to [Stm] — the function is called once with the averted abort
    reason (integer bookkeeping only; cycle charges belong to the
    transaction's finish point) — instead of raising [Abort]. *)
val begin_tx :
  ?capacity_scale:int ->
  ?stm_fallback:(abort_reason -> unit) ->
  Nomap_runtime.Heap.t ->
  mode:mode ->
  snapshot:(int * Nomap_runtime.Value.t) list ->
  resume_pc:int ->
  owner_frame:int ->
  tx

(** Make the speculative writes permanent and restore the heap hooks. *)
val commit : tx -> unit

(** Undo every speculative write (newest first) and restore the hooks. *)
val rollback : tx -> unit
