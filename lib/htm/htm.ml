(** Transactional memory model.

    Two hardware modes from the paper, a modeled software mode, and a ghost
    mode for accounting:

    - [Rot] — IBM POWER8 Rollback-Only Transaction mode (paper §V-A): only
      the write footprint is buffered (in L2: 256KB, 8-way); commit
      flash-clears SW bits (5 cycles); XBegin costs a fence.  There is no
      read-set tracking because single-threaded JavaScript needs no conflict
      detection.
    - [Rtm] — Intel Restricted Transactional Memory (paper §VI-B): writes
      must fit L1D (32KB, 8-way), reads must fit L2, commit stalls ~13
      cycles, transactional reads are ~20% slower, and there is no SOF.
    - [Stm] — a modeled redo-log software transaction (DESIGN.md §15):
      unbounded footprint, no capacity aborts; every transactional access
      pays a configurable ownership-record/logging overhead charged by the
      timing model, not here.  A transaction is never *born* in this mode by
      the hybrid architecture — it is upgraded into it when an RTM capacity
      check fails (see [begin_tx]'s [stm_fallback]).
    - [Ghost] — no transactional semantics at all; used by the Base
      configuration so instruction accounting can still classify code by
      transaction region (paper Figures 8-11 break Base down the same way).

    Rollback is an undo log captured via the heap's store hook: the paper's
    hardware buffers speculative lines in the cache; we restore mutated
    locations instead, which is observationally identical for a
    single-threaded run.  The STM mode reuses the identical undo log (our
    host-side journal stands in for the STM's redo log — both make the
    region's writes revocable, and for a single-threaded run commit/abort
    outcomes are indistinguishable). *)

module Heap = Nomap_runtime.Heap
module Value = Nomap_runtime.Value
module Footprint = Nomap_cache.Footprint

type mode = Rot | Rtm | Stm | Ghost

type abort_reason =
  | Check_failed of Nomap_lir.Lir.check_kind
  | Deopt_in_tx  (** irrevocable event: a lower-tier deopt fired inside a tx *)
  | Capacity_write
  | Capacity_read
  | Sof_overflow
  | Irrevocable  (** I/O attempted inside a transaction (paper V-A) *)
  | Watchdog  (** runaway transaction cut off by the simulator *)
  | Conflict
      (** cross-agent conflict: another agent touched this transaction's
          read/write footprint on a shared segment (or, for a fallen-back
          software transaction, NOrec value validation failed at commit) *)

let abort_reason_name = function
  | Check_failed k -> "check:" ^ Nomap_lir.Lir.check_kind_name k
  | Deopt_in_tx -> "deopt-in-tx"
  | Capacity_write -> "capacity-write"
  | Capacity_read -> "capacity-read"
  | Sof_overflow -> "sof-overflow"
  | Irrevocable -> "irrevocable-io"
  | Watchdog -> "watchdog"
  | Conflict -> "conflict"

exception Abort of abort_reason

type tx = {
  mutable mode : mode;
      (** mutable for exactly one transition: a hybrid RTM transaction
          upgrading to [Stm] on capacity overflow *)
  heap : Heap.t;
  saved_active : bool;
  saved_load : int -> int -> unit;
  saved_store : int -> int -> (unit -> unit) -> unit;
  saved_io : unit -> unit;
  mutable undo : (unit -> unit) list;  (** newest first *)
  write_fp : Footprint.t;
  read_fp : Footprint.t option;  (** RTM only *)
  mutable sof : bool;  (** sticky overflow flag (ROT + SOF hardware) *)
  mutable nesting : int;  (** flattened nesting depth *)
  snapshot : (int * Value.t) list;  (** baseline register state at XBegin *)
  resume_pc : int;  (** where Baseline restarts the region *)
  owner_frame : int;  (** machine frame that executed Tx_begin *)
  mutable reads : int;
  mutable writes : int;
  mutable instr_count : int;
  mutable stm_prefix_reads : int;
      (** [reads] at the HTM→STM upgrade point: accesses executed (and
          wasted) under hardware before the capacity overflow.  0 unless the
          transaction fell back. *)
  mutable stm_prefix_writes : int;  (** [writes] at the upgrade point *)
}

(* Software-mode hooks: identical journaling, no capacity raise.  The write
   footprint keeps being recorded ([Footprint.touch] accumulates lines past
   overflow; its boolean is simply ignored) so Table-IV-style write-set
   statistics stay exact for fallen-back transactions. *)
let install_stm_hooks tx =
  let heap = tx.heap in
  heap.Heap.hooks.store <-
    (fun addr bytes undo ->
      tx.undo <- undo :: tx.undo;
      tx.writes <- tx.writes + 1;
      ignore (Footprint.touch tx.write_fp ~addr ~bytes));
  heap.Heap.hooks.load <- (fun _ _ -> tx.reads <- tx.reads + 1);
  heap.Heap.hooks.io <- (fun () -> raise (Abort Irrevocable));
  heap.Heap.hooks.active <- true

(** Upgrade a hardware transaction to the modeled software transaction
    in place: mark how much work the doomed hardware attempt had done (the
    timing model charges its re-execution), flip the mode, and swap in
    capacity-free hooks.  The undo log persists across the transition, so a
    later rollback (failed in-tx check) still restores the pre-[begin_tx]
    heap exactly.  In-place upgrade is observationally identical to
    "abort, then re-execute the region under STM" for a deterministic
    single-threaded run — the re-executed prefix would perform the same
    reads and writes — which is why the machine can keep running the
    NoMap-optimized code without materializing a restart. *)
let fallback_to_stm tx =
  tx.stm_prefix_reads <- tx.reads;
  tx.stm_prefix_writes <- tx.writes;
  tx.mode <- Stm;
  install_stm_hooks tx

(** Begin a transaction: snapshot is the architectural-register state the
    hardware checkpoints at XBegin.  [stm_fallback], when given, makes a
    capacity overflow upgrade the transaction to [Stm] (calling the
    function with the averted abort reason — integer bookkeeping only; any
    cycle charge belongs to the transaction's single finish point) instead
    of raising [Abort]. *)
let begin_tx ?(capacity_scale = 1) ?stm_fallback heap ~mode ~snapshot ~resume_pc
    ~owner_frame =
  let tx =
    {
      mode;
      heap;
      saved_active = heap.Heap.hooks.active;
      saved_load = heap.Heap.hooks.load;
      saved_store = heap.Heap.hooks.store;
      saved_io = heap.Heap.hooks.io;
      undo = [];
      write_fp =
        (match mode with
        | Rtm -> Footprint.l1d ~scale:capacity_scale ()
        | _ -> Footprint.l2 ~scale:capacity_scale ());
      read_fp =
        (match mode with Rtm -> Some (Footprint.l2 ~scale:capacity_scale ()) | _ -> None);
      sof = false;
      nesting = 1;
      snapshot;
      resume_pc;
      owner_frame;
      reads = 0;
      writes = 0;
      instr_count = 0;
      stm_prefix_reads = 0;
      stm_prefix_writes = 0;
    }
  in
  (match mode with
  | Ghost -> ()
  | Stm -> install_stm_hooks tx
  | Rot | Rtm ->
    let capacity reason =
      match stm_fallback with
      | Some notify ->
        notify reason;
        fallback_to_stm tx
      | None -> raise (Abort reason)
    in
    heap.Heap.hooks.store <-
      (fun addr bytes undo ->
        tx.undo <- undo :: tx.undo;
        tx.writes <- tx.writes + 1;
        if not (Footprint.touch tx.write_fp ~addr ~bytes) then capacity Capacity_write);
    heap.Heap.hooks.load <-
      (fun addr bytes ->
        tx.reads <- tx.reads + 1;
        match tx.read_fp with
        | Some fp -> if not (Footprint.touch fp ~addr ~bytes) then capacity Capacity_read
        | None -> ());
    heap.Heap.hooks.io <- (fun () -> raise (Abort Irrevocable));
    heap.Heap.hooks.active <- true);
  tx

let restore_hooks tx =
  tx.heap.Heap.hooks.active <- tx.saved_active;
  tx.heap.Heap.hooks.load <- tx.saved_load;
  tx.heap.Heap.hooks.store <- tx.saved_store;
  tx.heap.Heap.hooks.io <- tx.saved_io

(** Commit: speculative writes become permanent.  (The 5-cycle SW-bit
    flash-clear / 13-cycle RTM drain — and the STM write-back/validation —
    is charged by the timing model, not here.)  Returns the final write
    footprint for Table IV. *)
let commit tx =
  restore_hooks tx;
  tx.undo <- []

(** Abort: undo every speculative write, newest first, and drop the tx. *)
let rollback tx =
  restore_hooks tx;
  List.iter (fun undo -> undo ()) tx.undo;
  tx.undo <- []
