(** Hardware transactional memory model.

    Two hardware modes from the paper plus a ghost mode for accounting:

    - [Rot] — IBM POWER8 Rollback-Only Transaction mode (paper §V-A): only
      the write footprint is buffered (in L2: 256KB, 8-way); commit
      flash-clears SW bits (5 cycles); XBegin costs a fence.  There is no
      read-set tracking because single-threaded JavaScript needs no conflict
      detection.
    - [Rtm] — Intel Restricted Transactional Memory (paper §VI-B): writes
      must fit L1D (32KB, 8-way), reads must fit L2, commit stalls ~13
      cycles, transactional reads are ~20% slower, and there is no SOF.
    - [Ghost] — no transactional semantics at all; used by the Base
      configuration so instruction accounting can still classify code by
      transaction region (paper Figures 8-11 break Base down the same way).

    Rollback is an undo log captured via the heap's store hook: the paper's
    hardware buffers speculative lines in the cache; we restore mutated
    locations instead, which is observationally identical for a
    single-threaded run. *)

module Heap = Nomap_runtime.Heap
module Value = Nomap_runtime.Value
module Footprint = Nomap_cache.Footprint

type mode = Rot | Rtm | Ghost

type abort_reason =
  | Check_failed of Nomap_lir.Lir.check_kind
  | Deopt_in_tx  (** irrevocable event: a lower-tier deopt fired inside a tx *)
  | Capacity_write
  | Capacity_read
  | Sof_overflow
  | Irrevocable  (** I/O attempted inside a transaction (paper V-A) *)
  | Watchdog  (** runaway transaction cut off by the simulator *)

let abort_reason_name = function
  | Check_failed k -> "check:" ^ Nomap_lir.Lir.check_kind_name k
  | Deopt_in_tx -> "deopt-in-tx"
  | Capacity_write -> "capacity-write"
  | Capacity_read -> "capacity-read"
  | Sof_overflow -> "sof-overflow"
  | Irrevocable -> "irrevocable-io"
  | Watchdog -> "watchdog"

exception Abort of abort_reason

type tx = {
  mode : mode;
  heap : Heap.t;
  saved_active : bool;
  saved_load : int -> int -> unit;
  saved_store : int -> int -> (unit -> unit) -> unit;
  saved_io : unit -> unit;
  mutable undo : (unit -> unit) list;  (** newest first *)
  write_fp : Footprint.t;
  read_fp : Footprint.t option;  (** RTM only *)
  mutable sof : bool;  (** sticky overflow flag (ROT + SOF hardware) *)
  mutable nesting : int;  (** flattened nesting depth *)
  snapshot : (int * Value.t) list;  (** baseline register state at XBegin *)
  resume_pc : int;  (** where Baseline restarts the region *)
  owner_frame : int;  (** machine frame that executed Tx_begin *)
  mutable reads : int;
  mutable writes : int;
  mutable instr_count : int;
}

(** Begin a transaction: snapshot is the architectural-register state the
    hardware checkpoints at XBegin. *)
let begin_tx ?(capacity_scale = 1) heap ~mode ~snapshot ~resume_pc ~owner_frame =
  let tx =
    {
      mode;
      heap;
      saved_active = heap.Heap.hooks.active;
      saved_load = heap.Heap.hooks.load;
      saved_store = heap.Heap.hooks.store;
      saved_io = heap.Heap.hooks.io;
      undo = [];
      write_fp =
        (match mode with
        | Rtm -> Footprint.l1d ~scale:capacity_scale ()
        | _ -> Footprint.l2 ~scale:capacity_scale ());
      read_fp =
        (match mode with Rtm -> Some (Footprint.l2 ~scale:capacity_scale ()) | _ -> None);
      sof = false;
      nesting = 1;
      snapshot;
      resume_pc;
      owner_frame;
      reads = 0;
      writes = 0;
      instr_count = 0;
    }
  in
  (match mode with
  | Ghost -> ()
  | Rot | Rtm ->
    heap.Heap.hooks.store <-
      (fun addr bytes undo ->
        tx.undo <- undo :: tx.undo;
        tx.writes <- tx.writes + 1;
        if not (Footprint.touch tx.write_fp ~addr ~bytes) then raise (Abort Capacity_write));
    heap.Heap.hooks.load <-
      (fun addr bytes ->
        tx.reads <- tx.reads + 1;
        match tx.read_fp with
        | Some fp -> if not (Footprint.touch fp ~addr ~bytes) then raise (Abort Capacity_read)
        | None -> ());
    heap.Heap.hooks.io <- (fun () -> raise (Abort Irrevocable));
    heap.Heap.hooks.active <- true);
  tx

let restore_hooks tx =
  tx.heap.Heap.hooks.active <- tx.saved_active;
  tx.heap.Heap.hooks.load <- tx.saved_load;
  tx.heap.Heap.hooks.store <- tx.saved_store;
  tx.heap.Heap.hooks.io <- tx.saved_io

(** Commit: speculative writes become permanent.  (The 5-cycle SW-bit
    flash-clear / 13-cycle RTM drain is charged by the timing model, not
    here.)  Returns the final write footprint for Table IV. *)
let commit tx =
  restore_hooks tx;
  tx.undo <- []

(** Abort: undo every speculative write, newest first, and drop the tx. *)
let rollback tx =
  restore_hooks tx;
  List.iter (fun undo -> undo ()) tx.undo;
  tx.undo <- []
