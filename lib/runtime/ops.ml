(** Generic JavaScript operator semantics — the "runtime call" slow paths
    that the Interpreter and Baseline tiers execute for every operation, and
    that optimized code falls back to after a deoptimization. *)

open Value

(** [a + b]: string concatenation if either side is a string, else numeric. *)
let js_add heap a b =
  match (a, b) with
  | Str _, _ | _, Str _ ->
    Heap.str heap (to_js_string a ^ to_js_string b)
  | Int x, Int y ->
    let r = x + y in
    if fits_int32 r then int_ r else Num (float_of_int x +. float_of_int y)
  | _ -> number (to_number a +. to_number b)

let js_sub a b =
  match (a, b) with
  | Int x, Int y ->
    let r = x - y in
    if fits_int32 r then int_ r else Num (float_of_int x -. float_of_int y)
  | _ -> number (to_number a -. to_number b)

let js_mul a b =
  match (a, b) with
  | Int x, Int y ->
    let r = x * y in
    (* -0 results (e.g. -1 * 0) must stay doubles; conservatively only keep
       nonzero products or products of nonnegative operands as ints. *)
    if fits_int32 r && (r <> 0 || (x >= 0 && y >= 0)) then int_ r
    else Num (float_of_int x *. float_of_int y)
  | _ -> number (to_number a *. to_number b)

let js_div a b = number (to_number a /. to_number b)

let js_mod a b =
  match (a, b) with
  | Int x, Int y when y <> 0 && x >= 0 && y > 0 -> int_ (x mod y)
  | _ -> number (Float.rem (to_number a) (to_number b))

let js_neg a =
  match a with
  | Int x when x <> 0 && fits_int32 (-x) -> int_ (-x)
  | _ -> number (-.to_number a)

(* Relational comparison: strings compare lexicographically, otherwise
   numeric with NaN making every comparison false. *)
let compare_values a b ~if_str ~if_num =
  match (a, b) with
  | Str x, Str y -> if_str (String.compare x.sdata y.sdata)
  | _ ->
    let x = to_number a and y = to_number b in
    if Float.is_nan x || Float.is_nan y then false else if_num x y

let js_lt a b = compare_values a b ~if_str:(fun c -> c < 0) ~if_num:(fun x y -> x < y)
let js_le a b = compare_values a b ~if_str:(fun c -> c <= 0) ~if_num:(fun x y -> x <= y)
let js_gt a b = compare_values a b ~if_str:(fun c -> c > 0) ~if_num:(fun x y -> x > y)
let js_ge a b = compare_values a b ~if_str:(fun c -> c >= 0) ~if_num:(fun x y -> x >= y)

let wrap_int32 i =
  let m = i land 0xFFFF_FFFF in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

let js_band a b = int_ (wrap_int32 (to_int32 a land to_int32 b))
let js_bor a b = int_ (wrap_int32 (to_int32 a lor to_int32 b))
let js_bxor a b = int_ (wrap_int32 (to_int32 a lxor to_int32 b))
let js_bitnot a = int_ (wrap_int32 (lnot (to_int32 a)))

let js_shl a b = int_ (wrap_int32 (to_int32 a lsl (to_uint32 b land 31)))
let js_shr a b = int_ (to_int32 a asr (to_uint32 b land 31))

let js_ushr a b =
  let x = to_uint32 a lsr (to_uint32 b land 31) in
  if x > int32_max then Num (float_of_int x) else int_ x

let apply_binop heap (op : Nomap_jsir.Ast.binop) a b =
  match op with
  | Add -> js_add heap a b
  | Sub -> js_sub a b
  | Mul -> js_mul a b
  | Div -> js_div a b
  | Mod -> js_mod a b
  | Lt -> bool_ (js_lt a b)
  | Le -> bool_ (js_le a b)
  | Gt -> bool_ (js_gt a b)
  | Ge -> bool_ (js_ge a b)
  | Eq -> bool_ (equals a b)
  | Ne -> bool_ (not (equals a b))
  | Band -> js_band a b
  | Bor -> js_bor a b
  | Bxor -> js_bxor a b
  | Shl -> js_shl a b
  | Shr -> js_shr a b
  | Ushr -> js_ushr a b

let apply_unop (op : Nomap_jsir.Ast.unop) a =
  match op with
  | Neg -> js_neg a
  | Plus -> number (to_number a)
  | Not -> bool_ (not (truthy a))
  | Bitnot -> js_bitnot a

(** Fast-path character read with a simulated memory access; [-1] when out
    of range (callers bounds-check first on the fast path). *)
let string_char_code (heap : Heap.t) (s : jsstring) i =
  if i >= 0 && i < String.length s.sdata then begin
    Heap.note_load heap (s.saddr + 16 + i) 1;
    Char.code s.sdata.[i]
  end
  else -1

(** [.length] for the three length-bearing types. *)
let js_length v =
  match v with
  | Str s -> Some (int_ (String.length s.sdata))
  | Arr a ->
    Some (int_ a.alen)
  | _ -> None
