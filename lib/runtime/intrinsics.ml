(** Builtin functions and methods available to MiniJS programs.

    Three namespaces:
    - static builtins resolved at compile time: [Math.floor(x)],
      [String.fromCharCode(c)], and the [Math.PI]/[Math.E] constants;
    - receiver methods dispatched on the runtime type of the receiver:
      [s.charCodeAt(i)], [a.push(v)], ...;
    - global functions: [print], [parseInt], [parseFloat], [isNaN].

    Every intrinsic carries a cost in simulated machine instructions
    ([cost]), charged when the VM executes it — these are "C runtime code"
    in the paper's instruction accounting (category NoFTL). *)

type t =
  (* Math.* *)
  | Math_floor
  | Math_ceil
  | Math_round
  | Math_sqrt
  | Math_abs
  | Math_sin
  | Math_cos
  | Math_tan
  | Math_asin
  | Math_acos
  | Math_atan
  | Math_atan2
  | Math_pow
  | Math_log
  | Math_exp
  | Math_min
  | Math_max
  | Math_random
  (* String methods / statics *)
  | Str_char_code_at
  | Str_char_at
  | Str_substring
  | Str_index_of
  | Str_to_lower
  | Str_to_upper
  | Str_split
  | Str_from_char_code
  (* Array methods *)
  | Arr_push
  | Arr_pop
  | Arr_join
  (* Globals *)
  | Global_print
  | Global_parse_int
  | Global_parse_float
  | Global_is_nan
  (* Shared segment (SharedArrayBuffer-style; lib/shared).  Plain accessors
     plus the wait-free Atomics subset.  All dispatch through the heap's
     [shared] closure installed by the agent runtime. *)
  | Shared_read
  | Shared_write
  | Shared_size
  | Atomics_load
  | Atomics_store
  | Atomics_add
  | Atomics_sub
  | Atomics_exchange
  | Atomics_compare_exchange
  | Atomics_fence

exception Type_error of string

let name = function
  | Math_floor -> "Math.floor"
  | Math_ceil -> "Math.ceil"
  | Math_round -> "Math.round"
  | Math_sqrt -> "Math.sqrt"
  | Math_abs -> "Math.abs"
  | Math_sin -> "Math.sin"
  | Math_cos -> "Math.cos"
  | Math_tan -> "Math.tan"
  | Math_asin -> "Math.asin"
  | Math_acos -> "Math.acos"
  | Math_atan -> "Math.atan"
  | Math_atan2 -> "Math.atan2"
  | Math_pow -> "Math.pow"
  | Math_log -> "Math.log"
  | Math_exp -> "Math.exp"
  | Math_min -> "Math.min"
  | Math_max -> "Math.max"
  | Math_random -> "Math.random"
  | Str_char_code_at -> "charCodeAt"
  | Str_char_at -> "charAt"
  | Str_substring -> "substring"
  | Str_index_of -> "indexOf"
  | Str_to_lower -> "toLowerCase"
  | Str_to_upper -> "toUpperCase"
  | Str_split -> "split"
  | Str_from_char_code -> "String.fromCharCode"
  | Arr_push -> "push"
  | Arr_pop -> "pop"
  | Arr_join -> "join"
  | Global_print -> "print"
  | Global_parse_int -> "parseInt"
  | Global_parse_float -> "parseFloat"
  | Global_is_nan -> "isNaN"
  | Shared_read -> "Shared.read"
  | Shared_write -> "Shared.write"
  | Shared_size -> "Shared.size"
  | Atomics_load -> "Atomics.load"
  | Atomics_store -> "Atomics.store"
  | Atomics_add -> "Atomics.add"
  | Atomics_sub -> "Atomics.sub"
  | Atomics_exchange -> "Atomics.exchange"
  | Atomics_compare_exchange -> "Atomics.compareExchange"
  | Atomics_fence -> "Atomics.fence"

(** Shared-segment intrinsics touch memory visible to other agents: the
    optimizer must treat them as clobbering everything (no CSE/LICM), and
    the scheduler treats them as yield points. *)
let is_shared = function
  | Shared_read | Shared_write | Shared_size | Atomics_load | Atomics_store
  | Atomics_add | Atomics_sub | Atomics_exchange | Atomics_compare_exchange
  | Atomics_fence ->
    true
  | _ -> false

(** Simulated instruction cost of calling the intrinsic (call overhead plus a
    rough body cost; string ops also charge per character at eval time). *)
let cost = function
  | Math_floor | Math_ceil | Math_round | Math_abs | Math_min | Math_max -> 8
  | Math_sqrt -> 15
  | Math_sin | Math_cos | Math_tan | Math_asin | Math_acos | Math_atan | Math_atan2 -> 40
  | Math_pow | Math_log | Math_exp -> 40
  | Math_random -> 12
  | Str_char_code_at | Str_char_at -> 10
  | Str_substring | Str_index_of | Str_to_lower | Str_to_upper | Str_split -> 20
  | Str_from_char_code -> 12
  | Arr_push | Arr_pop -> 12
  | Arr_join -> 20
  | Global_print -> 50
  | Global_parse_int | Global_parse_float -> 25
  | Global_is_nan -> 6
  (* Plain shared accesses cost a bounds-checked load/store; atomics add the
     lock-prefix / LL-SC latency; a full SC fence drains the store buffer. *)
  | Shared_read | Shared_write | Shared_size -> 10
  | Atomics_load | Atomics_store -> 18
  | Atomics_add | Atomics_sub | Atomics_exchange | Atomics_compare_exchange -> 30
  | Atomics_fence -> 24

let static_lookup base meth =
  match (base, meth) with
  | "Math", "floor" -> Some Math_floor
  | "Math", "ceil" -> Some Math_ceil
  | "Math", "round" -> Some Math_round
  | "Math", "sqrt" -> Some Math_sqrt
  | "Math", "abs" -> Some Math_abs
  | "Math", "sin" -> Some Math_sin
  | "Math", "cos" -> Some Math_cos
  | "Math", "tan" -> Some Math_tan
  | "Math", "asin" -> Some Math_asin
  | "Math", "acos" -> Some Math_acos
  | "Math", "atan" -> Some Math_atan
  | "Math", "atan2" -> Some Math_atan2
  | "Math", "pow" -> Some Math_pow
  | "Math", "log" -> Some Math_log
  | "Math", "exp" -> Some Math_exp
  | "Math", "min" -> Some Math_min
  | "Math", "max" -> Some Math_max
  | "Math", "random" -> Some Math_random
  | "String", "fromCharCode" -> Some Str_from_char_code
  | "Shared", "read" -> Some Shared_read
  | "Shared", "write" -> Some Shared_write
  | "Shared", "size" -> Some Shared_size
  | "Atomics", "load" -> Some Atomics_load
  | "Atomics", "store" -> Some Atomics_store
  | "Atomics", "add" -> Some Atomics_add
  | "Atomics", "sub" -> Some Atomics_sub
  | "Atomics", "exchange" -> Some Atomics_exchange
  | "Atomics", "compareExchange" -> Some Atomics_compare_exchange
  | "Atomics", "fence" -> Some Atomics_fence
  | _ -> None

let static_constant base prop =
  match (base, prop) with
  | "Math", "PI" -> Some (Value.Num (4.0 *. atan 1.0))
  | "Math", "E" -> Some (Value.Num (exp 1.0))
  | _ -> None

(** Method table for string receivers (pure in the name: resolvable once per
    call site at decode time). *)
let str_method_lookup = function
  | "charCodeAt" -> Some Str_char_code_at
  | "charAt" -> Some Str_char_at
  | "substring" -> Some Str_substring
  | "indexOf" -> Some Str_index_of
  | "toLowerCase" -> Some Str_to_lower
  | "toUpperCase" -> Some Str_to_upper
  | "split" -> Some Str_split
  | _ -> None

(** Method table for array receivers (pure in the name). *)
let arr_method_lookup = function
  | "push" -> Some Arr_push
  | "pop" -> Some Arr_pop
  | "join" -> Some Arr_join
  | _ -> None

(** Methods dispatched on receiver type at run time. *)
let method_lookup (recv : Value.t) meth =
  match recv with
  | Value.Str _ -> str_method_lookup meth
  | Value.Arr _ -> arr_method_lookup meth
  | _ -> None

let global_lookup = function
  | "print" -> Some Global_print
  | "parseInt" -> Some Global_parse_int
  | "parseFloat" -> Some Global_parse_float
  | "isNaN" -> Some Global_is_nan
  | _ -> None

let arg n args = match List.nth_opt args n with Some v -> v | None -> Value.Undef

let num n args = Value.to_number (arg n args)

let math1 f args = Value.number (f (num 0 args))

let expect_string fn = function
  | Value.Str s -> s.Value.sdata
  | v -> raise (Type_error (Printf.sprintf "%s: expected string, got %s" fn (Value.type_name v)))

let expect_array fn = function
  | Value.Arr a -> a
  | v -> raise (Type_error (Printf.sprintf "%s: expected array, got %s" fn (Value.type_name v)))

(** Per-character extra instruction charge for string-heavy intrinsics;
    [argc] is the argument count (the only thing the charge needs from the
    argument list, so callers with unboxed arguments avoid building one). *)
let dynamic_cost_argc intr (recv : Value.t) ~argc =
  match intr with
  | Str_substring | Str_to_lower | Str_to_upper | Str_index_of | Str_split -> (
    match recv with Value.Str s -> String.length s.Value.sdata | _ -> 0)
  | Arr_join -> (
    match recv with Value.Arr a -> 8 * a.Value.alen | _ -> 0)
  | Str_from_char_code | Global_print -> argc
  | _ -> 0

(** Per-character extra instruction charge for string-heavy intrinsics. *)
let dynamic_cost intr (recv : Value.t) (args : Value.t list) =
  dynamic_cost_argc intr recv ~argc:(List.length args)

let eval heap intr (recv : Value.t) (args : Value.t list) : Value.t =
  match intr with
  | Math_floor -> math1 Float.floor args
  | Math_ceil -> math1 Float.ceil args
  | Math_round -> math1 (fun f -> Float.floor (f +. 0.5)) args
  | Math_sqrt -> math1 Float.sqrt args
  | Math_abs -> math1 Float.abs args
  | Math_sin -> math1 sin args
  | Math_cos -> math1 cos args
  | Math_tan -> math1 tan args
  | Math_asin -> math1 asin args
  | Math_acos -> math1 acos args
  | Math_atan -> math1 atan args
  | Math_atan2 -> Value.number (atan2 (num 0 args) (num 1 args))
  | Math_pow -> Value.number (Float.pow (num 0 args) (num 1 args))
  | Math_log -> math1 log args
  | Math_exp -> math1 exp args
  | Math_min ->
    let xs = List.map Value.to_number args in
    Value.number (List.fold_left min Float.infinity xs)
  | Math_max ->
    let xs = List.map Value.to_number args in
    Value.number (List.fold_left max Float.neg_infinity xs)
  | Math_random -> Value.Num (Heap.math_random heap)
  | Str_char_code_at ->
    let s = expect_string "charCodeAt" recv in
    let i = Value.to_int32 (arg 0 args) in
    if i >= 0 && i < String.length s then Value.int_ (Char.code s.[i]) else Value.Num Float.nan
  | Str_char_at ->
    let s = expect_string "charAt" recv in
    let i = Value.to_int32 (arg 0 args) in
    if i >= 0 && i < String.length s then Heap.str heap (String.make 1 s.[i])
    else Heap.str heap ""
  | Str_substring ->
    let s = expect_string "substring" recv in
    let n = String.length s in
    let clamp i = max 0 (min n i) in
    let a = clamp (Value.to_int32 (arg 0 args)) in
    let b =
      match args with [ _ ] -> n | _ -> clamp (Value.to_int32 (arg 1 args))
    in
    let lo = min a b and hi = max a b in
    Heap.str heap (String.sub s lo (hi - lo))
  | Str_index_of ->
    let s = expect_string "indexOf" recv in
    let needle = Value.to_js_string (arg 0 args) in
    let nl = String.length needle and sl = String.length s in
    let rec find i =
      if i + nl > sl then -1
      else if String.sub s i nl = needle then i
      else find (i + 1)
    in
    Value.int_ (find 0)
  | Str_to_lower -> Heap.str heap (String.lowercase_ascii (expect_string "toLowerCase" recv))
  | Str_to_upper -> Heap.str heap (String.uppercase_ascii (expect_string "toUpperCase" recv))
  | Str_split ->
    let s = expect_string "split" recv in
    let sep = Value.to_js_string (arg 0 args) in
    let parts =
      if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
      else begin
        (* Split on the literal separator, JS-style (keeps empty fields). *)
        let rec go start acc =
          match
            (let nl = String.length sep and sl = String.length s in
             let rec find i =
               if i + nl > sl then None
               else if String.sub s i nl = sep then Some i
               else find (i + 1)
             in
             find start)
          with
          | Some i -> go (i + String.length sep) (String.sub s start (i - start) :: acc)
          | None -> List.rev (String.sub s start (String.length s - start) :: acc)
        in
        go 0 []
      end
    in
    let a = Heap.alloc_array heap 0 in
    List.iteri (fun i part -> Heap.set_elem heap a i (Heap.str heap part)) parts;
    Value.Arr a
  | Str_from_char_code ->
    let chars =
      List.map (fun v -> Char.chr (Value.to_int32 v land 0xFF)) args
    in
    Heap.str heap (String.init (List.length chars) (List.nth chars))
  | Arr_push ->
    let a = expect_array "push" recv in
    let rec push_all = function
      | [] -> Value.int_ a.Value.alen
      | v :: rest ->
        ignore (Heap.array_push heap a v);
        push_all rest
    in
    push_all args
  | Arr_pop -> Heap.array_pop heap (expect_array "pop" recv)
  | Arr_join ->
    let a = expect_array "join" recv in
    let sep = match args with [] -> "," | v :: _ -> Value.to_js_string v in
    let parts =
      List.init a.Value.alen (fun i ->
          match Heap.get_elem heap a i with
          | Value.Undef | Value.Null -> ""
          | v -> Value.to_js_string v)
    in
    Heap.str heap (String.concat sep parts)
  | Global_print ->
    (* I/O is irrevocable inside a hardware transaction: the guard aborts
       before anything escapes, and Baseline re-runs the region (printing
       exactly once). *)
    if heap.Heap.hooks.active then heap.Heap.hooks.io ();
    print_endline (String.concat " " (List.map Value.to_js_string args));
    Value.Undef
  | Global_parse_int ->
    let s = String.trim (Value.to_js_string (arg 0 args)) in
    let radix = match args with [ _; r ] -> Value.to_int32 r | _ -> 10 in
    let digit c =
      if c >= '0' && c <= '9' then Char.code c - Char.code '0'
      else if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a' + 10
      else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
      else 99
    in
    let sign, start =
      if s <> "" && s.[0] = '-' then (-1.0, 1)
      else if s <> "" && s.[0] = '+' then (1.0, 1)
      else (1.0, 0)
    in
    let radix, start =
      if radix = 16 && String.length s >= start + 2 && s.[start] = '0'
         && (s.[start + 1] = 'x' || s.[start + 1] = 'X')
      then (16, start + 2)
      else (radix, start)
    in
    let rec go i acc saw =
      if i < String.length s && digit s.[i] < radix then
        go (i + 1) ((acc *. float_of_int radix) +. float_of_int (digit s.[i])) true
      else if saw then Value.number (sign *. acc)
      else Value.Num Float.nan
    in
    go start 0.0 false
  | Global_parse_float ->
    let s = String.trim (Value.to_js_string (arg 0 args)) in
    (match float_of_string_opt s with
    | Some f -> Value.number f
    | None -> Value.Num Float.nan)
  | Global_is_nan -> Value.bool_ (Float.is_nan (Value.to_number (arg 0 args)))
  | Shared_read | Shared_write | Shared_size | Atomics_load | Atomics_store
  | Atomics_add | Atomics_sub | Atomics_exchange | Atomics_compare_exchange
  | Atomics_fence -> (
    let op =
      match intr with
      | Shared_read -> Heap.Sh_read
      | Shared_write -> Heap.Sh_write
      | Shared_size -> Heap.Sh_size
      | Atomics_load -> Heap.Sh_load
      | Atomics_store -> Heap.Sh_store
      | Atomics_add -> Heap.Sh_add
      | Atomics_sub -> Heap.Sh_sub
      | Atomics_exchange -> Heap.Sh_exchange
      | Atomics_compare_exchange -> Heap.Sh_cas
      | _ -> Heap.Sh_fence
    in
    match heap.Heap.shared with
    | Some dispatch -> dispatch op args
    | None -> raise (Type_error (name intr ^ ": no shared segment attached")))

(* ------------------------------------------------------------------ *)
(* Arity fast paths.

   The optimizing tiers know the call-site arity, so the common 0/1/2-arg
   intrinsic calls can skip building the argument list.  Each case below
   replicates [eval]'s behavior for that arity exactly (including the
   polymorphic [min]/[max] folds, whose NaN ordering differs from
   [Float.min]); anything not covered falls back to [eval] with a freshly
   built list. *)

let eval0 heap intr (recv : Value.t) : Value.t =
  match intr with
  | Math_random -> Value.Num (Heap.math_random heap)
  | Arr_pop -> Heap.array_pop heap (expect_array "pop" recv)
  | _ -> eval heap intr recv []

let eval1 heap intr (recv : Value.t) (a0 : Value.t) : Value.t =
  match intr with
  | Math_floor -> Value.number (Float.floor (Value.to_number a0))
  | Math_ceil -> Value.number (Float.ceil (Value.to_number a0))
  | Math_round -> Value.number (Float.floor (Value.to_number a0 +. 0.5))
  | Math_sqrt -> Value.number (Float.sqrt (Value.to_number a0))
  | Math_abs -> Value.number (Float.abs (Value.to_number a0))
  | Math_sin -> Value.number (sin (Value.to_number a0))
  | Math_cos -> Value.number (cos (Value.to_number a0))
  | Math_tan -> Value.number (tan (Value.to_number a0))
  | Math_asin -> Value.number (asin (Value.to_number a0))
  | Math_acos -> Value.number (acos (Value.to_number a0))
  | Math_atan -> Value.number (atan (Value.to_number a0))
  | Math_log -> Value.number (log (Value.to_number a0))
  | Math_exp -> Value.number (exp (Value.to_number a0))
  | Math_min -> Value.number (min Float.infinity (Value.to_number a0))
  | Math_max -> Value.number (max Float.neg_infinity (Value.to_number a0))
  | Str_char_code_at ->
    let s = expect_string "charCodeAt" recv in
    let i = Value.to_int32 a0 in
    if i >= 0 && i < String.length s then Value.int_ (Char.code s.[i]) else Value.Num Float.nan
  | Str_char_at ->
    let s = expect_string "charAt" recv in
    let i = Value.to_int32 a0 in
    if i >= 0 && i < String.length s then Heap.str heap (String.make 1 s.[i])
    else Heap.str heap ""
  | Arr_push ->
    let a = expect_array "push" recv in
    ignore (Heap.array_push heap a a0);
    Value.int_ a.Value.alen
  | Global_is_nan -> Value.bool_ (Float.is_nan (Value.to_number a0))
  | _ -> eval heap intr recv [ a0 ]

let eval2 heap intr (recv : Value.t) (a0 : Value.t) (a1 : Value.t) : Value.t =
  match intr with
  | Math_atan2 -> Value.number (atan2 (Value.to_number a0) (Value.to_number a1))
  | Math_pow -> Value.number (Float.pow (Value.to_number a0) (Value.to_number a1))
  | Math_min ->
    Value.number (min (min Float.infinity (Value.to_number a0)) (Value.to_number a1))
  | Math_max ->
    Value.number (max (max Float.neg_infinity (Value.to_number a0)) (Value.to_number a1))
  | _ -> eval heap intr recv [ a0; a1 ]
