(** Helper-level wall-clock profiler, enabled by [NOMAP_PROF=1].

    Perf work on the simulator needs to know which *host* helpers burn the
    time (the modeled counters deliberately say nothing about host cost).
    Each instrumented helper owns a [slot]; when profiling is enabled the
    caller brackets the helper with [now]/[record], and an [at_exit] hook
    prints per-helper call counts and wall nanoseconds to stderr, sorted by
    total time.

    The [enabled] flag is read once at startup so the disabled path costs a
    single branch; instrumentation sites should guard with
    [if Prof.enabled then ...] around the timed call and fall through to the
    plain call otherwise. *)

let enabled =
  match Sys.getenv_opt "NOMAP_PROF" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

type slot = { pname : string; mutable calls : int; mutable ns : int }

let slots : slot list ref = ref []

(** Register a named slot (do this once, at module init). *)
let make pname =
  let s = { pname; calls = 0; ns = 0 } in
  slots := s :: !slots;
  s

let now () : int64 = Monotonic_clock.now ()

let[@inline] record slot (t0 : int64) =
  slot.calls <- slot.calls + 1;
  slot.ns <- slot.ns + Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0)

let report () =
  let used = List.filter (fun s -> s.calls > 0) !slots in
  if used <> [] then begin
    let sorted = List.sort (fun a b -> compare b.ns a.ns) used in
    Printf.eprintf "--- NOMAP_PROF helper profile ---\n";
    Printf.eprintf "%-28s %12s %14s %10s\n" "helper" "calls" "total-ns" "ns/call";
    List.iter
      (fun s ->
        Printf.eprintf "%-28s %12d %14d %10.1f\n" s.pname s.calls s.ns
          (float_of_int s.ns /. float_of_int s.calls))
      sorted;
    Printf.eprintf "---------------------------------\n%!"
  end

let () = if enabled then at_exit report
