(** MiniJS runtime values.

    Numbers follow the JavaScriptCore convention: semantically every number
    is a double, but values that are integral and fit in int32 are kept as
    [Int].  The optimizing tiers speculate on [Int] and guard with overflow
    checks — the paper's dominant check category.

    [Hole] is internal to arrays (an element never written); it is never
    returned to MiniJS code — element reads turn holes into [Undef] after a
    hole check. *)

type t =
  | Int of int  (** invariant: fits in int32 *)
  | Num of float
  | Str of jsstring
  | Bool of bool
  | Undef
  | Null
  | Obj of obj
  | Arr of arr
  | Fun of int  (** index into the program's function table *)
  | Hole

and jsstring = { sid : int; sdata : string; mutable saddr : int }

and obj = {
  oid : int;
  mutable shape : Shape.t;
  mutable slots : t array;
  mutable oaddr : int;  (** simulated address of the object header *)
  mutable slots_addr : int;  (** simulated address of the property storage *)
}

and arr = {
  aid : int;
  mutable elems : t array;  (** physical storage; may exceed [alen] *)
  mutable alen : int;  (** JS [.length] *)
  mutable aaddr : int;
  mutable elems_addr : int;
}

let int32_min = -0x8000_0000
let int32_max = 0x7FFF_FFFF

let fits_int32 i = i >= int32_min && i <= int32_max

(* Preallocated [Int] values for the indices, lengths, character codes and
   small arithmetic results that dominate hot loops: reusing the boxed
   constructor avoids a minor-heap allocation per produced integer.  Values
   are immutable, so sharing is unobservable (equality on [Int] is
   structural). *)
let small_int_min = -256
let small_int_max = 4096
let small_ints =
  Array.init (small_int_max - small_int_min + 1) (fun i -> Int (i + small_int_min))

(** [Int i] without allocating when [i] is small.  The caller guarantees
    [i] fits int32 (same contract as writing [Int i] directly). *)
let[@inline] int_ i =
  if i >= small_int_min && i <= small_int_max then
    Array.unsafe_get small_ints (i - small_int_min)
  else Int i

(** Canonical number constructor: integral doubles in int32 range become
    [Int] (except -0.0, which must stay a double to preserve its sign). *)
let number f =
  if Float.is_integer f && Float.abs f <= 2147483647.0 && not (f = 0.0 && 1.0 /. f < 0.0)
  then int_ (int_of_float f)
  else Num f

let of_int i = if fits_int32 i then int_ i else Num (float_of_int i)

(* The two [Bool] blocks, preallocated for the same reason as [small_ints]:
   comparisons produce one per execution on the engines' hot paths. *)
let true_ = Bool true
let false_ = Bool false

(** [Bool b] without allocating. *)
let[@inline] bool_ b = if b then true_ else false_

let type_name = function
  | Int _ | Num _ -> "number"
  | Str _ -> "string"
  | Bool _ -> "boolean"
  | Undef -> "undefined"
  | Null -> "null"
  | Obj _ -> "object"
  | Arr _ -> "array"
  | Fun _ -> "function"
  | Hole -> "hole"

let is_number = function Int _ | Num _ -> true | _ -> false

(** JS ToNumber, restricted to the types MiniJS has. *)
let to_number = function
  | Int i -> float_of_int i
  | Num f -> f
  | Bool true -> 1.0
  | Bool false -> 0.0
  | Null -> 0.0
  | Undef -> Float.nan
  | Str s -> (
    let str = String.trim s.sdata in
    if str = "" then 0.0
    else match float_of_string_opt str with Some f -> f | None -> Float.nan)
  | Obj _ | Arr _ | Fun _ | Hole -> Float.nan

(** JS ToInt32 (for bitwise operators). *)
let to_int32 v =
  match v with
  | Int i -> i
  | _ ->
    let f = to_number v in
    if Float.is_nan f || Float.is_integer f = false && Float.abs f = Float.infinity then 0
    else if Float.abs f = Float.infinity then 0
    else begin
      let m = Float.rem (Float.of_int (int_of_float f)) 4294967296.0 in
      let m = if m < 0.0 then m +. 4294967296.0 else m in
      let u = int_of_float m in
      if u >= 0x8000_0000 then u - 0x1_0000_0000 else u
    end

(** JS ToUint32. *)
let to_uint32 v =
  let i = to_int32 v in
  if i < 0 then i + 0x1_0000_0000 else i

let truthy = function
  | Bool b -> b
  | Int i -> i <> 0
  | Num f -> not (f = 0.0 || Float.is_nan f)
  | Str s -> s.sdata <> ""
  | Undef | Null -> false
  | Obj _ | Arr _ | Fun _ -> true
  | Hole -> false

(** Number formatting, approximating JS's shortest-round-trip rule closely
    enough for benchmark checksums. *)
let number_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e21 then Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec to_js_string v =
  match v with
  | Int i -> string_of_int i
  | Num f -> number_to_string f
  | Str s -> s.sdata
  | Bool b -> if b then "true" else "false"
  | Undef -> "undefined"
  | Null -> "null"
  | Fun _ -> "function"
  | Obj o ->
    (* Not JS's "[object Object]": printing fields makes checksums strict. *)
    let names = Shape.property_names o.shape in
    let fields =
      List.mapi (fun i name -> Printf.sprintf "%s:%s" name (to_js_string o.slots.(i))) names
    in
    "{" ^ String.concat "," fields ^ "}"
  | Arr a ->
    let parts =
      List.init a.alen (fun i ->
          match a.elems.(i) with Hole | Undef -> "" | v -> to_js_string v)
    in
    String.concat "," parts
  | Hole -> ""

(** Strict-ish equality: MiniJS has no coercing [==], so this implements
    strict equality with the usual number unification. *)
let equals a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | (Int _ | Num _), (Int _ | Num _) ->
    let x = to_number a and y = to_number b in
    x = y (* NaN <> NaN holds under OCaml float = *)
  | Str x, Str y -> String.equal x.sdata y.sdata
  | Bool x, Bool y -> x = y
  | Undef, Undef | Null, Null -> true
  | Obj x, Obj y -> x == y
  | Arr x, Arr y -> x == y
  | Fun x, Fun y -> x = y
  | _ -> false

let pp fmt v = Format.fprintf fmt "%s" (to_js_string v)
