(** The simulated heap: allocation with simulated addresses, plus every
    object/array/string access path.

    All memory traffic funnels through [note_load]/[note_store] hooks so the
    HTM layer can journal transactional writes (for rollback and write-set
    footprint) and the cache model can observe addresses.  Outside
    transactions the hooks are no-ops, and [hooks.active] says so up front:
    the hot paths test one boolean instead of calling a no-op closure — and,
    for stores, instead of allocating an undo closure nobody will run.
    Installing hooks (the HTM layer, tests) must set [active].

    Addresses are fictitious but behave like real ones: allocation bumps a
    pointer, property storage and array storage get their own regions, and
    growing an array moves its storage to a fresh region (butterfly
    reallocation in JavaScriptCore terms). *)

type hooks = {
  mutable active : bool;
      (** hooks are installed; when false no hook is called (and no undo
          closure is allocated) *)
  mutable load : int -> int -> unit;  (** addr, bytes *)
  mutable store : int -> int -> (unit -> unit) -> unit;  (** addr, bytes, undo *)
  mutable io : unit -> unit;
      (** called before any observable I/O; a transaction installs an
          irrevocability guard here (paper V-A) *)
}

(** Operations on the VM's attached shared segment (SharedArrayBuffer-style;
    DESIGN.md §16).  The runtime layer only names them; the implementation
    lives in [lib/shared] and is installed as the [shared] closure below, so
    [Intrinsics.eval] can dispatch without a dependency cycle. *)
type shared_op =
  | Sh_read  (** Shared.read(i) — plain (non-atomic) element read *)
  | Sh_write  (** Shared.write(i, v) — plain element write; returns v *)
  | Sh_size  (** Shared.size() — element count *)
  | Sh_load  (** Atomics.load(i) *)
  | Sh_store  (** Atomics.store(i, v) — returns v *)
  | Sh_add  (** Atomics.add(i, v) — returns the old value *)
  | Sh_sub  (** Atomics.sub(i, v) — returns the old value *)
  | Sh_exchange  (** Atomics.exchange(i, v) — returns the old value *)
  | Sh_cas  (** Atomics.compareExchange(i, expected, v) — returns the old value *)
  | Sh_fence  (** Atomics.fence() — SC fence; returns 0 *)

type t = {
  mutable next_addr : int;
  mutable next_oid : int;
  mutable next_aid : int;
  mutable next_sid : int;
  shapes : Shape.universe;
  hooks : hooks;
  prng : Nomap_util.Prng.t;  (** backs Math.random deterministically *)
  mutable bytes_allocated : int;
  mutable shared : (shared_op -> Value.t list -> Value.t) option;
      (** agent-runtime dispatch for [shared_op]; [None] until an agent
          attaches a segment (Agent.install) *)
}

let no_hooks () =
  { active = false; load = (fun _ _ -> ()); store = (fun _ _ _ -> ()); io = (fun () -> ()) }

let create ?(seed = 42) () =
  {
    next_addr = 0x10000;
    next_oid = 0;
    next_aid = 0;
    next_sid = 0;
    shapes = Shape.create_universe ();
    hooks = no_hooks ();
    prng = Nomap_util.Prng.create ~seed;
    bytes_allocated = 0;
    shared = None;
  }

let word_bytes = 8

let[@inline] note_load t addr bytes = if t.hooks.active then t.hooks.load addr bytes

let alloc_region t bytes =
  let bytes = (bytes + 15) land lnot 15 in
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + bytes;
  t.bytes_allocated <- t.bytes_allocated + bytes;
  addr

(* ------------------------------------------------------------------ *)
(* Strings *)

let alloc_string t s : Value.jsstring =
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let saddr = alloc_region t (16 + String.length s) in
  { Value.sid; sdata = s; saddr }

let str t s = Value.Str (alloc_string t s)

(* ------------------------------------------------------------------ *)
(* Objects *)

let initial_slot_capacity = 4

let alloc_object t : Value.obj =
  let oid = t.next_oid in
  t.next_oid <- t.next_oid + 1;
  let oaddr = alloc_region t 16 in
  let slots_addr = alloc_region t (initial_slot_capacity * word_bytes) in
  {
    Value.oid;
    shape = Shape.root t.shapes;
    slots = Array.make initial_slot_capacity Value.Undef;
    oaddr;
    slots_addr;
  }

let slot_addr (o : Value.obj) slot = o.slots_addr + (slot * word_bytes)

(** Read a property slot directly (the FTL fast path after a shape check). *)
let load_slot t (o : Value.obj) slot =
  note_load t (slot_addr o slot) word_bytes;
  o.Value.slots.(slot)

(** Write a property slot directly (fast path after a shape check). *)
let store_slot t (o : Value.obj) slot v =
  if t.hooks.active then begin
    let old = o.Value.slots.(slot) in
    t.hooks.store (slot_addr o slot) word_bytes (fun () -> o.Value.slots.(slot) <- old)
  end;
  o.Value.slots.(slot) <- v

(** Generic property read by pre-resolved slot (the host-IC hit path): the
    same shape-word read the inline-cache probe performs, then the slot.
    [slot] is -1 when the property is absent. *)
let get_prop_slot t (o : Value.obj) slot =
  note_load t o.Value.oaddr word_bytes;
  if slot >= 0 then load_slot t o slot else Value.Undef

(** Generic property read by symbol ([sym] may be -1: never interned). *)
let get_prop_sym t (o : Value.obj) sym = get_prop_slot t o (Shape.slot_of o.Value.shape sym)

(** Generic property read (the Baseline/runtime path).  Reads the shape word
    too, as the inline-cache probe would. *)
let get_prop t (o : Value.obj) name =
  get_prop_sym t o (Shape.find_sym t.shapes name)

(** Transition fast path: the caller has verified the object's current
    shape; install [new_shape] and store the added property's value (the
    FTL-compiled constructor pattern).  Journals both mutations. *)
let transition_store t (o : Value.obj) new_shape slot v =
  let old_slots = o.Value.slots in
  let need_grow = slot >= Array.length old_slots in
  let new_slots =
    if need_grow then begin
      let grown = Array.make (max 4 (2 * Array.length old_slots)) Value.Undef in
      Array.blit old_slots 0 grown 0 (Array.length old_slots);
      grown
    end
    else old_slots
  in
  let new_slots_addr =
    if need_grow then alloc_region t (Array.length new_slots * word_bytes)
    else o.Value.slots_addr
  in
  if t.hooks.active then begin
    let old_shape = o.Value.shape in
    let old_slots_addr = o.Value.slots_addr in
    t.hooks.store o.Value.oaddr word_bytes (fun () ->
        o.Value.shape <- old_shape;
        o.Value.slots <- old_slots;
        o.Value.slots_addr <- old_slots_addr)
  end;
  o.Value.shape <- new_shape;
  o.Value.slots <- new_slots;
  o.Value.slots_addr <- new_slots_addr;
  store_slot t o slot v

(** Generic property write by (interned) symbol; transitions the shape when
    the property is new. *)
let set_prop_sym t (o : Value.obj) sym v =
  note_load t o.Value.oaddr word_bytes;
  match Shape.slot_of o.Value.shape sym with
  | -1 ->
    let new_shape = Shape.transition_sym t.shapes o.Value.shape sym in
    transition_store t o new_shape (new_shape.Shape.prop_count - 1) v
  | slot -> store_slot t o slot v

(** Generic property write; transitions the shape when [name] is new. *)
let set_prop t (o : Value.obj) name v = set_prop_sym t o (Shape.intern t.shapes name) v

(* ------------------------------------------------------------------ *)
(* Arrays *)

let alloc_array t len : Value.arr =
  let aid = t.next_aid in
  t.next_aid <- t.next_aid + 1;
  let capacity = max len 4 in
  let aaddr = alloc_region t 16 in
  let elems_addr = alloc_region t (capacity * word_bytes) in
  { Value.aid; elems = Array.make capacity Value.Hole; alen = len; aaddr; elems_addr }

let elem_addr (a : Value.arr) i = a.Value.elems_addr + (i * word_bytes)

(** Unchecked element read — the FTL fast path after a bounds check.  If the
    index is actually out of range (possible inside a doomed transaction when
    NoMap deferred the bounds check), return a deterministic garbage value;
    the transaction will abort before the result can matter. *)
let load_elem t (a : Value.arr) i =
  if i >= 0 && i < Array.length a.Value.elems then begin
    note_load t (elem_addr a i) word_bytes;
    a.Value.elems.(i)
  end
  else Value.Int 0

(** Unchecked element write (fast path).  Out-of-range writes inside a doomed
    transaction are dropped: real hardware would buffer and then discard them
    at abort. *)
let store_elem t (a : Value.arr) i v =
  if i >= 0 && i < Array.length a.Value.elems then begin
    if t.hooks.active then begin
      let old = a.Value.elems.(i) in
      t.hooks.store (elem_addr a i) word_bytes (fun () -> a.Value.elems.(i) <- old)
    end;
    a.Value.elems.(i) <- v
  end

let grow_array t (a : Value.arr) needed =
  let old_elems = a.Value.elems in
  let capacity = max needed (max 4 (2 * Array.length old_elems)) in
  let grown = Array.make capacity Value.Hole in
  Array.blit old_elems 0 grown 0 (Array.length old_elems);
  let grown_addr = alloc_region t (capacity * word_bytes) in
  if t.hooks.active then begin
    let old_elems_addr = a.Value.elems_addr in
    t.hooks.store a.Value.aaddr word_bytes (fun () ->
        a.Value.elems <- old_elems;
        a.Value.elems_addr <- old_elems_addr)
  end;
  a.Value.elems <- grown;
  a.Value.elems_addr <- grown_addr

let set_length t (a : Value.arr) len =
  let old_len = a.Value.alen in
  if len <> old_len then begin
    if t.hooks.active then
      t.hooks.store a.Value.aaddr word_bytes (fun () -> a.Value.alen <- old_len);
    a.Value.alen <- len
  end

(** Generic element read (Baseline/runtime path): bounds and hole handling
    per JS — out of range or hole reads yield [undefined], never crash. *)
let get_elem t (a : Value.arr) i =
  note_load t a.Value.aaddr word_bytes;
  if i < 0 || i >= a.Value.alen then Value.Undef
  else
    match load_elem t a i with
    | Value.Hole -> Value.Undef
    | v -> v

(** Generic element write: elongates the array as JS does. *)
let set_elem t (a : Value.arr) i v =
  note_load t a.Value.aaddr word_bytes;
  if i < 0 then ()
  else begin
    if i >= Array.length a.Value.elems then grow_array t a (i + 1);
    if i >= a.Value.alen then set_length t a (i + 1);
    store_elem t a i v
  end

let array_push t (a : Value.arr) v =
  set_elem t a a.Value.alen v;
  Value.int_ a.Value.alen

let array_pop t (a : Value.arr) =
  if a.Value.alen = 0 then Value.Undef
  else begin
    let i = a.Value.alen - 1 in
    let v = get_elem t a i in
    store_elem t a i Value.Hole;
    set_length t a i;
    v
  end

(* ------------------------------------------------------------------ *)

(* Math.random mutates the PRNG: journal the state like any store so a
   transactional rollback replays the same sequence. *)
let math_random t =
  if t.hooks.active then begin
    let saved = Nomap_util.Prng.state t.prng in
    t.hooks.store 8 (* fixed pseudo-address for the PRNG cell *) 8 (fun () ->
        Nomap_util.Prng.set_state t.prng saved)
  end;
  Nomap_util.Prng.float t.prng 1.0
