(** Hidden classes ("shapes"/"structures" in JavaScriptCore terminology).

    Every object points at a shape describing its property layout.  Adding a
    property transitions the object to a child shape; objects built by the
    same code path in the same order share shapes, which is what makes the
    FTL tier's property checks (compare one shape pointer) meaningful.

    Property names are interned per universe into dense integer symbols, and
    each shape carries a slot table indexed by symbol, so [slot_of] is one
    array read instead of an assoc-list walk.  A symbol interned *after* a
    shape was created indexes past that shape's table and correctly reads as
    absent — a shape can only contain properties whose symbols existed when
    it was created.

    A [universe] owns the shape tree and the symbol table so that
    independent program runs do not share state and ids stay deterministic:
    shape ids are assigned in transition-creation order and symbol ids in
    interning order, both functions of the program's execution history
    alone. *)

type sym = int

type t = {
  id : int;
  prop_count : int;
  slot_of_sym : int array;
      (* slot index per symbol, -1 when absent; symbols past the end are
         absent (interned after this shape was created) *)
  syms : sym array;  (* property symbols in slot order *)
  names : string list;  (* property names in slot order, precomputed *)
  transitions : (sym, t) Hashtbl.t;
}

type universe = {
  mutable next_id : int;
  root : t;
  sym_ids : (string, sym) Hashtbl.t;
  mutable sym_names : string array;  (* name per symbol, growable *)
  mutable nsyms : int;
}

let create_universe () =
  let root =
    {
      id = 0;
      prop_count = 0;
      slot_of_sym = [||];
      syms = [||];
      names = [];
      transitions = Hashtbl.create 8;
    }
  in
  { next_id = 1; root; sym_ids = Hashtbl.create 64; sym_names = Array.make 16 ""; nsyms = 0 }

let root u = u.root

let universe_size u = u.next_id

(* ------------------------------------------------------------------ *)
(* Symbols *)

(** Intern [name], assigning the next symbol id on first sight. *)
let intern u name =
  match Hashtbl.find_opt u.sym_ids name with
  | Some s -> s
  | None ->
    let s = u.nsyms in
    if s >= Array.length u.sym_names then begin
      let grown = Array.make (2 * Array.length u.sym_names) "" in
      Array.blit u.sym_names 0 grown 0 s;
      u.sym_names <- grown
    end;
    u.sym_names.(s) <- name;
    u.nsyms <- s + 1;
    Hashtbl.add u.sym_ids name s;
    s

(** The symbol for [name], or -1 if it was never interned (in which case no
    shape anywhere contains it). *)
let find_sym u name =
  match Hashtbl.find_opt u.sym_ids name with Some s -> s | None -> -1

let sym_name u s = u.sym_names.(s)

let sym_count u = u.nsyms

(* ------------------------------------------------------------------ *)
(* Lookup *)

(** Slot index of symbol [s] in [shape], -1 when absent.  O(1), no
    allocation. *)
let slot_of shape (s : sym) =
  if s >= 0 && s < Array.length shape.slot_of_sym then
    Array.unsafe_get shape.slot_of_sym s
  else -1

(** Slot index of property [name], if present. *)
let lookup u shape name =
  match slot_of shape (find_sym u name) with -1 -> None | slot -> Some slot

let has_property u shape name = slot_of shape (find_sym u name) >= 0

(** The shape reached by adding the property [s]; creates (and caches) the
    transition.  The new property gets the next slot index. *)
let transition_sym u shape (s : sym) =
  match Hashtbl.find_opt shape.transitions s with
  | Some child -> child
  | None ->
    let table = Array.make (max (Array.length shape.slot_of_sym) (s + 1)) (-1) in
    Array.blit shape.slot_of_sym 0 table 0 (Array.length shape.slot_of_sym);
    table.(s) <- shape.prop_count;
    let child =
      {
        id = u.next_id;
        prop_count = shape.prop_count + 1;
        slot_of_sym = table;
        syms = Array.append shape.syms [| s |];
        names = shape.names @ [ sym_name u s ];
        transitions = Hashtbl.create 4;
      }
    in
    u.next_id <- u.next_id + 1;
    Hashtbl.add shape.transitions s child;
    child

let transition u shape name = transition_sym u shape (intern u name)

(** Property names in slot order.  Precomputed per shape: no allocation. *)
let property_names shape = shape.names

let pp fmt shape =
  Format.fprintf fmt "shape#%d{%s}" shape.id (String.concat "," shape.names)
