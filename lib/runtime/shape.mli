(** Hidden classes ("shapes"/"structures" in JavaScriptCore terminology).

    Every object points at a shape describing its property layout; adding a
    property transitions to a child shape.  Objects built by the same code
    path share shapes, which is what makes the FTL tier's property checks
    (compare one shape pointer) meaningful.

    Property names are interned per universe into dense integer symbols
    ([sym]); each shape carries a slot table indexed by symbol, making
    lookup one array read.  Symbol ids and shape ids are host-side only —
    no simulated metric depends on them — but both are deterministic
    functions of the program's execution history. *)

(** An interned property name (dense, per-universe). *)
type sym = int

type t = {
  id : int;
  prop_count : int;
  slot_of_sym : int array;
      (** slot index per symbol, -1 when absent; symbols past the end are
          absent *)
  syms : sym array;  (** property symbols in slot order *)
  names : string list;  (** property names in slot order, precomputed *)
  transitions : (sym, t) Hashtbl.t;
}

(** A universe owns a shape tree and its symbol table: independent program
    runs do not share state and ids stay deterministic. *)
type universe

val create_universe : unit -> universe

(** The empty root shape. *)
val root : universe -> t

(** Number of shapes ever created (root included): the next fresh shape id.
    Equal across two runs of the same program — the shape-universe
    determinism invariant. *)
val universe_size : universe -> int

(** Intern a property name, assigning the next symbol id on first sight. *)
val intern : universe -> string -> sym

(** The symbol for a name, or -1 if never interned (no shape contains it). *)
val find_sym : universe -> string -> sym

val sym_name : universe -> sym -> string

(** Number of symbols interned so far. *)
val sym_count : universe -> int

(** Slot index of a symbol, -1 when absent.  O(1), no allocation. *)
val slot_of : t -> sym -> int

(** Slot index of a property, if present. *)
val lookup : universe -> t -> string -> int option

(** No allocation. *)
val has_property : universe -> t -> string -> bool

(** The shape reached by adding a property; creates (and caches) the
    transition.  The new property gets the next slot index. *)
val transition : universe -> t -> string -> t

val transition_sym : universe -> t -> sym -> t

(** Property names in slot order.  Precomputed per shape: no allocation. *)
val property_names : t -> string list

val pp : Format.formatter -> t -> unit
