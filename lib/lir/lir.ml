(** LIR — the SSA intermediate representation of the optimizing tiers (our
    stand-in for DFG IR / LLVM IR in JavaScriptCore's DFG and FTL).

    Key paper-relevant design points:

    - Speculative checks are value-producing instructions ([Check_int v]
      returns [v] refined to int32).  A failing check transfers control out
      of optimized code via its [exit]: either [Deopt] — OSR-exit to the
      Baseline tier at [smp.resume_pc] with the live map materialized — or
      [Abort] — roll back the enclosing hardware transaction and restart the
      region in Baseline (the NoMap conversion).

    - A [Deopt] check is a *stack map point*: the optimizer must treat it as
      a full memory barrier and keep its live map alive, which is exactly
      the optimization-blocking effect the paper measures.  An [Abort] check
      constrains almost nothing: it may be moved, combined or sunk within
      its transaction because a rollback discards all speculative state.

    - Integer arithmetic ([Iadd]...) may overflow int32; the executing
      machine tags the produced value, and [Check_overflow] tests the tag.
      Under the Sticky Overflow Flag (paper §IV-C2) the checks are deleted
      and [Tx_end] tests the accumulated flag instead. *)

module Value = Nomap_runtime.Value

type v = int  (** SSA value = id of the producing instruction *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type exit_kind =
  | Deopt  (** OSR-exit to Baseline: a stack map point *)
  | Abort  (** transactional abort: no stack map needed *)

type smp = {
  smp_id : int;
  resume_pc : int;  (** bytecode index where Baseline resumes *)
  mutable live : (int * v) list;  (** baseline register -> SSA value *)
}

type exit = { ekind : exit_kind; smp : smp }

type check_kind = Bounds | Overflow | Type | Property | Hole | Path

(** Generic runtime helpers (slow paths); executed as C-runtime/lower-tier
    code, i.e. category NoFTL in the paper's accounting. *)
type rt_call =
  | Rt_binop of Nomap_jsir.Ast.binop
  | Rt_unop of Nomap_jsir.Ast.unop
  | Rt_get_prop of string
  | Rt_set_prop of string
  | Rt_get_elem
  | Rt_set_elem
  | Rt_get_length
  | Rt_method of string  (** dynamic method dispatch *)
  | Rt_intrinsic of Nomap_runtime.Intrinsics.t

type kind =
  | Nop  (** deleted instruction *)
  | Param of int  (** bytecode register (0 = this) seeded at function entry *)
  | Const of Value.t
  | Phi of (int * v) list  (** (predecessor block, value) pairs *)
  (* Speculated int32 arithmetic; result is tagged on overflow. *)
  | Iadd of v * v
  | Isub of v * v
  | Imul of v * v
  | Ineg of v
  (* Wrapping (flag-free) int32 add/sub: used when every consumer truncates
     to int32 anyway, so overflow checks were elided at compile time (the
     JSC (a+b)|0 pattern).  These never set the overflow tag or the SOF. *)
  | Iadd_wrap of v * v
  | Isub_wrap of v * v
  (* Double arithmetic; results are canonicalized numbers. *)
  | Fadd of v * v
  | Fsub of v * v
  | Fmul of v * v
  | Fdiv of v * v
  | Fmod of v * v
  | Fneg of v
  (* Bitwise ops on int32. *)
  | Band of v * v
  | Bor of v * v
  | Bxor of v * v
  | Bnot of v
  | Shl of v * v
  | Shr of v * v
  | Ushr of v * v
  | Cmp of cmp * v * v  (** numeric comparison, Bool result *)
  | Not of v  (** boolean negation of truthiness *)
  (* Memory fast paths (legal only after the guarding checks). *)
  | Load_slot of v * int
  | Store_slot of v * int * v
  | Store_transition of v * string * int * v
      (** object, property added, slot written, value: the add-property fast
          path after a shape check (JSC's transition inline cache) *)
  | Load_elem of v * v
  | Store_elem of v * v * v
  | Load_length of v
  | Str_length of v
  | Load_char_code of v * v
  | Load_global of int
  | Store_global of int * v
  (* Checks: value-producing speculation guards. *)
  | Check_int of v * exit
  | Check_number of v * exit  (** int or double *)
  | Check_string of v * exit
  | Check_array of v * exit
  | Check_shape of v * int * exit  (** object with exactly this shape *)
  | Check_fun_eq of v * int * exit  (** value is function [fid] *)
  | Check_bounds of v * v * exit  (** array, int index; returns index *)
  | Check_str_bounds of v * v * exit
  | Check_not_hole of v * v * exit
  | Check_overflow of v * exit  (** the int-op result that may have overflowed *)
  | Check_cond of v * bool * exit  (** speculated branch direction *)
  (* Calls. *)
  | Call_func of int * v list  (** known global function *)
  | Call_method of int * v * v list  (** devirtualized: fid, this, args *)
  | Ctor_call of int * v list  (** new F(args): allocates this, calls, returns it *)
  | Call_runtime of rt_call * v * v list  (** receiver (or v_undef) + args *)
  | Intrinsic of Nomap_runtime.Intrinsics.t * v list  (** pure math fast path *)
  | Alloc_object
  | Alloc_array of v
  (* Transactions (NoMap). *)
  | Tx_begin of smp
  | Tx_end

type terminator =
  | Jump of int
  | Br of v * int * int  (** if truthy v then b1 else b2 *)
  | Ret of v option
  | Unreachable

type instr = {
  id : int;
  mutable kind : kind;
  mutable block : int;
  mutable elided : bool;
      (** executes for free: keeps its (guard) semantics but contributes no
          machine instructions or cycles.  Set by the NoMap_BC limit study,
          which models checks whose *cost* hardware removed — deleting the
          guard outright would change observable behavior whenever the
          check would actually have failed. *)
}

type block = {
  bid : int;
  mutable instrs : v list;  (** in execution order; phis first *)
  mutable term : terminator;
  mutable preds : int list;
}

type func = {
  fid : int;  (** bytecode function id this code was compiled from *)
  instrs : instr Nomap_util.Vec.t;
  blocks : block Nomap_util.Vec.t;
  mutable entry : int;
  mutable next_smp : int;
  mutable tx_aware : bool;  (** compiled with NoMap transaction knowledge *)
}

let create_func ~fid =
  {
    fid;
    instrs = Nomap_util.Vec.create ~dummy:{ id = -1; kind = Nop; block = -1; elided = false };
    blocks = Nomap_util.Vec.create ~dummy:{ bid = -1; instrs = []; term = Unreachable; preds = [] };
    entry = 0;
    next_smp = 0;
    tx_aware = false;
  }

let instr f v = Nomap_util.Vec.get f.instrs v
let block f b = Nomap_util.Vec.get f.blocks b
let kind_of f v = (instr f v).kind

let new_block f =
  let bid = Nomap_util.Vec.length f.blocks in
  let b = { bid; instrs = []; term = Unreachable; preds = [] } in
  ignore (Nomap_util.Vec.push f.blocks b);
  b

let new_instr f kind =
  let id = Nomap_util.Vec.length f.instrs in
  let i = { id; kind; block = -1; elided = false } in
  ignore (Nomap_util.Vec.push f.instrs i);
  i

let fresh_smp f ~resume_pc ~live =
  let s = { smp_id = f.next_smp; resume_pc; live } in
  f.next_smp <- f.next_smp + 1;
  s

(* ------------------------------------------------------------------ *)
(* Structural queries *)

let successors = function
  | Jump b -> [ b ]
  | Br (_, b1, b2) -> [ b1; b2 ]
  | Ret _ | Unreachable -> []

(** SSA values read by an instruction, excluding SMP live maps. *)
let uses = function
  | Nop | Param _ | Const _ | Load_global _ | Alloc_object | Tx_begin _ | Tx_end -> []
  | Phi ins -> List.map snd ins
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) | Iadd_wrap (a, b) | Isub_wrap (a, b)
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) | Fmod (a, b)
  | Band (a, b) | Bor (a, b) | Bxor (a, b)
  | Shl (a, b) | Shr (a, b) | Ushr (a, b)
  | Cmp (_, a, b)
  | Load_elem (a, b)
  | Load_char_code (a, b) -> [ a; b ]
  | Ineg a | Fneg a | Bnot a | Not a | Load_slot (a, _) | Load_length a | Str_length a
  | Store_global (_, a) | Alloc_array a -> [ a ]
  | Store_slot (o, _, x) | Store_transition (o, _, _, x) -> [ o; x ]
  | Store_elem (a, i, x) -> [ a; i; x ]
  | Check_int (a, _) | Check_number (a, _) | Check_string (a, _) | Check_array (a, _)
  | Check_shape (a, _, _) | Check_fun_eq (a, _, _) | Check_overflow (a, _)
  | Check_cond (a, _, _) -> [ a ]
  | Check_bounds (a, i, _) | Check_str_bounds (a, i, _) | Check_not_hole (a, i, _) -> [ a; i ]
  | Call_func (_, args) | Ctor_call (_, args) -> args
  | Call_method (_, this, args) -> this :: args
  | Call_runtime (_, recv, args) -> recv :: args
  | Intrinsic (_, args) -> args

(** SSA values an SMP must keep alive (for Deopt exits only: Abort rolls
    back to the transaction entry, so per-check live maps are not needed —
    the register-pressure relief the paper describes in §III-A3). *)
let smp_uses = function
  | Check_int (_, e) | Check_number (_, e) | Check_string (_, e) | Check_array (_, e)
  | Check_shape (_, _, e) | Check_fun_eq (_, _, e) | Check_bounds (_, _, e)
  | Check_str_bounds (_, _, e) | Check_not_hole (_, _, e) | Check_overflow (_, e)
  | Check_cond (_, _, e) ->
    if e.ekind = Deopt then List.map snd e.smp.live else []
  | Tx_begin smp -> List.map snd smp.live
  | _ -> []

let exit_of = function
  | Check_int (_, e) | Check_number (_, e) | Check_string (_, e) | Check_array (_, e)
  | Check_shape (_, _, e) | Check_fun_eq (_, _, e) | Check_bounds (_, _, e)
  | Check_str_bounds (_, _, e) | Check_not_hole (_, _, e) | Check_overflow (_, e)
  | Check_cond (_, _, e) -> Some e
  | _ -> None

let is_check k = exit_of k <> None

(** Paper Figure 3 categories. *)
let check_kind_of = function
  | Check_bounds _ | Check_str_bounds _ -> Some Bounds
  | Check_overflow _ -> Some Overflow
  | Check_int _ | Check_number _ | Check_string _ | Check_array _ -> Some Type
  | Check_shape _ -> Some Property
  | Check_not_hole _ -> Some Hole
  | Check_fun_eq _ | Check_cond _ -> Some Path
  | _ -> None

let check_kind_name = function
  | Bounds -> "Bounds"
  | Overflow -> "Overflow"
  | Type -> "Type"
  | Property -> "Property"
  | Hole -> "Hole"
  | Path -> "Path"

(** The checked value a check refines (its result aliases this value). *)
let checked_value = function
  | Check_int (a, _) | Check_number (a, _) | Check_string (a, _) | Check_array (a, _)
  | Check_shape (a, _, _) | Check_fun_eq (a, _, _) | Check_overflow (a, _)
  | Check_cond (a, _, _) -> Some a
  | Check_bounds (_, i, _) | Check_str_bounds (_, i, _) | Check_not_hole (_, i, _) -> Some i
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Effects, for the optimizer *)

type memory_effect =
  | Eff_none  (** pure computation *)
  | Eff_load of alias_class
  | Eff_store of alias_class
  | Eff_alloc  (** creates fresh memory; clobbers nothing existing *)
  | Eff_clobber  (** may read and write anything (calls, generic runtime) *)

and alias_class =
  | A_slot of int  (** property slot at this offset (any object) *)
  | A_shape  (** an object's shape word (changes only via transitions) *)
  | A_elem  (** any array element *)
  | A_array_header  (** array length *)
  | A_string  (** immutable string data *)
  | A_global of int

let memory_effect = function
  | Nop | Param _ | Const _ | Phi _ -> Eff_none
  | Iadd _ | Isub _ | Imul _ | Ineg _ | Iadd_wrap _ | Isub_wrap _
  | Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fmod _ | Fneg _
  | Band _ | Bor _ | Bxor _ | Bnot _ | Shl _ | Shr _ | Ushr _ | Cmp _ | Not _ -> Eff_none
  | Load_slot (_, slot) -> Eff_load (A_slot slot)
  | Store_slot (_, slot, _) -> Eff_store (A_slot slot)
  | Store_transition _ -> Eff_clobber  (* writes the shape word and a slot *)
  | Load_elem _ -> Eff_load A_elem
  | Store_elem _ -> Eff_store A_elem
  | Load_length _ -> Eff_load A_array_header
  | Str_length _ | Load_char_code _ -> Eff_load A_string
  | Load_global g -> Eff_load (A_global g)
  | Store_global (g, _) -> Eff_store (A_global g)
  | Check_int _ | Check_number _ | Check_string _ | Check_array _
  | Check_fun_eq _ | Check_overflow _ | Check_cond _ -> Eff_none
  | Check_shape _ -> Eff_load A_shape
  | Check_bounds _ -> Eff_load A_array_header
  | Check_str_bounds _ -> Eff_load A_string
  | Check_not_hole _ -> Eff_load A_elem
  | Call_func _ | Call_method _ | Ctor_call _ -> Eff_clobber
  | Call_runtime (rt, _, _) -> (
    match rt with
    | Rt_binop Nomap_jsir.Ast.Add -> Eff_alloc  (* string concat *)
    | Rt_binop _ | Rt_unop _ -> Eff_none
    | Rt_get_prop _ -> Eff_load (A_slot (-1))  (* unknown slot: any slot *)
    | Rt_get_elem -> Eff_load A_elem
    | Rt_get_length -> Eff_load A_array_header
    | Rt_set_prop _ | Rt_set_elem | Rt_method _ -> Eff_clobber
    | Rt_intrinsic i -> (
      match i with
      | Math_floor | Math_ceil | Math_round | Math_sqrt | Math_abs | Math_sin | Math_cos
      | Math_tan | Math_asin | Math_acos | Math_atan | Math_atan2 | Math_pow | Math_log
      | Math_exp | Math_min | Math_max | Global_is_nan -> Eff_none
      | Math_random -> Eff_clobber  (* advances PRNG state *)
      | Str_char_code_at | Str_char_at | Str_index_of -> Eff_load A_string
      | Str_substring | Str_to_lower | Str_to_upper | Str_split | Str_from_char_code
      | Global_parse_int | Global_parse_float -> Eff_alloc
      | Arr_push | Arr_pop -> Eff_clobber
      | Arr_join -> Eff_alloc
      | Global_print -> Eff_clobber
      (* Shared-segment memory is visible to other agents: nothing may be
         reordered, hoisted, or CSE'd across these. *)
      | Shared_read | Shared_write | Shared_size | Atomics_load | Atomics_store
      | Atomics_add | Atomics_sub | Atomics_exchange | Atomics_compare_exchange
      | Atomics_fence -> Eff_clobber))
  | Intrinsic (i, _) -> (
    match i with
    | Math_random -> Eff_clobber
    | i when Nomap_runtime.Intrinsics.is_shared i -> Eff_clobber
    | _ -> Eff_none)
  | Alloc_object | Alloc_array _ -> Eff_alloc
  | Tx_begin _ | Tx_end -> Eff_clobber  (* fences *)

(** May [store] change the result of [load]? (both alias classes) *)
let may_alias store load =
  match (store, load) with
  | A_slot a, A_slot b -> a = b || a = -1 || b = -1
  | A_shape, A_shape -> true
  | A_elem, A_elem -> true
  | A_array_header, A_array_header -> true
  | A_string, A_string -> false  (* strings are immutable *)
  | A_global a, A_global b -> a = b
  | _ -> false

(** Is this instruction removable if its result is unused?  Checks are not
    (they guard), stores/calls are not, allocations are. *)
let removable_if_unused k =
  match memory_effect k with
  | Eff_none | Eff_load _ | Eff_alloc -> not (is_check k)
  | Eff_store _ | Eff_clobber -> false

(** A deopt-exit check is a Stack Map Point and acts as a full memory
    barrier for code motion (paper §III-A3).  Abort-exit checks do not. *)
let is_smp_barrier k =
  match exit_of k with
  | Some { ekind = Deopt; _ } -> true
  | Some { ekind = Abort; _ } -> false
  | None -> ( match k with Tx_begin _ | Tx_end -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Iteration helpers *)

let iter_blocks f fn = Nomap_util.Vec.iter fn f.blocks

let iter_instrs f fn =
  iter_blocks f (fun b -> List.iter (fun v -> fn b (instr f v)) b.instrs)

let all_instrs_count f =
  let n = ref 0 in
  iter_instrs f (fun _ i -> if i.kind <> Nop then incr n);
  !n

(** Rewrite every use across the function (including SMP live maps) through
    [subst].  One pass over the whole function: passes with many rewrites
    must batch them through this rather than calling it per value. *)
let apply_substitution f subst =
  let subst_smp smp = smp.live <- List.map (fun (r, v) -> (r, subst v)) smp.live in
  let subst_exit e = subst_smp e.smp in
  Nomap_util.Vec.iter
    (fun i ->
      let k =
        match i.kind with
        | Nop -> Nop
        | Param p -> Param p
        | Const c -> Const c
        | Phi ins -> Phi (List.map (fun (b, v) -> (b, subst v)) ins)
        | Iadd (a, b) -> Iadd (subst a, subst b)
        | Isub (a, b) -> Isub (subst a, subst b)
        | Iadd_wrap (a, b) -> Iadd_wrap (subst a, subst b)
        | Isub_wrap (a, b) -> Isub_wrap (subst a, subst b)
        | Imul (a, b) -> Imul (subst a, subst b)
        | Ineg a -> Ineg (subst a)
        | Fadd (a, b) -> Fadd (subst a, subst b)
        | Fsub (a, b) -> Fsub (subst a, subst b)
        | Fmul (a, b) -> Fmul (subst a, subst b)
        | Fdiv (a, b) -> Fdiv (subst a, subst b)
        | Fmod (a, b) -> Fmod (subst a, subst b)
        | Fneg a -> Fneg (subst a)
        | Band (a, b) -> Band (subst a, subst b)
        | Bor (a, b) -> Bor (subst a, subst b)
        | Bxor (a, b) -> Bxor (subst a, subst b)
        | Bnot a -> Bnot (subst a)
        | Shl (a, b) -> Shl (subst a, subst b)
        | Shr (a, b) -> Shr (subst a, subst b)
        | Ushr (a, b) -> Ushr (subst a, subst b)
        | Cmp (c, a, b) -> Cmp (c, subst a, subst b)
        | Not a -> Not (subst a)
        | Load_slot (o, s) -> Load_slot (subst o, s)
        | Store_slot (o, s, x) -> Store_slot (subst o, s, subst x)
        | Store_transition (o, name, s, x) -> Store_transition (subst o, name, s, subst x)
        | Load_elem (a, i') -> Load_elem (subst a, subst i')
        | Store_elem (a, i', x) -> Store_elem (subst a, subst i', subst x)
        | Load_length a -> Load_length (subst a)
        | Str_length a -> Str_length (subst a)
        | Load_char_code (a, i') -> Load_char_code (subst a, subst i')
        | Load_global g -> Load_global g
        | Store_global (g, x) -> Store_global (g, subst x)
        | Check_int (a, e) ->
          subst_exit e;
          Check_int (subst a, e)
        | Check_number (a, e) ->
          subst_exit e;
          Check_number (subst a, e)
        | Check_string (a, e) ->
          subst_exit e;
          Check_string (subst a, e)
        | Check_array (a, e) ->
          subst_exit e;
          Check_array (subst a, e)
        | Check_shape (a, s, e) ->
          subst_exit e;
          Check_shape (subst a, s, e)
        | Check_fun_eq (a, fid, e) ->
          subst_exit e;
          Check_fun_eq (subst a, fid, e)
        | Check_bounds (a, i', e) ->
          subst_exit e;
          Check_bounds (subst a, subst i', e)
        | Check_str_bounds (a, i', e) ->
          subst_exit e;
          Check_str_bounds (subst a, subst i', e)
        | Check_not_hole (a, i', e) ->
          subst_exit e;
          Check_not_hole (subst a, subst i', e)
        | Check_overflow (a, e) ->
          subst_exit e;
          Check_overflow (subst a, e)
        | Check_cond (a, d, e) ->
          subst_exit e;
          Check_cond (subst a, d, e)
        | Call_func (fid, args) -> Call_func (fid, List.map subst args)
        | Ctor_call (fid, args) -> Ctor_call (fid, List.map subst args)
        | Call_method (fid, this, args) -> Call_method (fid, subst this, List.map subst args)
        | Call_runtime (rt, recv, args) -> Call_runtime (rt, subst recv, List.map subst args)
        | Intrinsic (i', args) -> Intrinsic (i', List.map subst args)
        | Alloc_object -> Alloc_object
        | Alloc_array n -> Alloc_array (subst n)
        | Tx_begin smp ->
          subst_smp smp;
          Tx_begin smp
        | Tx_end -> Tx_end
      in
      i.kind <- k)
    f.instrs;
  iter_blocks f (fun b ->
      b.term <-
        (match b.term with
        | Br (c, t, e) -> Br (subst c, t, e)
        | Ret (Some r) -> Ret (Some (subst r))
        | t -> t))

(** Rewrite every use of [old_v] to [new_v].  For a single value only —
    batch multiple rewrites through [apply_substitution]. *)
let replace_uses f ~old_v ~new_v =
  apply_substitution f (fun v -> if v = old_v then new_v else v)
