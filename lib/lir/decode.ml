(** Pre-decoded executable form of an LIR function.

    The abstract machine used to re-traverse each block's [instrs] list on
    every execution: [Vec.get] per instruction (bounds-checked), a
    [List.assoc_opt] per phi input per edge, and a [List.iter] closure per
    block.  Decoding flattens a compiled function once into dense arrays so
    the hot loop is array indexing only:

    - each block's non-phi body as a [dinstr array], with the per-instruction
      machine cost and call-argument value ids pre-resolved;
    - the block-leading phi group as one [phi_edge] per incoming edge — the
      (destination, source) pairs that edge copies, in parallel-assignment
      order;
    - the terminator by value.

    Semantics are bit-identical to direct interpretation: phis and [Nop]s
    never burned fuel, ticked transactions, or charged cycles, so dropping
    them from the decoded body changes no simulated metric.  Phis appearing
    after the first real instruction of a block were already dead (the
    machine never executed them) and decode drops them the same way.

    Decoding snapshots [kind]s by reference: callers must not mutate the LIR
    (optimizer passes, NoMap transforms) after the function has been
    decoded.  The tier pipeline satisfies this — every recompilation builds
    a fresh [Lir.func]. *)

module Value = Nomap_runtime.Value
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics

(** Per-site host inline cache, attached to the decoded instruction of a
    named property access, transition, or dynamic method call.

    This is pure host-side memoization: a hit skips re-hashing the property
    name and re-walking the shape's slot table, but the executing machine
    still fires the identical [note_load]/[note_store] hooks and charges the
    identical cost, so no modeled counter can move (DESIGN.md §14).  The
    cache keys on the simulated shape id, which is deterministic; caches die
    with the decoded artifact when the tier pipeline recompiles, exactly
    like [Specialize.compiled] versions.

    [ic_str_meth]/[ic_arr_meth] are resolved at decode time — method tables
    for string/array receivers are pure in the method name — so a dynamic
    method call on a non-object receiver needs no lookup at all. *)
type ic = {
  mutable ic_sym : int;  (** interned symbol of the site's name; -1 = not yet *)
  mutable ic_shape : int;  (** shape id the entry is valid for; -1 = empty *)
  mutable ic_slot : int;  (** slot index for [ic_shape] *)
  mutable ic_target : Shape.t option;
      (** transition target for [ic_shape] (set-miss / Store_transition) *)
  ic_str_meth : Intrinsics.t option;  (** decode-time method for Str receivers *)
  ic_arr_meth : Intrinsics.t option;  (** decode-time method for Arr receivers *)
}

type phi_edge = {
  pred : int;  (** incoming block id this edge handles *)
  dsts : int array;  (** phi value ids assigned when entering via [pred] *)
  srcs : int array;  (** source value ids, parallel to [dsts] *)
}

type dinstr = {
  id : int;  (** SSA value the instruction defines *)
  kind : Lir.kind;
  cost : int;  (** pre-computed machine-instruction cost of [kind] *)
  is_tx_marker : bool;  (** [Tx_begin]/[Tx_end]: free under ghost HTM mode *)
  elided : bool;
      (** executes for free: full semantics, no machine instructions,
          cycles, transaction ticks or check-category counts.  Set for
          instructions the NoMap_BC limit study marked [Lir.elided], plus
          pure feeders that outright deletion followed by DCE would have
          erased (computed in [free_map]). *)
  pure : bool;
      (** fusion candidate: [pure_kind kind].  The instruction can neither
          raise nor observe/alter transaction state, so an engine may batch
          its accounting with its straight-line neighbours'. *)
  args : int array;  (** pre-resolved call/intrinsic argument value ids *)
  ic : ic option;  (** host inline cache for property/method sites *)
}

type dblock = {
  phi_edges : phi_edge array;
  body : dinstr array;  (** non-phi, non-Nop instructions in order *)
  dterm : Lir.terminator;
}

type t = {
  nvalues : int;  (** size of the SSA value space (register file to allocate) *)
  entry : int;
  dblocks : dblock array;
  scratch : Value.t array;
      (** phi-copy staging buffer, sized to the largest phi group.  Safe to
          share across (re-entrant) activations: the read and write phases
          of a parallel copy complete without any intervening call. *)
}

(** Which values execute for free.  The BC limit study used to *delete*
    its checks (rewiring uses to the checked operand) and let DCE sweep up
    feeders that only existed for a check; eliding instead keeps the guards
    executable, so to preserve the study's instruction accounting this
    computes exactly the set deletion-plus-DCE would have erased: the
    elided checks themselves, plus every pure instruction that is dead once
    uses are resolved through elided checks (an elided check contributes no
    uses; its consumers are treated as reading the checked operand, as the
    deletion's rewiring did). *)
let free_map (f : Lir.func) =
  let n = Nomap_util.Vec.length f.Lir.instrs in
  let elided = Array.make n false in
  let seeded = ref false in
  Lir.iter_instrs f (fun _ i ->
      if i.Lir.elided then begin
        elided.(i.Lir.id) <- true;
        seeded := true
      end);
  if not !seeded then elided
  else begin
    (* What deletion would have rewired a use of [v] to.  A check's operand
       is defined before it, so the chain terminates. *)
    let rec resolve v =
      if not elided.(v) then v
      else
        match Lir.checked_value (Lir.instr f v).Lir.kind with
        | Some c -> resolve c
        | None -> v
    in
    let live = Array.make n false in
    let work = ref [] in
    let mark v =
      let v = resolve v in
      if not live.(v) then begin
        live.(v) <- true;
        work := v :: !work
      end
    in
    (* Roots, as in DCE: effectful instructions (minus the elided checks,
       which deletion would have removed) and terminator operands. *)
    Lir.iter_instrs f (fun _ i ->
        if
          (not elided.(i.Lir.id))
          && i.Lir.kind <> Lir.Nop
          && not (Lir.removable_if_unused i.Lir.kind)
        then begin
          live.(i.Lir.id) <- true;
          List.iter mark (Lir.uses i.Lir.kind);
          List.iter mark (Lir.smp_uses i.Lir.kind)
        end);
    Lir.iter_blocks f (fun b ->
        match b.Lir.term with
        | Lir.Br (c, _, _) -> mark c
        | Lir.Ret (Some r) -> mark r
        | Lir.Jump _ | Lir.Ret None | Lir.Unreachable -> ());
    let rec drain () =
      match !work with
      | [] -> ()
      | v :: rest ->
        work := rest;
        let k = (Lir.instr f v).Lir.kind in
        List.iter mark (Lir.uses k);
        List.iter mark (Lir.smp_uses k);
        drain ()
    in
    drain ();
    Array.init n (fun v -> elided.(v) || not live.(v))
  end

(** Fusion-candidate classifier.  A kind is [pure] when executing it can
    neither raise (no checks, no calls, no allocation failure paths) nor
    touch heap hooks (which abort transactions on capacity overflow) nor
    change the transaction/ghost category (no tx markers).  Within a run
    of pure instructions the machine's per-instruction accounting —
    category, in-transaction flag, watchdog headroom — is invariant, so an
    engine may execute the run as one superinstruction provided it
    replicates the per-instruction cycle-accumulation order bit-exactly.

    Note [Load_global]/[Store_global] qualify: the global table is not
    routed through heap hooks (globals live outside the transactional
    footprint model).  [Str_length] reads a cached length, no hook;
    [Load_char_code] does fire a load hook and stays out. *)
let pure_kind = function
  | Lir.Nop | Lir.Phi _ | Lir.Param _ | Lir.Const _ | Lir.Iadd _ | Lir.Isub _ | Lir.Imul _
  | Lir.Ineg _ | Lir.Iadd_wrap _ | Lir.Isub_wrap _ | Lir.Fadd _ | Lir.Fsub _
  | Lir.Fmul _ | Lir.Fdiv _ | Lir.Fmod _ | Lir.Fneg _ | Lir.Band _
  | Lir.Bor _ | Lir.Bxor _ | Lir.Bnot _ | Lir.Shl _ | Lir.Shr _ | Lir.Ushr _
  | Lir.Cmp _ | Lir.Not _ | Lir.Str_length _ | Lir.Load_global _
  | Lir.Store_global _ ->
    true
  | _ -> false

let no_args = [||]

let fresh_ic ?(str_meth = None) ?(arr_meth = None) () =
  Some
    {
      ic_sym = -1;
      ic_shape = -1;
      ic_slot = -1;
      ic_target = None;
      ic_str_meth = str_meth;
      ic_arr_meth = arr_meth;
    }

(** Sites that get a host inline cache. *)
let ic_of = function
  | Lir.Call_runtime ((Lir.Rt_get_prop _ | Lir.Rt_set_prop _ | Lir.Rt_get_length), _, _)
  | Lir.Store_transition _ ->
    fresh_ic ()
  | Lir.Call_runtime (Lir.Rt_method name, _, _) ->
    fresh_ic
      ~str_meth:(Intrinsics.str_method_lookup name)
      ~arr_meth:(Intrinsics.arr_method_lookup name)
      ()
  | _ -> None

let args_of = function
  | Lir.Call_func (_, args) | Lir.Ctor_call (_, args) | Lir.Intrinsic (_, args)
  | Lir.Call_method (_, _, args)
  | Lir.Call_runtime (_, _, args) ->
    Array.of_list args
  | _ -> no_args

(** [decode ~cost f] flattens [f]; [cost] is the executing machine's
    per-instruction cost model (kept out of this module so the IR layer
    stays cost-agnostic). *)
let decode ~(cost : Lir.kind -> int) (f : Lir.func) : t =
  let free = free_map f in
  let nblocks = Nomap_util.Vec.length f.Lir.blocks in
  let max_phis = ref 0 in
  let dblocks =
    Array.init nblocks (fun bid ->
        let b = Lir.block f bid in
        (* Split the leading run of phis (Nops interleaved are skipped) from
           the body; later phis/Nops are dead and dropped. *)
        let rec split phis = function
          | v :: rest -> (
            match (Lir.instr f v).Lir.kind with
            | Lir.Phi ins -> split ((v, ins) :: phis) rest
            | Lir.Nop -> split phis rest
            | _ -> (List.rev phis, v :: rest))
          | [] -> (List.rev phis, [])
        in
        let phis, body_ids = split [] b.Lir.instrs in
        max_phis := max !max_phis (List.length phis);
        (* One edge per predecessor appearing in any phi's input list. *)
        let preds =
          List.sort_uniq compare
            (List.concat_map (fun (_, ins) -> List.map fst ins) phis)
        in
        let phi_edges =
          Array.of_list
            (List.map
               (fun pred ->
                 let copies =
                   List.filter_map
                     (fun (v, ins) ->
                       match List.assoc_opt pred ins with
                       | Some src -> Some (v, src)
                       | None -> None)
                     phis
                 in
                 {
                   pred;
                   dsts = Array.of_list (List.map fst copies);
                   srcs = Array.of_list (List.map snd copies);
                 })
               preds)
        in
        let body =
          body_ids
          |> List.filter_map (fun v ->
                 let k = (Lir.instr f v).Lir.kind in
                 match k with
                 | Lir.Nop | Lir.Phi _ -> None
                 | _ ->
                   Some
                     {
                       id = v;
                       kind = k;
                       cost = (if free.(v) then 0 else cost k);
                       is_tx_marker =
                         (match k with Lir.Tx_begin _ | Lir.Tx_end -> true | _ -> false);
                       elided = free.(v);
                       pure = pure_kind k;
                       args = args_of k;
                       ic = ic_of k;
                     })
          |> Array.of_list
        in
        { phi_edges; body; dterm = b.Lir.term })
  in
  {
    nvalues = Nomap_util.Vec.length f.Lir.instrs;
    entry = f.Lir.entry;
    dblocks;
    scratch = Array.make (max 1 !max_phis) Value.Undef;
  }
