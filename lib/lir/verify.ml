(** SSA well-formedness checker.  Run by tests after construction and after
    every optimization pass: catching a malformed graph here is vastly
    cheaper than debugging a miscompiled benchmark. *)

exception Ill_formed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let verify (f : Lir.func) =
  let nb = Nomap_util.Vec.length f.Lir.blocks in
  let check_block_id b ctx =
    if b < 0 || b >= nb then fail "%s: bad block id b%d" ctx b
  in
  check_block_id f.Lir.entry "entry";
  Cfg.compute_preds f;
  let doms = Cfg.compute_doms f in
  let reach = Cfg.reachable f in
  (* Map: value -> defining block, and position within block. *)
  let def_block = Hashtbl.create 64 in
  let def_pos = Hashtbl.create 64 in
  Lir.iter_blocks f (fun b ->
      List.iteri
        (fun pos v ->
          let i = Lir.instr f v in
          if i.Lir.kind <> Lir.Nop then begin
            if Hashtbl.mem def_block v then fail "v%d defined twice" v;
            if i.Lir.block <> b.Lir.bid then
              fail "v%d: block field %d but listed in b%d" v i.Lir.block b.Lir.bid;
            Hashtbl.replace def_block v b.Lir.bid;
            Hashtbl.replace def_pos v pos
          end)
        b.Lir.instrs);
  let defined v = Hashtbl.mem def_block v in
  (* Phis must be at the head of their block; their inputs must exactly
     cover the predecessors. *)
  Lir.iter_blocks f (fun b ->
      if reach.(b.Lir.bid) then begin
        let seen_non_phi = ref false in
        List.iter
          (fun v ->
            let i = Lir.instr f v in
            match i.Lir.kind with
            | Lir.Phi ins ->
              if !seen_non_phi then fail "v%d: phi after non-phi in b%d" v b.Lir.bid;
              let in_blocks = List.sort compare (List.map fst ins) in
              let preds = List.sort compare b.Lir.preds in
              if in_blocks <> preds then
                fail "v%d: phi inputs [%s] do not match preds [%s] of b%d" v
                  (String.concat "," (List.map string_of_int in_blocks))
                  (String.concat "," (List.map string_of_int preds))
                  b.Lir.bid
            | Lir.Nop -> ()
            | _ -> seen_non_phi := true)
          b.Lir.instrs
      end);
  (* Uses must be defined and dominated by their definitions. *)
  let dominates_use ~def_v ~use_block ~use_pos =
    let db = Hashtbl.find def_block def_v in
    if db = use_block then Hashtbl.find def_pos def_v < use_pos
    else Cfg.dominates doms db use_block
  in
  Lir.iter_blocks f (fun b ->
      if reach.(b.Lir.bid) then begin
        List.iteri
          (fun pos v ->
            let i = Lir.instr f v in
            match i.Lir.kind with
            | Lir.Nop -> ()
            | Lir.Phi ins ->
              List.iter
                (fun (pred, x) ->
                  if not (defined x) then fail "v%d: phi input v%d undefined" v x;
                  (* Phi input must dominate the end of the predecessor. *)
                  let db = Hashtbl.find def_block x in
                  if not (db = pred || Cfg.dominates doms db pred) then
                    fail "v%d: phi input v%d (b%d) does not dominate pred b%d" v x db pred)
                ins
            | k ->
              List.iter
                (fun u ->
                  if not (defined u) then fail "v%d uses undefined v%d" v u;
                  if not (dominates_use ~def_v:u ~use_block:b.Lir.bid ~use_pos:pos) then
                    fail "v%d: use of v%d not dominated by its definition" v u)
                (Lir.uses k);
              (* SMP live maps are real uses: the deopt path materializes
                 them, so each must be dominated by its definition too. *)
              List.iter
                (fun u ->
                  if not (defined u) then fail "v%d: smp live v%d undefined" v u;
                  if not (dominates_use ~def_v:u ~use_block:b.Lir.bid ~use_pos:pos) then
                    fail "v%d: smp live v%d not dominated by its definition" v u)
                (Lir.smp_uses k))
          b.Lir.instrs;
        (* Terminator: operands read after every instruction in the block. *)
        let term_pos = List.length b.Lir.instrs in
        let check_term_operand what u =
          if not (defined u) then fail "b%d: %s of undefined v%d" b.Lir.bid what u;
          if not (dominates_use ~def_v:u ~use_block:b.Lir.bid ~use_pos:term_pos) then
            fail "b%d: %s v%d not dominated by its definition" b.Lir.bid what u
        in
        (match b.Lir.term with
        | Lir.Br (c, _, _) -> check_term_operand "branch on" c
        | Lir.Ret (Some r) -> check_term_operand "return of" r
        | _ -> ());
        List.iter (fun s -> check_block_id s "terminator") (Lir.successors b.Lir.term)
      end)

let verify_or_print f =
  try verify f
  with Ill_formed msg ->
    prerr_endline (Printer.func_to_string f);
    raise (Ill_formed msg)
