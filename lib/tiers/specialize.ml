(** The speculative bytecode → LIR compiler shared by the DFG and FTL tiers.

    Follows JavaScriptCore's structure: type feedback from Baseline decides
    what to speculate (int32 arithmetic, monomorphic shapes, in-bounds array
    accesses, known callees), and every speculation is guarded by a check
    whose failure OSR-exits to the Baseline tier at the current bytecode
    index — a Stack Map Point carrying a live map computed from bytecode
    liveness.

    SSA is built directly during translation with the Braun et al. algorithm
    (local value numbering per block + on-demand phi insertion with block
    sealing), followed by a trivial-phi elimination fixpoint. *)

module Opcode = Nomap_bytecode.Opcode
module Liveness = Nomap_bytecode.Liveness
module Feedback = Nomap_profile.Feedback
module Value = Nomap_runtime.Value
module Intrinsics = Nomap_runtime.Intrinsics
module L = Nomap_lir.Lir
module Ast = Nomap_jsir.Ast

(* ------------------------------------------------------------------ *)
(* Static types of SSA values, used to suppress provably-unneeded checks at
   emission time (the Typeprop pass removes the rest after phi types are
   known). *)

type ty = Tint | Tnum | Tbool | Tstr | Tarr | Tobj of int option | Tfun | Tany

let type_of_kind = function
  | L.Const c -> (
    match c with
    | Value.Int _ -> Tint
    | Value.Num _ -> Tnum
    | Value.Str _ -> Tstr
    | Value.Bool _ -> Tbool
    | Value.Arr _ -> Tarr
    | Value.Obj _ -> Tobj None
    | Value.Fun _ -> Tfun
    | Value.Undef | Value.Null | Value.Hole -> Tany)
  | L.Iadd _ | L.Isub _ | L.Imul _ | L.Ineg _ | L.Iadd_wrap _ | L.Isub_wrap _
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ -> Tint
  | L.Ushr _ -> Tnum
  | L.Fadd _ | L.Fsub _ | L.Fmul _ | L.Fdiv _ | L.Fmod _ | L.Fneg _ -> Tnum
  | L.Cmp _ | L.Not _ -> Tbool
  | L.Load_length _ | L.Str_length _ | L.Load_char_code _ -> Tint
  | L.Check_int _ -> Tint
  | L.Check_number _ -> Tnum
  | L.Check_string _ -> Tstr
  | L.Check_array _ -> Tarr
  | L.Check_shape (_, s, _) -> Tobj (Some s)
  | L.Check_fun_eq _ -> Tfun
  | L.Check_bounds _ | L.Check_str_bounds _ | L.Check_not_hole _ | L.Check_overflow _ -> Tint
  | L.Alloc_object -> Tobj None
  | L.Alloc_array _ -> Tarr
  | L.Ctor_call _ -> Tobj None
  | L.Intrinsic (i, _) -> (
    match i with
    | Intrinsics.Global_is_nan -> Tbool
    | _ -> Tnum)
  | _ -> Tany

let is_int_ty = function Tint -> true | _ -> false
let is_num_ty = function Tint | Tnum -> true | _ -> false

(* ------------------------------------------------------------------ *)

(** Engine-compiled executable forms of a [compiled] function.  The type is
    extensible so an execution engine (a layer above this one) can cache its
    own artifact on the record without the tiers layer depending on it;
    adaptation throwing the record away ([version.ftl <- None]) discards the
    cached engine code with it. *)
type artifact = ..

type compiled = {
  lir : L.func;
  block_pc : (int, int) Hashtbl.t;  (** LIR block id -> bytecode leader pc *)
  header_blocks : (int * int) list;  (** (bytecode loop-header pc, LIR block id) *)
  entry_states : (int, (int * L.v) list) Hashtbl.t;
      (** loop-header LIR block -> live (reg, value-at-entry) pairs *)
  mutable decoded : Nomap_lir.Decode.t option;
      (** pre-decoded executable form, built lazily by the machine on first
          execution (i.e. after all transform/optimizer passes have run);
          the LIR must not be mutated once this is set *)
  mutable engine_code : artifact option;
      (** engine-specific compiled form (e.g. the threaded engine's closure
          chains), cached lazily under the same no-mutation contract *)
}

type builder = {
  bc : Opcode.func;
  consts : Value.t array;
  profile : Feedback.func_profile;
  live : Liveness.t;
  lir : L.func;
  leader_block : (int, int) Hashtbl.t;
  mutable cur : int;
  current_def : (int * int, L.v) Hashtbl.t;
  sealed : (int, unit) Hashtbl.t;
  incomplete : (int, (int * L.v) list ref) Hashtbl.t;
  bc_block_preds : (int, int list) Hashtbl.t;  (** leader pc -> pred leader pcs *)
  filled : (int, unit) Hashtbl.t;  (** leader pc filled *)
  body_rev : (int, L.v list) Hashtbl.t;  (** block -> reversed non-phi instrs *)
  phis_of : (int, L.v list) Hashtbl.t;
  entry_states : (int, (int * L.v) list) Hashtbl.t;
}

(* --- block-leader discovery ---------------------------------------- *)

let leaders (bc : Opcode.func) =
  let set = Hashtbl.create 16 in
  Hashtbl.replace set 0 ();
  Array.iteri
    (fun pc op ->
      match op with
      | Opcode.Jump t -> Hashtbl.replace set t ()
      | Opcode.Jump_if_false (_, t) | Opcode.Jump_if_true (_, t) ->
        Hashtbl.replace set t ();
        if pc + 1 < Array.length bc.Opcode.code then Hashtbl.replace set (pc + 1) ()
      | Opcode.Return _ ->
        if pc + 1 < Array.length bc.Opcode.code then Hashtbl.replace set (pc + 1) ()
      | _ -> ())
    bc.Opcode.code;
  List.sort compare (Hashtbl.fold (fun pc () acc -> pc :: acc) set [])

(* The leader of the block containing pc (pc must be a leader here). *)
let block_end bc leaders_arr leader =
  (* One past the last pc of this block. *)
  let next_leader =
    List.fold_left
      (fun acc l -> if l > leader && l < acc then l else acc)
      (Array.length bc.Opcode.code) leaders_arr
  in
  next_leader

(* --- emission ------------------------------------------------------- *)

let emit b kind =
  let i = L.new_instr b.lir kind in
  i.L.block <- b.cur;
  let cur = try Hashtbl.find b.body_rev b.cur with Not_found -> [] in
  Hashtbl.replace b.body_rev b.cur (i.L.id :: cur);
  i.L.id

let emit_phi_in b blk =
  let i = L.new_instr b.lir (L.Phi []) in
  i.L.block <- blk;
  let cur = try Hashtbl.find b.phis_of blk with Not_found -> [] in
  Hashtbl.replace b.phis_of blk (i.L.id :: cur);
  i.L.id

(* --- Braun SSA construction ----------------------------------------- *)

let write_var b blk reg v = Hashtbl.replace b.current_def (blk, reg) v

let rec read_var b blk reg =
  match Hashtbl.find_opt b.current_def (blk, reg) with
  | Some v -> v
  | None -> read_var_recursive b blk reg

and read_var_recursive b blk reg =
  let v =
    if not (Hashtbl.mem b.sealed blk) then begin
      let phi = emit_phi_in b blk in
      let lst =
        match Hashtbl.find_opt b.incomplete blk with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace b.incomplete blk l;
          l
      in
      lst := (reg, phi) :: !lst;
      phi
    end
    else
      match (L.block b.lir blk).L.preds with
      | [] ->
        (* Unreachable block: any placeholder will do. *)
        let saved = b.cur in
        b.cur <- blk;
        let v = emit b (L.Const Value.Undef) in
        b.cur <- saved;
        v
      | [ p ] -> read_var b p reg
      | _ ->
        let phi = emit_phi_in b blk in
        write_var b blk reg phi;
        add_phi_operands b reg phi
  in
  write_var b blk reg v;
  v

and add_phi_operands b reg phi =
  let blk = (L.instr b.lir phi).L.block in
  let ins = List.map (fun p -> (p, read_var b p reg)) (L.block b.lir blk).L.preds in
  (L.instr b.lir phi).L.kind <- L.Phi ins;
  phi

let seal_block b blk =
  if not (Hashtbl.mem b.sealed blk) then begin
    Hashtbl.replace b.sealed blk ();
    match Hashtbl.find_opt b.incomplete blk with
    | None -> ()
    | Some lst ->
      List.iter (fun (reg, phi) -> ignore (add_phi_operands b reg phi)) !lst;
      Hashtbl.remove b.incomplete blk
  end

(* --- check/exit helpers ---------------------------------------------- *)

let make_exit b pc : L.exit =
  let live_regs = Liveness.live_at b.live pc in
  let live = List.map (fun r -> (r, read_var b b.cur r)) live_regs in
  { L.ekind = L.Deopt; smp = L.fresh_smp b.lir ~resume_pc:pc ~live }

let ty b v = type_of_kind (L.kind_of b.lir v)

let ensure_int b pc v =
  if is_int_ty (ty b v) then v else emit b (L.Check_int (v, make_exit b pc))

let ensure_num b pc v =
  if is_num_ty (ty b v) then v else emit b (L.Check_number (v, make_exit b pc))

let ensure_str b pc v =
  match ty b v with Tstr -> v | _ -> emit b (L.Check_string (v, make_exit b pc))

let ensure_arr b pc v =
  match ty b v with Tarr -> v | _ -> emit b (L.Check_array (v, make_exit b pc))

let ensure_shape b pc v shape_id =
  match ty b v with
  | Tobj (Some s) when s = shape_id -> v
  | _ -> emit b (L.Check_shape (v, shape_id, make_exit b pc))

let undef_const b = emit b (L.Const Value.Undef)

(* --- per-op speculation decisions ------------------------------------ *)

let is_pure_math = function
  | Intrinsics.Math_floor | Intrinsics.Math_ceil | Intrinsics.Math_round
  | Intrinsics.Math_sqrt | Intrinsics.Math_abs | Intrinsics.Math_sin | Intrinsics.Math_cos
  | Intrinsics.Math_tan | Intrinsics.Math_asin | Intrinsics.Math_acos | Intrinsics.Math_atan
  | Intrinsics.Math_atan2 | Intrinsics.Math_pow | Intrinsics.Math_log | Intrinsics.Math_exp
  | Intrinsics.Math_min | Intrinsics.Math_max | Intrinsics.Math_random
  | Intrinsics.Global_is_nan -> true
  | _ -> false

let cmp_of_binop = function
  | Ast.Lt -> Some L.Clt
  | Ast.Le -> Some L.Cle
  | Ast.Gt -> Some L.Cgt
  | Ast.Ge -> Some L.Cge
  | Ast.Eq -> Some L.Ceq
  | Ast.Ne -> Some L.Cne
  | _ -> None

let translate_binop b pc (op : Ast.binop) va vb (site : Feedback.site) =
  let rt () = emit b (L.Call_runtime (L.Rt_binop op, undef_const b, [ va; vb ])) in
  let int_ok = Feedback.int_only site in
  let num_ok = Feedback.number_only site in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul ->
    if int_ok then begin
      let a = ensure_int b pc va and b' = ensure_int b pc vb in
      let raw =
        emit b
          (match op with
          | Ast.Add -> L.Iadd (a, b')
          | Ast.Sub -> L.Isub (a, b')
          | _ -> L.Imul (a, b'))
      in
      emit b (L.Check_overflow (raw, make_exit b pc))
    end
    else if num_ok then begin
      let a = ensure_num b pc va and b' = ensure_num b pc vb in
      emit b
        (match op with
        | Ast.Add -> L.Fadd (a, b')
        | Ast.Sub -> L.Fsub (a, b')
        | _ -> L.Fmul (a, b'))
    end
    else rt ()
  | Ast.Div | Ast.Mod ->
    if num_ok then begin
      let a = ensure_num b pc va and b' = ensure_num b pc vb in
      emit b (match op with Ast.Div -> L.Fdiv (a, b') | _ -> L.Fmod (a, b'))
    end
    else rt ()
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    if num_ok then begin
      let a = ensure_num b pc va and b' = ensure_num b pc vb in
      let c = match cmp_of_binop op with Some c -> c | None -> assert false in
      emit b (L.Cmp (c, a, b'))
    end
    else rt ()
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Ushr ->
    (* Bitwise operators ToInt32 their operands; with number feedback the
       conversion is an inline truncation (JSC's ValueToInt32), so only
       non-number operands need the generic path. *)
    if int_ok || num_ok then begin
      let a = (if int_ok then ensure_int b pc va else ensure_num b pc va) in
      let b' = (if int_ok then ensure_int b pc vb else ensure_num b pc vb) in
      emit b
        (match op with
        | Ast.Band -> L.Band (a, b')
        | Ast.Bor -> L.Bor (a, b')
        | Ast.Bxor -> L.Bxor (a, b')
        | Ast.Shl -> L.Shl (a, b')
        | Ast.Shr -> L.Shr (a, b')
        | _ -> L.Ushr (a, b'))
    end
    else rt ()

let translate_unop b pc (op : Ast.unop) va (site : Feedback.site) =
  let rt () = emit b (L.Call_runtime (L.Rt_unop op, undef_const b, [ va ])) in
  match op with
  | Ast.Neg ->
    if Feedback.int_only site then begin
      let a = ensure_int b pc va in
      let raw = emit b (L.Ineg a) in
      emit b (L.Check_overflow (raw, make_exit b pc))
    end
    else if Feedback.number_only site then emit b (L.Fneg (ensure_num b pc va))
    else rt ()
  | Ast.Plus ->
    if Feedback.number_only site then ensure_num b pc va else rt ()
  | Ast.Not -> emit b (L.Not va)
  | Ast.Bitnot ->
    if Feedback.int_only site then emit b (L.Bnot (ensure_int b pc va)) else rt ()

(* String receivers whose methods the FTL fast-paths. *)
let translate_method b pc name vrecv vargs (site : Feedback.site) =
  let generic () =
    emit b (L.Call_runtime (L.Rt_method name, vrecv, vargs))
  in
  match site.Feedback.classes with
  | [ Feedback.Cls_str ] -> (
    match (name, vargs) with
    | "charCodeAt", [ vi ]
      when site.Feedback.result_classes = [ Feedback.Cls_int ] ->
      (* Always returned an int so far => always in bounds: inline it. *)
      let s = ensure_str b pc vrecv in
      let i = ensure_int b pc vi in
      let ib = emit b (L.Check_str_bounds (s, i, make_exit b pc)) in
      emit b (L.Load_char_code (s, ib))
    | _ -> (
      match Intrinsics.method_lookup (Value.Str { sid = -1; sdata = ""; saddr = 0 }) name with
      | Some intr -> emit b (L.Call_runtime (L.Rt_intrinsic intr, vrecv, vargs))
      | None -> generic ()))
  | [ Feedback.Cls_arr ] -> (
    match
      Intrinsics.method_lookup
        (Value.Arr { aid = -1; elems = [||]; alen = 0; aaddr = 0; elems_addr = 0 })
        name
    with
    | Some intr -> emit b (L.Call_runtime (L.Rt_intrinsic intr, vrecv, vargs))
    | None -> generic ())
  | [ Feedback.Cls_obj ] -> (
    match (Feedback.monomorphic_shape site, Feedback.monomorphic_callee site) with
    | Some (shape_id, Feedback.Load_slot slot), Some fid ->
      let o = ensure_shape b pc vrecv shape_id in
      let fv = emit b (L.Load_slot (o, slot)) in
      let fv' = emit b (L.Check_fun_eq (fv, fid, make_exit b pc)) in
      ignore fv';
      emit b (L.Call_method (fid, o, vargs))
    | _ -> generic ())
  | _ -> generic ()

(* --- main translation ------------------------------------------------ *)

let compile ~(bc : Opcode.func) ~(consts : Value.t array) ~(profile : Feedback.func_profile) :
    compiled =
  let lir = L.create_func ~fid:bc.Opcode.fid in
  let live = Liveness.compute bc in
  let leader_list = leaders bc in
  let b =
    {
      bc;
      consts;
      profile;
      live;
      lir;
      leader_block = Hashtbl.create 16;
      cur = 0;
      current_def = Hashtbl.create 64;
      sealed = Hashtbl.create 16;
      incomplete = Hashtbl.create 16;
      bc_block_preds = Hashtbl.create 16;
      filled = Hashtbl.create 16;
      body_rev = Hashtbl.create 16;
      phis_of = Hashtbl.create 16;
      entry_states = Hashtbl.create 4;
    }
  in
  (* Entry block (seeds) + one block per leader. *)
  let entry = L.new_block lir in
  lir.L.entry <- entry.L.bid;
  List.iter
    (fun pc ->
      let blk = L.new_block lir in
      Hashtbl.replace b.leader_block pc blk.L.bid)
    leader_list;
  let block_of pc = Hashtbl.find b.leader_block pc in
  (* Bytecode-level successors between leaders: follow the block from its
     leader to the first control transfer (dead code after an unconditional
     jump is skipped, matching how the block is filled). *)
  let bc_succs leader =
    let e = block_end bc leader_list leader in
    let rec go pc =
      if pc >= e then if e < Array.length bc.Opcode.code then [ e ] else []
      else
        match bc.Opcode.code.(pc) with
        | Opcode.Jump t -> [ t ]
        | Opcode.Jump_if_false (_, t) | Opcode.Jump_if_true (_, t) -> [ pc + 1; t ]
        | Opcode.Return _ -> []
        | _ -> go (pc + 1)
    in
    go leader |> List.filter (fun t -> t < Array.length bc.Opcode.code)
  in
  List.iter
    (fun leader ->
      List.iter
        (fun succ ->
          let cur = try Hashtbl.find b.bc_block_preds succ with Not_found -> [] in
          Hashtbl.replace b.bc_block_preds succ (leader :: cur))
        (bc_succs leader))
    leader_list;
  (* LIR preds mirror the bytecode CFG (entry precedes leader 0). *)
  (L.block lir (block_of 0)).L.preds <- [ entry.L.bid ];
  List.iter
    (fun leader ->
      let preds = try Hashtbl.find b.bc_block_preds leader with Not_found -> [] in
      let blk = L.block lir (block_of leader) in
      blk.L.preds <-
        blk.L.preds @ List.sort_uniq compare (List.map block_of preds))
    leader_list;
  (* Seed the entry block. *)
  b.cur <- entry.L.bid;
  Hashtbl.replace b.sealed entry.L.bid ();
  for r = 0 to bc.Opcode.nregs - 1 do
    let v =
      if r <= bc.Opcode.nparams then emit b (L.Param r) else emit b (L.Const Value.Undef)
    in
    write_var b entry.L.bid r v
  done;
  entry.L.term <- L.Jump (block_of 0);
  Hashtbl.replace b.filled (-1) ();  (* pseudo-leader for entry *)
  (* Sealing discipline: a block is sealed once all bytecode preds are
     filled; leader 0 additionally waits on the entry (always filled). *)
  let try_seal_all () =
    List.iter
      (fun leader ->
        let preds = try Hashtbl.find b.bc_block_preds leader with Not_found -> [] in
        if List.for_all (fun p -> Hashtbl.mem b.filled p) preds then
          seal_block b (block_of leader))
      leader_list
  in
  try_seal_all ();
  (* Fill blocks in pc order. *)
  List.iter
    (fun leader ->
      let blk = block_of leader in
      b.cur <- blk;
      (* Record entry state for loop headers (for NoMap Tx_begin SMPs). *)
      if List.mem leader bc.Opcode.loop_headers then begin
        let regs = Liveness.live_at live leader in
        let state = List.map (fun r -> (r, read_var b blk r)) regs in
        Hashtbl.replace b.entry_states blk state
      end;
      let e = block_end bc leader_list leader in
      let pc = ref leader in
      let terminated = ref false in
      while !pc < e && not !terminated do
        let cur_pc = !pc in
        let site = profile.Feedback.sites.(cur_pc) in
        let op = bc.Opcode.code.(cur_pc) in
        (match op with
        | Opcode.Load_const (d, i) -> write_var b blk d (emit b (L.Const consts.(i)))
        | Opcode.Move (d, s) -> write_var b blk d (read_var b blk s)
        | Opcode.Load_global (d, g) -> write_var b blk d (emit b (L.Load_global g))
        | Opcode.Store_global (g, s) ->
          ignore (emit b (L.Store_global (g, read_var b blk s)))
        | Opcode.Binop (bop, d, x, y) ->
          let va = read_var b blk x and vb = read_var b blk y in
          write_var b blk d (translate_binop b cur_pc bop va vb site)
        | Opcode.Unop (uop, d, x) ->
          let va = read_var b blk x in
          write_var b blk d (translate_unop b cur_pc uop va site)
        | Opcode.Get_prop (d, o, name) -> (
          let vo = read_var b blk o in
          match Feedback.monomorphic_shape site with
          | Some (shape_id, Feedback.Load_slot slot) ->
            let o' = ensure_shape b cur_pc vo shape_id in
            write_var b blk d (emit b (L.Load_slot (o', slot)))
          | _ ->
            write_var b blk d
              (emit b (L.Call_runtime (L.Rt_get_prop name, vo, []))))
        | Opcode.Set_prop (o, name, x) -> (
          let vo = read_var b blk o and vx = read_var b blk x in
          match Feedback.monomorphic_shape site with
          | Some (shape_id, Feedback.Store_slot slot) ->
            let o' = ensure_shape b cur_pc vo shape_id in
            ignore (emit b (L.Store_slot (o', slot, vx)))
          | Some (shape_id, Feedback.Transition (_, slot)) ->
            (* Constructor pattern: adding the property transitions the
               shape; compile the transition inline (JSC does the same). *)
            let o' = ensure_shape b cur_pc vo shape_id in
            ignore (emit b (L.Store_transition (o', name, slot, vx)))
          | _ -> ignore (emit b (L.Call_runtime (L.Rt_set_prop name, vo, [ vx ]))))
        | Opcode.Get_elem (d, a, i) ->
          let va = read_var b blk a and vi = read_var b blk i in
          let fast =
            List.for_all
              (fun c -> c = Feedback.Cls_arr || c = Feedback.Cls_int)
              site.Feedback.classes
            && site.Feedback.classes <> []
            && (not site.Feedback.saw_oob)
            && not site.Feedback.saw_hole
          in
          if fast then begin
            let a' = ensure_arr b cur_pc va in
            let i' = ensure_int b cur_pc vi in
            let ib = emit b (L.Check_bounds (a', i', make_exit b cur_pc)) in
            let _nh = emit b (L.Check_not_hole (a', ib, make_exit b cur_pc)) in
            write_var b blk d (emit b (L.Load_elem (a', ib)))
          end
          else
            write_var b blk d (emit b (L.Call_runtime (L.Rt_get_elem, va, [ vi ])))
        | Opcode.Set_elem (a, i, x) ->
          let va = read_var b blk a and vi = read_var b blk i and vx = read_var b blk x in
          let fast =
            List.for_all
              (fun c -> c = Feedback.Cls_arr || c = Feedback.Cls_int)
              site.Feedback.classes
            && site.Feedback.classes <> []
            && not site.Feedback.saw_elongation
          in
          if fast then begin
            let a' = ensure_arr b cur_pc va in
            let i' = ensure_int b cur_pc vi in
            let ib = emit b (L.Check_bounds (a', i', make_exit b cur_pc)) in
            ignore (emit b (L.Store_elem (a', ib, vx)))
          end
          else ignore (emit b (L.Call_runtime (L.Rt_set_elem, va, [ vi; vx ])))
        | Opcode.Get_length (d, x) -> (
          let vx = read_var b blk x in
          match site.Feedback.classes with
          | [ Feedback.Cls_arr ] ->
            let a' = ensure_arr b cur_pc vx in
            write_var b blk d (emit b (L.Load_length a'))
          | [ Feedback.Cls_str ] ->
            let s' = ensure_str b cur_pc vx in
            write_var b blk d (emit b (L.Str_length s'))
          | _ ->
            write_var b blk d (emit b (L.Call_runtime (L.Rt_get_length, vx, []))))
        | Opcode.New_object d -> write_var b blk d (emit b L.Alloc_object)
        | Opcode.New_array (d, n) ->
          let vn = read_var b blk n in
          write_var b blk d (emit b (L.Alloc_array (ensure_int b cur_pc vn)))
        | Opcode.Call (d, fid, args) ->
          let vargs = List.map (read_var b blk) args in
          write_var b blk d (emit b (L.Call_func (fid, vargs)))
        | Opcode.New_call (d, fid, args) ->
          let vargs = List.map (read_var b blk) args in
          write_var b blk d (emit b (L.Ctor_call (fid, vargs)))
        | Opcode.Call_method (d, recv, name, args) ->
          let vrecv = read_var b blk recv in
          let vargs = List.map (read_var b blk) args in
          write_var b blk d (translate_method b cur_pc name vrecv vargs site)
        | Opcode.Call_intrinsic (d, intr, args) ->
          let vargs = List.map (read_var b blk) args in
          if is_pure_math intr then write_var b blk d (emit b (L.Intrinsic (intr, vargs)))
          else
            write_var b blk d
              (emit b (L.Call_runtime (L.Rt_intrinsic intr, undef_const b, vargs)))
        | Opcode.Jump t ->
          (L.block lir blk).L.term <- L.Jump (block_of t);
          terminated := true
        | Opcode.Jump_if_false (c, t) ->
          let vc = read_var b blk c in
          (L.block lir blk).L.term <- L.Br (vc, block_of (cur_pc + 1), block_of t);
          terminated := true
        | Opcode.Jump_if_true (c, t) ->
          let vc = read_var b blk c in
          (L.block lir blk).L.term <- L.Br (vc, block_of t, block_of (cur_pc + 1));
          terminated := true
        | Opcode.Return r ->
          let rv = Option.map (read_var b blk) r in
          (L.block lir blk).L.term <- L.Ret rv;
          terminated := true);
        incr pc
      done;
      (* Fallthrough to the next leader. *)
      if not !terminated then
        (L.block lir blk).L.term <-
          (if e < Array.length bc.Opcode.code then L.Jump (block_of e) else L.Ret None);
      Hashtbl.replace b.filled leader ();
      try_seal_all ())
    leader_list;
  List.iter (fun leader -> seal_block b (block_of leader)) leader_list;
  (* Finalize block instruction lists: phis first, then body. *)
  Nomap_util.Vec.iter
    (fun blk ->
      let phis = try List.rev (Hashtbl.find b.phis_of blk.L.bid) with Not_found -> [] in
      let body = try List.rev (Hashtbl.find b.body_rev blk.L.bid) with Not_found -> [] in
      blk.L.instrs <- phis @ body)
    lir.L.blocks;
  (* Trivial-phi elimination to a fixpoint.  The substitution is also
     applied to the entry-state side table the NoMap transaction placer
     reads, which [L.replace_uses] cannot see. *)
  let subst : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    Nomap_util.Vec.iter
      (fun i ->
        match i.L.kind with
        | L.Phi ins ->
          let ops =
            List.sort_uniq compare (List.filter (fun v -> v <> i.L.id) (List.map snd ins))
          in
          (match ops with
          | [ same ] ->
            i.L.kind <- L.Nop;
            let blk = L.block lir i.L.block in
            blk.L.instrs <- List.filter (fun v -> v <> i.L.id) blk.L.instrs;
            i.L.block <- -1;
            Hashtbl.replace subst i.L.id same;
            L.replace_uses lir ~old_v:i.L.id ~new_v:same;
            changed := true
          | _ -> ())
        | _ -> ())
      lir.L.instrs
  done;
  let rec resolve v =
    match Hashtbl.find_opt subst v with Some w -> resolve w | None -> v
  in
  Hashtbl.iter
    (fun blk state ->
      Hashtbl.replace b.entry_states blk (List.map (fun (reg, v) -> (reg, resolve v)) state))
    (Hashtbl.copy b.entry_states);
  Nomap_lir.Cfg.compute_preds lir;
  let block_pc = Hashtbl.create 16 in
  Hashtbl.iter (fun pc blk -> Hashtbl.replace block_pc blk pc) b.leader_block;
  let header_blocks =
    List.map (fun pc -> (pc, block_of pc)) bc.Opcode.loop_headers
  in
  {
    lir;
    block_pc;
    header_blocks;
    entry_states = b.entry_states;
    decoded = None;
    engine_code = None;
  }
