(** Measurement primitives: warm a benchmark to steady state under a given
    configuration, measure, and verify the checksum against the reference
    interpreter.

    Every function here is *uncached* and self-contained — one call builds
    one VM (or interpreter instance), runs the protocol, and returns the
    steady-state metrics.  Because the shape universe, heap, and counters
    are all per-VM values, each call is independent of every other, which
    is what lets [Scheduler] execute measurements on parallel domains.
    Memoization (the old [Runner.cache]) lives in [Scheduler]'s
    mutex-guarded store; experiment drivers should go through that. *)

module Registry = Nomap_workloads.Registry
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Timing = Nomap_machine.Timing
module Value = Nomap_runtime.Value
module Interp = Nomap_interp.Interp
module Instance = Nomap_interp.Instance

let default_warmup = 35
let default_measure = 10

(** Execution engine for every VM the harness builds.  Process-global
    rather than a memo-key dimension on purpose: the engines are
    metric-identical (the fuzz oracle pins result, heap checksum and the
    full counter table across the engine axis), so a measurement cached
    under one engine is valid under the other — only wall-clock differs,
    and the harness never caches wall-clock. *)
let engine = ref Nomap_machine.Engine.default

type measurement = {
  bench : Registry.benchmark;
  label : string;
  counters : Counters.t;  (** steady-state metrics over the measured calls *)
  cycles : float;  (** steady-state simulated cycles *)
  checksum : string;
  deopts_total : int;  (** including warmup (for the §III-A2 statistic) *)
  ftl_calls_total : int;
  tx_demotions : int;
}

(** §III-A2 deoptimization statistics for one benchmark. *)
type deopt_stats = {
  d_ftl_calls : int;
  d_deopts : int;
  d_late : int;  (** deopts after iteration 50 *)
}

exception Checksum_mismatch of string * string * string

let check bench label got =
  let expected = Registry.reference_result bench in
  if got <> expected then
    raise (Checksum_mismatch (bench.Registry.id ^ "/" ^ label, expected, got))

(* Shared warm/measure protocol over a full VM. *)
let steady_vm ~warmup ~measure ~label bench vm =
  ignore (Vm.run_main vm);
  for _ = 1 to warmup do
    ignore (Vm.call_function vm "benchmark" [])
  done;
  let before = Vm.begin_measurement vm in
  let result = ref Value.Undef in
  for _ = 1 to measure do
    result := Vm.call_function vm "benchmark" []
  done;
  let counters = Counters.diff ~now:(Vm.counters vm) ~before in
  let checksum = Value.to_js_string !result in
  check bench label checksum;
  {
    bench;
    label;
    counters;
    cycles = Counters.cycles counters;
    checksum;
    deopts_total = (Vm.counters vm).Counters.deopts;
    ftl_calls_total = (Vm.counters vm).Counters.ftl_calls;
    tx_demotions = Vm.tx_demotions vm;
  }

(** Run [bench] under architecture [arch] at full tier; returns steady-state
    metrics. *)
let measure_arch ?(warmup = default_warmup) ?(measure = default_measure) ~arch bench =
  let label = Config.name arch in
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine:!engine ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
  in
  steady_vm ~warmup ~measure ~label bench vm

(** Run [bench] under [arch] with selected optimizer passes disabled
    (ablation studies). *)
let measure_ablation ?(warmup = default_warmup) ?(measure = default_measure) ~arch ~knobs
    ~label bench =
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine:!engine ~opt_knobs:knobs ~config:(Config.create arch)
      ~tier_cap:Vm.Cap_ftl prog
  in
  let m = steady_vm ~warmup ~measure ~label:(Config.name arch ^ "/" ^ label) bench vm in
  { m with label }

(** Run [bench] with a tier cap (Table I), Base architecture. *)
let measure_cap ?(warmup = default_warmup) ?(measure = default_measure) ~cap bench =
  let label = "cap:" ^ Vm.cap_name cap in
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine:!engine ~config:(Config.create Config.Base) ~tier_cap:cap prog
  in
  steady_vm ~warmup ~measure ~label bench vm

(** Run [bench] to full tier and keep calling for [iterations] iterations,
    recording the deopt counter at iteration 50 (paper §III-A2: deopts are a
    startup phenomenon, not a steady-state one). *)
let measure_deopt ~iterations bench =
  let prog = Registry.compile bench in
  let vm =
    Vm.create ~fuel:4_000_000_000 ~engine:!engine ~config:(Config.create Config.Base) ~tier_cap:Vm.Cap_ftl
      prog
  in
  ignore (Vm.run_main vm);
  let deopts_at_50 = ref 0 in
  for i = 1 to iterations do
    ignore (Vm.call_function vm "benchmark" []);
    if i = 50 then deopts_at_50 := (Vm.counters vm).Counters.deopts
  done;
  {
    d_ftl_calls = (Vm.counters vm).Counters.ftl_calls;
    d_deopts = (Vm.counters vm).Counters.deopts;
    d_late = (Vm.counters vm).Counters.deopts - !deopts_at_50;
  }

(* ------------------------------------------------------------------ *)
(* Figure 1 language stand-ins *)

type language = Lang_c | Lang_js | Lang_python | Lang_php | Lang_ruby

let language_name = function
  | Lang_c -> "C"
  | Lang_js -> "JavaScript"
  | Lang_python -> "Python"
  | Lang_php -> "PHP"
  | Lang_ruby -> "Ruby"

let default_lang_warmup = 5
let default_lang_measure = 3

(* Bytecode-engine based languages (C = native cost model, Python =
   bytecode interpreter with boxed values and no inline caches). *)
let run_bytecode_lang ~mode ~cpi ~label bench ~warmup ~measure =
  let prog = Registry.compile bench in
  let inst = Instance.create ~fuel:4_000_000_000 prog in
  let count = ref 0 in
  let rec env =
    {
      Interp.instance = inst;
      mode;
      profile = None;
      charge = (fun n -> count := !count + n);
      call = (fun ~fid ~this ~args -> Interp.call_function env ~fid ~this ~args);
    }
  in
  ignore
    (Interp.call_function env ~fid:prog.Nomap_bytecode.Opcode.main_fid ~this:Value.Undef
       ~args:[]);
  let bench_fid =
    match Nomap_bytecode.Opcode.func_by_name prog "benchmark" with
    | Some f -> f.Nomap_bytecode.Opcode.fid
    | None -> invalid_arg "no benchmark()"
  in
  for _ = 1 to warmup do
    ignore (Interp.call_function env ~fid:bench_fid ~this:Value.Undef ~args:[])
  done;
  let before = !count in
  let result = ref Value.Undef in
  for _ = 1 to measure do
    result := Interp.call_function env ~fid:bench_fid ~this:Value.Undef ~args:[]
  done;
  let instrs = !count - before in
  let counters = Counters.create () in
  Counters.add_instrs counters Counters.No_ftl instrs;
  let checksum = Value.to_js_string !result in
  check bench label checksum;
  {
    bench;
    label;
    counters;
    cycles = float_of_int instrs *. cpi;
    checksum;
    deopts_total = 0;
    ftl_calls_total = 0;
    tx_demotions = 0;
  }

let run_ast_lang ~flavour ~label bench ~warmup ~measure =
  let ast =
    Nomap_jsir.Parser.parse_program_exn ~name:bench.Registry.name bench.Registry.source
  in
  let count = ref 0 in
  let env =
    Nomap_interp.Ast_interp.create ~fuel:4_000_000_000 ~flavour
      ~charge:(fun n -> count := !count + n)
      ast
  in
  Nomap_interp.Ast_interp.run_program env ast;
  for _ = 1 to warmup do
    ignore (Nomap_interp.Ast_interp.call env "benchmark" [])
  done;
  let before = !count in
  let result = ref Value.Undef in
  for _ = 1 to measure do
    result := Nomap_interp.Ast_interp.call env "benchmark" []
  done;
  let instrs = !count - before in
  let counters = Counters.create () in
  Counters.add_instrs counters Counters.No_ftl instrs;
  let checksum = Value.to_js_string !result in
  check bench label checksum;
  {
    bench;
    label;
    counters;
    cycles = float_of_int instrs *. Timing.cpi_runtime;
    checksum;
    deopts_total = 0;
    ftl_calls_total = 0;
    tx_demotions = 0;
  }

(** Note: [Lang_js] deliberately ignores [warmup]/[measure] and runs the
    full [measure_arch] protocol — the shortened protocol the
    interpreter-only languages use (5+3 calls) would never push
    [benchmark] past the FTL tier-up threshold, so Figure 1's "JS" bar
    would measure the Baseline tier.  [Scheduler.Key.lang] normalizes the
    JS key to the Base-architecture key of Figures 3/8-11 so the store
    shares the run, which is exactly what we want. *)
let measure_language ?(warmup = default_lang_warmup) ?(measure = default_lang_measure) ~lang
    bench =
  match lang with
  | Lang_c ->
    run_bytecode_lang ~mode:Interp.Native_tier ~cpi:Timing.cpi_ftl ~label:"C" bench ~warmup
      ~measure
  | Lang_js -> measure_arch ~arch:Config.Base bench
  | Lang_python ->
    run_bytecode_lang ~mode:Interp.Interp_tier ~cpi:Timing.cpi_runtime ~label:"Python" bench
      ~warmup ~measure
  | Lang_php ->
    run_ast_lang ~flavour:Nomap_interp.Ast_interp.Php_like ~label:"PHP" bench ~warmup ~measure
  | Lang_ruby ->
    run_ast_lang ~flavour:Nomap_interp.Ast_interp.Ruby_like ~label:"Ruby" bench ~warmup
      ~measure
