(** Benchmark runner: warm a benchmark to steady state under a given
    configuration, measure, and verify the checksum against the reference
    interpreter.  Results are memoized so the experiment drivers can share
    runs (Figure 3 and Figures 8-11 all need the Base runs, for example). *)

module Registry = Nomap_workloads.Registry
module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Timing = Nomap_machine.Timing
module Value = Nomap_runtime.Value
module Interp = Nomap_interp.Interp
module Instance = Nomap_interp.Instance

let default_warmup = 35
let default_measure = 10

type measurement = {
  bench : Registry.benchmark;
  label : string;
  counters : Counters.t;  (** steady-state metrics over the measured calls *)
  cycles : float;  (** steady-state simulated cycles *)
  checksum : string;
  deopts_total : int;  (** including warmup (for the §III-A2 statistic) *)
  ftl_calls_total : int;
  tx_demotions : int;
}

exception Checksum_mismatch of string * string * string

let cache : (string, measurement) Hashtbl.t = Hashtbl.create 128

let memo key compute =
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let m = compute () in
    Hashtbl.add cache key m;
    m

let check bench label got =
  let expected = Registry.reference_result bench in
  if got <> expected then
    raise (Checksum_mismatch (bench.Registry.id ^ "/" ^ label, expected, got))

(** Run [bench] under architecture [arch] at full tier; returns steady-state
    metrics. *)
let run_arch ?(warmup = default_warmup) ?(measure = default_measure) ~arch bench =
  let label = Config.name arch in
  memo
    (Printf.sprintf "%s#%s@w%d+m%d" bench.Registry.id label warmup measure)
    (fun () ->
      let prog = Registry.compile bench in
      let vm =
        Vm.create ~fuel:4_000_000_000 ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
      in
      ignore (Vm.run_main vm);
      for _ = 1 to warmup do
        ignore (Vm.call_function vm "benchmark" [])
      done;
      let before = Vm.begin_measurement vm in
      let result = ref Value.Undef in
      for _ = 1 to measure do
        result := Vm.call_function vm "benchmark" []
      done;
      let counters = Counters.diff ~now:vm.Vm.counters ~before in
      let checksum = Value.to_js_string !result in
      check bench label checksum;
      {
        bench;
        label;
        counters;
        cycles = counters.Counters.cycles;
        checksum;
        deopts_total = vm.Vm.counters.Counters.deopts;
        ftl_calls_total = vm.Vm.counters.Counters.ftl_calls;
        tx_demotions = vm.Vm.tx_demotions;
      })

(** Run [bench] under [arch] with selected optimizer passes disabled
    (ablation studies). *)
let run_ablation ?(warmup = default_warmup) ?(measure = default_measure) ~arch ~knobs ~label
    bench =
  memo
    (Printf.sprintf "%s#ablate:%s:%s@w%d+m%d" bench.Registry.id (Config.name arch) label
       warmup measure)
    (fun () ->
      let prog = Registry.compile bench in
      let vm =
        Vm.create ~fuel:4_000_000_000 ~opt_knobs:knobs ~config:(Config.create arch)
          ~tier_cap:Vm.Cap_ftl prog
      in
      ignore (Vm.run_main vm);
      for _ = 1 to warmup do
        ignore (Vm.call_function vm "benchmark" [])
      done;
      let before = Vm.begin_measurement vm in
      let result = ref Value.Undef in
      for _ = 1 to measure do
        result := Vm.call_function vm "benchmark" []
      done;
      let counters = Counters.diff ~now:vm.Vm.counters ~before in
      let checksum = Value.to_js_string !result in
      check bench (Config.name arch ^ "/" ^ label) checksum;
      {
        bench;
        label;
        counters;
        cycles = counters.Counters.cycles;
        checksum;
        deopts_total = vm.Vm.counters.Counters.deopts;
        ftl_calls_total = vm.Vm.counters.Counters.ftl_calls;
        tx_demotions = vm.Vm.tx_demotions;
      })

(** Run [bench] with a tier cap (Table I), Base architecture. *)
let run_cap ?(warmup = default_warmup) ?(measure = default_measure) ~cap bench =
  let label = "cap:" ^ Vm.cap_name cap in
  memo
    (Printf.sprintf "%s#%s@w%d+m%d" bench.Registry.id label warmup measure)
    (fun () ->
      let prog = Registry.compile bench in
      let vm =
        Vm.create ~fuel:4_000_000_000 ~config:(Config.create Config.Base) ~tier_cap:cap prog
      in
      ignore (Vm.run_main vm);
      for _ = 1 to warmup do
        ignore (Vm.call_function vm "benchmark" [])
      done;
      let before = Vm.begin_measurement vm in
      let result = ref Value.Undef in
      for _ = 1 to measure do
        result := Vm.call_function vm "benchmark" []
      done;
      let counters = Counters.diff ~now:vm.Vm.counters ~before in
      let checksum = Value.to_js_string !result in
      check bench label checksum;
      {
        bench;
        label;
        counters;
        cycles = counters.Counters.cycles;
        checksum;
        deopts_total = vm.Vm.counters.Counters.deopts;
        ftl_calls_total = vm.Vm.counters.Counters.ftl_calls;
        tx_demotions = vm.Vm.tx_demotions;
      })

(* ------------------------------------------------------------------ *)
(* Figure 1 language stand-ins *)

type language = Lang_c | Lang_js | Lang_python | Lang_php | Lang_ruby

let language_name = function
  | Lang_c -> "C"
  | Lang_js -> "JavaScript"
  | Lang_python -> "Python"
  | Lang_php -> "PHP"
  | Lang_ruby -> "Ruby"

(* Bytecode-engine based languages (C = native cost model, Python =
   bytecode interpreter with boxed values and no inline caches). *)
let run_bytecode_lang ~mode ~cpi ~label bench ~warmup ~measure =
  memo
    (Printf.sprintf "%s#lang:%s@w%d+m%d" bench.Registry.id label warmup measure)
    (fun () ->
      let prog = Registry.compile bench in
      let inst = Instance.create ~fuel:4_000_000_000 prog in
      let count = ref 0 in
      let rec env =
        {
          Interp.instance = inst;
          mode;
          profile = None;
          charge = (fun n -> count := !count + n);
          call = (fun ~fid ~this ~args -> Interp.call_function env ~fid ~this ~args);
        }
      in
      ignore
        (Interp.call_function env ~fid:prog.Nomap_bytecode.Opcode.main_fid ~this:Value.Undef
           ~args:[]);
      let bench_fid =
        match Nomap_bytecode.Opcode.func_by_name prog "benchmark" with
        | Some f -> f.Nomap_bytecode.Opcode.fid
        | None -> invalid_arg "no benchmark()"
      in
      for _ = 1 to warmup do
        ignore (Interp.call_function env ~fid:bench_fid ~this:Value.Undef ~args:[])
      done;
      let before = !count in
      let result = ref Value.Undef in
      for _ = 1 to measure do
        result := Interp.call_function env ~fid:bench_fid ~this:Value.Undef ~args:[]
      done;
      let instrs = !count - before in
      let counters = Counters.create () in
      Counters.add_instrs counters Counters.No_ftl instrs;
      let checksum = Value.to_js_string !result in
      check bench label checksum;
      {
        bench;
        label;
        counters;
        cycles = float_of_int instrs *. cpi;
        checksum;
        deopts_total = 0;
        ftl_calls_total = 0;
        tx_demotions = 0;
      })

let run_ast_lang ~flavour ~label bench ~warmup ~measure =
  memo
    (Printf.sprintf "%s#lang:%s@w%d+m%d" bench.Registry.id label warmup measure)
    (fun () ->
      let ast = Nomap_jsir.Parser.parse_program_exn ~name:bench.Registry.name bench.Registry.source in
      let count = ref 0 in
      let env =
        Nomap_interp.Ast_interp.create ~fuel:4_000_000_000 ~flavour
          ~charge:(fun n -> count := !count + n)
          ast
      in
      Nomap_interp.Ast_interp.run_program env ast;
      for _ = 1 to warmup do
        ignore (Nomap_interp.Ast_interp.call env "benchmark" [])
      done;
      let before = !count in
      let result = ref Value.Undef in
      for _ = 1 to measure do
        result := Nomap_interp.Ast_interp.call env "benchmark" []
      done;
      let instrs = !count - before in
      let counters = Counters.create () in
      Counters.add_instrs counters Counters.No_ftl instrs;
      let checksum = Value.to_js_string !result in
      check bench label checksum;
      {
        bench;
        label;
        counters;
        cycles = float_of_int instrs *. Timing.cpi_runtime;
        checksum;
        deopts_total = 0;
        ftl_calls_total = 0;
        tx_demotions = 0;
      })

let run_language ?(warmup = 5) ?(measure = 3) ~lang bench =
  match lang with
  | Lang_c ->
    run_bytecode_lang ~mode:Interp.Native_tier ~cpi:Timing.cpi_ftl ~label:"C" bench ~warmup
      ~measure
  | Lang_js ->
    (* Our JIT at full tier, unmodified JavaScriptCore analogue.  This case
       deliberately ignores [warmup]/[measure]: the shortened protocol the
       interpreter-only languages use (5+3 calls) would never push
       [benchmark] past the FTL tier-up threshold, so Figure 1's "JS" bar
       would measure the Baseline tier.  The JIT needs [run_arch]'s full
       warmup — and sharing its memo entry with the Base-architecture runs
       of Figures 3/8-11 is exactly what we want. *)
    run_arch ~arch:Config.Base bench
  | Lang_python ->
    run_bytecode_lang ~mode:Interp.Interp_tier ~cpi:Timing.cpi_runtime ~label:"Python" bench
      ~warmup ~measure
  | Lang_php ->
    run_ast_lang ~flavour:Nomap_interp.Ast_interp.Php_like ~label:"PHP" bench ~warmup ~measure
  | Lang_ruby ->
    run_ast_lang ~flavour:Nomap_interp.Ast_interp.Ruby_like ~label:"Ruby" bench ~warmup
      ~measure
