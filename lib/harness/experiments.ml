(** Experiment drivers: one per table/figure in the paper, split into a
    plan/render pair (DESIGN.md §10).

    [plan] declares, as pure data, every measurement key the experiment
    reads; [render] is a pure function from the completed scheduler store
    to the table text (it also prints it, so EXPERIMENTS.md and the bench
    harness share output).  [run] unions and dedups the plans of the
    requested experiments, executes them across domains via
    [Scheduler.prefetch], then renders serially.  Each render reads through
    the memoized [Scheduler.run_*] accessors, which compute on a miss — so
    calling a figure function directly (no prefetch) still works and is
    exactly the old serial behavior. *)

module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config
module Counters = Nomap_machine.Counters
module Timing = Nomap_machine.Timing
module Vm = Nomap_vm.Vm
module Table = Nomap_util.Table
module Stats = Nomap_util.Stats
module L = Nomap_lir.Lir
module Key = Scheduler.Key

let f2 = Table.fmt_f ~digits:2
let f1 = Table.fmt_f ~digits:1

let suite_avg_s suite = List.filter (fun b -> b.Registry.in_avg_s) (Registry.of_suite suite)

let both_suites = Registry.of_suite Registry.Sunspider @ Registry.of_suite Registry.Kraken
let both_avg_s = suite_avg_s Registry.Sunspider @ suite_avg_s Registry.Kraken

(* ------------------------------------------------------------------ *)
(* Figure 1: Shootout execution time across language implementations,
   normalized to C. *)

let fig1_langs =
  [ Runner.Lang_c; Runner.Lang_js; Runner.Lang_python; Runner.Lang_php; Runner.Lang_ruby ]

let fig1_plan () =
  List.concat_map
    (fun b -> List.map (fun lang -> Key.lang ~lang b) fig1_langs)
    (Registry.of_suite Registry.Shootout)

let fig1 () =
  let t =
    Table.create ~title:"Figure 1: Shootout execution time normalized to C (lower is better)"
      ~header:("benchmark" :: List.map Runner.language_name fig1_langs)
      ()
  in
  let ratios = List.map (fun _ -> ref []) fig1_langs in
  List.iter
    (fun b ->
      let c_cycles = (Scheduler.run_language ~lang:Runner.Lang_c b).Runner.cycles in
      let row =
        List.map2
          (fun lang acc ->
            let m = Scheduler.run_language ~lang b in
            let r = m.Runner.cycles /. c_cycles in
            acc := r :: !acc;
            f2 r)
          fig1_langs ratios
      in
      Table.add_row t (b.Registry.name :: row))
    (Registry.of_suite Registry.Shootout);
  Table.add_row t
    ("geomean" :: List.map (fun acc -> f2 (Stats.geomean !acc)) ratios);
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* Table I: speedup of each tier over the interpreter. *)

let table1_caps = [ Vm.Cap_baseline; Vm.Cap_dfg; Vm.Cap_ftl ]

let table1_plan () =
  List.concat_map
    (fun cap -> List.map (fun b -> Key.cap ~cap b) both_suites)
    (Vm.Cap_interp :: table1_caps)

let table1 () =
  let t =
    Table.create ~title:"Table I: Speedup of JavaScriptCore tiers over interpreter"
      ~header:
        [ "Highest tier"; "SunSpider AvgS"; "SunSpider AvgT"; "Kraken AvgS"; "Kraken AvgT" ]
      ()
  in
  let speedups cap suite members =
    List.map
      (fun b ->
        let interp = Scheduler.run_cap ~cap:Vm.Cap_interp b in
        let m = Scheduler.run_cap ~cap b in
        interp.Runner.cycles /. m.Runner.cycles)
      (List.filter members (Registry.of_suite suite))
  in
  List.iter
    (fun cap ->
      let ss_s = speedups cap Registry.Sunspider (fun b -> b.Registry.in_avg_s) in
      let ss_t = speedups cap Registry.Sunspider (fun _ -> true) in
      let k_s = speedups cap Registry.Kraken (fun b -> b.Registry.in_avg_s) in
      let k_t = speedups cap Registry.Kraken (fun _ -> true) in
      Table.add_row t
        [
          Vm.cap_name cap;
          Table.fmt_x (Stats.geomean ss_s);
          Table.fmt_x (Stats.geomean ss_t);
          Table.fmt_x (Stats.geomean k_s);
          Table.fmt_x (Stats.geomean k_t);
        ])
    table1_caps;
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* Figure 3: SMP-guarding checks per 100 dynamic instructions. *)

let check_cols = [ L.Bounds; L.Overflow; L.Type; L.Property ]

let fig3_plan suite () =
  List.map (fun b -> Key.arch ~arch:Config.Base b) (Registry.of_suite suite)

let fig3 suite =
  let figno = match suite with Registry.Sunspider -> "3(a)" | _ -> "3(b)" in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Figure %s: SMP-guarding checks per 100 instructions (%s, FTL/Base)"
           figno (Registry.suite_name suite))
      ~header:[ "benchmark"; "Bounds"; "Overflow"; "Type"; "Property"; "Other"; "Total" ]
      ()
  in
  let per_bench b =
    let m = Scheduler.run_arch ~arch:Config.Base b in
    let c = m.Runner.counters in
    let col k = Counters.checks_per_100 c k in
    let other = col L.Hole +. col L.Path in
    let cols = List.map col check_cols @ [ other ] in
    (cols, List.fold_left ( +. ) 0.0 cols)
  in
  let add_bench b =
    let cols, total = per_bench b in
    Table.add_row t ((b.Registry.id :: List.map f1 cols) @ [ f1 total ])
  in
  List.iter add_bench (suite_avg_s suite);
  let avg_row label benches =
    let data = List.map per_bench benches in
    let n = float_of_int (List.length data) in
    let sums =
      List.fold_left
        (fun acc (cols, _) -> List.map2 ( +. ) acc cols)
        [ 0.0; 0.0; 0.0; 0.0; 0.0 ] data
    in
    let avgs = List.map (fun x -> x /. n) sums in
    Table.add_row t ((label :: List.map f1 avgs) @ [ f1 (List.fold_left ( +. ) 0.0 avgs) ])
  in
  avg_row "AvgS" (suite_avg_s suite);
  avg_row "AvgT" (Registry.of_suite suite);
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* §III-A2: deoptimization frequency in steady state.  Per-benchmark sweeps
   are individual scheduler keys (so they parallelize and memoize); the
   table is a pure fold over the per-benchmark statistics. *)

let deopt_freq_plan ?(iterations = 300) () =
  List.map (fun b -> Key.deopt ~iterations b) both_suites

let deopt_freq ?(iterations = 300) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Deopt frequency (paper III-A2): %d iterations/benchmark, Base, full tier"
           iterations)
      ~header:[ "suite"; "FTL calls"; "deopts"; "deopts after iter 50" ]
      ()
  in
  let row suite =
    let ftl = ref 0 and deopts = ref 0 and late = ref 0 in
    List.iter
      (fun b ->
        let d = Scheduler.deopt_stats ~iterations b in
        ftl := !ftl + d.Runner.d_ftl_calls;
        deopts := !deopts + d.Runner.d_deopts;
        late := !late + d.Runner.d_late)
      (Registry.of_suite suite);
    Table.add_row t
      [ Registry.suite_name suite; string_of_int !ftl; string_of_int !deopts;
        string_of_int !late ]
  in
  row Registry.Sunspider;
  row Registry.Kraken;
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* Figures 8/9: dynamic instruction count, normalized to Base, broken into
   NoFTL / NoTM / TMUnopt / TMOpt. *)

let archs = Config.all

let arch_sweep_plan suite () =
  List.concat_map (fun b -> List.map (fun arch -> Key.arch ~arch b) archs)
    (Registry.of_suite suite)

let fig8_9 suite =
  let figno = match suite with Registry.Sunspider -> "8" | _ -> "9" in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure %s: normalized instruction count (%s); segments NoFTL/NoTM/TMUnopt/TMOpt"
           figno (Registry.suite_name suite))
      ~header:[ "benchmark"; "arch"; "norm"; "NoFTL"; "NoTM"; "TMUnopt"; "TMOpt" ]
      ()
  in
  let norm_of b arch =
    let base = Scheduler.run_arch ~arch:Config.Base b in
    let m = Scheduler.run_arch ~arch b in
    let bt = float_of_int (Counters.total_instrs base.Runner.counters) in
    let mt = float_of_int (Counters.total_instrs m.Runner.counters) in
    let norm = mt /. bt in
    let seg cat = Counters.category_fraction m.Runner.counters cat *. norm in
    (norm, List.map seg Counters.categories)
  in
  List.iter
    (fun b ->
      List.iter
        (fun arch ->
          let norm, segs = norm_of b arch in
          Table.add_row t
            ((b.Registry.id :: Config.name arch :: f2 norm :: List.map f2 segs)))
        archs)
    (suite_avg_s suite);
  let avg_rows label benches =
    List.iter
      (fun arch ->
        let norms = List.map (fun b -> fst (norm_of b arch)) benches in
        let avg = Stats.mean norms in
        let seg_avgs =
          List.map
            (fun cat ->
              Stats.mean
                (List.map
                   (fun b ->
                     let norm, _ = norm_of b arch in
                     let m = Scheduler.run_arch ~arch b in
                     Counters.category_fraction m.Runner.counters cat *. norm)
                   benches))
            Counters.categories
        in
        Table.add_row t
          ((label :: Config.name arch :: f2 avg :: List.map f2 seg_avgs)))
      archs
  in
  avg_rows "AvgS" (suite_avg_s suite);
  avg_rows "AvgT" (Registry.of_suite suite);
  let s = Table.render t in
  print_string s;
  s

(** Headline numbers: percent instruction reduction vs Base per arch. *)
let instr_reduction suite ~members =
  let benches = List.filter members (Registry.of_suite suite) in
  List.map
    (fun arch ->
      let reductions =
        List.map
          (fun b ->
            let base = Scheduler.run_arch ~arch:Config.Base b in
            let m = Scheduler.run_arch ~arch b in
            Stats.percent_reduction
              ~base:(float_of_int (Counters.total_instrs base.Runner.counters))
              (float_of_int (Counters.total_instrs m.Runner.counters)))
          benches
      in
      (arch, Stats.mean reductions))
    archs

(* ------------------------------------------------------------------ *)
(* Figures 10/11: execution time normalized to Base, TMTime/NonTMTime. *)

let fig10_11 suite =
  let figno = match suite with Registry.Sunspider -> "10" | _ -> "11" in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Figure %s: normalized execution time (%s); TMTime vs NonTMTime"
           figno (Registry.suite_name suite))
      ~header:[ "benchmark"; "arch"; "norm"; "TMTime"; "NonTMTime" ]
      ()
  in
  let norm_of b arch =
    let base = Scheduler.run_arch ~arch:Config.Base b in
    let m = Scheduler.run_arch ~arch b in
    let norm = m.Runner.cycles /. base.Runner.cycles in
    let tm_frac =
      if m.Runner.cycles > 0.0 then Counters.tx_cycles m.Runner.counters /. m.Runner.cycles
      else 0.0
    in
    (norm, norm *. tm_frac, norm *. (1.0 -. tm_frac))
  in
  List.iter
    (fun b ->
      List.iter
        (fun arch ->
          let norm, tm, nontm = norm_of b arch in
          Table.add_row t [ b.Registry.id; Config.name arch; f2 norm; f2 tm; f2 nontm ])
        archs)
    (suite_avg_s suite);
  let avg_rows label benches =
    List.iter
      (fun arch ->
        let data = List.map (fun b -> norm_of b arch) benches in
        let avg3 f = Stats.mean (List.map f data) in
        Table.add_row t
          [
            label; Config.name arch;
            f2 (avg3 (fun (n, _, _) -> n));
            f2 (avg3 (fun (_, tm, _) -> tm));
            f2 (avg3 (fun (_, _, nt) -> nt));
          ])
      archs
  in
  avg_rows "AvgS" (suite_avg_s suite);
  avg_rows "AvgT" (Registry.of_suite suite);
  let s = Table.render t in
  print_string s;
  s

let time_reduction suite ~members =
  let benches = List.filter members (Registry.of_suite suite) in
  List.map
    (fun arch ->
      let reductions =
        List.map
          (fun b ->
            let base = Scheduler.run_arch ~arch:Config.Base b in
            let m = Scheduler.run_arch ~arch b in
            Stats.percent_reduction ~base:base.Runner.cycles m.Runner.cycles)
          benches
      in
      (arch, Stats.mean reductions))
    archs

(* ------------------------------------------------------------------ *)
(* Table IV: transaction characterization. *)

let table4_plan () = List.map (fun b -> Key.arch ~arch:Config.NoMap_full b) both_avg_s

let table4 () =
  let t =
    Table.create
      ~title:"Table IV: transaction write footprint under NoMap (lightweight HTM)"
      ~header:
        [ "suite"; "avg write KB"; "max write KB"; "avg set ways"; "max set ways";
          "tx commits"; "tx aborts" ]
      ()
  in
  let row suite =
    let benches = suite_avg_s suite in
    let ms = List.map (fun b -> Scheduler.run_arch ~arch:Config.NoMap_full b) benches in
    let per_tx_avgs =
      List.filter_map
        (fun m ->
          let c = m.Runner.counters in
          if c.Counters.tx_samples > 0 then
            Some (Counters.tx_write_kb_sum c /. float_of_int c.Counters.tx_samples)
          else None)
        ms
    in
    let max_kb =
      List.fold_left (fun acc m -> Float.max acc (Counters.tx_write_kb_max m.Runner.counters)) 0.0 ms
    in
    let assoc_avgs =
      List.filter_map
        (fun m ->
          let c = m.Runner.counters in
          if c.Counters.tx_samples > 0 then
            Some (Counters.tx_assoc_sum c /. float_of_int c.Counters.tx_samples)
          else None)
        ms
    in
    let max_assoc =
      List.fold_left (fun acc m -> max acc m.Runner.counters.Counters.tx_assoc_max) 0 ms
    in
    let commits = List.fold_left (fun acc m -> acc + m.Runner.counters.Counters.tx_commits) 0 ms in
    let aborts = List.fold_left (fun acc m -> acc + m.Runner.counters.Counters.tx_aborts) 0 ms in
    Table.add_row t
      [
        Registry.suite_name suite ^ " AvgS";
        f2 (Stats.mean per_tx_avgs);
        f2 max_kb;
        f1 (Stats.mean assoc_avgs);
        string_of_int max_assoc;
        string_of_int commits;
        string_of_int aborts;
      ]
  in
  row Registry.Sunspider;
  row Registry.Kraken;
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* Appendix: lightweight-HTM overhead validation.  Run a small
   transaction-dense kernel and report the modeled per-transaction cost,
   checking it against the constants the paper assumes. *)

(* Registered under a unique id so it gets its own cache key space. *)
let validation_bench =
  {
    Registry.id = "VAL";
    name = "htm-validation";
    suite = Registry.Sunspider;
    source =
      {js|
function bench_inner(a) {
  var s = 0;
  for (var i = 0; i < a.length; i++) { s += a[i]; }
  return s;
}
function benchmark() {
  var a = [1, 2, 3, 4, 5, 6, 7, 8];
  var t = 0;
  for (var k = 0; k < 20; k++) { t += bench_inner(a); }
  return t;
}
|js};
    in_avg_s = false;
  }

let validate_htm_plan () =
  [
    Key.arch ~arch:Config.NoMap_full validation_bench;
    Key.arch ~arch:Config.NoMap_RTM validation_bench;
  ]

let validate_htm () =
  let rot = Scheduler.run_arch ~arch:Config.NoMap_full validation_bench in
  let rtm = Scheduler.run_arch ~arch:Config.NoMap_RTM validation_bench in
  let t =
    Table.create ~title:"Appendix: modeled HTM overheads (per committed transaction)"
      ~header:[ "platform"; "tx commits"; "modeled begin+end cycles"; "aborts" ]
      ()
  in
  Table.add_row t
    [
      "lightweight (ROT)";
      string_of_int rot.Runner.counters.Counters.tx_commits;
      f1 (Timing.xbegin_cycles +. Timing.xend_rot_cycles);
      string_of_int rot.Runner.counters.Counters.tx_aborts;
    ];
  Table.add_row t
    [
      "heavyweight (RTM)";
      string_of_int rtm.Runner.counters.Counters.tx_commits;
      f1 (Timing.xbegin_cycles +. Timing.xend_rtm_cycles);
      string_of_int rtm.Runner.counters.Counters.tx_aborts;
    ];
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* Ablation: which optimizer pass contributes how much of NoMap's win.
   Each variant disables one pass in the FTL pipeline (in both Base and
   NoMap runs, so the delta isolates what the transaction conversion lets
   that pass do). *)

let ablation_variants =
  let open Nomap_opt.Pipeline in
  [
    ("full", all_on);
    ("-licm", { all_on with licm = false });
    ("-promote", { all_on with promote = false });
    ("-gvn", { all_on with gvn = false });
    ("-elide", { all_on with elide = false });
    ("-typeprop", { all_on with typeprop = false });
  ]

let ablation_plan () =
  List.concat_map
    (fun (label, knobs) ->
      List.concat_map
        (fun arch -> List.map (fun b -> Key.ablation ~arch ~knobs ~label b) both_avg_s)
        [ Config.Base; Config.NoMap_full ])
    ablation_variants

let ablation () =
  let t =
    Table.create
      ~title:
        "Ablation: NoMap instruction reduction vs Base (AvgS) with one optimizer pass disabled"
      ~header:[ "pipeline"; "SunSpider AvgS"; "Kraken AvgS" ]
      ()
  in
  let reduction suite (label, knobs) =
    let benches = suite_avg_s suite in
    Stats.mean
      (List.map
         (fun b ->
           let base = Scheduler.run_ablation ~arch:Config.Base ~knobs ~label b in
           let m = Scheduler.run_ablation ~arch:Config.NoMap_full ~knobs ~label b in
           Stats.percent_reduction
             ~base:(float_of_int (Counters.total_instrs base.Runner.counters))
             (float_of_int (Counters.total_instrs m.Runner.counters)))
         benches)
  in
  List.iter
    (fun v ->
      Table.add_row t
        [
          fst v;
          Table.fmt_pct ~digits:1 (reduction Registry.Sunspider v);
          Table.fmt_pct ~digits:1 (reduction Registry.Kraken v);
        ])
    ablation_variants;
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* DESIGN.md §15: what the RTM capacity cliff costs a cold VM, and what the
   software fallback buys back.  The Runner's warmup/measure windows
   deliberately hide the one-time abort -> deopt -> Baseline-re-execute ->
   demote transient this experiment is about, so it runs fresh VMs
   directly: ten cold calls per kernel, total modeled cycles over the whole
   run.  The spray kernel writes twelve cache lines at a 4 KB stride — a
   12-way set conflict the byte-count placement estimator cannot see — so
   pure RTM burns three calls on capacity aborts and placement demotions
   while the hybrid upgrades to the redo log and keeps its check-elided
   code; the fit kernel stays inside one way per set, so the two
   architectures must agree to the cycle. *)

let hybrid_spray_src =
  "function benchmark() { var a = new Array(8192); for (var i = 0; i < 12; i++) { a[i * \
   512] = i; } var s = 0; for (var j = 0; j < 2000; j++) { s = (s + j * 7) & 0xFFFFF; } \
   return s + a[512]; } var it; var result = 0; for (it = 0; it < 10; it++) { result = \
   benchmark(); }"

let hybrid_fit_src =
  "function benchmark() { var a = new Array(64); for (var i = 0; i < 64; i++) { a[i] = i * \
   3; } return a[63]; } var it; var result = 0; for (it = 0; it < 10; it++) { result = \
   benchmark(); }"

let hybrid_cold_run ~arch src =
  let prog = Nomap_bytecode.Compile.compile_source src in
  let vm =
    Vm.create ~fuel:500_000_000
      ~thresholds:{ Vm.baseline_at = 1; dfg_at = 2; ftl_at = 4 }
      ~config:(Config.create arch) ~tier_cap:Vm.Cap_ftl prog
  in
  ignore (Vm.run_main vm);
  (Vm.counters vm, Vm.tx_demotions vm)

let hybrid_fallback_plan () = []

let hybrid_fallback () =
  let t =
    Table.create
      ~title:
        "Hybrid RTM+STM fallback (DESIGN.md 15): cold VM, 10 calls/kernel, total modeled \
         cycles"
      ~header:
        [
          "kernel"; "arch"; "cycles"; "commits"; "aborts"; "stm commits"; "stm cycles";
          "deopts"; "demotions";
        ]
      ()
  in
  List.iter
    (fun (kernel, src) ->
      List.iter
        (fun arch ->
          let c, demotions = hybrid_cold_run ~arch src in
          Table.add_row t
            [
              kernel;
              Config.name arch;
              Printf.sprintf "%.0f" (Counters.cycles c);
              string_of_int c.Counters.tx_commits;
              string_of_int c.Counters.tx_aborts;
              string_of_int c.Counters.stm_commits;
              Printf.sprintf "%.0f" (Counters.stm_cycles c);
              string_of_int c.Counters.deopts;
              string_of_int demotions;
            ])
        [ Config.NoMap_RTM; Config.NoMap_RTM_STM ])
    [ ("spray (12-way set conflict)", hybrid_spray_src); ("fit (1 way/set)", hybrid_fit_src) ];
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* DESIGN.md §16: multi-agent shared-segment contention.  Three kernels —
   every agent hammering one word (true sharing), each agent on its own
   word inside one 64-byte line (false sharing: distinct data, same
   conflict-detection granule), and each agent on its own line (sharded) —
   swept over agent counts under NoMap_RTM at the full tier, so the
   increments run inside real hardware transactions and cross-agent
   conflicts surface as [Htm.Conflict] aborts.  The headline claims: abort
   rate climbs with agent count on the contended kernels, stays ~zero
   sharded, and the applied-increment total is exact everywhere (aborted
   transactions drop their redo buffer; the retry re-applies exactly
   once).  Direct-run like [hybrid_fallback] — the multi-agent registry is
   its own execution world, not a scheduler key — and memoized, so the
   bench harness's warm re-renders don't respawn domains. *)

module Agents = Nomap_agents.Agents
module Interleave = Nomap_shared.Interleave

let contention_agent_counts = [ 1; 2; 4; 8 ]

(* Eight words per 64-byte line (Segment.word_bytes = 8): stride 1 keeps
   every agent in line 0; stride 8 gives each agent its own line. *)
let contention_kernels =
  [
    ("shared-counter", fun _ -> 0);
    ("false-sharing", fun i -> i);
    ("sharded", fun i -> i * 8);
  ]

(* Two adds per call keeps the transaction window short — a handful of
   scheduler turns — so the commit-vs-doomed odds genuinely depend on how
   many peers can interleave, and the abort rate climbs with agent count
   instead of saturating at 100% immediately.  120 calls leaves ~100 per
   agent above the FTL threshold: enough attempts for a stable rate. *)
let contention_src idx =
  Printf.sprintf
    "function bench() { var i; for (i = 0; i < 2; i++) { Atomics.add(%d, 1); } return \
     Atomics.load(%d); } var it; var result = 0; for (it = 0; it < 120; it++) { result = \
     bench(); }"
    idx idx

type contention_row = {
  ct_kernel : string;
  ct_agents : int;
  ct_commits : int;  (** tx commits summed over the agents' VMs *)
  ct_conflicts : int;  (** registry-wide [Htm.Conflict] aborts *)
  ct_abort_pct : float;  (** conflicts / (commits + conflicts) *)
  ct_adds : int;  (** increments applied (segment sum) — must be exact *)
}

let contention_rows_uncached () =
  List.concat_map
    (fun (kernel, idx_of) ->
      List.map
        (fun n ->
          let progs =
            Array.init n (fun i ->
                Nomap_bytecode.Compile.compile_source (contention_src (idx_of i)))
          in
          let r =
            Agents.run
              ~policy:(Interleave.Seeded 7)
              ~config:(Config.create Config.NoMap_RTM) ~tier_cap:Vm.Cap_ftl progs
          in
          Array.iter
            (fun (o : Agents.outcome) ->
              match o.Agents.result with
              | Ok _ -> ()
              | Error e -> failwith (Printf.sprintf "contention %s/%d: %s" kernel n e))
            r.Agents.outcomes;
          let commits =
            Array.fold_left
              (fun acc (o : Agents.outcome) ->
                match o.Agents.vm with
                | Some vm -> acc + (Vm.counters vm).Counters.tx_commits
                | None -> acc)
              0 r.Agents.outcomes
          in
          let conflicts = r.Agents.conflicts in
          let attempts = commits + conflicts in
          {
            ct_kernel = kernel;
            ct_agents = n;
            ct_commits = commits;
            ct_conflicts = conflicts;
            ct_abort_pct =
              (if attempts = 0 then 0.0
               else 100.0 *. float_of_int conflicts /. float_of_int attempts);
            ct_adds = Array.fold_left ( + ) 0 r.Agents.segment_data;
          })
        contention_agent_counts)
    contention_kernels

let contention_rows : unit -> contention_row list =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some rows -> rows
    | None ->
      let rows = contention_rows_uncached () in
      cache := Some rows;
      rows

let contention_plan () = []

let contention () =
  let t =
    Table.create
      ~title:
        "Contention (DESIGN.md 16): agents x kernel under NoMap_RTM/FTL, conflict abort \
         rate and exact applied increments"
      ~header:
        [ "kernel"; "agents"; "tx commits"; "conflict aborts"; "abort %"; "adds applied" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.ct_kernel;
          string_of_int r.ct_agents;
          string_of_int r.ct_commits;
          string_of_int r.ct_conflicts;
          f1 r.ct_abort_pct;
          string_of_int r.ct_adds;
        ])
    (contention_rows ());
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)

let headline_plan () =
  List.concat_map (fun b -> List.map (fun arch -> Key.arch ~arch b) archs) both_suites

let headline () =
  let t =
    Table.create
      ~title:"Headline results: average reduction vs Base (paper: SunSpider 14.2%/16.7% instr/time AvgS; Kraken 11.5%/8.9%)"
      ~header:[ "metric"; "arch"; "SunSpider AvgS"; "SunSpider AvgT"; "Kraken AvgS"; "Kraken AvgT" ]
      ()
  in
  let pct = Table.fmt_pct ~digits:1 in
  let add metric reductions_of =
    List.iter
      (fun arch ->
        if arch <> Config.Base then begin
          let get suite members =
            List.assoc arch (reductions_of suite ~members)
          in
          Table.add_row t
            [
              metric;
              Config.name arch;
              pct (get Registry.Sunspider (fun b -> b.Registry.in_avg_s));
              pct (get Registry.Sunspider (fun _ -> true));
              pct (get Registry.Kraken (fun b -> b.Registry.in_avg_s));
              pct (get Registry.Kraken (fun _ -> true));
            ]
        end)
      archs
  in
  add "instructions" instr_reduction;
  add "time" time_reduction;
  let s = Table.render t in
  print_string s;
  s

(* ------------------------------------------------------------------ *)
(* The experiment catalogue: plan + render per paper artifact. *)

type experiment = {
  name : string;
  plan : unit -> Key.t list;
  render : unit -> string;
}

let experiments =
  [
    { name = "fig1"; plan = fig1_plan; render = fig1 };
    { name = "table1"; plan = table1_plan; render = table1 };
    {
      name = "fig3a";
      plan = fig3_plan Registry.Sunspider;
      render = (fun () -> fig3 Registry.Sunspider);
    };
    {
      name = "fig3b";
      plan = fig3_plan Registry.Kraken;
      render = (fun () -> fig3 Registry.Kraken);
    };
    {
      name = "deopt_freq";
      plan = (fun () -> deopt_freq_plan ());
      render = (fun () -> deopt_freq ());
    };
    {
      name = "fig8";
      plan = arch_sweep_plan Registry.Sunspider;
      render = (fun () -> fig8_9 Registry.Sunspider);
    };
    {
      name = "fig9";
      plan = arch_sweep_plan Registry.Kraken;
      render = (fun () -> fig8_9 Registry.Kraken);
    };
    {
      name = "fig10";
      plan = arch_sweep_plan Registry.Sunspider;
      render = (fun () -> fig10_11 Registry.Sunspider);
    };
    {
      name = "fig11";
      plan = arch_sweep_plan Registry.Kraken;
      render = (fun () -> fig10_11 Registry.Kraken);
    };
    { name = "table4"; plan = table4_plan; render = table4 };
    { name = "validate_htm"; plan = validate_htm_plan; render = validate_htm };
    { name = "hybrid_fallback"; plan = hybrid_fallback_plan; render = hybrid_fallback };
    { name = "contention"; plan = contention_plan; render = contention };
    { name = "ablation"; plan = ablation_plan; render = ablation };
    { name = "headline"; plan = headline_plan; render = headline };
  ]

let find name = List.find_opt (fun e -> e.name = name) experiments

(** Union the plans of [names], execute them on [jobs] domains, then render
    each experiment in order; returns the concatenated table text. *)
let run ?jobs names =
  let jobs = match jobs with Some j -> j | None -> Scheduler.default_jobs () in
  let exps =
    List.map
      (fun n -> match find n with Some e -> e | None -> invalid_arg ("unknown experiment: " ^ n))
      names
  in
  let plan = List.concat_map (fun e -> e.plan ()) exps in
  ignore (Scheduler.prefetch ~jobs plan);
  String.concat "\n" (List.map (fun e -> e.render ()) exps)

let all_names = List.map (fun e -> e.name) experiments

let run_all ?jobs () = run ?jobs all_names
