(** Measurement scheduler: plan keys in, parallel execution across OCaml 5
    domains, mutex-guarded result store out.  See scheduler.mli and
    DESIGN.md §10 for the architecture and the domain-safety argument. *)

module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config
module Vm = Nomap_vm.Vm

module Key = struct
  type t =
    | Arch of {
        bench : Registry.benchmark;
        arch : Config.arch;
        warmup : int;
        measure : int;
      }
    | Ablation of {
        bench : Registry.benchmark;
        arch : Config.arch;
        knobs : Nomap_opt.Pipeline.knobs;
        label : string;
        warmup : int;
        measure : int;
      }
    | Cap of {
        bench : Registry.benchmark;
        cap : Vm.tier_cap;
        warmup : int;
        measure : int;
      }
    | Lang of {
        bench : Registry.benchmark;
        lang : Runner.language;
        warmup : int;
        measure : int;
      }
    | Deopt of { bench : Registry.benchmark; iterations : int }

  let arch ?(warmup = Runner.default_warmup) ?(measure = Runner.default_measure) ~arch bench =
    Arch { bench; arch; warmup; measure }

  let ablation ?(warmup = Runner.default_warmup) ?(measure = Runner.default_measure) ~arch
      ~knobs ~label bench =
    Ablation { bench; arch; knobs; label; warmup; measure }

  let cap ?(warmup = Runner.default_warmup) ?(measure = Runner.default_measure) ~cap bench =
    Cap { bench; cap; warmup; measure }

  let lang ?(warmup = Runner.default_lang_warmup) ?(measure = Runner.default_lang_measure)
      ~lang bench =
    match lang with
    | Runner.Lang_js ->
      (* Share the Base-architecture store entry (see Runner.measure_language). *)
      Arch
        {
          bench;
          arch = Config.Base;
          warmup = Runner.default_warmup;
          measure = Runner.default_measure;
        }
    | _ -> Lang { bench; lang; warmup; measure }

  let deopt ~iterations bench = Deopt { bench; iterations }

  (* The id formats are the old Runner.cache memo keys, kept verbatim so the
     store's key space is a drop-in replacement. *)
  let id = function
    | Arch { bench; arch; warmup; measure } ->
      Printf.sprintf "%s#%s@w%d+m%d" bench.Registry.id (Config.name arch) warmup measure
    | Ablation { bench; arch; label; warmup; measure; knobs = _ } ->
      Printf.sprintf "%s#ablate:%s:%s@w%d+m%d" bench.Registry.id (Config.name arch) label
        warmup measure
    | Cap { bench; cap; warmup; measure } ->
      Printf.sprintf "%s#cap:%s@w%d+m%d" bench.Registry.id (Vm.cap_name cap) warmup measure
    | Lang { bench; lang; warmup; measure } ->
      Printf.sprintf "%s#lang:%s@w%d+m%d" bench.Registry.id (Runner.language_name lang)
        warmup measure
    | Deopt { bench; iterations } ->
      Printf.sprintf "%s#deopt@i%d" bench.Registry.id iterations
end

type outcome =
  | Measurement of Runner.measurement
  | Deopt_stats of Runner.deopt_stats

let exec_count = Atomic.make 0
let executed () = Atomic.get exec_count

let exec key =
  Atomic.incr exec_count;
  match key with
  | Key.Arch { bench; arch; warmup; measure } ->
    Measurement (Runner.measure_arch ~warmup ~measure ~arch bench)
  | Key.Ablation { bench; arch; knobs; label; warmup; measure } ->
    Measurement (Runner.measure_ablation ~warmup ~measure ~arch ~knobs ~label bench)
  | Key.Cap { bench; cap; warmup; measure } ->
    Measurement (Runner.measure_cap ~warmup ~measure ~cap bench)
  | Key.Lang { bench; lang; warmup; measure } ->
    Measurement (Runner.measure_language ~warmup ~measure ~lang bench)
  | Key.Deopt { bench; iterations } -> Deopt_stats (Runner.measure_deopt ~iterations bench)

(* ------------------------------------------------------------------ *)
(* The store.  A single process-global table guarded by a mutex; values are
   computed *outside* the lock (a measurement takes seconds, the lock is
   held for a hash-table probe).  If two domains race to compute the same
   key — only possible when a render misses the prefetch plan — the first
   writer wins, preserving the memo guarantee that identical requests
   return the physically identical measurement. *)

let store : (string, outcome) Hashtbl.t = Hashtbl.create 256
let store_lock = Mutex.create ()

let get key =
  let id = Key.id key in
  match Mutex.protect store_lock (fun () -> Hashtbl.find_opt store id) with
  | Some o -> o
  | None ->
    let o = exec key in
    Mutex.protect store_lock (fun () ->
        match Hashtbl.find_opt store id with
        | Some o' -> o'
        | None ->
          Hashtbl.add store id o;
          o)

let reset () = Mutex.protect store_lock (fun () -> Hashtbl.reset store)

(* ------------------------------------------------------------------ *)
(* Parallel execution *)

let default_jobs () = Domain.recommended_domain_count ()

let parallel_map (type a b) ~jobs (f : a -> b) (items : a list) : b list =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results : b option array = Array.make n None in
    let next = Atomic.make 0 in
    let failure : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
      done
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> invalid_arg "parallel_map: hole") results)
  end

let prefetch ~jobs keys =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let todo =
    List.filter
      (fun k ->
        let id = Key.id k in
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          Mutex.protect store_lock (fun () -> not (Hashtbl.mem store id))
        end)
      keys
  in
  ignore (parallel_map ~jobs (fun k -> ignore (get k)) todo);
  List.length todo

(* ------------------------------------------------------------------ *)
(* Memoized conveniences *)

let measurement key =
  match get key with
  | Measurement m -> m
  | Deopt_stats _ -> invalid_arg ("not a measurement key: " ^ Key.id key)

let run_arch ?warmup ?measure ~arch bench =
  measurement (Key.arch ?warmup ?measure ~arch bench)

let run_ablation ?warmup ?measure ~arch ~knobs ~label bench =
  measurement (Key.ablation ?warmup ?measure ~arch ~knobs ~label bench)

let run_cap ?warmup ?measure ~cap bench = measurement (Key.cap ?warmup ?measure ~cap bench)

let run_language ?warmup ?measure ~lang bench =
  measurement (Key.lang ?warmup ?measure ~lang bench)

let deopt_stats ~iterations bench =
  match get (Key.deopt ~iterations bench) with
  | Deopt_stats d -> d
  | Measurement _ -> assert false
