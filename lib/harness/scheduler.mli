(** Measurement scheduler: the "execute" layer of the plan/execute/render
    harness (DESIGN.md §10).

    Experiments declare the measurements they need as pure-data {!Key.t}
    values; {!prefetch} unions and dedups those keys and executes them on a
    pool of OCaml 5 domains, collecting results into a process-global
    mutex-guarded store.  Render code then reads measurements back through
    the memoized accessors ({!run_arch} & friends), which also compute on a
    miss so every figure function still works standalone and serially. *)

module Registry = Nomap_workloads.Registry
module Config = Nomap_nomap.Config

module Key : sig
  (** One schedulable measurement, as pure data.  Two keys with the same
      {!id} denote the same measurement and are executed once. *)
  type t =
    | Arch of {
        bench : Registry.benchmark;
        arch : Config.arch;
        warmup : int;
        measure : int;
      }
    | Ablation of {
        bench : Registry.benchmark;
        arch : Config.arch;
        knobs : Nomap_opt.Pipeline.knobs;
        label : string;
        warmup : int;
        measure : int;
      }
    | Cap of {
        bench : Registry.benchmark;
        cap : Nomap_vm.Vm.tier_cap;
        warmup : int;
        measure : int;
      }
    | Lang of {
        bench : Registry.benchmark;
        lang : Runner.language;
        warmup : int;
        measure : int;
      }
    | Deopt of { bench : Registry.benchmark; iterations : int }

  val arch : ?warmup:int -> ?measure:int -> arch:Config.arch -> Registry.benchmark -> t

  val ablation :
    ?warmup:int ->
    ?measure:int ->
    arch:Config.arch ->
    knobs:Nomap_opt.Pipeline.knobs ->
    label:string ->
    Registry.benchmark ->
    t

  val cap : ?warmup:int -> ?measure:int -> cap:Nomap_vm.Vm.tier_cap -> Registry.benchmark -> t

  (** [lang ~lang b] normalizes [Lang_js] to the default-protocol
      Base-architecture {!Arch} key so Figure 1 shares the store entry with
      Figures 3/8-11 (see the note on [Runner.measure_language]). *)
  val lang : ?warmup:int -> ?measure:int -> lang:Runner.language -> Registry.benchmark -> t

  val deopt : iterations:int -> Registry.benchmark -> t

  (** Stable identity used for store lookup and dedup. *)
  val id : t -> string
end

(** Result of executing one key. *)
type outcome =
  | Measurement of Runner.measurement
  | Deopt_stats of Runner.deopt_stats

(** Execute a key, bypassing the store (no memoization). *)
val exec : Key.t -> outcome

(** Memoized execute-through-the-store: returns the stored outcome,
    computing and storing it on a miss.  Safe to call from any domain. *)
val get : Key.t -> outcome

(** Number of key executions performed so far (for dedup tests). *)
val executed : unit -> int

(** Drop every stored outcome (cold-start for benchmarking). *)
val reset : unit -> unit

(** [Domain.recommended_domain_count ()] — the default for [-j]. *)
val default_jobs : unit -> int

(** [parallel_map ~jobs f xs] maps [f] over [xs] on up to [jobs] domains,
    preserving order.  [jobs <= 1] degenerates to [List.map].  If any
    application raises, remaining work is abandoned and the first exception
    (by completion order) is re-raised in the calling domain with its
    backtrace — a worker raising [Runner.Checksum_mismatch] fails the whole
    call rather than hanging or vanishing. *)
val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [prefetch ~jobs keys] unions and dedups [keys], drops those already in
    the store, and executes the rest on up to [jobs] domains.  Returns the
    number of keys actually executed.  Worker exceptions propagate to the
    caller (see {!parallel_map}). *)
val prefetch : jobs:int -> Key.t list -> int

(** Memoized conveniences over {!get} — drop-in replacements for the old
    [Runner.run_*] entry points.  Identical arguments return the physically
    identical measurement. *)

val run_arch :
  ?warmup:int -> ?measure:int -> arch:Config.arch -> Registry.benchmark -> Runner.measurement

val run_ablation :
  ?warmup:int ->
  ?measure:int ->
  arch:Config.arch ->
  knobs:Nomap_opt.Pipeline.knobs ->
  label:string ->
  Registry.benchmark ->
  Runner.measurement

val run_cap :
  ?warmup:int -> ?measure:int -> cap:Nomap_vm.Vm.tier_cap -> Registry.benchmark ->
  Runner.measurement

val run_language :
  ?warmup:int -> ?measure:int -> lang:Runner.language -> Registry.benchmark ->
  Runner.measurement

val deopt_stats : iterations:int -> Registry.benchmark -> Runner.deopt_stats
