(** A program instantiated against a heap: materialized constants, global
    storage, and the execution watchdog.  Shared by every execution engine
    (interpreter, baseline, optimized machine code). *)

open Nomap_runtime

type t = {
  prog : Nomap_bytecode.Opcode.program;
  heap : Heap.t;
  globals : Value.t array;
  consts : Value.t array array;  (** per function, materialized *)
  header_masks : bool array array;
      (** per function, [mask.(pc)] iff [pc] is a loop header — O(1) form of
          [List.mem pc f.loop_headers] for the interpreter's back-edge test *)
  mutable fuel : int;  (** remaining bytecode ops / LIR instrs; guards runaways *)
}

exception Out_of_fuel

let materialize_const heap (c : Nomap_bytecode.Opcode.const) : Value.t =
  match c with
  | Cnum f -> Value.number f
  | Cstr s -> Heap.str heap s
  | Cbool b -> Value.Bool b
  | Cnull -> Value.Null
  | Cundef -> Value.Undef
  | Cfun fid -> Value.Fun fid

let create ?(seed = 42) ?(fuel = max_int) (prog : Nomap_bytecode.Opcode.program) =
  let heap = Heap.create ~seed () in
  {
    prog;
    heap;
    globals = Array.make (max 1 (Array.length prog.globals)) Value.Undef;
    consts =
      Array.map (fun (f : Nomap_bytecode.Opcode.func) ->
          Array.map (materialize_const heap) f.consts)
        prog.funcs;
    header_masks =
      Array.map (fun (f : Nomap_bytecode.Opcode.func) ->
          let m = Array.make (max 1 (Array.length f.code)) false in
          List.iter (fun pc -> if pc >= 0 && pc < Array.length m then m.(pc) <- true)
            f.loop_headers;
          m)
        prog.funcs;
    fuel;
  }

let burn t n =
  t.fuel <- t.fuel - n;
  if t.fuel < 0 then raise Out_of_fuel

let func t fid = t.prog.funcs.(fid)
