(** The bytecode semantic engine, serving as both the Interpreter tier and
    the Baseline tier.

    Both tiers execute identical semantics; they differ in:
    - cost: the Interpreter charges a dispatch overhead plus generic runtime
      work per op; Baseline has no dispatch and uses inline caches, so its
      dynamic cost depends on whether the fast path hit;
    - profiling: Baseline records type/shape feedback and loop trip counts
      for the optimizing tiers (JavaScriptCore does the same).

    The engine is resumable at an arbitrary pc with a prefilled register
    frame — that is exactly what an OSR exit from optimized code needs. *)

open Nomap_runtime
module Opcode = Nomap_bytecode.Opcode
module Feedback = Nomap_profile.Feedback

exception Runtime_error of string

type mode = Interp_tier | Baseline_tier | Native_tier
(** [Native_tier] charges what an ahead-of-time C compilation of the same
    program would: no dispatch, no boxing, no checks.  It provides Figure
    1's "C" reference bound. *)

(** Services the enclosing VM provides to the engine. *)
type env = {
  instance : Instance.t;
  mode : mode;
  profile : Feedback.t option;  (** present in Baseline mode *)
  charge : int -> unit;  (** account simulated machine instructions *)
  call : fid:int -> this:Value.t -> args:Value.t list -> Value.t;
}

(* ------------------------------------------------------------------ *)
(* Cost model (simulated x86-64 instruction counts per bytecode op).
   Interpreter ops pay [dispatch] plus generic-path work; Baseline pays
   IC-aware dynamic costs.  These constants position Table I; everything
   downstream is measured, not assumed. *)

let dispatch = 7

let interp_cost (op : Opcode.op) =
  dispatch
  +
  match op with
  | Load_const _ | Move _ | Load_global _ | Store_global _ -> 2
  | Binop _ -> 20
  | Unop _ -> 12
  | Get_prop _ -> 26
  | Set_prop _ -> 28
  | Get_elem _ -> 22
  | Set_elem _ -> 26
  | Get_length _ -> 12
  | New_object _ | New_array _ -> 36
  | Call _ | New_call _ -> 34
  | Call_method _ -> 38
  | Call_intrinsic _ -> 9
  | Jump _ | Jump_if_false _ | Jump_if_true _ -> 3
  | Return _ -> 5

(* Baseline costs: cheap when the inline cache / int fast path hits. *)
let baseline_fast = function
  | Opcode.Load_const _ | Opcode.Move _ | Opcode.Load_global _ | Opcode.Store_global _ -> 3
  | Opcode.Binop _ -> 9  (* type-check both operands + int op + overflow check *)
  | Opcode.Unop _ -> 7
  | Opcode.Get_prop _ -> 9  (* shape compare + slot load + value profiling *)
  | Opcode.Set_prop _ -> 10
  | Opcode.Get_elem _ -> 12  (* type + bounds + hole checks + load *)
  | Opcode.Set_elem _ -> 13
  | Opcode.Get_length _ -> 7
  | Opcode.New_object _ | Opcode.New_array _ -> 32
  | Opcode.Call _ | Opcode.New_call _ -> 24
  | Opcode.Call_method _ -> 28
  | Opcode.Call_intrinsic _ -> 7
  | Opcode.Jump _ | Opcode.Jump_if_false _ | Opcode.Jump_if_true _ -> 3
  | Opcode.Return _ -> 5

let baseline_slow op = interp_cost op + 6  (* IC miss: dispatch to runtime *)

(* What a C compiler would emit for the same operation. *)
let native_cost (op : Opcode.op) =
  match op with
  | Load_const _ | Move _ | Load_global _ | Store_global _ -> 1
  | Binop _ | Unop _ -> 1
  | Get_prop _ | Set_prop _ -> 1  (* struct field *)
  | Get_elem _ | Set_elem _ -> 2
  | Get_length _ -> 1
  | New_object _ | New_array _ -> 10
  | Call _ | New_call _ -> 3
  | Call_method _ -> 4
  | Call_intrinsic _ -> 2
  | Jump _ | Jump_if_false _ | Jump_if_true _ -> 1
  | Return _ -> 2

(* ------------------------------------------------------------------ *)

let truthy = Value.truthy

let is_int = function Value.Int _ -> true | _ -> false

let both_int a b = is_int a && is_int b

(* A Binop fast path exists when both operands are ints (arith/cmp) — the
   Baseline IC handles that inline. *)
let binop_fast (op : Nomap_jsir.Ast.binop) a b =
  match op with
  | Add | Sub | Mul | Lt | Le | Gt | Ge | Eq | Ne -> both_int a b
  | Band | Bor | Bxor | Shl | Shr | Ushr -> both_int a b
  | Div | Mod -> false

let shape_id (o : Value.obj) = o.Value.shape.Shape.id

(** Execute function [fid] from [entry_pc] with the given register frame.
    [regs] must have length [>= f.nregs]; on a fresh call the caller seeds
    this/params.  Returns the function result. *)
let run_from env ~fid ~entry_pc ~(regs : Value.t array) : Value.t =
  let inst = env.instance in
  let heap = inst.Instance.heap in
  let f = Instance.func inst fid in
  let consts = inst.Instance.consts.(fid) in
  let fp =
    match env.profile with
    | Some p -> Some (Feedback.func_profile p fid)
    | None -> None
  in
  (* Prefetched profiling state: [sites.(pc)] replaces the option-returning
     site lookup (which allocated a [Some] per profiled op), and the header
     bitmask replaces a [List.mem] per control-flow edge. *)
  let profiling = fp <> None in
  let sites = match fp with Some p -> p.Feedback.sites | None -> [||] in
  let headers = inst.Instance.header_masks.(fid) in
  let is_header pc = headers.(pc) in
  let note_edge ~from ~target =
    match fp with
    | Some fp when is_header target ->
      if from >= target then Feedback.record_loop_iteration fp target
      else Feedback.record_loop_entry fp target
    | _ -> ()
  in
  let charge_op op fast =
    match env.mode with
    | Interp_tier -> env.charge (interp_cost op)
    | Baseline_tier -> env.charge (if fast then baseline_fast op else baseline_slow op)
    | Native_tier -> env.charge (native_cost op)
  in
  let result = ref Value.Undef in
  let pc = ref entry_pc in
  let running = ref true in
  note_edge ~from:(-1) ~target:entry_pc;
  while !running do
    let cur = !pc in
    Instance.burn inst 1;
    let op = f.Opcode.code.(cur) in
    let next = ref (cur + 1) in
    (match op with
    | Load_const (d, i) ->
      charge_op op true;
      regs.(d) <- consts.(i)
    | Move (d, s) ->
      charge_op op true;
      regs.(d) <- regs.(s)
    | Load_global (d, g) ->
      charge_op op true;
      regs.(d) <- inst.Instance.globals.(g)
    | Store_global (g, s) ->
      charge_op op true;
      inst.Instance.globals.(g) <- regs.(s)
    | Binop (bop, d, a, b) ->
      let va = regs.(a) and vb = regs.(b) in
      let fast = binop_fast bop va vb in
      charge_op op fast;
      let r = Ops.apply_binop heap bop va vb in
      (if profiling then
        let s = sites.(cur) in
        Feedback.record_class s va;
        Feedback.record_class s vb;
        Feedback.record_result s r;
        (* Int operands producing a double means int32 overflow here. *)
        if both_int va vb && (match r with Value.Num _ -> true | _ -> false) then
          Feedback.record_overflow s);
      regs.(d) <- r
    | Unop (uop, d, a) ->
      let va = regs.(a) in
      charge_op op (is_int va);
      (if profiling then
        let s = sites.(cur) in Feedback.record_class s va);
      regs.(d) <- Ops.apply_unop uop va
    | Get_prop (d, o, name) -> (
      match regs.(o) with
      | Value.Obj obj ->
        let sh = obj.Value.shape in
        (match Shape.lookup heap.Heap.shapes sh name with
        | Some slot ->
          charge_op op true;
          (if profiling then
            let s = sites.(cur) in Feedback.record_shape s sh.Shape.id (Feedback.Load_slot slot));
          regs.(d) <- Heap.load_slot heap obj slot
        | None ->
          charge_op op false;
          regs.(d) <- Value.Undef)
      | v ->
        (* Property reads on non-objects: only .length-bearing types give
           anything; everything else is undefined. *)
        charge_op op false;
        (if profiling then
          let s = sites.(cur) in Feedback.record_class s v);
        regs.(d) <- Value.Undef)
    | Set_prop (o, name, v) -> (
      match regs.(o) with
      | Value.Obj obj ->
        let sh = obj.Value.shape in
        let existed = Shape.lookup heap.Heap.shapes sh name in
        charge_op op (existed <> None);
        Heap.set_prop heap obj name regs.(v);
        (if profiling then
          let s = sites.(cur) in (
          match existed with
          | Some slot -> Feedback.record_shape s sh.Shape.id (Feedback.Store_slot slot)
          | None ->
            let new_sh = obj.Value.shape in
            let slot =
              match Shape.lookup heap.Heap.shapes new_sh name with
              | Some sl -> sl
              | None -> assert false
            in
            Feedback.record_shape s sh.Shape.id
              (Feedback.Transition (new_sh.Shape.id, slot))))
      | v' ->
        raise (Runtime_error ("cannot set property on " ^ Value.type_name v')))
    | Get_elem (d, a, i) -> (
      let va = regs.(a) and vi = regs.(i) in
      match (va, vi) with
      | Value.Arr arr, Value.Int idx ->
        let oob = idx < 0 || idx >= arr.Value.alen in
        let v = Heap.get_elem heap arr idx in
        let hole = (not oob) && Heap.load_elem heap arr idx = Value.Hole in
        charge_op op (not (oob || hole));
        (if profiling then
          let s = sites.(cur) in
          Feedback.record_class s va;
          Feedback.record_class s vi;
          if oob then Feedback.record_oob s;
          if hole then Feedback.record_hole s;
          Feedback.record_result s v);
        regs.(d) <- v
      | Value.Arr arr, _ ->
        charge_op op false;
        (if profiling then
          let s = sites.(cur) in
          Feedback.record_class s va;
          Feedback.record_class s vi);
        let idx = Value.to_int32 vi in
        regs.(d) <-
          (if float_of_int idx = Value.to_number vi then Heap.get_elem heap arr idx
           else Value.Undef)
      | Value.Str str, Value.Int idx ->
        charge_op op false;
        (if profiling then
          let s = sites.(cur) in Feedback.record_class s va);
        let data = str.Value.sdata in
        regs.(d) <-
          (if idx >= 0 && idx < String.length data then
             Heap.str heap (String.make 1 data.[idx])
           else Value.Undef)
      | v, _ -> raise (Runtime_error ("cannot index " ^ Value.type_name v)))
    | Set_elem (a, i, v) -> (
      let va = regs.(a) and vi = regs.(i) in
      match (va, vi) with
      | Value.Arr arr, Value.Int idx ->
        let elongates = idx >= arr.Value.alen in
        charge_op op (not elongates);
        (if profiling then
          let s = sites.(cur) in
          Feedback.record_class s va;
          Feedback.record_class s vi;
          if elongates then Feedback.record_elongation s);
        Heap.set_elem heap arr idx regs.(v)
      | Value.Arr arr, _ ->
        charge_op op false;
        let idx = Value.to_int32 vi in
        if float_of_int idx = Value.to_number vi then Heap.set_elem heap arr idx regs.(v)
      | v', _ -> raise (Runtime_error ("cannot index-assign " ^ Value.type_name v')))
    | Get_length (d, x) -> (
      let vx = regs.(x) in
      (if profiling then
        let s = sites.(cur) in Feedback.record_class s vx);
      match Ops.js_length vx with
      | Some v ->
        charge_op op true;
        regs.(d) <- v
      | None -> (
        match vx with
        | Value.Obj obj ->
          charge_op op false;
          regs.(d) <- Heap.get_prop heap obj "length"
        | v -> raise (Runtime_error ("no length on " ^ Value.type_name v))))
    | New_object d ->
      charge_op op true;
      regs.(d) <- Value.Obj (Heap.alloc_object heap)
    | New_array (d, n) ->
      charge_op op true;
      let len = Value.to_int32 regs.(n) in
      if len < 0 then raise (Runtime_error "negative array length");
      regs.(d) <- Value.Arr (Heap.alloc_array heap len)
    | Call (d, callee, args) ->
      charge_op op true;
      let argv = List.map (fun r -> regs.(r)) args in
      regs.(d) <- env.call ~fid:callee ~this:Value.Undef ~args:argv
    | New_call (d, callee, args) ->
      charge_op op true;
      let obj = Value.Obj (Heap.alloc_object heap) in
      let argv = List.map (fun r -> regs.(r)) args in
      let r = env.call ~fid:callee ~this:obj ~args:argv in
      regs.(d) <- (match r with Value.Undef -> obj | v -> v)
    | Call_method (d, recv, name, args) -> (
      let vrecv = regs.(recv) in
      let argv = List.map (fun r -> regs.(r)) args in
      match Intrinsics.method_lookup vrecv name with
      | Some intr ->
        charge_op op true;
        env.charge (Intrinsics.cost intr + Intrinsics.dynamic_cost intr vrecv argv);
        (if profiling then
          let s = sites.(cur) in Feedback.record_class s vrecv);
        regs.(d) <-
          (try Intrinsics.eval heap intr vrecv argv
           with Intrinsics.Type_error m -> raise (Runtime_error m))
      | None -> (
        match vrecv with
        | Value.Obj obj -> (
          match Shape.lookup heap.Heap.shapes obj.Value.shape name with
          | Some slot -> (
            match Heap.load_slot heap obj slot with
            | Value.Fun fid' ->
              charge_op op true;
              (if profiling then
                let s = sites.(cur) in
                Feedback.record_shape s (shape_id obj) (Feedback.Load_slot slot);
                Feedback.record_callee s fid');
              regs.(d) <- env.call ~fid:fid' ~this:vrecv ~args:argv
            | v ->
              raise (Runtime_error (Printf.sprintf "%s is not a function (%s)" name (Value.type_name v))))
          | None -> raise (Runtime_error ("no method " ^ name)))
        | v ->
          raise
            (Runtime_error
               (Printf.sprintf "no method %s on %s" name (Value.type_name v)))))
    | Call_intrinsic (d, intr, args) ->
      charge_op op true;
      let argv = List.map (fun r -> regs.(r)) args in
      env.charge (Intrinsics.cost intr + Intrinsics.dynamic_cost intr Value.Undef argv);
      regs.(d) <-
        (try Intrinsics.eval heap intr Value.Undef argv
         with Intrinsics.Type_error m -> raise (Runtime_error m))
    | Jump t ->
      charge_op op true;
      next := t
    | Jump_if_false (c, t) ->
      charge_op op true;
      if not (truthy regs.(c)) then next := t
    | Jump_if_true (c, t) ->
      charge_op op true;
      if truthy regs.(c) then next := t
    | Return r ->
      charge_op op true;
      result := (match r with Some r -> regs.(r) | None -> Value.Undef);
      running := false);
    if !running then begin
      note_edge ~from:cur ~target:!next;
      pc := !next
    end
  done;
  !result

(** Fresh frame for calling [fid]: this in r0, params from r1, rest undefined. *)
let make_frame inst ~fid ~this ~args =
  let f = Instance.func inst fid in
  let regs = Array.make (max 1 f.Opcode.nregs) Value.Undef in
  regs.(0) <- this;
  List.iteri (fun i v -> if i < f.Opcode.nparams then regs.(i + 1) <- v) args;
  regs

(** Call [fid] from the top in this engine. *)
let call_function env ~fid ~this ~args =
  (match env.profile with
  | Some p ->
    let fp = Feedback.func_profile p fid in
    fp.Feedback.call_count <- fp.Feedback.call_count + 1
  | None -> ());
  let regs = make_frame env.instance ~fid ~this ~args in
  run_from env ~fid ~entry_pc:0 ~regs
