let basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let hash64 s = string basis s

let to_hex h = Printf.sprintf "%016Lx" h
