(** Small statistics helpers used by the experiment harnesses. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean; requires strictly positive inputs. *)
let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

(** Linear interpolation between closest ranks (the numpy/R-7 definition):
    rank = p/100 * (n-1), and fractional ranks blend the two neighbours. *)
let percentile xs p =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = max 0 (min (n - 1) (int_of_float (Float.floor rank))) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

(** Ratio helpers for "normalized to Base" style figures. *)
let normalize ~base xs = List.map (fun x -> x /. base) xs

let percent_reduction ~base x = (1.0 -. (x /. base)) *. 100.0
