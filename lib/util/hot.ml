(* See hot.mli for the audit contract. *)

let checked =
  match Sys.getenv_opt "NOMAP_CHECKED_HOT" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let[@inline] get a i = if checked then Array.get a i else Array.unsafe_get a i
let[@inline] set a i v = if checked then Array.set a i v else Array.unsafe_set a i v

(* Monomorphic float-array accessors: the polymorphic [get] compiles to a
   generic array read, which re-boxes the float on every access.  The
   annotated versions specialize to flat float-array reads the compiler
   keeps unboxed at inlined call sites. *)
let[@inline] fget (a : float array) i = if checked then Array.get a i else Array.unsafe_get a i
let[@inline] fset (a : float array) i (v : float) =
  if checked then Array.set a i v else Array.unsafe_set a i v
