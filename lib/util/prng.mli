(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through a seeded [t] so every
    experiment is exactly reproducible. *)

type t

(** Fresh generator with the given seed. *)
val create : seed:int -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is exactly uniform in [0, bound) — masked rejection
    sampling, no modulo bias. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** Expose/restore the internal state (the simulator journals it so a
    transactional rollback replays the same randomness). *)
val state : t -> int64

val set_state : t -> int64 -> unit

(** Fisher-Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
