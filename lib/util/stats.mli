(** Statistics helpers used by the experiment harnesses. *)

val mean : float list -> float

(** Geometric mean; requires strictly positive inputs. *)
val geomean : float list -> float

val min_max : float list -> float * float

(** Population standard deviation. *)
val stddev : float list -> float

(** Percentile with linear interpolation between closest ranks (the
    numpy/R-7 definition), [p] in [0, 100]. *)
val percentile : float list -> float -> float

(** Divide every element by [base]. *)
val normalize : base:float -> float list -> float list

(** [(1 - x/base) * 100]. *)
val percent_reduction : base:float -> float -> float
