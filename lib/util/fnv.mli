(** FNV-1a, 64-bit: the repo's standard non-cryptographic hash.  Used by
    the heap checksum ([Nomap_vm.Heap_checksum]) and the compiled-artifact
    cache keys ([Nomap_server.Artifact_cache]). *)

val basis : int64
val prime : int64

(** Fold one byte (low 8 bits of the int) into the hash. *)
val byte : int64 -> int -> int64

(** Fold a string's bytes into the hash — no terminator; callers that
    hash delimited sequences must add their own separators. *)
val string : int64 -> string -> int64

(** One-shot hash of a string from [basis]. *)
val hash64 : string -> int64

(** Fixed-width lowercase hex rendering ("%016Lx"). *)
val to_hex : int64 -> string
