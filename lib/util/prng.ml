(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through a seeded [t] so that every
    experiment is exactly reproducible.  We avoid [Random] from the standard
    library because its state is global and its algorithm is unspecified
    across versions. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(** [int t bound] is exactly uniform in [0, bound); requires [bound > 0].
    Draws are masked to the smallest covering power of two and rejected when
    they land at or above [bound] — unlike [r mod bound] this has no modulo
    bias, at an expected cost of fewer than two raw draws per call. *)
let int t bound =
  assert (bound > 0);
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land mask in
    if r < bound then r else draw ()
  in
  draw ()

(** [float t bound] is uniform in [0, bound). *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let state t = t.state
let set_state t s = t.state <- s

(** Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
