(** Audited unchecked array accessors for the execution-engine hot loops.

    Every index that reaches [get]/[set] must be valid *by construction*,
    not by runtime test: SSA value ids are < [Decode.t.nvalues] (the value
    array is allocated to exactly that size), block ids come from verified
    terminators, phi-copy indices are bounded by the scratch allocation,
    and global slots are resolved at compile time.  Call sites outside
    those proofs must keep using plain [Array.get].

    Setting [NOMAP_CHECKED_HOT=1] in the environment re-enables bounds
    checking on every accessor (the debug build switch): any out-of-range
    index then raises [Invalid_argument] at the faulty access instead of
    corrupting memory, at a few percent cost in the hot loops. *)

val checked : bool
(** Whether [NOMAP_CHECKED_HOT] re-enabled bounds checking. *)

val get : 'a array -> int -> 'a
val set : 'a array -> int -> 'a -> unit

(** Monomorphic float-array accessors — the polymorphic versions go through
    the generic array path, which re-boxes the float on every read; these
    stay unboxed.  Same audit contract as [get]/[set]. *)
val fget : float array -> int -> float

val fset : float array -> int -> float -> unit
