(* Sharded LRU memo table.  Each shard owns a mutex, a table of ready
   entries, and a table of in-flight computes; [compute] runs with no lock
   held, deduplicated per key through a pending slot (mutex + condition),
   so a slow compile for one key never delays a warm hit for another —
   even one landing on the same shard. *)

type 'v entry = { value : 'v; mutable last_use : int }

(* Per-key in-flight slot.  The owner (the caller that found no entry and
   no slot) runs [compute] and publishes the outcome; everyone else waits
   on the condition.  [Failed] wakes waiters without a value: the owner's
   exception is theirs alone, waiters go back and recompute (each such
   retry is its own miss, so misses stay equal to compute invocations). *)
type 'v outcome = Computing | Done of 'v | Failed

type 'v pending = {
  pm : Mutex.t;
  pcv : Condition.t;
  mutable outcome : 'v outcome;
}

type ('k, 'v) shard = {
  capacity : int;
  lock : Mutex.t;
  table : ('k, 'v entry) Hashtbl.t;
  inflight : ('k, 'v pending) Hashtbl.t;  (** computes in progress; not counted in [capacity] *)
  mutable tick : int;  (** logical clock for LRU recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type ('k, 'v) t = { shards : ('k, 'v) shard array }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 64) ?shards () =
  let capacity = max 1 capacity in
  (* Few shards for small caches: exact-LRU behavior matters more than
     lock spreading when the whole table is a handful of entries, and a
     shard must own at least a few slots for its LRU to mean anything. *)
  let nshards =
    match shards with
    | Some n -> max 1 (min n capacity)
    | None -> max 1 (min 8 (capacity / 8))
  in
  let shard_capacity i =
    (* Distribute the remainder so shard capacities sum to [capacity]. *)
    (capacity / nshards) + if i < capacity mod nshards then 1 else 0
  in
  {
    shards =
      Array.init nshards (fun i ->
          {
            capacity = shard_capacity i;
            lock = Mutex.create ();
            table = Hashtbl.create (min (shard_capacity i) 64);
            inflight = Hashtbl.create 8;
            tick = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
  }

let shard_of t k = t.shards.(Hashtbl.hash k mod Array.length t.shards)

(* O(size) scan; eviction only happens at capacity, and capacities here are
   dozens-to-hundreds of compiled programs, so a scan is cheaper than
   maintaining an intrusive list and much harder to get wrong. *)
let evict_lru s =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, oldest) when oldest <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    s.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove s.table k;
    s.evictions <- s.evictions + 1

let publish p outcome =
  Mutex.protect p.pm (fun () ->
      p.outcome <- outcome;
      Condition.broadcast p.pcv)

let await p =
  Mutex.protect p.pm (fun () ->
      while p.outcome = Computing do
        Condition.wait p.pcv p.pm
      done;
      p.outcome)

let rec find_or_add t k compute =
  let s = shard_of t k in
  let action =
    Mutex.protect s.lock (fun () ->
        s.tick <- s.tick + 1;
        match Hashtbl.find_opt s.table k with
        | Some e ->
          e.last_use <- s.tick;
          s.hits <- s.hits + 1;
          `Hit e.value
        | None -> (
          match Hashtbl.find_opt s.inflight k with
          | Some p -> `Wait p
          | None ->
            let p = { pm = Mutex.create (); pcv = Condition.create (); outcome = Computing } in
            Hashtbl.replace s.inflight k p;
            s.misses <- s.misses + 1;
            `Compute p))
  in
  match action with
  | `Hit v -> (true, v)
  | `Wait p -> (
    match await p with
    | Done v ->
      (* Physically the owner's value; a hit for accounting.  Refresh
         recency if the entry is still resident (it may already have been
         evicted by unrelated churn — the value stays valid regardless). *)
      Mutex.protect s.lock (fun () ->
          s.tick <- s.tick + 1;
          s.hits <- s.hits + 1;
          match Hashtbl.find_opt s.table k with
          | Some e -> e.last_use <- s.tick
          | None -> ());
      (true, v)
    | Failed -> find_or_add t k compute (* owner's compute raised; try ourselves *)
    | Computing -> assert false)
  | `Compute p -> (
    match compute () with
    | v ->
      Mutex.protect s.lock (fun () ->
          s.tick <- s.tick + 1;
          Hashtbl.remove s.inflight k;
          if Hashtbl.length s.table >= s.capacity then evict_lru s;
          Hashtbl.replace s.table k { value = v; last_use = s.tick });
      publish p (Done v);
      (false, v)
    | exception e ->
      Mutex.protect s.lock (fun () -> Hashtbl.remove s.inflight k);
      publish p Failed;
      raise e)

let mem t k =
  let s = shard_of t k in
  Mutex.protect s.lock (fun () -> Hashtbl.mem s.table k)

let stats t =
  Array.fold_left
    (fun acc s ->
      let hits, misses, evictions, size =
        Mutex.protect s.lock (fun () -> (s.hits, s.misses, s.evictions, Hashtbl.length s.table))
      in
      {
        hits = acc.hits + hits;
        misses = acc.misses + misses;
        evictions = acc.evictions + evictions;
        size = acc.size + size;
        capacity = acc.capacity + s.capacity;
      })
    { hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
    t.shards

let hit_rate_of (s : stats) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups

let hit_rate t = hit_rate_of (stats t)

(* One snapshot for everything printed: size and hit rate move together.
   (The old version called [stats] twice — once directly, once through
   [hit_rate] — so the two could disagree under load.) *)
let stats_to_string t =
  let s = stats t in
  Printf.sprintf "size=%d/%d hits=%d misses=%d evictions=%d hit_rate=%.1f%%" s.size s.capacity
    s.hits s.misses s.evictions (100.0 *. hit_rate_of s)
