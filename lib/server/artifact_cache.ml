type 'v entry = { value : 'v; mutable last_use : int }

type ('k, 'v) t = {
  capacity : int;
  lock : Mutex.t;
  table : ('k, 'v entry) Hashtbl.t;
  mutable tick : int;  (** logical clock for LRU recency *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  {
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* O(size) scan; eviction only happens at capacity, and capacities here are
   dozens-to-hundreds of compiled programs, so a scan is cheaper than
   maintaining an intrusive list and much harder to get wrong. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, oldest) when oldest <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1

let find_or_add t k compute =
  Mutex.protect t.lock (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table k with
      | Some e ->
        e.last_use <- t.tick;
        t.hits <- t.hits + 1;
        (true, e.value)
      | None ->
        t.misses <- t.misses + 1;
        let v = compute () in
        if Hashtbl.length t.table >= t.capacity then evict_lru t;
        Hashtbl.replace t.table k { value = v; last_use = t.tick };
        (false, v))

let mem t k = Mutex.protect t.lock (fun () -> Hashtbl.mem t.table k)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate t =
  let s = stats t in
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups

let stats_to_string t =
  let s = stats t in
  Printf.sprintf "size=%d/%d hits=%d misses=%d evictions=%d hit_rate=%.1f%%" s.size s.capacity
    s.hits s.misses s.evictions (100.0 *. hit_rate t)
