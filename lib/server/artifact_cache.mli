(** Shared compiled-artifact cache: a mutex-guarded LRU memo table with
    hit/miss/eviction accounting, safe to share across OCaml 5 domains.

    This generalizes the two memo tables the repo grew by hand — the
    benchmark registry's compiled-program cache and the old runner memo
    table (now the scheduler store): one bounded, instrumented
    implementation instead of bespoke [Hashtbl] + [Mutex] pairs.  The
    daemon keys it by FNV-1a source hash × tier × architecture
    ([Session.key]); the registry keys it by benchmark id.

    Concurrency contract: the lock is held across the [compute] callback,
    so a given key is computed exactly once even when many domains request
    it simultaneously, and every caller observes the physically identical
    value.  That serializes computes — acceptable because compiles are
    cheap front-end work; the expensive part (execution) never happens
    under this lock.  If [compute] raises, nothing is inserted and the
    exception propagates to the caller that ran it. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val create : ?capacity:int -> unit -> ('k, 'v) t
(** [capacity] (default 64, min 1) bounds the entry count; inserting past
    it evicts the least-recently-used entry. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> bool * 'v
(** [find_or_add t k compute] returns [(hit, value)]: the cached value
    (refreshing its recency) or the freshly computed one. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure probe: no stats update, no recency refresh. *)

val stats : ('k, 'v) t -> stats

val hit_rate : ('k, 'v) t -> float
(** Hits over lookups, in [0, 1]; 0 when no lookups yet. *)

val stats_to_string : ('k, 'v) t -> string
(** One-line rendering for the STATS verb and logs. *)
