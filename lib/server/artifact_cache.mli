(** Shared compiled-artifact cache: a sharded, mutex-guarded LRU memo
    table with hit/miss/eviction accounting, safe to share across OCaml 5
    domains.

    This generalizes the two memo tables the repo grew by hand — the
    benchmark registry's compiled-program cache and the old runner memo
    table (now the scheduler store): one bounded, instrumented
    implementation instead of bespoke [Hashtbl] + [Mutex] pairs.  The
    daemon keys it by FNV-1a source hash × tier × architecture
    ([Session.key]); the registry keys it by benchmark id.

    Concurrency contract: the table is split into shards by key hash, each
    behind its own mutex, so warm hits on different keys (almost) never
    contend — and never serialize behind a compute.  [compute] runs with
    {e no} lock held; callers racing on the same key rendezvous on a
    per-key in-flight slot, so a given key is computed exactly once even
    when many domains request it simultaneously, and every caller observes
    the physically identical value.  If [compute] raises, nothing is
    inserted, the exception propagates to the caller that ran it, and any
    waiters retry (recomputing themselves — each such retry is a fresh
    miss, keeping misses equal to compute invocations). *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val create : ?capacity:int -> ?shards:int -> unit -> ('k, 'v) t
(** [capacity] (default 64, min 1) bounds the entry count, split across
    [shards] (default: [capacity/8] clamped to [1, 8]) — small caches get
    one shard so eviction is exact global LRU; large ones trade LRU
    exactness at shard boundaries for contention-free warm hits. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> bool * 'v
(** [find_or_add t k compute] returns [(hit, value)]: the cached value
    (refreshing its recency) or the freshly computed one.  A caller that
    arrives while another domain is computing [k] blocks only on that
    key's slot, counts as a hit, and shares the owner's value. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure probe of ready entries: no stats update, no recency refresh,
    in-flight computes invisible. *)

val stats : ('k, 'v) t -> stats
(** Aggregated over shards; each shard is snapshotted under its own lock
    (totals are exact once concurrent callers have quiesced). *)

val hit_rate : ('k, 'v) t -> float
(** Hits over lookups, in [0, 1]; 0 when no lookups yet. *)

val hit_rate_of : stats -> float
(** Same, from an already-taken snapshot — lets one snapshot feed both a
    ratio and the raw counters without re-locking. *)

val stats_to_string : ('k, 'v) t -> string
(** One-line rendering for the STATS verb and logs; every field comes from
    a single [stats] snapshot. *)
