(** nomapd wire protocol: versioned, length-prefixed request/response
    framing over a byte stream (Unix stdlib only — no external codec).

    Frame layout (both directions):

    {v
      [u32 BE payload length][payload]
    v}

    Request payload:

    {v
      [u8 version = 2][u8 verb]
      verb 1 (RUN):  [u8 tier][u8 arch][u32 iters][u64 fuel]
                     [u32 deadline_ms][u32 src_len][src bytes]
      verb 2 (STATS) / 3 (PING) / 4 (SHUTDOWN): no fields
      verb 5 (RUN_SHARED): the RUN fields, then [str session] — execute
                     bound to an agent of the named shared-segment session
                     (version 2)
    v}

    Response payload:

    {v
      [u8 version = 2][u8 status]
      status 0 (RUN_OK):   [u8 cache_hit][str result][str heap]
                           [u64 instrs][u64 checks][u64 cycles_bits]
                           [u64 tx_commits][u64 tx_aborts][u64 deopts]
                           [u64 ftl_calls]
      status 1 (STATS_OK): [str text]
      status 2 (PONG), 3 (SHUTTING_DOWN): no fields
      status 16..20 (MALFORMED/OVERLOADED/TIMEOUT/CRASH/FUEL_LIMIT): [str message]
    v}

    where [str] is [u32 len][bytes].  Every decoder is total: malformed
    input (bad magic version, unknown verb/status, truncated fields,
    trailing garbage, oversized frames) is rejected with an [Error]
    description, never an exception — the daemon answers it with a
    MALFORMED response and drops the connection. *)

module Vm = Nomap_vm.Vm
module Config = Nomap_nomap.Config

(* v2: RUN_SHARED (verb 5) — multi-agent shared-segment sessions. *)
let version = 2

(** Upper bound on a single frame; a larger announced length is rejected
    before any allocation, so a hostile client cannot make the daemon
    allocate unbounded memory with a 4-byte header. *)
let max_frame = 16 * 1024 * 1024

type run = {
  tier : Vm.tier_cap;
  arch : Config.arch;
  iters : int;  (** [benchmark()] calls after the top level; 0 = top level only *)
  fuel : int;  (** execution budget in ops; [<= 0] means the server default *)
  deadline_ms : int;  (** max queue wait before admission; 0 = no deadline *)
  src : string;  (** MiniJS program text *)
}

type request =
  | Run of run
  | Run_shared of { run : run; session : string }
      (** like [Run], but the VM is bound to an agent of the named shared
          session: concurrent RUN_SHAREDs naming the same session execute
          against one communal segment (Shared/Atomics intrinsics), while
          different sessions are fully isolated *)
  | Stats
  | Ping
  | Shutdown

type err =
  | Emalformed  (** protocol violation: bad version/verb/framing *)
  | Eoverloaded  (** admission queue full — retry later *)
  | Etimeout  (** deadline exceeded in queue, or fuel exhausted running *)
  | Ecrash  (** the program failed to compile or raised at runtime *)
  | Efuel_limit
      (** the request asked for more fuel than the server's --max-fuel
          allows; distinct from [Etimeout] so clients can tell "lower your
          request" from "your program is too slow" *)

let err_name = function
  | Emalformed -> "malformed"
  | Eoverloaded -> "overloaded"
  | Etimeout -> "timeout"
  | Ecrash -> "crash"
  | Efuel_limit -> "fuel-limit"

(** Per-request machine counters, the serving-side cut of
    [Nomap_machine.Counters] (totals only; the full per-category breakdown
    stays a harness concern). *)
type run_counters = {
  instrs : int;
  checks : int;
  cycles : float;
  tx_commits : int;
  tx_aborts : int;
  deopts : int;
  ftl_calls : int;
}

type response =
  | Run_ok of {
      cache_hit : bool;  (** compiled artifact came from the shared cache *)
      result : string;  (** the [result] global (or last [benchmark()] return) *)
      heap : string;  (** structural heap checksum, [Heap_checksum.checksum] *)
      counters : run_counters;
    }
  | Stats_ok of string
  | Pong
  | Shutting_down
  | Error of { err : err; msg : string }

(* ------------------------------------------------------------------ *)
(* Primitive writers *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u32 b v =
  u8 b (v lsr 24);
  u8 b (v lsr 16);
  u8 b (v lsr 8);
  u8 b v

let u64 b (v : int64) =
  for i = 7 downto 0 do
    u8 b (Int64.to_int (Int64.shift_right_logical v (i * 8)))
  done

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

(* ------------------------------------------------------------------ *)
(* Primitive readers: a cursor over the payload with bounds checking. *)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then
    raise (Bad (Printf.sprintf "truncated: need %d bytes at offset %d of %d" n c.pos
                  (String.length c.data)))

let r8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r32 c =
  let a = r8 c in
  let b = r8 c in
  let d = r8 c in
  let e = r8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let r64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r8 c))
  done;
  !v

let rstr c =
  let n = r32 c in
  if n > max_frame then raise (Bad (Printf.sprintf "string length %d exceeds frame cap" n));
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let finish c v =
  if c.pos <> String.length c.data then
    raise (Bad (Printf.sprintf "%d trailing bytes" (String.length c.data - c.pos)))
  else v

(* ------------------------------------------------------------------ *)
(* Tier / arch codes *)

let tier_code = function Vm.Cap_interp -> 0 | Vm.Cap_baseline -> 1 | Vm.Cap_dfg -> 2 | Vm.Cap_ftl -> 3

let tier_of_code = function
  | 0 -> Vm.Cap_interp
  | 1 -> Vm.Cap_baseline
  | 2 -> Vm.Cap_dfg
  | 3 -> Vm.Cap_ftl
  | n -> raise (Bad (Printf.sprintf "unknown tier code %d" n))

(* Positional in [Config.all]; the list order is the paper's Table II and
   part of the wire format — append, never reorder. *)
let arch_code a =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = a then i else go (i + 1) rest
  in
  go 0 Config.all

let arch_of_code n =
  match List.nth_opt Config.all n with
  | Some a -> a
  | None -> raise (Bad (Printf.sprintf "unknown arch code %d" n))

(* ------------------------------------------------------------------ *)
(* Requests *)

let encode_request (req : request) : string =
  let b = Buffer.create 256 in
  u8 b version;
  let run_fields r =
    u8 b (tier_code r.tier);
    u8 b (arch_code r.arch);
    u32 b r.iters;
    u64 b (Int64.of_int (max 0 r.fuel));
    u32 b r.deadline_ms;
    str b r.src
  in
  (match req with
  | Run r ->
    u8 b 1;
    run_fields r
  | Stats -> u8 b 2
  | Ping -> u8 b 3
  | Shutdown -> u8 b 4
  | Run_shared { run; session } ->
    u8 b 5;
    run_fields run;
    str b session);
  Buffer.contents b

let decode_request (payload : string) : (request, string) result =
  match
    let c = { data = payload; pos = 0 } in
    let v = r8 c in
    if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v));
    let run_fields () =
      let tier = tier_of_code (r8 c) in
      let arch = arch_of_code (r8 c) in
      let iters = r32 c in
      let fuel = Int64.to_int (r64 c) in
      let deadline_ms = r32 c in
      let src = rstr c in
      { tier; arch; iters; fuel; deadline_ms; src }
    in
    match r8 c with
    | 1 -> finish c (Run (run_fields ()))
    | 2 -> finish c Stats
    | 3 -> finish c Ping
    | 4 -> finish c Shutdown
    | 5 ->
      let run = run_fields () in
      let session = rstr c in
      finish c (Run_shared { run; session })
    | verb -> raise (Bad (Printf.sprintf "unknown request verb %d" verb))
  with
  | req -> Ok req
  | exception Bad msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Responses *)

let err_code = function
  | Emalformed -> 16
  | Eoverloaded -> 17
  | Etimeout -> 18
  | Ecrash -> 19
  | Efuel_limit -> 20

let err_of_code = function
  | 16 -> Emalformed
  | 17 -> Eoverloaded
  | 18 -> Etimeout
  | 19 -> Ecrash
  | 20 -> Efuel_limit
  | n -> raise (Bad (Printf.sprintf "unknown error status %d" n))

let encode_response (resp : response) : string =
  let b = Buffer.create 256 in
  u8 b version;
  (match resp with
  | Run_ok { cache_hit; result; heap; counters } ->
    u8 b 0;
    u8 b (if cache_hit then 1 else 0);
    str b result;
    str b heap;
    u64 b (Int64.of_int counters.instrs);
    u64 b (Int64.of_int counters.checks);
    u64 b (Int64.bits_of_float counters.cycles);
    u64 b (Int64.of_int counters.tx_commits);
    u64 b (Int64.of_int counters.tx_aborts);
    u64 b (Int64.of_int counters.deopts);
    u64 b (Int64.of_int counters.ftl_calls)
  | Stats_ok text ->
    u8 b 1;
    str b text
  | Pong -> u8 b 2
  | Shutting_down -> u8 b 3
  | Error { err; msg } ->
    u8 b (err_code err);
    str b msg);
  Buffer.contents b

let decode_response (payload : string) : (response, string) result =
  match
    let c = { data = payload; pos = 0 } in
    let v = r8 c in
    if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v));
    match r8 c with
    | 0 ->
      let cache_hit = r8 c <> 0 in
      let result = rstr c in
      let heap = rstr c in
      let instrs = Int64.to_int (r64 c) in
      let checks = Int64.to_int (r64 c) in
      let cycles = Int64.float_of_bits (r64 c) in
      let tx_commits = Int64.to_int (r64 c) in
      let tx_aborts = Int64.to_int (r64 c) in
      let deopts = Int64.to_int (r64 c) in
      let ftl_calls = Int64.to_int (r64 c) in
      finish c
        (Run_ok
           {
             cache_hit;
             result;
             heap;
             counters = { instrs; checks; cycles; tx_commits; tx_aborts; deopts; ftl_calls };
           })
    | 1 -> finish c (Stats_ok (rstr c))
    | 2 -> finish c Pong
    | 3 -> finish c Shutting_down
    | status -> finish c (Error { err = err_of_code status; msg = rstr c })
  with
  | resp -> Ok resp
  | exception Bad msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Framing over a file descriptor *)

type frame = Frame of string | Eof | Oversized of int

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let write_frame fd (payload : string) =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set buf 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

(* Read exactly [len] bytes; [None] on a clean EOF at offset 0, [Eof]-worthy
   errors (connection reset mid-frame) surface as [None] too — a torn frame
   and a closed peer get the same treatment: drop the connection. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go pos =
    if pos >= len then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> None
      | n -> go (pos + n)
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
  in
  go 0

let read_frame fd : frame =
  match read_exact fd 4 with
  | None -> Eof
  | Some hdr ->
    let b i = Char.code hdr.[i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then Oversized n
    else if n = 0 then Frame ""
    else (match read_exact fd n with None -> Eof | Some payload -> Frame payload)

(* ------------------------------------------------------------------ *)
(* Incremental frame assembly, for the daemon's non-pinning poller: bytes
   arrive in whatever chunks the kernel delivers, [reader_next] hands back
   complete frames as they materialize.  [read_frame] above stays the
   blocking path for clients (one connection, one in-flight request). *)

type reader = { rbuf : Buffer.t; mutable roff : int  (** consumed prefix of [rbuf] *) }

let reader_create () = { rbuf = Buffer.create 4096; roff = 0 }

let reader_feed r bytes len = Buffer.add_subbytes r.rbuf bytes 0 len

(* Oversized is sticky-fatal for the caller (it hangs up), so we don't
   bother consuming the bad header. *)
let reader_next r : [ `Frame of string | `Oversized of int | `None ] =
  let avail = Buffer.length r.rbuf - r.roff in
  if avail < 4 then `None
  else begin
    let b i = Char.code (Buffer.nth r.rbuf (r.roff + i)) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then `Oversized n
    else if avail < 4 + n then `None
    else begin
      let payload = Buffer.sub r.rbuf (r.roff + 4) n in
      r.roff <- r.roff + 4 + n;
      (* Reclaim consumed bytes: free the whole buffer at a frame boundary,
         or compact when the dead prefix outgrows a pipelining burst. *)
      if r.roff = Buffer.length r.rbuf then begin
        Buffer.clear r.rbuf;
        r.roff <- 0
      end
      else if r.roff > 65536 then begin
        let rest = Buffer.sub r.rbuf r.roff (Buffer.length r.rbuf - r.roff) in
        Buffer.clear r.rbuf;
        Buffer.add_string r.rbuf rest;
        r.roff <- 0
      end;
      `Frame payload
    end
  end
