(** Monotonic time for every latency and deadline computation in the
    serving stack.

    [Unix.gettimeofday] is wall time: NTP slews and steps move it, so a
    queue wait measured against it can be negative or wildly inflated —
    and loadgen already measures with the monotonic clock, so mixing the
    two made the daemon's deadline math incommensurable with the client's
    latency numbers.  Everything except the human-facing [uptime_s] line
    in STATS goes through here (the same
    [clock_gettime(CLOCK_MONOTONIC)] stub Bechamel samples, see
    DESIGN.md). *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
