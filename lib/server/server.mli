(** nomapd: the long-running execution daemon.

    Architecture: one poller domain plus a pool of OCaml 5 [Domain]
    workers fed by a bounded admission queue of {e frames}.  The poller
    owns every descriptor: it accepts connections, selects over the idle
    ones, assembles bytes into complete frames, and queues each frame as
    an independent job stamped with its monotonic arrival time.  A worker
    executes one frame, writes the reply, and hands the connection back —
    so a worker is never pinned to a connection, idle keepalive clients
    cost one fd each instead of a worker, and pipelined requests on one
    connection each get their own queue-wait measurement.

    Backpressure is reject-not-buffer at two doors: a frame arriving to a
    full job queue is answered OVERLOADED (the connection survives — the
    client can retry), and a connection past [max_connections] is turned
    away whole.  A traffic spike costs clients a retry instead of costing
    the daemon unbounded memory.

    Shared mutable state and its guards:
    - the artifact cache: internally sharded and mutex-guarded
      ([Artifact_cache]); compiles run outside any shard lock;
    - the job queue and returned-connection queue: the pool mutex +
      condition variable (+ a self-pipe to nudge the select-blocked
      poller);
    - request statistics: a separate stats mutex, taken per response.

    All latency and deadline arithmetic uses the monotonic clock
    ([Clock.now_s]); wall time appears only in the human-facing
    [uptime_s] STATS line.

    A worker that somehow throws past [Session.handle_frame]'s
    per-request catch-all (a daemon bug, not a client error) poisons the
    pool: the first such exception initiates shutdown and is re-raised
    from [wait], mirroring the harness scheduler's worker-exception
    propagation. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; stale files are replaced *)
  domains : int;  (** worker pool size (min 1) *)
  queue_capacity : int;  (** admission queue bound (in frames); beyond it, OVERLOADED *)
  cache_capacity : int;  (** artifact-cache entries *)
  max_connections : int;  (** open-connection bound; beyond it, rejected at the door *)
  max_fuel : int;
      (** cap on client-requested RUN fuel; over-limit requests get
          [Efuel_limit], non-positive values fall back to
          [Session.default_fuel] *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue of 64 frames, cache of 128, 512 connections. *)

type t

val start : config -> t
(** Bind, listen, and spawn the poller and worker domains.  Returns once
    the socket is accepting (a client may connect immediately). *)

val request_stop : t -> unit
(** Begin shutdown: stop admitting, let workers drain the queue and exit.
    Also reachable remotely via the SHUTDOWN verb.  Idempotent. *)

val wait : t -> unit
(** Block until the daemon has stopped (via [request_stop] or SHUTDOWN),
    join every domain, close every descriptor, unlink the socket.
    Re-raises the first worker-fatal exception, if any. *)

val stop : t -> unit
(** [request_stop] then [wait]. *)

val stats_text : t -> string
(** The STATS verb payload: queue, connections, cache, and per-class
    request counters. *)

val cache : t -> Session.cache
