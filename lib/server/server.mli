(** nomapd: the long-running execution daemon.

    Architecture: one acceptor loop plus a pool of OCaml 5 [Domain]
    workers fed by a bounded admission queue of accepted connections.
    Backpressure is reject-not-buffer: when the queue is full the acceptor
    answers OVERLOADED and closes, so a traffic spike costs clients a
    retry instead of costing the daemon unbounded memory.  Workers pull a
    connection, serve its requests to completion ([Session.serve], one
    fresh VM per request), close it, and go back to the queue.

    Shared mutable state and its guards:
    - the artifact cache: internally mutex-guarded ([Artifact_cache]);
    - the admission queue: the pool mutex + condition variable;
    - request statistics: a separate stats mutex, taken per response.

    A worker that somehow throws past [Session.serve]'s per-request
    catch-all (a daemon bug, not a client error) poisons the pool: the
    first such exception initiates shutdown and is re-raised from [wait],
    mirroring the harness scheduler's worker-exception propagation. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; stale files are replaced *)
  domains : int;  (** worker pool size (min 1) *)
  queue_capacity : int;  (** admission queue bound; beyond it, OVERLOADED *)
  cache_capacity : int;  (** artifact-cache entries *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue of 64, cache of 128. *)

type t

val start : config -> t
(** Bind, listen, and spawn the acceptor and worker domains.  Returns once
    the socket is accepting (a client may connect immediately). *)

val request_stop : t -> unit
(** Begin shutdown: stop admitting, let workers drain the queue and exit.
    Also reachable remotely via the SHUTDOWN verb.  Idempotent. *)

val wait : t -> unit
(** Block until the daemon has stopped (via [request_stop] or SHUTDOWN),
    join every domain, close and unlink the socket.  Re-raises the first
    worker-fatal exception, if any. *)

val stop : t -> unit
(** [request_stop] then [wait]. *)

val stats_text : t -> string
(** The STATS verb payload: queue, cache, and per-class request counters. *)

val cache : t -> Session.cache
