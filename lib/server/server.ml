type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  max_connections : int;
  max_fuel : int;  (** cap on client-requested RUN fuel (--max-fuel) *)
}

let default_config ~socket_path =
  {
    socket_path;
    domains = 2;
    queue_capacity = 64;
    cache_capacity = 128;
    max_connections = 512;
    max_fuel = Session.default_fuel;
  }

type stats = {
  mutable accepted : int;
  mutable rejected_overloaded : int;
  mutable open_conns : int;
  mutable run_ok : int;
  mutable run_hit : int;
  mutable stats_served : int;
  mutable pings : int;
  mutable err_malformed : int;
  mutable err_overloaded : int;
  mutable err_timeout : int;
  mutable err_crash : int;
  mutable err_fuel_limit : int;
}

(* One client connection.  Exactly one of three places owns it at any
   moment: the poller (idle, watched by select), the job queue, or a
   worker (executing its frame).  The poller performs every open and
   close, so descriptor lifecycle has a single writer. *)
type conn = { fd : Unix.file_descr; reader : Protocol.reader }

type job = {
  jconn : conn;
  payload : string;  (** one complete frame payload *)
  arrival_s : float;  (** monotonic stamp at frame completion *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** self-pipe: workers nudge a select-blocked poller *)
  wake_w : Unix.file_descr;
  cache : Session.cache;
  shared : Session.shared;  (** named shared-segment sessions (RUN_SHARED) *)
  jobs : job Queue.t;  (** admission queue of frames, bound [queue_capacity] *)
  returned : (conn * [ `Keep | `Close ]) Queue.t;  (** conns workers are done with *)
  lock : Mutex.t;  (** guards [jobs], [returned], [stopping] *)
  nonempty : Condition.t;
  mutable stopping : bool;
  stats_lock : Mutex.t;
  stats : stats;
  started_wall : float;  (** wall clock, only for the human-facing uptime line *)
  mutable pool : unit Domain.t list;  (** poller + workers; emptied by [wait] *)
  mutable fatal : (exn * Printexc.raw_backtrace) option;  (** first daemon bug *)
}

let cache t = t.cache

(* ------------------------------------------------------------------ *)
(* Statistics *)

let record_response t (resp : Protocol.response) =
  Mutex.protect t.stats_lock (fun () ->
      let s = t.stats in
      match resp with
      | Protocol.Run_ok { cache_hit; _ } ->
        s.run_ok <- s.run_ok + 1;
        if cache_hit then s.run_hit <- s.run_hit + 1
      | Protocol.Stats_ok _ -> s.stats_served <- s.stats_served + 1
      | Protocol.Pong -> s.pings <- s.pings + 1
      | Protocol.Shutting_down -> ()
      | Protocol.Error { err; _ } -> (
        match err with
        | Protocol.Emalformed -> s.err_malformed <- s.err_malformed + 1
        | Protocol.Eoverloaded -> s.err_overloaded <- s.err_overloaded + 1
        | Protocol.Etimeout -> s.err_timeout <- s.err_timeout + 1
        | Protocol.Ecrash -> s.err_crash <- s.err_crash + 1
        | Protocol.Efuel_limit -> s.err_fuel_limit <- s.err_fuel_limit + 1))

let stats_text t =
  let depth = Mutex.protect t.lock (fun () -> Queue.length t.jobs) in
  let s = Mutex.protect t.stats_lock (fun () -> { t.stats with accepted = t.stats.accepted }) in
  String.concat "\n"
    [
      Printf.sprintf "nomapd uptime_s=%.1f domains=%d"
        (Unix.gettimeofday () -. t.started_wall)
        t.cfg.domains;
      Printf.sprintf
        "queue depth=%d capacity=%d conns=%d/%d accepted=%d overloaded_rejections=%d" depth
        t.cfg.queue_capacity s.open_conns t.cfg.max_connections s.accepted s.rejected_overloaded;
      Printf.sprintf "cache %s" (Artifact_cache.stats_to_string t.cache);
      Session.shared_stats t.shared;
      Printf.sprintf
        "requests run_ok=%d run_hit=%d run_miss=%d stats=%d ping=%d \
         errors=[malformed=%d overloaded=%d timeout=%d crash=%d fuel_limit=%d]"
        s.run_ok s.run_hit (s.run_ok - s.run_hit) s.stats_served s.pings s.err_malformed
        s.err_overloaded s.err_timeout s.err_crash s.err_fuel_limit;
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle plumbing *)

let wake t =
  (* Nonblocking write; a full pipe already holds a pending wake. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) -> ()

let request_stop t =
  Mutex.protect t.lock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.nonempty);
  wake t

let session_ctx t : Session.ctx =
  {
    Session.cache = t.cache;
    shared = t.shared;
    max_fuel = t.cfg.max_fuel;
    stats_text = (fun () -> stats_text t);
    request_shutdown = (fun () -> request_stop t);
    on_response = record_response t;
  }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let record_fatal t e bt =
  Mutex.protect t.lock (fun () -> if t.fatal = None then t.fatal <- Some (e, bt));
  request_stop t

(* Error replies pushed by the poller itself (door rejection, per-frame
   overload, oversized frame).  The write is blocking, but these responses
   are far below any socket buffer, so the poller cannot be wedged by a
   deaf client.  Returns [false] when the peer is gone. *)
let poller_reply t fd resp =
  record_response t resp;
  match Protocol.write_frame fd (Protocol.encode_response resp) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

(* ------------------------------------------------------------------ *)
(* The poller: accept, read, frame, dispatch.

   One domain owns every descriptor and runs a select loop over the
   listening socket, the wake pipe, and all idle connections.  Bytes are
   fed to each connection's incremental frame reader; a completed frame
   becomes a job (stamped with its monotonic arrival time) and its
   connection goes dark until a worker hands it back — so an idle
   keepalive connection costs one fd, never a worker, and a worker is
   never pinned waiting for a client to type. *)

let poller_loop t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let readbuf = Bytes.create 65536 in
  let live = ref 0 in
  let set_open_conns () =
    Mutex.protect t.stats_lock (fun () -> t.stats.open_conns <- !live)
  in
  let close_conn c =
    close_quietly c.fd;
    decr live;
    set_open_conns ()
  in
  (* Turn buffered bytes into at most one queued job.  Only one frame per
     connection may be in flight (a worker replies on the fd; two at once
     would interleave writes), so a queued frame parks the connection until
     the worker returns it; later pipelined frames wait in its reader. *)
  let rec dispatch c =
    match Protocol.reader_next c.reader with
    | `None -> Hashtbl.replace conns c.fd c (* idle: watch for more bytes *)
    | `Oversized n ->
      ignore
        (poller_reply t c.fd
           (Protocol.Error
              {
                err = Protocol.Emalformed;
                msg = Printf.sprintf "frame of %d bytes exceeds cap %d" n Protocol.max_frame;
              }));
      close_conn c
    | `Frame payload -> (
      let arrival_s = Clock.now_s () in
      let verdict =
        Mutex.protect t.lock (fun () ->
            if t.stopping then `Drop
            else if Queue.length t.jobs >= t.cfg.queue_capacity then `Full
            else begin
              Queue.add { jconn = c; payload; arrival_s } t.jobs;
              Condition.signal t.nonempty;
              `Queued
            end)
      in
      match verdict with
      | `Queued -> () (* busy: the worker will hand it back *)
      | `Drop -> close_conn c
      | `Full ->
        (* Reject the frame, keep the connection: the client already paid
           for the connect, and backpressure is about not buffering work. *)
        Mutex.protect t.stats_lock (fun () ->
            t.stats.rejected_overloaded <- t.stats.rejected_overloaded + 1);
        if
          poller_reply t c.fd
            (Protocol.Error
               {
                 err = Protocol.Eoverloaded;
                 msg =
                   Printf.sprintf "admission queue full (%d frames)" t.cfg.queue_capacity;
               })
        then dispatch c
        else close_conn c)
  in
  let accept_one () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | fd, _ ->
      Mutex.protect t.stats_lock (fun () -> t.stats.accepted <- t.stats.accepted + 1);
      if !live >= t.cfg.max_connections then begin
        (* Reject at the door: past the fd budget (select also has a hard
           FD_SETSIZE ceiling), a new connection is turned away whole. *)
        Mutex.protect t.stats_lock (fun () ->
            t.stats.rejected_overloaded <- t.stats.rejected_overloaded + 1);
        ignore
          (poller_reply t fd
             (Protocol.Error
                {
                  err = Protocol.Eoverloaded;
                  msg =
                    Printf.sprintf "connection limit reached (%d)" t.cfg.max_connections;
                }));
        close_quietly fd
      end
      else begin
        incr live;
        set_open_conns ();
        dispatch { fd; reader = Protocol.reader_create () }
      end
  in
  let drain_wake () =
    let rec go () =
      match Unix.read t.wake_r readbuf 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    in
    go ()
  in
  let drain_returned () =
    let batch =
      Mutex.protect t.lock (fun () ->
          let xs = List.of_seq (Queue.to_seq t.returned) in
          Queue.clear t.returned;
          xs)
    in
    List.iter
      (fun (c, directive) ->
        match directive with
        | `Close -> close_conn c
        | `Keep -> dispatch c (* buffered pipelined frames run before select *))
      batch
  in
  let read_conn c =
    Hashtbl.remove conns c.fd;
    match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
    | 0 -> close_conn c (* EOF *)
    | n ->
      Protocol.reader_feed c.reader readbuf n;
      dispatch c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Hashtbl.replace conns c.fd c
  in
  let continue = ref true in
  while !continue do
    if Mutex.protect t.lock (fun () -> t.stopping) then begin
      (* Stop watching: close idle connections and whatever workers have
         already handed back.  Jobs still queued stay alive — workers
         drain them and their conns are reaped by [wait]. *)
      drain_returned ();
      Hashtbl.iter (fun _ c -> close_quietly c.fd) conns;
      Hashtbl.reset conns;
      continue := false
    end
    else begin
      drain_returned ();
      let watched = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select (t.listen_fd :: t.wake_r :: watched) [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_one ()
            else if fd = t.wake_r then drain_wake ()
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> read_conn c
              | None -> () (* already dispatched or closed this round *))
          readable
    end
  done

(* ------------------------------------------------------------------ *)
(* Workers: execute one frame at a time, from any connection. *)

let worker_loop t =
  let ctx = session_ctx t in
  let continue = ref true in
  while !continue do
    let job =
      Mutex.protect t.lock (fun () ->
          while Queue.is_empty t.jobs && not t.stopping do
            Condition.wait t.nonempty t.lock
          done;
          if Queue.is_empty t.jobs then None (* stopping and drained *)
          else Some (Queue.pop t.jobs))
    in
    match job with
    | None -> continue := false
    | Some { jconn; payload; arrival_s } ->
      let queue_wait_s = Clock.now_s () -. arrival_s in
      let directive =
        try Session.handle_frame ctx ~queue_wait_s jconn.fd payload
        with e ->
          (* Not a client-triggerable path — Session.handle_frame converts
             those to error responses.  A worker bug poisons the pool:
             shut down and let [wait] re-raise. *)
          record_fatal t e (Printexc.get_raw_backtrace ());
          `Close
      in
      Mutex.protect t.lock (fun () -> Queue.add (jconn, directive) t.returned);
      wake t
  done

let start cfg =
  let cfg =
    {
      cfg with
      domains = max 1 cfg.domains;
      queue_capacity = max 1 cfg.queue_capacity;
      max_connections = max 1 cfg.max_connections;
      max_fuel = (if cfg.max_fuel <= 0 then Session.default_fuel else cfg.max_fuel);
    }
  in
  (* A client hanging up mid-reply must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      listen_fd;
      wake_r;
      wake_w;
      cache = Artifact_cache.create ~capacity:cfg.cache_capacity ();
      shared = Session.shared_create ();
      jobs = Queue.create ();
      returned = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      stats_lock = Mutex.create ();
      stats =
        {
          accepted = 0;
          rejected_overloaded = 0;
          open_conns = 0;
          run_ok = 0;
          run_hit = 0;
          stats_served = 0;
          pings = 0;
          err_malformed = 0;
          err_overloaded = 0;
          err_timeout = 0;
          err_crash = 0;
          err_fuel_limit = 0;
        };
      started_wall = Unix.gettimeofday ();
      pool = [];
      fatal = None;
    }
  in
  let guarded f () =
    try f t with e -> record_fatal t e (Printexc.get_raw_backtrace ())
  in
  let workers = List.init cfg.domains (fun _ -> Domain.spawn (guarded worker_loop)) in
  let poller = Domain.spawn (guarded poller_loop) in
  t.pool <- poller :: workers;
  t

let wait t =
  let pool = t.pool in
  t.pool <- [];
  List.iter Domain.join pool;
  if pool <> [] then begin
    (* Everything has quiesced: reap connections the poller never saw
       again (handed back after it exited, or still queued at stop). *)
    Mutex.protect t.lock (fun () ->
        Queue.iter (fun (c, _) -> close_quietly c.fd) t.returned;
        Queue.clear t.returned;
        Queue.iter (fun j -> close_quietly j.jconn.fd) t.jobs;
        Queue.clear t.jobs);
    close_quietly t.listen_fd;
    close_quietly t.wake_r;
    close_quietly t.wake_w;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  end;
  match t.fatal with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let stop t =
  request_stop t;
  wait t
