type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
}

let default_config ~socket_path =
  { socket_path; domains = 2; queue_capacity = 64; cache_capacity = 128 }

type stats = {
  mutable accepted : int;
  mutable rejected_overloaded : int;
  mutable run_ok : int;
  mutable run_hit : int;
  mutable stats_served : int;
  mutable pings : int;
  mutable err_malformed : int;
  mutable err_overloaded : int;
  mutable err_timeout : int;
  mutable err_crash : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  cache : Session.cache;
  queue : (Unix.file_descr * float) Queue.t;  (** accepted conns × enqueue time *)
  lock : Mutex.t;  (** guards [queue] and [stopping] *)
  nonempty : Condition.t;
  mutable stopping : bool;
  stats_lock : Mutex.t;
  stats : stats;
  started_at : float;
  mutable pool : unit Domain.t list;  (** acceptor + workers; emptied by [wait] *)
  mutable fatal : (exn * Printexc.raw_backtrace) option;  (** first worker bug *)
}

let now () = Unix.gettimeofday ()

let cache t = t.cache

(* ------------------------------------------------------------------ *)
(* Statistics *)

let record_response t (resp : Protocol.response) =
  Mutex.protect t.stats_lock (fun () ->
      let s = t.stats in
      match resp with
      | Protocol.Run_ok { cache_hit; _ } ->
        s.run_ok <- s.run_ok + 1;
        if cache_hit then s.run_hit <- s.run_hit + 1
      | Protocol.Stats_ok _ -> s.stats_served <- s.stats_served + 1
      | Protocol.Pong -> s.pings <- s.pings + 1
      | Protocol.Shutting_down -> ()
      | Protocol.Error { err; _ } -> (
        match err with
        | Protocol.Emalformed -> s.err_malformed <- s.err_malformed + 1
        | Protocol.Eoverloaded -> s.err_overloaded <- s.err_overloaded + 1
        | Protocol.Etimeout -> s.err_timeout <- s.err_timeout + 1
        | Protocol.Ecrash -> s.err_crash <- s.err_crash + 1))

let stats_text t =
  let depth = Mutex.protect t.lock (fun () -> Queue.length t.queue) in
  let s = Mutex.protect t.stats_lock (fun () -> { t.stats with accepted = t.stats.accepted }) in
  String.concat "\n"
    [
      Printf.sprintf "nomapd uptime_s=%.1f domains=%d" (now () -. t.started_at) t.cfg.domains;
      Printf.sprintf "queue depth=%d capacity=%d accepted=%d overloaded_rejections=%d" depth
        t.cfg.queue_capacity s.accepted s.rejected_overloaded;
      Printf.sprintf "cache %s" (Artifact_cache.stats_to_string t.cache);
      Printf.sprintf
        "requests run_ok=%d run_hit=%d run_miss=%d stats=%d ping=%d \
         errors=[malformed=%d overloaded=%d timeout=%d crash=%d]"
        s.run_ok s.run_hit (s.run_ok - s.run_hit) s.stats_served s.pings s.err_malformed
        s.err_overloaded s.err_timeout s.err_crash;
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let request_stop t =
  Mutex.protect t.lock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.nonempty)

let session_ctx t : Session.ctx =
  {
    Session.cache = t.cache;
    stats_text = (fun () -> stats_text t);
    request_shutdown = (fun () -> request_stop t);
    on_response = record_response t;
  }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Reject at the door: a full queue answers OVERLOADED instead of
   buffering.  The write is blocking, but the response is far below any
   socket buffer, so the acceptor cannot be wedged by a deaf client. *)
let reject_overloaded t fd =
  let resp =
    Protocol.Error
      {
        err = Protocol.Eoverloaded;
        msg = Printf.sprintf "admission queue full (%d connections)" t.cfg.queue_capacity;
      }
  in
  record_response t resp;
  (try Protocol.write_frame fd (Protocol.encode_response resp)
   with Unix.Unix_error _ -> ());
  close_quietly fd;
  Mutex.protect t.stats_lock (fun () ->
      t.stats.rejected_overloaded <- t.stats.rejected_overloaded + 1)

(* The acceptor polls with a timeout instead of blocking in [accept] so a
   [request_stop] from any domain is noticed within ~200 ms without
   platform-dependent tricks (self-connects, closing a live fd). *)
let acceptor_loop t =
  let continue = ref true in
  while !continue do
    if Mutex.protect t.lock (fun () -> t.stopping) then continue := false
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
          Mutex.protect t.stats_lock (fun () -> t.stats.accepted <- t.stats.accepted + 1);
          let action =
            Mutex.protect t.lock (fun () ->
                if t.stopping then `Drop
                else if Queue.length t.queue >= t.cfg.queue_capacity then `Reject
                else begin
                  Queue.add (fd, now ()) t.queue;
                  Condition.signal t.nonempty;
                  `Admitted
                end)
          in
          (match action with
          | `Admitted -> ()
          | `Reject -> reject_overloaded t fd
          | `Drop -> close_quietly fd))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let worker_loop t =
  let ctx = session_ctx t in
  let continue = ref true in
  while !continue do
    let job =
      Mutex.protect t.lock (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.lock
          done;
          if Queue.is_empty t.queue then None (* stopping and drained *)
          else Some (Queue.pop t.queue))
    in
    match job with
    | None -> continue := false
    | Some (fd, enqueued_at) ->
      let queue_wait_s = now () -. enqueued_at in
      (try Session.serve ctx ~queue_wait_s fd
       with e ->
         (* Not a client-triggerable path — Session.serve converts those to
            error responses.  A worker bug poisons the pool: shut down and
            let [wait] re-raise. *)
         let bt = Printexc.get_raw_backtrace () in
         Mutex.protect t.lock (fun () ->
             if t.fatal = None then t.fatal <- Some (e, bt));
         request_stop t);
      close_quietly fd
  done

let start cfg =
  let cfg = { cfg with domains = max 1 cfg.domains; queue_capacity = max 1 cfg.queue_capacity } in
  (* A client hanging up mid-reply must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let t =
    {
      cfg;
      listen_fd;
      cache = Artifact_cache.create ~capacity:cfg.cache_capacity ();
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      stats_lock = Mutex.create ();
      stats =
        {
          accepted = 0;
          rejected_overloaded = 0;
          run_ok = 0;
          run_hit = 0;
          stats_served = 0;
          pings = 0;
          err_malformed = 0;
          err_overloaded = 0;
          err_timeout = 0;
          err_crash = 0;
        };
      started_at = now ();
      pool = [];
      fatal = None;
    }
  in
  let workers = List.init cfg.domains (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
  let acceptor = Domain.spawn (fun () -> acceptor_loop t) in
  t.pool <- acceptor :: workers;
  t

let wait t =
  let pool = t.pool in
  t.pool <- [];
  List.iter Domain.join pool;
  if pool <> [] then begin
    close_quietly t.listen_fd;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  end;
  match t.fatal with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let stop t =
  request_stop t;
  wait t
