(** Minimal blocking client for the nomapd protocol: one connection, one
    in-flight request.  Shared by [bin/loadgen.exe] and the integration
    tests so both speak the wire format through the same code path. *)

type t

val connect : ?retry_for_s:float -> string -> t
(** Connect to a daemon's Unix-domain socket.  [retry_for_s] (default 0)
    keeps retrying [ECONNREFUSED]/[ENOENT] for that long — for racing a
    daemon that is still binding (CI starts them concurrently).
    @raise Unix.Unix_error when the daemon never comes up. *)

val rpc : t -> Protocol.request -> Protocol.response
(** Send one request and block for its response.
    @raise Failure on EOF or an undecodable response. *)

val close : t -> unit
