type t = { fd : Unix.file_descr }

let connect ?(retry_for_s = 0.0) path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Monotonic: a wall-clock step mid-retry must not stretch or collapse
     the retry window. *)
  let deadline = Clock.now_s () +. retry_for_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Clock.now_s () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go ()
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go ()

let rpc t req =
  Protocol.write_frame t.fd (Protocol.encode_request req);
  match Protocol.read_frame t.fd with
  | Protocol.Eof -> failwith "nomapd client: connection closed before response"
  | Protocol.Oversized n -> failwith (Printf.sprintf "nomapd client: oversized response (%d bytes)" n)
  | Protocol.Frame payload -> (
    match Protocol.decode_response payload with
    | Ok resp -> resp
    | Result.Error msg -> failwith ("nomapd client: bad response: " ^ msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
