(** Per-connection request execution with VM-instance isolation.

    Every RUN request gets a brand-new [Vm.t] — its own heap, globals,
    profile and counters — built from a compiled program shared read-only
    through the artifact cache.  Nothing mutable outlives a request, so
    concurrent clients (and consecutive requests on one connection) cannot
    observe each other's globals or heap; the only cross-request state is
    the immutable compiled artifact and the daemon's own statistics. *)

type key = {
  hash : int64;  (** FNV-1a of the program source *)
  src : string;
      (** the source itself: key equality verifies it on every hit, so a
          64-bit hash collision is a miss, never a wrong program *)
  tier : Nomap_vm.Vm.tier_cap;
  arch : Nomap_nomap.Config.arch;
}
(** Artifact-cache key.  Tier and architecture are part of the key even
    though today's artifact (front-end bytecode) is identical across them:
    the key space is the contract, so a future tier- or arch-specialized
    artifact (pre-transformed LIR) slots in without a wire or cache
    migration. *)

type cache = (key, Nomap_bytecode.Opcode.program) Artifact_cache.t

val default_fuel : int
(** Execution budget when the request doesn't set one. *)

type shared
(** The daemon's shared-session table (DESIGN.md §16): named communal
    segments, created on first RUN_SHARED use.  Requests naming the same
    session run as agents over one segment (so concurrent clients
    communicate through Shared/Atomics and conflict-abort each other);
    different sessions are fully isolated.  Each session has a fixed agent
    pool ([shared_session_agents]) and segment size; a request borrows a
    slot for its duration and a fully-busy session answers OVERLOADED. *)

val shared_session_agents : int
(** Agent slots per session; concurrent RUN_SHAREDs past this are refused. *)

val shared_session_words : int
(** Segment elements per session. *)

val shared_create : unit -> shared

val shared_stats : shared -> string
(** The STATS line for shared sessions: count, borrowed agents, communal
    segment bytes, cross-agent conflict aborts, RUN_SHARED requests
    served. *)

val run :
  ?max_fuel:int ->
  ?shared_agent:Nomap_shared.Agent.t ->
  cache:cache ->
  Protocol.run ->
  Protocol.response
(** Execute one RUN request: look up / compile the artifact, run the
    program's top level on a fresh VM (plus [iters] calls of
    [benchmark()]), and report the [result] global, the structural heap
    checksum, and the request's machine counters.  [shared_agent] binds
    the VM to a communal shared segment (RUN_SHARED); without it the VM
    gets its own private solo segment.  A request whose fuel exceeds
    [max_fuel] (default [default_fuel]) is refused with [Efuel_limit]
    before any work; an unset request fuel means [min default_fuel
    max_fuel].  Fuel exhaustion maps to [Etimeout], compile or runtime
    failures to [Ecrash]; no exception escapes. *)

(** Callbacks a session uses to reach daemon-level state without depending
    on [Server] (which depends on this module). *)
type ctx = {
  cache : cache;
  shared : shared;  (** shared-session table, owned by the daemon *)
  max_fuel : int;  (** server-side cap on client-requested fuel *)
  stats_text : unit -> string;  (** STATS verb payload *)
  request_shutdown : unit -> unit;  (** SHUTDOWN verb: begin daemon stop *)
  on_response : Protocol.response -> unit;  (** accounting tap, called per reply *)
}

val handle_frame :
  ctx -> queue_wait_s:float -> Unix.file_descr -> string -> [ `Keep | `Close ]
(** Handle one already-framed request payload: decode, execute, reply.
    [queue_wait_s] is how long {e this frame} sat in the admission queue
    (monotonic clock, stamped at frame completion by the poller — each
    pipelined request on a keepalive connection gets its own measurement);
    a RUN whose [deadline_ms] is positive and smaller is answered
    [Etimeout] without executing.  Returns [`Keep] when the connection can
    serve further frames and [`Close] when it must be dropped: malformed
    payloads (the stream can no longer be trusted), SHUTDOWN, or a peer
    that vanished mid-reply.  Never closes the descriptor itself; the
    poller owns connection lifecycle. *)
