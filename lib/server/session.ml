module Vm = Nomap_vm.Vm
module Heap_checksum = Nomap_vm.Heap_checksum
module Config = Nomap_nomap.Config
module Value = Nomap_runtime.Value
module Instance = Nomap_interp.Instance
module Counters = Nomap_machine.Counters
module Fnv = Nomap_util.Fnv
module Agent = Nomap_shared.Agent
module Segment = Nomap_shared.Segment
module Interleave = Nomap_shared.Interleave

(* [src] is part of the key, not just its hash: two sources colliding on
   the 64-bit FNV fingerprint must NOT serve each other's compiled program.
   The hash still does the heavy lifting — shard selection and cheap
   inequality — while key equality (structural, so full string compare)
   verifies the source on every hit.  The collision regression test in
   test_server.ml forces the issue with a deliberately truncated hash. *)
type key = { hash : int64; src : string; tier : Vm.tier_cap; arch : Config.arch }

type cache = (key, Nomap_bytecode.Opcode.program) Artifact_cache.t

(* Generous for real programs, small enough that a hostile infinite loop
   costs bounded CPU: roughly one fuzz-oracle tiered budget (DESIGN.md §11). *)
let default_fuel = 100_000_000

let counters_of_vm vm : Protocol.run_counters =
  let c = Vm.counters vm in
  {
    Protocol.instrs = Counters.total_instrs c;
    checks = Counters.total_checks c;
    cycles = Counters.cycles c;
    tx_commits = c.Counters.tx_commits;
    tx_aborts = c.Counters.tx_aborts;
    deopts = c.Counters.deopts;
    ftl_calls = c.Counters.ftl_calls;
  }

(* ------------------------------------------------------------------ *)
(* Shared sessions (DESIGN.md §16): named communal segments.

   A RUN_SHARED names a session; all requests naming the same session run
   their VMs as agents of one registry over one segment, so concurrent
   clients genuinely communicate through Shared/Atomics (and genuinely
   conflict-abort each other's transactions).  The registry uses the
   [Free] scheduler policy: the daemon serves real concurrent clients, so
   there is no deterministic schedule to honor — serialization happens at
   the registry lock, per shared operation, exactly like real hardware.

   Sessions are created on first use and live for the daemon's lifetime
   (like the artifact cache, they are bounded: a fixed agent pool and a
   fixed segment size per session).  Each request borrows an agent slot
   for its duration; a session with every slot busy answers OVERLOADED
   rather than queueing. *)

let shared_session_agents = 64
let shared_session_words = 256

type shared_session = {
  sreg : Agent.registry;
  mutable free_slots : int list;
  mutable served : int;  (** RUN_SHARED requests completed against this session *)
}

type shared = { slock : Mutex.t; sessions : (string, shared_session) Hashtbl.t }

let shared_create () = { slock = Mutex.create (); sessions = Hashtbl.create 8 }

let acquire_agent shared ~session =
  Mutex.protect shared.slock (fun () ->
      let s =
        match Hashtbl.find_opt shared.sessions session with
        | Some s -> s
        | None ->
          let segment = Segment.create ~size:shared_session_words () in
          let sreg =
            Agent.create_registry ~policy:Interleave.Free ~segment
              ~n:shared_session_agents ()
          in
          let s = { sreg; free_slots = List.init shared_session_agents Fun.id; served = 0 } in
          Hashtbl.replace shared.sessions session s;
          s
      in
      match s.free_slots with
      | [] -> None
      | i :: rest ->
        s.free_slots <- rest;
        Some (s, Agent.agent s.sreg i))

let release_agent shared s ag =
  (* The VM may have died mid-transaction; drop any published footprint
     before the slot is handed to the next request. *)
  Agent.tx_abort ag;
  Mutex.protect shared.slock (fun () ->
      s.served <- s.served + 1;
      s.free_slots <- Agent.id ag :: s.free_slots)

(** One STATS line: session count, borrowed agents, communal segment
    bytes, cross-agent conflict aborts served, RUN_SHARED requests done. *)
let shared_stats shared =
  Mutex.protect shared.slock (fun () ->
      let sessions = Hashtbl.length shared.sessions in
      let bytes, conflicts, in_use, served =
        Hashtbl.fold
          (fun _ s (b, c, u, v) ->
            ( b + Segment.size_bytes (Agent.segment s.sreg),
              c + Agent.conflicts s.sreg,
              u + (shared_session_agents - List.length s.free_slots),
              v + s.served ))
          shared.sessions (0, 0, 0, 0)
      in
      Printf.sprintf
        "shared sessions=%d agents_in_use=%d segment_bytes=%d conflict_aborts=%d \
         run_shared=%d"
        sessions in_use bytes conflicts served)

let run ?(max_fuel = default_fuel) ?shared_agent ~cache (r : Protocol.run) :
    Protocol.response =
  if r.Protocol.fuel > max_fuel then
    (* Typed refusal, not a silent clamp: a client that asked for more than
       the server allows should know its request was not honored. *)
    Protocol.Error
      {
        err = Protocol.Efuel_limit;
        msg =
          Printf.sprintf "requested fuel %d exceeds the server limit %d" r.Protocol.fuel
            max_fuel;
      }
  else
    match
      Artifact_cache.find_or_add cache
        {
          hash = Fnv.hash64 r.Protocol.src;
          src = r.Protocol.src;
          tier = r.Protocol.tier;
          arch = r.Protocol.arch;
        }
        (fun () -> Nomap_bytecode.Compile.compile_source r.Protocol.src)
    with
  | exception e ->
    Protocol.Error { err = Protocol.Ecrash; msg = "compile: " ^ Printexc.to_string e }
  | cache_hit, prog -> (
    (* An unset fuel means "the server's default", itself capped by the
       operator's --max-fuel. *)
    let fuel = if r.Protocol.fuel <= 0 then min default_fuel max_fuel else r.Protocol.fuel in
    match
      let vm =
        Vm.create ~fuel ?shared:shared_agent ~config:(Config.create r.Protocol.arch)
          ~tier_cap:r.Protocol.tier prog
      in
      ignore (Vm.run_main vm);
      let last = ref None in
      for _ = 1 to r.Protocol.iters do
        last := Some (Vm.call_function vm "benchmark" [])
      done;
      let result =
        match !last with
        | Some v -> Value.to_js_string v
        | None -> (
          match Vm.global vm "result" with
          | Some v -> Value.to_js_string v
          | None -> "<no result>")
      in
      Protocol.Run_ok
        {
          cache_hit;
          result;
          heap = Heap_checksum.checksum (Vm.instance vm);
          counters = counters_of_vm vm;
        }
    with
    | resp -> resp
    | exception Instance.Out_of_fuel ->
      Protocol.Error
        { err = Protocol.Etimeout; msg = Printf.sprintf "exceeded fuel budget (%d ops)" fuel }
    | exception e -> Protocol.Error { err = Protocol.Ecrash; msg = Printexc.to_string e })

type ctx = {
  cache : cache;
  shared : shared;
  max_fuel : int;
  stats_text : unit -> string;
  request_shutdown : unit -> unit;
  on_response : Protocol.response -> unit;
}

let run_shared ctx (r : Protocol.run) ~session : Protocol.response =
  match acquire_agent ctx.shared ~session with
  | None ->
    Protocol.Error
      {
        err = Protocol.Eoverloaded;
        msg =
          Printf.sprintf "session %S: all %d agent slots busy" session
            shared_session_agents;
      }
  | Some (s, ag) ->
    Fun.protect
      ~finally:(fun () -> release_agent ctx.shared s ag)
      (fun () -> run ~max_fuel:ctx.max_fuel ~shared_agent:ag ~cache:ctx.cache r)

let reply ctx fd resp =
  ctx.on_response resp;
  Protocol.write_frame fd (Protocol.encode_response resp)

let handle_frame ctx ~queue_wait_s fd payload =
  let step () =
    match Protocol.decode_request payload with
    | Result.Error msg ->
      (* The stream may be desynchronized — answer and hang up. *)
      reply ctx fd (Protocol.Error { err = Protocol.Emalformed; msg });
      `Close
    | Ok Protocol.Ping ->
      reply ctx fd Protocol.Pong;
      `Keep
    | Ok Protocol.Stats ->
      reply ctx fd (Protocol.Stats_ok (ctx.stats_text ()));
      `Keep
    | Ok Protocol.Shutdown ->
      reply ctx fd Protocol.Shutting_down;
      ctx.request_shutdown ();
      `Close
    | Ok (Protocol.Run _ | Protocol.Run_shared _) as req ->
      let r, session =
        match req with
        | Ok (Protocol.Run r) -> (r, None)
        | Ok (Protocol.Run_shared { run; session }) -> (run, Some session)
        | _ -> assert false
      in
      (* [queue_wait_s] is *this frame's* wait — stamped when the frame
         completed at the poller, measured on the monotonic clock — so a
         deadline verdict is about this request, not about when its
         connection happened to be accepted. *)
      if r.Protocol.deadline_ms > 0 && queue_wait_s *. 1000.0 > float_of_int r.Protocol.deadline_ms
      then begin
        reply ctx fd
          (Protocol.Error
             {
               err = Protocol.Etimeout;
               msg =
                 Printf.sprintf "queued %.0f ms past the %d ms deadline"
                   (queue_wait_s *. 1000.0) r.Protocol.deadline_ms;
             });
        `Keep
      end
      else begin
        (match session with
        | None -> reply ctx fd (run ~max_fuel:ctx.max_fuel ~cache:ctx.cache r)
        | Some session -> reply ctx fd (run_shared ctx r ~session));
        `Keep
      end
  in
  (* A peer that vanishes mid-reply (EPIPE on our write) is indistinguishable
     from one that hung up early: drop the connection either way. *)
  try step () with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> `Close
