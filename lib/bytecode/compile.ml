(** AST → bytecode compiler.

    Toplevel statements are gathered into a synthesized [__main__] function.
    Identifier resolution: function-local [var]s and parameters become
    registers; everything else becomes a program global (created on demand,
    initialized to [undefined]); a bare reference to a declared function name
    yields a function constant. [Math], [String], [Atomics], and [Shared]
    are reserved namespace identifiers resolved at compile time. *)

open Nomap_jsir

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type program_ctx = {
  func_ids : (string, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  mutable global_names : string list;  (* reversed *)
}

let global_index pctx name =
  match Hashtbl.find_opt pctx.globals name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length pctx.globals in
    Hashtbl.add pctx.globals name i;
    pctx.global_names <- name :: pctx.global_names;
    i

type loop_ctx = {
  continue_target : [ `Pc of int | `Patch of int list ref ];
  break_patches : int list ref;
}

type fctx = {
  pctx : program_ctx;
  locals : (string, int) Hashtbl.t;
  nlocals : int;
  mutable next_temp : int;
  mutable max_reg : int;
  mutable code : Opcode.op list;  (* reversed *)
  mutable len : int;
  mutable consts : Opcode.const list;  (* reversed *)
  mutable nconsts : int;
  const_index : (Opcode.const, int) Hashtbl.t;
  mutable loops : loop_ctx list;
  mutable loop_headers : int list;
}

let emit f op =
  f.code <- op :: f.code;
  f.len <- f.len + 1

let here f = f.len

(* Emit a placeholder jump; returns its pc for later patching. *)
let emit_patchable f make =
  let pc = here f in
  emit f (make (-1));
  pc

let const_id f c =
  match Hashtbl.find_opt f.const_index c with
  | Some i -> i
  | None ->
    let i = f.nconsts in
    Hashtbl.add f.const_index c i;
    f.consts <- c :: f.consts;
    f.nconsts <- i + 1;
    i

let alloc_temp f =
  let r = f.next_temp in
  f.next_temp <- r + 1;
  f.max_reg <- max f.max_reg (r + 1);
  r

let save_temps f = f.next_temp
let restore_temps f mark = f.next_temp <- mark

(* Collect all `var` names declared anywhere in a block (function scoping). *)
let rec collect_vars_block block acc =
  List.fold_left collect_vars_stmt acc block

and collect_vars_stmt acc (s : Ast.stmt) =
  match s with
  | Ast.Var_decl ds -> List.fold_left (fun acc (x, _) -> x :: acc) acc ds
  | Ast.If (_, a, b) -> collect_vars_block b (collect_vars_block a acc)
  | Ast.While (_, b) | Ast.Do_while (b, _) -> collect_vars_block b acc
  | Ast.For (init, _, _, b) ->
    let acc = match init with Some s -> collect_vars_stmt acc s | None -> acc in
    collect_vars_block b acc
  | Ast.Block b -> collect_vars_block b acc
  | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue -> acc

let reserved = [ "Math"; "String"; "Atomics"; "Shared" ]

let rec compile_expr f (e : Ast.expr) : Opcode.reg =
  match e with
  | Ast.Number n ->
    let r = alloc_temp f in
    emit f (Opcode.Load_const (r, const_id f (Opcode.Cnum n)));
    r
  | Ast.Str s ->
    let r = alloc_temp f in
    emit f (Opcode.Load_const (r, const_id f (Opcode.Cstr s)));
    r
  | Ast.Bool b ->
    let r = alloc_temp f in
    emit f (Opcode.Load_const (r, const_id f (Opcode.Cbool b)));
    r
  | Ast.Null ->
    let r = alloc_temp f in
    emit f (Opcode.Load_const (r, const_id f Opcode.Cnull));
    r
  | Ast.Undefined ->
    let r = alloc_temp f in
    emit f (Opcode.Load_const (r, const_id f Opcode.Cundef));
    r
  | Ast.This ->
    let r = alloc_temp f in
    emit f (Opcode.Move (r, 0));
    r
  | Ast.Var x -> (
    match Hashtbl.find_opt f.locals x with
    | Some reg ->
      let r = alloc_temp f in
      emit f (Opcode.Move (r, reg));
      r
    | None when List.mem x reserved -> error "cannot use %s as a value" x
    | None -> (
      match Hashtbl.find_opt f.pctx.func_ids x with
      | Some fid ->
        let r = alloc_temp f in
        emit f (Opcode.Load_const (r, const_id f (Opcode.Cfun fid)));
        r
      | None ->
        let r = alloc_temp f in
        emit f (Opcode.Load_global (r, global_index f.pctx x));
        r))
  | Ast.Array_lit es ->
    let dst = alloc_temp f in
    let len = alloc_temp f in
    emit f (Opcode.Load_const (len, const_id f (Opcode.Cnum (float_of_int (List.length es)))));
    emit f (Opcode.New_array (dst, len));
    List.iteri
      (fun i e ->
        let mark = save_temps f in
        let idx = alloc_temp f in
        emit f (Opcode.Load_const (idx, const_id f (Opcode.Cnum (float_of_int i))));
        let v = compile_expr f e in
        emit f (Opcode.Set_elem (dst, idx, v));
        restore_temps f mark)
      es;
    dst
  | Ast.Object_lit fields ->
    let dst = alloc_temp f in
    emit f (Opcode.New_object dst);
    List.iter
      (fun (name, e) ->
        let mark = save_temps f in
        let v = compile_expr f e in
        emit f (Opcode.Set_prop (dst, name, v));
        restore_temps f mark)
      fields;
    dst
  | Ast.Index (a, i) ->
    let ra = compile_expr f a in
    let ri = compile_expr f i in
    let dst = alloc_temp f in
    emit f (Opcode.Get_elem (dst, ra, ri));
    dst
  | Ast.Prop (Ast.Var base, prop)
    when List.mem base reserved
         && Nomap_runtime.Intrinsics.static_constant base prop <> None -> (
    match Nomap_runtime.Intrinsics.static_constant base prop with
    | Some (Nomap_runtime.Value.Num n) ->
      let r = alloc_temp f in
      emit f (Opcode.Load_const (r, const_id f (Opcode.Cnum n)));
      r
    | _ -> assert false)
  | Ast.Prop (o, "length") ->
    let ro = compile_expr f o in
    let dst = alloc_temp f in
    emit f (Opcode.Get_length (dst, ro));
    dst
  | Ast.Prop (o, p) ->
    let ro = compile_expr f o in
    let dst = alloc_temp f in
    emit f (Opcode.Get_prop (dst, ro, p));
    dst
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt f.pctx.func_ids name with
    | Some fid ->
      let rargs = List.map (compile_expr f) args in
      let dst = alloc_temp f in
      emit f (Opcode.Call (dst, fid, rargs));
      dst
    | None -> (
      match Nomap_runtime.Intrinsics.global_lookup name with
      | Some intr ->
        let rargs = List.map (compile_expr f) args in
        let dst = alloc_temp f in
        emit f (Opcode.Call_intrinsic (dst, intr, rargs));
        dst
      | None -> error "call to undefined function %s" name))
  | Ast.Method_call (Ast.Var base, meth, args) when List.mem base reserved -> (
    match Nomap_runtime.Intrinsics.static_lookup base meth with
    | Some intr ->
      let rargs = List.map (compile_expr f) args in
      let dst = alloc_temp f in
      emit f (Opcode.Call_intrinsic (dst, intr, rargs));
      dst
    | None -> error "unknown builtin %s.%s" base meth)
  | Ast.Method_call (recv, meth, args) ->
    let rrecv = compile_expr f recv in
    let rargs = List.map (compile_expr f) args in
    let dst = alloc_temp f in
    emit f (Opcode.Call_method (dst, rrecv, meth, rargs));
    dst
  | Ast.New (name, args) -> (
    match Hashtbl.find_opt f.pctx.func_ids name with
    | Some fid ->
      let rargs = List.map (compile_expr f) args in
      let dst = alloc_temp f in
      emit f (Opcode.New_call (dst, fid, rargs));
      dst
    | None -> error "new of undefined function %s" name)
  | Ast.New_array n ->
    let rn = compile_expr f n in
    let dst = alloc_temp f in
    emit f (Opcode.New_array (dst, rn));
    dst
  | Ast.Unop (op, e) ->
    let r = compile_expr f e in
    let dst = alloc_temp f in
    emit f (Opcode.Unop (op, dst, r));
    dst
  | Ast.Binop (op, a, b) ->
    let ra = compile_expr f a in
    let rb = compile_expr f b in
    let dst = alloc_temp f in
    emit f (Opcode.Binop (op, dst, ra, rb));
    dst
  | Ast.And (a, b) ->
    let dst = alloc_temp f in
    let ra = compile_expr f a in
    emit f (Opcode.Move (dst, ra));
    let patch = emit_patchable f (fun t -> Opcode.Jump_if_false (dst, t)) in
    let mark = save_temps f in
    let rb = compile_expr f b in
    emit f (Opcode.Move (dst, rb));
    restore_temps f mark;
    patch_jump f patch (here f);
    dst
  | Ast.Or (a, b) ->
    let dst = alloc_temp f in
    let ra = compile_expr f a in
    emit f (Opcode.Move (dst, ra));
    let patch = emit_patchable f (fun t -> Opcode.Jump_if_true (dst, t)) in
    let mark = save_temps f in
    let rb = compile_expr f b in
    emit f (Opcode.Move (dst, rb));
    restore_temps f mark;
    patch_jump f patch (here f);
    dst
  | Ast.Cond (c, a, b) ->
    let dst = alloc_temp f in
    let rc = compile_expr f c in
    let patch_else = emit_patchable f (fun t -> Opcode.Jump_if_false (rc, t)) in
    let mark = save_temps f in
    let ra = compile_expr f a in
    emit f (Opcode.Move (dst, ra));
    restore_temps f mark;
    let patch_end = emit_patchable f (fun t -> Opcode.Jump t) in
    patch_jump f patch_else (here f);
    let rb = compile_expr f b in
    emit f (Opcode.Move (dst, rb));
    restore_temps f mark;
    patch_jump f patch_end (here f);
    dst
  | Ast.Assign (lv, e) -> compile_assign f lv (fun () -> compile_expr f e)
  | Ast.Op_assign (op, lv, e) ->
    compile_modify f lv (fun cur ->
        let re = compile_expr f e in
        let dst = alloc_temp f in
        emit f (Opcode.Binop (op, dst, cur, re));
        dst)
  | Ast.Incr (lv, delta, `Pre) ->
    compile_modify f lv (fun cur ->
        let one = alloc_temp f in
        emit f (Opcode.Load_const (one, const_id f (Opcode.Cnum (float_of_int delta))));
        let dst = alloc_temp f in
        emit f (Opcode.Binop (Ast.Add, dst, cur, one));
        dst)
  | Ast.Incr (lv, delta, `Post) ->
    (* Result is the OLD value: save it, then update. *)
    let old = alloc_temp f in
    let (_ : Opcode.reg) =
      compile_modify f lv (fun cur ->
          emit f (Opcode.Move (old, cur));
          let one = alloc_temp f in
          emit f (Opcode.Load_const (one, const_id f (Opcode.Cnum (float_of_int delta))));
          let dst = alloc_temp f in
          emit f (Opcode.Binop (Ast.Add, dst, cur, one));
          dst)
    in
    old

(* Assign [mk_value ()] into the lvalue; result register holds the value. *)
and compile_assign f (lv : Ast.lvalue) mk_value : Opcode.reg =
  match lv with
  | Ast.Lvar x -> (
    let v = mk_value () in
    match Hashtbl.find_opt f.locals x with
    | Some reg ->
      emit f (Opcode.Move (reg, v));
      v
    | None ->
      if List.mem x reserved then error "cannot assign to %s" x;
      emit f (Opcode.Store_global (global_index f.pctx x, v));
      v)
  | Ast.Lindex (a, i) ->
    let ra = compile_expr f a in
    let ri = compile_expr f i in
    let v = mk_value () in
    emit f (Opcode.Set_elem (ra, ri, v));
    v
  | Ast.Lprop (o, p) ->
    let ro = compile_expr f o in
    let v = mk_value () in
    emit f (Opcode.Set_prop (ro, p, v));
    v

(* Read-modify-write: evaluate the lvalue base once, read current value,
   compute the new value with [modify], write it back. *)
and compile_modify f (lv : Ast.lvalue) modify : Opcode.reg =
  match lv with
  | Ast.Lvar x -> (
    match Hashtbl.find_opt f.locals x with
    | Some reg ->
      let nv = modify reg in
      emit f (Opcode.Move (reg, nv));
      nv
    | None ->
      if List.mem x reserved then error "cannot assign to %s" x;
      let g = global_index f.pctx x in
      let cur = alloc_temp f in
      emit f (Opcode.Load_global (cur, g));
      let nv = modify cur in
      emit f (Opcode.Store_global (g, nv));
      nv)
  | Ast.Lindex (a, i) ->
    let ra = compile_expr f a in
    let ri = compile_expr f i in
    let cur = alloc_temp f in
    emit f (Opcode.Get_elem (cur, ra, ri));
    let nv = modify cur in
    emit f (Opcode.Set_elem (ra, ri, nv));
    nv
  | Ast.Lprop (o, "length") ->
    let ro = compile_expr f o in
    let cur = alloc_temp f in
    emit f (Opcode.Get_length (cur, ro));
    let nv = modify cur in
    emit f (Opcode.Set_prop (ro, "length", nv));
    nv
  | Ast.Lprop (o, p) ->
    let ro = compile_expr f o in
    let cur = alloc_temp f in
    emit f (Opcode.Get_prop (cur, ro, p));
    let nv = modify cur in
    emit f (Opcode.Set_prop (ro, p, nv));
    nv

and patch_jump f pc target =
  let idx = f.len - 1 - pc in
  let rec patch i = function
    | [] -> assert false
    | op :: rest when i = idx ->
      let patched =
        match op with
        | Opcode.Jump -1 -> Opcode.Jump target
        | Opcode.Jump_if_false (c, -1) -> Opcode.Jump_if_false (c, target)
        | Opcode.Jump_if_true (c, -1) -> Opcode.Jump_if_true (c, target)
        | _ -> assert false
      in
      patched :: rest
    | op :: rest -> op :: patch (i + 1) rest
  in
  f.code <- patch 0 f.code

let rec compile_stmt f (s : Ast.stmt) =
  let mark = save_temps f in
  (match s with
  | Ast.Expr e -> ignore (compile_expr f e)
  | Ast.Var_decl ds ->
    List.iter
      (fun (x, init) ->
        match init with
        | None -> ()
        | Some e -> (
          let v = compile_expr f e in
          (* Top-level `var`s are globals (JS semantics); function `var`s
             were collected into locals. *)
          match Hashtbl.find_opt f.locals x with
          | Some reg -> emit f (Opcode.Move (reg, v))
          | None -> emit f (Opcode.Store_global (global_index f.pctx x, v))))
      ds
  | Ast.If (c, then_, else_) ->
    let rc = compile_expr f c in
    let patch_else = emit_patchable f (fun t -> Opcode.Jump_if_false (rc, t)) in
    restore_temps f mark;
    compile_block f then_;
    if else_ = [] then patch_jump f patch_else (here f)
    else begin
      let patch_end = emit_patchable f (fun t -> Opcode.Jump t) in
      patch_jump f patch_else (here f);
      compile_block f else_;
      patch_jump f patch_end (here f)
    end
  | Ast.While (c, body) ->
    let head = here f in
    f.loop_headers <- head :: f.loop_headers;
    let rc = compile_expr f c in
    let patch_exit = emit_patchable f (fun t -> Opcode.Jump_if_false (rc, t)) in
    restore_temps f mark;
    let break_patches = ref [] in
    f.loops <- { continue_target = `Pc head; break_patches } :: f.loops;
    compile_block f body;
    f.loops <- List.tl f.loops;
    emit f (Opcode.Jump head);
    patch_jump f patch_exit (here f);
    List.iter (fun pc -> patch_jump f pc (here f)) !break_patches
  | Ast.Do_while (body, c) ->
    let head = here f in
    f.loop_headers <- head :: f.loop_headers;
    let break_patches = ref [] in
    let continue_patches = ref [] in
    f.loops <- { continue_target = `Patch continue_patches; break_patches } :: f.loops;
    compile_block f body;
    f.loops <- List.tl f.loops;
    List.iter (fun pc -> patch_jump f pc (here f)) !continue_patches;
    let rc = compile_expr f c in
    emit f (Opcode.Jump_if_true (rc, head));
    restore_temps f mark;
    List.iter (fun pc -> patch_jump f pc (here f)) !break_patches
  | Ast.For (init, cond, step, body) ->
    (match init with Some s -> compile_stmt f s | None -> ());
    let head = here f in
    f.loop_headers <- head :: f.loop_headers;
    let patch_exit =
      match cond with
      | Some c ->
        let rc = compile_expr f c in
        let p = emit_patchable f (fun t -> Opcode.Jump_if_false (rc, t)) in
        restore_temps f mark;
        Some p
      | None -> None
    in
    let break_patches = ref [] in
    let continue_patches = ref [] in
    f.loops <- { continue_target = `Patch continue_patches; break_patches } :: f.loops;
    compile_block f body;
    f.loops <- List.tl f.loops;
    List.iter (fun pc -> patch_jump f pc (here f)) !continue_patches;
    (match step with
    | Some e ->
      ignore (compile_expr f e);
      restore_temps f mark
    | None -> ());
    emit f (Opcode.Jump head);
    (match patch_exit with Some p -> patch_jump f p (here f) | None -> ());
    List.iter (fun pc -> patch_jump f pc (here f)) !break_patches
  | Ast.Return None -> emit f (Opcode.Return None)
  | Ast.Return (Some e) ->
    let r = compile_expr f e in
    emit f (Opcode.Return (Some r))
  | Ast.Break -> (
    match f.loops with
    | [] -> error "break outside loop"
    | { break_patches; _ } :: _ ->
      let pc = emit_patchable f (fun t -> Opcode.Jump t) in
      break_patches := pc :: !break_patches)
  | Ast.Continue -> (
    match f.loops with
    | [] -> error "continue outside loop"
    | { continue_target; _ } :: _ -> (
      match continue_target with
      | `Pc pc -> emit f (Opcode.Jump pc)
      | `Patch patches ->
        let pc = emit_patchable f (fun t -> Opcode.Jump t) in
        patches := pc :: !patches))
  | Ast.Block b -> compile_block f b);
  restore_temps f mark

and compile_block f block = List.iter (compile_stmt f) block

let compile_function ?(toplevel = false) pctx ~fid ~name ~params ~body : Opcode.func =
  let locals = Hashtbl.create 16 in
  (* Register 0 = this; params from 1. *)
  List.iteri (fun i x -> Hashtbl.replace locals x (i + 1)) params;
  (* Function `var`s become registers; top-level `var`s stay globals. *)
  if not toplevel then begin
    let vars = List.rev (collect_vars_block body []) in
    List.iter
      (fun x ->
        if not (Hashtbl.mem locals x) then
          Hashtbl.replace locals x (Hashtbl.length locals + 1))
      vars
  end;
  let nlocals = Hashtbl.length locals + 1 in
  let f =
    {
      pctx;
      locals;
      nlocals;
      next_temp = nlocals;
      max_reg = nlocals;
      code = [];
      len = 0;
      consts = [];
      nconsts = 0;
      const_index = Hashtbl.create 16;
      loops = [];
      loop_headers = [];
    }
  in
  compile_block f body;
  emit f (Opcode.Return None);
  {
    Opcode.fid;
    name;
    nparams = List.length params;
    nlocals;
    nregs = f.max_reg;
    code = Array.of_list (List.rev f.code);
    consts = Array.of_list (List.rev f.consts);
    loop_headers = List.rev f.loop_headers;
  }

let compile_program (prog : Ast.program) : Opcode.program =
  let funcs = Ast.functions prog in
  let pctx =
    { func_ids = Hashtbl.create 16; globals = Hashtbl.create 16; global_names = [] }
  in
  List.iteri (fun i (fn : Ast.func) -> Hashtbl.replace pctx.func_ids fn.Ast.fname i) funcs;
  let main_fid = List.length funcs in
  let compiled =
    List.mapi
      (fun i (fn : Ast.func) ->
        compile_function pctx ~fid:i ~name:fn.Ast.fname ~params:fn.Ast.params
          ~body:fn.Ast.body)
      funcs
  in
  let main =
    compile_function ~toplevel:true pctx ~fid:main_fid ~name:"__main__" ~params:[]
      ~body:(Ast.toplevel prog)
  in
  {
    Opcode.funcs = Array.of_list (compiled @ [ main ]);
    globals = Array.of_list (List.rev pctx.global_names);
    main_fid;
  }

let compile_source ?name src =
  compile_program (Parser.parse_program_exn ?name src)
