(** Deterministic interleaving scheduler for multi-agent runs
    (DESIGN.md §16).

    Agents (one OCaml Domain each) run their private computation in true
    parallel, but every *shared-segment operation* — and each agent's
    termination — consumes exactly one scheduler turn, and turns are
    granted one at a time by a deterministic policy.  Since private state
    evolves deterministically per agent and shared state is only touched
    inside a turn, the whole multi-agent execution is a pure function of
    (programs, seeds, policy): replays are bit-identical, which is what
    keeps multi-agent counters golden-testable and the fuzz oracle's
    multi-agent axis meaningful.

    Turn protocol (coordinator-free; one mutex + condition):
    - [begin_op] blocks until the policy has granted this agent the
      current turn;
    - the agent performs its operation (taking whatever locks it needs);
    - [end_op] advances to the next turn.  [begin_op]/[end_op] pairing is
      the caller's job ([Agent] wraps them with [Fun.protect] so an
      aborting operation still releases its turn).
    - [finish] is the termination event: it waits for a turn like an
      operation, marks the agent done, and advances.  Making termination
      consume a turn is what keeps the [Seeded] policy deterministic — the
      set of schedulable agents changes only at turn boundaries, never at
      an arbitrary wall-clock moment.

    Policies:
    - [Free]: no serialization at all ([begin_op]/[end_op]/[finish] are
      no-ops).  Used by solo-agent VMs (the default: zero coordination
      cost) and by nomapd shared sessions, where requests are serialized
      by the session itself.
    - [Fixed schedule]: turn [k] goes to [schedule.(k)] (entries naming
      finished agents are skipped); when the schedule is exhausted,
      remaining turns drain round-robin from agent 0.  The litmus suite
      enumerates these exhaustively.
    - [Seeded seed]: each turn is granted to a uniformly drawn unfinished
      agent via the repo's splitmix64 PRNG — a reproducible "random"
      interleaving for contention experiments and fuzzing. *)

type policy = Free | Fixed of int array | Seeded of int

type t = {
  policy : policy;
  n : int;
  mutex : Mutex.t;
  cond : Condition.t;
  finished : bool array;
  mutable remaining : int;
  mutable current : int;  (** agent holding the turn; -1 = all done / free *)
  mutable pos : int;  (** next unread [Fixed] schedule slot *)
  mutable rr : int;  (** round-robin drain cursor *)
  prng : Nomap_util.Prng.t;
}

let rec pick t =
  if t.remaining = 0 then -1
  else
    match t.policy with
    | Free -> -1
    | Fixed schedule ->
      if t.pos < Array.length schedule then begin
        let a = schedule.(t.pos) in
        t.pos <- t.pos + 1;
        if a >= 0 && a < t.n && not t.finished.(a) then a else pick t
      end
      else begin
        (* Deterministic drain: next unfinished agent from the cursor. *)
        let rec find k =
          let a = (t.rr + k) mod t.n in
          if t.finished.(a) then find (k + 1) else a
        in
        let a = find 0 in
        t.rr <- a + 1;
        a
      end
    | Seeded _ ->
      let rec nth_unfinished a k =
        if t.finished.(a) then nth_unfinished (a + 1) k
        else if k = 0 then a
        else nth_unfinished (a + 1) (k - 1)
      in
      nth_unfinished 0 (Nomap_util.Prng.int t.prng t.remaining)

let create ~n ~policy =
  if n <= 0 then invalid_arg "Interleave.create: n <= 0";
  let t =
    {
      policy;
      n;
      mutex = Mutex.create ();
      cond = Condition.create ();
      finished = Array.make n false;
      remaining = n;
      current = -1;
      pos = 0;
      rr = 0;
      prng =
        Nomap_util.Prng.create ~seed:(match policy with Seeded s -> s | _ -> 0);
    }
  in
  t.current <- pick t;
  t

let is_free t = t.policy = Free

let begin_op t ~agent =
  if not (is_free t) then begin
    Mutex.lock t.mutex;
    while t.current <> agent do
      Condition.wait t.cond t.mutex
    done;
    Mutex.unlock t.mutex
  end

let end_op t ~agent =
  if not (is_free t) then begin
    Mutex.lock t.mutex;
    if t.current = agent then begin
      t.current <- pick t;
      Condition.broadcast t.cond
    end;
    Mutex.unlock t.mutex
  end

(** The agent will perform no further operations: consume one turn as the
    termination event and advance.  Idempotent. *)
let finish t ~agent =
  if not (is_free t) then begin
    Mutex.lock t.mutex;
    if not t.finished.(agent) then begin
      while t.current <> agent do
        Condition.wait t.cond t.mutex
      done;
      t.finished.(agent) <- true;
      t.remaining <- t.remaining - 1;
      t.current <- pick t;
      Condition.broadcast t.cond
    end;
    Mutex.unlock t.mutex
  end

(** All multiset permutations of [counts.(i)] turns for each agent [i] —
    the litmus suite's exhaustive schedule enumeration.  Small inputs only
    (the suites use ≤ 3 ops per agent). *)
let enumerate_schedules counts =
  let n = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let acc = ref [] in
  let left = Array.copy counts in
  let cur = Array.make total 0 in
  let rec go k =
    if k = total then acc := Array.copy cur :: !acc
    else
      for a = 0 to n - 1 do
        if left.(a) > 0 then begin
          left.(a) <- left.(a) - 1;
          cur.(k) <- a;
          go (k + 1);
          left.(a) <- left.(a) + 1
        end
      done
  in
  go 0;
  List.rev !acc
