(** The multi-agent runtime: N VMs, one OCaml Domain each, against one
    shared segment (DESIGN.md §16).

    Each agent gets its own full VM — private heap, profile, counters,
    tier ladder — created with [Vm.create ~shared:agent], so the only
    communication channel is the segment.  Private execution runs in true
    parallel; shared operations are serialized deterministically by the
    registry's [Interleave] scheduler, so a run's outcome is a pure
    function of (programs, seeds, policy).

    An agent that dies (runtime error, out of fuel) is torn down safely:
    its transaction state is cleaned up and its scheduler slot retired, so
    the surviving agents keep their deterministic schedule instead of
    deadlocking on a turn nobody will consume. *)

module Value = Nomap_runtime.Value
module Opcode = Nomap_bytecode.Opcode
module Vm = Nomap_vm.Vm
module Segment = Nomap_shared.Segment
module Interleave = Nomap_shared.Interleave
module Agent = Nomap_shared.Agent

type outcome = {
  result : (Value.t, string) Result.t;
  vm : Vm.t option;  (** joined and quiescent; [None] if VM creation failed *)
}

type run_result = {
  outcomes : outcome array;
  segment_checksum : int64;
  segment_data : int array;  (** snapshot of the segment after the run *)
  conflicts : int;  (** registry-wide [Conflict] aborts *)
}

(** Run [programs.(i)] on agent [i] (all domains are joined before this
    returns).  Per-agent heaps get distinct PRNG seeds ([seed + i]) so
    Math.random streams differ; everything else about the run is
    deterministic under the scheduler policy. *)
let run ?(policy = Interleave.Seeded 0) ?(segment_size = 64) ?thresholds
    ?(fuel = max_int) ?engine ?host_ic ?(seed = 42) ~config ~tier_cap
    (programs : Opcode.program array) =
  let n = Array.length programs in
  if n = 0 then invalid_arg "Agents.run: no programs";
  let segment = Segment.create ~size:segment_size () in
  let reg = Agent.create_registry ~policy ~segment ~n () in
  let body i () =
    let ag = Agent.agent reg i in
    let result =
      match
        Vm.create ~seed:(seed + i) ~fuel ?thresholds ?engine ?host_ic ~shared:ag
          ~config ~tier_cap programs.(i)
      with
      | vm ->
        let r = try Ok (Vm.run_main vm) with e -> Error (Printexc.to_string e) in
        { result = r; vm = Some vm }
      | exception e -> { result = Error (Printexc.to_string e); vm = None }
    in
    (* A VM that died mid-transaction still holds published footprint lines;
       drop them, then retire the scheduler slot — never letting an agent
       exit without [finish] is what keeps the survivors deadlock-free. *)
    Agent.tx_abort ag;
    Agent.finish ag;
    result
  in
  let domains = Array.init n (fun i -> Domain.spawn (body i)) in
  let outcomes = Array.map Domain.join domains in
  {
    outcomes;
    segment_checksum = Segment.checksum segment;
    segment_data = Array.init (Segment.length segment) (Segment.get segment);
    conflicts = Agent.conflicts reg;
  }
