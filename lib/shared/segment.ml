(** A shared heap segment: the SharedArrayBuffer of the multi-agent runtime
    (DESIGN.md §16).

    A segment is a flat array of integers living *outside* every per-VM
    heap: agents address it by element index through the [Shared]/[Atomics]
    intrinsics, never through object references, so no MiniJS value can leak
    from one agent's private heap into another's.  All mutation happens
    under the owning registry's lock ([Agent]); this module only provides
    the storage, the simulated address layout the cache/HTM models see, and
    a checksum for the differential oracle.

    Address layout: segments occupy a reserved region far above any per-VM
    heap allocation (VM heaps bump-allocate from 0x10000 and never reach
    the segment base), 8 bytes per element, so footprint tracking and
    cache-line conflict granularity fall out of the same arithmetic the
    private heap uses. *)

type t = {
  id : int;
  data : int array;
  base_addr : int;  (** simulated address of element 0 *)
}

let segment_base = 0x4000_0000

(* Max 128K elements per segment. *)
let segment_stride = 0x10_0000
let word_bytes = 8

(** Elements per 64-byte cache line: conflict-detection granularity. *)
let line_words = 8

let create ?(id = 0) ~size () =
  if size <= 0 || size * word_bytes > segment_stride then
    invalid_arg (Printf.sprintf "Segment.create: size %d out of range" size);
  { id; data = Array.make size 0; base_addr = segment_base + (id * segment_stride) }

let length t = Array.length t.data

let size_bytes t = Array.length t.data * word_bytes

(** JS typed-array style index normalization: wrap out-of-range indices into
    the segment instead of trapping, keeping every generated program (fuzz
    shapes included) well-defined. *)
let wrap t i =
  let n = Array.length t.data in
  ((i mod n) + n) mod n

let addr_of t i = t.base_addr + (i * word_bytes)

(** Cache line of element [i], in segment-relative line units. *)
let line_of i = i / line_words

let get t i = t.data.(i)
let set t i v = t.data.(i) <- v

(** FNV-1a over the element values, for the fuzz oracle's observation
    (same construction as [Heap_checksum]). *)
let checksum t =
  let h = ref Nomap_util.Fnv.basis in
  Array.iter
    (fun v ->
      h := Nomap_util.Fnv.byte (Nomap_util.Fnv.string !h (string_of_int v)) 0xFF)
    t.data;
  !h
