(** An agent's view of a shared segment, and the cross-agent conflict
    detection that makes HTM aborts real (DESIGN.md §16).

    Every VM owns exactly one agent (solo by default — a private 1-agent
    registry with a [Free] scheduler, so [Atomics] works identically in
    every tier of a single-agent run at zero coordination cost).  A
    multi-agent run shares one [registry]: the segment, the deterministic
    [Interleave] scheduler, and one lock serializing all shared-metadata
    mutation.

    Conflict model — eager, requester-wins, 64-byte line granularity
    (matching the footprint model's cache lines, so false sharing falls out
    naturally):
    - a hardware transaction publishes the lines it touches: writes always;
      reads only under RTM ([Rtm] tracks its read set in L2 — POWER8 ROT
      has no read-set tracking, so ROT transactions are *not* aborted by
      remote writes to lines they only read, true to the hardware);
    - any access by another agent that conflicts with a published line
      (write vs. anything, read vs. a published write) marks the publisher
      doomed; the requester proceeds.  A doomed transaction aborts with
      [Htm.Conflict] at its next shared operation or at commit;
    - in-transaction writes are redo-buffered: invisible until commit,
      dropped on abort (the hardware buffers speculative lines in cache;
      same observable behavior).  Commit flushes the buffer under the lock
      and dooms overlapping peers, like any other remote write.

    The PR 9 STM fallback cannot rely on hardware detection, so a
    fallen-back transaction validates à la NOrec: every transactional read
    served from shared data is logged with its observed value (under
    hardware too, so the log is complete if the fallback happens
    mid-flight), and commit re-reads the log — any changed value is a
    [Conflict].  Software transactions publish nothing and ignore the
    doomed flag; stale lines published before the fallback only cause
    spurious (ignored) dooming of this agent, never a wrong outcome.

    Determinism: every shared-data mutation — each operation, and each
    transaction commit (the redo flush) — consumes one [Interleave] turn.
    Metadata-only events (abort cleanup, the Hw→Sw mode flip) don't: their
    timing relative to peer turns only affects spurious dooming of agents
    that will ignore it, never an observable value. *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Htm = Nomap_htm.Htm

type op_class = Op_load | Op_store | Op_rmw | Op_fence

type tx_mode =
  | No_tx
  | Hw of bool  (** inside a hardware transaction; payload = track reads (RTM) *)
  | Sw  (** fell back to the modeled software transaction (NOrec) *)

type registry = {
  segment : Segment.t;
  sched : Interleave.t;
  lock : Mutex.t;  (** serializes all shared-metadata and segment mutation *)
  mutable members : t array;
  mutable conflicts : int;  (** total [Conflict] aborts raised, for stats *)
}

and t = {
  id : int;
  reg : registry;
  mutable mode : tx_mode;
  read_lines : (int, unit) Hashtbl.t;  (** published read footprint (lines) *)
  write_lines : (int, unit) Hashtbl.t;  (** published write footprint (lines) *)
  redo : (int, int) Hashtbl.t;  (** in-tx segment writes, index → value *)
  mutable norec : (int * int) list;  (** read log: (index, observed value) *)
  doomed : bool Atomic.t;  (** set by conflicting peers, requester-wins *)
  mutable note : op_class -> unit;  (** VM counter callback *)
}

let create_registry ?(policy = Interleave.Free) ~segment ~n () =
  let reg =
    {
      segment;
      sched = Interleave.create ~n ~policy;
      lock = Mutex.create ();
      members = [||];
      conflicts = 0;
    }
  in
  reg.members <-
    Array.init n (fun id ->
        {
          id;
          reg;
          mode = No_tx;
          read_lines = Hashtbl.create 16;
          write_lines = Hashtbl.create 16;
          redo = Hashtbl.create 16;
          norec = [];
          doomed = Atomic.make false;
          note = (fun _ -> ());
        });
  reg

let agent reg i = reg.members.(i)
let registry ag = ag.reg
let id ag = ag.id
let segment reg = reg.segment
let conflicts reg = reg.conflicts
let set_note ag f = ag.note <- f

(** A private single-agent world: the default every VM gets so the
    [Shared]/[Atomics] surface works — and is tier-invariant — without any
    multi-agent setup. *)
let solo ?(size = 64) () =
  agent (create_registry ~segment:(Segment.create ~size ()) ~n:1 ()) 0

(* ------------------------------------------------------------------ *)
(* Internals.  Everything below that touches members' line sets, modes, or
   the segment runs under [reg.lock]; operations additionally hold a
   scheduler turn (see the determinism note above). *)

let with_lock reg f =
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) f

(* Lock held. *)
let conflict_abort reg =
  reg.conflicts <- reg.conflicts + 1;
  raise (Htm.Abort Htm.Conflict)

(* Lock held.  Requester-wins: this agent's access to [line] dooms every
   hardware-transactional peer whose published footprint conflicts. *)
let doom_peers ag line ~is_write =
  Array.iter
    (fun peer ->
      if peer != ag then
        match peer.mode with
        | Hw _ ->
          if
            Hashtbl.mem peer.write_lines line
            || (is_write && Hashtbl.mem peer.read_lines line)
          then Atomic.set peer.doomed true
        | No_tx | Sw -> ())
    ag.reg.members

(* Lock held. *)
let check_doomed ag =
  match ag.mode with
  | Hw _ when Atomic.get ag.doomed -> conflict_abort ag.reg
  | _ -> ()

(* Lock held.  Transactional reads log (index, observed value) whenever
   served from shared data — the NOrec validation set if this transaction
   falls back to software. *)
let tx_read ag idx =
  match Hashtbl.find_opt ag.redo idx with
  | Some v -> v
  | None ->
    let v = Segment.get ag.reg.segment idx in
    ag.norec <- (idx, v) :: ag.norec;
    v

(* Lock held. *)
let read_idx ag idx =
  check_doomed ag;
  match ag.mode with
  | No_tx ->
    doom_peers ag (Segment.line_of idx) ~is_write:false;
    Segment.get ag.reg.segment idx
  | Hw track ->
    let line = Segment.line_of idx in
    if track then Hashtbl.replace ag.read_lines line ();
    doom_peers ag line ~is_write:false;
    tx_read ag idx
  | Sw -> tx_read ag idx

(* Lock held. *)
let write_idx ag idx v =
  check_doomed ag;
  let line = Segment.line_of idx in
  match ag.mode with
  | No_tx ->
    doom_peers ag line ~is_write:true;
    Segment.set ag.reg.segment idx v
  | Hw _ ->
    Hashtbl.replace ag.write_lines line ();
    doom_peers ag line ~is_write:true;
    Hashtbl.replace ag.redo idx v
  | Sw -> Hashtbl.replace ag.redo idx v

(* Lock held.  Returns the old value (JS Atomics RMW semantics). *)
let rmw_idx ag idx f =
  check_doomed ag;
  let line = Segment.line_of idx in
  match ag.mode with
  | No_tx ->
    let old = Segment.get ag.reg.segment idx in
    doom_peers ag line ~is_write:true;
    Segment.set ag.reg.segment idx (f old);
    old
  | Hw track ->
    if track then Hashtbl.replace ag.read_lines line ();
    Hashtbl.replace ag.write_lines line ();
    doom_peers ag line ~is_write:true;
    let old = tx_read ag idx in
    Hashtbl.replace ag.redo idx (f old);
    old
  | Sw ->
    let old = tx_read ag idx in
    Hashtbl.replace ag.redo idx (f old);
    old

(* Lock held. *)
let cleanup ag =
  ag.mode <- No_tx;
  Hashtbl.reset ag.read_lines;
  Hashtbl.reset ag.write_lines;
  Hashtbl.reset ag.redo;
  ag.norec <- [];
  Atomic.set ag.doomed false

(* Lock held.  Make the buffered writes visible; each flushed line is a
   remote write from the peers' point of view. *)
let flush ag =
  Hashtbl.iter
    (fun idx v ->
      doom_peers ag (Segment.line_of idx) ~is_write:true;
      Segment.set ag.reg.segment idx v)
    ag.redo;
  cleanup ag

(* ------------------------------------------------------------------ *)
(* Transaction boundary hooks, called by the machine at the outermost
   Tx_begin / Tx_end / abort. *)

let tx_begin ag ~(mode : Htm.mode) =
  with_lock ag.reg (fun () ->
      cleanup ag;
      ag.mode <-
        (match mode with
        | Htm.Rtm -> Hw true
        | Htm.Rot -> Hw false
        | Htm.Stm -> Sw
        | Htm.Ghost -> No_tx))

(** The hybrid fallback upgraded this transaction to software mid-flight:
    stop publishing and ignore the doomed flag from here on — commit-time
    NOrec validation takes over.  Lines already published stay until
    cleanup; they can only cause spurious dooming of this (now software)
    agent, which validation subsumes. *)
let to_stm ag =
  match ag.mode with
  | Hw _ -> with_lock ag.reg (fun () -> ag.mode <- Sw)
  | No_tx | Sw -> ()

(** Commit point: consumes a scheduler turn (the redo flush is a shared
    mutation).  Raises [Htm.Abort Htm.Conflict] if the transaction was
    doomed (hardware) or fails value validation (software); the machine's
    abort ladder takes it from there. *)
let tx_commit ag =
  match ag.mode with
  | No_tx -> ()
  | Hw _ | Sw ->
    Interleave.begin_op ag.reg.sched ~agent:ag.id;
    Fun.protect ~finally:(fun () -> Interleave.end_op ag.reg.sched ~agent:ag.id)
    @@ fun () ->
    with_lock ag.reg (fun () ->
        match ag.mode with
        | No_tx -> ()
        | Hw _ ->
          if Atomic.get ag.doomed then begin
            cleanup ag;
            conflict_abort ag.reg
          end
          else flush ag
        | Sw ->
          if
            List.for_all
              (fun (idx, v) -> Segment.get ag.reg.segment idx = v)
              ag.norec
          then flush ag
          else begin
            cleanup ag;
            conflict_abort ag.reg
          end)

(** Abort cleanup: drop the redo buffer and unpublish.  Idempotent (the
    commit path already cleaned up when it raised [Conflict] itself). *)
let tx_abort ag =
  match ag.mode with
  | No_tx -> ()
  | Hw _ | Sw -> with_lock ag.reg (fun () -> cleanup ag)

(** This agent will perform no further shared operations. *)
let finish ag = Interleave.finish ag.reg.sched ~agent:ag.id

(* ------------------------------------------------------------------ *)
(* The MiniJS surface: dispatch for the heap's [shared] closure. *)

let arg n args = match List.nth_opt args n with Some v -> v | None -> Value.Undef

let op_class : Heap.shared_op -> op_class = function
  | Heap.Sh_read | Heap.Sh_load -> Op_load
  | Heap.Sh_write | Heap.Sh_store -> Op_store
  | Heap.Sh_add | Heap.Sh_sub | Heap.Sh_exchange | Heap.Sh_cas -> Op_rmw
  | Heap.Sh_fence -> Op_fence
  | Heap.Sh_size -> Op_load  (* never dispatched: answered without a turn *)

(** One shared operation: take a scheduler turn, feed the heap hooks (so
    in-transaction segment traffic counts against HTM capacity and STM
    access overheads exactly like private-heap traffic — synthetic segment
    addresses, no-op undo since the redo buffer owns rollback), then
    execute under the registry lock.  [Fun.protect] releases the turn even
    when the operation aborts the transaction. *)
let dispatch ag heap (op : Heap.shared_op) (args : Value.t list) : Value.t =
  let reg = ag.reg in
  let seg = reg.segment in
  match op with
  | Heap.Sh_size -> Value.int_ (Segment.length seg)
  | _ ->
    Interleave.begin_op reg.sched ~agent:ag.id;
    Fun.protect ~finally:(fun () -> Interleave.end_op reg.sched ~agent:ag.id)
    @@ fun () ->
    let hooks = heap.Heap.hooks in
    let result =
      match op with
      | Heap.Sh_fence ->
        with_lock reg (fun () -> check_doomed ag);
        Value.int_ 0
      | _ ->
        let idx = Segment.wrap seg (Value.to_int32 (arg 0 args)) in
        let addr = Segment.addr_of seg idx in
        (match op with
        | Heap.Sh_read | Heap.Sh_load ->
          if hooks.Heap.active then hooks.Heap.load addr Segment.word_bytes;
          Value.int_ (with_lock reg (fun () -> read_idx ag idx))
        | Heap.Sh_write | Heap.Sh_store ->
          let v = Ops.wrap_int32 (Value.to_int32 (arg 1 args)) in
          if hooks.Heap.active then
            hooks.Heap.store addr Segment.word_bytes (fun () -> ());
          with_lock reg (fun () -> write_idx ag idx v);
          Value.int_ v
        | Heap.Sh_add | Heap.Sh_sub | Heap.Sh_exchange ->
          let operand = Value.to_int32 (arg 1 args) in
          let f old =
            match op with
            | Heap.Sh_add -> Ops.wrap_int32 (old + operand)
            | Heap.Sh_sub -> Ops.wrap_int32 (old - operand)
            | _ -> Ops.wrap_int32 operand
          in
          if hooks.Heap.active then begin
            hooks.Heap.load addr Segment.word_bytes;
            hooks.Heap.store addr Segment.word_bytes (fun () -> ())
          end;
          Value.int_ (with_lock reg (fun () -> rmw_idx ag idx f))
        | Heap.Sh_cas ->
          let expected = Value.to_int32 (arg 1 args) in
          let repl = Ops.wrap_int32 (Value.to_int32 (arg 2 args)) in
          let f old = if old = expected then repl else old in
          if hooks.Heap.active then begin
            hooks.Heap.load addr Segment.word_bytes;
            hooks.Heap.store addr Segment.word_bytes (fun () -> ())
          end;
          Value.int_ (with_lock reg (fun () -> rmw_idx ag idx f))
        | Heap.Sh_size | Heap.Sh_fence -> assert false)
    in
    ag.note (op_class op);
    result

(** Attach this agent to a VM's heap: [Shared]/[Atomics] intrinsics
    dispatch here from any tier. *)
let install ag heap = heap.Heap.shared <- Some (dispatch ag heap)
