(** Execution metrics: dynamic instruction counts by paper category (NoFTL /
    NoTM / TMUnopt / TMOpt), executed checks by kind, simulated cycles split
    into transactional and non-transactional time, and transaction
    statistics — everything Figures 3 and 8-11 and Tables I and IV are
    built from. *)

type category =
  | No_ftl  (** interpreter, baseline, C-runtime code *)
  | No_tm  (** FTL code outside any transaction region *)
  | Tm_unopt  (** code executing inside a transaction it was not compiled for *)
  | Tm_opt  (** transaction-aware FTL code inside its own transaction *)

val category_index : category -> int
val category_name : category -> string
val categories : category list

val check_index : Nomap_lir.Lir.check_kind -> int
val check_kinds : Nomap_lir.Lir.check_kind list

(** The float metrics live in an all-float sub-record so OCaml gives them
    the flat (unboxed) representation: [add_cycles] runs once per charged
    instruction and must not allocate. *)
type fstats = {
  mutable cycles : float;
  mutable tx_cycles : float;  (** cycles inside transactions (TMTime) *)
  mutable tx_write_kb_sum : float;
  mutable tx_write_kb_max : float;
  mutable tx_assoc_sum : float;
  mutable stm_cycles : float;
      (** subset of [tx_cycles]: modeled software-transaction overhead of
          hybrid transactions that fell back (DESIGN.md §15) *)
}

type t = {
  instrs : int array;  (** per category *)
  checks : int array;  (** executed FTL checks per kind *)
  f : fstats;
  mutable deopts : int;
  mutable ftl_calls : int;
  mutable dfg_calls : int;
  mutable tx_commits : int;
  mutable tx_aborts : int;
  abort_reasons : (string, int) Hashtbl.t;
  mutable tx_assoc_max : int;
  mutable tx_samples : int;
  (* Hybrid RTM+STM fallback activity (DESIGN.md §15).  A fallen-back
     transaction that commits counts in both [tx_commits] and
     [stm_commits]. *)
  mutable stm_commits : int;
  mutable stm_aborts : int;
  mutable stm_reads : int;
  mutable stm_writes : int;
  (* Shared-segment traffic (DESIGN.md §16): completed [Shared]/[Atomics]
     operations, uniform across tiers and engines. *)
  mutable shared_loads : int;
  mutable shared_stores : int;
  mutable shared_rmws : int;
  mutable shared_fences : int;
}

val create : unit -> t

(** Read accessors for the flat float metrics (see [fstats]). *)
val cycles : t -> float

val tx_cycles : t -> float
val stm_cycles : t -> float
val tx_write_kb_sum : t -> float
val tx_write_kb_max : t -> float
val tx_assoc_sum : t -> float
val total_instrs : t -> int
val total_checks : t -> int
val add_instrs : t -> category -> int -> unit
val add_check : t -> Nomap_lir.Lir.check_kind -> unit
val add_cycles : t -> in_tx:bool -> float -> unit
val record_abort : t -> Nomap_htm.Htm.abort_reason -> unit

(** Record a committed transaction's write-set characterization (Table IV). *)
val record_commit : t -> write_kb:float -> assoc:int -> unit

(** Fraction of total instructions in a category. *)
val category_fraction : t -> category -> float

(** Executed checks of a kind per 100 instructions (Figure 3). *)
val checks_per_100 : t -> Nomap_lir.Lir.check_kind -> float

val copy : t -> t

(** Snapshot the counters and open a measurement window: the running maxima
    ([tx_write_kb_max], [tx_assoc_max]) are reset so a later [diff] against
    the returned snapshot reports maxima over the window only, not over
    warmup. *)
val begin_window : t -> t

(** Metrics accumulated between a [begin_window] snapshot and now
    (steady-state measurement after warmup).  Includes the per-reason abort
    breakdown; maxima are window maxima (see [begin_window]). *)
val diff : now:t -> before:t -> t

(** Canonical one-line rendering of the full counter table (hex-float
    cycles, sorted abort reasons) — the bit-exact equality format used by
    the determinism golden and the fuzzer's engine axis. *)
val to_canonical_string : t -> string
