(** The abstract machine that executes LIR — our stand-in for the x86-64
    core running DFG/FTL-generated code.

    It interprets LIR against the simulated heap while:
    - counting dynamic instructions, classified NoFTL / NoTM / TMUnopt /
      TMOpt exactly as the paper's Figures 8/9 do (TMOpt = transaction-aware
      code inside its own transaction; TMUnopt = a callee executing inside
      someone else's transaction);
    - counting executed checks by kind (Figure 3);
    - charging the cycle model (Figures 10/11);
    - executing transactional semantics: Tx_begin checkpoints the live
      registers (like XBegin), speculative writes are journaled via the heap
      hooks, and an abort rolls the heap back and resumes the Baseline tier
      at the region entry — the control flow of paper Figure 5(b);
    - performing OSR exits: a failing Deopt check materializes its stack map
      into a Baseline frame and the rest of the function runs there.

    For wall-clock speed the machine executes the pre-decoded form of each
    compiled function ([Nomap_lir.Decode]): per-block instruction arrays
    instead of id lists, phi inputs resolved to per-edge copy tables, call
    arguments as arrays, and per-instruction costs precomputed — none of
    which changes any simulated metric (guarded by the counter-determinism
    test). *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module D = Nomap_lir.Decode
module Htm = Nomap_htm.Htm
module Footprint = Nomap_cache.Footprint
module Specialize = Nomap_tiers.Specialize

type tier = Dfg | Ftl

exception Deopt_exit of int * (int * Value.t) list  (** resume pc, register values *)

type env = {
  instance : Instance.t;
  counters : Counters.t;
  htm_mode : Htm.mode;  (** hardware a Tx_begin targets *)
  sof_enabled : bool;  (** Sticky Overflow Flag hardware present *)
  capacity_scale : int;  (** HTM capacity scaling (matches workload scaling) *)
  tx_watchdog : int;  (** max LIR instrs per transaction before forced abort *)
  call : fid:int -> this:Value.t -> args:Value.t list -> Value.t;
  deopt_resume : fid:int -> resume_pc:int -> values:(int * Value.t) list -> Value.t;
  mutable tx : Htm.tx option;
  mutable ghost_depth : int;  (** Base config: zero-cost region markers *)
  mutable ghost_owner : int;
  mutable next_frame : int;
  mutable on_abort : fid:int -> Htm.abort_reason -> unit;
      (** VM adaptation hook: capacity aborts shrink/remove transactions *)
}

let create_env ~instance ~counters ~htm_mode ~sof_enabled ?(capacity_scale = 1)
    ?(tx_watchdog = 30_000_000) ~call ~deopt_resume () =
  {
    instance;
    counters;
    htm_mode;
    sof_enabled;
    capacity_scale;
    tx_watchdog;
    call;
    deopt_resume;
    tx = None;
    ghost_depth = 0;
    ghost_owner = -1;
    next_frame = 0;
    on_abort = (fun ~fid:_ _ -> ());
  }

let in_region env = env.tx <> None || env.ghost_depth > 0

let category env frame =
  match env.tx with
  | Some tx ->
    if frame = tx.Htm.owner_frame then Counters.Tm_opt else Counters.Tm_unopt
  | None ->
    if env.ghost_depth > 0 then
      if frame = env.ghost_owner then Counters.Tm_opt else Counters.Tm_unopt
    else Counters.No_tm

let charge_ftl env ~frame ~tier n =
  if n > 0 then begin
    Counters.add_instrs env.counters (category env frame) n;
    let cpi = match tier with Dfg -> Timing.cpi_dfg | Ftl -> Timing.cpi_ftl in
    Counters.add_cycles env.counters ~in_tx:(in_region env) (float_of_int n *. cpi)
  end

let charge_runtime env n =
  if n > 0 then begin
    Counters.add_instrs env.counters Counters.No_ftl n;
    Counters.add_cycles env.counters ~in_tx:(in_region env)
      (float_of_int n *. Timing.cpi_runtime)
  end

(** RTM transactional reads are ~20% slower (paper §VI-B).  The HTM load
    hook counts every in-transaction read in [tx.reads]; the penalty is
    charged in one multiply when the transaction finishes (commit or abort)
    — cycle-identical to per-read charging, but the hot hook stays a bare
    increment. *)
let charge_rtm_reads env (tx : Htm.tx) =
  if tx.Htm.mode = Htm.Rtm && tx.Htm.reads > 0 then
    Counters.add_cycles env.counters ~in_tx:true
      (float_of_int tx.Htm.reads *. Timing.rtm_read_penalty)

(* ------------------------------------------------------------------ *)
(* Cost tables (simulated machine instructions per LIR instruction). *)

let base_cost = function
  | L.Nop | L.Phi _ | L.Param _ | L.Const _ -> 0
  | L.Iadd _ | L.Isub _ | L.Imul _ | L.Ineg _ | L.Iadd_wrap _ | L.Isub_wrap _ -> 1
  | L.Fadd _ | L.Fsub _ | L.Fmul _ | L.Fneg _ -> 1
  | L.Fdiv _ -> 4
  | L.Fmod _ -> 8
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ | L.Ushr _ -> 1
  | L.Cmp _ | L.Not _ -> 1
  | L.Load_slot _ | L.Load_elem _ | L.Load_char_code _ -> 3
  | L.Store_slot _ | L.Store_elem _ -> 3
  | L.Store_transition _ -> 5  (* slot store + shape-word update *)
  | L.Load_length _ | L.Str_length _ -> 2
  | L.Load_global _ | L.Store_global _ -> 2
  | L.Check_shape _ | L.Check_bounds _ | L.Check_str_bounds _ | L.Check_not_hole _ -> 3
  | L.Check_int _ | L.Check_number _ | L.Check_string _ | L.Check_array _
  | L.Check_fun_eq _ | L.Check_overflow _ | L.Check_cond _ -> 2
  | L.Call_func _ | L.Call_method _ -> 6
  | L.Ctor_call _ -> 22
  | L.Alloc_object | L.Alloc_array _ -> 15
  | L.Intrinsic _ -> 0 (* charged separately *)
  | L.Call_runtime _ -> 2 (* the call itself; body charged as runtime *)
  | L.Tx_begin _ | L.Tx_end -> 1

(** (FTL instructions, NoFTL runtime instructions) for a math intrinsic:
    cheap ones are inlined by the backend; transcendentals call libm. *)
let intrinsic_cost = function
  | Intrinsics.Math_sqrt -> (3, 0)
  | Intrinsics.Math_abs | Intrinsics.Math_floor | Intrinsics.Math_ceil
  | Intrinsics.Math_round | Intrinsics.Math_min | Intrinsics.Math_max -> (2, 0)
  | Intrinsics.Global_is_nan -> (2, 0)
  | Intrinsics.Math_random -> (1, 12)
  | _ -> (1, 40)

(* ------------------------------------------------------------------ *)

let wrap_int32 = Ops.wrap_int32

let as_int = function Value.Int i -> i | v -> Value.to_int32 v
let as_num = Value.to_number

(* Robust coercions: after NoMap removes checks inside a doomed transaction,
   garbage values may flow; hardware would compute garbage and abort later,
   so we coerce benignly instead of crashing the simulator. *)
let as_arr = function Value.Arr a -> Some a | _ -> None
let as_obj = function Value.Obj o -> Some o | _ -> None

(* ------------------------------------------------------------------ *)
(* Hot-path helpers, hoisted to the top level so executing a function
   allocates no closures per instruction (they used to be rebuilt on every
   call).  All take the per-activation state they touch explicitly. *)

let materialize (values : Value.t array) live =
  List.map (fun (r, v) -> (r, values.(v))) live

(* A failing check: Deopt outside any real transaction OSR-exits; inside a
   transaction any failure is an abort (Deopt there is irrevocable).  An
   Abort exit with no live transaction is only possible if a pass
   mis-converted; treat it as a plain deopt to stay safe. *)
let check_fail env (values : Value.t array) (e : L.exit) kind =
  match env.tx with
  | Some _ -> raise (Htm.Abort (Htm.Check_failed kind))
  | None -> raise (Deopt_exit (e.L.smp.L.resume_pc, materialize values e.L.smp.L.live))

let tx_tick env =
  match env.tx with
  | Some tx ->
    tx.Htm.instr_count <- tx.Htm.instr_count + 1;
    if tx.Htm.instr_count > env.tx_watchdog then raise (Htm.Abort Htm.Watchdog)
  | None -> ()

let int_result env (overflowed : bool array) id raw =
  if Value.fits_int32 raw then Value.Int raw
  else begin
    overflowed.(id) <- true;
    (match env.tx with Some tx when env.sof_enabled -> tx.Htm.sof <- true | _ -> ());
    Value.Int (wrap_int32 raw)
  end

(** Build a call's argument list from pre-resolved value ids. *)
let arg_values (values : Value.t array) (ids : int array) =
  let rec go i acc = if i < 0 then acc else go (i - 1) (values.(ids.(i)) :: acc) in
  go (Array.length ids - 1) []

(** Generic runtime calls (the NoFTL slow paths).  Each branch charges its
    runtime cost (same table as always: binop 30, unop 16, get_prop 35,
    set_prop 40, get_elem 30, set_elem 34, get_length 16, method 44,
    intrinsic 6 + static + dynamic) before executing, then reads its
    operands straight out of the value array — no [List.nth]. *)
let exec_runtime env rt (recv : Value.t) (ids : int array) (values : Value.t array) :
    Value.t =
  let heap = env.instance.Instance.heap in
  let arg i = values.(ids.(i)) in
  match rt with
  | L.Rt_binop op ->
    charge_runtime env 30;
    Ops.apply_binop heap op (arg 0) (arg 1)
  | L.Rt_unop op ->
    charge_runtime env 16;
    Ops.apply_unop op (arg 0)
  | L.Rt_get_prop name -> (
    charge_runtime env 35;
    match as_obj recv with
    | Some o -> Heap.get_prop heap o name
    | None -> Value.Undef)
  | L.Rt_set_prop name -> (
    charge_runtime env 40;
    match as_obj recv with
    | Some o ->
      Heap.set_prop heap o name (arg 0);
      Value.Undef
    | None -> raise (Nomap_interp.Interp.Runtime_error "set property on non-object"))
  | L.Rt_get_elem -> (
    charge_runtime env 30;
    let vi = arg 0 in
    match (recv, vi) with
    | Value.Arr arr, Value.Int idx -> Heap.get_elem heap arr idx
    | Value.Arr arr, _ ->
      let idx = Value.to_int32 vi in
      if float_of_int idx = Value.to_number vi then Heap.get_elem heap arr idx
      else Value.Undef
    | Value.Str s, Value.Int idx ->
      let data = s.Value.sdata in
      if idx >= 0 && idx < String.length data then Heap.str heap (String.make 1 data.[idx])
      else Value.Undef
    | v, _ ->
      raise (Nomap_interp.Interp.Runtime_error ("cannot index " ^ Value.type_name v)))
  | L.Rt_set_elem -> (
    charge_runtime env 34;
    let vi = arg 0 and vx = arg 1 in
    match recv with
    | Value.Arr arr ->
      let idx = as_int vi in
      if float_of_int idx = Value.to_number vi then Heap.set_elem heap arr idx vx;
      Value.Undef
    | v -> raise (Nomap_interp.Interp.Runtime_error ("cannot index-assign " ^ Value.type_name v)))
  | L.Rt_get_length -> (
    charge_runtime env 16;
    match Ops.js_length recv with
    | Some v -> v
    | None -> (
      match as_obj recv with
      | Some o -> Heap.get_prop heap o "length"
      | None ->
        raise (Nomap_interp.Interp.Runtime_error ("no length on " ^ Value.type_name recv))))
  | L.Rt_method name -> (
    charge_runtime env 44;
    let args = arg_values values ids in
    match Intrinsics.method_lookup recv name with
    | Some intr -> (
      try Intrinsics.eval heap intr recv args
      with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
    | None -> (
      match as_obj recv with
      | Some o -> (
        match Shape.lookup o.Value.shape name with
        | Some slot -> (
          match Heap.load_slot heap o slot with
          | Value.Fun fid -> env.call ~fid ~this:recv ~args
          | v ->
            raise
              (Nomap_interp.Interp.Runtime_error
                 (Printf.sprintf "%s is not a function (%s)" name (Value.type_name v))))
        | None -> raise (Nomap_interp.Interp.Runtime_error ("no method " ^ name)))
      | None ->
        raise
          (Nomap_interp.Interp.Runtime_error
             (Printf.sprintf "no method %s on %s" name (Value.type_name recv)))))
  | L.Rt_intrinsic intr -> (
    let args = arg_values values ids in
    charge_runtime env (6 + Intrinsics.cost intr + Intrinsics.dynamic_cost intr recv args);
    try Intrinsics.eval heap intr recv args
    with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))

(** The pre-decoded form of [c], built on first execution — after every
    transform/optimizer pass has run — and cached on the compiled record. *)
let decoded (c : Specialize.compiled) =
  match c.Specialize.decoded with
  | Some d -> d
  | None ->
    let d = D.decode ~cost:base_cost c.Specialize.lir in
    c.Specialize.decoded <- Some d;
    d

let exec_func env (c : Specialize.compiled) ~tier ~this ~args : Value.t =
  let d = decoded c in
  let lir = c.Specialize.lir in
  let inst = env.instance in
  let heap = inst.Instance.heap in
  (match tier with
  | Ftl -> env.counters.Counters.ftl_calls <- env.counters.Counters.ftl_calls + 1
  | Dfg -> env.counters.Counters.dfg_calls <- env.counters.Counters.dfg_calls + 1);
  let frame = env.next_frame in
  env.next_frame <- env.next_frame + 1;
  let n = max 1 d.D.nvalues in
  let values = Array.make n Value.Undef in
  let overflowed = Array.make n false in
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let run () =
    let prev_block = ref (-1) in
    let cur_block = ref d.D.entry in
    let running = ref true in
    let result = ref Value.Undef in
    while !running do
      let b = d.D.dblocks.(!cur_block) in
      (* Phis: the pre-resolved copy table for the incoming edge, applied as
         a parallel assignment (read phase, then write phase). *)
      let edges = b.D.phi_edges in
      let n_edges = Array.length edges in
      if n_edges > 0 then begin
        let prev = !prev_block in
        let rec find_edge i =
          if i >= n_edges then -1
          else if edges.(i).D.pred = prev then i
          else find_edge (i + 1)
        in
        let ei = find_edge 0 in
        if ei >= 0 then begin
          let e = edges.(ei) in
          let dsts = e.D.dsts and srcs = e.D.srcs in
          let scratch = d.D.scratch in
          let np = Array.length dsts in
          for i = 0 to np - 1 do
            scratch.(i) <- values.(srcs.(i))
          done;
          for i = 0 to np - 1 do
            values.(dsts.(i)) <- scratch.(i)
          done
        end
      end;
      let body = b.D.body in
      for idx = 0 to Array.length body - 1 do
        let di = body.(idx) in
        let v = di.D.id in
        if (di.D.is_tx_marker && env.htm_mode = Htm.Ghost) || di.D.elided then
          (* Free instructions: region markers under the Base config, and
             checks the NoMap_BC limit study elided (they keep their guard
             semantics below but model zero hardware instructions, so no
             transaction tick and no cycle charge). *)
          Instance.burn inst 1
        else begin
          Instance.burn inst 1;
          tx_tick env;
          charge_ftl env ~frame ~tier di.D.cost
        end;
        match di.D.kind with
        | L.Nop | L.Phi _ -> ()
        | L.Param r ->
          values.(v) <-
            (if r = 0 then this
             else if r - 1 < nargs then argv.(r - 1)
             else Value.Undef)
        | L.Const c -> values.(v) <- c
        | L.Iadd (a, b) ->
          values.(v) <- int_result env overflowed v (as_int values.(a) + as_int values.(b))
        | L.Isub (a, b) ->
          values.(v) <- int_result env overflowed v (as_int values.(a) - as_int values.(b))
        | L.Iadd_wrap (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) + as_int values.(b)))
        | L.Isub_wrap (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) - as_int values.(b)))
        | L.Imul (a, b) ->
          values.(v) <- int_result env overflowed v (as_int values.(a) * as_int values.(b))
        | L.Ineg a ->
          let x = as_int values.(a) in
          (* -0 and -int32_min are not int32-representable results. *)
          if x = 0 || x = Value.int32_min then begin
            overflowed.(v) <- true;
            (match env.tx with
            | Some tx when env.sof_enabled -> tx.Htm.sof <- true
            | _ -> ());
            values.(v) <- Value.Int (wrap_int32 (-x))
          end
          else values.(v) <- Value.Int (-x)
        | L.Fadd (a, b) -> values.(v) <- Value.number (as_num values.(a) +. as_num values.(b))
        | L.Fsub (a, b) -> values.(v) <- Value.number (as_num values.(a) -. as_num values.(b))
        | L.Fmul (a, b) -> values.(v) <- Value.number (as_num values.(a) *. as_num values.(b))
        | L.Fdiv (a, b) -> values.(v) <- Value.number (as_num values.(a) /. as_num values.(b))
        | L.Fmod (a, b) ->
          values.(v) <- Value.number (Float.rem (as_num values.(a)) (as_num values.(b)))
        | L.Fneg a -> values.(v) <- Value.number (-.as_num values.(a))
        | L.Band (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) land as_int values.(b)))
        | L.Bor (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lor as_int values.(b)))
        | L.Bxor (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lxor as_int values.(b)))
        | L.Bnot a -> values.(v) <- Value.Int (wrap_int32 (lnot (as_int values.(a))))
        | L.Shl (a, b) ->
          values.(v) <- Value.Int (wrap_int32 (as_int values.(a) lsl (as_int values.(b) land 31)))
        | L.Shr (a, b) -> values.(v) <- Value.Int (as_int values.(a) asr (as_int values.(b) land 31))
        | L.Ushr (a, b) -> values.(v) <- Ops.js_ushr values.(a) values.(b)
        | L.Cmp (c, a, b) ->
          let x = as_num values.(a) and y = as_num values.(b) in
          let r =
            match c with
            | L.Ceq -> x = y
            | L.Cne -> x <> y (* JS: NaN != anything is true *)
            | L.Clt -> x < y
            | L.Cle -> x <= y
            | L.Cgt -> x > y
            | L.Cge -> x >= y
          in
          values.(v) <- Value.Bool r
        | L.Not a -> values.(v) <- Value.Bool (not (Value.truthy values.(a)))
        | L.Load_slot (o, slot) -> (
          match as_obj values.(o) with
          | Some obj when slot < Array.length obj.Value.slots ->
            values.(v) <- Heap.load_slot heap obj slot
          | _ -> values.(v) <- Value.Undef)
        | L.Store_slot (o, slot, x) -> (
          match as_obj values.(o) with
          | Some obj when slot < Array.length obj.Value.slots ->
            Heap.store_slot heap obj slot values.(x)
          | _ -> ())
        | L.Store_transition (o, name, slot, x) -> (
          match as_obj values.(o) with
          | Some obj ->
            (* The guarding shape check ran just before; resolve the
               (memoized) transition and install shape + value. *)
            let new_shape = Shape.transition heap.Heap.shapes obj.Value.shape name in
            if new_shape.Shape.prop_count - 1 = slot then
              Heap.transition_store heap obj new_shape slot values.(x)
            else
              (* Shape drifted (possible only in a doomed transaction). *)
              Heap.set_prop heap obj name values.(x)
          | None -> ())
        | L.Load_elem (a, i') -> (
          match as_arr values.(a) with
          | Some arr -> values.(v) <- Heap.load_elem heap arr (as_int values.(i'))
          | None -> values.(v) <- Value.Undef)
        | L.Store_elem (a, i', x) -> (
          match as_arr values.(a) with
          | Some arr -> Heap.store_elem heap arr (as_int values.(i')) values.(x)
          | None -> ())
        | L.Load_length a -> (
          match as_arr values.(a) with
          | Some arr ->
            heap.Heap.hooks.load arr.Value.aaddr 8;
            values.(v) <- Value.Int arr.Value.alen
          | None -> values.(v) <- Value.Int 0)
        | L.Str_length a -> (
          match values.(a) with
          | Value.Str s -> values.(v) <- Value.Int (String.length s.Value.sdata)
          | _ -> values.(v) <- Value.Int 0)
        | L.Load_char_code (s, i') -> (
          match values.(s) with
          | Value.Str str ->
            values.(v) <- Value.Int (Ops.string_char_code heap str (as_int values.(i')))
          | _ -> values.(v) <- Value.Int 0)
        | L.Load_global g -> values.(v) <- inst.Instance.globals.(g)
        | L.Store_global (g, x) -> inst.Instance.globals.(g) <- values.(x)
        (* Elided checks (NoMap_BC) guard exactly as charged ones do, but
           model zero hardware instructions: no check-category count, no
           cache-visible load of the metadata they test. *)
        | L.Check_int (a, e) -> (
          match values.(a) with
          | Value.Int _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Type)
        | L.Check_number (a, e) -> (
          match values.(a) with
          | Value.Int _ | Value.Num _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Type)
        | L.Check_string (a, e) -> (
          match values.(a) with
          | Value.Str _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Type)
        | L.Check_array (a, e) -> (
          match values.(a) with
          | Value.Arr _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Type)
        | L.Check_shape (a, shape_id, e) -> (
          match values.(a) with
          | Value.Obj o when o.Value.shape.Shape.id = shape_id ->
            if not di.D.elided then begin
              heap.Heap.hooks.load o.Value.oaddr 8;
              Counters.add_check env.counters L.Property
            end;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Property)
        | L.Check_fun_eq (a, fid, e) -> (
          match values.(a) with
          | Value.Fun f when f = fid ->
            if not di.D.elided then Counters.add_check env.counters L.Path;
            values.(v) <- values.(a)
          | _ -> check_fail env values e L.Path)
        | L.Check_bounds (a, i', e) -> (
          let idx = as_int values.(i') in
          match as_arr values.(a) with
          | Some arr when idx >= 0 && idx < arr.Value.alen ->
            if not di.D.elided then begin
              heap.Heap.hooks.load arr.Value.aaddr 8;
              Counters.add_check env.counters L.Bounds
            end;
            values.(v) <- Value.Int idx
          | _ -> check_fail env values e L.Bounds)
        | L.Check_str_bounds (s, i', e) -> (
          let idx = as_int values.(i') in
          match values.(s) with
          | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
            if not di.D.elided then Counters.add_check env.counters L.Bounds;
            values.(v) <- Value.Int idx
          | _ -> check_fail env values e L.Bounds)
        | L.Check_not_hole (a, i', e) -> (
          let idx = as_int values.(i') in
          match as_arr values.(a) with
          | Some arr
            when idx >= 0
                 && idx < Array.length arr.Value.elems
                 && Heap.load_elem heap arr idx <> Value.Hole ->
            if not di.D.elided then Counters.add_check env.counters L.Hole;
            values.(v) <- Value.Int idx
          | _ -> check_fail env values e L.Hole)
        | L.Check_overflow (a, e) ->
          if overflowed.(a) then check_fail env values e L.Overflow
          else begin
            if not di.D.elided then Counters.add_check env.counters L.Overflow;
            values.(v) <- values.(a)
          end
        | L.Check_cond (a, expected, e) ->
          if Value.truthy values.(a) = expected then begin
            if not di.D.elided then Counters.add_check env.counters L.Path;
            values.(v) <- values.(a)
          end
          else check_fail env values e L.Path
        | L.Call_func (fid, _) ->
          values.(v) <- env.call ~fid ~this:Value.Undef ~args:(arg_values values di.D.args)
        | L.Call_method (fid, thisv, _) ->
          values.(v) <-
            env.call ~fid ~this:values.(thisv) ~args:(arg_values values di.D.args)
        | L.Ctor_call (fid, _) ->
          let obj = Value.Obj (Heap.alloc_object heap) in
          let r = env.call ~fid ~this:obj ~args:(arg_values values di.D.args) in
          values.(v) <- (match r with Value.Undef -> obj | x -> x)
        | L.Call_runtime (rt, recv, _) ->
          values.(v) <- exec_runtime env rt values.(recv) di.D.args values
        | L.Intrinsic (intr, _) ->
          if not di.D.elided then begin
            let ftl_c, rt_c = intrinsic_cost intr in
            charge_ftl env ~frame ~tier ftl_c;
            charge_runtime env rt_c
          end;
          values.(v) <-
            (try Intrinsics.eval heap intr Value.Undef (arg_values values di.D.args)
             with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
        | L.Alloc_object -> values.(v) <- Value.Obj (Heap.alloc_object heap)
        | L.Alloc_array len ->
          let n = as_int values.(len) in
          if n < 0 || n > 1 lsl 24 then begin
            if env.tx <> None then raise (Htm.Abort Htm.Watchdog)
            else raise (Nomap_interp.Interp.Runtime_error "bad array length")
          end;
          values.(v) <- Value.Arr (Heap.alloc_array heap n)
        | L.Tx_begin smp -> (
          match env.htm_mode with
          | Htm.Ghost ->
            if env.ghost_depth = 0 then env.ghost_owner <- frame;
            env.ghost_depth <- env.ghost_depth + 1
          | (Htm.Rot | Htm.Rtm) as mode -> (
            match env.tx with
            | Some tx -> tx.Htm.nesting <- tx.Htm.nesting + 1
            | None ->
              let snapshot = materialize values smp.L.live in
              env.tx <-
                Some
                  (Htm.begin_tx ~capacity_scale:env.capacity_scale heap ~mode ~snapshot
                     ~resume_pc:smp.L.resume_pc ~owner_frame:frame);
              (* Transaction lengths scale with the workloads; scale the
                 fixed begin/end costs equally so the overhead-to-work
                 ratio stays in the paper's regime (DESIGN.md §6). *)
              Counters.add_cycles env.counters ~in_tx:true
                (Timing.xbegin_cycles /. float_of_int env.capacity_scale)))
        | L.Tx_end -> (
          match env.htm_mode with
          | Htm.Ghost ->
            env.ghost_depth <- max 0 (env.ghost_depth - 1);
            if env.ghost_depth = 0 then env.ghost_owner <- -1
          | Htm.Rot | Htm.Rtm -> (
            match env.tx with
            | None -> ()  (* abort already tore the transaction down *)
            | Some tx ->
              tx.Htm.nesting <- tx.Htm.nesting - 1;
              if tx.Htm.nesting = 0 then begin
                if env.sof_enabled && tx.Htm.sof then raise (Htm.Abort Htm.Sof_overflow);
                charge_rtm_reads env tx;
                Counters.add_cycles env.counters ~in_tx:true
                  ((match tx.Htm.mode with
                   | Htm.Rtm -> Timing.xend_rtm_cycles
                   | _ -> Timing.xend_rot_cycles)
                  /. float_of_int env.capacity_scale);
                Counters.record_commit env.counters
                  ~write_kb:(Footprint.kb tx.Htm.write_fp)
                  ~assoc:(Footprint.max_ways tx.Htm.write_fp);
                Htm.commit tx;
                env.tx <- None
              end))
      done;
      charge_ftl env ~frame ~tier 1;
      (* terminator *)
      match b.D.dterm with
      | L.Jump t ->
        prev_block := !cur_block;
        cur_block := t
      | L.Br (cv, bt, bf) ->
        prev_block := !cur_block;
        cur_block := (if Value.truthy values.(cv) then bt else bf)
      | L.Ret r ->
        result := (match r with Some rv -> values.(rv) | None -> Value.Undef);
        running := false
      | L.Unreachable -> raise (Nomap_interp.Interp.Runtime_error "reached unreachable block")
    done;
    !result
  in
  let handle_abort reason tx =
    (* Reads performed before the abort still cost RTM read-latency. *)
    charge_rtm_reads env tx;
    Htm.rollback tx;
    env.tx <- None;
    Counters.record_abort env.counters reason;
    Counters.add_cycles env.counters ~in_tx:false Timing.abort_cycles;
    env.on_abort ~fid:lir.L.fid reason;
    env.deopt_resume ~fid:lir.L.fid ~resume_pc:tx.Htm.resume_pc ~values:tx.Htm.snapshot
  in
  try run () with
  | Deopt_exit (resume_pc, vals) ->
    env.counters.Counters.deopts <- env.counters.Counters.deopts + 1;
    Counters.add_cycles env.counters ~in_tx:(in_region env) Timing.deopt_cycles;
    env.deopt_resume ~fid:lir.L.fid ~resume_pc ~values:vals
  | Htm.Abort reason -> (
    match env.tx with
    | Some tx when tx.Htm.owner_frame = frame -> handle_abort reason tx
    | _ -> raise (Htm.Abort reason))
